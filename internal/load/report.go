package load

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
)

// Report is one scenario run's machine-readable outcome — the row
// appended to BENCH_load.json. Latency percentiles are nearest-rank
// over completed (HTTP 200) requests, measured client-side, so they
// include queueing and the micro-batch window, not just execution.
type Report struct {
	Scenario string `json:"scenario"`
	Target   string `json:"target"`
	Seed     uint64 `json:"seed"`
	Requests int    `json:"requests"`

	// Offered vs achieved: OfferedRate is what the schedule asked for,
	// Throughput is completions per wall second.
	OfferedRate float64 `json:"offered_rate_per_sec"`
	WallMS      float64 `json:"wall_ms"`
	Throughput  float64 `json:"throughput_per_sec"`

	OK           int `json:"ok"`
	Rejected     int `json:"rejected"`
	Errors       int `json:"errors"`
	DecodeErrors int `json:"decode_errors"`
	// RejectShare is the 429/503 share of all driven requests.
	RejectShare float64 `json:"reject_share"`

	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MeanMS float64 `json:"mean_ms"`
	MaxMS  float64 `json:"max_ms"`

	// TokensPerQuery is total delivered tokens over completed requests —
	// coalescing pushes it below the single-query cost.
	TokensPerQuery float64 `json:"tokens_per_query"`
	// CoalesceRate is the share of completed requests answered without
	// their own predictor plan entry (memory/inflight/window tiers).
	CoalesceRate float64 `json:"coalesce_rate"`
	// AffinityHitRate is pool affinity hits/(hits+misses); -1 when the
	// scenario ran without affinity routing.
	AffinityHitRate float64 `json:"affinity_hit_rate"`
	// QueuePeak is the admission queue's high-water mark as reported by
	// mqo_serve_queue_depth_peak.
	QueuePeak int `json:"queue_peak"`

	// SLO is the server's own /debug/slo verdict, decoded strictly from
	// the same run. SLOPass is the harness verdict (client-side p99 vs
	// the scenario objective); SLOAgree records whether the two verdicts
	// matched — a false here means the server's ledger and the client's
	// stopwatch disagree about the tail and is itself a finding.
	SLO      obs.SLOReport `json:"slo"`
	SLOPass  bool          `json:"slo_pass"`
	SLOAgree bool          `json:"slo_agree"`
}

// Summary renders the one-line human digest Logf and mqoload print.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d ok / %d rejected / %d errors / %d decode errors; ",
		r.OK, r.Rejected, r.Errors, r.DecodeErrors)
	fmt.Fprintf(&b, "p50 %.1fms p95 %.1fms p99 %.1fms; %.1f tok/query; coalesce %.0f%%",
		r.P50MS, r.P95MS, r.P99MS, r.TokensPerQuery, 100*r.CoalesceRate)
	if r.SLO.Configured {
		verdict := "PASS"
		if !r.SLOPass {
			verdict = "FAIL"
		}
		fmt.Fprintf(&b, "; slo %s (server p99 %.1fms vs %.0fms, agree=%v)",
			verdict, r.SLO.ObservedMS, r.SLO.ObjectiveMS, r.SLOAgree)
	}
	return b.String()
}

// AppendJSONL appends the report as one JSON line to path (the
// committed BENCH_load.json trajectory), creating the file on first
// use. Keys are emitted sorted (encoding/json marshals struct fields
// in declaration order; that order is the file's schema).
func (r *Report) AppendJSONL(path string) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	enc, err := json.Marshal(r)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(f, "%s\n", enc)
	return err
}

// buildReport assembles the report from the client-side samples plus a
// /metrics and /debug/slo scrape of the just-driven server.
func buildReport(sc Scenario, target string, samples []sample, sched []time.Duration,
	wall time.Duration, client *http.Client, base string) (*Report, error) {
	rep := &Report{
		Scenario:        sc.Name,
		Target:          target,
		Seed:            sc.Seed,
		Requests:        len(samples),
		WallMS:          roundMS(wall),
		AffinityHitRate: -1,
	}
	if n := len(sched); n > 0 && sched[n-1] > 0 {
		rep.OfferedRate = round3(float64(n) / sched[n-1].Seconds())
	}

	var lats []time.Duration
	var tokens, coalesced int
	for _, s := range samples {
		switch s.class {
		case classOK:
			rep.OK++
			lats = append(lats, s.latency)
			tokens += s.tokens
			if s.coalesced {
				coalesced++
			}
		case classRejected:
			rep.Rejected++
		case classDecode:
			rep.DecodeErrors++
		default:
			rep.Errors++
		}
	}
	rep.RejectShare = round3(float64(rep.Rejected) / float64(len(samples)))
	if wall > 0 {
		rep.Throughput = round3(float64(rep.OK) / wall.Seconds())
	}
	if rep.OK > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		rep.P50MS = roundMS(quantile(lats, 0.50))
		rep.P95MS = roundMS(quantile(lats, 0.95))
		rep.P99MS = roundMS(quantile(lats, 0.99))
		rep.MaxMS = roundMS(lats[len(lats)-1])
		var sum time.Duration
		for _, l := range lats {
			sum += l
		}
		rep.MeanMS = roundMS(sum / time.Duration(rep.OK))
		rep.TokensPerQuery = round3(float64(tokens) / float64(rep.OK))
		rep.CoalesceRate = round3(float64(coalesced) / float64(rep.OK))
	}

	if err := scrapeMetrics(client, base, rep); err != nil {
		return nil, err
	}
	if err := scrapeSLO(client, base, rep); err != nil {
		return nil, err
	}

	// Harness verdict: client-side p99 against the scenario objective.
	// With no objective the run vacuously passes, mirroring /debug/slo.
	rep.SLOPass = true
	if sc.SLOP99MS > 0 && rep.OK > 0 {
		rep.SLOPass = rep.P99MS <= sc.SLOP99MS
	}
	rep.SLOAgree = !rep.SLO.Configured || rep.SLO.Pass == rep.SLOPass
	return rep, nil
}

// quantile is the nearest-rank quantile over sorted samples — the same
// formula obs's SLO engine uses, so the client- and server-side tails
// are comparable definitionally, not just numerically.
func quantile(sorted []time.Duration, p float64) time.Duration {
	idx := int(float64(len(sorted))*p+0.9999999) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func roundMS(d time.Duration) float64 {
	return round3(float64(d) / float64(time.Millisecond))
}

func round3(f float64) float64 {
	return float64(int64(f*1000+0.5)) / 1000
}

// scrapeMetrics pulls the serve-tier counters the report cross-checks:
// affinity routing and the queue high-water mark come only from here —
// the client cannot observe them from response bodies.
func scrapeMetrics(client *http.Client, base string, rep *Report) error {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return fmt.Errorf("load: scraping /metrics: %w", err)
	}
	defer resp.Body.Close()
	var affHits, affMisses float64
	haveAff := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		name, value, ok := parsePromLine(sc.Text())
		if !ok {
			continue
		}
		switch {
		case name == "mqo_serve_queue_depth_peak":
			rep.QueuePeak = int(value)
		case strings.HasPrefix(name, "mqo_pool_affinity_hits_total"):
			affHits += value
			haveAff = true
		case strings.HasPrefix(name, "mqo_pool_affinity_misses_total"):
			affMisses += value
			haveAff = true
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("load: reading /metrics: %w", err)
	}
	if haveAff && affHits+affMisses > 0 {
		rep.AffinityHitRate = round3(affHits / (affHits + affMisses))
	}
	return nil
}

// parsePromLine splits one Prometheus text line into its full series
// name (family plus label block) and value; comments and blanks report
// ok=false.
func parsePromLine(line string) (name string, value float64, ok bool) {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return "", 0, false
	}
	i := strings.LastIndexByte(line, ' ')
	if i < 0 {
		return "", 0, false
	}
	v, err := strconv.ParseFloat(line[i+1:], 64)
	if err != nil {
		return "", 0, false
	}
	return line[:i], v, true
}

// scrapeSLO decodes the server's /debug/slo verdict strictly — an
// unknown field fails the run, keeping the harness honest about the
// report schema it claims to cross-check. /debug/slo serves 503 when
// the objective is violated; both 200 and 503 carry the report body.
func scrapeSLO(client *http.Client, base string, rep *Report) error {
	resp, err := client.Get(base + "/debug/slo")
	if err != nil {
		return fmt.Errorf("load: scraping /debug/slo: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return fmt.Errorf("load: /debug/slo returned %d", resp.StatusCode)
	}
	dec := json.NewDecoder(resp.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rep.SLO); err != nil {
		return fmt.Errorf("load: decoding /debug/slo: %w", err)
	}
	return nil
}
