// Package load is the scenario-driven load harness behind cmd/mqoload:
// the proof layer that turns "fast as the hardware allows" from a claim
// into a guarded number. A Scenario declares everything about one run —
// dataset, open-loop arrival process, tenant mix and quotas, fault
// profile, and serving-tier topology — as one JSON document; the runner
// replays it against the online serving tier (an in-process llmserve
// twin or a real one over the network), records every request's
// latency, outcome and token spend, and emits a machine-readable
// Report whose SLO verdict is cross-checked against the server's own
// /debug/slo within the same run.
//
// Arrivals are open-loop by design: the schedule is fixed up front from
// the seed and requests fire at their scheduled instants whether or not
// earlier ones completed. A closed-loop driver (fire, wait, fire again)
// self-throttles when the server slows down, which silently erases the
// very tail latency a load test exists to measure (see DESIGN.md,
// "Open-loop arrivals"); an open-loop driver keeps offering load, so
// queueing delay and 429 backpressure show up in the numbers.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/prompt"
)

// Arrival processes.
const (
	// ProcessPoisson draws exponential inter-arrival gaps around
	// 1/RatePerSec — the memoryless arrivals of independent users.
	ProcessPoisson = "poisson"
	// ProcessBursty alternates exact ON windows (arrivals at fixed
	// 1/RatePerSec spacing) with silent OFF windows — the on/off duty
	// cycle of batchy clients and retry storms.
	ProcessBursty = "bursty"
)

// Scenario declares one load run. Every field is a scalar so two
// scenarios compare with ==, which is what lets the fuzz harness assert
// exact encode→decode round-trips.
type Scenario struct {
	// Name labels the scenario in reports and BENCH_load.json rows.
	Name string `json:"name"`
	// Seed makes the whole run deterministic: the arrival schedule,
	// tenant assignment, node choice and any injected faults all derive
	// from it.
	Seed uint64 `json:"seed"`
	// Dataset names the graph the serving tier answers over (default
	// "cora"); Scale shrinks it (default 1). Against a remote target the
	// server must have been started with the same dataset, scale and
	// seed, or node IDs will not line up.
	Dataset string  `json:"dataset,omitempty"`
	Scale   float64 `json:"scale,omitempty"`
	// Requests is the total number of queries offered.
	Requests int `json:"requests"`
	// NodePool is how many distinct nodes the run draws queries from
	// (default min(64, graph size)); a small pool concentrates traffic
	// and exercises coalescing, a large one spreads it.
	NodePool int `json:"node_pool,omitempty"`
	// Arrival is the open-loop arrival process.
	Arrival Arrival `json:"arrival"`
	// Tenants is the tenant mix and per-tenant quota.
	Tenants Tenants `json:"tenants"`
	// Faults injects deterministic backend failures and latency
	// (llm.FaultInjector); in-process runs only.
	Faults Faults `json:"faults,omitempty"`
	// Topology is the serving-tier shape under test.
	Topology Topology `json:"topology,omitempty"`
	// SLOP99MS, when > 0, installs a p99 latency objective on the
	// server's SLO engine; the report carries its verdict.
	SLOP99MS float64 `json:"slo_p99_ms,omitempty"`
}

// Arrival declares the open-loop arrival process.
type Arrival struct {
	// Process is ProcessPoisson or ProcessBursty.
	Process string `json:"process"`
	// RatePerSec is the offered arrival rate while arrivals are flowing
	// (for bursty, the rate inside ON windows).
	RatePerSec float64 `json:"rate_per_sec"`
	// OnMS/OffMS shape the bursty duty cycle: OnMS of arrivals, OffMS of
	// silence, repeating. Ignored for poisson.
	OnMS  float64 `json:"on_ms,omitempty"`
	OffMS float64 `json:"off_ms,omitempty"`
}

// Tenants declares the tenant mix.
type Tenants struct {
	// Count is how many distinct tenants issue requests (default 1).
	Count int `json:"count"`
	// TokenBudget, when > 0, is each tenant's delivered-token quota on
	// the serving tier; exhausted tenants get 429s that the report
	// counts separately from queue-full rejections.
	TokenBudget int `json:"token_budget,omitempty"`
	// Skew biases the tenant draw: tenant i is chosen with weight
	// (i+1)^-Skew. 0 is uniform; 1 is a Zipf-ish heavy hitter mix.
	Skew float64 `json:"skew,omitempty"`
}

// Faults declares the deterministic fault profile (llm.FaultConfig
// rates; see that package for semantics). MaxLatencyMS doubles as the
// simulated backend latency — the knob that makes queueing, windows and
// backpressure behave like a real deployment instead of a microsecond
// simulator.
type Faults struct {
	ErrorRate    float64 `json:"error_rate,omitempty"`
	HangRate     float64 `json:"hang_rate,omitempty"`
	GarbageRate  float64 `json:"garbage_rate,omitempty"`
	MaxLatencyMS float64 `json:"max_latency_ms,omitempty"`
}

// enabled reports whether any fault or latency injection is configured.
func (f Faults) enabled() bool {
	return f.ErrorRate > 0 || f.HangRate > 0 || f.GarbageRate > 0 || f.MaxLatencyMS > 0
}

// Topology declares the serving-tier shape: the knobs llmserve exposes
// as flags, here pinned by the scenario so a run is reproducible from
// its JSON alone.
type Topology struct {
	// Replicas pools the predictor as N replica slots (default 1);
	// Hedge/HedgeAfterMS and Affinity configure hedged requests and
	// cache-affine routing exactly like the -hedge/-affinity flags.
	Replicas     int     `json:"replicas,omitempty"`
	Hedge        bool    `json:"hedge,omitempty"`
	HedgeAfterMS float64 `json:"hedge_after_ms,omitempty"`
	Affinity     bool    `json:"affinity,omitempty"`
	// Workers bounds concurrent LLM calls inside each coalesced window
	// (default 4).
	Workers int `json:"workers,omitempty"`
	// WindowMS is the micro-batching window (default serve.DefaultWindow).
	WindowMS float64 `json:"window_ms,omitempty"`
	// MaxQueue is the admission queue's high-water mark (default
	// serve.DefaultMaxQueue).
	MaxQueue int `json:"max_queue,omitempty"`
	// QueryTimeoutMS bounds each predictor call; required when
	// HangRate > 0 (a hung call would otherwise pin its window forever).
	QueryTimeoutMS float64 `json:"query_timeout_ms,omitempty"`
	// NoCache disables the in-memory answer cache inside plan execution
	// (the serve tier's own answer memory is always on).
	NoCache bool `json:"no_cache,omitempty"`
	// Method is the neighbor-selection method (default "1-hop"); M caps
	// neighbors per prompt (default 4); Labeled seeds the context with
	// that many labeled nodes per class (default 20).
	Method  string `json:"method,omitempty"`
	M       int    `json:"m,omitempty"`
	Labeled int    `json:"labeled,omitempty"`
	// Compress (level 1..3) enables the prompt-compression stage inside
	// each coalesced window, and TargetTokens additionally caps each
	// compressed prompt's token count — the -compress/-target-tokens
	// flags, scenario-pinned.
	Compress     int `json:"compress,omitempty"`
	TargetTokens int `json:"target_tokens,omitempty"`
}

// ParseScenario strictly decodes and validates one scenario document:
// unknown fields are errors (a typoed knob must not silently run the
// default), and defaults are applied so the returned scenario is fully
// normalized — encoding it and parsing the result yields an identical
// value, the invariant FuzzScenarioConfig enforces.
func ParseScenario(data []byte) (Scenario, error) {
	var sc Scenario
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return Scenario{}, fmt.Errorf("load: parsing scenario: %w", err)
	}
	// Trailing garbage after the document is a malformed file, not a
	// second scenario.
	if dec.More() {
		return Scenario{}, fmt.Errorf("load: trailing data after scenario document")
	}
	sc.applyDefaults()
	if err := sc.Validate(); err != nil {
		return Scenario{}, err
	}
	return sc, nil
}

// Encode renders the scenario as indented canonical JSON.
func (sc Scenario) Encode() ([]byte, error) {
	return json.MarshalIndent(sc, "", "  ")
}

// applyDefaults normalizes zero fields to their documented defaults.
func (sc *Scenario) applyDefaults() {
	if sc.Dataset == "" {
		sc.Dataset = "cora"
	}
	if sc.Scale == 0 {
		sc.Scale = 1
	}
	if sc.Tenants.Count == 0 {
		sc.Tenants.Count = 1
	}
	if sc.Topology.Replicas == 0 {
		sc.Topology.Replicas = 1
	}
	if sc.Topology.Workers == 0 {
		sc.Topology.Workers = 4
	}
	if sc.Topology.Method == "" {
		sc.Topology.Method = "1-hop"
	}
	if sc.Topology.M == 0 {
		sc.Topology.M = 4
	}
	if sc.Topology.Labeled == 0 {
		sc.Topology.Labeled = 20
	}
}

// Validate reports the first configuration error. It assumes defaults
// have been applied (ParseScenario does both).
func (sc Scenario) Validate() error {
	if sc.Name == "" {
		return fmt.Errorf("load: scenario needs a name")
	}
	if sc.Requests <= 0 {
		return fmt.Errorf("load: scenario %q: requests must be > 0", sc.Name)
	}
	if sc.Scale <= 0 || sc.Scale > 1 {
		return fmt.Errorf("load: scenario %q: scale %v outside (0, 1]", sc.Name, sc.Scale)
	}
	if sc.NodePool < 0 {
		return fmt.Errorf("load: scenario %q: negative node_pool", sc.Name)
	}
	switch sc.Arrival.Process {
	case ProcessPoisson:
	case ProcessBursty:
		if sc.Arrival.OnMS <= 0 {
			return fmt.Errorf("load: scenario %q: bursty arrivals need on_ms > 0", sc.Name)
		}
		if sc.Arrival.OffMS < 0 {
			return fmt.Errorf("load: scenario %q: negative off_ms", sc.Name)
		}
	default:
		return fmt.Errorf("load: scenario %q: unknown arrival process %q (poisson, bursty)",
			sc.Name, sc.Arrival.Process)
	}
	if sc.Arrival.RatePerSec <= 0 {
		return fmt.Errorf("load: scenario %q: rate_per_sec must be > 0", sc.Name)
	}
	if sc.Tenants.Count < 1 {
		return fmt.Errorf("load: scenario %q: tenant count must be >= 1", sc.Name)
	}
	if sc.Tenants.TokenBudget < 0 || sc.Tenants.Skew < 0 {
		return fmt.Errorf("load: scenario %q: negative tenant knob", sc.Name)
	}
	for _, r := range []float64{sc.Faults.ErrorRate, sc.Faults.HangRate, sc.Faults.GarbageRate} {
		if r < 0 || r > 1 {
			return fmt.Errorf("load: scenario %q: fault rate %v outside [0, 1]", sc.Name, r)
		}
	}
	if s := sc.Faults.ErrorRate + sc.Faults.HangRate + sc.Faults.GarbageRate; s > 1 {
		return fmt.Errorf("load: scenario %q: fault rates sum to %v > 1", sc.Name, s)
	}
	if sc.Faults.MaxLatencyMS < 0 {
		return fmt.Errorf("load: scenario %q: negative max_latency_ms", sc.Name)
	}
	if sc.Faults.HangRate > 0 && sc.Topology.QueryTimeoutMS <= 0 {
		return fmt.Errorf("load: scenario %q: hang_rate > 0 needs topology.query_timeout_ms > 0 (a hung call would pin its window forever)", sc.Name)
	}
	t := sc.Topology
	if t.Replicas < 1 {
		return fmt.Errorf("load: scenario %q: replicas must be >= 1", sc.Name)
	}
	if (t.Hedge || t.Affinity) && t.Replicas < 2 {
		return fmt.Errorf("load: scenario %q: hedge/affinity need replicas >= 2", sc.Name)
	}
	if t.HedgeAfterMS < 0 || t.WindowMS < 0 || t.MaxQueue < 0 || t.QueryTimeoutMS < 0 ||
		t.Workers < 1 || t.M < 1 || t.Labeled < 1 {
		return fmt.Errorf("load: scenario %q: topology knob out of range: %+v", sc.Name, t)
	}
	if t.Compress < 0 || t.Compress > prompt.MaxCompressLevel || t.TargetTokens < 0 {
		return fmt.Errorf("load: scenario %q: compress must be 0..%d and target_tokens >= 0", sc.Name, prompt.MaxCompressLevel)
	}
	if sc.SLOP99MS < 0 {
		return fmt.Errorf("load: scenario %q: negative slo_p99_ms", sc.Name)
	}
	return nil
}

// Presets returns the built-in scenarios, the EXPERIMENTS.md anchors:
//
//   - smoke: the short deterministic CI gate (make loadsmoke) — steady
//     Poisson arrivals well inside capacity with a generous SLO, so the
//     verdict is deterministic on any machine.
//   - steady: Poisson arrivals near capacity with realistic simulated
//     backend latency — the tokens-per-query and coalescing headline.
//   - burst: on/off arrivals that slam the window then go silent, the
//     shape that exposes queue-depth peaks between scrapes.
//   - flood: offered load far past capacity against a small queue —
//     the 429/Retry-After backpressure contract under an open loop.
//   - chaos: steady arrivals over an erroring, hanging, high-variance
//     backend behind replicas and hedging.
func Presets() []Scenario {
	raw := []Scenario{
		{
			Name: "smoke", Seed: 1, Scale: 0.12, Requests: 240, NodePool: 32,
			Arrival:  Arrival{Process: ProcessPoisson, RatePerSec: 600},
			Tenants:  Tenants{Count: 4},
			Topology: Topology{Workers: 8, WindowMS: 2},
			SLOP99MS: 30000,
		},
		{
			Name: "steady", Seed: 1, Scale: 0.2, Requests: 400, NodePool: 48,
			Arrival:  Arrival{Process: ProcessPoisson, RatePerSec: 300},
			Tenants:  Tenants{Count: 8, Skew: 0.5},
			Faults:   Faults{MaxLatencyMS: 4},
			Topology: Topology{Workers: 8, WindowMS: 3},
			SLOP99MS: 30000,
		},
		{
			Name: "burst", Seed: 1, Scale: 0.2, Requests: 400, NodePool: 48,
			Arrival:  Arrival{Process: ProcessBursty, RatePerSec: 1200, OnMS: 40, OffMS: 120},
			Tenants:  Tenants{Count: 8},
			Faults:   Faults{MaxLatencyMS: 4},
			Topology: Topology{Workers: 8, WindowMS: 3},
			SLOP99MS: 30000,
		},
		{
			Name: "flood", Seed: 1, Scale: 0.2, Requests: 500, NodePool: 200,
			Arrival:  Arrival{Process: ProcessPoisson, RatePerSec: 4000},
			Tenants:  Tenants{Count: 8},
			Faults:   Faults{MaxLatencyMS: 25},
			Topology: Topology{Workers: 2, WindowMS: 2, MaxQueue: 32},
			SLOP99MS: 30000,
		},
		{
			Name: "chaos", Seed: 1, Scale: 0.2, Requests: 300, NodePool: 64,
			Arrival: Arrival{Process: ProcessPoisson, RatePerSec: 250},
			Tenants: Tenants{Count: 6},
			Faults:  Faults{ErrorRate: 0.05, HangRate: 0.02, GarbageRate: 0.03, MaxLatencyMS: 8},
			Topology: Topology{
				Replicas: 3, Hedge: true, HedgeAfterMS: 20, Workers: 8,
				WindowMS: 3, QueryTimeoutMS: 250,
			},
			SLOP99MS: 30000,
		},
	}
	for i := range raw {
		raw[i].applyDefaults()
	}
	return raw
}

// PresetByName resolves a built-in scenario.
func PresetByName(name string) (Scenario, bool) {
	for _, sc := range Presets() {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

// PresetNames lists the built-in scenario names in order.
func PresetNames() []string {
	var out []string
	for _, sc := range Presets() {
		out = append(out, sc.Name)
	}
	return out
}
