package load

import (
	"math"
	"reflect"
	"testing"
	"time"
)

// TestPoissonMoments checks the Poisson generator's inter-arrival gaps
// against the exponential distribution's first two moments: mean 1/rate
// and variance 1/rate². 50k samples put the sample mean within ~2% of
// truth with overwhelming probability, so the 5%/15% tolerances fail
// only on a genuinely wrong generator, not an unlucky seed.
func TestPoissonMoments(t *testing.T) {
	const (
		n    = 50_000
		rate = 200.0
	)
	sched, err := Arrival{Process: ProcessPoisson, RatePerSec: rate}.Schedule(7, n)
	if err != nil {
		t.Fatal(err)
	}
	gaps := make([]float64, n)
	prev := time.Duration(0)
	for i, at := range sched {
		if at < prev {
			t.Fatalf("schedule not nondecreasing at %d: %v < %v", i, at, prev)
		}
		gaps[i] = (at - prev).Seconds()
		prev = at
	}
	var sum float64
	for _, g := range gaps {
		sum += g
	}
	mean := sum / n
	var varsum float64
	for _, g := range gaps {
		varsum += (g - mean) * (g - mean)
	}
	variance := varsum / n

	wantMean := 1 / rate
	if rel := math.Abs(mean-wantMean) / wantMean; rel > 0.05 {
		t.Errorf("gap mean %.6fs, want %.6fs ± 5%% (off by %.1f%%)", mean, wantMean, 100*rel)
	}
	wantVar := 1 / (rate * rate)
	if rel := math.Abs(variance-wantVar) / wantVar; rel > 0.15 {
		t.Errorf("gap variance %.3e, want %.3e ± 15%% (off by %.1f%%)", variance, wantVar, 100*rel)
	}
}

// TestBurstyDutyCycle pins the bursty schedule exactly: with rate
// 1000/s and a 10ms-on/30ms-off cycle, arrival k sits at
// (k mod 10)·1ms into its burst, bursts starting every 40ms. The duty
// cycle is a property of construction, so the test asserts equality,
// not tolerance.
func TestBurstyDutyCycle(t *testing.T) {
	a := Arrival{Process: ProcessBursty, RatePerSec: 1000, OnMS: 10, OffMS: 30}
	const n = 100
	sched, err := a.Schedule(1, n)
	if err != nil {
		t.Fatal(err)
	}
	const perBurst = 10 // on_ms / (1000ms/rate)
	for k, at := range sched {
		burst := k / perBurst
		within := k % perBurst
		want := time.Duration(burst)*40*time.Millisecond + time.Duration(within)*time.Millisecond
		if at != want {
			t.Fatalf("arrival %d at %v, want %v (burst %d, offset %d)", k, at, want, burst, within)
		}
	}
	// Every arrival lands strictly inside an ON window.
	for k, at := range sched {
		phase := at % (40 * time.Millisecond)
		if phase >= 10*time.Millisecond {
			t.Fatalf("arrival %d at %v lands %v into the cycle — inside the OFF window", k, at, phase)
		}
	}
}

// TestScheduleDeterminism: the same (scenario, seed) must yield a
// bit-identical schedule — the property that makes two topology runs
// comparable under the exact same offered traffic — and a different
// seed must yield a different Poisson schedule.
func TestScheduleDeterminism(t *testing.T) {
	for _, a := range []Arrival{
		{Process: ProcessPoisson, RatePerSec: 333},
		{Process: ProcessBursty, RatePerSec: 500, OnMS: 7, OffMS: 13},
	} {
		s1, err := a.Schedule(42, 500)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := a.Schedule(42, 500)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(s1, s2) {
			t.Errorf("%s: same seed produced different schedules", a.Process)
		}
	}
	p1, _ := Arrival{Process: ProcessPoisson, RatePerSec: 333}.Schedule(42, 500)
	p2, _ := Arrival{Process: ProcessPoisson, RatePerSec: 333}.Schedule(43, 500)
	if reflect.DeepEqual(p1, p2) {
		t.Error("poisson: different seeds produced identical schedules")
	}
}

// TestScheduleErrors: the generator rejects unusable parameters rather
// than emitting a degenerate schedule.
func TestScheduleErrors(t *testing.T) {
	cases := []struct {
		name string
		a    Arrival
		n    int
	}{
		{"zero n", Arrival{Process: ProcessPoisson, RatePerSec: 10}, 0},
		{"zero rate", Arrival{Process: ProcessPoisson}, 5},
		{"unknown process", Arrival{Process: "uniform", RatePerSec: 10}, 5},
		{"bursty no on", Arrival{Process: ProcessBursty, RatePerSec: 10}, 5},
		{"bursty negative off", Arrival{Process: ProcessBursty, RatePerSec: 10, OnMS: 5, OffMS: -1}, 5},
	}
	for _, tc := range cases {
		if _, err := tc.a.Schedule(1, tc.n); err == nil {
			t.Errorf("%s: expected error, got schedule", tc.name)
		}
	}
}
