package load

import (
	"fmt"
	"math"
	"time"

	"repro/internal/xrand"
)

// Schedule materializes the arrival process as n offsets from the run
// start, in nondecreasing order. The schedule is a pure function of
// (process parameters, seed, n): the same scenario produces the same
// bit-identical schedule on every run and every machine, which is what
// makes a load run replayable and two topologies comparable under the
// exact same offered traffic.
func (a Arrival) Schedule(seed uint64, n int) ([]time.Duration, error) {
	if n <= 0 {
		return nil, fmt.Errorf("load: schedule needs n > 0")
	}
	if a.RatePerSec <= 0 {
		return nil, fmt.Errorf("load: schedule needs rate_per_sec > 0")
	}
	switch a.Process {
	case ProcessPoisson:
		return a.poisson(seed, n), nil
	case ProcessBursty:
		return a.bursty(n)
	default:
		return nil, fmt.Errorf("load: unknown arrival process %q", a.Process)
	}
}

// poisson draws exponential inter-arrival gaps: t_{k+1} = t_k +
// Exp(rate). The RNG stream is split off the seed under a fixed label,
// so arrival draws can never collide with (or perturb) the tenant and
// node draws made from the same scenario seed.
func (a Arrival) poisson(seed uint64, n int) []time.Duration {
	rng := xrand.New(seed).SplitString("load/arrival")
	out := make([]time.Duration, n)
	var t float64 // seconds
	for i := 0; i < n; i++ {
		u := rng.Float64()
		// -ln(1-u)/rate; 1-u is in (0, 1] so the log is finite.
		t += -math.Log1p(-u) / a.RatePerSec
		out[i] = secs(t)
	}
	return out
}

// bursty places arrivals at exact 1/rate spacing inside ON windows and
// skips OFF windows entirely. It needs no randomness: arrival k sits at
// on-time k/rate, and on-time maps to wall time by inserting one OFF
// gap per completed ON window — so the duty cycle is exact by
// construction, not in expectation.
func (a Arrival) bursty(n int) ([]time.Duration, error) {
	if a.OnMS <= 0 {
		return nil, fmt.Errorf("load: bursty arrivals need on_ms > 0")
	}
	if a.OffMS < 0 {
		return nil, fmt.Errorf("load: negative off_ms")
	}
	on := a.OnMS / 1e3  // seconds
	off := a.OffMS / 1e3
	step := 1 / a.RatePerSec
	out := make([]time.Duration, n)
	for i := 0; i < n; i++ {
		onTime := float64(i) * step
		cycles := math.Floor(onTime / on)
		wall := onTime + cycles*off
		out[i] = secs(wall)
	}
	return out, nil
}

// secs converts seconds to a Duration with rounding, so a wall time
// that is exactly representable in milliseconds does not truncate to
// one nanosecond short of it.
func secs(t float64) time.Duration {
	return time.Duration(t*float64(time.Second) + 0.5)
}
