package load

import (
	"encoding/json"
	"path/filepath"
	"testing"
)

// TestRunSmokePreset drives the CI smoke scenario end to end against
// the in-process serving tier and checks the report's accounting
// invariants: every offered request is classified exactly once, the
// contract decode never fails against our own server, and the SLO
// verdict agrees with /debug/slo from the same run.
func TestRunSmokePreset(t *testing.T) {
	sc, ok := PresetByName("smoke")
	if !ok {
		t.Fatal("smoke preset missing")
	}
	sc.Requests = 120 // trim the preset for test wall-clock

	rep, err := Run(sc, Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.OK + rep.Rejected + rep.Errors + rep.DecodeErrors; got != sc.Requests {
		t.Errorf("classified %d of %d requests", got, sc.Requests)
	}
	if rep.DecodeErrors != 0 {
		t.Errorf("%d decode errors against our own server — wire contract drifted", rep.DecodeErrors)
	}
	if rep.Errors != 0 {
		t.Errorf("%d errors in a fault-free scenario", rep.Errors)
	}
	if rep.OK == 0 {
		t.Fatal("no request completed")
	}
	if rep.TokensPerQuery <= 0 {
		t.Errorf("tokens_per_query %v, want > 0", rep.TokensPerQuery)
	}
	if rep.P50MS <= 0 || rep.P99MS < rep.P50MS {
		t.Errorf("implausible percentiles: p50 %v p99 %v", rep.P50MS, rep.P99MS)
	}
	if !rep.SLO.Configured {
		t.Error("smoke preset sets an SLO but /debug/slo reports none configured")
	}
	if rep.SLO.Samples == 0 {
		t.Error("server SLO engine saw no samples")
	}
	if !rep.SLOAgree {
		t.Errorf("client and server SLO verdicts disagree: client pass=%v server pass=%v",
			rep.SLOPass, rep.SLO.Pass)
	}

	// The report must survive the JSON-lines append that builds
	// BENCH_load.json.
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := rep.AppendJSONL(path); err != nil {
		t.Fatal(err)
	}
	if err := rep.AppendJSONL(path); err != nil {
		t.Fatal(err)
	}
}

// TestRunQuotaBackpressure gives each tenant a tiny token budget and
// asserts the open-loop driver observes quota 429s as rejections, not
// errors — the tenant-quota half of the backpressure contract.
func TestRunQuotaBackpressure(t *testing.T) {
	sc := Scenario{
		Name: "quota", Seed: 3, Scale: 0.12, Requests: 80, NodePool: 60,
		Arrival:  Arrival{Process: ProcessPoisson, RatePerSec: 2000},
		Tenants:  Tenants{Count: 2, TokenBudget: 200},
		Topology: Topology{Workers: 8, WindowMS: 1},
	}
	rep, err := Run(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rejected == 0 {
		t.Errorf("no rejections despite a %d-token budget: %+v", sc.Tenants.TokenBudget, rep)
	}
	if rep.DecodeErrors != 0 {
		t.Errorf("%d decode errors — 429 bodies or Retry-After drifted", rep.DecodeErrors)
	}
	if rep.OK == 0 {
		t.Error("budget rejected everything; expected some completions before exhaustion")
	}
}

// TestReportJSONShape pins the BENCH_load.json row schema: the fields
// the acceptance gate greps for must exist under exactly these keys.
func TestReportJSONShape(t *testing.T) {
	rep := &Report{Scenario: "x"}
	enc, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(enc, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"scenario", "seed", "requests", "p50_ms", "p95_ms", "p99_ms",
		"tokens_per_query", "coalesce_rate", "affinity_hit_rate",
		"reject_share", "queue_peak", "slo", "slo_pass", "slo_agree",
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("report row missing key %q", key)
		}
	}
}
