package load

import (
	"strings"
	"testing"
)

// TestParseScenario covers the strict-decode contract: valid documents
// normalize, typos and trailing data are errors.
func TestParseScenario(t *testing.T) {
	sc, err := ParseScenario([]byte(`{
		"name": "t", "requests": 10,
		"arrival": {"process": "poisson", "rate_per_sec": 100},
		"tenants": {"count": 2}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Dataset != "cora" || sc.Scale != 1 || sc.Topology.Workers != 4 ||
		sc.Topology.Method != "1-hop" || sc.Topology.Replicas != 1 {
		t.Errorf("defaults not applied: %+v", sc)
	}

	if _, err := ParseScenario([]byte(`{"name": "t", "requets": 1}`)); err == nil ||
		!strings.Contains(err.Error(), "requets") {
		t.Errorf("typoed field should fail strict decode, got %v", err)
	}
	if _, err := ParseScenario([]byte(`{"name": "t", "requests": 1,
		"arrival": {"process": "poisson", "rate_per_sec": 1},
		"tenants": {"count": 1}} trailing`)); err == nil {
		t.Error("trailing data should be rejected")
	}
}

// TestValidateRejections spot-checks the validator's guardrails.
func TestValidateRejections(t *testing.T) {
	base := func() Scenario {
		sc := Scenario{
			Name: "t", Requests: 10,
			Arrival: Arrival{Process: ProcessPoisson, RatePerSec: 100},
		}
		sc.applyDefaults()
		return sc
	}
	cases := []struct {
		name   string
		mutate func(*Scenario)
	}{
		{"no name", func(s *Scenario) { s.Name = "" }},
		{"no requests", func(s *Scenario) { s.Requests = 0 }},
		{"scale > 1", func(s *Scenario) { s.Scale = 1.5 }},
		{"bad process", func(s *Scenario) { s.Arrival.Process = "lumpy" }},
		{"fault rates sum > 1", func(s *Scenario) {
			s.Faults.ErrorRate = 0.6
			s.Faults.GarbageRate = 0.6
		}},
		{"hang without timeout", func(s *Scenario) { s.Faults.HangRate = 0.1 }},
		{"hedge without replicas", func(s *Scenario) { s.Topology.Hedge = true }},
		{"affinity without replicas", func(s *Scenario) { s.Topology.Affinity = true }},
		{"negative slo", func(s *Scenario) { s.SLOP99MS = -1 }},
	}
	for _, tc := range cases {
		sc := base()
		tc.mutate(&sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("base scenario should validate: %v", err)
	}
}

// TestPresetsRoundTrip: every built-in scenario validates and survives
// encode→parse as a fixed point — the same invariant the fuzz target
// enforces on arbitrary accepted inputs.
func TestPresetsRoundTrip(t *testing.T) {
	names := map[string]bool{}
	for _, sc := range Presets() {
		if names[sc.Name] {
			t.Fatalf("duplicate preset name %q", sc.Name)
		}
		names[sc.Name] = true
		if err := sc.Validate(); err != nil {
			t.Errorf("preset %q invalid: %v", sc.Name, err)
			continue
		}
		enc, err := sc.Encode()
		if err != nil {
			t.Fatal(err)
		}
		back, err := ParseScenario(enc)
		if err != nil {
			t.Errorf("preset %q re-parse: %v", sc.Name, err)
			continue
		}
		if back != sc {
			t.Errorf("preset %q round-trip drifted:\n  was %+v\n  got %+v", sc.Name, sc, back)
		}
	}
	for _, want := range []string{"smoke", "steady", "burst", "flood", "chaos"} {
		if _, ok := PresetByName(want); !ok {
			t.Errorf("missing preset %q", want)
		}
	}
	if _, ok := PresetByName("nope"); ok {
		t.Error("PresetByName accepted an unknown name")
	}
	if got := len(PresetNames()); got != len(Presets()) {
		t.Errorf("PresetNames returned %d names for %d presets", got, len(Presets()))
	}
}
