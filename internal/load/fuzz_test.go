package load

import (
	"testing"
)

// FuzzScenarioConfig feeds arbitrary bytes to the strict scenario
// decoder. Two properties must hold:
//
//  1. ParseScenario never panics, whatever the input.
//  2. Any input it accepts is already normalized: encoding the result
//     and parsing it again yields the identical Scenario value (the
//     struct is all scalars precisely so == is exact here). This is
//     what makes a scenario file a stable run identity — if
//     parse(encode(parse(x))) could drift from parse(x), two "replays"
//     of the same document could drive different runs.
func FuzzScenarioConfig(f *testing.F) {
	for _, sc := range Presets() {
		enc, err := sc.Encode()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name": "x", "requests": 1, "arrival": {"process": "poisson", "rate_per_sec": 0.5}, "tenants": {"count": 1}}`))
	f.Add([]byte(`{"name": "x", "requests": 1e9}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`[1, 2, 3]`))
	f.Add([]byte(`{"name": "x"} {"name": "y"}`))
	f.Add([]byte("{\"name\": \"\x00\"}"))

	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := ParseScenario(data)
		if err != nil {
			return // rejection is fine; panics are not
		}
		enc, err := sc.Encode()
		if err != nil {
			t.Fatalf("accepted scenario failed to encode: %v\n%+v", err, sc)
		}
		back, err := ParseScenario(enc)
		if err != nil {
			t.Fatalf("accepted scenario failed to re-parse: %v\nencoded: %s", err, enc)
		}
		if back != sc {
			t.Fatalf("round-trip drifted:\n  was %+v\n  got %+v\n  encoded: %s", sc, back, enc)
		}
	})
}
