package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/obs"
	"repro/internal/predictors"
	"repro/internal/prompt"
	"repro/internal/serve"
	"repro/internal/tag"
	"repro/internal/xrand"
)

// Options tunes how a scenario runs.
type Options struct {
	// TargetURL points the runner at a running llmserve (started with
	// -serve and the scenario's dataset/scale/seed). Empty runs an
	// in-process serving tier — same serve.Server, same /v1/query
	// handler, no network stack in between.
	TargetURL string
	// Logf receives progress lines; nil is silent.
	Logf func(format string, args ...any)
}

func (o Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// outcome classes for one driven request.
const (
	classOK       = "ok"
	classRejected = "rejected" // 429/503 backpressure with a Retry-After
	classError    = "error"    // any other failure mode
	classDecode   = "decode"   // response violated the /v1/query contract
)

// sample records one request's fate.
type sample struct {
	class     string
	latency   time.Duration
	tokens    int
	coalesced bool
	fallback  bool
	status    int
}

// Run drives one scenario and builds its report. The offered schedule
// is deterministic; observed latencies are whatever the hardware did.
func Run(sc Scenario, opts Options) (*Report, error) {
	sc.applyDefaults()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	sched, err := sc.Arrival.Schedule(sc.Seed, sc.Requests)
	if err != nil {
		return nil, err
	}

	// The graph is generated locally in both modes: in-process it backs
	// the serving tier, remotely it only defines the node universe the
	// driver may ask about (the server, started with the same dataset,
	// scale and seed, generated the identical graph).
	spec, err := tag.SpecByName(sc.Dataset)
	if err != nil {
		return nil, fmt.Errorf("load: scenario %q: %w", sc.Name, err)
	}
	g := tag.Generate(spec, sc.Seed, tag.Options{Scale: sc.Scale})

	base := opts.TargetURL
	target := base
	if base == "" {
		ts, tier, err := startInProcess(sc, g)
		if err != nil {
			return nil, err
		}
		defer tier.Close()
		defer ts.Close()
		base = ts.URL
		target = "in-process"
	}

	// Deterministic tenant and node draws, split off the scenario seed
	// under their own labels (independent of the arrival stream).
	pool := nodePool(sc, g)
	trng := xrand.New(sc.Seed).SplitString("load/tenant")
	nrng := xrand.New(sc.Seed).SplitString("load/node")
	weights := tenantWeights(sc.Tenants)
	tenants := make([]string, sc.Requests)
	nodes := make([]int, sc.Requests)
	for i := 0; i < sc.Requests; i++ {
		tenants[i] = fmt.Sprintf("tenant-%d", trng.Categorical(weights))
		nodes[i] = pool[nrng.Intn(len(pool))]
	}

	client := &http.Client{Timeout: 120 * time.Second}
	opts.logf("load: %s: offering %d requests (%s @ %.0f/s) against %s",
		sc.Name, sc.Requests, sc.Arrival.Process, sc.Arrival.RatePerSec, target)

	// Open loop: every request fires at its scheduled offset whether or
	// not earlier ones completed. One goroutine per request keeps the
	// dispatcher itself off the critical path.
	samples := make([]sample, sc.Requests)
	start := time.Now()
	var wg sync.WaitGroup
	for i := range sched {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if d := time.Until(start.Add(sched[i])); d > 0 {
				time.Sleep(d)
			}
			samples[i] = doQuery(client, base, tenants[i], nodes[i])
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	rep, err := buildReport(sc, target, samples, sched, wall, client, base)
	if err != nil {
		return nil, err
	}
	opts.logf("load: %s: %s", sc.Name, rep.Summary())
	return rep, nil
}

// nodePool picks the distinct nodes the run queries, seeded.
func nodePool(sc Scenario, g *tag.Graph) []int {
	n := sc.NodePool
	if n <= 0 {
		n = 64
	}
	if n > g.NumNodes() {
		n = g.NumNodes()
	}
	rng := xrand.New(sc.Seed).SplitString("load/pool")
	idx := rng.Sample(g.NumNodes(), n)
	return idx
}

// tenantWeights renders the skewed tenant mix: weight_i = (i+1)^-skew.
func tenantWeights(t Tenants) []float64 {
	w := make([]float64, t.Count)
	for i := range w {
		w[i] = math.Pow(float64(i+1), -t.Skew)
	}
	return w
}

// startInProcess builds the scenario's serving tier — the same stack
// llmserve -serve mounts — behind an httptest server, so even the
// "in-process" mode exercises the real HTTP contract the golden tests
// pin.
func startInProcess(sc Scenario, g *tag.Graph) (*httptest.Server, *serve.Server, error) {
	method, err := predictors.ByName(sc.Topology.Method)
	if err != nil {
		return nil, nil, fmt.Errorf("load: scenario %q: %w", sc.Name, err)
	}
	reg := obs.NewRegistry()
	if sc.SLOP99MS > 0 {
		reg.SetSLO(obs.SLO{
			Name:       "query_latency_p99",
			Objective:  time.Duration(sc.SLOP99MS * float64(time.Millisecond)),
			Percentile: 0.99,
		})
	}
	split := g.SplitPerClass(xrand.New(sc.Seed+1), sc.Topology.Labeled, 0)
	pctx := &predictors.Context{
		Graph: g,
		Known: predictors.KnownFromSplit(g, split),
		M:     sc.Topology.M,
		Seed:  sc.Seed,
		Obs:   reg,
	}
	var pred llm.Predictor = llm.NewSim(llm.GPT35(), g.Vocab, g.Classes, sc.Seed)
	if sc.Faults.enabled() {
		pred, err = llm.NewFaultInjector(pred, llm.FaultConfig{
			Seed:        sc.Seed,
			ErrorRate:   sc.Faults.ErrorRate,
			HangRate:    sc.Faults.HangRate,
			GarbageRate: sc.Faults.GarbageRate,
			MaxLatency:  time.Duration(sc.Faults.MaxLatencyMS * float64(time.Millisecond)),
		})
		if err != nil {
			return nil, nil, fmt.Errorf("load: scenario %q: %w", sc.Name, err)
		}
	}
	scfg := serve.Config{
		Window:       time.Duration(sc.Topology.WindowMS * float64(time.Millisecond)),
		MaxQueue:     sc.Topology.MaxQueue,
		TenantBudget: sc.Tenants.TokenBudget,
		Obs:          reg,
		Exec: core.ExecConfig{
			Workers:      sc.Topology.Workers,
			Cache:        !sc.Topology.NoCache,
			QueryTimeout: time.Duration(sc.Topology.QueryTimeoutMS * float64(time.Millisecond)),
			ReplicaCount: sc.Topology.Replicas,
			Hedge:        sc.Topology.Hedge,
			HedgeAfter:   time.Duration(sc.Topology.HedgeAfterMS * float64(time.Millisecond)),
			Affinity:     sc.Topology.Affinity,
			Compress:     prompt.Compressor{Level: sc.Topology.Compress, TargetTokens: sc.Topology.TargetTokens},
		},
	}
	tier, err := serve.New(pctx, method, pred, scfg)
	if err != nil {
		return nil, nil, fmt.Errorf("load: scenario %q: %w", sc.Name, err)
	}
	mux := http.NewServeMux()
	mux.Handle(serve.QueryPath, serve.Handler(tier))
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/slo", obs.SLOHandler(reg))
	return httptest.NewServer(mux), tier, nil
}

// queryResponse is the harness's strict decode of the /v1/query success
// body. DisallowUnknownFields plus the golden contract tests on the
// server side mean neither end can drift without a test failing.
type queryResponse struct {
	Node         int    `json:"node"`
	Category     string `json:"category"`
	Tenant       string `json:"tenant"`
	Coalesced    bool   `json:"coalesced"`
	Cached       bool   `json:"cached"`
	Fallback     bool   `json:"fallback"`
	InputTokens  int    `json:"input_tokens"`
	OutputTokens int    `json:"output_tokens"`
	TraceID      string `json:"trace_id"`
}

// doQuery drives one request and classifies the outcome.
func doQuery(client *http.Client, base, tenant string, node int) sample {
	body := fmt.Sprintf(`{"node": %d}`, node)
	req, err := http.NewRequest(http.MethodPost, base+serve.QueryPath, strings.NewReader(body))
	if err != nil {
		return sample{class: classError}
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Tenant", tenant)
	t0 := time.Now()
	resp, err := client.Do(req)
	lat := time.Since(t0)
	if err != nil {
		return sample{class: classError, latency: lat}
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	lat = time.Since(t0)
	if err != nil {
		return sample{class: classError, latency: lat, status: resp.StatusCode}
	}
	s := sample{latency: lat, status: resp.StatusCode}
	switch resp.StatusCode {
	case http.StatusOK:
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		var qr queryResponse
		if err := dec.Decode(&qr); err != nil || qr.Category == "" || qr.Node != node || qr.Tenant != tenant {
			s.class = classDecode
			return s
		}
		s.class = classOK
		s.tokens = qr.InputTokens + qr.OutputTokens
		s.coalesced = qr.Coalesced
		s.fallback = qr.Fallback
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		// The backpressure contract requires a Retry-After hint; a 429
		// without one is a contract violation, not a rejection.
		if resp.Header.Get("Retry-After") == "" {
			s.class = classDecode
			return s
		}
		s.class = classRejected
	default:
		s.class = classError
	}
	return s
}
