package tag

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/textgen"
)

// Snapshot persistence: a Graph serializes to a single JSON document so
// generated datasets can be saved once and reloaded by tools, tests and
// long-running services without regenerating. The format is versioned;
// Load rejects unknown versions and structurally invalid graphs.

// snapshotFormat is bumped on breaking changes to the snapshot schema.
const snapshotFormat = 1

// snapshot is the on-disk representation of a Graph.
type snapshot struct {
	Format  int      `json:"format"`
	Name    string   `json:"name"`
	Display string   `json:"display"`
	Classes []string `json:"classes"`
	Nodes   []Node   `json:"nodes"`
	// Edges lists each undirected edge once with u < v.
	Edges [][2]NodeID `json:"edges"`
	Vocab *vocabDoc   `json:"vocab,omitempty"`
}

// vocabDoc persists the generating vocabulary (its lookup index is
// rebuilt on load).
type vocabDoc struct {
	Signal     [][]string `json:"signal"`
	Background []string   `json:"background"`
	Confuser   []int      `json:"confuser"`
}

// Save writes the graph as one JSON document.
func Save(w io.Writer, g *Graph) error {
	if g == nil {
		return fmt.Errorf("tag: cannot save nil graph")
	}
	s := snapshot{
		Format:  snapshotFormat,
		Name:    g.Name,
		Display: g.Display,
		Classes: g.Classes,
		Nodes:   g.Nodes,
	}
	for u, ns := range g.adj {
		for _, v := range ns {
			if NodeID(u) < v {
				s.Edges = append(s.Edges, [2]NodeID{NodeID(u), v})
			}
		}
	}
	if g.Vocab != nil {
		s.Vocab = &vocabDoc{
			Signal:     g.Vocab.Signal,
			Background: g.Vocab.Background,
			Confuser:   g.Vocab.Confuser,
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&s)
}

// Load reads a snapshot written by Save, rebuilds adjacency and the
// vocabulary index, and validates the result.
func Load(r io.Reader) (*Graph, error) {
	var s snapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("tag: decoding snapshot: %w", err)
	}
	if s.Format != snapshotFormat {
		return nil, fmt.Errorf("tag: snapshot format %d not supported (want %d)", s.Format, snapshotFormat)
	}
	g := &Graph{
		Name:    s.Name,
		Display: s.Display,
		Classes: s.Classes,
		Nodes:   s.Nodes,
		adj:     make([][]NodeID, len(s.Nodes)),
	}
	n := NodeID(len(s.Nodes))
	for _, e := range s.Edges {
		if e[0] < 0 || e[0] >= n || e[1] < 0 || e[1] >= n {
			return nil, fmt.Errorf("tag: snapshot edge %v out of range [0,%d)", e, n)
		}
		g.addEdge(e[0], e[1])
	}
	g.sortAdj()
	if s.Vocab != nil {
		g.Vocab = snapshotVocab(s.Vocab)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("tag: snapshot invalid: %w", err)
	}
	return g, nil
}

// snapshotVocab materializes a persisted vocabulary and rebuilds its
// word→class index.
func snapshotVocab(d *vocabDoc) *textgen.Vocabulary {
	v := &textgen.Vocabulary{
		Signal:     d.Signal,
		Background: d.Background,
		Confuser:   d.Confuser,
	}
	v.RebuildIndex()
	return v
}
