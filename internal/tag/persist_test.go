package tag

import (
	"bytes"
	"strings"
	"testing"
)

func roundTrip(t *testing.T, g *Graph) *Graph {
	t.Helper()
	var buf bytes.Buffer
	if err := Save(&buf, g); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return loaded
}

func TestSnapshotRoundTrip(t *testing.T) {
	spec, err := SpecByName("citeseer")
	if err != nil {
		t.Fatal(err)
	}
	g := Generate(spec, 11, Options{Scale: 0.2})
	loaded := roundTrip(t, g)

	if loaded.Name != g.Name || loaded.Display != g.Display {
		t.Errorf("identity changed: %q/%q -> %q/%q", g.Name, g.Display, loaded.Name, loaded.Display)
	}
	if loaded.NumNodes() != g.NumNodes() || loaded.NumEdges() != g.NumEdges() {
		t.Fatalf("size changed: %d/%d -> %d/%d",
			g.NumNodes(), g.NumEdges(), loaded.NumNodes(), loaded.NumEdges())
	}
	for i := range g.Nodes {
		if g.Nodes[i] != loaded.Nodes[i] {
			t.Fatalf("node %d changed: %+v -> %+v", i, g.Nodes[i], loaded.Nodes[i])
		}
		ns, ls := g.Neighbors(NodeID(i)), loaded.Neighbors(NodeID(i))
		if len(ns) != len(ls) {
			t.Fatalf("node %d degree changed: %d -> %d", i, len(ns), len(ls))
		}
		for j := range ns {
			if ns[j] != ls[j] {
				t.Fatalf("node %d adjacency changed", i)
			}
		}
	}
	if loaded.EdgeHomophily() != g.EdgeHomophily() {
		t.Error("homophily changed across round trip")
	}
	// The vocabulary index must be rebuilt: signal-word lookups work.
	w := g.Vocab.Signal[0][0]
	if got := loaded.Vocab.ClassOf(w); got != 0 {
		t.Errorf("loaded ClassOf(%q) = %d, want 0", w, got)
	}
	if loaded.Vocab.ClassOf("definitely-not-a-word") != -1 {
		t.Error("unknown word resolved to a class")
	}
}

func TestSnapshotRejectsBadInput(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"not json", "garbage"},
		{"wrong format", `{"format":99,"nodes":[]}`},
		{"edge out of range", `{"format":1,"classes":["A"],"nodes":[{"ID":0,"Title":"t","Label":0}],"edges":[[0,5]]}`},
		{"self loop", `{"format":1,"classes":["A"],"nodes":[{"ID":0,"Title":"t","Label":0},{"ID":1,"Title":"u","Label":0}],"edges":[[0,0]]}`},
		{"label out of range", `{"format":1,"classes":["A"],"nodes":[{"ID":0,"Title":"t","Label":3}],"edges":[]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Load(strings.NewReader(tc.doc)); err == nil {
				t.Errorf("accepted %s", tc.name)
			}
		})
	}
	if err := Save(&bytes.Buffer{}, nil); err == nil {
		t.Error("Save(nil) accepted")
	}
}

// TestSnapshotLoadedGraphIsUsable checks the loaded graph behaves
// identically under the paper's pipeline entry points.
func TestSnapshotLoadedGraphIsUsable(t *testing.T) {
	spec, err := SpecByName("cora")
	if err != nil {
		t.Fatal(err)
	}
	g := Generate(spec, 13, Options{Scale: 0.1})
	loaded := roundTrip(t, g)

	a, _ := g.KHop(0, 2)
	b, _ := loaded.KHop(0, 2)
	if len(a) != len(b) {
		t.Fatalf("KHop sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("KHop order differs after round trip")
		}
	}
	if g.Text(3) != loaded.Text(3) {
		t.Error("node text differs after round trip")
	}
	if err := loaded.Validate(); err != nil {
		t.Errorf("loaded graph invalid: %v", err)
	}
}
