// Package tag models text-attributed graphs (TAGs) and generates the
// five benchmark datasets the paper evaluates on.
//
// A TAG is G = (V, E, T, X): nodes, edges, per-node text and per-node
// input features (Section III-A of the paper). Here text is synthesized
// by internal/textgen with a controlled per-node ambiguity level, edges
// follow a homophilous degree-skewed random graph, and features are
// encoded from text by internal/encode. Generators for Cora, Citeseer,
// Pubmed, Ogbn-Arxiv and Ogbn-Products reproduce the statistical shape
// of Table II (class counts, degree, homophily, zero-shot difficulty,
// text length); the two OGB graphs can be scaled down for tractable
// experiments while Table V uses their full-size node counts.
package tag

import (
	"fmt"
	"sort"

	"repro/internal/textgen"
	"repro/internal/xrand"
)

// NodeID identifies a node within one Graph.
type NodeID int

// Node is a single vertex with its text attribute and ground-truth
// label. Ambiguity is the latent generation parameter that controls how
// informative the node's own text is; algorithms must not read it (it
// exists for analysis and tests only).
type Node struct {
	ID        NodeID
	Title     string
	Abstract  string
	Label     int
	Ambiguity float64
	// Noisy marks label noise: the node's text reads as its confuser
	// class (multi-topic papers, mislabeled products). No amount of
	// evidence recovers these labels — they bound every method's
	// accuracy, as in the real benchmarks. Like Ambiguity, it is a
	// generation-time latent for analysis and tests only.
	Noisy bool
}

// Graph is an undirected text-attributed graph.
type Graph struct {
	Name    string   // short identifier, e.g. "cora"
	Display string   // human name, e.g. "Cora"
	Classes []string // class names, index = label
	Nodes   []Node
	adj     [][]NodeID

	// Vocab is the generating vocabulary; the simulated LLM derives its
	// (noisy) world knowledge from it.
	Vocab *textgen.Vocabulary
}

// NumNodes returns |V|.
func (g *Graph) NumNodes() int { return len(g.Nodes) }

// NumEdges returns |E| counting each undirected edge once.
func (g *Graph) NumEdges() int {
	total := 0
	for _, ns := range g.adj {
		total += len(ns)
	}
	return total / 2
}

// Degree returns the degree of v.
func (g *Graph) Degree(v NodeID) int { return len(g.adj[v]) }

// Neighbors returns v's direct neighbors. The returned slice is shared;
// callers must not modify it.
func (g *Graph) Neighbors(v NodeID) []NodeID { return g.adj[v] }

// HasEdge reports whether an edge {u, v} exists.
func (g *Graph) HasEdge(u, v NodeID) bool {
	ns := g.adj[u]
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= v })
	return i < len(ns) && ns[i] == v
}

// Text returns the node's full text (title + abstract).
func (g *Graph) Text(v NodeID) string {
	n := &g.Nodes[v]
	if n.Abstract == "" {
		return n.Title
	}
	return n.Title + " " + n.Abstract
}

// KHop returns all nodes within k hops of v (excluding v itself),
// ordered by hop distance and then by ID. HopOf[i] gives the distance
// of the i-th returned node.
func (g *Graph) KHop(v NodeID, k int) (nodes []NodeID, hopOf []int) {
	if k <= 0 {
		return nil, nil
	}
	dist := map[NodeID]int{v: 0}
	frontier := []NodeID{v}
	for h := 1; h <= k && len(frontier) > 0; h++ {
		var next []NodeID
		for _, u := range frontier {
			for _, w := range g.adj[u] {
				if _, seen := dist[w]; !seen {
					dist[w] = h
					next = append(next, w)
				}
			}
		}
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
		for _, w := range next {
			nodes = append(nodes, w)
			hopOf = append(hopOf, h)
		}
		frontier = next
	}
	return nodes, hopOf
}

// EdgeHomophily returns the fraction of edges whose endpoints share a
// label.
func (g *Graph) EdgeHomophily() float64 {
	same, total := 0, 0
	for u := range g.adj {
		for _, v := range g.adj[u] {
			if NodeID(u) < v {
				total++
				if g.Nodes[u].Label == g.Nodes[v].Label {
					same++
				}
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(same) / float64(total)
}

// addEdge inserts the undirected edge {u, v}; duplicate and self edges
// are the caller's responsibility to avoid.
func (g *Graph) addEdge(u, v NodeID) {
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
}

func (g *Graph) sortAdj() {
	for i := range g.adj {
		ns := g.adj[i]
		sort.Slice(ns, func(a, b int) bool { return ns[a] < ns[b] })
	}
}

// Validate checks structural invariants: symmetric sorted adjacency, no
// self loops, no duplicate edges, labels in range. It is used by tests
// and the taggen tool.
func (g *Graph) Validate() error {
	if len(g.adj) != len(g.Nodes) {
		return fmt.Errorf("tag: adjacency size %d != node count %d", len(g.adj), len(g.Nodes))
	}
	for u, ns := range g.adj {
		for i, v := range ns {
			if v == NodeID(u) {
				return fmt.Errorf("tag: self loop at node %d", u)
			}
			if int(v) < 0 || int(v) >= len(g.Nodes) {
				return fmt.Errorf("tag: edge endpoint %d out of range", v)
			}
			if i > 0 && ns[i-1] >= v {
				return fmt.Errorf("tag: adjacency of %d not sorted/deduplicated", u)
			}
			if !g.HasEdge(v, NodeID(u)) {
				return fmt.Errorf("tag: edge {%d,%d} not symmetric", u, v)
			}
		}
	}
	for i, n := range g.Nodes {
		if n.Label < 0 || n.Label >= len(g.Classes) {
			return fmt.Errorf("tag: node %d label %d out of range", i, n.Label)
		}
		if n.ID != NodeID(i) {
			return fmt.Errorf("tag: node %d has ID %d", i, n.ID)
		}
	}
	return nil
}

// Split partitions nodes for the node-classification task: Labeled is
// the paper's V_L (labels visible to methods), Query is V_Q (the nodes
// to classify).
type Split struct {
	Labeled []NodeID
	Query   []NodeID
}

// IsLabeled builds a membership set for the labeled nodes.
func (s Split) IsLabeled() map[NodeID]bool {
	m := make(map[NodeID]bool, len(s.Labeled))
	for _, v := range s.Labeled {
		m[v] = true
	}
	return m
}

// SplitPerClass selects perClass labeled nodes from every class and
// queryCount query nodes from the remainder, mirroring the paper's
// protocol for Cora/Citeseer/Pubmed (20 per class labeled, 1,000
// queries). If a class has fewer than perClass nodes, all of them are
// labeled. If fewer than queryCount unlabeled nodes remain, all are
// queried.
func (g *Graph) SplitPerClass(rng *xrand.RNG, perClass, queryCount int) Split {
	byClass := make([][]NodeID, len(g.Classes))
	for _, n := range g.Nodes {
		byClass[n.Label] = append(byClass[n.Label], n.ID)
	}
	var split Split
	labeled := make(map[NodeID]bool)
	for _, ids := range byClass {
		idx := rng.Sample(len(ids), perClass)
		for _, i := range idx {
			split.Labeled = append(split.Labeled, ids[i])
			labeled[ids[i]] = true
		}
	}
	rest := make([]NodeID, 0, len(g.Nodes)-len(split.Labeled))
	for _, n := range g.Nodes {
		if !labeled[n.ID] {
			rest = append(rest, n.ID)
		}
	}
	for _, i := range rng.Sample(len(rest), queryCount) {
		split.Query = append(split.Query, rest[i])
	}
	return split
}

// SplitFraction labels a uniform fraction of all nodes and queries
// queryCount of the rest, mirroring the OGB-style partitions used for
// Ogbn-Arxiv and Ogbn-Products.
func (g *Graph) SplitFraction(rng *xrand.RNG, labeledFrac float64, queryCount int) Split {
	if labeledFrac < 0 || labeledFrac > 1 {
		panic("tag: labeledFrac out of [0,1]")
	}
	n := len(g.Nodes)
	perm := rng.Perm(n)
	nl := int(labeledFrac * float64(n))
	var split Split
	for _, i := range perm[:nl] {
		split.Labeled = append(split.Labeled, NodeID(i))
	}
	rest := perm[nl:]
	if queryCount > len(rest) {
		queryCount = len(rest)
	}
	for _, i := range rest[:queryCount] {
		split.Query = append(split.Query, NodeID(i))
	}
	return split
}

// LabelsOf returns the ground-truth labels of the given nodes. It is a
// convenience for evaluation code; prediction methods receive labels
// only through the labeled set they are handed.
func (g *Graph) LabelsOf(ids []NodeID) []int {
	out := make([]int, len(ids))
	for i, v := range ids {
		out[i] = g.Nodes[v].Label
	}
	return out
}
