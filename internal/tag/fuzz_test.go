package tag

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzLoad hardens snapshot loading against corrupted or adversarial
// documents: it must never panic, and anything it accepts must be a
// structurally valid graph that re-serializes cleanly.
func FuzzLoad(f *testing.F) {
	spec, err := SpecByName("cora")
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, Generate(spec, 3, Options{Scale: 0.05})); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"format":1,"classes":["A"],"nodes":[{"ID":0,"Title":"t","Label":0}],"edges":[]}`)
	f.Add(`{"format":1,"nodes":[],"edges":[[0,1]]}`)
	f.Add(`{"format":2}`)
	f.Add(`{`)
	f.Add("")

	f.Fuzz(func(t *testing.T, doc string) {
		g, err := Load(strings.NewReader(doc))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("Load accepted an invalid graph: %v", err)
		}
		var out bytes.Buffer
		if err := Save(&out, g); err != nil {
			t.Fatalf("accepted graph failed to re-save: %v", err)
		}
		if _, err := Load(&out); err != nil {
			t.Fatalf("round trip of accepted graph failed: %v", err)
		}
	})
}
