package tag

import (
	"fmt"
	"strings"

	"repro/internal/textgen"
	"repro/internal/xrand"
)

// Spec describes one benchmark dataset: its Table II statistics plus
// the text-model parameters that reproduce its difficulty profile.
type Spec struct {
	Name    string
	Display string
	Classes []string

	// Default generated size; OGB graphs are scaled down from the paper
	// sizes so experiments run on one machine.
	Nodes     int
	AvgDegree float64
	// Homophily is the target fraction of same-class edges.
	Homophily float64

	// SaturatedFrac controls how many nodes get low-ambiguity text. It
	// is calibrated to the paper's vanilla zero-shot accuracy (Table V):
	// saturated nodes are exactly those an LLM can classify from their
	// own text.
	SaturatedFrac float64
	// NoisyFrac is the fraction of label-noise nodes: their text reads
	// as the confuser class, so no evidence recovers the label. The
	// remainder (1 − SaturatedFrac − NoisyFrac) are genuinely ambiguous
	// 50/50 mixtures — the nodes neighbor cues can actually rescue.
	// Together the three fractions reproduce both the paper's zero-shot
	// accuracy and its modest neighbor-text gains.
	NoisyFrac float64

	// Text model.
	TitleWords     int
	AbstractWords  int
	TitleSignal    float64
	AbstractSignal float64
	SignalPerClass int
	Background     int

	// Paper-scale statistics used verbatim by Table II / Table V.
	FullNodes    int
	FullEdges    int
	FullFeatures int
	NodeType     string
	TextType     string
	EdgeType     string

	// Split protocol.
	LabeledPerClass int     // >0: per-class protocol (Cora/Citeseer/Pubmed)
	LabeledFrac     float64 // >0: fraction protocol (OGB datasets)
	QueryCount      int
}

// classList fabricates n class names with the given prefix, used for
// the two OGB datasets whose full label lists are long.
func classList(prefix string, n int, names []string) []string {
	out := make([]string, 0, n)
	out = append(out, names...)
	for i := len(names); i < n; i++ {
		out = append(out, fmt.Sprintf("%s-%02d", prefix, i))
	}
	return out[:n]
}

// Specs returns the five benchmark dataset specifications in the
// paper's order. The zero-shot accuracy targets (SaturatedFrac) come
// from Table V: Cora 69.0%, Citeseer 60.1%, Pubmed 90.0%, Ogbn-Arxiv
// 73.1%, Ogbn-Products 79.4%.
func Specs() []Spec {
	return []Spec{
		{
			Name:    "cora",
			Display: "Cora",
			Classes: []string{
				"Case-Based", "Genetic-Algorithms", "Neural-Networks",
				"Probabilistic-Methods", "Reinforcement-Learning",
				"Rule-Learning", "Theory",
			},
			Nodes: 2708, AvgDegree: 4.0, Homophily: 0.81,
			SaturatedFrac: 0.60, NoisyFrac: 0.12,
			TitleWords: 10, AbstractWords: 110,
			TitleSignal: 0.55, AbstractSignal: 0.30,
			SignalPerClass: 60, Background: 1400,
			FullNodes: 2708, FullEdges: 5429, FullFeatures: 1433,
			NodeType: "Paper", TextType: "Title&Abstract", EdgeType: "Citation",
			LabeledPerClass: 20, QueryCount: 1000,
		},
		{
			Name:    "citeseer",
			Display: "Citeseer",
			Classes: []string{
				"Agents", "AI", "Database", "IR", "ML", "HCI",
			},
			Nodes: 3186, AvgDegree: 2.7, Homophily: 0.74,
			SaturatedFrac: 0.46, NoisyFrac: 0.12,
			TitleWords: 12, AbstractWords: 115,
			TitleSignal: 0.45, AbstractSignal: 0.24,
			SignalPerClass: 60, Background: 1400,
			FullNodes: 3186, FullEdges: 4277, FullFeatures: 500,
			NodeType: "Paper", TextType: "Title&Abstract", EdgeType: "Citation",
			LabeledPerClass: 20, QueryCount: 1000,
		},
		{
			Name:    "pubmed",
			Display: "Pubmed",
			Classes: []string{
				"Diabetes-Experimental", "Type-1-diabetes", "Type-2-diabetes",
			},
			Nodes: 19717, AvgDegree: 4.5, Homophily: 0.80,
			SaturatedFrac: 0.91, NoisyFrac: 0.07,
			TitleWords: 13, AbstractWords: 180,
			// Pubmed's three diabetes classes are separated by the
			// abstract, not the title ("…in diabetic rats" could be any
			// class), so title-only neighbor entries add noise more than
			// signal — the paper's zero-shot ≥ k-hop observation.
			TitleSignal: 0.15, AbstractSignal: 0.52,
			SignalPerClass: 70, Background: 1600,
			FullNodes: 19717, FullEdges: 44338, FullFeatures: 384,
			NodeType: "Paper", TextType: "Title&Abstract", EdgeType: "Citation",
			LabeledPerClass: 20, QueryCount: 1000,
		},
		{
			Name:    "ogbn-arxiv",
			Display: "Ogbn-Arxiv",
			Classes: classList("cs", 40, []string{
				"cs.AI", "cs.CL", "cs.CC", "cs.CE", "cs.CG", "cs.GT", "cs.CV",
				"cs.CY", "cs.CR", "cs.DS", "cs.DB", "cs.DL", "cs.DM", "cs.DC",
			}),
			Nodes: 10000, AvgDegree: 13.7, Homophily: 0.64,
			SaturatedFrac: 0.78, NoisyFrac: 0.12,
			TitleWords: 11, AbstractWords: 130,
			// Arxiv titles carry little class signal on their own (40
			// fine-grained CS sub-areas share jargon): this is what makes
			// neighbor text nearly useless here in the paper (zero-shot
			// 73.1% vs 1-hop 71.8%, Tables IV/V) — neighbor entries are
			// title-only, so their evidence is mostly noise.
			TitleSignal: 0.10, AbstractSignal: 0.38,
			SignalPerClass: 40, Background: 2400,
			FullNodes: 169343, FullEdges: 1166243, FullFeatures: 128,
			NodeType: "Paper", TextType: "Title&Abstract", EdgeType: "Citation",
			LabeledFrac: 0.54, QueryCount: 1000,
		},
		{
			Name:    "ogbn-products",
			Display: "Ogbn-Products",
			Classes: classList("cat", 47, []string{
				"Books", "Beauty", "Electronics", "Home-Kitchen", "Sports",
				"Toys-Games", "Clothing", "Automotive", "Grocery", "Office",
			}),
			Nodes: 12000, AvgDegree: 25.0, Homophily: 0.90,
			SaturatedFrac: 0.84, NoisyFrac: 0.01,
			TitleWords: 9, AbstractWords: 75,
			TitleSignal: 0.75, AbstractSignal: 0.45,
			SignalPerClass: 35, Background: 2400,
			FullNodes: 2449029, FullEdges: 61859140, FullFeatures: 100,
			NodeType: "Product", TextType: "Description", EdgeType: "Co-purchase",
			LabeledFrac: 0.08, QueryCount: 1000,
		},
	}
}

// SpecByName returns the spec with the given short name.
func SpecByName(name string) (Spec, error) {
	for _, s := range Specs() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("tag: unknown dataset %q", name)
}

// Options tunes dataset generation.
type Options struct {
	// Scale multiplies the generated node count (0 means 1.0). Edges
	// scale with nodes so density is preserved.
	Scale float64
}

func (o Options) scale() float64 {
	if o.Scale <= 0 {
		return 1
	}
	return o.Scale
}

// Generate builds a dataset from its spec. Identical (spec, seed, opts)
// always produce identical graphs.
func Generate(spec Spec, seed uint64, opts Options) *Graph {
	root := xrand.New(seed).SplitString("tag/" + spec.Name)

	n := int(float64(spec.Nodes) * opts.scale())
	if n < len(spec.Classes)*4 {
		n = len(spec.Classes) * 4
	}

	vocab := textgen.NewVocabulary(root.SplitString("vocab"), textgen.VocabularyConfig{
		Classes:        len(spec.Classes),
		SignalPerClass: spec.SignalPerClass,
		Background:     spec.Background,
	})

	g := &Graph{
		Name:    spec.Name,
		Display: spec.Display,
		Classes: spec.Classes,
		Nodes:   make([]Node, n),
		adj:     make([][]NodeID, n),
		Vocab:   vocab,
	}

	// Class assignment: mildly uneven class proportions, as in the real
	// benchmarks.
	crng := root.SplitString("classes")
	weights := make([]float64, len(spec.Classes))
	for i := range weights {
		weights[i] = 0.6 + crng.Float64()
	}
	for i := range g.Nodes {
		g.Nodes[i].ID = NodeID(i)
		g.Nodes[i].Label = crng.Categorical(weights)
	}

	// Difficulty assignment. Three node populations:
	//   - saturated: clear own-class text (zero-shot succeeds);
	//   - noisy: clear text of the *confuser* class (label noise —
	//     nothing rescues these);
	//   - ambiguous: near-50/50 confuser mixtures (ambiguity ≥ 0.96 ⇒
	//     borrow fraction ≥ 0.48) that no reader can decide from the
	//     text alone — the nodes neighbor cues can rescue.
	arng := root.SplitString("ambiguity")
	for i := range g.Nodes {
		switch u := arng.Float64(); {
		case u < spec.SaturatedFrac:
			g.Nodes[i].Ambiguity = 0.02 + 0.18*arng.Float64()
		case u < spec.SaturatedFrac+spec.NoisyFrac:
			g.Nodes[i].Ambiguity = 0.02 + 0.18*arng.Float64()
			g.Nodes[i].Noisy = true
		default:
			g.Nodes[i].Ambiguity = 0.96 + 0.04*arng.Float64()
		}
	}

	// Text synthesis.
	trng := root.SplitString("text")
	tcfg := textgen.TextConfig{
		TitleWords:    spec.TitleWords,
		AbstractWords: spec.AbstractWords,
		TitleSignal:   spec.TitleSignal,
		AbstractSig:   spec.AbstractSignal,
	}
	for i := range g.Nodes {
		class := g.Nodes[i].Label
		if g.Nodes[i].Noisy {
			class = vocab.Confuser[class]
		}
		title, abstract := vocab.Generate(trng, class, g.Nodes[i].Ambiguity, tcfg)
		g.Nodes[i].Title = title
		g.Nodes[i].Abstract = abstract
	}

	generateEdges(g, spec, root.SplitString("edges"))
	lexicalDiffusion(g, root.SplitString("diffusion"))
	g.sortAdj()
	return g
}

// lexicalDiffusion copies short contiguous word spans between the
// abstracts of connected nodes. Real citation and co-purchase pairs
// share phrases beyond their class vocabulary (quoted terminology,
// product names); this pass reproduces that edge-level textual affinity
// so that link prediction from text alone is learnable, exactly as in
// the real benchmarks. Word counts are preserved (spans replace words
// rather than extend the text).
func lexicalDiffusion(g *Graph, rng *xrand.RNG) {
	const (
		copyProb = 0.6 // per direction per edge
		spanLen  = 3
	)
	abstracts := make([][]string, len(g.Nodes))
	for i := range g.Nodes {
		abstracts[i] = strings.Fields(g.Nodes[i].Abstract)
	}
	copySpan := func(src, dst []string) {
		if len(src) < spanLen || len(dst) < spanLen {
			return
		}
		from := rng.Intn(len(src) - spanLen + 1)
		to := rng.Intn(len(dst) - spanLen + 1)
		copy(dst[to:to+spanLen], src[from:from+spanLen])
	}
	for u := range g.adj {
		for _, v := range g.adj[u] {
			if NodeID(u) >= v {
				continue
			}
			if rng.Float64() < copyProb {
				copySpan(abstracts[u], abstracts[v])
			}
			if rng.Float64() < copyProb {
				copySpan(abstracts[v], abstracts[u])
			}
		}
	}
	for i := range g.Nodes {
		g.Nodes[i].Abstract = strings.Join(abstracts[i], " ")
	}
}

// generateEdges wires a homophilous, degree-skewed random graph with
// target average degree spec.AvgDegree. Endpoint selection mixes
// uniform sampling with preferential attachment (sampling from the
// running endpoint list) to produce the heavy-tailed degree
// distributions of citation and co-purchase graphs.
func generateEdges(g *Graph, spec Spec, rng *xrand.RNG) {
	n := len(g.Nodes)
	if n < 2 {
		return
	}
	byClass := make([][]NodeID, len(spec.Classes))
	for _, nd := range g.Nodes {
		byClass[nd.Label] = append(byClass[nd.Label], nd.ID)
	}

	target := int(float64(n) * spec.AvgDegree / 2)
	seen := make(map[[2]NodeID]bool, target)
	endpoints := make([]NodeID, 0, 2*target)
	const prefProb = 0.35 // weight of preferential attachment

	// Sub-communities: same-class edges prefer a node's own community
	// (research groups within a topic, product lines within a
	// category). Without this, 2-hop neighborhoods decorrelate to ~h²
	// same-class probability, far below real citation graphs, and
	// 2-hop methods collapse.
	const (
		commTarget = 60  // nodes per community
		commProb   = 0.7 // same-class edges staying in-community
	)
	commOf := make([]int, n)
	byComm := make([][][]NodeID, len(spec.Classes))
	for k, ids := range byClass {
		nComm := (len(ids) + commTarget - 1) / commTarget
		if nComm == 0 {
			continue
		}
		byComm[k] = make([][]NodeID, nComm)
		for _, id := range ids {
			c := rng.Intn(nComm)
			commOf[id] = c
			byComm[k][c] = append(byComm[k][c], id)
		}
	}

	pick := func() NodeID {
		if len(endpoints) > 0 && rng.Float64() < prefProb {
			return endpoints[rng.Intn(len(endpoints))]
		}
		return NodeID(rng.Intn(n))
	}
	pickSameClass := func(u NodeID) NodeID {
		k := g.Nodes[u].Label
		if comm := byComm[k][commOf[u]]; len(comm) > 1 && rng.Float64() < commProb {
			return comm[rng.Intn(len(comm))]
		}
		ids := byClass[k]
		return ids[rng.Intn(len(ids))]
	}

	// closure attempts a triadic-closure edge: connect two neighbors of
	// a random existing endpoint. Citation and co-purchase graphs have
	// high clustering, and the link-prediction task depends on held-out
	// edges retaining common visible neighbors.
	const triangleProb = 0.25
	closure := func() (NodeID, NodeID, bool) {
		if len(endpoints) == 0 {
			return 0, 0, false
		}
		w := endpoints[rng.Intn(len(endpoints))]
		ns := g.adj[w]
		if len(ns) < 2 {
			return 0, 0, false
		}
		i := rng.Intn(len(ns))
		j := rng.Intn(len(ns))
		if i == j {
			return 0, 0, false
		}
		return ns[i], ns[j], true
	}

	attempts := 0
	maxAttempts := 30 * target
	for edges := 0; edges < target && attempts < maxAttempts; attempts++ {
		var u, v NodeID
		if rng.Float64() < triangleProb {
			var ok bool
			u, v, ok = closure()
			if !ok {
				continue
			}
		} else {
			u = pick()
			if rng.Float64() < spec.Homophily {
				v = pickSameClass(u)
			} else {
				v = NodeID(rng.Intn(n))
			}
		}
		if u == v {
			continue
		}
		key := [2]NodeID{u, v}
		if u > v {
			key = [2]NodeID{v, u}
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		g.addEdge(u, v)
		endpoints = append(endpoints, u, v)
		edges++
	}
}

// Stats summarizes a generated dataset for Table II style reporting.
type Stats struct {
	Name         string
	Nodes        int
	Edges        int
	Classes      int
	Homophily    float64
	MeanDegree   float64
	MaxDegree    int
	Isolated     int
	FullNodes    int
	FullEdges    int
	FullFeatures int
	NodeType     string
	TextType     string
	EdgeType     string
}

// Summarize computes dataset statistics for the given graph/spec pair.
func Summarize(g *Graph, spec Spec) Stats {
	st := Stats{
		Name:         spec.Display,
		Nodes:        g.NumNodes(),
		Edges:        g.NumEdges(),
		Classes:      len(g.Classes),
		Homophily:    g.EdgeHomophily(),
		FullNodes:    spec.FullNodes,
		FullEdges:    spec.FullEdges,
		FullFeatures: spec.FullFeatures,
		NodeType:     spec.NodeType,
		TextType:     spec.TextType,
		EdgeType:     spec.EdgeType,
	}
	degSum := 0
	for i := range g.Nodes {
		d := g.Degree(NodeID(i))
		degSum += d
		if d > st.MaxDegree {
			st.MaxDegree = d
		}
		if d == 0 {
			st.Isolated++
		}
	}
	if st.Nodes > 0 {
		st.MeanDegree = float64(degSum) / float64(st.Nodes)
	}
	return st
}

// ClassDistribution returns the number of nodes per class.
func ClassDistribution(g *Graph) []int {
	out := make([]int, len(g.Classes))
	for _, n := range g.Nodes {
		out[n.Label]++
	}
	return out
}

// SortedNames returns all dataset short names in paper order.
func SortedNames() []string {
	specs := Specs()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// SmallSpec returns a reduced version of the named spec for fast tests:
// same class structure and text model, tiny node count.
func SmallSpec(name string, nodes int) (Spec, error) {
	s, err := SpecByName(name)
	if err != nil {
		return Spec{}, err
	}
	s.Nodes = nodes
	if s.QueryCount > nodes/2 {
		s.QueryCount = nodes / 2
	}
	return s, nil
}
