package tag

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

// smallGraph builds a reduced Cora for fast tests.
func smallGraph(t testing.TB, nodes int, seed uint64) (*Graph, Spec) {
	t.Helper()
	spec, err := SmallSpec("cora", nodes)
	if err != nil {
		t.Fatal(err)
	}
	return Generate(spec, seed, Options{}), spec
}

func TestGenerateValidates(t *testing.T) {
	g, _ := smallGraph(t, 300, 1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := smallGraph(t, 200, 7)
	b, _ := smallGraph(t, 200, 7)
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", a.NumEdges(), b.NumEdges())
	}
	for i := range a.Nodes {
		if a.Nodes[i].Title != b.Nodes[i].Title || a.Nodes[i].Label != b.Nodes[i].Label {
			t.Fatalf("node %d differs across identical seeds", i)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a, _ := smallGraph(t, 200, 1)
	b, _ := smallGraph(t, 200, 2)
	same := 0
	for i := range a.Nodes {
		if a.Nodes[i].Title == b.Nodes[i].Title {
			same++
		}
	}
	if same == len(a.Nodes) {
		t.Fatal("different seeds produced identical texts")
	}
}

func TestHomophilyNearTarget(t *testing.T) {
	spec, err := SmallSpec("cora", 1500)
	if err != nil {
		t.Fatal(err)
	}
	g := Generate(spec, 3, Options{})
	h := g.EdgeHomophily()
	if h < spec.Homophily-0.12 || h > spec.Homophily+0.12 {
		t.Fatalf("homophily %.3f too far from target %.3f", h, spec.Homophily)
	}
}

func TestMeanDegreeNearTarget(t *testing.T) {
	spec, err := SmallSpec("cora", 1500)
	if err != nil {
		t.Fatal(err)
	}
	g := Generate(spec, 3, Options{})
	st := Summarize(g, spec)
	if st.MeanDegree < spec.AvgDegree*0.7 || st.MeanDegree > spec.AvgDegree*1.1 {
		t.Fatalf("mean degree %.2f too far from target %.2f", st.MeanDegree, spec.AvgDegree)
	}
}

func TestDegreeSkew(t *testing.T) {
	spec, err := SmallSpec("cora", 1500)
	if err != nil {
		t.Fatal(err)
	}
	g := Generate(spec, 5, Options{})
	st := Summarize(g, spec)
	// Preferential attachment should create hubs well above the mean.
	if float64(st.MaxDegree) < 3*st.MeanDegree {
		t.Fatalf("max degree %d not skewed vs mean %.2f", st.MaxDegree, st.MeanDegree)
	}
}

func TestSaturatedFraction(t *testing.T) {
	spec, err := SmallSpec("pubmed", 2000)
	if err != nil {
		t.Fatal(err)
	}
	g := Generate(spec, 11, Options{})
	low, noisy := 0, 0
	for _, n := range g.Nodes {
		switch {
		case n.Noisy:
			noisy++
		case n.Ambiguity < 0.3:
			low++
		}
	}
	frac := float64(low) / float64(len(g.Nodes))
	if frac < spec.SaturatedFrac-0.05 || frac > spec.SaturatedFrac+0.05 {
		t.Fatalf("saturated fraction %.3f, want ~%.3f", frac, spec.SaturatedFrac)
	}
	noisyFrac := float64(noisy) / float64(len(g.Nodes))
	if noisyFrac < spec.NoisyFrac-0.05 || noisyFrac > spec.NoisyFrac+0.05 {
		t.Fatalf("noisy fraction %.3f, want ~%.3f", noisyFrac, spec.NoisyFrac)
	}
}

func TestKHopExcludesSelfAndOrders(t *testing.T) {
	g, _ := smallGraph(t, 300, 13)
	v := NodeID(0)
	nodes, hops := g.KHop(v, 2)
	if len(nodes) != len(hops) {
		t.Fatalf("nodes/hops length mismatch: %d vs %d", len(nodes), len(hops))
	}
	for i, u := range nodes {
		if u == v {
			t.Fatal("KHop included the query node")
		}
		if hops[i] < 1 || hops[i] > 2 {
			t.Fatalf("hop %d out of range", hops[i])
		}
		if i > 0 && hops[i] < hops[i-1] {
			t.Fatal("KHop not ordered by hop distance")
		}
	}
	// 1-hop set must equal direct neighbors.
	oneHop := map[NodeID]bool{}
	for i, u := range nodes {
		if hops[i] == 1 {
			oneHop[u] = true
		}
	}
	for _, u := range g.Neighbors(v) {
		if !oneHop[u] {
			t.Fatalf("direct neighbor %d missing from 1-hop set", u)
		}
	}
	if len(oneHop) != g.Degree(v) {
		t.Fatalf("1-hop count %d != degree %d", len(oneHop), g.Degree(v))
	}
}

func TestKHopZeroHops(t *testing.T) {
	g, _ := smallGraph(t, 100, 17)
	nodes, hops := g.KHop(0, 0)
	if len(nodes) != 0 || len(hops) != 0 {
		t.Fatal("KHop(0) should be empty")
	}
}

func TestKHopMonotoneInK(t *testing.T) {
	g, _ := smallGraph(t, 400, 19)
	for v := NodeID(0); v < 20; v++ {
		n1, _ := g.KHop(v, 1)
		n2, _ := g.KHop(v, 2)
		if len(n2) < len(n1) {
			t.Fatalf("node %d: 2-hop set smaller than 1-hop set", v)
		}
	}
}

func TestHasEdgeConsistentWithNeighbors(t *testing.T) {
	g, _ := smallGraph(t, 250, 23)
	for u := 0; u < g.NumNodes(); u++ {
		for _, v := range g.Neighbors(NodeID(u)) {
			if !g.HasEdge(NodeID(u), v) || !g.HasEdge(v, NodeID(u)) {
				t.Fatalf("HasEdge inconsistent for {%d,%d}", u, v)
			}
		}
	}
	if g.HasEdge(0, 0) {
		t.Fatal("self loop reported")
	}
}

func TestSplitPerClass(t *testing.T) {
	g, spec := smallGraph(t, 600, 29)
	split := g.SplitPerClass(xrand.New(1), 5, 100)
	if len(split.Labeled) != 5*len(spec.Classes) {
		t.Fatalf("labeled size %d, want %d", len(split.Labeled), 5*len(spec.Classes))
	}
	if len(split.Query) != 100 {
		t.Fatalf("query size %d, want 100", len(split.Query))
	}
	labeled := split.IsLabeled()
	for _, q := range split.Query {
		if labeled[q] {
			t.Fatalf("query node %d also labeled", q)
		}
	}
	// Per-class counts.
	perClass := make([]int, len(spec.Classes))
	for _, v := range split.Labeled {
		perClass[g.Nodes[v].Label]++
	}
	for k, c := range perClass {
		if c != 5 {
			t.Fatalf("class %d has %d labeled nodes, want 5", k, c)
		}
	}
}

func TestSplitFraction(t *testing.T) {
	g, _ := smallGraph(t, 500, 31)
	split := g.SplitFraction(xrand.New(2), 0.4, 120)
	if got, want := len(split.Labeled), 200; got != want {
		t.Fatalf("labeled size %d, want %d", got, want)
	}
	if len(split.Query) != 120 {
		t.Fatalf("query size %d, want 120", len(split.Query))
	}
	labeled := split.IsLabeled()
	for _, q := range split.Query {
		if labeled[q] {
			t.Fatalf("query node %d also labeled", q)
		}
	}
}

func TestSplitFractionPanicsOutOfRange(t *testing.T) {
	g, _ := smallGraph(t, 50, 37)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for labeledFrac > 1")
		}
	}()
	g.SplitFraction(xrand.New(3), 1.5, 10)
}

func TestAllSpecsGenerate(t *testing.T) {
	for _, spec := range Specs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			g := Generate(spec, 41, Options{Scale: 0.08})
			if err := g.Validate(); err != nil {
				t.Fatal(err)
			}
			if len(g.Classes) != len(spec.Classes) {
				t.Fatalf("class count mismatch")
			}
			dist := ClassDistribution(g)
			for k, c := range dist {
				if c == 0 {
					t.Fatalf("class %d (%s) has no nodes", k, g.Classes[k])
				}
			}
			st := Summarize(g, spec)
			if st.Edges == 0 {
				t.Fatal("no edges generated")
			}
		})
	}
}

func TestSpecByName(t *testing.T) {
	for _, name := range SortedNames() {
		if _, err := SpecByName(name); err != nil {
			t.Fatalf("SpecByName(%q): %v", name, err)
		}
	}
	if _, err := SpecByName("nope"); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}

func TestTextNonEmptyAndDistinct(t *testing.T) {
	g, _ := smallGraph(t, 200, 43)
	seen := map[string]int{}
	for _, n := range g.Nodes {
		if n.Title == "" || n.Abstract == "" {
			t.Fatalf("node %d has empty text", n.ID)
		}
		seen[n.Title]++
	}
	// Titles are random 10-word strings; duplicates should be rare.
	for title, c := range seen {
		if c > 2 {
			t.Fatalf("title %q repeated %d times", title, c)
		}
	}
}

func TestLabelsOf(t *testing.T) {
	g, _ := smallGraph(t, 100, 47)
	ids := []NodeID{0, 5, 10}
	labels := g.LabelsOf(ids)
	for i, v := range ids {
		if labels[i] != g.Nodes[v].Label {
			t.Fatalf("LabelsOf mismatch at %d", i)
		}
	}
}

// Property: any generated graph validates, for a range of seeds/sizes.
func TestQuickGeneratedGraphsValid(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(seed uint64, sz uint8) bool {
		nodes := 60 + int(sz)%200
		spec, err := SmallSpec("citeseer", nodes)
		if err != nil {
			return false
		}
		g := Generate(spec, seed, Options{})
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestScaleOption(t *testing.T) {
	spec, _ := SpecByName("cora")
	g := Generate(spec, 51, Options{Scale: 0.1})
	want := int(0.1 * float64(spec.Nodes))
	if g.NumNodes() != want {
		t.Fatalf("scaled nodes = %d, want %d", g.NumNodes(), want)
	}
}

func TestStatsFields(t *testing.T) {
	spec, _ := SpecByName("cora")
	g := Generate(spec, 53, Options{Scale: 0.1})
	st := Summarize(g, spec)
	if st.FullNodes != 2708 || st.FullEdges != 5429 || st.FullFeatures != 1433 {
		t.Fatalf("paper-scale stats wrong: %+v", st)
	}
	if st.Name != "Cora" || st.NodeType != "Paper" {
		t.Fatalf("descriptor fields wrong: %+v", st)
	}
}
