package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided %d/100 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split(1)
	c2 := parent.Split(2)
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("child streams with different ids produced identical output")
	}
}

func TestSplitStringStable(t *testing.T) {
	a := New(9).SplitString("llm")
	b := New(9).SplitString("llm")
	if a.Uint64() != b.Uint64() {
		t.Fatal("SplitString not deterministic for identical names")
	}
	c := New(9).SplitString("llm")
	d := New(9).SplitString("graph")
	if c.Uint64() == d.Uint64() {
		t.Fatal("SplitString collided for different names")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(5)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(11)
	for _, n := range []int{1, 2, 3, 7, 100, 12345} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(13)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	for k, c := range counts {
		frac := float64(c) / trials
		if math.Abs(frac-0.1) > 0.01 {
			t.Fatalf("bucket %d has fraction %v, want ~0.1", k, frac)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(17)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestGumbelMean(t *testing.T) {
	r := New(19)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Gumbel()
	}
	// Standard Gumbel mean is the Euler-Mascheroni constant.
	const gamma = 0.5772156649
	if math.Abs(sum/n-gamma) > 0.02 {
		t.Fatalf("Gumbel mean %v, want ~%v", sum/n, gamma)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(23)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSampleDistinct(t *testing.T) {
	r := New(29)
	for trial := 0; trial < 100; trial++ {
		s := r.Sample(50, 10)
		if len(s) != 10 {
			t.Fatalf("Sample(50,10) returned %d elements", len(s))
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= 50 || seen[v] {
				t.Fatalf("invalid sample %v", s)
			}
			seen[v] = true
		}
	}
}

func TestSampleAllWhenKTooLarge(t *testing.T) {
	r := New(31)
	s := r.Sample(5, 10)
	if len(s) != 5 {
		t.Fatalf("Sample(5,10) returned %d elements, want 5", len(s))
	}
}

func TestSampleCoversAllElements(t *testing.T) {
	r := New(37)
	hit := make([]bool, 20)
	for trial := 0; trial < 400; trial++ {
		for _, v := range r.Sample(20, 3) {
			hit[v] = true
		}
	}
	for i, h := range hit {
		if !h {
			t.Fatalf("element %d never sampled in 400 trials", i)
		}
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(41)
	const p = 0.25
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(r.Geometric(p))
	}
	want := (1 - p) / p // mean number of failures
	if math.Abs(sum/n-want) > 0.1 {
		t.Fatalf("geometric mean %v, want ~%v", sum/n, want)
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(43)
	for _, lambda := range []float64{0.5, 3, 20, 100} {
		const n = 50000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(lambda))
		}
		mean := sum / n
		if math.Abs(mean-lambda) > 0.05*lambda+0.05 {
			t.Fatalf("Poisson(%v) mean %v", lambda, mean)
		}
	}
}

func TestCategoricalProportions(t *testing.T) {
	r := New(47)
	weights := []float64{1, 2, 0, 7}
	counts := make([]int, len(weights))
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Categorical(weights)]++
	}
	if counts[2] != 0 {
		t.Fatalf("zero-weight category sampled %d times", counts[2])
	}
	total := 10.0
	for i, w := range weights {
		if w == 0 {
			continue
		}
		frac := float64(counts[i]) / n
		if math.Abs(frac-w/total) > 0.01 {
			t.Fatalf("category %d fraction %v, want ~%v", i, frac, w/total)
		}
	}
}

func TestCategoricalAllZeroUniform(t *testing.T) {
	r := New(53)
	counts := make([]int, 4)
	for i := 0; i < 40000; i++ {
		counts[r.Categorical([]float64{0, 0, 0, 0})]++
	}
	for i, c := range counts {
		if c < 8000 {
			t.Fatalf("all-zero weights not uniform, bucket %d = %d", i, c)
		}
	}
}

// Property: Intn output is always within bounds for any positive n and seed.
func TestQuickIntnInRange(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		bound := int(n%1000) + 1
		r := New(seed)
		v := r.Intn(bound)
		return v >= 0 && v < bound
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Perm always yields a valid permutation.
func TestQuickPermValid(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		size := int(n % 64)
		p := New(seed).Perm(size)
		if len(p) != size {
			return false
		}
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Split with the same id from identically-seeded parents is stable.
func TestQuickSplitStable(t *testing.T) {
	f := func(seed, id uint64) bool {
		a := New(seed).Split(id)
		b := New(seed).Split(id)
		return a.Uint64() == b.Uint64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
