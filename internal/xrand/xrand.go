// Package xrand provides deterministic, splittable pseudo-random number
// streams used throughout the repository.
//
// Every experiment, dataset generator and simulated model in this
// reproduction takes an explicit seed and derives independent child
// streams from it, so that identical seeds always reproduce identical
// tables regardless of evaluation order. The generator is a 64-bit
// splitmix-seeded xoshiro256** variant; it is not cryptographically
// secure and is not meant to be.
package xrand

import "math"

// RNG is a deterministic pseudo-random number generator. The zero value
// is not usable; construct one with New or derive one with Split.
type RNG struct {
	s0, s1, s2, s3 uint64
}

// New returns a generator seeded from seed via splitmix64 expansion.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	r.s0, r.s1, r.s2, r.s3 = next(), next(), next(), next()
	// xoshiro must not start from the all-zero state.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 0x9e3779b97f4a7c15
	}
	return r
}

// Split derives an independent child stream identified by id. Two
// children with different ids, or children of different parents, are
// statistically independent for our purposes.
func (r *RNG) Split(id uint64) *RNG {
	return New(r.Uint64() ^ (id * 0xd1342543de82ef95) ^ 0x632be59bd9b4e019)
}

// SplitString derives an independent child stream named by s. Naming
// streams (rather than numbering them) keeps derivations stable when
// code paths are reordered.
func (r *RNG) SplitString(s string) *RNG {
	var h uint64 = 14695981039346656037 // FNV-1a offset basis
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return r.Split(h)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded rejection sampling.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + (w1 >> 32)
	lo = a * b
	return hi, lo
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Gumbel returns a standard Gumbel variate. Adding independent Gumbel
// noise to log-scores and taking the argmax samples from the softmax
// distribution (the Gumbel-max trick), which is how the simulated LLM
// turns class scores into stochastic decisions.
func (r *RNG) Gumbel() float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(-math.Log(u))
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle randomizes the order of n elements using swap (Fisher-Yates).
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Sample returns k distinct indices drawn uniformly from [0, n) in
// random order. If k >= n it returns a permutation of all n indices.
func (r *RNG) Sample(n, k int) []int {
	if k >= n {
		return r.Perm(n)
	}
	// Floyd's algorithm, then shuffle for random order.
	seen := make(map[int]bool, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := r.Intn(j + 1)
		if seen[t] {
			t = j
		}
		seen[t] = true
		out = append(out, t)
	}
	r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// Geometric returns a geometric variate with success probability p,
// counting the number of failures before the first success (support 0,
// 1, 2, ...). It panics unless 0 < p <= 1.
func (r *RNG) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("xrand: Geometric needs 0 < p <= 1")
	}
	if p == 1 {
		return 0
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return int(math.Floor(math.Log(u) / math.Log(1-p)))
}

// Poisson returns a Poisson variate with mean lambda (Knuth's method
// for small lambda, normal approximation above 64).
func (r *RNG) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 64 {
		v := lambda + math.Sqrt(lambda)*r.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Categorical samples an index proportionally to the non-negative
// weights. If all weights are zero it returns a uniform index. It
// panics on an empty weight slice.
func (r *RNG) Categorical(weights []float64) int {
	if len(weights) == 0 {
		panic("xrand: Categorical with no weights")
	}
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total == 0 {
		return r.Intn(len(weights))
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
