package prompt

import (
	"strings"
	"testing"
	"testing/quick"
)

func sampleRequest() Request {
	return Request{
		TargetTitle:    "a study of gradient methods",
		TargetAbstract: "we analyze convergence of gradient descent on convex objectives",
		Neighbors: []Neighbor{
			{Title: "stochastic optimization basics", Label: "Theory"},
			{Title: "neural network training dynamics"},
		},
		Categories:   []string{"Theory", "Neural-Networks", "Case-Based"},
		NodeType:     "paper",
		EdgeRelation: "citation",
	}
}

func TestBuildContainsSections(t *testing.T) {
	p := Build(sampleRequest())
	for _, want := range []string{
		"Target paper: Title: a study of gradient methods",
		"Abstract: we analyze convergence",
		"Neighbor Paper0",
		"Neighbor Paper1",
		"Category: Theory",
		"[Theory, Neural-Networks, Case-Based]",
		"Which category does the target paper belong to?",
		"Category: ['XX']",
	} {
		if !strings.Contains(p, want) {
			t.Fatalf("prompt missing %q:\n%s", want, p)
		}
	}
}

func TestBuildVanillaHasNoNeighborBlock(t *testing.T) {
	r := sampleRequest()
	r.Neighbors = nil
	p := Build(r)
	if strings.Contains(p, "Neighbor") || strings.Contains(p, "neighbors") {
		t.Fatalf("vanilla prompt mentions neighbors:\n%s", p)
	}
}

func TestBuildRankedPhrase(t *testing.T) {
	r := sampleRequest()
	r.Ranked = true
	p := Build(r)
	if !strings.Contains(p, "from most related to least related") {
		t.Fatal("ranked prompt missing SNS phrase")
	}
	r.Ranked = false
	if strings.Contains(Build(r), "from most related") {
		t.Fatal("unranked prompt contains SNS phrase")
	}
}

func TestBuildProductVariant(t *testing.T) {
	r := sampleRequest()
	r.NodeType = "Product"
	r.EdgeRelation = "co-purchase"
	p := Build(r)
	if !strings.Contains(p, "Target product") {
		t.Fatalf("product prompt wrong target line:\n%s", p)
	}
	if !strings.Contains(p, "co-purchase relationships") {
		t.Fatal("product prompt missing edge relation")
	}
	if !strings.Contains(p, "Neighbor Product0") {
		t.Fatal("product prompt missing neighbor entries")
	}
}

func TestParseRoundTrip(t *testing.T) {
	r := sampleRequest()
	parsed, err := Parse(Build(r))
	if err != nil {
		t.Fatal(err)
	}
	wantTarget := r.TargetTitle + " " + r.TargetAbstract
	if parsed.TargetText != wantTarget {
		t.Fatalf("target = %q, want %q", parsed.TargetText, wantTarget)
	}
	if len(parsed.NeighborTexts) != 2 {
		t.Fatalf("parsed %d neighbors, want 2", len(parsed.NeighborTexts))
	}
	if parsed.NeighborTexts[0] != "stochastic optimization basics" {
		t.Fatalf("neighbor 0 text = %q", parsed.NeighborTexts[0])
	}
	if parsed.NeighborLabels[0] != "Theory" || parsed.NeighborLabels[1] != "" {
		t.Fatalf("neighbor labels = %v", parsed.NeighborLabels)
	}
	if len(parsed.Categories) != 3 || parsed.Categories[1] != "Neural-Networks" {
		t.Fatalf("categories = %v", parsed.Categories)
	}
}

func TestParseVanillaRoundTrip(t *testing.T) {
	r := sampleRequest()
	r.Neighbors = nil
	parsed, err := Parse(Build(r))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.NeighborTexts) != 0 {
		t.Fatalf("vanilla prompt parsed %d neighbors", len(parsed.NeighborTexts))
	}
}

func TestParseNeighborAbstract(t *testing.T) {
	r := sampleRequest()
	r.Neighbors = []Neighbor{{Title: "short title", Abstract: "long abstract text", Label: "AI"}}
	parsed, err := Parse(Build(r))
	if err != nil {
		t.Fatal(err)
	}
	if parsed.NeighborTexts[0] != "short title long abstract text" {
		t.Fatalf("neighbor text = %q", parsed.NeighborTexts[0])
	}
	if parsed.NeighborLabels[0] != "AI" {
		t.Fatalf("neighbor label = %q", parsed.NeighborLabels[0])
	}
}

func TestParseRankedFlag(t *testing.T) {
	r := sampleRequest()
	r.Ranked = true
	parsed, err := Parse(Build(r))
	if err != nil {
		t.Fatal(err)
	}
	if !parsed.Ranked {
		t.Fatal("Ranked flag not recovered")
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"",
		"hello world",
		"Target paper: Title: x \nno abstract here",
		"Target paper: Title: x \nAbstract: y \nTask: \nnope",
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) should fail", bad)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	s := FormatResponse("Neural-Networks")
	got, err := ParseResponse(s)
	if err != nil {
		t.Fatal(err)
	}
	if got != "Neural-Networks" {
		t.Fatalf("round trip = %q", got)
	}
}

func TestParseResponseTolerant(t *testing.T) {
	got, err := ParseResponse("Sure! The answer is Category: ['Theory'] based on the text.")
	if err != nil {
		t.Fatal(err)
	}
	if got != "Theory" {
		t.Fatalf("got %q", got)
	}
}

func TestParseResponseErrors(t *testing.T) {
	for _, bad := range []string{"", "Category: Theory", "Category: ['", "Category: ['']"} {
		if _, err := ParseResponse(bad); err == nil {
			t.Fatalf("ParseResponse(%q) should fail", bad)
		}
	}
}

// Property: Build/Parse round-trips neighbor labels for arbitrary
// word-like inputs.
func TestQuickRoundTrip(t *testing.T) {
	clean := func(s string) string {
		// Keep inputs word-like: the templates are line-oriented, so
		// embedded newlines would be a different (invalid) request.
		s = strings.ReplaceAll(s, "\n", " ")
		s = strings.ReplaceAll(s, "{", "(")
		s = strings.ReplaceAll(s, "}", ")")
		s = strings.ReplaceAll(s, "[", "(")
		s = strings.ReplaceAll(s, "]", ")")
		s = strings.ReplaceAll(s, ",", ";")
		s = strings.TrimSpace(s)
		if s == "" {
			s = "x"
		}
		return s
	}
	f := func(title, abstract, nbTitle, label string) bool {
		r := Request{
			TargetTitle:    clean(title),
			TargetAbstract: clean(abstract),
			Neighbors:      []Neighbor{{Title: clean(nbTitle), Label: clean(label)}},
			Categories:     []string{clean(label), "Other"},
		}
		parsed, err := Parse(Build(r))
		if err != nil {
			return false
		}
		return parsed.NeighborLabels[0] == clean(label) &&
			len(parsed.Categories) == 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPromptTokenCostGrowsWithNeighbors(t *testing.T) {
	r := sampleRequest()
	withNb := Build(r)
	r.Neighbors = nil
	vanilla := Build(r)
	if len(withNb) <= len(vanilla) {
		t.Fatal("neighbor text did not increase prompt size")
	}
}
