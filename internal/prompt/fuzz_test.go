package prompt

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzParse hardens the prompt parser against adversarial or corrupted
// prompt text: it must never panic, and on success its output must be
// internally consistent.
func FuzzParse(f *testing.F) {
	f.Add(Build(Request{
		TargetTitle:    "a title",
		TargetAbstract: "an abstract body",
		Categories:     []string{"A", "B"},
	}))
	f.Add(Build(Request{
		TargetTitle: "t",
		Neighbors: []Neighbor{
			{Title: "n0", Label: "A"},
			{Title: "n1", Abstract: "abs"},
		},
		Categories:   []string{"A", "B", "C"},
		Ranked:       true,
		NodeType:     "product",
		EdgeRelation: "co-purchase",
	}))
	f.Add("Target paper: Title: x \nAbstract:  \nTask: \nCategories: \n[A]\n")
	f.Add("")
	f.Add("Neighbor Paper0: {{\nTitle: orphan \n}}")

	f.Fuzz(func(t *testing.T, s string) {
		parsed, err := Parse(s)
		if err != nil {
			return
		}
		for _, c := range parsed.Categories {
			if strings.ContainsAny(c, "\n") {
				t.Fatalf("category %q contains newline", c)
			}
		}
		if len(parsed.NeighborLabels) != len(parsed.NeighborTexts) {
			t.Fatalf("labels/texts mismatch: %d vs %d",
				len(parsed.NeighborLabels), len(parsed.NeighborTexts))
		}
	})
}

// FuzzParseResponse checks the response parser never panics and only
// returns non-empty categories.
func FuzzParseResponse(f *testing.F) {
	f.Add("Category: ['Theory']")
	f.Add("noise before Category: ['A'] noise after")
	f.Add("['']")
	f.Add("[' ']")
	f.Add("Category: [unterminated")
	f.Add("")

	f.Fuzz(func(t *testing.T, s string) {
		c, err := ParseResponse(s)
		if err != nil {
			return
		}
		if c == "" {
			t.Fatal("empty category accepted")
		}
		if !utf8.ValidString(c) && utf8.ValidString(s) {
			t.Fatalf("invalid UTF-8 category %q from valid input", c)
		}
	})
}

// FuzzBuildParseRoundTrip: any prompt this package builds, it must be
// able to read back.
func FuzzBuildParseRoundTrip(f *testing.F) {
	f.Add("title words", "abstract words here", "Alpha", "n title", "Beta", true)
	f.Add("", "", "X", "", "", false)

	f.Fuzz(func(t *testing.T, title, abstract, cat, nbTitle, nbLabel string, ranked bool) {
		// Newlines inside fields would break the line-oriented template
		// by design; normalize as a prompt builder caller must.
		clean := func(s string) string {
			return strings.Join(strings.Fields(s), " ")
		}
		title, abstract = clean(title), clean(abstract)
		cat = clean(cat)
		nbTitle, nbLabel = clean(nbTitle), clean(nbLabel)
		if cat == "" {
			cat = "Fallback"
		}
		req := Request{
			TargetTitle:    title,
			TargetAbstract: abstract,
			Categories:     []string{cat},
			Ranked:         ranked,
		}
		if nbTitle != "" {
			req.Neighbors = []Neighbor{{Title: nbTitle, Label: nbLabel}}
		}
		parsed, err := Parse(Build(req))
		if err != nil {
			t.Fatalf("cannot parse own prompt: %v", err)
		}
		if len(parsed.Categories) != 1 || parsed.Categories[0] != cat {
			t.Fatalf("categories %v, want [%q]", parsed.Categories, cat)
		}
		if nbTitle != "" && len(parsed.NeighborTexts) != 1 {
			t.Fatalf("neighbor lost: %v", parsed.NeighborTexts)
		}
	})
}
