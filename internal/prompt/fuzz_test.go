package prompt

import (
	"strings"
	"testing"
	"unicode/utf8"

	"repro/internal/token"
)

// FuzzParse hardens the prompt parser against adversarial or corrupted
// prompt text: it must never panic, and on success its output must be
// internally consistent.
func FuzzParse(f *testing.F) {
	f.Add(Build(Request{
		TargetTitle:    "a title",
		TargetAbstract: "an abstract body",
		Categories:     []string{"A", "B"},
	}))
	f.Add(Build(Request{
		TargetTitle: "t",
		Neighbors: []Neighbor{
			{Title: "n0", Label: "A"},
			{Title: "n1", Abstract: "abs"},
		},
		Categories:   []string{"A", "B", "C"},
		Ranked:       true,
		NodeType:     "product",
		EdgeRelation: "co-purchase",
	}))
	f.Add("Target paper: Title: x \nAbstract:  \nTask: \nCategories: \n[A]\n")
	f.Add("")
	f.Add("Neighbor Paper0: {{\nTitle: orphan \n}}")

	f.Fuzz(func(t *testing.T, s string) {
		parsed, err := Parse(s)
		if err != nil {
			return
		}
		for _, c := range parsed.Categories {
			if strings.ContainsAny(c, "\n") {
				t.Fatalf("category %q contains newline", c)
			}
		}
		if len(parsed.NeighborLabels) != len(parsed.NeighborTexts) {
			t.Fatalf("labels/texts mismatch: %d vs %d",
				len(parsed.NeighborLabels), len(parsed.NeighborTexts))
		}
	})
}

// FuzzParseResponse checks the response parser never panics and only
// returns non-empty categories.
func FuzzParseResponse(f *testing.F) {
	f.Add("Category: ['Theory']")
	f.Add("noise before Category: ['A'] noise after")
	f.Add("['']")
	f.Add("[' ']")
	f.Add("Category: [unterminated")
	f.Add("")

	f.Fuzz(func(t *testing.T, s string) {
		c, err := ParseResponse(s)
		if err != nil {
			return
		}
		if c == "" {
			t.Fatal("empty category accepted")
		}
		if !utf8.ValidString(c) && utf8.ValidString(s) {
			t.Fatalf("invalid UTF-8 category %q from valid input", c)
		}
	})
}

// FuzzCompress hardens the compression stage against arbitrary input
// under arbitrary configurations. Four properties, each load-bearing
// for a cache or planner layer downstream:
//
//  1. Never panics (implicit), and text that does not parse as Build
//     output comes back byte-identical — the compressor must not
//     corrupt what it cannot read.
//  2. Idempotence: compress∘compress == compress, so a prompt passing
//     through two compression-aware layers is untouched by the second.
//  3. Budget: with TargetTokens set, the output fits the budget — or
//     equals the structural floor (what TargetTokens: 1 produces) when
//     the budget is infeasible for this prompt.
//  4. Parse still recovers the target node: the first line (target
//     title) is untouched and the compressed prompt parses with the
//     same category list.
func FuzzCompress(f *testing.F) {
	f.Add(Build(compressSample()), 1, 0)
	f.Add(Build(compressSample()), 2, 150)
	f.Add(Build(compressSample()), 3, 1)
	f.Add(Build(Request{
		TargetTitle:    "t",
		TargetAbstract: "an abstract. with sentences. and a tail",
		Neighbors:      []Neighbor{{Title: "n", Abstract: "words here. more words"}},
		Categories:     []string{"A"},
	}), 0, 40)
	f.Add("Target paper: Title: x \nAbstract:  \nTask: \nCategories: \n[A]\n", 3, 10)
	f.Add("not a prompt at all", 2, 5)
	f.Add("", 1, 1)

	f.Fuzz(func(t *testing.T, s string, level, target int) {
		if level < 0 {
			level = -level
		}
		if target < 0 {
			target = -target
		}
		c := Compressor{Level: level % (MaxCompressLevel + 1), TargetTokens: target % 2048}
		out := c.Compress(s)

		parsedIn, inErr := Parse(s)
		if inErr != nil || !c.Enabled() {
			if out != s {
				t.Fatalf("input altered (enabled=%v, parseErr=%v):\n--- in ---\n%s\n--- out ---\n%s", c.Enabled(), inErr, s, out)
			}
			return
		}
		if again := c.Compress(out); again != out {
			t.Fatalf("not idempotent under %+v:\n--- once ---\n%s\n--- twice ---\n%s", c, out, again)
		}
		if c.TargetTokens > 0 && token.Count(out) > c.TargetTokens {
			floor := (Compressor{Level: c.Level, TargetTokens: 1}).Compress(s)
			if out != floor {
				t.Fatalf("over budget (%d > %d) yet not at the structural floor:\n--- out ---\n%s\n--- floor ---\n%s",
					token.Count(out), c.TargetTokens, out, floor)
			}
		}
		parsedOut, err := Parse(out)
		if err != nil {
			t.Fatalf("compressed prompt no longer parses: %v\n--- out ---\n%s", err, out)
		}
		inFirst, _, _ := strings.Cut(s, "\n")
		outFirst, _, _ := strings.Cut(out, "\n")
		if inFirst != outFirst {
			t.Fatalf("target line altered: %q -> %q", inFirst, outFirst)
		}
		if strings.Join(parsedOut.Categories, ",") != strings.Join(parsedIn.Categories, ",") {
			t.Fatalf("categories altered: %v -> %v", parsedIn.Categories, parsedOut.Categories)
		}
	})
}

// FuzzBuildParseRoundTrip: any prompt this package builds, it must be
// able to read back.
func FuzzBuildParseRoundTrip(f *testing.F) {
	f.Add("title words", "abstract words here", "Alpha", "n title", "Beta", true)
	f.Add("", "", "X", "", "", false)

	f.Fuzz(func(t *testing.T, title, abstract, cat, nbTitle, nbLabel string, ranked bool) {
		// Newlines inside fields would break the line-oriented template
		// by design; normalize as a prompt builder caller must.
		clean := func(s string) string {
			return strings.Join(strings.Fields(s), " ")
		}
		title, abstract = clean(title), clean(abstract)
		cat = clean(cat)
		nbTitle, nbLabel = clean(nbTitle), clean(nbLabel)
		if cat == "" {
			cat = "Fallback"
		}
		req := Request{
			TargetTitle:    title,
			TargetAbstract: abstract,
			Categories:     []string{cat},
			Ranked:         ranked,
		}
		if nbTitle != "" {
			req.Neighbors = []Neighbor{{Title: nbTitle, Label: nbLabel}}
		}
		parsed, err := Parse(Build(req))
		if err != nil {
			t.Fatalf("cannot parse own prompt: %v", err)
		}
		if len(parsed.Categories) != 1 || parsed.Categories[0] != cat {
			t.Fatalf("categories %v, want [%q]", parsed.Categories, cat)
		}
		if nbTitle != "" && len(parsed.NeighborTexts) != 1 {
			t.Fatalf("neighbor lost: %v", parsed.NeighborTexts)
		}
	})
}
