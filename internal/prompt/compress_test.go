package prompt

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"

	"repro/internal/token"
)

// compressSample is the pinned compression input: long multi-sentence
// abstracts on the target and both neighbors, so every level has spans
// to rank and drop, plus a label-only neighbor that must survive
// untouched.
func compressSample() Request {
	return Request{
		TargetTitle: "a study of gradient methods",
		TargetAbstract: "we analyze convergence of gradient descent on convex objectives. " +
			"the analysis covers fixed and diminishing step sizes under standard smoothness assumptions. " +
			"momentum variants accelerate the worst case rate on quadratic objectives. " +
			"experiments on logistic regression benchmarks confirm the theoretical separation between the variants.",
		Neighbors: []Neighbor{
			{
				Title: "stochastic optimization basics",
				Abstract: "stochastic gradient estimates replace exact gradients with minibatch sampling. " +
					"variance reduction techniques recover the deterministic convergence rate at a fraction of the cost.",
				Label: "Theory",
			},
			{
				Title: "neural network training dynamics",
				Abstract: "loss landscapes of overparameterized networks are studied through the neural tangent kernel. " +
					"wide networks train as linear models around initialization which explains their optimization behavior.",
			},
			{Title: "survey of convex duality", Label: "Theory"},
		},
		Categories:   []string{"Theory", "Neural-Networks", "Case-Based"},
		NodeType:     "paper",
		EdgeRelation: "citation",
	}
}

// TestGoldenCompress pins the compressed bytes for every level and a
// token-budget configuration. Any diff means the span splitter, the
// density scoring or the drop order changed — each of which silently
// invalidates prompt caches in the field — so the change must be
// deliberate (regenerate with UPDATE_GOLDEN=1 go test ./internal/prompt/).
func TestGoldenCompress(t *testing.T) {
	p := Build(compressSample())
	for name, c := range map[string]Compressor{
		"c1":     {Level: 1},
		"c2":     {Level: 2},
		"c3":     {Level: 3},
		"budget": {Level: 1, TargetTokens: 160},
	} {
		t.Run(name, func(t *testing.T) {
			got := c.Compress(p)
			golden := fmt.Sprintf("testdata/golden_compress_%s.txt", name)
			if os.Getenv("UPDATE_GOLDEN") != "" {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("rewrote %s", golden)
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatal(err)
			}
			if got != string(want) {
				t.Errorf("compressed prompt diverged from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, got, want)
			}
		})
	}
}

// TestCompressDeterministicAcrossWorkers runs the same compressions
// from 1 and 8 concurrent goroutines and requires bit-identical output:
// the compressor is a pure function, so worker count — like everywhere
// else in this repo — must never change bytes.
func TestCompressDeterministicAcrossWorkers(t *testing.T) {
	p := Build(compressSample())
	c := Compressor{Level: 2, TargetTokens: 150}
	want := c.Compress(p)
	for _, workers := range []int{1, 8} {
		results := make([]string, workers*8)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 8; i++ {
					results[w*8+i] = c.Compress(p)
				}
			}(w)
		}
		wg.Wait()
		for i, got := range results {
			if got != want {
				t.Fatalf("workers=%d call %d diverged:\n--- got ---\n%s\n--- want ---\n%s", workers, i, got, want)
			}
		}
	}
}

func TestCompressDisabledIsIdentity(t *testing.T) {
	p := Build(compressSample())
	if got := (Compressor{}).Compress(p); got != p {
		t.Fatal("zero compressor altered the prompt")
	}
	if (Compressor{}).Enabled() {
		t.Fatal("zero compressor reports enabled")
	}
}

func TestCompressLevelsMonotone(t *testing.T) {
	p := Build(compressSample())
	prev := token.Count(p)
	for level := 1; level <= MaxCompressLevel; level++ {
		out := Compressor{Level: level}.Compress(p)
		n := token.Count(out)
		if n > prev {
			t.Fatalf("level %d produced %d tokens, more than the previous level's %d", level, n, prev)
		}
		prev = n
	}
	if c3 := (Compressor{Level: 3}).Compress(p); token.Count(c3) >= token.Count(p) {
		t.Fatal("level 3 saved nothing on a multi-sentence prompt")
	}
}

func TestCompressBudgetMet(t *testing.T) {
	p := Build(compressSample())
	c := Compressor{TargetTokens: 160}
	out := c.Compress(p)
	if n := token.Count(out); n > 160 {
		t.Fatalf("compressed prompt is %d tokens, budget 160", n)
	}
	if _, err := Parse(out); err != nil {
		t.Fatalf("compressed prompt no longer parses: %v", err)
	}
	// An infeasible budget compresses to the structural floor — the
	// same bytes TargetTokens: 1 produces — instead of failing.
	floor := (Compressor{TargetTokens: 1}).Compress(p)
	if got := (Compressor{TargetTokens: 2}).Compress(p); got != floor {
		t.Fatal("infeasible budget did not reach the structural floor")
	}
}

func TestCompressIdempotent(t *testing.T) {
	p := Build(compressSample())
	for _, c := range []Compressor{
		{Level: 1}, {Level: 2}, {Level: 3},
		{TargetTokens: 100}, {Level: 2, TargetTokens: 1},
	} {
		once := c.Compress(p)
		if twice := c.Compress(once); twice != once {
			t.Fatalf("%+v not idempotent:\n--- once ---\n%s\n--- twice ---\n%s", c, once, twice)
		}
	}
}

// TestCompressKeepsStructure: titles, labels, categories and the task
// instruction are structural — only abstract spans may be dropped.
func TestCompressKeepsStructure(t *testing.T) {
	r := compressSample()
	p := Build(r)
	out := Compressor{Level: 3, TargetTokens: 80}.Compress(p)
	parsed, err := Parse(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(parsed.TargetText, r.TargetTitle) {
		t.Fatalf("target title lost: %q", parsed.TargetText)
	}
	if len(parsed.NeighborTexts) != len(r.Neighbors) {
		t.Fatalf("neighbor count %d, want %d", len(parsed.NeighborTexts), len(r.Neighbors))
	}
	if parsed.NeighborLabels[0] != "Theory" || parsed.NeighborLabels[2] != "Theory" {
		t.Fatalf("neighbor labels lost: %v", parsed.NeighborLabels)
	}
	if len(parsed.Categories) != 3 {
		t.Fatalf("categories lost: %v", parsed.Categories)
	}
	if !strings.Contains(out, "Please output the most likely category") {
		t.Fatal("task instruction lost")
	}
}

// TestCompressUnparseableUnchanged: text the compressor cannot read
// back comes out byte-identical, never mangled.
func TestCompressUnparseableUnchanged(t *testing.T) {
	for _, s := range []string{"", "hello world", "Target paper: Title: x \nno abstract"} {
		if got := (Compressor{Level: 3}.Compress(s)); got != s {
			t.Fatalf("unparseable input %q altered to %q", s, got)
		}
	}
}

func TestCompressTemplateVersion(t *testing.T) {
	cases := map[string]Compressor{
		TemplateVersion: {},
		"v2+c1":         {Level: 1},
		"v2+c1 ":        {TargetTokens: 100}, // trailing space trick below
		"v2+c2":         {Level: 2},
		"v2+c3":         {Level: 3},
		"v2+c3 ":        {Level: 99}, // clamps
	}
	for want, c := range cases {
		if got := c.TemplateVersion(); got != strings.TrimSpace(want) {
			t.Errorf("%+v TemplateVersion = %q, want %q", c, got, strings.TrimSpace(want))
		}
	}
}

func TestCompressStatsAccounting(t *testing.T) {
	p := Build(compressSample())
	out, st := Compressor{Level: 2}.CompressStats(p)
	if st.TokensBefore != token.Count(p) || st.TokensAfter != token.Count(out) {
		t.Fatalf("stats %+v disagree with token.Count (%d -> %d)", st, token.Count(p), token.Count(out))
	}
	if st.Saved() <= 0 {
		t.Fatal("level 2 saved nothing on a multi-sentence prompt")
	}
	if r := st.Ratio(); r <= 0 || r >= 1 {
		t.Fatalf("ratio %v outside (0,1)", r)
	}
}
