// Package prompt builds and parses the query prompts of the "LLMs as
// predictors" paradigm.
//
// Build renders the paper's Table III templates: the target node's
// title and abstract, optional neighbor entries (title, optional
// abstract, and a Category line when the neighbor's label — true or
// pseudo — is known), the category list, and the task instruction.
// Parse is the inverse; it exists because the simulated LLM is a black
// box that receives only the final prompt string, so everything it
// knows about a query must be recovered from the text itself, exactly
// as a real LLM would read it.
package prompt

import (
	"fmt"
	"strings"
)

// TemplateVersion identifies the prompt-template generation. It is
// part of every persistent prompt-cache namespace: cached answers are
// only valid for the exact template that produced the prompt, so bump
// this string whenever Build's rendering changes in any way.
const TemplateVersion = "v1"

// Neighbor is one neighbor entry in a prompt.
type Neighbor struct {
	Title    string
	Abstract string // included only when non-empty
	Label    string // category name; empty if unknown
}

// Request describes a node-classification query to render.
type Request struct {
	TargetTitle    string
	TargetAbstract string
	Neighbors      []Neighbor
	Categories     []string
	// Ranked adds SNS's "from most related to least related" phrasing.
	Ranked bool
	// NodeType is "paper" or "product"; EdgeRelation is e.g. "citation"
	// or "co-purchase".
	NodeType     string
	EdgeRelation string
}

func (r Request) nodeType() string {
	if r.NodeType == "" {
		return "paper"
	}
	return strings.ToLower(r.NodeType)
}

func (r Request) edgeRelation() string {
	if r.EdgeRelation == "" {
		return "citation"
	}
	return strings.ToLower(r.EdgeRelation)
}

// asciiTitle upper-cases the first byte of an ASCII word ("paper" ->
// "Paper").
func asciiTitle(s string) string {
	if s == "" {
		return s
	}
	c := s[0]
	if c >= 'a' && c <= 'z' {
		return string(c-'a'+'A') + s[1:]
	}
	return s
}

// Build renders the prompt following Table III of the paper.
func Build(r Request) string {
	var b strings.Builder
	nt := r.nodeType()
	fmt.Fprintf(&b, "Target %s: Title: %s \nAbstract: %s \n", nt, r.TargetTitle, r.TargetAbstract)
	if len(r.Neighbors) > 0 {
		ranked := ""
		if r.Ranked {
			ranked = ", from most related to least related"
		}
		fmt.Fprintf(&b, "\nTarget %s has the following important neighbors with %s relationships%s:\n",
			nt, r.edgeRelation(), ranked)
		title := asciiTitle(nt)
		for i, nb := range r.Neighbors {
			fmt.Fprintf(&b, "Neighbor %s%d: {{\nTitle: %s \n", title, i, nb.Title)
			if nb.Abstract != "" {
				fmt.Fprintf(&b, "Abstract: %s \n", nb.Abstract)
			}
			if nb.Label != "" {
				fmt.Fprintf(&b, "Category: %s \n", nb.Label)
			}
			b.WriteString("}}\n")
		}
	}
	fmt.Fprintf(&b, "Task: \nCategories: \n[%s]\n", strings.Join(r.Categories, ", "))
	fmt.Fprintf(&b, "Which category does the target %s belong to?\n", nt)
	b.WriteString("Please output the most likely category as a Python list: Category: ['XX'].")
	return b.String()
}

// Parsed is the structured view a reader recovers from a prompt.
type Parsed struct {
	TargetText    string // title + abstract
	NeighborTexts []string
	// NeighborLabels[i] is the Category line of neighbor i ("" if absent).
	NeighborLabels []string
	Categories     []string
	Ranked         bool
}

// Parse recovers the structured query from a prompt built by Build.
func Parse(p string) (Parsed, error) {
	var out Parsed
	lines := strings.Split(p, "\n")
	i := 0

	// Target line: "Target <type>: Title: ... "
	if i >= len(lines) || !strings.HasPrefix(lines[i], "Target ") {
		return out, fmt.Errorf("prompt: missing target line")
	}
	first := lines[i]
	ti := strings.Index(first, "Title: ")
	if ti < 0 {
		return out, fmt.Errorf("prompt: target line missing title")
	}
	targetTitle := strings.TrimSpace(first[ti+len("Title: "):])
	i++
	if i >= len(lines) || !strings.HasPrefix(lines[i], "Abstract: ") {
		return out, fmt.Errorf("prompt: missing target abstract")
	}
	targetAbstract := strings.TrimSpace(strings.TrimPrefix(lines[i], "Abstract: "))
	out.TargetText = strings.TrimSpace(targetTitle + " " + targetAbstract)
	i++

	// Optional neighbor block.
	for i < len(lines) {
		line := lines[i]
		switch {
		case line == "":
			i++
		case strings.HasPrefix(line, "Target ") && strings.Contains(line, "neighbors"):
			out.Ranked = strings.Contains(line, "from most related to least related")
			i++
		case strings.HasPrefix(line, "Neighbor "):
			// Entry spans until the closing "}}".
			i++
			var text []string
			label := ""
			for i < len(lines) && lines[i] != "}}" {
				l := lines[i]
				switch {
				case strings.HasPrefix(l, "Title: "):
					text = append(text, strings.TrimSpace(strings.TrimPrefix(l, "Title: ")))
				case strings.HasPrefix(l, "Abstract: "):
					text = append(text, strings.TrimSpace(strings.TrimPrefix(l, "Abstract: ")))
				case strings.HasPrefix(l, "Category: "):
					label = strings.TrimSpace(strings.TrimPrefix(l, "Category: "))
				}
				i++
			}
			if i >= len(lines) {
				return out, fmt.Errorf("prompt: unterminated neighbor entry")
			}
			i++ // consume "}}"
			out.NeighborTexts = append(out.NeighborTexts, strings.Join(text, " "))
			out.NeighborLabels = append(out.NeighborLabels, label)
		case strings.HasPrefix(line, "Task:"):
			i++
			goto task
		default:
			return out, fmt.Errorf("prompt: unexpected line %q", line)
		}
	}
	return out, fmt.Errorf("prompt: missing task section")

task:
	if i >= len(lines) || !strings.HasPrefix(lines[i], "Categories:") {
		return out, fmt.Errorf("prompt: missing categories header")
	}
	i++
	if i >= len(lines) || !strings.HasPrefix(lines[i], "[") || !strings.HasSuffix(lines[i], "]") {
		return out, fmt.Errorf("prompt: missing category list")
	}
	inner := strings.TrimSuffix(strings.TrimPrefix(lines[i], "["), "]")
	for _, c := range strings.Split(inner, ", ") {
		c = strings.TrimSpace(c)
		if c != "" {
			out.Categories = append(out.Categories, c)
		}
	}
	if len(out.Categories) == 0 {
		return out, fmt.Errorf("prompt: empty category list")
	}
	return out, nil
}

// FormatResponse renders an LLM answer in the format the templates
// request: Category: ['XX'].
func FormatResponse(category string) string {
	return fmt.Sprintf("Category: ['%s']", category)
}

// ParseResponse extracts the category from a response in the requested
// format. It tolerates surrounding text, matching how deployments parse
// real LLM output.
func ParseResponse(s string) (string, error) {
	start := strings.Index(s, "['")
	if start < 0 {
		return "", fmt.Errorf("prompt: response %q has no category list", s)
	}
	rest := s[start+2:]
	end := strings.Index(rest, "']")
	if end < 0 {
		return "", fmt.Errorf("prompt: response %q has unterminated category list", s)
	}
	c := strings.TrimSpace(rest[:end])
	if c == "" {
		return "", fmt.Errorf("prompt: response %q has empty category", s)
	}
	return c, nil
}
