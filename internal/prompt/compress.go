// Prompt compression: token-pruning v2. The paper's τ-pruning decides
// *which* queries keep neighbor text; the Compressor decides *what
// survives inside* a prompt that kept it. Abstract text — the target
// node's and each neighbor's — is split into spans (sentences, long
// sentences chunked into fixed word windows), each span is scored for
// signal density against the whole prompt's word distribution with the
// infotheory machinery, and the lowest-density spans are dropped until
// the per-level span caps and the optional per-query token budget are
// met. Titles, labels, the category list and the task instruction are
// structural and never touched, so Parse recovers the same query from
// the compressed prompt.
//
// The two properties everything downstream leans on:
//
//   - Determinism: compression is a pure function of (prompt text,
//     Level, TargetTokens). Same input, same output, on any goroutine,
//     at any worker count.
//   - Idempotence: Compress(Compress(p)) == Compress(p). Kept spans are
//     re-rendered canonically (single-space joins), the span splitter
//     re-derives identical boundaries from the rendered text, and a
//     prompt already within its caps and budget is never altered — so a
//     second pass finds nothing to drop.
package prompt

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/infotheory"
	"repro/internal/token"
)

// compressedTemplateVersion is the template generation of compressed
// prompts; the compression level is appended (e.g. "v2+c2") so every
// level owns a disjoint prompt-cache namespace. A cached answer is only
// valid for the exact bytes that bought it, and compression changes the
// bytes — versioning the namespace makes that invalidation structural
// instead of accidental.
const compressedTemplateVersion = "v2"

// spanWords is the chunking window: sentences longer than this many
// words are split into fixed windows so span-level dropping still has
// granularity on the generated abstracts, which are long single
// "sentences" without terminal punctuation.
const spanWords = 8

// MaxCompressLevel is the strongest compression level.
const MaxCompressLevel = 3

// levelSpanCap maps a compression level to the maximum spans kept per
// abstract: level 1 trims tails, level 2 halves, level 3 keeps only the
// densest span of each abstract.
func levelSpanCap(level int) int {
	switch level {
	case 1:
		return 4
	case 2:
		return 2
	default:
		return 1
	}
}

// Compressor deterministically compresses prompts built by Build. The
// zero value is disabled (Compress returns its input unchanged).
type Compressor struct {
	// Level selects the per-abstract span caps (1..MaxCompressLevel);
	// values above MaxCompressLevel clamp. 0 with TargetTokens > 0
	// behaves as level 1.
	Level int
	// TargetTokens, when > 0, is the per-query compressed token budget:
	// after the level caps, the lowest-density spans anywhere in the
	// prompt keep dropping until token.Count(prompt) fits the budget or
	// only the structural floor remains (the target node always keeps at
	// least one abstract span).
	TargetTokens int
}

// Enabled reports whether the compressor does anything.
func (c Compressor) Enabled() bool { return c.Level > 0 || c.TargetTokens > 0 }

// level returns the effective level clamped to [1, MaxCompressLevel].
func (c Compressor) level() int {
	l := c.Level
	if l < 1 {
		l = 1
	}
	if l > MaxCompressLevel {
		l = MaxCompressLevel
	}
	return l
}

// TemplateVersion returns the prompt-template generation the compressor
// produces: the base TemplateVersion when disabled, "v2+c<level>" when
// enabled. It feeds promptcache.NamespaceVersion so cached answers can
// never cross compression configurations.
func (c Compressor) TemplateVersion() string {
	if !c.Enabled() {
		return TemplateVersion
	}
	return fmt.Sprintf("%s+c%d", compressedTemplateVersion, c.level())
}

// CompressStats reports one compression outcome.
type CompressStats struct {
	// TokensBefore/TokensAfter are token.Count of the prompt before and
	// after compression; equal when the compressor is disabled or the
	// prompt had nothing to drop.
	TokensBefore int
	TokensAfter  int
}

// Saved is the token saving (never negative).
func (s CompressStats) Saved() int {
	if d := s.TokensBefore - s.TokensAfter; d > 0 {
		return d
	}
	return 0
}

// Ratio is TokensAfter/TokensBefore in (0, 1]; 1 when nothing shrank.
func (s CompressStats) Ratio() float64 {
	if s.TokensBefore <= 0 {
		return 1
	}
	return float64(s.TokensAfter) / float64(s.TokensBefore)
}

// Compress returns the compressed prompt. Prompts that do not parse as
// Build output are returned unchanged — the compressor refuses to
// guess at text it cannot read back, so it can never corrupt a prompt.
func (c Compressor) Compress(promptText string) string {
	out, _ := c.CompressStats(promptText)
	return out
}

// CompressStats is Compress with before/after token accounting for the
// metrics and ledger layers.
func (c Compressor) CompressStats(promptText string) (string, CompressStats) {
	before := token.Count(promptText)
	st := CompressStats{TokensBefore: before, TokensAfter: before}
	if !c.Enabled() {
		return promptText, st
	}
	if _, err := Parse(promptText); err != nil {
		return promptText, st
	}
	abs := findAbstracts(promptText)
	if len(abs) == 0 {
		return promptText, st
	}
	scoreSpans(promptText, abs)

	// Phase 1 — level caps: each abstract keeps its cap's worth of
	// densest spans. The target abstract always keeps at least one span
	// so Parse still recovers the target node.
	spanCap := levelSpanCap(c.level())
	for i := range abs {
		abs[i].keepTop(spanCap)
	}

	// Phase 2 — token budget: drop the globally lowest-density spans
	// (later spans first on ties) until the rendered prompt fits. The
	// running total is tracked incrementally: token.Count never forms a
	// token across whitespace, so dropping a space-separated span
	// shrinks the prompt by exactly that span's count (plus the
	// "Abstract:" prefix when a neighbor's line empties out and is
	// removed entirely).
	if c.TargetTokens > 0 {
		total := token.Count(render(promptText, abs))
		if total > c.TargetTokens {
			prefixTokens := token.Count("Abstract:")
			for _, d := range droppable(abs) {
				if total <= c.TargetTokens {
					break
				}
				a := &abs[d.abs]
				a.kept[d.span] = false
				total -= token.Count(a.spans[d.span].text)
				if !a.target && a.keptCount() == 0 {
					total -= prefixTokens
				}
			}
		}
	}

	out := render(promptText, abs)
	st.TokensAfter = token.Count(out)
	return out, st
}

// span is one scored compressible unit of an abstract.
type span struct {
	text  string
	score float64
}

// abstract is one compressible Abstract line of a prompt.
type abstract struct {
	line   int // index into the prompt's lines
	target bool
	spans  []span
	kept   []bool
}

// keepTop keeps the cap densest spans (earlier spans win ties — the
// opening of an abstract is its topic statement) and drops the rest.
// The target abstract keeps at least one span regardless.
func (a *abstract) keepTop(spanCap int) {
	if spanCap < 1 {
		spanCap = 1
	}
	if len(a.spans) <= spanCap {
		return
	}
	idx := make([]int, len(a.spans))
	for i := range idx {
		idx[i] = i
	}
	// Deterministic selection order: density descending, position
	// ascending on ties (the stable sort preserves index order).
	sort.SliceStable(idx, func(i, j int) bool {
		return a.spans[idx[i]].score > a.spans[idx[j]].score
	})
	for _, i := range idx[spanCap:] {
		a.kept[i] = false
	}
}

// keptCount returns how many spans survive so far.
func (a *abstract) keptCount() int {
	n := 0
	for _, k := range a.kept {
		if k {
			n++
		}
	}
	return n
}

// dropRef addresses one droppable span.
type dropRef struct {
	abs, span int
	score     float64
}

// droppable lists the spans the budget phase may still drop, lowest
// density first (later position first on ties, preserving abstract
// openings longest). The target abstract's last surviving span is
// excluded: the prompt must keep a recoverable target node.
func droppable(abs []abstract) []dropRef {
	var out []dropRef
	for ai := range abs {
		floor := 0
		if abs[ai].target {
			floor = 1
		}
		kept := abs[ai].keptCount()
		for si := len(abs[ai].spans) - 1; si >= 0; si-- {
			if !abs[ai].kept[si] {
				continue
			}
			if kept <= floor {
				break
			}
			kept--
			out = append(out, dropRef{abs: ai, span: si, score: abs[ai].spans[si].score})
		}
	}
	// Stable sort by score ascending; the construction order above
	// already encodes later-position-first within equal scores.
	sort.SliceStable(out, func(i, j int) bool { return out[i].score < out[j].score })
	return out
}

// findAbstracts locates the compressible Abstract lines: the target's
// (line 1, guaranteed by Parse) and each neighbor entry's.
func findAbstracts(promptText string) []abstract {
	lines := strings.Split(promptText, "\n")
	var out []abstract
	add := func(i int, target bool) {
		body := strings.TrimPrefix(lines[i], "Abstract: ")
		spans := splitSpans(body)
		if len(spans) == 0 {
			return
		}
		a := abstract{line: i, target: target, spans: spans, kept: make([]bool, len(spans))}
		for j := range a.kept {
			a.kept[j] = true
		}
		out = append(out, a)
	}
	if len(lines) > 1 && strings.HasPrefix(lines[1], "Abstract: ") {
		add(1, true)
	}
	inNeighbor := false
	for i := 2; i < len(lines); i++ {
		switch {
		case strings.HasPrefix(lines[i], "Neighbor "):
			inNeighbor = true
		case lines[i] == "}}":
			inNeighbor = false
		case inNeighbor && strings.HasPrefix(lines[i], "Abstract: "):
			add(i, false)
		}
	}
	return out
}

// splitSpans cuts abstract text into spans: sentence boundaries first
// (a word ending in ./!/? terminates a sentence), then fixed windows of
// spanWords within each sentence. Chunking restarts at every sentence
// boundary, so re-splitting the canonical join of any kept subset never
// yields more spans than were kept — the invariant behind idempotence.
func splitSpans(text string) []span {
	words := strings.Fields(text)
	var out []span
	start := 0
	flush := func(end int) {
		for s := start; s < end; s += spanWords {
			e := s + spanWords
			if e > end {
				e = end
			}
			out = append(out, span{text: strings.Join(words[s:e], " ")})
		}
		start = end
	}
	for i, w := range words {
		switch w[len(w)-1] {
		case '.', '!', '?':
			flush(i + 1)
		}
	}
	flush(len(words))
	return out
}

// scoreSpans assigns each span its signal density: the cross-entropy
// (in bits per word) of the span's word distribution under the whole
// prompt's — H(p_span) + D_KL(p_span ‖ p_prompt), which is the mean
// self-information of the span's words under the prompt's unigram
// model. It is the unigram analog of LongLLMLingua's perplexity
// ranking: a span of words repeated all over the prompt carries little
// signal and is dropped first; a span concentrating rare, distinctive
// words survives. The background includes the span itself, so the
// divergence is always finite.
func scoreSpans(promptText string, abs []abstract) {
	background := map[string]float64{}
	var backgroundTotal float64
	for _, w := range strings.Fields(promptText) {
		background[w]++
		backgroundTotal++
	}
	for ai := range abs {
		for si := range abs[ai].spans {
			// Score over the span's distinct words plus one catch-all
			// bucket holding the rest of the prompt's mass. KLDivergence
			// normalizes q over its own sum, so this equals the
			// full-vocabulary computation exactly, at O(span words) per
			// span instead of O(vocabulary).
			words := strings.Fields(abs[ai].spans[si].text)
			spanCounts := map[string]float64{}
			var p, q []float64
			rest := backgroundTotal
			for _, w := range words {
				if _, seen := spanCounts[w]; !seen {
					p = append(p, 0)
					q = append(q, background[w])
					rest -= background[w]
					spanCounts[w] = float64(len(p) - 1)
				}
				p[int(spanCounts[w])]++
			}
			p = append(p, 0)
			q = append(q, rest)
			abs[ai].spans[si].score = infotheory.Entropy(p) +
				infotheory.KLDivergence(p, q)
		}
	}
}

// render reconstructs the prompt with the surviving spans. An abstract
// whose span set is unchanged keeps its original bytes; a changed one
// is re-rendered canonically in the Build format ("Abstract: <spans
// joined by single spaces> "), and a neighbor abstract losing every
// span loses its whole line — exactly what Build emits for an empty
// neighbor abstract.
func render(promptText string, abs []abstract) string {
	lines := strings.Split(promptText, "\n")
	drop := map[int]bool{}
	for ai := range abs {
		a := &abs[ai]
		if a.keptCount() == len(a.spans) {
			continue
		}
		var kept []string
		for si, k := range a.kept {
			if k {
				kept = append(kept, a.spans[si].text)
			}
		}
		if len(kept) == 0 && !a.target {
			drop[a.line] = true
			continue
		}
		lines[a.line] = "Abstract: " + strings.Join(kept, " ") + " "
	}
	if len(drop) == 0 {
		return strings.Join(lines, "\n")
	}
	out := make([]string, 0, len(lines))
	for i, l := range lines {
		if !drop[i] {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}
