// Package textgen synthesizes class-conditional node text for
// text-attributed graphs.
//
// The paper's datasets attach a title and an abstract (or a product
// description) to every node; the text of a node carries a variable
// amount of information about its class. This package reproduces that
// property synthetically: each class owns a vocabulary of signal words,
// all classes share a large background vocabulary, and each node has an
// "ambiguity" level in [0, 1] that controls how much of its text is
// drawn from its own class's signal vocabulary versus a confuser
// class's. Low-ambiguity nodes are the paper's saturated nodes — their
// own text suffices for classification — while high-ambiguity nodes
// need neighbor cues.
package textgen

import (
	"strings"

	"repro/internal/xrand"
)

// Vocabulary holds the word model for one dataset: per-class signal
// words plus a shared background vocabulary.
type Vocabulary struct {
	// Signal[k] lists words that indicate class k.
	Signal [][]string
	// Background lists class-neutral filler words.
	Background []string
	// Confuser[k] is the class whose vocabulary ambiguous class-k nodes
	// borrow from. It is a fixed derangement of the classes so that
	// ambiguity has a consistent direction (as in real corpora, where
	// e.g. "Theory" papers are most often confusable with "Probabilistic
	// Methods", not with a random class each time).
	Confuser []int

	// classOf maps a signal word to its class for O(1) scoring; built
	// once at construction.
	classOf map[string]int
}

// syllable inventory for pseudo-English word synthesis.
var (
	onsets  = []string{"b", "br", "c", "cr", "d", "dr", "f", "fl", "g", "gl", "gr", "h", "j", "k", "kl", "l", "m", "n", "p", "pl", "pr", "qu", "r", "s", "sc", "sk", "sl", "sp", "st", "str", "t", "th", "tr", "v", "vr", "w", "z"}
	nuclei  = []string{"a", "e", "i", "o", "u", "ai", "au", "ea", "ee", "ia", "ie", "io", "oa", "oo", "ou"}
	codas   = []string{"", "b", "ck", "d", "g", "l", "ll", "m", "mb", "n", "nd", "ng", "nt", "p", "r", "rd", "rk", "rm", "rn", "s", "ss", "st", "t", "th", "x"}
	endings = []string{"", "", "", "ic", "al", "ive", "ion", "ment", "ity", "ism", "ous", "ary"}
)

// synthWord builds a deterministic pseudo-English word of the requested
// syllable count from the stream.
func synthWord(rng *xrand.RNG, syllables int) string {
	var b strings.Builder
	for s := 0; s < syllables; s++ {
		b.WriteString(onsets[rng.Intn(len(onsets))])
		b.WriteString(nuclei[rng.Intn(len(nuclei))])
		if s == syllables-1 || rng.Float64() < 0.5 {
			b.WriteString(codas[rng.Intn(len(codas))])
		}
	}
	if rng.Float64() < 0.25 {
		b.WriteString(endings[rng.Intn(len(endings))])
	}
	return b.String()
}

// VocabularyConfig sizes a Vocabulary.
type VocabularyConfig struct {
	Classes        int // number of classes K
	SignalPerClass int // signal words owned by each class
	Background     int // shared background words
}

// NewVocabulary deterministically builds a vocabulary from the stream.
// Words are globally unique across signal classes and background so
// that a word's class evidence is unambiguous at generation time (the
// simulated LLM later corrupts this knowledge per its skill level).
func NewVocabulary(rng *xrand.RNG, cfg VocabularyConfig) *Vocabulary {
	if cfg.Classes <= 0 {
		panic("textgen: vocabulary needs at least one class")
	}
	if cfg.SignalPerClass <= 0 || cfg.Background <= 0 {
		panic("textgen: vocabulary needs positive word counts")
	}
	v := &Vocabulary{
		Signal:     make([][]string, cfg.Classes),
		Confuser:   make([]int, cfg.Classes),
		classOf:    make(map[string]int),
		Background: make([]string, 0, cfg.Background),
	}
	seen := map[string]bool{}
	draw := func(syllables int) string {
		for {
			w := synthWord(rng, syllables)
			if !seen[w] && len(w) >= 3 {
				seen[w] = true
				return w
			}
		}
	}
	for k := 0; k < cfg.Classes; k++ {
		words := make([]string, cfg.SignalPerClass)
		for i := range words {
			words[i] = draw(2 + rng.Intn(2))
		}
		v.Signal[k] = words
		for _, w := range words {
			v.classOf[w] = k
		}
	}
	for i := 0; i < cfg.Background; i++ {
		v.Background = append(v.Background, draw(1+rng.Intn(3)))
	}
	// Mutual confuser pairing: classes confuse each other in pairs
	// (0↔1, 2↔3, …), so an ambiguous class-A text and an ambiguous
	// class-B text draw from the same word mixture and are *genuinely*
	// indistinguishable — no classifier can learn the ambiguity away.
	// (A one-directional derangement would leak the true class: only
	// A-nodes would ever produce the exact A+confuser(A) mixture.)
	// With an odd class count the last class pairs with class 0.
	for k := range v.Confuser {
		if k%2 == 0 {
			v.Confuser[k] = (k + 1) % cfg.Classes
		} else {
			v.Confuser[k] = k - 1
		}
	}
	if cfg.Classes == 1 {
		v.Confuser[0] = 0
	}
	return v
}

// RebuildIndex reconstructs the word→class lookup from Signal. Call it
// after deserializing a Vocabulary, whose index is not persisted.
func (v *Vocabulary) RebuildIndex() {
	v.classOf = make(map[string]int)
	for k, words := range v.Signal {
		for _, w := range words {
			v.classOf[w] = k
		}
	}
}

// ClassOf reports the class that owns word as a signal word, or -1 if
// the word is background (or unknown).
func (v *Vocabulary) ClassOf(word string) int {
	if k, ok := v.classOf[word]; ok {
		return k
	}
	return -1
}

// Classes returns the number of classes in the vocabulary.
func (v *Vocabulary) Classes() int { return len(v.Signal) }

// TextConfig controls per-node text synthesis.
type TextConfig struct {
	TitleWords    int     // words in the title
	AbstractWords int     // words in the abstract/description
	TitleSignal   float64 // fraction of title words that are class evidence
	AbstractSig   float64 // fraction of abstract words that are class evidence
}

// Generate produces a (title, abstract) pair for a node of class k with
// the given ambiguity in [0, 1]. Each evidence slot borrows from the
// confuser class with probability ambiguity/2, so maximal ambiguity is
// a 50/50 word mixture — the point of genuine indistinguishability
// (H(y|t) ≈ 1 bit between the pair), never a text that simply looks
// like the other class. Remaining slots are background words.
func (v *Vocabulary) Generate(rng *xrand.RNG, k int, ambiguity float64, cfg TextConfig) (title, abstract string) {
	if k < 0 || k >= len(v.Signal) {
		panic("textgen: class out of range")
	}
	if ambiguity < 0 {
		ambiguity = 0
	}
	if ambiguity > 1 {
		ambiguity = 1
	}
	gen := func(words int, sigFrac float64) string {
		parts := make([]string, 0, words)
		for i := 0; i < words; i++ {
			switch {
			case rng.Float64() < sigFrac:
				src := k
				if rng.Float64() < ambiguity/2 {
					src = v.Confuser[k]
				}
				ws := v.Signal[src]
				parts = append(parts, ws[rng.Intn(len(ws))])
			default:
				parts = append(parts, v.Background[rng.Intn(len(v.Background))])
			}
		}
		return strings.Join(parts, " ")
	}
	title = gen(cfg.TitleWords, cfg.TitleSignal)
	abstract = gen(cfg.AbstractWords, cfg.AbstractSig)
	return title, abstract
}

// Evidence tallies, per class, how many words of text are signal words
// of that class. It is the ground-truth scoring rule the simulated LLM
// applies (with its own noisy copy of the vocabulary).
func (v *Vocabulary) Evidence(text string) []float64 {
	scores := make([]float64, len(v.Signal))
	for _, w := range strings.Fields(text) {
		if k, ok := v.classOf[w]; ok {
			scores[k]++
		}
	}
	return scores
}
