package textgen

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func testVocab(t *testing.T, classes int) *Vocabulary {
	t.Helper()
	return NewVocabulary(xrand.New(1), VocabularyConfig{
		Classes:        classes,
		SignalPerClass: 40,
		Background:     400,
	})
}

func TestVocabularyShape(t *testing.T) {
	v := testVocab(t, 7)
	if v.Classes() != 7 {
		t.Fatalf("Classes() = %d, want 7", v.Classes())
	}
	for k, ws := range v.Signal {
		if len(ws) != 40 {
			t.Fatalf("class %d has %d signal words, want 40", k, len(ws))
		}
	}
	if len(v.Background) != 400 {
		t.Fatalf("background size %d, want 400", len(v.Background))
	}
}

func TestVocabularyWordsUnique(t *testing.T) {
	v := testVocab(t, 7)
	seen := map[string]bool{}
	check := func(w string) {
		if seen[w] {
			t.Fatalf("duplicate word %q across vocabulary", w)
		}
		seen[w] = true
	}
	for _, ws := range v.Signal {
		for _, w := range ws {
			check(w)
		}
	}
	for _, w := range v.Background {
		check(w)
	}
}

func TestVocabularyDeterministic(t *testing.T) {
	a := testVocab(t, 5)
	b := testVocab(t, 5)
	for k := range a.Signal {
		if strings.Join(a.Signal[k], "|") != strings.Join(b.Signal[k], "|") {
			t.Fatalf("class %d signal words differ across identical seeds", k)
		}
	}
}

func TestClassOf(t *testing.T) {
	v := testVocab(t, 4)
	for k, ws := range v.Signal {
		for _, w := range ws {
			if got := v.ClassOf(w); got != k {
				t.Fatalf("ClassOf(%q) = %d, want %d", w, got, k)
			}
		}
	}
	for _, w := range v.Background {
		if got := v.ClassOf(w); got != -1 {
			t.Fatalf("ClassOf(background %q) = %d, want -1", w, got)
		}
	}
	if v.ClassOf("definitelynotaword") != -1 {
		t.Fatal("unknown word should map to -1")
	}
}

func TestConfuserIsDerangement(t *testing.T) {
	for _, k := range []int{2, 3, 7, 40, 47} {
		v := NewVocabulary(xrand.New(9), VocabularyConfig{Classes: k, SignalPerClass: 5, Background: 50})
		for c, conf := range v.Confuser {
			if conf == c {
				t.Fatalf("class %d is its own confuser (K=%d)", c, k)
			}
			if conf < 0 || conf >= k {
				t.Fatalf("confuser %d out of range (K=%d)", conf, k)
			}
		}
	}
}

func TestGenerateLengths(t *testing.T) {
	v := testVocab(t, 3)
	cfg := TextConfig{TitleWords: 9, AbstractWords: 80, TitleSignal: 0.5, AbstractSig: 0.3}
	title, abstract := v.Generate(xrand.New(2), 0, 0.1, cfg)
	if got := len(strings.Fields(title)); got != 9 {
		t.Fatalf("title has %d words, want 9", got)
	}
	if got := len(strings.Fields(abstract)); got != 80 {
		t.Fatalf("abstract has %d words, want 80", got)
	}
}

// Low-ambiguity text must carry dominant evidence for its own class;
// high-ambiguity text must approach a 50/50 mixture with its confuser
// class — genuinely undecidable, never flipped to look like the other
// class.
func TestAmbiguityControlsEvidence(t *testing.T) {
	v := testVocab(t, 6)
	cfg := TextConfig{TitleWords: 10, AbstractWords: 120, TitleSignal: 0.6, AbstractSig: 0.35}
	rng := xrand.New(3)

	ownWins := func(amb float64, class int) (own, confuser float64) {
		var o, c float64
		for trial := 0; trial < 30; trial++ {
			title, abstract := v.Generate(rng, class, amb, cfg)
			ev := v.Evidence(title + " " + abstract)
			o += ev[class]
			c += ev[v.Confuser[class]]
		}
		return o, c
	}

	own, conf := ownWins(0.05, 2)
	if own <= 4*conf {
		t.Fatalf("saturated text: own evidence %v not dominant over confuser %v", own, conf)
	}
	own, conf = ownWins(1.0, 2)
	ratio := conf / own
	if ratio < 0.75 || ratio > 1.33 {
		t.Fatalf("maximally ambiguous text: confuser/own evidence ratio %v, want ≈1 (50/50 mixture)", ratio)
	}
	// Confusion is mutual: the confuser's confuser is the class itself,
	// so the two classes' ambiguous texts share one distribution.
	if v.Confuser[v.Confuser[2]] != 2 {
		t.Fatalf("confuser pairing not mutual: Confuser[Confuser[2]] = %d", v.Confuser[v.Confuser[2]])
	}
}

func TestEvidenceCountsWords(t *testing.T) {
	v := testVocab(t, 3)
	w0 := v.Signal[0][0]
	w1 := v.Signal[1][0]
	ev := v.Evidence(w0 + " " + w0 + " " + w1 + " unrelatedword")
	if ev[0] != 2 {
		t.Fatalf("class 0 evidence = %v, want 2", ev[0])
	}
	if ev[1] != 1 {
		t.Fatalf("class 1 evidence = %v, want 1", ev[1])
	}
	if ev[2] != 0 {
		t.Fatalf("class 2 evidence = %v, want 0", ev[2])
	}
}

func TestGenerateClampsAmbiguity(t *testing.T) {
	v := testVocab(t, 3)
	cfg := TextConfig{TitleWords: 5, AbstractWords: 10, TitleSignal: 0.5, AbstractSig: 0.5}
	// Out-of-range ambiguity should not panic.
	v.Generate(xrand.New(4), 1, -3, cfg)
	v.Generate(xrand.New(4), 1, 42, cfg)
}

func TestGeneratePanicsOnBadClass(t *testing.T) {
	v := testVocab(t, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range class")
		}
	}()
	v.Generate(xrand.New(5), 3, 0, TextConfig{TitleWords: 1, AbstractWords: 1})
}

// Property: generated words always come from the vocabulary.
func TestQuickGeneratedWordsKnown(t *testing.T) {
	v := testVocab(t, 5)
	known := map[string]bool{}
	for _, ws := range v.Signal {
		for _, w := range ws {
			known[w] = true
		}
	}
	for _, w := range v.Background {
		known[w] = true
	}
	f := func(seed uint64, class uint8, amb float64) bool {
		k := int(class) % 5
		a := amb - float64(int(amb)) // fold into a small range
		title, abstract := v.Generate(xrand.New(seed), k, a, TextConfig{
			TitleWords: 6, AbstractWords: 20, TitleSignal: 0.5, AbstractSig: 0.3,
		})
		for _, w := range strings.Fields(title + " " + abstract) {
			if !known[w] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: evidence vector length always equals class count and is
// non-negative.
func TestQuickEvidenceShape(t *testing.T) {
	v := testVocab(t, 4)
	f := func(s string) bool {
		ev := v.Evidence(s)
		if len(ev) != 4 {
			return false
		}
		for _, e := range ev {
			if e < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestManyClassesVocabulary(t *testing.T) {
	// The Ogbn-Products configuration has 47 classes; construction must
	// stay fast and collision-free.
	v := NewVocabulary(xrand.New(21), VocabularyConfig{Classes: 47, SignalPerClass: 30, Background: 800})
	if v.Classes() != 47 {
		t.Fatalf("Classes() = %d", v.Classes())
	}
}
