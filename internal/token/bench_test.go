package token

import (
	"strings"
	"testing"
)

var benchText = strings.Repeat(
	"Target paper: Title: convergence of probabilistic inference networks \n"+
		"Abstract: we study the asymptotic behaviour of belief propagation 12345 ", 20)

// BenchmarkCount measures the tokenizer on a representative prompt
// (the per-query hot path of every budget computation).
func BenchmarkCount(b *testing.B) {
	b.ReportAllocs()
	b.SetBytes(int64(len(benchText)))
	for i := 0; i < b.N; i++ {
		if Count(benchText) == 0 {
			b.Fatal("zero tokens")
		}
	}
}

// BenchmarkTokenize measures full tokenization (used by tests and
// diagnostics; Count avoids materializing the slice).
func BenchmarkTokenize(b *testing.B) {
	b.ReportAllocs()
	b.SetBytes(int64(len(benchText)))
	for i := 0; i < b.N; i++ {
		if len(Tokenize(benchText)) == 0 {
			b.Fatal("zero tokens")
		}
	}
}
