// Package token implements a deterministic subword tokenizer used to
// meter prompt costs.
//
// The paper's cost model counts OpenAI BPE tokens. Offline we cannot
// ship tiktoken's merge tables, so this package provides a rule-based
// subword tokenizer with the same statistical behaviour on English-like
// text (roughly four characters per token, one token per punctuation
// mark, digit runs split in groups of three). All budget arithmetic in
// the repository — pruning thresholds, Table V potentials, per-query
// meters — flows through Count and Tokenize here, so swapping in a real
// BPE implementation would be a one-package change.
package token

import (
	"strings"
	"sync/atomic"
	"unicode"
)

// maxPiece is the longest run of letters emitted as a single token.
// Real BPE merges common 3-6 character chunks; using a fixed chunk size
// of 4 for rare words and whole-token treatment for common short words
// lands within a few percent of tiktoken counts on English text.
const maxPiece = 4

// common holds frequent English words that real BPE vocabularies encode
// as a single token regardless of length.
var common = map[string]bool{
	"the": true, "and": true, "for": true, "with": true, "that": true,
	"this": true, "from": true, "which": true, "paper": true, "into": true,
	"model": true, "method": true, "based": true, "using": true,
	"results": true, "learning": true, "network": true, "networks": true,
	"graph": true, "node": true, "nodes": true, "data": true, "title": true,
	"abstract": true, "category": true, "neighbor": true, "target": true,
	"categories": true, "following": true, "important": true, "output": true,
	"most": true, "likely": true, "belong": true, "does": true, "task": true,
	"citation": true, "product": true, "related": true, "class": true,
}

// Tokenize splits text into subword tokens. The exact pieces matter
// less than their count, but they are stable and reversible enough for
// tests to reason about.
func Tokenize(text string) []string {
	var out []string
	emitWord := func(w string) {
		lower := strings.ToLower(w)
		if len(w) <= maxPiece || common[lower] {
			out = append(out, w)
			return
		}
		// Chunk long words into maxPiece-sized subword pieces.
		for len(w) > 0 {
			n := maxPiece
			if len(w) < n {
				n = len(w)
			}
			// Avoid a dangling single-letter final piece; real BPE
			// prefers balanced merges.
			if len(w) == n+1 {
				n++
			}
			out = append(out, w[:n])
			w = w[n:]
		}
	}
	emitDigits := func(d string) {
		for len(d) > 0 {
			n := 3
			if len(d) < n {
				n = len(d)
			}
			out = append(out, d[:n])
			d = d[n:]
		}
	}

	i := 0
	rs := []rune(text)
	for i < len(rs) {
		r := rs[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case unicode.IsLetter(r):
			j := i
			for j < len(rs) && unicode.IsLetter(rs[j]) {
				j++
			}
			emitWord(string(rs[i:j]))
			i = j
		case unicode.IsDigit(r):
			j := i
			for j < len(rs) && unicode.IsDigit(rs[j]) {
				j++
			}
			emitDigits(string(rs[i:j]))
			i = j
		default:
			// Punctuation and symbols: one token each.
			out = append(out, string(r))
			i++
		}
	}
	return out
}

// Count returns the number of tokens in text. It is the unit used for
// every budget computation in the repository.
func Count(text string) int {
	// Counting without materializing the token slice keeps the hot
	// path (per-prompt metering) allocation-free.
	n := 0
	i := 0
	rs := []rune(text)
	for i < len(rs) {
		r := rs[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case unicode.IsLetter(r):
			j := i
			for j < len(rs) && unicode.IsLetter(rs[j]) {
				j++
			}
			n += wordTokens(string(rs[i:j]))
			i = j
		case unicode.IsDigit(r):
			j := i
			for j < len(rs) && unicode.IsDigit(rs[j]) {
				j++
			}
			n += (len(string(rs[i:j])) + 2) / 3
			i = j
		default:
			n++
			i++
		}
	}
	return n
}

func wordTokens(w string) int {
	if len(w) <= maxPiece || common[strings.ToLower(w)] {
		return 1
	}
	n := len(w) / maxPiece
	rem := len(w) % maxPiece
	if rem > 1 {
		n++
	}
	// rem == 1 folds into the previous piece; rem == 0 is exact.
	return n
}

// Meter accumulates token usage across many queries. It is the
// repository's implementation of the paper's Tokens(π ∘ v_i) accounting
// in Eq. 2.
//
// All methods use atomic operations, so one meter can total queries
// issued concurrently from many batch-executor workers; because
// addition commutes, the totals are identical regardless of completion
// order. The fields stay plain int64 (not mutex-guarded) so finished
// meters remain copyable values, as the cost-model APIs expect; only
// copying a meter *while* queries are still in flight would tear.
type Meter struct {
	queries int64
	input   int64
	output  int64
}

// AddQuery records one executed query with the given input and output
// token counts.
func (m *Meter) AddQuery(inputTokens, outputTokens int) {
	atomic.AddInt64(&m.queries, 1)
	atomic.AddInt64(&m.input, int64(inputTokens))
	atomic.AddInt64(&m.output, int64(outputTokens))
}

// Queries returns the number of recorded queries.
func (m *Meter) Queries() int { return int(atomic.LoadInt64(&m.queries)) }

// InputTokens returns total input tokens across recorded queries.
func (m *Meter) InputTokens() int { return int(atomic.LoadInt64(&m.input)) }

// OutputTokens returns total output tokens across recorded queries.
func (m *Meter) OutputTokens() int { return int(atomic.LoadInt64(&m.output)) }

// Total returns total tokens (input + output).
func (m *Meter) Total() int {
	return int(atomic.LoadInt64(&m.input) + atomic.LoadInt64(&m.output))
}

// Reset clears the meter.
func (m *Meter) Reset() {
	atomic.StoreInt64(&m.queries, 0)
	atomic.StoreInt64(&m.input, 0)
	atomic.StoreInt64(&m.output, 0)
}
