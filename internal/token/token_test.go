package token

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestEmptyText(t *testing.T) {
	if got := Count(""); got != 0 {
		t.Fatalf("Count(\"\") = %d, want 0", got)
	}
	if got := Tokenize(""); len(got) != 0 {
		t.Fatalf("Tokenize(\"\") = %v, want empty", got)
	}
}

func TestWhitespaceOnly(t *testing.T) {
	if got := Count("   \n\t  "); got != 0 {
		t.Fatalf("Count(whitespace) = %d, want 0", got)
	}
}

func TestShortWordsAreSingleTokens(t *testing.T) {
	for _, w := range []string{"a", "at", "cat", "five"} {
		if got := Count(w); got != 1 {
			t.Fatalf("Count(%q) = %d, want 1", w, got)
		}
	}
}

func TestCommonLongWordsAreSingleTokens(t *testing.T) {
	for _, w := range []string{"abstract", "category", "learning", "networks"} {
		if got := Count(w); got != 1 {
			t.Fatalf("Count(%q) = %d, want 1 (common word)", w, got)
		}
	}
}

func TestRareLongWordsSplit(t *testing.T) {
	// 12 letters, not common: 3 pieces of 4.
	if got := Count("zxqvbnmkljhg"); got != 3 {
		t.Fatalf("Count(12-letter rare word) = %d, want 3", got)
	}
	// 9 letters: 4+5 -> 2 pieces (trailing single letter folds in).
	if got := Count("zxqvbnmkl"); got != 2 {
		t.Fatalf("Count(9-letter rare word) = %d, want 2", got)
	}
}

func TestPunctuationTokens(t *testing.T) {
	if got := Count("a,b.c"); got != 5 {
		t.Fatalf("Count(\"a,b.c\") = %d, want 5", got)
	}
	if got := Count("..."); got != 3 {
		t.Fatalf("Count(\"...\") = %d, want 3", got)
	}
}

func TestDigitGrouping(t *testing.T) {
	cases := map[string]int{
		"7":         1,
		"42":        1,
		"123":       1,
		"1234":      2,
		"123456":    2,
		"1234567":   3,
		"123456789": 3,
	}
	for in, want := range cases {
		if got := Count(in); got != want {
			t.Fatalf("Count(%q) = %d, want %d", in, got, want)
		}
	}
}

func TestCountMatchesTokenizeLength(t *testing.T) {
	texts := []string{
		"The quick brown fox jumps over the lazy dog.",
		"Title: Simple contrastive learning of sentence embeddings\nAbstract: This paper ...",
		"Category: ['Database']",
		"node 12345, edge (1,2); weight=0.75",
		"",
		"   spaced    out   ",
	}
	for _, txt := range texts {
		if got, want := Count(txt), len(Tokenize(txt)); got != want {
			t.Fatalf("Count(%q) = %d, Tokenize length = %d", txt, got, want)
		}
	}
}

func TestQuickCountMatchesTokenize(t *testing.T) {
	f := func(s string) bool {
		return Count(s) == len(Tokenize(s))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCountAdditiveOverSpace(t *testing.T) {
	// Joining two texts with a space never changes the total count.
	f := func(a, b string) bool {
		return Count(a+" "+b) == Count(a)+Count(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCountNonNegativeAndBounded(t *testing.T) {
	// A token covers at least one byte, so count <= byte length.
	f := func(s string) bool {
		c := Count(s)
		return c >= 0 && c <= len(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEnglishDensityApproximatesBPE(t *testing.T) {
	// English prose is ~0.75 words per token for BPE tokenizers, i.e.
	// tokens ≈ words / 0.75. Verify we land in a plausible band.
	text := strings.Repeat("the model aggregates neighborhood information to classify documents in a citation graph while limiting prompt length ", 20)
	words := len(strings.Fields(text))
	tokens := Count(text)
	ratio := float64(tokens) / float64(words)
	if ratio < 1.0 || ratio > 2.0 {
		t.Fatalf("tokens/words ratio = %.2f, want within [1.0, 2.0]", ratio)
	}
}

func TestTokenizePiecesReassemble(t *testing.T) {
	// For pure letter words, concatenating pieces restores the word.
	word := "representation"
	pieces := Tokenize(word)
	if strings.Join(pieces, "") != word {
		t.Fatalf("pieces %v do not reassemble %q", pieces, word)
	}
	if len(pieces) < 2 {
		t.Fatalf("expected long rare word to split, got %v", pieces)
	}
}

func TestMeterAccumulates(t *testing.T) {
	var m Meter
	m.AddQuery(100, 5)
	m.AddQuery(200, 7)
	if m.Queries() != 2 {
		t.Fatalf("Queries = %d, want 2", m.Queries())
	}
	if m.InputTokens() != 300 {
		t.Fatalf("InputTokens = %d, want 300", m.InputTokens())
	}
	if m.OutputTokens() != 12 {
		t.Fatalf("OutputTokens = %d, want 12", m.OutputTokens())
	}
	if m.Total() != 312 {
		t.Fatalf("Total = %d, want 312", m.Total())
	}
	m.Reset()
	if m.Total() != 0 || m.Queries() != 0 {
		t.Fatal("Reset did not clear meter")
	}
}

func TestUnicodeLettersCounted(t *testing.T) {
	// Non-ASCII letters should still tokenize as letter runs, not panic.
	if got := Count("naïve café"); got < 2 {
		t.Fatalf("Count(unicode) = %d, want >= 2", got)
	}
}
