package serve

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/obs"
	"repro/internal/tag"
)

// QueryPath is the online query endpoint the serve tier mounts.
const QueryPath = "/v1/query"

// QueryRequest is the POST /v1/query body.
type QueryRequest struct {
	// Node is the graph node to classify.
	Node int `json:"node"`
}

// QueryResponse is the success body. TraceID echoes the request's
// serve.query trace (also sent as the X-Trace-Id header) so a client
// can join its observed latency to /debug/querytrace; it is omitted
// when tracing did not sample the request.
type QueryResponse struct {
	Node         int    `json:"node"`
	Category     string `json:"category"`
	Tenant       string `json:"tenant"`
	Coalesced    bool   `json:"coalesced"`
	Cached       bool   `json:"cached"`
	Fallback     bool   `json:"fallback"`
	InputTokens  int    `json:"input_tokens"`
	OutputTokens int    `json:"output_tokens"`
	TraceID      string `json:"trace_id,omitempty"`
}

// errorBody mirrors the OpenAI-style error envelope the rest of the
// repo's HTTP surfaces use.
type errorBody struct {
	Error struct {
		Message string `json:"message"`
		Type    string `json:"type"`
	} `json:"error"`
}

// Tenant resolves the requesting tenant: an explicit X-Tenant header
// wins, else the Authorization bearer key identifies the tenant, else
// "anonymous". Quotas and fair scheduling key off this value.
func Tenant(r *http.Request) string {
	if t := strings.TrimSpace(r.Header.Get("X-Tenant")); t != "" {
		return t
	}
	auth := strings.TrimSpace(r.Header.Get("Authorization"))
	if rest, ok := strings.CutPrefix(auth, "Bearer "); ok {
		if key := strings.TrimSpace(rest); key != "" {
			return key
		}
	}
	return "anonymous"
}

// Handler returns the POST /v1/query handler for s.
//
// Backpressure contract: a request rejected at admission (queue past
// its high-water mark, tenant over quota, or drain in progress) gets a
// JSON 429 — 503 for drain — carrying a Retry-After header in whole
// seconds; clients are expected to honor it (llm.HTTPPredictor does).
func Handler(s *Server) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, "invalid_request_error",
				"only POST is supported")
			return
		}
		var req QueryRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "invalid_request_error",
				"invalid JSON body: "+err.Error())
			return
		}
		tenant := Tenant(r)
		res, err := s.Submit(r.Context(), tenant, tag.NodeID(req.Node))
		if err != nil {
			writeSubmitError(w, s, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if res.TraceID != "" {
			w.Header().Set(obs.HeaderTraceID, res.TraceID)
		}
		_ = json.NewEncoder(w).Encode(QueryResponse{
			Node:         int(res.Node),
			Category:     res.Category,
			Tenant:       tenant,
			Coalesced:    res.Coalesced,
			Cached:       res.Cached,
			Fallback:     res.Fallback,
			InputTokens:  res.Response.InputTokens,
			OutputTokens: res.Response.OutputTokens,
			TraceID:      res.TraceID,
		})
	})
}

// writeSubmitError maps Submit errors onto the HTTP surface.
func writeSubmitError(w http.ResponseWriter, s *Server, err error) {
	switch {
	case errors.Is(err, ErrQueueFull):
		retryAfter(w, s)
		writeError(w, http.StatusTooManyRequests, "rate_limit_error", err.Error())
	case errors.Is(err, ErrQuotaExhausted):
		retryAfter(w, s)
		writeError(w, http.StatusTooManyRequests, "quota_error", err.Error())
	case errors.Is(err, ErrDraining):
		retryAfter(w, s)
		writeError(w, http.StatusServiceUnavailable, "draining", err.Error())
	case errors.Is(err, ErrUnknownNode):
		writeError(w, http.StatusBadRequest, "invalid_request_error", err.Error())
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusRequestTimeout, "timeout", err.Error())
	default:
		writeError(w, http.StatusBadGateway, "upstream_error", err.Error())
	}
}

func retryAfter(w http.ResponseWriter, s *Server) {
	secs := int(math.Ceil(s.RetryAfter().Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}

func writeError(w http.ResponseWriter, status int, typ, msg string) {
	var b errorBody
	b.Error.Message = msg
	b.Error.Type = typ
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(b)
}
