// Package serve is the online, multi-tenant query tier in front of the
// batch-shaped execution pipeline. Every other entry point in this
// repository optimizes a *batch* it was handed up front; serve turns
// the same machinery toward interleaved single-node queries from many
// users, which is exactly where the paper's multi-query optimization
// pays off at scale: concurrent requests touching the same graph are
// coalesced inside a short micro-batching window into one shared plan,
// identical prompts are deduplicated across tenants (single-flight at
// the serve layer, not just within one plan), and each request's
// response completes the moment its own plan entry settles rather than
// when the whole coalesced batch does.
//
// The tier also provides the operational contract an online service
// needs and a batch runner does not: admission control with a bounded
// queue and 429-style backpressure past the high-water mark, per-tenant
// token quotas with fair round-robin scheduling between tenants inside
// a window, and a drain path that answers everything already admitted
// before shutting down.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/obs"
	"repro/internal/predictors"
	"repro/internal/tag"
)

// Metric names emitted by the serve tier; the full catalog lives in
// README.md ("Observability").
const (
	metricQueries        = "mqo_serve_queries_total"
	metricCoalesced      = "mqo_serve_coalesced_total"
	metricRejected       = "mqo_serve_rejected_total"
	metricQueueDepth     = "mqo_serve_queue_depth"
	metricQueueDepthPeak = "mqo_serve_queue_depth_peak"
	metricFlushes        = "mqo_serve_window_flushes_total"
)

// Admission-control rejections. Handlers map them to HTTP 429/503 with
// a Retry-After hint; they are never returned once a request has been
// admitted.
var (
	// ErrQueueFull rejects a request arriving past the queue's
	// high-water mark (Config.MaxQueue).
	ErrQueueFull = errors.New("serve: admission queue full")
	// ErrQuotaExhausted rejects a tenant whose delivered-token spend
	// reached Config.TenantBudget.
	ErrQuotaExhausted = errors.New("serve: tenant token quota exhausted")
	// ErrDraining rejects every request once Close began.
	ErrDraining = errors.New("serve: draining")
	// ErrUnknownNode rejects a node ID outside the served graph.
	ErrUnknownNode = errors.New("serve: unknown node")
)

// Defaults for the zero Config fields.
const (
	// DefaultWindow is the micro-batching window: how long the batcher
	// lets concurrent requests pile up before coalescing them into one
	// shared plan. A few milliseconds buys most of the deduplication at
	// a latency cost no interactive client notices.
	DefaultWindow = 5 * time.Millisecond
	// DefaultMaxQueue is the admission queue's high-water mark.
	DefaultMaxQueue = 256
	// DefaultRetryAfter is the Retry-After hint attached to
	// backpressure rejections.
	DefaultRetryAfter = time.Second
)

// Config tunes a Server.
type Config struct {
	// Window is the micro-batching window (default DefaultWindow).
	// Requests arriving while a window is open join its plan; a longer
	// window coalesces more at the cost of first-byte latency.
	Window time.Duration
	// MaxQueue is the admission queue's high-water mark (default
	// DefaultMaxQueue): requests arriving while MaxQueue are already
	// waiting for a window are rejected with ErrQueueFull.
	MaxQueue int
	// RetryAfter is the backoff hint handed to rejected clients
	// (default DefaultRetryAfter). Honoring it is the client's half of
	// the backpressure contract (llm.HTTPPredictor does).
	RetryAfter time.Duration
	// TenantBudget, when > 0, caps each tenant's delivered tokens: once
	// a tenant has been served that many tokens, further requests are
	// rejected with ErrQuotaExhausted. The quota counts tokens
	// *delivered*, not tokens bought — a coalesced answer still debits
	// every tenant that received it; the provider-side saving shows up
	// in mqo_serve_coalesced_total instead.
	TenantBudget int
	// Exec configures how each coalesced plan executes (workers,
	// retries, cache tiers, replica pool, fallback…). Exec.OnResult is
	// owned by the serve tier and must be nil.
	Exec core.ExecConfig
	// Obs receives serve metrics and spans; nil routes to the
	// process-default recorder.
	Obs obs.Recorder
	// Now and Sleep are the tier's clock seam: Now stamps request
	// arrival and completion, Sleep holds the micro-batching window
	// open. They default to time.Now and time.Sleep; the load harness
	// and tests inject instrumented clocks to observe or compress
	// window timing without changing scheduling behavior.
	Now   func() time.Time
	Sleep func(time.Duration)
}

// Result is one answered query.
type Result struct {
	Node     tag.NodeID
	Category string
	Response llm.Response
	// Coalesced reports the request was answered without a plan entry
	// of its own: it attached to another tenant's identical in-flight
	// query, merged with a duplicate inside its window, or was served
	// from the serve tier's answer memory.
	Coalesced bool
	// Cached reports the underlying plan entry was served by a cache
	// tier instead of a fresh predictor call.
	Cached bool
	// Fallback reports the surrogate answered after the LLM path failed
	// permanently (Exec.Fallback).
	Fallback bool
	// TraceID identifies the request's serve.query trace when tracing
	// sampled it ("" otherwise); handlers echo it as X-Trace-Id so a
	// client can join its latency to /debug/querytrace.
	TraceID string
}

// pending is one admitted request waiting for its answer.
type pending struct {
	tenant string
	node   tag.NodeID
	ch     chan delivery
	span   *obs.Span
	led    *obs.Ledger
	enq    time.Time
	// tier is empty for the request that owns its plan entry, otherwise
	// the coalescing tier that absorbed it (window | inflight | memory).
	tier string
}

// delivery carries a settled outcome to a waiting Submit.
type delivery struct {
	res Result
	err error
}

// traceID returns the request's sampled trace ID ("" when tracing
// skipped it).
func (p *pending) traceID() string {
	if p.span != nil && p.span.Sampled() {
		return p.span.TraceID()
	}
	return ""
}

// entry is one unique node inside the executing window; every request
// asking for that node waits on it.
type entry struct {
	node    tag.NodeID
	waiters []*pending
}

// Server is the online query tier. One Server fronts one graph context,
// method and predictor; build it with New and shut it down with Close.
type Server struct {
	pctx   *predictors.Context
	method predictors.Method
	pred   llm.Predictor
	cfg    Config
	rec    obs.Recorder

	now   func() time.Time
	sleep func(time.Duration)

	mu       sync.Mutex
	queue    []*pending
	inflight map[tag.NodeID]*entry
	answers  map[tag.NodeID]Result
	spent    map[string]int
	peak     int
	draining bool

	wake chan struct{}
	stop chan struct{}
	done chan struct{}
}

// New validates the configuration and starts the batcher. The
// predictor must tolerate Exec.Workers concurrent calls (wrap
// single-threaded predictors with batch.Serialize).
func New(pctx *predictors.Context, m predictors.Method, p llm.Predictor, cfg Config) (*Server, error) {
	if pctx == nil || pctx.Graph == nil {
		return nil, errors.New("serve: nil context or graph")
	}
	if m == nil {
		return nil, errors.New("serve: nil method")
	}
	if p == nil {
		return nil, errors.New("serve: nil predictor")
	}
	if cfg.Exec.OnResult != nil {
		return nil, errors.New("serve: Exec.OnResult is owned by the serve tier")
	}
	if cfg.Window < 0 || cfg.MaxQueue < 0 || cfg.RetryAfter < 0 || cfg.TenantBudget < 0 {
		return nil, fmt.Errorf("serve: negative config value: %+v", cfg)
	}
	if cfg.Window == 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = DefaultMaxQueue
	}
	if cfg.RetryAfter == 0 {
		cfg.RetryAfter = DefaultRetryAfter
	}
	s := &Server{
		pctx:     pctx,
		method:   m,
		pred:     p,
		cfg:      cfg,
		rec:      obs.Active(cfg.Obs),
		now:      cfg.Now,
		sleep:    cfg.Sleep,
		inflight: make(map[tag.NodeID]*entry),
		answers:  make(map[tag.NodeID]Result),
		spent:    make(map[string]int),
		wake:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	if s.now == nil {
		s.now = time.Now
	}
	if s.sleep == nil {
		s.sleep = time.Sleep
	}
	go s.batcher()
	return s, nil
}

// RetryAfter returns the backoff hint for rejected requests.
func (s *Server) RetryAfter() time.Duration { return s.cfg.RetryAfter }

// QueueDepth returns the number of admitted requests waiting for a
// window. It never exceeds Config.MaxQueue.
func (s *Server) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// QueuePeak returns the admission queue's high-water mark since the
// server started: the deepest the queue ever got, even if every window
// since has flushed it back to zero. An open-loop flood that is over
// before anyone scrapes /metrics still leaves its true peak here.
func (s *Server) QueuePeak() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peak
}

// noteQueueDepthLocked publishes the queue depth after every enqueue
// and dequeue, keeping the gauge and the peak gauge truthful between
// scrapes. The gauge used to be written outside the lock from racing
// call sites, so a flush's zero could land after a newer enqueue's
// depth; writing under s.mu serializes the samples in queue order.
func (s *Server) noteQueueDepthLocked() {
	d := len(s.queue)
	if d > s.peak {
		s.peak = d
		s.rec.Set(metricQueueDepthPeak, float64(d))
	}
	s.rec.Set(metricQueueDepth, float64(d))
}

// TenantSpend returns the tokens delivered to one tenant so far.
func (s *Server) TenantSpend(tenant string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.spent[tenant]
}

// Submit asks one node query on behalf of tenant and blocks until its
// answer is delivered, the request is rejected at admission
// (ErrQueueFull, ErrQuotaExhausted, ErrDraining, ErrUnknownNode), or
// ctx ends. Cancellation abandons only the wait: the coalesced plan
// entry still completes and still warms the answer memory.
func (s *Server) Submit(ctx context.Context, tenant string, node tag.NodeID) (Result, error) {
	if int(node) < 0 || int(node) >= s.pctx.Graph.NumNodes() {
		s.rec.Add(metricRejected, 1, "reason", "unknown_node")
		return Result{}, fmt.Errorf("%w: %d", ErrUnknownNode, node)
	}
	enq := s.now()
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.rec.Add(metricRejected, 1, "reason", "draining")
		return Result{}, ErrDraining
	}
	if s.cfg.TenantBudget > 0 && s.spent[tenant] >= s.cfg.TenantBudget {
		s.mu.Unlock()
		s.rec.Add(metricRejected, 1, "reason", "quota")
		return Result{}, fmt.Errorf("%w: tenant %q", ErrQuotaExhausted, tenant)
	}
	// Serve-layer memory: a node any earlier window answered is
	// delivered immediately — the cross-user single-flight's steady
	// state, where N tenants asking about one node paid one call.
	if r, ok := s.answers[node]; ok {
		s.chargeLocked(tenant, r)
		s.mu.Unlock()
		r.Coalesced = true
		s.rec.Add(metricCoalesced, 1, "tier", "memory")
		s.rec.Add(metricQueries, 1, "outcome", "ok")
		return r, nil
	}
	p := &pending{tenant: tenant, node: node, ch: make(chan delivery, 1), enq: enq}
	// Attach to the executing window when it already carries this node:
	// the request pays nothing and completes with that entry.
	if e, ok := s.inflight[node]; ok {
		p.tier = "inflight"
		e.waiters = append(e.waiters, p)
		s.openTrace(p)
		s.mu.Unlock()
		s.rec.Add(metricCoalesced, 1, "tier", "inflight")
		return s.wait(ctx, p)
	}
	if len(s.queue) >= s.cfg.MaxQueue {
		s.mu.Unlock()
		s.rec.Add(metricRejected, 1, "reason", "queue_full")
		return Result{}, ErrQueueFull
	}
	s.queue = append(s.queue, p)
	s.noteQueueDepthLocked()
	s.openTrace(p)
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
	return s.wait(ctx, p)
}

// openTrace roots the request's serve.query span and ledger; callers
// hold s.mu, but span creation takes no serve locks.
func (s *Server) openTrace(p *pending) {
	p.span = s.rec.StartSpan("serve.query",
		"tenant", p.tenant, "node", strconv.Itoa(int(p.node)))
	if p.span.Sampled() {
		p.led = obs.NewLedger(s.rec, p.span.TraceID(), "serve/node:"+strconv.Itoa(int(p.node)))
	}
}

// chargeLocked debits one delivered answer against the tenant quota.
// Callers hold s.mu.
func (s *Server) chargeLocked(tenant string, r Result) {
	if s.cfg.TenantBudget > 0 {
		s.spent[tenant] += r.Response.InputTokens + r.Response.OutputTokens
	}
}

// wait blocks for the pending's delivery or the caller's context.
func (s *Server) wait(ctx context.Context, p *pending) (Result, error) {
	select {
	case d := <-p.ch:
		return d.res, d.err
	case <-ctx.Done():
		// The plan entry still completes; only this waiter leaves. Its
		// buffered channel absorbs the late delivery, so nothing leaks.
		return Result{}, ctx.Err()
	}
}

// Close drains and stops the tier: new submissions are rejected with
// ErrDraining, every already-admitted request is answered, and the
// batcher exits. Safe to call more than once.
func (s *Server) Close() {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		<-s.done
		return
	}
	s.draining = true
	s.mu.Unlock()
	close(s.stop)
	<-s.done
}

// batcher is the tier's single scheduling goroutine: it waits for
// work, keeps the window open for Config.Window so concurrent requests
// coalesce, then flushes the queue as one shared plan. Windows run
// sequentially — plan building walks the shared graph context, which
// is single-threaded by design — so while one window executes, the
// next one's requests pile up behind it (that queue *is* the
// backpressure signal MaxQueue bounds).
func (s *Server) batcher() {
	defer close(s.done)
	for {
		s.mu.Lock()
		n, draining := len(s.queue), s.draining
		s.mu.Unlock()
		if n == 0 {
			if draining {
				return
			}
			select {
			case <-s.wake:
			case <-s.stop:
			}
			continue
		}
		if !draining && s.cfg.Window > 0 {
			s.sleep(s.cfg.Window)
		}
		s.flush()
	}
}

// interleave orders one window's requests by fair round-robin between
// tenants: tenants are visited in sorted order, one request each per
// cycle, arrival order preserved within a tenant. A tenant flooding
// the window still gets its flood executed, but cannot push another
// tenant's single query to the back of the shared plan — which is what
// decides who pays first when budgets or breakers trip mid-plan.
func interleave(batch []*pending) []*pending {
	byTenant := make(map[string][]*pending)
	var names []string
	for _, p := range batch {
		if _, ok := byTenant[p.tenant]; !ok {
			names = append(names, p.tenant)
		}
		byTenant[p.tenant] = append(byTenant[p.tenant], p)
	}
	sort.Strings(names)
	out := make([]*pending, 0, len(batch))
	for len(out) < len(batch) {
		for _, t := range names {
			if q := byTenant[t]; len(q) > 0 {
				out = append(out, q[0])
				byTenant[t] = q[1:]
			}
		}
	}
	return out
}

// flush coalesces the queued requests into one plan and executes it,
// delivering each request as its own entry settles.
func (s *Server) flush() {
	flushStart := s.now()
	s.mu.Lock()
	batch := s.queue
	s.queue = nil
	if len(batch) == 0 {
		s.mu.Unlock()
		return
	}
	s.noteQueueDepthLocked()
	var ready []*pending // answered while queued: deliver from memory
	var entries []*entry
	for _, p := range interleave(batch) {
		if r, ok := s.answers[p.node]; ok {
			p.tier = "memory"
			s.chargeLocked(p.tenant, r)
			r.Coalesced = true
			r.TraceID = p.traceID()
			p.ch <- delivery{res: r}
			ready = append(ready, p)
			continue
		}
		if e, ok := s.inflight[p.node]; ok {
			// Duplicate inside this window: one plan entry, many
			// waiters — the cross-tenant deduplication the tier is for.
			p.tier = "window"
			e.waiters = append(e.waiters, p)
			continue
		}
		e := &entry{node: p.node, waiters: []*pending{p}}
		s.inflight[p.node] = e
		entries = append(entries, e)
	}
	s.mu.Unlock()

	for _, p := range ready {
		s.rec.Add(metricCoalesced, 1, "tier", "memory")
		s.finishTrace(p, flushStart, "ok")
		s.rec.Add(metricQueries, 1, "outcome", "ok")
	}
	coalesced := len(batch) - len(ready) - len(entries)
	for i := 0; i < coalesced; i++ {
		s.rec.Add(metricCoalesced, 1, "tier", "window")
	}
	if len(entries) == 0 {
		return
	}

	s.rec.Add(metricFlushes, 1)
	wspan := s.rec.StartSpan("serve.window",
		"entries", strconv.Itoa(len(entries)),
		"requests", strconv.Itoa(len(batch)-len(ready)),
		"coalesced", strconv.Itoa(coalesced))
	plan := core.Plan{Queries: make([]tag.NodeID, len(entries))}
	for i, e := range entries {
		plan.Queries[i] = e.node
	}
	ecfg := s.cfg.Exec
	ecfg.OnResult = func(q core.QueryOutcome) { s.complete(q, flushStart) }
	_, execErr := core.ExecuteWith(s.pctx, s.method, s.pred, plan, ecfg)
	// Every entry normally settles through OnResult; sweep up anything
	// left (a top-level executor error) so no waiter blocks forever.
	err := execErr
	if err == nil {
		err = errors.New("serve: plan entry never settled")
	}
	for _, e := range entries {
		s.mu.Lock()
		still := s.inflight[e.node] == e
		if still {
			delete(s.inflight, e.node)
		}
		waiters := e.waiters
		s.mu.Unlock()
		if still {
			for _, p := range waiters {
				p.ch <- delivery{err: fmt.Errorf("serve: query for node %d: %w", e.node, err)}
				s.finishTrace(p, flushStart, "error")
				s.rec.Add(metricQueries, 1, "outcome", "error")
			}
		}
	}
	wspan.End()
}

// complete settles one plan entry: it publishes the answer to the
// serve memory, debits every waiter's tenant, and delivers. It runs on
// executor worker goroutines, concurrently across entries, which is
// what lets a request finish while the rest of its window is still
// executing.
func (s *Server) complete(q core.QueryOutcome, flushStart time.Time) {
	s.mu.Lock()
	e := s.inflight[q.Node]
	if e == nil {
		s.mu.Unlock()
		return
	}
	delete(s.inflight, q.Node)
	waiters := e.waiters
	e.waiters = nil
	var d delivery
	if q.Err != nil {
		d.err = fmt.Errorf("serve: query for node %d: %w", q.Node, q.Err)
	} else {
		d.res = Result{
			Node: q.Node, Category: q.Category, Response: q.Response,
			Cached: q.Cached, Fallback: q.Fallback,
		}
		s.answers[q.Node] = d.res
		for _, p := range waiters {
			s.chargeLocked(p.tenant, d.res)
		}
	}
	s.mu.Unlock()

	outcome := "ok"
	if d.err != nil {
		outcome = "error"
	}
	for _, p := range waiters {
		r := d.res
		r.Coalesced = p.tier != ""
		r.TraceID = p.traceID()
		p.ch <- delivery{res: r, err: d.err}
		s.finishTrace(p, flushStart, outcome)
		s.rec.Add(metricQueries, 1, "outcome", outcome)
	}
}

// finishTrace closes one request's span and ledger: queue wait until
// its window flushed, execution time after, total feeding the SLO
// engine. Tokens are not billed here — the core.query ledger under
// this request already bills the metered spend, and double-billing
// would break the billed-tokens == meter invariant.
func (s *Server) finishTrace(p *pending, flushStart time.Time, outcome string) {
	if p.span == nil {
		return
	}
	end := s.now()
	p.span.SetAttr("outcome", outcome)
	if p.tier != "" {
		p.span.SetAttr("coalesced", p.tier)
	}
	if wait := flushStart.Sub(p.enq); wait > 0 {
		p.led.Charge(obs.StageQueue, wait, 0, true)
	}
	if run := end.Sub(flushStart); run > 0 {
		p.led.Charge(obs.StageExec, run, 0, true)
	}
	p.span.EndAt(end)
	p.led.Close(end.Sub(p.enq))
}
