//go:build soak

package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/predictors"
	"repro/internal/tag"
)

// postQuery fires one POST /v1/query and decodes the reply.
func postQuery(t testing.TB, url, tenant string, node int) (int, string, QueryResponse) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+QueryPath,
		strings.NewReader(fmt.Sprintf(`{"node": %d}`, node)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Tenant", tenant)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr QueryResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, resp.Header.Get("Retry-After"), qr
}

// TestSoakServeMixedTenants is the serving tier's end-to-end soak,
// meant to run under -race: concurrent tenants hammer /v1/query with
// overlapping query sets, and the tier must (1) answer identically to
// batch-shaped execution of the same query set, (2) make zero
// predictor calls on a warm re-run, and leave (4) no goroutine behind
// after drain. (Backpressure, property (3), soaks separately below —
// it needs a gated predictor.)
func TestSoakServeMixedTenants(t *testing.T) {
	before := runtime.NumGoroutine()

	f := newFixture(t, 600, 120, 43)
	nodes := f.split.Query[:60]
	counter := &countingPredictor{inner: f.freshSim()}
	s, err := New(f.freshCtx(), predictors.KHopRandom{K: 1}, counter, Config{
		Window: 3 * time.Millisecond,
		Exec:   core.ExecConfig{Workers: 8, Cache: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(Handler(s))

	// Open-loop mixed-tenant load: every tenant walks the whole node
	// set from a different offset, so identical nodes are in flight
	// from distinct tenants constantly.
	const tenants = 8
	answers := make([]map[int]string, tenants)
	var wg sync.WaitGroup
	for ten := 0; ten < tenants; ten++ {
		wg.Add(1)
		go func(ten int) {
			defer wg.Done()
			got := make(map[int]string, len(nodes))
			for i := range nodes {
				node := int(nodes[(i+ten*7)%len(nodes)])
				code, _, qr := postQuery(t, ts.URL, fmt.Sprintf("tenant-%d", ten), node)
				if code != http.StatusOK {
					t.Errorf("tenant %d node %d: status %d", ten, node, code)
					return
				}
				got[node] = qr.Category
			}
			answers[ten] = got
		}(ten)
	}
	wg.Wait()
	coldCalls := counter.calls.Load()
	if coldCalls == 0 {
		t.Fatal("no predictor calls during cold run")
	}
	if coldCalls > int64(len(nodes)) {
		t.Fatalf("%d predictor calls for %d unique nodes: cross-tenant coalescing failed", coldCalls, len(nodes))
	}

	// (1) Answer-identical to batch-shaped execution of the same set.
	batchRes, err := core.ExecuteWith(f.freshCtx(), predictors.KHopRandom{K: 1},
		f.freshSim(), core.Plan{Queries: nodes}, core.ExecConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for ten, got := range answers {
		for node, cat := range got {
			if want := batchRes.Pred[tag.NodeID(node)]; cat != want {
				t.Fatalf("tenant %d node %d: serve %q vs batch %q", ten, node, cat, want)
			}
		}
	}

	// (2) Warm re-run: zero additional predictor calls.
	var warm sync.WaitGroup
	for ten := 0; ten < tenants; ten++ {
		warm.Add(1)
		go func(ten int) {
			defer warm.Done()
			for _, v := range nodes {
				if code, _, _ := postQuery(t, ts.URL, fmt.Sprintf("warm-%d", ten), int(v)); code != http.StatusOK {
					t.Errorf("warm tenant %d node %d: status %d", ten, v, code)
					return
				}
			}
		}(ten)
	}
	warm.Wait()
	if got := counter.calls.Load(); got != coldCalls {
		t.Fatalf("warm re-run made %d extra predictor calls", got-coldCalls)
	}

	// (4) Drain leaves no goroutine behind.
	ts.Close()
	s.Close()
	waitFor(t, func() bool { return runtime.NumGoroutine() <= before+2 })
}

// TestSoakServeBackpressure holds the predictor shut while an open-
// loop flood hits /v1/query, asserting property (3): past the
// high-water mark requests are rejected with 429 + Retry-After, and
// the admission queue never exceeds its bound.
func TestSoakServeBackpressure(t *testing.T) {
	before := runtime.NumGoroutine()

	f := newFixture(t, 600, 120, 47)
	gate := &gatedPredictor{inner: f.freshSim(), gate: make(chan struct{})}
	const maxQueue = 8
	s, err := New(f.freshCtx(), predictors.KHopRandom{K: 1}, gate, Config{
		Window: time.Millisecond, MaxQueue: maxQueue, RetryAfter: 3 * time.Second,
		Exec: core.ExecConfig{Workers: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(Handler(s))

	// Sample the queue bound continuously while the flood runs.
	var maxDepth atomic.Int64
	sampler := make(chan struct{})
	var sampled sync.WaitGroup
	sampled.Add(1)
	go func() {
		defer sampled.Done()
		for {
			select {
			case <-sampler:
				return
			default:
				if d := int64(s.QueueDepth()); d > maxDepth.Load() {
					maxDepth.Store(d)
				}
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()

	const flood = 64
	var ok, rejected atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, retryAfter, _ := postQuery(t, ts.URL, fmt.Sprintf("flood-%d", i%4), int(f.split.Query[i%len(f.split.Query)]))
			switch code {
			case http.StatusOK:
				ok.Add(1)
			case http.StatusTooManyRequests:
				rejected.Add(1)
				if retryAfter == "" {
					t.Error("429 without Retry-After header")
				}
			default:
				t.Errorf("request %d: unexpected status %d", i, code)
			}
		}(i)
	}
	// Give the flood time to pile up against the gated window, then
	// open the gate so admitted requests finish.
	waitFor(t, func() bool { return rejected.Load() > 0 })
	close(gate.gate)
	wg.Wait()
	close(sampler)
	sampled.Wait()

	if rejected.Load() == 0 {
		t.Fatal("open-loop overload produced no 429s")
	}
	if ok.Load() == 0 {
		t.Fatal("every request rejected: admission control over-throttled")
	}
	if got := maxDepth.Load(); got > maxQueue {
		t.Fatalf("observed queue depth %d exceeds bound %d", got, maxQueue)
	}

	ts.Close()
	s.Close()
	if _, err := s.Submit(context.Background(), "late", f.split.Query[0]); err != ErrDraining {
		t.Fatalf("post-drain submit: err = %v, want ErrDraining", err)
	}
	waitFor(t, func() bool { return runtime.NumGoroutine() <= before+2 })
}
