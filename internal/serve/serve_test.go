package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/obs"
	"repro/internal/predictors"
	"repro/internal/tag"
	"repro/internal/xrand"
)

// fixture bundles a generated dataset with a context and simulated LLM.
type fixture struct {
	g     *tag.Graph
	split tag.Split
	seed  uint64
}

func newFixture(t testing.TB, nodes, queries int, seed uint64) *fixture {
	t.Helper()
	spec, err := tag.SmallSpec("cora", nodes)
	if err != nil {
		t.Fatal(err)
	}
	g := tag.Generate(spec, seed, tag.Options{})
	split := g.SplitPerClass(xrand.New(seed+1), 20, queries)
	return &fixture{g: g, split: split, seed: seed}
}

// freshCtx returns an independent context so serve-tier and batch-shaped
// executions cannot observe each other's state.
func (f *fixture) freshCtx() *predictors.Context {
	return &predictors.Context{
		Graph: f.g,
		Known: predictors.KnownFromSplit(f.g, f.split),
		M:     4,
		Seed:  f.seed,
	}
}

func (f *fixture) freshSim() *llm.Sim {
	return llm.NewSim(llm.GPT35(), f.g.Vocab, f.g.Classes, f.seed+2)
}

// countingPredictor counts calls reaching the inner predictor — the
// spend the serve tier's coalescing failed to absorb.
type countingPredictor struct {
	inner llm.Predictor
	calls atomic.Int64
}

func (c *countingPredictor) Name() string { return c.inner.Name() }

func (c *countingPredictor) Query(prompt string) (llm.Response, error) {
	c.calls.Add(1)
	return c.inner.Query(prompt)
}

// gatedPredictor blocks every call until released, so tests can hold a
// window in execution while the queue builds behind it.
type gatedPredictor struct {
	inner llm.Predictor
	gate  chan struct{}
}

func (g *gatedPredictor) Name() string { return g.inner.Name() }

func (g *gatedPredictor) Query(prompt string) (llm.Response, error) {
	<-g.gate
	return g.inner.Query(prompt)
}

func newServer(t testing.TB, f *fixture, p llm.Predictor, cfg Config) *Server {
	t.Helper()
	if cfg.Exec.Workers == 0 {
		cfg.Exec.Workers = 4
	}
	s, err := New(f.freshCtx(), predictors.KHopRandom{K: 1}, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// TestCoalescingSingleFlight is the tentpole's coalescing proof: K
// concurrent identical requests from distinct tenants pay exactly one
// predictor call, every tenant gets the same answer, and that answer is
// bit-identical to batch-shaped execution of the same query.
func TestCoalescingSingleFlight(t *testing.T) {
	f := newFixture(t, 300, 40, 7)
	node := f.split.Query[0]
	reg := obs.NewRegistry()
	counter := &countingPredictor{inner: f.freshSim()}
	s := newServer(t, f, counter, Config{Window: 25 * time.Millisecond, Obs: reg})

	const K = 8
	results := make([]Result, K)
	var wg sync.WaitGroup
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := s.Submit(context.Background(), fmt.Sprintf("tenant-%d", i), node)
			if err != nil {
				t.Errorf("tenant %d: %v", i, err)
				return
			}
			results[i] = r
		}(i)
	}
	wg.Wait()

	if got := counter.calls.Load(); got != 1 {
		t.Fatalf("predictor calls = %d, want exactly 1 for %d coalesced tenants", got, K)
	}
	batchRes, err := core.ExecuteWith(f.freshCtx(), predictors.KHopRandom{K: 1},
		f.freshSim(), core.Plan{Queries: []tag.NodeID{node}}, core.ExecConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := batchRes.Pred[node]
	coalesced := 0
	for i, r := range results {
		if r.Category != want {
			t.Fatalf("tenant %d answer %q differs from batch-shaped %q", i, r.Category, want)
		}
		if r.Response != results[0].Response {
			t.Fatalf("tenant %d response differs: %+v vs %+v", i, r.Response, results[0].Response)
		}
		if r.Coalesced {
			coalesced++
		}
	}
	if coalesced != K-1 {
		t.Fatalf("coalesced results = %d, want %d (one owner)", coalesced, K-1)
	}
	total := 0.0
	for _, tier := range []string{"memory", "inflight", "window"} {
		total += reg.CounterValue(metricCoalesced, "tier", tier)
	}
	if total != K-1 {
		t.Fatalf("mqo_serve_coalesced_total across tiers = %v, want %d", total, K-1)
	}
	if got := reg.CounterValue(metricQueries, "outcome", "ok"); got != K {
		t.Fatalf("mqo_serve_queries_total{outcome=ok} = %v, want %d", got, K)
	}
	if reg.CounterValue(metricFlushes) < 1 {
		t.Fatal("mqo_serve_window_flushes_total never incremented")
	}
}

// TestAnswersMatchBatchExecution drives a disjoint query set through
// serve concurrently and checks every answer against batch-shaped
// execution of the identical plan.
func TestAnswersMatchBatchExecution(t *testing.T) {
	f := newFixture(t, 300, 40, 11)
	nodes := f.split.Query[:20]
	s := newServer(t, f, f.freshSim(), Config{Window: 10 * time.Millisecond})

	got := make([]Result, len(nodes))
	var wg sync.WaitGroup
	for i, v := range nodes {
		wg.Add(1)
		go func(i int, v tag.NodeID) {
			defer wg.Done()
			r, err := s.Submit(context.Background(), fmt.Sprintf("t%d", i%3), v)
			if err != nil {
				t.Errorf("node %d: %v", v, err)
				return
			}
			got[i] = r
		}(i, v)
	}
	wg.Wait()

	batchRes, err := core.ExecuteWith(f.freshCtx(), predictors.KHopRandom{K: 1},
		f.freshSim(), core.Plan{Queries: nodes}, core.ExecConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range nodes {
		if got[i].Category != batchRes.Pred[v] {
			t.Fatalf("node %d: serve %q vs batch %q", v, got[i].Category, batchRes.Pred[v])
		}
	}
}

// TestWarmRerunZeroPredictorCalls re-runs a query set through the serve
// memory and expects zero additional predictor calls.
func TestWarmRerunZeroPredictorCalls(t *testing.T) {
	f := newFixture(t, 300, 40, 13)
	nodes := f.split.Query[:10]
	reg := obs.NewRegistry()
	counter := &countingPredictor{inner: f.freshSim()}
	s := newServer(t, f, counter, Config{Window: 5 * time.Millisecond, Obs: reg})

	for _, v := range nodes {
		if _, err := s.Submit(context.Background(), "alice", v); err != nil {
			t.Fatal(err)
		}
	}
	cold := counter.calls.Load()
	if cold == 0 {
		t.Fatal("cold run made no predictor calls")
	}
	for _, v := range nodes {
		r, err := s.Submit(context.Background(), "bob", v)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Coalesced {
			t.Fatalf("warm answer for node %d not marked coalesced", v)
		}
	}
	if got := counter.calls.Load(); got != cold {
		t.Fatalf("warm re-run made %d extra predictor calls", got-cold)
	}
	if got := reg.CounterValue(metricCoalesced, "tier", "memory"); got != float64(len(nodes)) {
		t.Fatalf("memory-tier coalesced = %v, want %d", got, len(nodes))
	}
}

// TestQueueFullRejects holds a window in execution while the queue
// fills, then asserts the high-water mark rejects with ErrQueueFull and
// the queue never exceeds its bound.
func TestQueueFullRejects(t *testing.T) {
	f := newFixture(t, 300, 40, 17)
	reg := obs.NewRegistry()
	gate := &gatedPredictor{inner: f.freshSim(), gate: make(chan struct{})}
	const maxQueue = 4
	s := newServer(t, f, gate, Config{
		Window: time.Millisecond, MaxQueue: maxQueue, RetryAfter: 2 * time.Second, Obs: reg,
	})

	var wg sync.WaitGroup
	submit := func(v tag.NodeID) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Submit(context.Background(), "flood", v); err != nil {
				t.Errorf("admitted request failed: %v", err)
			}
		}()
	}
	// First request flushes into execution and blocks on the gate.
	submit(f.split.Query[0])
	waitFor(t, func() bool { return len(s.inflightNodes()) > 0 })
	// The next maxQueue requests (distinct nodes) fill the queue.
	for i := 1; i <= maxQueue; i++ {
		submit(f.split.Query[i])
	}
	waitFor(t, func() bool { return s.QueueDepth() == maxQueue })

	if _, err := s.Submit(context.Background(), "flood", f.split.Query[maxQueue+1]); err != ErrQueueFull {
		t.Fatalf("past high-water mark: err = %v, want ErrQueueFull", err)
	}
	if d := s.QueueDepth(); d > maxQueue {
		t.Fatalf("queue depth %d exceeds bound %d", d, maxQueue)
	}
	if got := reg.CounterValue(metricRejected, "reason", "queue_full"); got != 1 {
		t.Fatalf("mqo_serve_rejected_total{reason=queue_full} = %v, want 1", got)
	}
	close(gate.gate)
	wg.Wait()
}

// TestQueueDepthPeakGauge floods a gated predictor and asserts the
// queue-depth gauge's high-water mark equals the observed bound — the
// regression the load harness depends on: before the fix the gauge was
// overwritten with 0 at flush (and written outside the lock), so an
// open-loop flood that drained before a scrape reported peak depth 0.
func TestQueueDepthPeakGauge(t *testing.T) {
	f := newFixture(t, 300, 40, 37)
	reg := obs.NewRegistry()
	gate := &gatedPredictor{inner: f.freshSim(), gate: make(chan struct{})}
	const maxQueue = 5
	s := newServer(t, f, gate, Config{
		Window: time.Millisecond, MaxQueue: maxQueue, Obs: reg,
	})

	var wg sync.WaitGroup
	submit := func(v tag.NodeID) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Submit(context.Background(), "flood", v); err != nil {
				t.Errorf("admitted request failed: %v", err)
			}
		}()
	}
	// One request flushes into execution and blocks on the gate; the
	// next maxQueue distinct nodes fill the admission queue to its bound.
	submit(f.split.Query[0])
	waitFor(t, func() bool { return len(s.inflightNodes()) > 0 })
	for i := 1; i <= maxQueue; i++ {
		submit(f.split.Query[i])
	}
	waitFor(t, func() bool { return s.QueueDepth() == maxQueue })
	// The current-depth gauge must already show the full queue while the
	// flood is still live — enqueue-time updates, not flush sampling.
	if got := reg.GaugeValue("mqo_serve_queue_depth"); got != maxQueue {
		t.Fatalf("mqo_serve_queue_depth during flood = %v, want %d", got, maxQueue)
	}
	close(gate.gate)
	wg.Wait()
	// Drained: the live gauge returns to 0 but the peak must survive.
	waitFor(t, func() bool { return s.QueueDepth() == 0 })
	if got := s.QueuePeak(); got != maxQueue {
		t.Fatalf("QueuePeak() = %d, want %d", got, maxQueue)
	}
	if got := reg.GaugeValue("mqo_serve_queue_depth_peak"); got != maxQueue {
		t.Fatalf("mqo_serve_queue_depth_peak = %v, want %d (peak lost after drain)", got, maxQueue)
	}
}

// TestTenantQuota exhausts one tenant's token budget and asserts the
// next request is rejected while other tenants keep flowing.
func TestTenantQuota(t *testing.T) {
	f := newFixture(t, 300, 40, 19)
	reg := obs.NewRegistry()
	s := newServer(t, f, f.freshSim(), Config{
		Window: time.Millisecond, TenantBudget: 1, Obs: reg,
	})

	if _, err := s.Submit(context.Background(), "alice", f.split.Query[0]); err != nil {
		t.Fatal(err)
	}
	if s.TenantSpend("alice") < 1 {
		t.Fatal("delivered answer did not debit the tenant")
	}
	if _, err := s.Submit(context.Background(), "alice", f.split.Query[1]); err == nil ||
		!strings.Contains(err.Error(), "quota") {
		t.Fatalf("over-budget tenant: err = %v, want ErrQuotaExhausted", err)
	}
	if _, err := s.Submit(context.Background(), "bob", f.split.Query[1]); err != nil {
		t.Fatalf("unrelated tenant rejected: %v", err)
	}
	if got := reg.CounterValue(metricRejected, "reason", "quota"); got != 1 {
		t.Fatalf("mqo_serve_rejected_total{reason=quota} = %v, want 1", got)
	}
}

// TestInterleaveFairRoundRobin pins the scheduling order: one request
// per tenant per cycle, tenants sorted, arrival order kept per tenant.
func TestInterleaveFairRoundRobin(t *testing.T) {
	mk := func(tenant string, node int) *pending {
		return &pending{tenant: tenant, node: tag.NodeID(node)}
	}
	in := []*pending{
		mk("b", 1), mk("b", 2), mk("b", 3), mk("a", 4), mk("c", 5), mk("b", 6),
	}
	var got []int
	for _, p := range interleave(in) {
		got = append(got, int(p.node))
	}
	want := []int{4, 1, 5, 2, 3, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("interleave order = %v, want %v", got, want)
		}
	}
}

// TestDrainRejectsNewAnswersAdmitted closes the server while requests
// are queued: every admitted request must still be answered, and new
// submissions must be rejected with ErrDraining.
func TestDrainRejectsNewAnswersAdmitted(t *testing.T) {
	f := newFixture(t, 300, 40, 23)
	s := newServer(t, f, f.freshSim(), Config{Window: 50 * time.Millisecond})

	const K = 6
	errs := make([]error, K)
	var wg sync.WaitGroup
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.Submit(context.Background(), "t", f.split.Query[i])
		}(i)
	}
	waitFor(t, func() bool { return s.QueueDepth() == K })
	s.Close()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("admitted request %d dropped during drain: %v", i, err)
		}
	}
	if _, err := s.Submit(context.Background(), "t", f.split.Query[K]); err != ErrDraining {
		t.Fatalf("post-drain submit: err = %v, want ErrDraining", err)
	}
	s.Close() // idempotent
}

// TestUnknownNodeRejected bounds-checks node IDs at admission.
func TestUnknownNodeRejected(t *testing.T) {
	f := newFixture(t, 300, 40, 29)
	s := newServer(t, f, f.freshSim(), Config{})
	for _, v := range []int{-1, f.g.NumNodes()} {
		if _, err := s.Submit(context.Background(), "t", tag.NodeID(v)); err == nil ||
			!strings.Contains(err.Error(), "unknown node") {
			t.Fatalf("node %d: err = %v, want ErrUnknownNode", v, err)
		}
	}
}

// --- HTTP handler ---

func TestTenantResolution(t *testing.T) {
	cases := []struct {
		name, xTenant, auth, want string
	}{
		{"x-tenant wins", "team-a", "Bearer k-123", "team-a"},
		{"bearer key", "", "Bearer k-123", "k-123"},
		{"anonymous", "", "", "anonymous"},
		{"malformed auth", "", "Basic zzz", "anonymous"},
	}
	for _, c := range cases {
		r := httptest.NewRequest(http.MethodPost, QueryPath, nil)
		if c.xTenant != "" {
			r.Header.Set("X-Tenant", c.xTenant)
		}
		if c.auth != "" {
			r.Header.Set("Authorization", c.auth)
		}
		if got := Tenant(r); got != c.want {
			t.Fatalf("%s: tenant = %q, want %q", c.name, got, c.want)
		}
	}
}

func TestHandlerQueryAndErrors(t *testing.T) {
	f := newFixture(t, 300, 40, 31)
	s := newServer(t, f, f.freshSim(), Config{Window: time.Millisecond, TenantBudget: 1})
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	post := func(tenant string, body string) *http.Response {
		t.Helper()
		req, _ := http.NewRequest(http.MethodPost, ts.URL+QueryPath, strings.NewReader(body))
		req.Header.Set("X-Tenant", tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	node := int(f.split.Query[0])
	resp := post("alice", fmt.Sprintf(`{"node": %d}`, node))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d", resp.StatusCode)
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if qr.Node != node || qr.Category == "" || qr.Tenant != "alice" || qr.OutputTokens == 0 {
		t.Fatalf("bad response body: %+v", qr)
	}

	// Same tenant again: budget of 1 token is exhausted → 429 + Retry-After.
	resp = post("alice", fmt.Sprintf(`{"node": %d}`, node))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After header")
	}
	resp.Body.Close()

	resp = post("bob", `{"node": -5}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown node status = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	resp = post("bob", `{not json`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON status = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	getResp, err := http.Get(ts.URL + QueryPath)
	if err != nil {
		t.Fatal(err)
	}
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status = %d, want 405", getResp.StatusCode)
	}
	getResp.Body.Close()

	s.Close()
	resp = post("carol", fmt.Sprintf(`{"node": %d}`, node))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 missing Retry-After header")
	}
	resp.Body.Close()
}

// waitFor polls cond for up to 2s.
func waitFor(t testing.TB, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never became true")
}

// inflightNodes snapshots the executing window's unique nodes (test hook).
func (s *Server) inflightNodes() []tag.NodeID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]tag.NodeID, 0, len(s.inflight))
	for v := range s.inflight {
		out = append(out, v)
	}
	return out
}
