package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// The golden files pin the /v1/query wire contract byte for byte:
// status, Content-Type, the Retry-After hint on backpressure, the
// X-Trace-Id echo, and the exact JSON body for each outcome. Clients
// (llm.HTTPPredictor, the load harness's strict decoder) parse these
// shapes; a golden diff is an API break, not a formatting nit.
// Regenerate deliberately with UPDATE_GOLDEN=1 go test.
//
// Trace IDs are random per process, so every 32-hex-char run is
// normalized to a fixed placeholder before comparison; the success test
// separately asserts the header and body carry the *same* live ID.
var traceIDPattern = regexp.MustCompile(`[0-9a-f]{32}`)

const traceIDPlaceholder = "00000000000000000000000000000000"

func normalizeTraceIDs(s string) string {
	return traceIDPattern.ReplaceAllString(s, traceIDPlaceholder)
}

// renderResponse serializes the parts of the response the contract
// covers into the golden text form.
func renderResponse(resp *http.Response, body []byte) string {
	var b strings.Builder
	fmt.Fprintf(&b, "HTTP %d\n", resp.StatusCode)
	fmt.Fprintf(&b, "Content-Type: %s\n", resp.Header.Get("Content-Type"))
	if v := resp.Header.Get("Retry-After"); v != "" {
		fmt.Fprintf(&b, "Retry-After: %s\n", v)
	}
	if v := resp.Header.Get(obs.HeaderTraceID); v != "" {
		fmt.Fprintf(&b, "X-Trace-Id: %s\n", normalizeTraceIDs(v))
	}
	b.WriteString("\n")
	b.WriteString(normalizeTraceIDs(string(body)))
	return b.String()
}

func checkGolden(t *testing.T, name string, resp *http.Response, body []byte) {
	t.Helper()
	got := renderResponse(resp, body)
	path := filepath.Join("testdata", name)
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("%s: response drifted from the pinned contract:\n--- got ---\n%s\n--- want ---\n%s",
			name, got, want)
	}
}

func postQuery(t *testing.T, ts *httptest.Server, tenant, body string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+QueryPath, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

// TestGoldenQuerySuccess pins the 200 body — field set, order, token
// accounting — and the trace contract: the X-Trace-Id header and the
// body's trace_id are the same live 32-hex-char ID.
func TestGoldenQuerySuccess(t *testing.T) {
	f := newFixture(t, 300, 40, 7)
	s := newServer(t, f, f.freshSim(), Config{
		Window: time.Millisecond, Obs: obs.NewRegistry(),
	})
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	node := f.split.Query[0]
	resp, body := postQuery(t, ts, "acme", fmt.Sprintf(`{"node": %d}`, node))

	header := resp.Header.Get(obs.HeaderTraceID)
	if !traceIDPattern.MatchString(header) {
		t.Fatalf("X-Trace-Id %q is not a 32-hex trace ID", header)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.TraceID != header {
		t.Fatalf("body trace_id %q != X-Trace-Id header %q", qr.TraceID, header)
	}
	checkGolden(t, "golden_query_ok.txt", resp, body)
}

// TestGoldenQueryMalformed pins the 400 envelope for a body that is
// not JSON.
func TestGoldenQueryMalformed(t *testing.T) {
	f := newFixture(t, 300, 40, 7)
	s := newServer(t, f, f.freshSim(), Config{Window: time.Millisecond})
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	resp, body := postQuery(t, ts, "acme", `not json`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	checkGolden(t, "golden_query_malformed.txt", resp, body)
}

// TestGoldenQueryQueueFull pins the 429 queue-full envelope and its
// Retry-After hint. The batcher is parked on the injected Sleep seam,
// so the first request provably sits in the admission queue when the
// second arrives — no timing, no flakes.
func TestGoldenQueryQueueFull(t *testing.T) {
	f := newFixture(t, 300, 40, 7)
	release := make(chan struct{})
	var once sync.Once
	unblock := func() { once.Do(func() { close(release) }) }
	s := newServer(t, f, f.freshSim(), Config{
		Window:     time.Hour, // never reached: Sleep below blocks on release
		MaxQueue:   1,
		RetryAfter: 2 * time.Second,
		Sleep:      func(time.Duration) { <-release },
	})
	defer unblock() // let the parked window flush so Close can drain
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	node := f.split.Query[0]
	first := make(chan struct{})
	go func() {
		defer close(first)
		resp, err := http.Post(ts.URL+QueryPath, "application/json",
			strings.NewReader(fmt.Sprintf(`{"node": %d}`, node)))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	waitFor(t, func() bool { return s.QueuePeak() >= 1 })

	resp, body := postQuery(t, ts, "acme", fmt.Sprintf(`{"node": %d}`, f.split.Query[1]))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	checkGolden(t, "golden_query_queue_full.txt", resp, body)
	unblock()
	<-first
}

// TestGoldenQueryQuota pins the 429 tenant-quota envelope: one answered
// query exhausts a 1-token budget, the tenant's next request is
// rejected with the quota error type and a Retry-After hint.
func TestGoldenQueryQuota(t *testing.T) {
	f := newFixture(t, 300, 40, 7)
	s := newServer(t, f, f.freshSim(), Config{
		Window:       time.Millisecond,
		TenantBudget: 1,
		RetryAfter:   2 * time.Second,
	})
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	resp, _ := postQuery(t, ts, "acme", fmt.Sprintf(`{"node": %d}`, f.split.Query[0]))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request: status %d, want 200", resp.StatusCode)
	}
	resp, body := postQuery(t, ts, "acme", fmt.Sprintf(`{"node": %d}`, f.split.Query[1]))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request: status %d, want 429", resp.StatusCode)
	}
	checkGolden(t, "golden_query_quota.txt", resp, body)
}
