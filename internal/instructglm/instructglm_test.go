package instructglm

import (
	"testing"

	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/predictors"
	"repro/internal/tag"
	"repro/internal/xrand"
)

func freshCtx(g *tag.Graph, split tag.Split, seed uint64) *predictors.Context {
	return &predictors.Context{
		Graph: g,
		Known: predictors.KnownFromSplit(g, split),
		M:     4,
		Seed:  seed,
	}
}

func TestBackboneLabels(t *testing.T) {
	want := []string{
		"1-hop, w/ raw, no path",
		"2-hop, w/ raw, no path",
		"2-hop, w/ raw, w/ path",
		"1-hop, no raw, no path",
		"2-hop, no raw, no path",
		"2-hop, no raw, w/ path",
	}
	bs := All()
	if len(bs) != len(want) {
		t.Fatalf("All() returned %d backbones", len(bs))
	}
	for i, b := range bs {
		if b.String() != want[i] {
			t.Fatalf("backbone %d = %q, want %q", i, b.String(), want[i])
		}
	}
}

func TestProfilesReflectConfig(t *testing.T) {
	raw1 := Backbone{Hops: 1, Raw: true}.Profile()
	noraw1 := Backbone{Hops: 1, Raw: false}.Profile()
	if noraw1.NeighborWeight >= raw1.NeighborWeight {
		t.Fatal("dropping raw text should weaken neighbor evidence")
	}
	noPath := Backbone{Hops: 2, Raw: true}.Profile()
	withPath := Backbone{Hops: 2, Raw: true, Path: true}.Profile()
	if withPath.Temperature >= noPath.Temperature {
		t.Fatal("path descriptions should reduce decision noise")
	}
}

func TestMethodMatchesHops(t *testing.T) {
	if got := (Backbone{Hops: 2, Raw: true}).Method().Name(); got != "2-hop random" {
		t.Fatalf("method name %q", got)
	}
}

func TestEvaluateShape(t *testing.T) {
	spec, err := tag.SmallSpec("cora", 900)
	if err != nil {
		t.Fatal(err)
	}
	g := tag.Generate(spec, 3, tag.Options{})
	split := g.SplitPerClass(xrand.New(4), 20, 250)
	cfg := DefaultEvaluateConfig(5)
	cfg.Inadequacy.MLP.Epochs = 40
	cfg.Inadequacy.MaxFeatures = 256

	b := Backbone{Hops: 2, Raw: true}
	res, err := Evaluate(g, split, b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for name, acc := range map[string]float64{
		"base": res.Base, "boost": res.Boost, "random": res.Random,
		"prune": res.Prune, "both": res.Both,
	} {
		if acc <= 0.4 || acc > 1 {
			t.Fatalf("variant %s accuracy %.3f implausible", name, acc)
		}
	}
	// Table IX orderings (with slack for a small sample): tuned pruning
	// beats random pruning, boosting does not hurt the base.
	if res.Prune < res.Random-0.02 {
		t.Fatalf("prune %.3f below random %.3f", res.Prune, res.Random)
	}
	if res.Boost < res.Base-0.03 {
		t.Fatalf("boost %.3f well below base %.3f", res.Boost, res.Base)
	}
}

// Instruction-tuned backbones must outperform the black-box profile on
// the same data (the reason the paper treats them separately).
func TestTunedBeatsBlackBox(t *testing.T) {
	spec, err := tag.SmallSpec("cora", 900)
	if err != nil {
		t.Fatal(err)
	}
	g := tag.Generate(spec, 7, tag.Options{})
	split := g.SplitPerClass(xrand.New(8), 20, 250)

	b := Backbone{Hops: 2, Raw: true}
	method := b.Method()

	resTuned, err := core.Execute(freshCtx(g, split, 9), method, b.NewPredictor(g, 9), core.Plan{Queries: split.Query})
	if err != nil {
		t.Fatal(err)
	}
	blackbox := llm.NewSim(llm.GPT35(), g.Vocab, g.Classes, 9)
	resBB, err := core.Execute(freshCtx(g, split, 9), method, blackbox, core.Plan{Queries: split.Query})
	if err != nil {
		t.Fatal(err)
	}
	accT := core.Accuracy(g, resTuned.Pred)
	accB := core.Accuracy(g, resBB.Pred)
	if accT <= accB {
		t.Fatalf("tuned %.3f not above black-box %.3f", accT, accB)
	}
}

// The no-raw 1-hop backbone is the paper's weakest; verify the ordering
// against the strongest raw backbone.
func TestBackboneOrdering(t *testing.T) {
	spec, err := tag.SmallSpec("cora", 900)
	if err != nil {
		t.Fatal(err)
	}
	g := tag.Generate(spec, 11, tag.Options{})
	split := g.SplitPerClass(xrand.New(12), 20, 250)

	acc := func(b Backbone) float64 {
		res, err := core.Execute(freshCtx(g, split, 13), b.Method(), b.NewPredictor(g, 13), core.Plan{Queries: split.Query})
		if err != nil {
			t.Fatal(err)
		}
		return core.Accuracy(g, res.Pred)
	}
	strong := acc(Backbone{Hops: 2, Raw: true})
	weak := acc(Backbone{Hops: 1, Raw: false})
	if weak >= strong {
		t.Fatalf("1-hop no-raw %.3f should trail 2-hop w/raw %.3f", weak, strong)
	}
}
