// Package instructglm simulates the six InstructGLM-style instruction-
// tuned backbones of the paper's Table IX and applies the MQO
// strategies to them (Section VI-I).
//
// InstructGLM aligns graph tokens with language tokens by fine-tuning;
// its backbones differ in hop range (1 vs 2), whether raw neighbor text
// accompanies the graph tokens (w/ raw vs no raw), and whether neighbor
// path descriptions are included (w/ path vs no path). For this
// reproduction each backbone is a simulated predictor whose profile
// reflects its configuration: instruction tuning sharpens the model
// (lower vocabulary noise, lower decision temperature), dropping raw
// text weakens neighbor evidence (graph tokens alone carry less
// content, hurting 1-hop most), and path descriptions slightly reduce
// decision noise. The paper's point — that token pruning and query
// boosting are prompt-level and therefore apply unchanged to tuned
// models — is preserved exactly: the strategies below are the same
// core.PrunePlan/core.Boost used for black-box models.
package instructglm

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/predictors"
	"repro/internal/tag"
)

// Backbone identifies one InstructGLM configuration.
type Backbone struct {
	Hops int
	Raw  bool // raw neighbor text alongside graph tokens
	Path bool // neighbor path descriptions
}

// String renders the paper's row label, e.g. "2-hop, w/ raw, no path".
func (b Backbone) String() string {
	raw, path := "no raw", "no path"
	if b.Raw {
		raw = "w/ raw"
	}
	if b.Path {
		path = "w/ path"
	}
	return fmt.Sprintf("%d-hop, %s, %s", b.Hops, raw, path)
}

// All returns the six backbones in Table IX order.
func All() []Backbone {
	return []Backbone{
		{Hops: 1, Raw: true, Path: false},
		{Hops: 2, Raw: true, Path: false},
		{Hops: 2, Raw: true, Path: true},
		{Hops: 1, Raw: false, Path: false},
		{Hops: 2, Raw: false, Path: false},
		{Hops: 2, Raw: false, Path: true},
	}
}

// Profile derives the simulated-model profile for the backbone.
// Instruction tuning starts from a sharper base than the black-box
// GPT-3.5 profile; configuration penalties follow the ordering of the
// paper's Base column.
func (b Backbone) Profile() llm.Profile {
	p := llm.Profile{
		Name:           "instructglm/" + b.String(),
		VocabNoise:     0.05,
		TargetWeight:   6.0,
		NeighborWeight: 1.6,
		LabelWeight:    1.8,
		BiasStd:        0.30,
		Temperature:    0.42,
	}
	if !b.Raw {
		// Graph tokens without raw text: neighbor content evidence is
		// compressed away; labels (learned token embeddings) survive.
		p.NeighborWeight = 0.25
		if b.Hops == 1 {
			// One hop of graph tokens is very little context.
			p.LabelWeight = 0.9
			p.Temperature = 0.85
		}
	}
	if b.Path {
		// Path descriptions give the tuned model a small extra
		// structural cue.
		p.Temperature *= 0.92
	}
	return p
}

// Method returns the neighbor-selection method the backbone queries
// with.
func (b Backbone) Method() predictors.Method {
	return predictors.KHopRandom{K: b.Hops}
}

// NewPredictor instantiates the simulated backbone over a dataset.
func (b Backbone) NewPredictor(g *tag.Graph, seed uint64) llm.Predictor {
	return llm.NewSim(b.Profile(), g.Vocab, g.Classes, seed)
}

// VariantResult holds Table IX's five columns for one backbone.
type VariantResult struct {
	Base   float64 // unchanged model
	Boost  float64 // w/ query boosting
	Random float64 // w/ random pruning
	Prune  float64 // w/ token pruning
	Both   float64 // prune + boost
}

// EvaluateConfig tunes Evaluate.
type EvaluateConfig struct {
	// PruneTau is the pruned fraction (the paper's Table IX uses 0.30).
	PruneTau float64
	// M caps neighbors per prompt.
	M int
	// Boosting thresholds.
	Boost core.BoostConfig
	// Inadequacy fit configuration.
	Inadequacy core.InadequacyConfig
	// Seed drives selection sampling.
	Seed uint64
}

// DefaultEvaluateConfig mirrors the paper's Table IX protocol.
func DefaultEvaluateConfig(seed uint64) EvaluateConfig {
	iq := core.DefaultInadequacyConfig()
	iq.Seed = seed
	return EvaluateConfig{
		PruneTau:   0.30,
		M:          4,
		Boost:      core.DefaultBoostConfig(),
		Inadequacy: iq,
		Seed:       seed,
	}
}

// Evaluate runs the five Table IX variants for one backbone on one
// dataset split.
func Evaluate(g *tag.Graph, split tag.Split, b Backbone, cfg EvaluateConfig) (VariantResult, error) {
	pred := b.NewPredictor(g, cfg.Seed)
	method := b.Method()

	newCtx := func() *predictors.Context {
		return &predictors.Context{
			Graph: g,
			Known: predictors.KnownFromSplit(g, split),
			M:     cfg.M,
			Seed:  cfg.Seed,
		}
	}

	var out VariantResult

	// Base.
	res, err := core.Execute(newCtx(), method, pred, core.Plan{Queries: split.Query})
	if err != nil {
		return out, fmt.Errorf("instructglm: base: %w", err)
	}
	out.Base = core.Accuracy(g, res.Pred)

	// w/ boost.
	res, _, err = core.Boost(newCtx(), method, pred, core.Plan{Queries: split.Query}, cfg.Boost)
	if err != nil {
		return out, fmt.Errorf("instructglm: boost: %w", err)
	}
	out.Boost = core.Accuracy(g, res.Pred)

	// w/ random pruning.
	res, err = core.Execute(newCtx(), method, pred, core.RandomPrunePlan(split.Query, cfg.PruneTau, cfg.Seed+17))
	if err != nil {
		return out, fmt.Errorf("instructglm: random prune: %w", err)
	}
	out.Random = core.Accuracy(g, res.Pred)

	// w/ token pruning (and reuse the plan for w/ both).
	iq, err := core.FitInadequacy(g, split.Labeled, pred, "paper", cfg.Inadequacy)
	if err != nil {
		return out, fmt.Errorf("instructglm: inadequacy: %w", err)
	}
	plan := core.PrunePlan(iq, g, split.Query, cfg.PruneTau)
	res, err = core.Execute(newCtx(), method, pred, plan)
	if err != nil {
		return out, fmt.Errorf("instructglm: prune: %w", err)
	}
	out.Prune = core.Accuracy(g, res.Pred)

	// w/ both.
	res, _, err = core.Boost(newCtx(), method, pred, plan, cfg.Boost)
	if err != nil {
		return out, fmt.Errorf("instructglm: both: %w", err)
	}
	out.Both = core.Accuracy(g, res.Pred)

	return out, nil
}
