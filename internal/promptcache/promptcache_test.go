package promptcache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/llm"
	"repro/internal/obs"
)

func resp(cat string, in, out int) llm.Response {
	return llm.Response{Text: "Category: ['" + cat + "']", Category: cat, InputTokens: in, OutputTokens: out}
}

func mustOpen(t *testing.T, dir string, cfg Config) *Cache {
	t.Helper()
	c, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestPutGetAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, dir, Config{Shards: 4})
	keys := make([]Key, 50)
	for i := range keys {
		keys[i] = KeyOf("ns", fmt.Sprintf("prompt %d", i))
		if err := c.Put(keys[i], resp(fmt.Sprintf("cat%d", i), i, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := c.Get(KeyOf("ns", "missing")); ok {
		t.Fatal("hit on a never-written key")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2 := mustOpen(t, dir, Config{Shards: 4})
	for i, k := range keys {
		got, ok := c2.Get(k)
		if !ok {
			t.Fatalf("key %d lost across reopen", i)
		}
		want := resp(fmt.Sprintf("cat%d", i), i, 1)
		if got != want {
			t.Fatalf("key %d: got %+v want %+v", i, got, want)
		}
	}
	if n := c2.Len(); n != 50 {
		t.Fatalf("entries after reopen: %d want 50", n)
	}
}

func TestOverwriteReplaces(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, dir, Config{Shards: 1})
	k := KeyOf("ns", "p")
	if err := c.Put(k, resp("old", 1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(k, resp("new", 2, 2)); err != nil {
		t.Fatal(err)
	}
	if got, _ := c.Get(k); got.Category != "new" {
		t.Fatalf("got %q want new", got.Category)
	}
	c.Close()
	c2 := mustOpen(t, dir, Config{Shards: 1})
	if got, ok := c2.Get(k); !ok || got.Category != "new" {
		t.Fatalf("reopen: got %+v ok=%v, want the overwrite", got, ok)
	}
	if c2.Len() != 1 {
		t.Fatalf("len %d want 1", c2.Len())
	}
}

// TestTornTailRecovery simulates kill -9 mid-append: any truncation of
// a valid segment must reopen cleanly, keep every complete record, and
// stay appendable.
func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, dir, Config{Shards: 1})
	for i := 0; i < 10; i++ {
		if err := c.Put(KeyOf("ns", fmt.Sprintf("p%d", i)), resp("c", 10+i, 2)); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()

	seg := filepath.Join(dir, "seg-00.log")
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	recs, _ := replay(full)
	if len(recs) != 10 {
		t.Fatalf("fixture has %d records, want 10", len(recs))
	}

	for cut := len(full) - 1; cut >= 0; cut -= 7 {
		if err := os.WriteFile(seg, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		wantRecs, _ := replay(full[:cut])
		c2, err := Open(dir, Config{Shards: 1})
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if got := c2.Len(); got != int64(len(wantRecs)) {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, got, len(wantRecs))
		}
		// Still appendable after tail truncation.
		extra := KeyOf("ns", "post-crash")
		if err := c2.Put(extra, resp("x", 1, 1)); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		c2.Close()
		c3, err := Open(dir, Config{Shards: 1})
		if err != nil {
			t.Fatalf("cut %d: reopen after append: %v", cut, err)
		}
		if _, ok := c3.Get(extra); !ok {
			t.Fatalf("cut %d: post-crash append lost", cut)
		}
		for i, r := range wantRecs {
			if got, ok := c3.Get(r.key); !ok || got.Category != "c" {
				t.Fatalf("cut %d: record %d lost or corrupt (ok=%v)", cut, i, ok)
			}
		}
		c3.Close()
	}
}

// TestCorruptMiddleStopsAtPrefix: flipping a byte inside a record must
// drop that record and everything after it (the framing can no longer
// be trusted), while keeping the records before it.
func TestCorruptMiddleStopsAtPrefix(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, dir, Config{Shards: 1})
	k0, k1, k2 := KeyOf("ns", "a"), KeyOf("ns", "b"), KeyOf("ns", "c")
	for _, k := range []Key{k0, k1, k2} {
		if err := c.Put(k, resp("c", 3, 1)); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()
	seg := filepath.Join(dir, "seg-00.log")
	data, _ := os.ReadFile(seg)
	recs, _ := replay(data)
	if len(recs) != 3 {
		t.Fatalf("want 3 records, got %d", len(recs))
	}
	// Corrupt a payload byte of the second record.
	off := int(recs[0].size) + recordHeaderSize + 40
	data[off] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	c2 := mustOpen(t, dir, Config{Shards: 1})
	if _, ok := c2.Get(k0); !ok {
		t.Fatal("record before the corruption lost")
	}
	if _, ok := c2.Get(k1); ok {
		t.Fatal("corrupt record served")
	}
	if _, ok := c2.Get(k2); ok {
		t.Fatal("record after the corruption served (framing cannot be trusted)")
	}
}

func TestLRUEvictionUnderByteBudget(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	c := mustOpen(t, dir, Config{Shards: 1, MaxBytes: 400, Obs: reg})
	var keys []Key
	for i := 0; i < 20; i++ {
		k := KeyOf("ns", fmt.Sprintf("p%02d", i))
		keys = append(keys, k)
		if err := c.Put(k, resp("c", i, 1)); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("tiny budget produced no evictions")
	}
	if st.Bytes > 400 {
		t.Fatalf("live bytes %d exceed budget 400", st.Bytes)
	}
	if _, ok := c.Get(keys[19]); !ok {
		t.Fatal("most recent entry evicted")
	}
	if _, ok := c.Get(keys[0]); ok {
		t.Fatal("oldest entry survived a 20x-over budget")
	}
	if got := reg.CounterValue("mqo_cache_evictions_total", "reason", "lru"); got != float64(st.Evictions) {
		t.Fatalf("eviction counter %v != stats %d", got, st.Evictions)
	}

	// Eviction is durable: a reopen must not resurrect evicted keys.
	c.Close()
	c2 := mustOpen(t, dir, Config{Shards: 1, MaxBytes: 400})
	if _, ok := c2.Get(keys[0]); ok {
		t.Fatal("evicted entry resurrected by reopen")
	}
	if _, ok := c2.Get(keys[19]); !ok {
		t.Fatal("live entry lost by reopen")
	}
}

func TestTTLExpiry(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	c := mustOpen(t, dir, Config{Shards: 1, TTL: time.Minute, now: clock})
	k := KeyOf("ns", "p")
	if err := c.Put(k, resp("c", 1, 1)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(k); !ok {
		t.Fatal("fresh entry missed")
	}
	now = now.Add(2 * time.Minute)
	if c.Contains(k) {
		t.Fatal("Contains served an expired entry")
	}
	if _, ok := c.Get(k); ok {
		t.Fatal("expired entry served")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 0 {
		t.Fatalf("stats after expiry: %+v", st)
	}
	// Expiry also applies at replay: reopening must drop it.
	c.Close()
	c2 := mustOpen(t, dir, Config{Shards: 1, TTL: time.Minute, now: clock})
	if c2.Len() != 0 {
		t.Fatal("expired entry survived reopen")
	}
}

func TestCompactionShrinksSegment(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, dir, Config{Shards: 1})
	k := KeyOf("ns", "hot")
	long := strings.Repeat("x", 512)
	for i := 0; i < 100; i++ {
		if err := c.Put(k, llm.Response{Text: long, Category: "c", InputTokens: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Compact(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(filepath.Join(dir, "seg-00.log"))
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if fi.Size() != st.Bytes {
		t.Fatalf("compacted segment %d bytes, live set %d", fi.Size(), st.Bytes)
	}
	if got, ok := c.Get(k); !ok || got.InputTokens != 99 {
		t.Fatalf("latest value lost by compaction: %+v ok=%v", got, ok)
	}
	c.Close()
	c2 := mustOpen(t, dir, Config{Shards: 1})
	if got, ok := c2.Get(k); !ok || got.InputTokens != 99 {
		t.Fatalf("latest value lost across reopen after compaction: %+v ok=%v", got, ok)
	}
}

// TestCompactionPreservesLRUOrder: after compact + reopen, eviction
// order must still be least-recently-used, not insertion order.
func TestCompactionPreservesLRUOrder(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, dir, Config{Shards: 1})
	old := KeyOf("ns", "old")
	hot := KeyOf("ns", "hot")
	if err := c.Put(old, resp("c", 1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(hot, resp("c", 2, 1)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(old); !ok { // touch: old is now most recent
		t.Fatal("miss")
	}
	if err := c.Compact(); err != nil {
		t.Fatal(err)
	}
	c.Close()

	// Reopen with a budget that fits exactly one entry: the LRU victim
	// must be `hot` (least recently used), proving compaction wrote
	// oldest-first.
	c2 := mustOpen(t, dir, Config{Shards: 1, MaxBytes: 1})
	if _, ok := c2.Get(old); !ok {
		t.Fatal("most-recently-used entry evicted at reopen")
	}
	if _, ok := c2.Get(hot); ok {
		t.Fatal("least-recently-used entry survived a one-entry budget")
	}
}

func TestStatsReconcileWithMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	c := mustOpen(t, t.TempDir(), Config{Shards: 2, Obs: reg})
	k1, k2 := KeyOf("ns", "a"), KeyOf("ns", "b")
	c.Put(k1, resp("c", 1, 1))
	c.Get(k1)
	c.Get(k2)
	c.Get(k2)
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("stats %+v, want 1 hit / 2 misses", st)
	}
	if got := reg.CounterValue("mqo_cache_hits_total"); got != 1 {
		t.Fatalf("hits counter %v", got)
	}
	if got := reg.CounterValue("mqo_cache_misses_total"); got != 2 {
		t.Fatalf("misses counter %v", got)
	}
	if got := reg.GaugeValue("mqo_cache_bytes"); got != float64(st.Bytes) {
		t.Fatalf("bytes gauge %v != stats %d", got, st.Bytes)
	}
}

func TestNamespaceIsolation(t *testing.T) {
	c := mustOpen(t, t.TempDir(), Config{})
	p := "identical prompt"
	c.Put(KeyOf("gpt-3.5/seed=1|tmpl=v1", p), resp("A", 1, 1))
	c.Put(KeyOf("gpt-3.5/seed=2|tmpl=v1", p), resp("B", 1, 1))
	got, ok := c.Get(KeyOf("gpt-3.5/seed=1|tmpl=v1", p))
	if !ok || got.Category != "A" {
		t.Fatalf("namespace 1: %+v ok=%v", got, ok)
	}
	got, ok = c.Get(KeyOf("gpt-3.5/seed=2|tmpl=v1", p))
	if !ok || got.Category != "B" {
		t.Fatalf("namespace 2: %+v ok=%v", got, ok)
	}
}

func TestConcurrentPutGet(t *testing.T) {
	c := mustOpen(t, t.TempDir(), Config{Shards: 4, MaxBytes: 4096})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := KeyOf("ns", fmt.Sprintf("p%d", i%37))
				if i%3 == 0 {
					if err := c.Put(k, resp("c", i, 1)); err != nil {
						t.Error(err)
						return
					}
				} else if r, ok := c.Get(k); ok && r.Category != "c" {
					t.Errorf("wrong category %q", r.Category)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Bytes > 4096 {
		t.Fatalf("live bytes %d exceed budget", st.Bytes)
	}
}

func TestWrapServesFromCacheAcrossPredictors(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, dir, Config{})
	inner := &countingPredictor{category: "K"}
	p := Wrap(inner, c)
	if p.Name() != inner.Name() {
		t.Fatalf("Wrap changed the served name: %q", p.Name())
	}
	r1, err := p.Query("prompt")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := p.Query("prompt")
	if err != nil {
		t.Fatal(err)
	}
	if inner.calls != 1 {
		t.Fatalf("inner called %d times, want 1", inner.calls)
	}
	if r1 != r2 {
		t.Fatalf("cached answer differs: %+v vs %+v", r1, r2)
	}

	// A fresh wrapper over a fresh inner predictor with the same
	// identity reads the persisted answer: zero inner calls.
	inner2 := &countingPredictor{category: "K"}
	p2 := Wrap(inner2, c)
	if _, err := p2.Query("prompt"); err != nil {
		t.Fatal(err)
	}
	if inner2.calls != 0 {
		t.Fatalf("warm wrapper paid %d inner calls, want 0", inner2.calls)
	}
}

type countingPredictor struct {
	category string
	calls    int
}

func (p *countingPredictor) Name() string { return "counting" }

func (p *countingPredictor) Query(promptText string) (llm.Response, error) {
	p.calls++
	return llm.Response{Text: "Category: ['" + p.category + "']", Category: p.category,
		InputTokens: len(promptText), OutputTokens: 4}, nil
}

func TestKeyOfSeparatesNamespaceFromPrompt(t *testing.T) {
	// "ab" + "c" must not collide with "a" + "bc".
	if KeyOf("ab", "c") == KeyOf("a", "bc") {
		t.Fatal("namespace/prompt split ambiguous")
	}
	if KeyOf("ns", "p") != KeyOf("ns", "p") {
		t.Fatal("KeyOf not deterministic")
	}
}

func TestOpenRejectsBadConfig(t *testing.T) {
	if _, err := Open("", Config{}); err == nil {
		t.Fatal("empty dir accepted")
	}
	if _, err := Open(t.TempDir(), Config{Shards: 1000}); err == nil {
		t.Fatal("1000 shards accepted")
	}
	if _, err := Open(t.TempDir(), Config{MaxBytes: -1}); err == nil {
		t.Fatal("negative budget accepted")
	}
}

func TestPutAfterCloseFails(t *testing.T) {
	c := mustOpen(t, t.TempDir(), Config{Shards: 1})
	c.Close()
	if err := c.Put(KeyOf("ns", "p"), resp("c", 1, 1)); err == nil {
		t.Fatal("Put after Close succeeded")
	}
}

func TestRecordRoundTrip(t *testing.T) {
	k := KeyOf("ns", "p")
	when := time.Unix(123, 456)
	want := llm.Response{Text: "some text\nwith newline", Category: "Theory", InputTokens: 7, OutputTokens: 3}
	rec := encodeRecord(k, when, kindPut, want)
	recs, good := replay(rec)
	if len(recs) != 1 || good != int64(len(rec)) {
		t.Fatalf("replay: %d records, offset %d/%d", len(recs), good, len(rec))
	}
	r := recs[0]
	if r.key != k || !r.written.Equal(when) || r.kind != kindPut || r.resp != want {
		t.Fatalf("round trip mismatch: %+v", r)
	}
	if !bytes.Equal(rec, encodeRecord(k, when, kindPut, want)) {
		t.Fatal("encodeRecord not deterministic")
	}
}
