package promptcache

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/llm"
)

// Segment record layout (little-endian):
//
//	[4B payload length][4B CRC32(payload)][payload]
//	payload = key(32) | writtenAt int64 | kind byte |
//	          inputTokens uint32 | outputTokens uint32 |
//	          categoryLen uint16 | category | text...
//
// Records are append-only; an overwrite appends a fresh record and an
// eviction appends a tombstone (kind 1), so the file is always a valid
// prefix plus at most one torn record. Replay applies records in file
// order — later records supersede earlier ones — and stops at the
// first frame whose length or checksum fails to validate, truncating
// the tail. That is exactly the state a kill -9 mid-append leaves
// behind, which is why reopening after a crash can lose at most the
// record being written.

const (
	recordHeaderSize = 8
	// payloadFixedSize is the payload size before the variable-length
	// category and text fields.
	payloadFixedSize = 32 + 8 + 1 + 4 + 4 + 2
	// maxPayloadSize rejects absurd frame lengths during replay before
	// any allocation: prompts and responses are far below 64 MiB, so a
	// bigger length is framing garbage, not data.
	maxPayloadSize = 64 << 20

	kindPut       = 0
	kindTombstone = 1
)

// encodeRecord frames one record. Tombstones carry an empty response.
func encodeRecord(k Key, written time.Time, kind byte, resp llm.Response) []byte {
	if len(resp.Category) > 1<<16-1 {
		resp.Category = resp.Category[:1<<16-1] // cannot round-trip; keep the frame valid
	}
	n := payloadFixedSize + len(resp.Category) + len(resp.Text)
	buf := make([]byte, recordHeaderSize+n)
	p := buf[recordHeaderSize:]
	copy(p[:32], k[:])
	binary.LittleEndian.PutUint64(p[32:], uint64(written.UnixNano()))
	p[40] = kind
	binary.LittleEndian.PutUint32(p[41:], uint32(resp.InputTokens))
	binary.LittleEndian.PutUint32(p[45:], uint32(resp.OutputTokens))
	binary.LittleEndian.PutUint16(p[49:], uint16(len(resp.Category)))
	copy(p[payloadFixedSize:], resp.Category)
	copy(p[payloadFixedSize+len(resp.Category):], resp.Text)
	binary.LittleEndian.PutUint32(buf[0:], uint32(n))
	binary.LittleEndian.PutUint32(buf[4:], crc32.ChecksumIEEE(p))
	return buf
}

// record is one decoded segment record.
type record struct {
	key     Key
	written time.Time
	kind    byte
	resp    llm.Response
	size    int64 // on-disk size including header
}

// decodePayload parses a checksum-validated payload; ok is false when
// the payload's internal structure is inconsistent with its length.
func decodePayload(p []byte) (record, bool) {
	if len(p) < payloadFixedSize {
		return record{}, false
	}
	var r record
	copy(r.key[:], p[:32])
	r.written = time.Unix(0, int64(binary.LittleEndian.Uint64(p[32:])))
	r.kind = p[40]
	if r.kind > kindTombstone {
		return record{}, false
	}
	r.resp.InputTokens = int(binary.LittleEndian.Uint32(p[41:]))
	r.resp.OutputTokens = int(binary.LittleEndian.Uint32(p[45:]))
	catLen := int(binary.LittleEndian.Uint16(p[49:]))
	if payloadFixedSize+catLen > len(p) {
		return record{}, false
	}
	r.resp.Category = string(p[payloadFixedSize : payloadFixedSize+catLen])
	r.resp.Text = string(p[payloadFixedSize+catLen:])
	r.size = int64(recordHeaderSize + len(p))
	return r, true
}

// replay decodes records from data, returning them in file order plus
// the byte offset of the valid prefix. It never fails: anything after
// the first unverifiable frame is a torn tail to be truncated.
func replay(data []byte) (recs []record, goodOffset int64) {
	off := 0
	for {
		if len(data)-off < recordHeaderSize {
			return recs, int64(off)
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		if n < payloadFixedSize || n > maxPayloadSize || len(data)-off-recordHeaderSize < n {
			return recs, int64(off)
		}
		sum := binary.LittleEndian.Uint32(data[off+4:])
		payload := data[off+recordHeaderSize : off+recordHeaderSize+n]
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, int64(off)
		}
		r, ok := decodePayload(payload)
		if !ok {
			return recs, int64(off)
		}
		recs = append(recs, r)
		off += recordHeaderSize + n
	}
}

// entry is one live cache entry, held in memory; the segment file is
// its durable copy.
type entry struct {
	resp    llm.Response
	written time.Time
	size    int64
	elem    *list.Element // list value is the Key
}

// shard is one lock stripe: a segment file plus its in-memory index.
type shard struct {
	mu        sync.Mutex
	path      string
	f         *os.File
	budget    int64 // live-byte budget; 0 = unbounded
	ttl       time.Duration
	now       func() time.Time
	index     map[Key]*entry
	lru       *list.List // front = most recently used
	live      int64      // live record bytes
	fileBytes int64      // total segment file bytes
}

// openShard opens (or creates) one segment, replays it, truncates any
// torn tail, drops expired entries, and enforces the byte budget.
func openShard(path string, budget int64, ttl time.Duration, now func() time.Time) (*shard, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, 0, fmt.Errorf("promptcache: reading %s: %w", path, err)
	}
	recs, good := replay(data)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, 0, fmt.Errorf("promptcache: opening %s: %w", path, err)
	}
	if int64(len(data)) > good {
		// Torn tail from a crash mid-append: cut it so the next append
		// starts a clean frame.
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, 0, fmt.Errorf("promptcache: truncating torn tail of %s: %w", path, err)
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("promptcache: seeking %s: %w", path, err)
	}
	s := &shard{
		path: path, f: f, budget: budget, ttl: ttl, now: now,
		index: make(map[Key]*entry), lru: list.New(), fileBytes: good,
	}
	t := now()
	for _, r := range recs {
		if old, ok := s.index[r.key]; ok {
			s.lru.Remove(old.elem)
			s.live -= old.size
			delete(s.index, r.key)
		}
		if r.kind == kindTombstone {
			continue
		}
		if ttl > 0 && t.Sub(r.written) > ttl {
			continue
		}
		e := &entry{resp: r.resp, written: r.written, size: r.size}
		e.elem = s.lru.PushFront(r.key)
		s.index[r.key] = e
		s.live += r.size
	}
	// Over-budget after replay (the budget shrank, or expiries changed
	// the balance): evict oldest-first, then compact away the garbage
	// instead of appending tombstones for entries we are about to drop.
	evicted := false
	for s.budget > 0 && s.live > s.budget && s.lru.Len() > 1 {
		back := s.lru.Back()
		s.dropLocked(back.Value.(Key))
		evicted = true
	}
	if evicted || s.garbageHeavy() {
		if err := s.compactLocked(); err != nil {
			f.Close()
			return nil, 0, err
		}
	}
	return s, s.live, nil
}

// dropLocked removes a key from the in-memory index only. Callers must
// make the removal durable (tombstone or compaction).
func (s *shard) dropLocked(k Key) {
	e, ok := s.index[k]
	if !ok {
		return
	}
	s.lru.Remove(e.elem)
	s.live -= e.size
	delete(s.index, k)
}

// get looks up k. It reports the entry, its write time, the bytes
// released by a TTL expiry (0 otherwise), whether an expiry happened,
// and whether the lookup hit.
func (s *shard) get(k Key) (resp llm.Response, written time.Time, evictedBytes int64, expired, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, found := s.index[k]
	if !found {
		return llm.Response{}, time.Time{}, 0, false, false
	}
	if s.ttl > 0 && s.now().Sub(e.written) > s.ttl {
		// Expired: drop it from the index only. Replay re-applies the
		// same TTL check, so the stale record cannot resurrect.
		size := e.size
		s.dropLocked(k)
		return llm.Response{}, time.Time{}, size, true, false
	}
	s.lru.MoveToFront(e.elem)
	return e.resp, e.written, 0, false, true
}

// contains reports presence without touching LRU order.
func (s *shard) contains(k Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.index[k]
	if !ok {
		return false
	}
	if s.ttl > 0 && s.now().Sub(e.written) > s.ttl {
		return false
	}
	return true
}

// size reports live entries and bytes.
func (s *shard) size() (entries, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int64(len(s.index)), s.live
}

// put appends a record for k, updates the index, and evicts LRU
// entries past the byte budget. It returns the net change in live
// bytes and the number of evictions.
func (s *shard) put(k Key, resp llm.Response) (deltaLive int64, evicted int64, err error) {
	written := s.now()
	rec := encodeRecord(k, written, kindPut, resp)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return 0, 0, fmt.Errorf("promptcache: %s: cache is closed", s.path)
	}
	if err := s.append(rec); err != nil {
		return 0, 0, err
	}
	before := s.live
	if old, ok := s.index[k]; ok {
		s.lru.Remove(old.elem)
		s.live -= old.size
	}
	e := &entry{resp: resp, written: written, size: int64(len(rec))}
	e.elem = s.lru.PushFront(k)
	s.index[k] = e
	s.live += e.size
	// LRU eviction: shed oldest entries until the live set fits the
	// budget. The entry just written always survives — a single record
	// larger than the whole budget must still be usable, otherwise a
	// degenerate budget turns the cache into a black hole.
	for s.budget > 0 && s.live > s.budget && s.lru.Len() > 1 {
		back := s.lru.Back()
		victim := back.Value.(Key)
		ts := encodeRecord(victim, s.now(), kindTombstone, llm.Response{})
		if err := s.append(ts); err != nil {
			return s.live - before, evicted, err
		}
		s.dropLocked(victim)
		evicted++
	}
	if s.garbageHeavy() {
		if err := s.compactLocked(); err != nil {
			return s.live - before, evicted, err
		}
	}
	return s.live - before, evicted, nil
}

// append writes one framed record to the segment file.
func (s *shard) append(rec []byte) error {
	if _, err := s.f.Write(rec); err != nil {
		return fmt.Errorf("promptcache: appending to %s: %w", s.path, err)
	}
	s.fileBytes += int64(len(rec))
	return nil
}

// garbageHeavy reports whether dead bytes (overwrites + tombstones)
// dominate the segment enough to be worth rewriting.
func (s *shard) garbageHeavy() bool {
	return s.fileBytes > 4096 && s.fileBytes > 2*s.live
}

// compactNow compacts under the shard lock.
func (s *shard) compactNow() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("promptcache: %s: cache is closed", s.path)
	}
	return s.compactLocked()
}

// compactLocked rewrites the segment to contain exactly the live
// entries, oldest first (so replay rebuilds the same LRU order), and
// atomically renames it into place. A crash mid-compaction leaves the
// old segment untouched.
func (s *shard) compactLocked() error {
	tmpPath := s.path + ".tmp"
	tmp, err := os.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("promptcache: compacting %s: %w", s.path, err)
	}
	var written int64
	for el := s.lru.Back(); el != nil; el = el.Prev() {
		k := el.Value.(Key)
		e := s.index[k]
		rec := encodeRecord(k, e.written, kindPut, e.resp)
		if _, err := tmp.Write(rec); err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return fmt.Errorf("promptcache: compacting %s: %w", s.path, err)
		}
		written += int64(len(rec))
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("promptcache: compacting %s: %w", s.path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("promptcache: compacting %s: %w", s.path, err)
	}
	if err := os.Rename(tmpPath, s.path); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("promptcache: compacting %s: %w", s.path, err)
	}
	old := s.f
	f, err := os.OpenFile(s.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("promptcache: reopening %s after compaction: %w", s.path, err)
	}
	old.Close()
	s.f = f
	s.fileBytes = written
	return nil
}

// close syncs and closes the segment file.
func (s *shard) close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Sync()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	return err
}
