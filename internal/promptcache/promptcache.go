// Package promptcache is a persistent, content-addressed prompt →
// response cache. The paper's whole premise is that multi-query
// workloads share token-level work: common neighbor text, identical
// prompts across boosting rounds, repeated plans across runs. The
// in-memory tier of batch.Executor already exploits sharing *within*
// one process; this package makes the sharing survive the process, so
// a repeated `mqorun` pays only for tokens it has never bought before.
//
// Design:
//
//   - Content addressing. A cache key is SHA-256 of the namespace (the
//     predictor's identity — model name plus its answer-function seed —
//     and the prompt-template version) and the full prompt text. Any
//     change to the model, its seed, or the prompt template changes the
//     key, so stale answers can never be served across an upgrade.
//   - Sharding with lock striping. Keys are spread across N segment
//     files by their first key byte; each shard has its own mutex, file
//     handle, index and LRU list, so concurrent workers rarely contend.
//   - Crash-safe append-only segments. A record is
//     [4B payload length][4B CRC32][payload]; replay on reopen stops at
//     the first record whose length or checksum does not validate and
//     truncates the tail, so a kill -9 mid-append loses at most the
//     record being written, never the cache.
//   - Bounded by bytes, not entries. Each shard holds MaxBytes/shards
//     of live records; eviction is LRU (tombstones make it durable) and
//     TTL expiry is applied at read and replay time. When dead bytes
//     dominate a segment it is compacted by atomic rename.
//
// Live entries are kept in memory (the byte budget bounds that too), so
// Get never touches the disk; the segment files are the durability
// layer, not the read path.
package promptcache

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/llm"
	"repro/internal/obs"
	"repro/internal/prompt"
)

// Metric names emitted by the cache; the full catalog lives in
// README.md ("Observability").
const (
	metricCacheHits      = "mqo_cache_hits_total"
	metricCacheMisses    = "mqo_cache_misses_total"
	metricCacheEvictions = "mqo_cache_evictions_total"
	metricCacheBytes     = "mqo_cache_bytes"
)

// Key is the 32-byte content address of one (namespace, prompt) pair.
type Key [sha256.Size]byte

// KeyOf addresses one prompt within one namespace. The namespace and
// prompt are length-separated before hashing so no (ns, prompt) pair
// can collide with a different split of the same bytes.
func KeyOf(namespace, promptText string) Key {
	h := sha256.New()
	fmt.Fprintf(h, "%d\x00", len(namespace))
	h.Write([]byte(namespace))
	h.Write([]byte{0})
	h.Write([]byte(promptText))
	var k Key
	h.Sum(k[:0])
	return k
}

// Namespace derives the cache namespace for a predictor: its identity
// (llm.Identifier when implemented, which folds in the answer-function
// seed; Name otherwise) plus the prompt-template version. These are
// exactly the invalidation axes — a different model, a reseeded
// simulator, or a template change each produce a disjoint key space.
func Namespace(p llm.Predictor) string {
	return NamespaceVersion(p, prompt.TemplateVersion)
}

// NamespaceVersion is Namespace with an explicit template version —
// the hook for layers that rewrite prompt bytes, like the compression
// stage, whose prompt.Compressor.TemplateVersion() names the template
// generation it produces (e.g. "v2+c2"). Every compression
// configuration owns a disjoint key space, so a cached answer bought
// with compressed bytes can never be replayed for the uncompressed
// prompt or for a different compression level.
func NamespaceVersion(p llm.Predictor, version string) string {
	id := p.Name()
	if i, ok := p.(llm.Identifier); ok {
		id = i.Identity()
	}
	return id + "|tmpl=" + version
}

// Config tunes a Cache.
type Config struct {
	// Shards is the number of segment files and lock stripes
	// (default 8, max 256). More shards mean less lock contention and
	// smaller per-file replay/compaction units.
	Shards int
	// MaxBytes bounds the live bytes across all shards; 0 means
	// unbounded. Each shard enforces MaxBytes/Shards with LRU eviction.
	MaxBytes int64
	// TTL expires entries this long after they were written; 0 means
	// entries never expire. Expired entries count as misses and are
	// dropped at replay.
	TTL time.Duration
	// Obs receives cache metrics (hits, misses, evictions, live bytes);
	// nil routes to the process-default recorder.
	Obs obs.Recorder

	// now overrides the clock in tests.
	now func() time.Time
}

// Stats is a point-in-time snapshot of cache activity since Open.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64 // LRU evictions + TTL expiries
	Entries   int64
	Bytes     int64 // live record bytes (header + payload)
}

// Cache is a persistent prompt→response cache. All methods are safe
// for concurrent use.
type Cache struct {
	dir    string
	cfg    Config
	rec    obs.Recorder
	shards []*shard

	mu     sync.Mutex // guards closed
	closed bool

	stats struct {
		sync.Mutex
		s Stats
	}
}

// Open creates or reopens the cache rooted at dir. Existing segment
// files are replayed; a torn tail (crash mid-append) is truncated and
// the rest of the cache is kept.
func Open(dir string, cfg Config) (*Cache, error) {
	if dir == "" {
		return nil, errors.New("promptcache: empty directory")
	}
	if cfg.Shards == 0 {
		cfg.Shards = 8
	}
	if cfg.Shards < 1 || cfg.Shards > 256 {
		return nil, fmt.Errorf("promptcache: shards %d outside [1,256]", cfg.Shards)
	}
	if cfg.MaxBytes < 0 || cfg.TTL < 0 {
		return nil, fmt.Errorf("promptcache: negative MaxBytes or TTL")
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("promptcache: %w", err)
	}
	c := &Cache{dir: dir, cfg: cfg, rec: obs.Active(cfg.Obs)}
	perShard := int64(0)
	if cfg.MaxBytes > 0 {
		perShard = cfg.MaxBytes / int64(cfg.Shards)
		if perShard == 0 {
			perShard = 1 // degenerate budgets still evict rather than divide to "unbounded"
		}
	}
	c.shards = make([]*shard, cfg.Shards)
	for i := range c.shards {
		s, recovered, err := openShard(filepath.Join(dir, fmt.Sprintf("seg-%02x.log", i)), perShard, cfg.TTL, cfg.now)
		if err != nil {
			for _, prev := range c.shards[:i] {
				prev.close()
			}
			return nil, err
		}
		c.shards[i] = s
		c.addBytes(recovered)
	}
	return c, nil
}

// shardFor maps a key to its lock stripe.
func (c *Cache) shardFor(k Key) *shard {
	return c.shards[int(k[0])%len(c.shards)]
}

// addBytes updates the live-byte accounting and gauge.
func (c *Cache) addBytes(delta int64) {
	if delta == 0 {
		return
	}
	c.stats.Lock()
	c.stats.s.Bytes += delta
	// Gauge update stays under the lock so concurrent deltas cannot
	// publish out of order and leave the gauge stale.
	c.rec.Set(metricCacheBytes, float64(c.stats.s.Bytes))
	c.stats.Unlock()
}

// Get returns the cached response for k, if present and unexpired.
// A hit refreshes the entry's LRU position.
func (c *Cache) Get(k Key) (llm.Response, bool) {
	resp, _, ok := c.GetEntry(k)
	return resp, ok
}

// GetEntry is Get plus the entry's write time, which resume
// reconciliation uses to decide which of two conflicting records —
// audit log vs cache — is newer.
func (c *Cache) GetEntry(k Key) (llm.Response, time.Time, bool) {
	s := c.shardFor(k)
	resp, written, evictedBytes, expired, ok := s.get(k)
	c.addBytes(-evictedBytes)
	if expired {
		c.bumpEvictions(1, "expired")
	}
	if !ok {
		c.stats.Lock()
		c.stats.s.Misses++
		c.stats.Unlock()
		c.rec.Add(metricCacheMisses, 1)
		return llm.Response{}, time.Time{}, false
	}
	c.stats.Lock()
	c.stats.s.Hits++
	c.stats.Unlock()
	c.rec.Add(metricCacheHits, 1)
	return resp, written, true
}

// Contains reports whether k is cached and unexpired, without touching
// LRU order or the hit/miss counters — the planner's lookup for
// cache-aware budgeting must not skew the operational stats.
func (c *Cache) Contains(k Key) bool {
	return c.shardFor(k).contains(k)
}

// Put stores (or replaces) the response for k. The write is appended
// to the shard's segment before the index is updated; LRU eviction and
// compaction run under the same shard lock.
func (c *Cache) Put(k Key, resp llm.Response) error {
	s := c.shardFor(k)
	delta, evicted, err := s.put(k, resp)
	c.addBytes(delta)
	c.bumpEvictions(evicted, "lru")
	return err
}

// bumpEvictions updates eviction accounting.
func (c *Cache) bumpEvictions(n int64, reason string) {
	if n == 0 {
		return
	}
	c.stats.Lock()
	c.stats.s.Evictions += n
	c.stats.Unlock()
	c.rec.Add(metricCacheEvictions, float64(n), "reason", reason)
}

// Stats snapshots the cache counters. Entries and Bytes are recomputed
// from the shards so they reconcile exactly with the index state.
func (c *Cache) Stats() Stats {
	c.stats.Lock()
	out := c.stats.s
	c.stats.Unlock()
	out.Entries, out.Bytes = 0, 0
	for _, s := range c.shards {
		n, b := s.size()
		out.Entries += n
		out.Bytes += b
	}
	return out
}

// Len returns the number of live entries.
func (c *Cache) Len() int64 { return c.Stats().Entries }

// Compact rewrites every shard's segment to contain only live records,
// reclaiming tombstone and overwrite garbage. Each shard compacts
// atomically (temp file + rename) under its own lock; a crash during
// compaction leaves either the old or the new segment, never a mix.
func (c *Cache) Compact() error {
	var firstErr error
	for _, s := range c.shards {
		if err := s.compactNow(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Close flushes and closes every segment file. The cache must not be
// used afterwards.
func (c *Cache) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	var firstErr error
	for _, s := range c.shards {
		if err := s.close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
