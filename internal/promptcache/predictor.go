package promptcache

import (
	"context"
	"time"

	"repro/internal/llm"
	"repro/internal/obs"
)

// Wrap fronts a predictor with the cache: hits answer from disk state,
// misses query the inner predictor and persist the answer. The
// namespace is derived from the inner predictor (Namespace), so a
// wrapped simulator reseeded tomorrow reads none of today's entries.
//
// llmserve uses this to make the *server side* of the stack
// persistent: repeated prompts from any client cost zero predictor
// work across restarts. The batch executor does not use Wrap — it
// integrates the cache directly so lookups stay inside its
// single-flight critical section.
func Wrap(p llm.Predictor, c *Cache) llm.Predictor {
	w := &cachingPredictor{inner: p, cache: c, ns: Namespace(p)}
	if cp, ok := p.(llm.ContextPredictor); ok {
		return &cachingCtxPredictor{cachingPredictor: w, cp: cp}
	}
	return w
}

type cachingPredictor struct {
	inner llm.Predictor
	cache *Cache
	ns    string
}

// Name implements llm.Predictor. The wrapper is answer-transparent, so
// it keeps the inner name (clients see the same model id).
func (w *cachingPredictor) Name() string { return w.inner.Name() }

// Identity implements llm.Identifier by forwarding the inner identity:
// caching does not change the answer function.
func (w *cachingPredictor) Identity() string { return llm.IdentityOf(w.inner) }

// Query implements llm.Predictor with a read-through cache.
func (w *cachingPredictor) Query(promptText string) (llm.Response, error) {
	k := KeyOf(w.ns, promptText)
	if resp, ok := w.cache.Get(k); ok {
		return resp, nil
	}
	resp, err := w.inner.Query(promptText)
	if err != nil {
		return resp, err
	}
	if perr := w.cache.Put(k, resp); perr != nil {
		// A full disk must not fail the query: the answer is correct,
		// only its persistence is lost.
		return resp, nil
	}
	return resp, nil
}

// cachingCtxPredictor keeps the cancelable path of context-aware inner
// predictors.
type cachingCtxPredictor struct {
	*cachingPredictor
	cp llm.ContextPredictor
}

// QueryContext implements llm.ContextPredictor with the same
// read-through behaviour as Query, plus tracing: the lookup gets a
// child span (result=hit|miss), and hits charge the request's ledger
// under the cache stage — unbilled, because the enclosing server
// handler bills the whole serve to the predict stage and the ledger
// must not count the same request twice.
func (w *cachingCtxPredictor) QueryContext(ctx context.Context, promptText string) (llm.Response, error) {
	k := KeyOf(w.ns, promptText)
	start := time.Now()
	_, sp := obs.StartSpanCtx(ctx, w.cache.rec, "cache.lookup")
	if resp, ok := w.cache.Get(k); ok {
		sp.SetAttr("result", "hit")
		sp.End()
		obs.Charge(ctx, obs.StageCache, time.Since(start), resp.InputTokens+resp.OutputTokens, false)
		return resp, nil
	}
	sp.SetAttr("result", "miss")
	sp.End()
	resp, err := w.cp.QueryContext(ctx, promptText)
	if err != nil {
		return resp, err
	}
	_ = w.cache.Put(k, resp)
	return resp, nil
}
