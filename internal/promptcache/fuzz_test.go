package promptcache

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/llm"
)

// FuzzSegmentReplay hardens crash recovery against arbitrary segment
// contents: any byte string — valid segments, truncations thereof,
// bit-flipped records, pure garbage — must replay without panicking,
// must recover exactly the records whose framing and checksum validate,
// and must leave the reopened shard appendable. This is the kill -9
// contract: whatever state a crash leaves on disk, Open never corrupts
// or loses checksum-valid data.
func FuzzSegmentReplay(f *testing.F) {
	rec := func(ns, p, cat, text string) []byte {
		return encodeRecord(KeyOf(ns, p), time.Unix(1000, 0), kindPut,
			llm.Response{Text: text, Category: cat, InputTokens: 5, OutputTokens: 2})
	}
	one := rec("ns", "a", "K", "Category: ['K']")
	two := append(append([]byte{}, one...), rec("ns", "b", "L", "Category: ['L']")...)
	tomb := encodeRecord(KeyOf("ns", "a"), time.Unix(2000, 0), kindTombstone, llm.Response{})

	f.Add([]byte{})
	f.Add(one)
	f.Add(two)
	f.Add(two[:len(two)-3]) // torn tail
	f.Add(append(append([]byte{}, two...), tomb...))
	f.Add([]byte("not a segment at all"))
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	mut := append([]byte{}, two...)
	mut[len(one)+recordHeaderSize+10] ^= 0x01 // corrupt second record's payload
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, good := replay(data)
		if good < 0 || good > int64(len(data)) {
			t.Fatalf("good offset %d outside [0,%d]", good, len(data))
		}
		// The valid prefix must re-replay to the same records: replay is
		// deterministic and self-delimiting.
		again, againGood := replay(data[:good])
		if againGood != good || len(again) != len(recs) {
			t.Fatalf("prefix replay diverged: %d/%d records, offset %d/%d",
				len(again), len(recs), againGood, good)
		}

		// Opening a cache over this exact byte string must never panic,
		// must surface every checksum-valid put not superseded by a later
		// record, and must stay writable.
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "seg-00.log"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		c, err := Open(dir, Config{Shards: 1})
		if err != nil {
			t.Fatalf("Open on fuzzed segment: %v", err)
		}
		defer c.Close()

		want := map[Key]record{}
		for _, r := range recs {
			if r.kind == kindTombstone {
				delete(want, r.key)
				continue
			}
			want[r.key] = r
		}
		if got := c.Len(); got != int64(len(want)) {
			t.Fatalf("recovered %d entries, want %d", got, len(want))
		}
		for k, r := range want {
			got, ok := c.Get(k)
			if !ok {
				t.Fatalf("checksum-valid record %x lost", k[:4])
			}
			if got != r.resp {
				t.Fatalf("record %x corrupted: got %+v want %+v", k[:4], got, r.resp)
			}
		}

		// The shard must accept appends after recovery, and the append
		// must survive another reopen together with the recovered set.
		extra := KeyOf("fuzz", "post-recovery")
		if err := c.Put(extra, llm.Response{Text: "x", Category: "X", InputTokens: 1, OutputTokens: 1}); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		c.Close()
		c2, err := Open(dir, Config{Shards: 1})
		if err != nil {
			t.Fatalf("reopen after append: %v", err)
		}
		defer c2.Close()
		if _, ok := c2.Get(extra); !ok {
			t.Fatal("post-recovery append lost on reopen")
		}
		for k := range want {
			if _, ok := c2.Get(k); !ok && k != extra {
				t.Fatalf("recovered record %x lost after append+reopen", k[:4])
			}
		}
	})
}
