package cliflags

import (
	"flag"
	"io"
	"sort"
	"testing"
	"time"
)

// TestRegisterParses drives every shared flag through a real FlagSet
// and checks the parsed values land in the struct.
func TestRegisterParses(t *testing.T) {
	var e Exec
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	e.Register(fs)
	args := []string{
		"-workers", "8", "-qps", "2.5", "-query-timeout", "250ms",
		"-breaker", "3", "-breaker-cooldown", "5s",
		"-replicas", "4", "-hedge", "-hedge-after", "20ms",
		"-cache-dir", "/tmp/c", "-cache-max-bytes", "1024", "-cache-ttl", "1h",
		"-trace-sample", "0.25", "-slo-latency-p99", "750ms",
	}
	if err := fs.Parse(args); err != nil {
		t.Fatalf("Parse(%v): %v", args, err)
	}
	want := Exec{
		Workers: 8, QPS: 2.5, QueryTimeout: 250 * time.Millisecond,
		Breaker: 3, BreakerCooldown: 5 * time.Second,
		Replicas: 4, Hedge: true, HedgeAfter: 20 * time.Millisecond,
		CacheDir: "/tmp/c", CacheMaxBytes: 1024, CacheTTL: time.Hour,
		TraceSample: 0.25, SLOLatencyP99: 750 * time.Millisecond,
	}
	if e != want {
		t.Errorf("parsed %+v, want %+v", e, want)
	}
	bc := e.BreakerConfig()
	if bc.Threshold != 3 || bc.Cooldown != 5*time.Second {
		t.Errorf("BreakerConfig() = %+v", bc)
	}
}

// TestNamesMatchesRegister pins Names() to the flags Register actually
// installs — the list the CLI parity test trusts.
func TestNamesMatchesRegister(t *testing.T) {
	var e Exec
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	e.Register(fs)
	var installed []string
	fs.VisitAll(func(f *flag.Flag) { installed = append(installed, f.Name) })
	sort.Strings(installed)
	names := Names()
	sort.Strings(names)
	if len(installed) != len(names) {
		t.Fatalf("Register installs %v, Names() says %v", installed, names)
	}
	for i := range names {
		if names[i] != installed[i] {
			t.Fatalf("Register installs %v, Names() says %v", installed, names)
		}
	}
}

// TestDefaults pins the zero-config behaviour: serial execution, no
// breaker, a single replica, no hedging, no cache, full trace
// sampling, no SLO.
func TestDefaults(t *testing.T) {
	var e Exec
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	e.Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	want := Exec{Workers: 1, Replicas: 1, TraceSample: 1}
	if e != want {
		t.Errorf("defaults = %+v, want %+v", e, want)
	}
}
