// Package cliflags defines the execution-layer flag group shared by
// the mqorun and mqobench commands: concurrency, rate limiting,
// per-query deadlines, the circuit breaker, the replica pool and the
// persistent prompt cache. Registering one group from one place keeps
// the two CLIs' flags in lockstep — mqobench once silently lacked the
// -breaker flags mqorun had, and the parity test over Names() makes
// that class of drift a test failure instead of a support question.
package cliflags

import (
	"flag"

	"time"

	"repro/internal/batch"
	"repro/internal/obs"
	"repro/internal/prompt"
)

// Exec holds the shared execution flags after parsing.
type Exec struct {
	Workers         int
	QPS             float64
	QueryTimeout    time.Duration
	Breaker         int
	BreakerCooldown time.Duration
	Replicas        int
	Hedge           bool
	HedgeAfter      time.Duration
	Affinity        bool
	CacheDir        string
	CacheMaxBytes   int64
	CacheTTL        time.Duration
	Compress        int
	TargetTokens    int
	TraceSample     float64
	SLOLatencyP99   time.Duration
}

// Register installs the shared flag group on fs. Call before
// fs.Parse; the receiver's fields carry the parsed values afterwards.
func (e *Exec) Register(fs *flag.FlagSet) {
	fs.IntVar(&e.Workers, "workers", 1, "concurrent LLM queries (results are identical for any value)")
	fs.Float64Var(&e.QPS, "qps", 0, "max queries per second across all workers (0 = unlimited)")
	fs.DurationVar(&e.QueryTimeout, "query-timeout", 0, "per-query deadline; hung calls are abandoned (0 = none)")
	fs.IntVar(&e.Breaker, "breaker", 0, "consecutive transient failures that open the circuit breaker (0 = disabled)")
	fs.DurationVar(&e.BreakerCooldown, "breaker-cooldown", 0, "how long the breaker stays open before probing (0 = 30s default)")
	fs.IntVar(&e.Replicas, "replicas", 1, "replica slots in the predictor pool; > 1 enables health-aware routing with one breaker per replica")
	fs.BoolVar(&e.Hedge, "hedge", false, "race a second replica when the first outlives -hedge-after (needs -replicas > 1)")
	fs.DurationVar(&e.HedgeAfter, "hedge-after", 0, "hedge trigger delay (0 = 50ms default)")
	fs.BoolVar(&e.Affinity, "affinity", false, "route each prompt to its cache-affine replica (rendezvous over prompt-cache keys; falls back to P2C when the owner is ejected or overloaded; needs -replicas > 1)")
	fs.StringVar(&e.CacheDir, "cache-dir", "", "persistent prompt-cache directory (empty = no disk cache)")
	fs.Int64Var(&e.CacheMaxBytes, "cache-max-bytes", 0, "prompt-cache byte budget across shards (0 = unbounded)")
	fs.DurationVar(&e.CacheTTL, "cache-ttl", 0, "prompt-cache entry lifetime (0 = never expires)")
	fs.IntVar(&e.Compress, "compress", 0, "prompt-compression level 1..3: rank abstract spans by signal density and keep at most 4/2/1 per abstract (0 = off; versions the prompt-cache namespace)")
	fs.IntVar(&e.TargetTokens, "target-tokens", 0, "per-query compressed token budget; sparsest spans keep dropping until each prompt fits (0 = level caps only; implies -compress 1)")
	fs.Float64Var(&e.TraceSample, "trace-sample", 1, "fraction of query traces recorded with span trees and ledgers (0 = none, 1 = all)")
	fs.DurationVar(&e.SLOLatencyP99, "slo-latency-p99", 0, "per-query p99 latency objective for the SLO engine (0 = disabled)")
}

// Names lists every flag Register installs. The CLI parity test
// asserts each command's usage text mentions all of them.
func Names() []string {
	return []string{
		"workers", "qps", "query-timeout",
		"breaker", "breaker-cooldown",
		"replicas", "hedge", "hedge-after", "affinity",
		"cache-dir", "cache-max-bytes", "cache-ttl",
		"compress", "target-tokens",
		"trace-sample", "slo-latency-p99",
	}
}

// Compressor lowers the compression flags into the prompt stage's
// configuration; the zero flags produce the disabled zero Compressor.
func (e *Exec) Compressor() prompt.Compressor {
	return prompt.Compressor{Level: e.Compress, TargetTokens: e.TargetTokens}
}

// ApplyObs lowers the tracing/SLO flags onto a registry: the sampling
// rate always, the SLO only when an objective is set (the engine stays
// unconfigured otherwise and /debug/slo reports so).
func (e *Exec) ApplyObs(r *obs.Registry) {
	if r == nil {
		return
	}
	r.SetTraceSample(e.TraceSample)
	if e.SLOLatencyP99 > 0 {
		r.SetSLO(obs.SLO{Name: "query_latency_p99", Objective: e.SLOLatencyP99, Percentile: 0.99})
	}
}

// BreakerConfig lowers the breaker flags into the batch configuration.
func (e *Exec) BreakerConfig() batch.BreakerConfig {
	return batch.BreakerConfig{Threshold: e.Breaker, Cooldown: e.BreakerCooldown}
}
