package cliflags

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/load"
)

// Load holds the load-harness flag group after parsing: how mqoload
// picks its scenario, where it drives it, and which gates turn an
// observation into an exit code.
type Load struct {
	ScenarioPath    string
	Preset          string
	Target          string
	Out             string
	Seed            uint64
	Requests        int
	Rate            float64
	RequireSLO      bool
	MaxDecodeErrors float64
}

// Register installs the load flag group on fs. Call before fs.Parse;
// the receiver's fields carry the parsed values afterwards.
func (l *Load) Register(fs *flag.FlagSet) {
	fs.StringVar(&l.ScenarioPath, "scenario", "", "scenario JSON file to run (mutually exclusive with -preset)")
	fs.StringVar(&l.Preset, "preset", "", "built-in scenario to run ("+strings.Join(load.PresetNames(), ", ")+")")
	fs.StringVar(&l.Target, "target", "", "base URL of a running llmserve to drive; empty runs an in-process serving tier")
	fs.StringVar(&l.Out, "out", "", "append the report as one JSON line to this file (the BENCH_load.json trajectory)")
	fs.Uint64Var(&l.Seed, "seed", 0, "override the scenario's seed (0 = keep)")
	fs.IntVar(&l.Requests, "requests", 0, "override the scenario's request count (0 = keep)")
	fs.Float64Var(&l.Rate, "rate", 0, "override the scenario's arrival rate per second (0 = keep)")
	fs.BoolVar(&l.RequireSLO, "require-slo", false, "exit nonzero when the SLO verdict fails or the client/server verdicts disagree")
	fs.Float64Var(&l.MaxDecodeErrors, "max-decode-errors", 1, "exit nonzero when the decode-error share exceeds this fraction (1 = never)")
}

// LoadNames lists every flag Register installs, for the CLI
// usage-parity test.
func LoadNames() []string {
	return []string{
		"scenario", "preset", "target", "out", "seed",
		"requests", "rate", "require-slo", "max-decode-errors",
	}
}

// Scenario resolves the flag group into the scenario to run: exactly
// one of -scenario or -preset, with the -seed/-requests/-rate
// overrides applied and re-validated.
func (l *Load) Scenario() (load.Scenario, error) {
	var sc load.Scenario
	switch {
	case l.ScenarioPath != "" && l.Preset != "":
		return sc, fmt.Errorf("-scenario and -preset are mutually exclusive")
	case l.ScenarioPath != "":
		data, err := os.ReadFile(l.ScenarioPath)
		if err != nil {
			return sc, err
		}
		sc, err = load.ParseScenario(data)
		if err != nil {
			return sc, err
		}
	case l.Preset != "":
		var ok bool
		sc, ok = load.PresetByName(l.Preset)
		if !ok {
			return sc, fmt.Errorf("unknown preset %q (have %s)",
				l.Preset, strings.Join(load.PresetNames(), ", "))
		}
	default:
		return sc, fmt.Errorf("one of -scenario or -preset is required")
	}
	if l.Seed != 0 {
		sc.Seed = l.Seed
	}
	if l.Requests != 0 {
		sc.Requests = l.Requests
	}
	if l.Rate != 0 {
		sc.Arrival.RatePerSec = l.Rate
	}
	if err := sc.Validate(); err != nil {
		return sc, err
	}
	return sc, nil
}
