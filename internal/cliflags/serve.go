package cliflags

import (
	"flag"
	"time"

	"repro/internal/core"
	"repro/internal/prompt"
	"repro/internal/serve"
)

// Serve holds the online-serving flag group after parsing. It is the
// flag surface of internal/serve: llmserve registers it to expose
// POST /v1/query, and the lowered serve.Config keeps the CLI and the
// library defaults in lockstep the same way Exec does for execution.
type Serve struct {
	Enabled      bool
	Window       time.Duration
	MaxQueue     int
	RetryAfter   time.Duration
	TenantBudget int
	Method       string
	Labeled      int
	M            int
	Workers      int
	Compress     int
	TargetTokens int
}

// Register installs the serving flag group on fs. Call before
// fs.Parse; the receiver's fields carry the parsed values afterwards.
func (s *Serve) Register(fs *flag.FlagSet) {
	fs.BoolVar(&s.Enabled, "serve", false, "expose the online multi-tenant query tier at POST /v1/query")
	fs.DurationVar(&s.Window, "batch-window", serve.DefaultWindow, "micro-batching window: concurrent queries arriving within it coalesce into one shared MQO plan")
	fs.IntVar(&s.MaxQueue, "serve-queue", serve.DefaultMaxQueue, "admission-queue high-water mark; requests past it are rejected with 429 + Retry-After")
	fs.DurationVar(&s.RetryAfter, "serve-retry-after", serve.DefaultRetryAfter, "Retry-After hint attached to backpressure rejections")
	fs.IntVar(&s.TenantBudget, "serve-tenant-budget", 0, "per-tenant delivered-token quota; over-budget tenants are rejected with 429 (0 = unlimited)")
	fs.StringVar(&s.Method, "serve-method", "sns", "neighbor-selection method behind /v1/query (vanilla, 1-hop, 2-hop, sns)")
	fs.IntVar(&s.Labeled, "serve-labeled", 20, "labeled nodes per class seeding the serving context")
	fs.IntVar(&s.M, "serve-m", 4, "neighbors included per prompt by the serving tier")
	fs.IntVar(&s.Workers, "serve-workers", 4, "concurrent LLM queries per coalesced window")
	// Same flag names as the Exec group on purpose: no command registers
	// both groups (llmserve owns its exec-ish flags itself), and keeping
	// one spelling means scenarios, docs and muscle memory transfer.
	fs.IntVar(&s.Compress, "compress", 0, "prompt-compression level 1..3 applied inside the micro-batch window (0 = off; versions the prompt-cache namespace)")
	fs.IntVar(&s.TargetTokens, "target-tokens", 0, "per-query compressed token budget for served prompts (0 = level caps only; implies -compress 1)")
}

// ServeNames lists every flag Serve.Register installs, for the same
// usage-parity testing Names() gives the execution group.
func ServeNames() []string {
	return []string{
		"serve", "batch-window", "serve-queue", "serve-retry-after",
		"serve-tenant-budget", "serve-method", "serve-labeled",
		"serve-m", "serve-workers", "compress", "target-tokens",
	}
}

// Config lowers the flag group into the serve-tier configuration.
// Exec carries only the window-execution knobs the group owns; callers
// layer caches, pools or fallbacks on top before serve.New.
func (s *Serve) Config() serve.Config {
	return serve.Config{
		Window:       s.Window,
		MaxQueue:     s.MaxQueue,
		RetryAfter:   s.RetryAfter,
		TenantBudget: s.TenantBudget,
		Exec: core.ExecConfig{
			Workers:  s.Workers,
			Cache:    true,
			Compress: prompt.Compressor{Level: s.Compress, TargetTokens: s.TargetTokens},
		},
	}
}
