package cliflags

import (
	"flag"
	"io"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// TestLoadNamesMatchesRegister pins LoadNames() to the flags
// Load.Register actually installs.
func TestLoadNamesMatchesRegister(t *testing.T) {
	var l Load
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	l.Register(fs)
	var installed []string
	fs.VisitAll(func(f *flag.Flag) { installed = append(installed, f.Name) })
	sort.Strings(installed)
	names := LoadNames()
	sort.Strings(names)
	if len(installed) != len(names) {
		t.Fatalf("Register installs %v, LoadNames() says %v", installed, names)
	}
	for i := range names {
		if names[i] != installed[i] {
			t.Fatalf("Register installs %v, LoadNames() says %v", installed, names)
		}
	}
}

// TestLoadScenarioResolution covers the preset path, the file path, and
// the override knobs re-validating the result.
func TestLoadScenarioResolution(t *testing.T) {
	parse := func(t *testing.T, args ...string) Load {
		t.Helper()
		var l Load
		fs := flag.NewFlagSet("test", flag.ContinueOnError)
		fs.SetOutput(io.Discard)
		l.Register(fs)
		if err := fs.Parse(args); err != nil {
			t.Fatal(err)
		}
		return l
	}

	l := parse(t, "-preset", "smoke", "-seed", "9", "-requests", "7", "-rate", "12.5")
	sc, err := l.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if sc.Seed != 9 || sc.Requests != 7 || sc.Arrival.RatePerSec != 12.5 {
		t.Errorf("overrides not applied: %+v", sc)
	}

	path := filepath.Join(t.TempDir(), "sc.json")
	doc := []byte(`{"name": "f", "requests": 3,
		"arrival": {"process": "poisson", "rate_per_sec": 5},
		"tenants": {"count": 1}}`)
	if err := os.WriteFile(path, doc, 0o644); err != nil {
		t.Fatal(err)
	}
	l = parse(t, "-scenario", path)
	if sc, err = l.Scenario(); err != nil || sc.Name != "f" {
		t.Errorf("file scenario: %+v, %v", sc, err)
	}

	// An override that invalidates the scenario must fail validation.
	l = parse(t, "-preset", "smoke", "-rate", "-1")
	if _, err := l.Scenario(); err == nil {
		t.Error("negative -rate override validated anyway")
	}
	empty := parse(t)
	if _, err := empty.Scenario(); err == nil {
		t.Error("no selection should error")
	}
}
