// Package infotheory implements the discrete information-theoretic
// quantities behind the paper's single-query analysis (Section IV):
// entropy, mutual information, conditional entropy, and the Partial
// Information Decomposition (PID) of I(t, N; y) into redundant, unique
// and synergistic terms (Eq. 3). The decomposition uses the
// Williams–Beer I_min redundancy measure, under which the paper's
// identities hold exactly:
//
//	I(t;y)   = R(t,N;y) + U(t\N;y)                   (Eq. 4)
//	IG^N     = U(N\t;y) + S(t,N;y)                   (Eq. 5)
//	IG^N    <= H(y) − I(t;y) = H(y|t)                (Eq. 6)
//
// All logarithms are base 2; results are in bits. Distributions are
// dense probability tables; estimate them from data with FromSamples.
package infotheory

import (
	"fmt"
	"math"
)

// log2 guards against log(0): the convention 0·log 0 = 0 is applied by
// callers checking p > 0 first.
func log2(x float64) float64 { return math.Log2(x) }

// Entropy returns H(p) = −Σ p log2 p for a probability vector. Entries
// must be non-negative; the vector is normalized internally so callers
// may pass raw counts.
func Entropy(p []float64) float64 {
	total := 0.0
	for _, v := range p {
		if v < 0 {
			return math.NaN()
		}
		total += v
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, v := range p {
		// Guard on the normalized value: if total overflowed to +Inf,
		// q underflows to 0 and must be skipped like any zero entry.
		if q := v / total; q > 0 {
			h -= q * log2(q)
		}
	}
	return h
}

// Joint2 is a joint distribution P(X, Y) over two discrete variables,
// stored as P[x][y]. Use NewJoint2 to allocate and Normalize before
// querying if the entries are counts.
type Joint2 struct {
	P [][]float64
}

// NewJoint2 allocates a zeroed |X|×|Y| table.
func NewJoint2(nx, ny int) *Joint2 {
	p := make([][]float64, nx)
	for i := range p {
		p[i] = make([]float64, ny)
	}
	return &Joint2{P: p}
}

// Normalize scales the table to sum to 1. A zero table is left alone.
func (j *Joint2) Normalize() {
	total := 0.0
	for _, row := range j.P {
		for _, v := range row {
			total += v
		}
	}
	if total == 0 {
		return
	}
	for _, row := range j.P {
		for y := range row {
			row[y] /= total
		}
	}
}

// MarginalX returns P(X).
func (j *Joint2) MarginalX() []float64 {
	m := make([]float64, len(j.P))
	for x, row := range j.P {
		for _, v := range row {
			m[x] += v
		}
	}
	return m
}

// MarginalY returns P(Y).
func (j *Joint2) MarginalY() []float64 {
	if len(j.P) == 0 {
		return nil
	}
	m := make([]float64, len(j.P[0]))
	for _, row := range j.P {
		for y, v := range row {
			m[y] += v
		}
	}
	return m
}

// MutualInformation returns I(X;Y) = Σ p(x,y) log2 p(x,y)/(p(x)p(y)).
// The table must be normalized.
func (j *Joint2) MutualInformation() float64 {
	px := j.MarginalX()
	py := j.MarginalY()
	mi := 0.0
	for x, row := range j.P {
		for y, v := range row {
			if v > 0 {
				mi += v * log2(v/(px[x]*py[y]))
			}
		}
	}
	if mi < 0 { // floating-point underflow guard; MI is non-negative
		return 0
	}
	return mi
}

// ConditionalEntropy returns H(Y|X) = H(X,Y) − H(X). The table must be
// normalized.
func (j *Joint2) ConditionalEntropy() float64 {
	flat := make([]float64, 0, len(j.P)*len(j.P[0]))
	for _, row := range j.P {
		flat = append(flat, row...)
	}
	h := Entropy(flat) - Entropy(j.MarginalX())
	if h < 0 {
		return 0
	}
	return h
}

// KLDivergence returns D_KL(p ‖ q) in bits. Both vectors are
// normalized internally. The result is +Inf when p places mass where q
// has none, and NaN on invalid input.
func KLDivergence(p, q []float64) float64 {
	if len(p) != len(q) {
		return math.NaN()
	}
	var sp, sq float64
	for i := range p {
		if p[i] < 0 || q[i] < 0 {
			return math.NaN()
		}
		sp += p[i]
		sq += q[i]
	}
	if sp == 0 || sq == 0 {
		return math.NaN()
	}
	d := 0.0
	for i := range p {
		pi := p[i] / sp
		if pi == 0 {
			continue
		}
		qi := q[i] / sq
		if qi == 0 {
			return math.Inf(1)
		}
		d += pi * log2(pi/qi)
	}
	if d < 0 { // floating-point cancellation guard; KL is non-negative
		return 0
	}
	return d
}

// JSDivergence returns the Jensen–Shannon divergence in bits: a
// symmetric, bounded ([0,1]) smoothing of KL. It is what the query
// scheduler's conflict intuition measures formally — how far apart two
// neighbor-label distributions are.
func JSDivergence(p, q []float64) float64 {
	if len(p) != len(q) {
		return math.NaN()
	}
	var sp, sq float64
	for i := range p {
		if p[i] < 0 || q[i] < 0 {
			return math.NaN()
		}
		sp += p[i]
		sq += q[i]
	}
	if sp == 0 || sq == 0 {
		return math.NaN()
	}
	mix := make([]float64, len(p))
	pn := make([]float64, len(p))
	qn := make([]float64, len(q))
	for i := range p {
		pn[i] = p[i] / sp
		qn[i] = q[i] / sq
		mix[i] = (pn[i] + qn[i]) / 2
	}
	return (KLDivergence(pn, mix) + KLDivergence(qn, mix)) / 2
}

// Validate checks that the table is a distribution within tolerance.
func (j *Joint2) Validate() error {
	total := 0.0
	for _, row := range j.P {
		for _, v := range row {
			if v < 0 || math.IsNaN(v) {
				return fmt.Errorf("infotheory: invalid probability %v", v)
			}
			total += v
		}
	}
	if math.Abs(total-1) > 1e-9 {
		return fmt.Errorf("infotheory: joint sums to %v, want 1", total)
	}
	return nil
}
