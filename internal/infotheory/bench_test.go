package infotheory

import "testing"

// BenchmarkDecompose measures a PID decomposition at the size the
// fig2 experiment uses (classes+1 codes per variable on Cora: 8×8×7).
func BenchmarkDecompose(b *testing.B) {
	j := randomJoint3(1, 8, 8, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := j.Decompose(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFromSamples measures joint estimation from 1,000 query
// outcomes.
func BenchmarkFromSamples(b *testing.B) {
	n := 1000
	ts, ns, ys := make([]int, n), make([]int, n), make([]int, n)
	for i := range ts {
		ts[i], ns[i], ys[i] = i%8, (i/3)%8, (i/7)%7
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := FromSamples(ts, ns, ys); err != nil {
			b.Fatal(err)
		}
	}
}
