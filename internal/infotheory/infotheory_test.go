package infotheory

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const tol = 1e-9

func almost(a, b float64) bool { return math.Abs(a-b) <= 1e-6 }

func TestEntropyKnownValues(t *testing.T) {
	cases := []struct {
		name string
		p    []float64
		want float64
	}{
		{"uniform binary", []float64{0.5, 0.5}, 1},
		{"deterministic", []float64{1, 0, 0}, 0},
		{"uniform 4", []float64{0.25, 0.25, 0.25, 0.25}, 2},
		{"unnormalized counts", []float64{2, 2}, 1},
		{"empty", nil, 0},
		{"all zero", []float64{0, 0}, 0},
	}
	for _, c := range cases {
		if got := Entropy(c.p); !almost(got, c.want) {
			t.Errorf("%s: Entropy = %v, want %v", c.name, got, c.want)
		}
	}
	if !math.IsNaN(Entropy([]float64{-0.5, 1.5})) {
		t.Error("negative probability should yield NaN")
	}
}

func TestEntropyBoundedByLog(t *testing.T) {
	f := func(raw []float64) bool {
		p := make([]float64, 0, len(raw))
		for _, v := range raw {
			p = append(p, math.Abs(v))
		}
		if len(p) == 0 {
			return true
		}
		h := Entropy(p)
		return h >= -tol && h <= math.Log2(float64(len(p)))+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMutualInformationIndependence(t *testing.T) {
	// Independent X, Y: I = 0.
	j := NewJoint2(2, 3)
	px := []float64{0.3, 0.7}
	py := []float64{0.2, 0.5, 0.3}
	for x := range j.P {
		for y := range j.P[x] {
			j.P[x][y] = px[x] * py[y]
		}
	}
	if got := j.MutualInformation(); !almost(got, 0) {
		t.Errorf("independent MI = %v, want 0", got)
	}
	if got := j.ConditionalEntropy(); !almost(got, Entropy(py)) {
		t.Errorf("H(Y|X) = %v, want H(Y) = %v", got, Entropy(py))
	}
}

func TestMutualInformationPerfectCopy(t *testing.T) {
	// Y = X uniform over 4 values: I = 2 bits, H(Y|X) = 0.
	j := NewJoint2(4, 4)
	for x := range j.P {
		j.P[x][x] = 0.25
	}
	if got := j.MutualInformation(); !almost(got, 2) {
		t.Errorf("copy MI = %v, want 2", got)
	}
	if got := j.ConditionalEntropy(); !almost(got, 0) {
		t.Errorf("copy H(Y|X) = %v, want 0", got)
	}
}

func TestJoint2NormalizeAndValidate(t *testing.T) {
	j := NewJoint2(2, 2)
	j.P[0][0], j.P[0][1], j.P[1][0], j.P[1][1] = 1, 2, 3, 4
	if err := j.Validate(); err == nil {
		t.Error("unnormalized table validated")
	}
	j.Normalize()
	if err := j.Validate(); err != nil {
		t.Errorf("normalized table failed: %v", err)
	}
	if got := j.P[1][1]; !almost(got, 0.4) {
		t.Errorf("P[1][1] = %v, want 0.4", got)
	}
}

// --- PID on analytically known gates --------------------------------

func uniformJoint3(f func(t, n int) int) *Joint3 {
	j := NewJoint3(2, 2, 2)
	for t := 0; t < 2; t++ {
		for n := 0; n < 2; n++ {
			j.P[t][n][f(t, n)] += 0.25
		}
	}
	return j
}

func TestPIDXorIsPureSynergy(t *testing.T) {
	p, err := uniformJoint3(func(a, b int) int { return a ^ b }).Decompose()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(p.Synergy, 1) || !almost(p.Redundant, 0) || !almost(p.UniqueT, 0) || !almost(p.UniqueN, 0) {
		t.Errorf("XOR PID = %+v, want pure 1-bit synergy", p)
	}
	if !almost(p.InformationGain(), 1) {
		t.Errorf("XOR IG = %v, want 1", p.InformationGain())
	}
}

func TestPIDCopyIsPureRedundancy(t *testing.T) {
	// T = N = Y uniform binary.
	j := NewJoint3(2, 2, 2)
	j.P[0][0][0] = 0.5
	j.P[1][1][1] = 0.5
	p, err := j.Decompose()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(p.Redundant, 1) || !almost(p.UniqueT, 0) || !almost(p.UniqueN, 0) || !almost(p.Synergy, 0) {
		t.Errorf("copy PID = %+v, want pure 1-bit redundancy", p)
	}
	// A redundant source adds no information gain — the saturated-node
	// case of the paper: H(y|t) = 0 forces IG = 0 (Eq. 6).
	if !almost(p.HYGivenT, 0) || !almost(p.InformationGain(), 0) {
		t.Errorf("copy: H(y|t)=%v IG=%v, want 0, 0", p.HYGivenT, p.InformationGain())
	}
}

func TestPIDUniqueSource(t *testing.T) {
	// Y = T; N independent fair coin: all information is unique to T.
	p, err := uniformJoint3(func(a, _ int) int { return a }).Decompose()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(p.UniqueT, 1) || !almost(p.Redundant, 0) || !almost(p.UniqueN, 0) || !almost(p.Synergy, 0) {
		t.Errorf("unique PID = %+v, want pure 1-bit UniqueT", p)
	}
}

func TestPIDAndGate(t *testing.T) {
	// AND gate: known Williams–Beer values R ≈ 0.311, U = 0,
	// S ≈ 0.5 bits (I(T,N;Y) ≈ 0.811).
	p, err := uniformJoint3(func(a, b int) int { return a & b }).Decompose()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Redundant-0.311) > 0.01 {
		t.Errorf("AND redundancy = %v, want ≈0.311", p.Redundant)
	}
	if !almost(p.UniqueT, p.UniqueN) {
		t.Errorf("AND unique terms differ: %v vs %v", p.UniqueT, p.UniqueN)
	}
	if math.Abs(p.Synergy-0.5) > 0.01 {
		t.Errorf("AND synergy = %v, want ≈0.5", p.Synergy)
	}
}

func TestDecomposeRejectsBadInput(t *testing.T) {
	j := NewJoint3(2, 2, 2)
	j.P[0][0][0] = 0.9 // sums to 0.9
	if _, err := j.Decompose(); err == nil {
		t.Error("unnormalized joint accepted")
	}
	j2 := NewJoint3(1, 1, 1)
	j2.P[0][0][0] = math.NaN()
	if _, err := j2.Decompose(); err == nil {
		t.Error("NaN joint accepted")
	}
}

// randomJoint3 builds a random normalized joint from a seed.
func randomJoint3(seed int64, nt, nn, ny int) *Joint3 {
	rng := rand.New(rand.NewSource(seed))
	j := NewJoint3(nt, nn, ny)
	for t := 0; t < nt; t++ {
		for n := 0; n < nn; n++ {
			for y := 0; y < ny; y++ {
				j.P[t][n][y] = rng.Float64()
			}
		}
	}
	j.Normalize()
	return j
}

// TestPIDPaperIdentities checks Eq. 4, Eq. 5 and Eq. 6 on random
// joints: the lattice identities and the information-gain bound.
func TestPIDPaperIdentities(t *testing.T) {
	f := func(seed int64) bool {
		j := randomJoint3(seed, 3, 4, 3)
		p, err := j.Decompose()
		if err != nil {
			return false
		}
		// Eq. 4: I(t;y) = R + U_T.
		if !almost(p.MIT, p.Redundant+p.UniqueT) {
			return false
		}
		// Symmetric identity: I(N;y) = R + U_N.
		if !almost(p.MIN, p.Redundant+p.UniqueN) {
			return false
		}
		// Eq. 3: total MI = R + U_T + U_N + S.
		if !almost(p.MITotal, p.Redundant+p.UniqueT+p.UniqueN+p.Synergy) {
			return false
		}
		// Eq. 5: IG = U_N + S.
		if !almost(p.InformationGain(), p.UniqueN+p.Synergy) {
			return false
		}
		// Eq. 6: IG <= H(y|t).
		if p.InformationGain() > p.HYGivenT+1e-6 {
			return false
		}
		// All terms non-negative under I_min.
		return p.Redundant >= -tol && p.UniqueT >= -tol && p.UniqueN >= -tol && p.Synergy >= -tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFromSamples(t *testing.T) {
	// Deterministic AND-gate samples reproduce the analytic PID.
	var ts, ns, ys []int
	for i := 0; i < 4000; i++ {
		a, b := i%2, (i/2)%2
		ts, ns, ys = append(ts, a), append(ns, b), append(ys, a&b)
	}
	j, err := FromSamples(ts, ns, ys)
	if err != nil {
		t.Fatal(err)
	}
	p, err := j.Decompose()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Synergy-0.5) > 0.01 {
		t.Errorf("sampled AND synergy = %v, want ≈0.5", p.Synergy)
	}

	if _, err := FromSamples([]int{1}, []int{1, 2}, []int{1}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := FromSamples(nil, nil, nil); err == nil {
		t.Error("empty samples accepted")
	}
	if _, err := FromSamples([]int{-1}, []int{0}, []int{0}); err == nil {
		t.Error("negative code accepted")
	}
}

func TestSpecificInformationAveragesToMI(t *testing.T) {
	// Σ_y p(y)·I(S; Y=y) = I(S; Y) — the Williams–Beer construction.
	f := func(seed int64) bool {
		j := randomJoint3(seed, 4, 2, 3)
		ty := j.JointTY()
		py := j.MarginalY()
		sum := 0.0
		for y, p := range py {
			sum += p * specificInformation(ty, y, p)
		}
		return almost(sum, ty.MutualInformation())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestJointMarginalsConsistent(t *testing.T) {
	j := randomJoint3(42, 3, 3, 4)
	sy := j.JointSourcesY()
	wantY := j.MarginalY()
	gotY := sy.MarginalY()
	for y := range wantY {
		if !almost(wantY[y], gotY[y]) {
			t.Fatalf("P(Y=%d) differs: %v vs %v", y, wantY[y], gotY[y])
		}
	}
	// Chain: I(t,N;y) >= max(I(t;y), I(N;y)).
	p, err := j.Decompose()
	if err != nil {
		t.Fatal(err)
	}
	if p.MITotal+1e-9 < p.MIT || p.MITotal+1e-9 < p.MIN {
		t.Errorf("total MI %v below a marginal MI (%v, %v)", p.MITotal, p.MIT, p.MIN)
	}
}
