package infotheory

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKLDivergenceKnownValues(t *testing.T) {
	// Identical distributions: 0.
	if got := KLDivergence([]float64{0.5, 0.5}, []float64{0.5, 0.5}); !almost(got, 0) {
		t.Errorf("KL(p‖p) = %v, want 0", got)
	}
	// p = (1,0), q = (0.5,0.5): KL = 1 bit.
	if got := KLDivergence([]float64{1, 0}, []float64{0.5, 0.5}); !almost(got, 1) {
		t.Errorf("KL = %v, want 1", got)
	}
	// Support mismatch: +Inf.
	if got := KLDivergence([]float64{0.5, 0.5}, []float64{1, 0}); !math.IsInf(got, 1) {
		t.Errorf("KL with unsupported mass = %v, want +Inf", got)
	}
	// Unnormalized inputs are normalized.
	if got := KLDivergence([]float64{2, 0}, []float64{3, 3}); !almost(got, 1) {
		t.Errorf("unnormalized KL = %v, want 1", got)
	}
	// Invalid inputs.
	if !math.IsNaN(KLDivergence([]float64{1}, []float64{0.5, 0.5})) {
		t.Error("length mismatch accepted")
	}
	if !math.IsNaN(KLDivergence([]float64{-1, 2}, []float64{0.5, 0.5})) {
		t.Error("negative mass accepted")
	}
	if !math.IsNaN(KLDivergence([]float64{0, 0}, []float64{0.5, 0.5})) {
		t.Error("zero distribution accepted")
	}
}

func TestJSDivergenceProperties(t *testing.T) {
	// Maximal for disjoint distributions: 1 bit.
	if got := JSDivergence([]float64{1, 0}, []float64{0, 1}); !almost(got, 1) {
		t.Errorf("disjoint JS = %v, want 1", got)
	}
	if got := JSDivergence([]float64{0.3, 0.7}, []float64{0.3, 0.7}); !almost(got, 0) {
		t.Errorf("JS(p‖p) = %v, want 0", got)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := make([]float64, 4)
		q := make([]float64, 4)
		for i := range p {
			p[i] = rng.Float64()
			q[i] = rng.Float64()
		}
		js := JSDivergence(p, q)
		// Symmetric, bounded in [0, 1], finite.
		if math.IsNaN(js) || js < -tol || js > 1+1e-9 {
			return false
		}
		return almost(js, JSDivergence(q, p))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// KL is non-negative on random distribution pairs (Gibbs' inequality).
func TestKLNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := make([]float64, 5)
		q := make([]float64, 5)
		for i := range p {
			p[i] = rng.Float64() + 1e-9
			q[i] = rng.Float64() + 1e-9
		}
		return KLDivergence(p, q) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
