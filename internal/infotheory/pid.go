package infotheory

import (
	"fmt"
	"math"
)

// Joint3 is a joint distribution P(T, N, Y) over the two source
// variables of the paper's analysis — the node's own text signal T and
// the neighbor-text signal N — and the target label Y. Stored as
// P[t][n][y].
type Joint3 struct {
	P [][][]float64
}

// NewJoint3 allocates a zeroed |T|×|N|×|Y| table.
func NewJoint3(nt, nn, ny int) *Joint3 {
	p := make([][][]float64, nt)
	for t := range p {
		p[t] = make([][]float64, nn)
		for n := range p[t] {
			p[t][n] = make([]float64, ny)
		}
	}
	return &Joint3{P: p}
}

// Normalize scales the table to sum to 1. A zero table is left alone.
func (j *Joint3) Normalize() {
	total := 0.0
	for _, pn := range j.P {
		for _, py := range pn {
			for _, v := range py {
				total += v
			}
		}
	}
	if total == 0 {
		return
	}
	for _, pn := range j.P {
		for _, py := range pn {
			for y := range py {
				py[y] /= total
			}
		}
	}
}

// dims returns the table's |T|, |N|, |Y|.
func (j *Joint3) dims() (nt, nn, ny int) {
	nt = len(j.P)
	if nt > 0 {
		nn = len(j.P[0])
		if nn > 0 {
			ny = len(j.P[0][0])
		}
	}
	return
}

// MarginalY returns P(Y).
func (j *Joint3) MarginalY() []float64 {
	_, _, ny := j.dims()
	m := make([]float64, ny)
	for _, pn := range j.P {
		for _, py := range pn {
			for y, v := range py {
				m[y] += v
			}
		}
	}
	return m
}

// JointTY marginalizes N away, returning P(T, Y).
func (j *Joint3) JointTY() *Joint2 {
	nt, _, ny := j.dims()
	out := NewJoint2(nt, ny)
	for t, pn := range j.P {
		for _, py := range pn {
			for y, v := range py {
				out.P[t][y] += v
			}
		}
	}
	return out
}

// JointNY marginalizes T away, returning P(N, Y).
func (j *Joint3) JointNY() *Joint2 {
	_, nn, ny := j.dims()
	out := NewJoint2(nn, ny)
	for _, pn := range j.P {
		for n, py := range pn {
			for y, v := range py {
				out.P[n][y] += v
			}
		}
	}
	return out
}

// JointSourcesY treats the source pair (T, N) as one composite variable
// and returns P((T,N), Y) — the table behind I(t, N; y).
func (j *Joint3) JointSourcesY() *Joint2 {
	nt, nn, ny := j.dims()
	out := NewJoint2(nt*nn, ny)
	for t, pn := range j.P {
		for n, py := range pn {
			for y, v := range py {
				out.P[t*nn+n][y] += v
			}
		}
	}
	return out
}

// PID is the Partial Information Decomposition of I(t, N; y) (Eq. 3):
//
//	I(t, N; y) = Redundant + UniqueT + UniqueN + Synergy
//
// computed with the Williams–Beer I_min redundancy. All terms are in
// bits and non-negative up to floating-point error.
type PID struct {
	// Redundant is R(t, N; y): information about y present in both
	// sources.
	Redundant float64
	// UniqueT is U(t\N; y): information only the node's own text
	// carries.
	UniqueT float64
	// UniqueN is U(N\t; y): information only the neighbor text carries.
	UniqueN float64
	// Synergy is S(t, N; y): information that emerges only from the
	// combination.
	Synergy float64

	// MIT is I(t; y), MIN is I(N; y), MITotal is I(t, N; y).
	MIT, MIN, MITotal float64
	// HY is H(y); HYGivenT is H(y|t), the paper's saturation criterion
	// (Definition 2: saturated ⇔ H(y|t) = 0) and the upper bound of
	// the information gain (Eq. 6).
	HY, HYGivenT float64
}

// InformationGain returns IG^N = I(t, N; y) − I(t; y), which equals
// UniqueN + Synergy (Eq. 5).
func (p PID) InformationGain() float64 { return p.MITotal - p.MIT }

// specificInformation returns I(S; Y=y) for one source given its joint
// with Y: Σ_s p(s|y) [log2(1/p(y)) − log2(1/p(y|s))].
func specificInformation(j *Joint2, y int, py float64) float64 {
	if py == 0 {
		return 0
	}
	ps := j.MarginalX()
	si := 0.0
	for s, row := range j.P {
		psy := row[y] // p(s, y)
		if psy == 0 {
			continue
		}
		pyGivenS := psy / ps[s]
		pSGivenY := psy / py
		si += pSGivenY * (log2(pyGivenS) - log2(py))
	}
	return si
}

// Decompose computes the Williams–Beer PID of the (normalized) joint.
// Redundancy is R = Σ_y p(y) · min_i I(S_i; Y=y); the remaining terms
// follow from the lattice identities, so Eq. 4 and Eq. 5 hold exactly.
func (j *Joint3) Decompose() (PID, error) {
	total := 0.0
	for _, pn := range j.P {
		for _, py := range pn {
			for _, v := range py {
				if v < 0 || math.IsNaN(v) {
					return PID{}, fmt.Errorf("infotheory: invalid probability %v", v)
				}
				total += v
			}
		}
	}
	if math.Abs(total-1) > 1e-9 {
		return PID{}, fmt.Errorf("infotheory: joint sums to %v, want 1 (call Normalize)", total)
	}

	ty := j.JointTY()
	ny := j.JointNY()
	sy := j.JointSourcesY()
	pidOut := PID{
		MIT:     ty.MutualInformation(),
		MIN:     ny.MutualInformation(),
		MITotal: sy.MutualInformation(),
	}
	pyDist := j.MarginalY()
	pidOut.HY = Entropy(pyDist)
	pidOut.HYGivenT = ty.ConditionalEntropy()

	red := 0.0
	for y, py := range pyDist {
		if py == 0 {
			continue
		}
		siT := specificInformation(ty, y, py)
		siN := specificInformation(ny, y, py)
		red += py * math.Min(siT, siN)
	}
	pidOut.Redundant = clampNonNeg(red)
	pidOut.UniqueT = clampNonNeg(pidOut.MIT - pidOut.Redundant)
	pidOut.UniqueN = clampNonNeg(pidOut.MIN - pidOut.Redundant)
	pidOut.Synergy = clampNonNeg(pidOut.MITotal - pidOut.Redundant - pidOut.UniqueT - pidOut.UniqueN)
	return pidOut, nil
}

// clampNonNeg zeroes tiny negative values produced by floating-point
// cancellation; genuinely negative PID terms cannot occur under I_min.
func clampNonNeg(x float64) float64 {
	if x < 0 && x > -1e-9 {
		return 0
	}
	return x
}

// FromSamples estimates the joint P(T, N, Y) from parallel sample
// slices; values must be non-negative small integers (category codes).
func FromSamples(t, n, y []int) (*Joint3, error) {
	if len(t) != len(n) || len(t) != len(y) {
		return nil, fmt.Errorf("infotheory: sample slices disagree: %d/%d/%d", len(t), len(n), len(y))
	}
	if len(t) == 0 {
		return nil, fmt.Errorf("infotheory: no samples")
	}
	maxOf := func(xs []int) (int, error) {
		m := 0
		for _, v := range xs {
			if v < 0 {
				return 0, fmt.Errorf("infotheory: negative category code %d", v)
			}
			if v > m {
				m = v
			}
		}
		return m, nil
	}
	mt, err := maxOf(t)
	if err != nil {
		return nil, err
	}
	mn, err := maxOf(n)
	if err != nil {
		return nil, err
	}
	my, err := maxOf(y)
	if err != nil {
		return nil, err
	}
	j := NewJoint3(mt+1, mn+1, my+1)
	inc := 1.0 / float64(len(t))
	for i := range t {
		j.P[t[i]][n[i]][y[i]] += inc
	}
	return j, nil
}
