package tablefmt

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := New("Demo", "name", "value")
	tb.AddRow("short", "1")
	tb.AddRow("muchlongername", "22")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Demo" {
		t.Fatalf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name") {
		t.Fatalf("header = %q", lines[1])
	}
	if !strings.Contains(lines[3], "short") || !strings.Contains(lines[4], "muchlongername") {
		t.Fatalf("rows wrong:\n%s", out)
	}
	// The value columns must be aligned.
	iv1 := strings.Index(lines[3], "1")
	iv2 := strings.Index(lines[4], "22")
	if iv1 != iv2 {
		t.Fatalf("columns not aligned: %d vs %d\n%s", iv1, iv2, out)
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := New("", "a", "b")
	tb.AddRow("x")
	tb.AddRow("y", "z", "extra")
	out := tb.String()
	if !strings.Contains(out, "extra") {
		t.Fatalf("extra cell dropped:\n%s", out)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
}

func TestF(t *testing.T) {
	if got := F(1.23456, 2); got != "1.23" {
		t.Fatalf("F = %q", got)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.725); got != "72.5" {
		t.Fatalf("Pct = %q", got)
	}
}

func TestPctDelta(t *testing.T) {
	if got := PctDelta(0.0028); got != "+0.28%" {
		t.Fatalf("PctDelta = %q", got)
	}
	if got := PctDelta(-0.0046); got != "-0.46%" {
		t.Fatalf("PctDelta = %q", got)
	}
}

func TestInt(t *testing.T) {
	cases := map[int64]string{
		0:          "0",
		42:         "42",
		1000:       "1,000",
		1234567:    "1,234,567",
		-9876543:   "-9,876,543",
		2692088554: "2,692,088,554",
	}
	for in, want := range cases {
		if got := Int(in); got != want {
			t.Fatalf("Int(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestRenderSeries(t *testing.T) {
	out := RenderSeries("Fig", []string{"0%", "20%"}, []Series{
		{Name: "ours", Y: []float64{0.9, 0.88}},
		{Name: "random", Y: []float64{0.9, 0.80}},
	}, 3)
	for _, want := range []string{"Fig", "ours", "random", "0.880", "0.800", "20%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("series output missing %q:\n%s", want, out)
		}
	}
}

func TestBar(t *testing.T) {
	out := Bar("Utilization", []string{"w/", "w/o"}, []float64{10, 5}, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("bar lines = %d", len(lines))
	}
	long := strings.Count(lines[1], "#")
	short := strings.Count(lines[2], "#")
	if long != 20 || short != 10 {
		t.Fatalf("bar scaling wrong: %d vs %d\n%s", long, short, out)
	}
}

func TestBarZeroValues(t *testing.T) {
	out := Bar("", []string{"a"}, []float64{0}, 10)
	if !strings.Contains(out, "0.000") {
		t.Fatalf("zero bar wrong: %q", out)
	}
}
