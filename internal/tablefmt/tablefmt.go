// Package tablefmt renders experiment results as aligned ASCII tables
// and simple line-series blocks, so every table and figure of the paper
// can be regenerated as text by cmd/mqobench and the benchmarks.
package tablefmt

import (
	"fmt"
	"strings"
)

// Table is a titled grid with a header row.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// New creates a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; missing cells render empty, extra cells extend
// the grid.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	cols := len(t.headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.headers)
	for _, r := range t.rows {
		measure(r)
	}

	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		// Trim trailing padding.
		s := b.String()
		trimmed := strings.TrimRight(s, " ")
		b.Reset()
		b.WriteString(trimmed)
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := 0
	for i, w := range widths {
		total += w
		if i > 0 {
			total += 2
		}
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// F formats a float with the given precision.
func F(v float64, prec int) string {
	return fmt.Sprintf("%.*f", prec, v)
}

// Pct formats a fraction as a percentage with one decimal.
func Pct(v float64) string {
	return fmt.Sprintf("%.1f", 100*v)
}

// PctDelta formats a relative change as a signed percentage with two
// decimals, as in the paper's Δ% rows.
func PctDelta(v float64) string {
	return fmt.Sprintf("%+.2f%%", 100*v)
}

// Int formats an integer with thousands separators, as in Table V.
func Int(n int64) string {
	neg := n < 0
	if neg {
		n = -n
	}
	s := fmt.Sprintf("%d", n)
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	out := strings.Join(parts, ",")
	if neg {
		out = "-" + out
	}
	return out
}

// Series is one named line in a figure.
type Series struct {
	Name string
	Y    []float64
}

// RenderSeries renders a figure as a grid: one column per x tick, one
// row per series, followed by a coarse ASCII plot per series.
func RenderSeries(title string, xs []string, series []Series, prec int) string {
	t := New(title, append([]string{"series"}, xs...)...)
	for _, s := range series {
		row := make([]string, 0, len(s.Y)+1)
		row = append(row, s.Name)
		for _, y := range s.Y {
			row = append(row, F(y, prec))
		}
		t.AddRow(row...)
	}
	return t.String()
}

// Bar renders a labeled horizontal bar chart scaled to width.
func Bar(title string, labels []string, values []float64, width int) string {
	if width <= 0 {
		width = 40
	}
	maxV := 0.0
	maxL := 0
	for i, v := range values {
		if a := abs(v); a > maxV {
			maxV = a
		}
		if len(labels[i]) > maxL {
			maxL = len(labels[i])
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	for i, v := range values {
		n := 0
		if maxV > 0 {
			n = int(abs(v) / maxV * float64(width))
		}
		mark := "#"
		if v < 0 {
			mark = "-"
		}
		fmt.Fprintf(&b, "%-*s | %s %.3f\n", maxL, labels[i], strings.Repeat(mark, n), v)
	}
	return b.String()
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
