package gnn

import (
	"math"
	"testing"

	"repro/internal/encode"
	"repro/internal/tag"
	"repro/internal/xrand"
)

// fixture generates a small Cora with features and a split.
func fixture(t testing.TB, seed uint64) (*tag.Graph, [][]float64, tag.Split) {
	t.Helper()
	spec, err := tag.SpecByName("cora")
	if err != nil {
		t.Fatal(err)
	}
	g := tag.Generate(spec, seed, tag.Options{Scale: 0.3})
	corpus := make([]string, g.NumNodes())
	for i := range corpus {
		corpus[i] = g.Text(tag.NodeID(i))
	}
	enc := encode.NewTFIDF(corpus, 256)
	x := make([][]float64, g.NumNodes())
	for i := range x {
		x[i] = enc.Encode(corpus[i])
	}
	split := g.SplitPerClass(xrand.New(seed+1), 20, 200)
	return g, x, split
}

func TestGCNLearnsBeyondChance(t *testing.T) {
	g, x, split := fixture(t, 1)
	m, err := TrainGCN(g, x, split.Labeled, GCNConfig{Epochs: 80, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	acc := m.Accuracy(g, split.Query)
	chance := 1.0 / float64(len(g.Classes))
	if acc < 3*chance {
		t.Errorf("GCN accuracy %.3f barely above chance %.3f", acc, chance)
	}
	// Training accuracy should be high on this easy synthetic graph.
	if trainAcc := m.Accuracy(g, split.Labeled); trainAcc < 0.9 {
		t.Errorf("training accuracy %.3f, want ≥0.9", trainAcc)
	}
}

func TestGCNProbsAreDistributions(t *testing.T) {
	g, x, split := fixture(t, 2)
	m, err := TrainGCN(g, x, split.Labeled, GCNConfig{Epochs: 20, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.NumNodes(); i += 17 {
		p := m.Probs(tag.NodeID(i))
		if len(p) != len(g.Classes) {
			t.Fatalf("node %d: %d probs for %d classes", i, len(p), len(g.Classes))
		}
		sum := 0.0
		for _, v := range p {
			if v < 0 || math.IsNaN(v) {
				t.Fatalf("node %d: invalid probability %v", i, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("node %d: probs sum to %v", i, sum)
		}
	}
}

func TestGCNDeterministic(t *testing.T) {
	g, x, split := fixture(t, 3)
	a, err := TrainGCN(g, x, split.Labeled, GCNConfig{Epochs: 15, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainGCN(g, x, split.Labeled, GCNConfig{Epochs: 15, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.NumNodes(); i++ {
		if a.Predict(tag.NodeID(i)) != b.Predict(tag.NodeID(i)) {
			t.Fatalf("node %d prediction diverged across identical trainings", i)
		}
	}
}

func TestGCNInputValidation(t *testing.T) {
	g, x, split := fixture(t, 4)
	if _, err := TrainGCN(g, x[:3], split.Labeled, GCNConfig{}); err == nil {
		t.Error("feature/node mismatch accepted")
	}
	if _, err := TrainGCN(g, x, nil, GCNConfig{}); err == nil {
		t.Error("empty labeled set accepted")
	}
}

func TestLabelPropBeatsChanceOnHomophilousGraph(t *testing.T) {
	g, _, split := fixture(t, 5)
	pred, err := LabelProp(g, split.Labeled, 30, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(pred) != g.NumNodes() {
		t.Fatalf("predicted %d nodes, want %d", len(pred), g.NumNodes())
	}
	ok := 0
	for _, v := range split.Query {
		if pred[v] == g.Nodes[v].Label {
			ok++
		}
	}
	acc := float64(ok) / float64(len(split.Query))
	chance := 1.0 / float64(len(g.Classes))
	if acc < 2*chance {
		t.Errorf("label propagation accuracy %.3f too close to chance %.3f", acc, chance)
	}
	// Seeds stay clamped.
	for _, v := range split.Labeled {
		if pred[v] != g.Nodes[v].Label {
			t.Fatalf("seed node %d lost its label", v)
		}
	}
}

func TestLabelPropValidation(t *testing.T) {
	g, _, split := fixture(t, 6)
	if _, err := LabelProp(g, nil, 10, 0.9); err == nil {
		t.Error("no seeds accepted")
	}
	if _, err := LabelProp(g, split.Labeled, 10, 1.5); err == nil {
		t.Error("alpha > 1 accepted")
	}
}

func TestAggregatorRowsAreNormalizedish(t *testing.T) {
	g, _, _ := fixture(t, 7)
	a := newAggregator(g)
	// Â row sums are ≤ 1 + small slack (exactly 1 for a regular graph);
	// weights are positive and include the self loop.
	for i := range a.idx {
		if a.idx[i][0] != int32(i) {
			t.Fatalf("row %d missing self loop first", i)
		}
		sum := 0.0
		for _, w := range a.weight[i] {
			if w <= 0 {
				t.Fatalf("row %d has non-positive weight", i)
			}
			sum += w
		}
		// Symmetric normalization bounds each entry by 1; a hub with
		// leaf neighbors can sum above 1 but never beyond its entry
		// count, and typical rows stay near 1.
		if sum <= 0 || sum > float64(len(a.weight[i])) {
			t.Fatalf("row %d sums to %v with %d entries", i, sum, len(a.weight[i]))
		}
	}
	// apply() on a constant vector stays positive and bounded by the
	// max row sum; the mean stays near 1 (diffusion conserves mass
	// approximately on a near-regular graph).
	n := g.NumNodes()
	ones := dense(n, 1)
	for i := range ones {
		ones[i][0] = 1
	}
	out := a.apply(ones)
	mean := 0.0
	for i := range out {
		if out[i][0] <= 0 {
			t.Fatalf("Â·1 at row %d = %v", i, out[i][0])
		}
		mean += out[i][0]
	}
	mean /= float64(n)
	if mean < 0.7 || mean > 1.3 {
		t.Fatalf("mean of Â·1 = %v, want ≈1", mean)
	}
}
