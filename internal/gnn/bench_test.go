package gnn

import "testing"

// BenchmarkTrainGCN measures a full training run on a quarter-scale
// Cora — the cost a GNN pays up front that the LLM paradigm avoids.
func BenchmarkTrainGCN(b *testing.B) {
	g, x, split := fixture(b, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TrainGCN(g, x, split.Labeled, GCNConfig{Epochs: 50, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLabelProp measures 30 propagation rounds.
func BenchmarkLabelProp(b *testing.B) {
	g, _, split := fixture(b, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LabelProp(g, split.Labeled, 30, 0.9); err != nil {
			b.Fatal(err)
		}
	}
}
