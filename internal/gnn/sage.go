package gnn

import (
	"fmt"
	"math"

	"repro/internal/tag"
	"repro/internal/xrand"
)

// GraphSAGE with mean aggregation (Hamilton et al., the paper's second
// representative GNN [36]): each layer combines a node's own
// representation with the mean of its neighbors' through separate
// weight matrices,
//
//	h' = ReLU(W_self·h + W_nb·mean_{u∈N(v)} h_u)
//
// trained full-batch with Adam on the labeled split. Unlike GCN's
// symmetric normalization, the mean aggregator is row-stochastic and
// therefore not symmetric; backprop uses its explicit transpose.

// meanAggregators builds the row-stochastic mean aggregator M
// (M[i][j] = 1/deg(i) for j ∈ N(i)) and its transpose, both in
// row-sparse form. Isolated nodes aggregate to the zero vector.
func meanAggregators(g *tag.Graph) (fwd, transpose *aggregator) {
	n := g.NumNodes()
	fwd = &aggregator{idx: make([][]int32, n), weight: make([][]float64, n)}
	transpose = &aggregator{idx: make([][]int32, n), weight: make([][]float64, n)}
	for i := 0; i < n; i++ {
		ns := g.Neighbors(tag.NodeID(i))
		if len(ns) == 0 {
			continue
		}
		w := 1 / float64(len(ns))
		for _, j := range ns {
			fwd.idx[i] = append(fwd.idx[i], int32(j))
			fwd.weight[i] = append(fwd.weight[i], w)
			transpose.idx[j] = append(transpose.idx[j], int32(i))
			transpose.weight[j] = append(transpose.weight[j], w)
		}
	}
	return fwd, transpose
}

// SAGE is a trained two-layer GraphSAGE-mean model with cached
// full-graph predictions.
type SAGE struct {
	probs   [][]float64
	classes int
}

// TrainSAGE trains on the labeled nodes and returns a model with
// cached predictions for every node. Configuration reuses GCNConfig
// (hidden width, LR, weight decay, epochs, seed).
func TrainSAGE(g *tag.Graph, x [][]float64, labeled []tag.NodeID, cfg GCNConfig) (*SAGE, error) {
	if len(x) != g.NumNodes() {
		return nil, fmt.Errorf("gnn: %d feature rows for %d nodes", len(x), g.NumNodes())
	}
	if len(labeled) == 0 {
		return nil, fmt.Errorf("gnn: no labeled nodes")
	}
	cfg = cfg.withDefaults()
	k := len(g.Classes)
	d := len(x[0])
	n := g.NumNodes()

	rng := xrand.New(cfg.Seed).SplitString("gnn/sage-init")
	initMat := func(r, c int) [][]float64 {
		w := dense(r, c)
		scale := math.Sqrt(2.0 / float64(r+c))
		for i := range w {
			for j := range w[i] {
				w[i][j] = scale * rng.NormFloat64()
			}
		}
		return w
	}
	wSelf1 := initMat(d, cfg.Hidden)
	wNb1 := initMat(d, cfg.Hidden)
	wSelf2 := initMat(cfg.Hidden, k)
	wNb2 := initMat(cfg.Hidden, k)
	opts := []*adam{
		newAdam(d, cfg.Hidden), newAdam(d, cfg.Hidden),
		newAdam(cfg.Hidden, k), newAdam(cfg.Hidden, k),
	}

	mAgg, mAggT := meanAggregators(g)
	s1 := mAgg.apply(x) // mean(X) is constant: hoist.
	invL := 1 / float64(len(labeled))

	var probs [][]float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		// Forward.
		z1 := matmul(x, wSelf1)
		z1b := matmul(s1, wNb1)
		h1 := dense(n, cfg.Hidden)
		for i := range z1 {
			for j := range z1[i] {
				if v := z1[i][j] + z1b[i][j]; v > 0 {
					h1[i][j] = v
				}
				z1[i][j] += z1b[i][j] // keep pre-activation for the mask
			}
		}
		s2 := mAgg.apply(h1)
		z2 := matmul(h1, wSelf2)
		z2b := matmul(s2, wNb2)
		probs = make([][]float64, n)
		for i := range z2 {
			for j := range z2[i] {
				z2[i][j] += z2b[i][j]
			}
			probs[i] = softmaxRow(z2[i])
		}

		// Backward.
		dZ2 := dense(n, k)
		for _, v := range labeled {
			i := int(v)
			copy(dZ2[i], probs[i])
			dZ2[i][g.Nodes[i].Label] -= 1
			for j := range dZ2[i] {
				dZ2[i][j] *= invL
			}
		}
		gWself2 := matmulT(h1, dZ2)
		gWnb2 := matmulT(s2, dZ2)
		dH1 := matmulBT(dZ2, wSelf2)
		dS2 := matmulBT(dZ2, wNb2)
		back := mAggT.apply(dS2)
		for i := range dH1 {
			for j := range dH1[i] {
				dH1[i][j] += back[i][j]
				if z1[i][j] <= 0 {
					dH1[i][j] = 0
				}
			}
		}
		gWself1 := matmulT(x, dH1)
		gWnb1 := matmulT(s1, dH1)

		opts[0].step(wSelf1, gWself1, cfg.LR, cfg.WeightDecay)
		opts[1].step(wNb1, gWnb1, cfg.LR, cfg.WeightDecay)
		opts[2].step(wSelf2, gWself2, cfg.LR, cfg.WeightDecay)
		opts[3].step(wNb2, gWnb2, cfg.LR, cfg.WeightDecay)
	}
	return &SAGE{probs: probs, classes: k}, nil
}

// Probs returns the class distribution predicted for node v.
func (m *SAGE) Probs(v tag.NodeID) []float64 { return m.probs[v] }

// Predict returns the argmax class for node v.
func (m *SAGE) Predict(v tag.NodeID) int {
	best, bestP := 0, m.probs[v][0]
	for c, p := range m.probs[v] {
		if p > bestP {
			best, bestP = c, p
		}
	}
	return best
}

// Accuracy scores the model on the given nodes against ground truth.
func (m *SAGE) Accuracy(g *tag.Graph, nodes []tag.NodeID) float64 {
	if len(nodes) == 0 {
		return 0
	}
	ok := 0
	for _, v := range nodes {
		if m.Predict(v) == g.Nodes[v].Label {
			ok++
		}
	}
	return float64(ok) / float64(len(nodes))
}
