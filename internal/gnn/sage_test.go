package gnn

import (
	"math"
	"testing"

	"repro/internal/tag"
)

func TestSAGELearnsBeyondChance(t *testing.T) {
	g, x, split := fixture(t, 8)
	m, err := TrainSAGE(g, x, split.Labeled, GCNConfig{Epochs: 80, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	acc := m.Accuracy(g, split.Query)
	chance := 1.0 / float64(len(g.Classes))
	if acc < 3*chance {
		t.Errorf("SAGE accuracy %.3f barely above chance %.3f", acc, chance)
	}
	if trainAcc := m.Accuracy(g, split.Labeled); trainAcc < 0.9 {
		t.Errorf("training accuracy %.3f, want ≥0.9", trainAcc)
	}
}

func TestSAGEProbsAreDistributions(t *testing.T) {
	g, x, split := fixture(t, 9)
	m, err := TrainSAGE(g, x, split.Labeled, GCNConfig{Epochs: 15, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.NumNodes(); i += 23 {
		p := m.Probs(tag.NodeID(i))
		sum := 0.0
		for _, v := range p {
			if v < 0 || math.IsNaN(v) {
				t.Fatalf("node %d: invalid probability %v", i, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("node %d: probs sum to %v", i, sum)
		}
	}
}

func TestSAGEDeterministicAndValidates(t *testing.T) {
	g, x, split := fixture(t, 10)
	a, err := TrainSAGE(g, x, split.Labeled, GCNConfig{Epochs: 10, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainSAGE(g, x, split.Labeled, GCNConfig{Epochs: 10, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.NumNodes(); i += 7 {
		if a.Predict(tag.NodeID(i)) != b.Predict(tag.NodeID(i)) {
			t.Fatalf("node %d diverged across identical trainings", i)
		}
	}
	if _, err := TrainSAGE(g, x[:1], split.Labeled, GCNConfig{}); err == nil {
		t.Error("feature/node mismatch accepted")
	}
	if _, err := TrainSAGE(g, x, nil, GCNConfig{}); err == nil {
		t.Error("empty labeled set accepted")
	}
}

// TestMeanAggregatorsAreTransposes verifies ⟨Mx, y⟩ = ⟨x, Mᵀy⟩ — the
// identity SAGE's backward pass depends on.
func TestMeanAggregatorsAreTransposes(t *testing.T) {
	g, _, _ := fixture(t, 11)
	fwd, tr := meanAggregators(g)
	n := g.NumNodes()
	x := dense(n, 1)
	y := dense(n, 1)
	for i := 0; i < n; i++ {
		x[i][0] = float64((i*37)%11) - 5
		y[i][0] = float64((i*17)%7) - 3
	}
	mx := fwd.apply(x)
	mty := tr.apply(y)
	var lhs, rhs float64
	for i := 0; i < n; i++ {
		lhs += mx[i][0] * y[i][0]
		rhs += x[i][0] * mty[i][0]
	}
	if math.Abs(lhs-rhs) > 1e-9*math.Max(1, math.Abs(lhs)) {
		t.Fatalf("⟨Mx,y⟩ = %v but ⟨x,Mᵀy⟩ = %v", lhs, rhs)
	}
}
