// Package gnn implements the graph-neural-network baselines the paper
// positions "LLMs as predictors" against (Fig. 1, Section II-A): a
// two-layer Graph Convolutional Network (Kipf & Welling) trained
// semi-supervised on encoded node features, and label propagation.
// Both consume the same TAG datasets and splits as the LLM pipeline,
// so the paradigms can be compared head to head on accuracy, training
// requirements and token cost (GNNs pay none, but must be trained per
// graph and cannot handle unseen label spaces).
//
// Everything is from scratch on the standard library: sparse
// symmetric-normalized adjacency, full-batch forward/backward, Adam.
package gnn

import (
	"fmt"
	"math"

	"repro/internal/tag"
	"repro/internal/xrand"
)

// aggregator holds the symmetric-normalized adjacency with self loops,
// Â = D^{-1/2}(A+I)D^{-1/2}, in row-sparse form.
type aggregator struct {
	idx    [][]int32
	weight [][]float64
}

// newAggregator builds Â for the graph.
func newAggregator(g *tag.Graph) *aggregator {
	n := g.NumNodes()
	deg := make([]float64, n)
	for i := 0; i < n; i++ {
		deg[i] = float64(g.Degree(tag.NodeID(i)) + 1) // +1: self loop
	}
	a := &aggregator{idx: make([][]int32, n), weight: make([][]float64, n)}
	for i := 0; i < n; i++ {
		ns := g.Neighbors(tag.NodeID(i))
		idx := make([]int32, 0, len(ns)+1)
		w := make([]float64, 0, len(ns)+1)
		idx = append(idx, int32(i))
		w = append(w, 1/deg[i])
		for _, j := range ns {
			idx = append(idx, int32(j))
			w = append(w, 1/math.Sqrt(deg[i]*deg[int(j)]))
		}
		a.idx[i] = idx
		a.weight[i] = w
	}
	return a
}

// apply computes Â·X for a dense n×d matrix.
func (a *aggregator) apply(x [][]float64) [][]float64 {
	n := len(a.idx)
	d := len(x[0])
	out := make([][]float64, n)
	flat := make([]float64, n*d)
	for i := 0; i < n; i++ {
		row := flat[i*d : (i+1)*d]
		for k, j := range a.idx[i] {
			w := a.weight[i][k]
			xj := x[j]
			for c := 0; c < d; c++ {
				row[c] += w * xj[c]
			}
		}
		out[i] = row
	}
	return out
}

// GCNConfig tunes training.
type GCNConfig struct {
	// Hidden is the hidden layer width (default 32).
	Hidden int
	// LR is the Adam learning rate (default 0.01).
	LR float64
	// WeightDecay is the L2 penalty (default 5e-4, the GCN paper's).
	WeightDecay float64
	// Epochs of full-batch training (default 100).
	Epochs int
	// Seed drives weight initialization.
	Seed uint64
}

// withDefaults fills zero fields.
func (c GCNConfig) withDefaults() GCNConfig {
	if c.Hidden <= 0 {
		c.Hidden = 32
	}
	if c.LR <= 0 {
		c.LR = 0.01
	}
	if c.WeightDecay < 0 {
		c.WeightDecay = 0
	} else if c.WeightDecay == 0 {
		c.WeightDecay = 5e-4
	}
	if c.Epochs <= 0 {
		c.Epochs = 100
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// GCN is a trained two-layer graph convolutional network with cached
// full-graph predictions.
type GCN struct {
	probs   [][]float64
	classes int
}

// dense allocates an r×c matrix.
func dense(r, c int) [][]float64 {
	flat := make([]float64, r*c)
	out := make([][]float64, r)
	for i := range out {
		out[i] = flat[i*c : (i+1)*c]
	}
	return out
}

// matmul computes X·W for X: n×d, W: d×h.
func matmul(x, w [][]float64) [][]float64 {
	n, d, h := len(x), len(w), len(w[0])
	out := dense(n, h)
	for i := 0; i < n; i++ {
		xi := x[i]
		oi := out[i]
		for k := 0; k < d; k++ {
			v := xi[k]
			if v == 0 {
				continue
			}
			wk := w[k]
			for c := 0; c < h; c++ {
				oi[c] += v * wk[c]
			}
		}
	}
	return out
}

// matmulT computes Xᵀ·G for X: n×d, G: n×h, result d×h.
func matmulT(x, g [][]float64) [][]float64 {
	n, d, h := len(x), len(x[0]), len(g[0])
	out := dense(d, h)
	for i := 0; i < n; i++ {
		xi := x[i]
		gi := g[i]
		for k := 0; k < d; k++ {
			v := xi[k]
			if v == 0 {
				continue
			}
			ok := out[k]
			for c := 0; c < h; c++ {
				ok[c] += v * gi[c]
			}
		}
	}
	return out
}

// matmulBT computes G·Wᵀ for G: n×h, W: d×h, result n×d.
func matmulBT(g, w [][]float64) [][]float64 {
	n, h, d := len(g), len(g[0]), len(w)
	out := dense(n, d)
	for i := 0; i < n; i++ {
		gi := g[i]
		oi := out[i]
		for k := 0; k < d; k++ {
			wk := w[k]
			s := 0.0
			for c := 0; c < h; c++ {
				s += gi[c] * wk[c]
			}
			oi[k] = s
		}
	}
	return out
}

// adam is one parameter matrix's optimizer state.
type adam struct {
	m, v [][]float64
	t    int
}

func newAdam(r, c int) *adam { return &adam{m: dense(r, c), v: dense(r, c)} }

func (a *adam) step(w, grad [][]float64, lr, decay float64) {
	a.t++
	b1, b2, eps := 0.9, 0.999, 1e-8
	c1 := 1 - math.Pow(b1, float64(a.t))
	c2 := 1 - math.Pow(b2, float64(a.t))
	for i := range w {
		for j := range w[i] {
			g := grad[i][j] + decay*w[i][j]
			a.m[i][j] = b1*a.m[i][j] + (1-b1)*g
			a.v[i][j] = b2*a.v[i][j] + (1-b2)*g*g
			w[i][j] -= lr * (a.m[i][j] / c1) / (math.Sqrt(a.v[i][j]/c2) + eps)
		}
	}
}

// TrainGCN trains on the labeled nodes and returns a model with cached
// predictions for every node. X must have one feature row per node.
func TrainGCN(g *tag.Graph, x [][]float64, labeled []tag.NodeID, cfg GCNConfig) (*GCN, error) {
	if len(x) != g.NumNodes() {
		return nil, fmt.Errorf("gnn: %d feature rows for %d nodes", len(x), g.NumNodes())
	}
	if len(labeled) == 0 {
		return nil, fmt.Errorf("gnn: no labeled nodes")
	}
	cfg = cfg.withDefaults()
	k := len(g.Classes)
	d := len(x[0])

	rng := xrand.New(cfg.Seed).SplitString("gnn/init")
	initMat := func(r, c int) [][]float64 {
		w := dense(r, c)
		scale := math.Sqrt(2.0 / float64(r+c)) // Glorot
		for i := range w {
			for j := range w[i] {
				w[i][j] = scale * rng.NormFloat64()
			}
		}
		return w
	}
	w1 := initMat(d, cfg.Hidden)
	w2 := initMat(cfg.Hidden, k)
	opt1 := newAdam(d, cfg.Hidden)
	opt2 := newAdam(cfg.Hidden, k)

	agg := newAggregator(g)
	s1 := agg.apply(x) // Â·X is constant across epochs: hoist it.
	invL := 1 / float64(len(labeled))

	n := g.NumNodes()
	var probs [][]float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		// Forward.
		z1 := matmul(s1, w1)
		h1 := dense(n, cfg.Hidden)
		for i := range z1 {
			for j, v := range z1[i] {
				if v > 0 {
					h1[i][j] = v
				}
			}
		}
		s2 := agg.apply(h1)
		z2 := matmul(s2, w2)
		probs = make([][]float64, n)
		for i := range z2 {
			probs[i] = softmaxRow(z2[i])
		}

		// Backward: cross-entropy over the labeled set only.
		dZ2 := dense(n, k)
		for _, v := range labeled {
			i := int(v)
			copy(dZ2[i], probs[i])
			dZ2[i][g.Nodes[i].Label] -= 1
			for j := range dZ2[i] {
				dZ2[i][j] *= invL
			}
		}
		gW2 := matmulT(s2, dZ2)
		dS2 := matmulBT(dZ2, w2)
		dH1 := agg.apply(dS2) // Â is symmetric
		for i := range dH1 {
			for j := range dH1[i] {
				if z1[i][j] <= 0 {
					dH1[i][j] = 0
				}
			}
		}
		gW1 := matmulT(s1, dH1)

		opt2.step(w2, gW2, cfg.LR, cfg.WeightDecay)
		opt1.step(w1, gW1, cfg.LR, cfg.WeightDecay)
	}
	return &GCN{probs: probs, classes: k}, nil
}

// softmaxRow is a numerically stable softmax.
func softmaxRow(z []float64) []float64 {
	max := z[0]
	for _, v := range z[1:] {
		if v > max {
			max = v
		}
	}
	out := make([]float64, len(z))
	sum := 0.0
	for i, v := range z {
		out[i] = math.Exp(v - max)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// Probs returns the class distribution predicted for node v.
func (m *GCN) Probs(v tag.NodeID) []float64 { return m.probs[v] }

// Predict returns the argmax class for node v.
func (m *GCN) Predict(v tag.NodeID) int {
	best, bestP := 0, m.probs[v][0]
	for c, p := range m.probs[v] {
		if p > bestP {
			best, bestP = c, p
		}
	}
	return best
}

// Accuracy scores the model on the given nodes against ground truth.
func (m *GCN) Accuracy(g *tag.Graph, nodes []tag.NodeID) float64 {
	if len(nodes) == 0 {
		return 0
	}
	ok := 0
	for _, v := range nodes {
		if m.Predict(v) == g.Nodes[v].Label {
			ok++
		}
	}
	return float64(ok) / float64(len(nodes))
}

// LabelProp runs label propagation: label distributions diffuse along
// Â for iters rounds with restart weight alpha toward the clamped
// labeled seeds, then each node takes the argmax. It is the simplest
// graph baseline — no features, no training.
func LabelProp(g *tag.Graph, labeled []tag.NodeID, iters int, alpha float64) ([]int, error) {
	if len(labeled) == 0 {
		return nil, fmt.Errorf("gnn: no labeled nodes")
	}
	if alpha <= 0 || alpha >= 1 {
		return nil, fmt.Errorf("gnn: alpha %v outside (0,1)", alpha)
	}
	if iters <= 0 {
		iters = 30
	}
	n := g.NumNodes()
	k := len(g.Classes)
	seed := dense(n, k)
	isSeed := make([]bool, n)
	for _, v := range labeled {
		seed[v][g.Nodes[v].Label] = 1
		isSeed[v] = true
	}
	agg := newAggregator(g)
	f := dense(n, k)
	for i := range f {
		copy(f[i], seed[i])
	}
	for it := 0; it < iters; it++ {
		nf := agg.apply(f)
		for i := range nf {
			for c := range nf[i] {
				nf[i][c] = alpha*nf[i][c] + (1-alpha)*seed[i][c]
			}
			if isSeed[i] {
				copy(nf[i], seed[i])
			}
		}
		f = nf
	}
	out := make([]int, n)
	for i := range f {
		best, bestP := 0, f[i][0]
		for c, p := range f[i] {
			if p > bestP {
				best, bestP = c, p
			}
		}
		out[i] = best
	}
	return out, nil
}
