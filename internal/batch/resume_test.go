package batch

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// TestCrashAndResume simulates the operational story: a batch dies
// when its token budget runs out, and the re-run replays the audit log
// so only the unfinished queries are billed again.
func TestCrashAndResume(t *testing.T) {
	p := newScripted()
	p.tokens = 100

	var logBuf bytes.Buffer
	all := reqs(10)

	// First run: budget covers only 4 of 10 queries.
	e1, err := New(p, Config{Workers: 1, BudgetTokens: 400, Log: &logBuf})
	if err != nil {
		t.Fatal(err)
	}
	res1, err := e1.Execute(context.Background(), all)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Skipped != 6 {
		t.Fatalf("first run skipped %d, want 6", res1.Skipped)
	}

	// Resume: replay the log, run only the remainder.
	done, err := ReplayLog(bytes.NewReader(logBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 4 {
		t.Fatalf("replay recovered %d outcomes, want 4", len(done))
	}
	todo, recovered := FilterDone(all, done)
	if len(todo) != 6 || len(recovered) != 4 {
		t.Fatalf("FilterDone: %d todo / %d recovered, want 6/4", len(todo), len(recovered))
	}
	for id, o := range recovered {
		if !o.Cached || o.Err != nil || o.Response.Category != "A" {
			t.Fatalf("recovered outcome %s corrupted: %+v", id, o)
		}
		if o.Response.InputTokens != 100 {
			t.Fatalf("recovered outcome %s lost usage: %+v", id, o.Response)
		}
	}

	callsBefore := p.total.Load()
	e2, err := New(p, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := e2.Execute(context.Background(), todo)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Failed != 0 || len(res2.Outcomes) != 6 {
		t.Fatalf("resume run: %+v", res2)
	}
	if got := p.total.Load() - callsBefore; got != 6 {
		t.Errorf("resume billed %d queries, want 6", got)
	}
}

func TestReplayLogSkipsFailuresAndRejectsGarbage(t *testing.T) {
	log := strings.Join([]string{
		`{"time":"t","id":"a","prompt_sha256":"x","input_tokens":5,"output_tokens":1,"category":"K","attempts":1}`,
		`{"time":"t","id":"b","prompt_sha256":"y","error":"boom","attempts":3}`,
		``,
		`{"time":"t","id":"c","prompt_sha256":"z","input_tokens":7,"output_tokens":2,"category":"L","attempts":2}`,
	}, "\n")
	done, err := ReplayLog(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 2 {
		t.Fatalf("recovered %d, want 2 (failure line must not count)", len(done))
	}
	if done["a"].Category != "K" || done["c"].OutputTokens != 2 {
		t.Errorf("recovered wrong payloads: %+v", done)
	}

	if _, err := ReplayLog(strings.NewReader("not json\n")); err == nil {
		t.Error("garbage line accepted")
	}
	if _, err := ReplayLog(strings.NewReader(`{"time":"t"}`)); err == nil {
		t.Error("line without ID accepted")
	}
}

func TestReplayLogLaterLineSupersedes(t *testing.T) {
	log := strings.Join([]string{
		`{"id":"a","prompt_sha256":"x","input_tokens":5,"category":"OLD","attempts":1}`,
		`{"id":"a","prompt_sha256":"x","input_tokens":6,"category":"NEW","attempts":1}`,
	}, "\n")
	done, err := ReplayLog(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	if done["a"].Category != "NEW" || done["a"].InputTokens != 6 {
		t.Errorf("later line did not supersede: %+v", done["a"])
	}
}
