package batch

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/llm"
	"repro/internal/obs"
	"repro/internal/promptcache"
)

func openCache(t *testing.T, cfg promptcache.Config) *promptcache.Cache {
	t.Helper()
	c, err := promptcache.Open(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestDiskTierServesSecondExecutor is the cache's reason to exist: a
// second executor over the same disk cache (a re-run of the same
// workload) pays zero predictor calls.
func TestDiskTierServesSecondExecutor(t *testing.T) {
	disk := openCache(t, promptcache.Config{})
	p := newScripted()
	e1, err := New(p, Config{Workers: 4, Disk: disk})
	if err != nil {
		t.Fatal(err)
	}
	all := reqs(50)
	res1, err := e1.Execute(context.Background(), all)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Failed != 0 || res1.CacheHits != 0 {
		t.Fatalf("cold run: %+v", res1)
	}
	if p.total.Load() != 50 {
		t.Fatalf("cold run paid %d calls, want 50", p.total.Load())
	}

	// Fresh executor, fresh memory tier: every answer must come from
	// disk, with token meters intact so accounting reproduces.
	e2, err := New(p, Config{Workers: 4, Disk: disk})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := e2.Execute(context.Background(), all)
	if err != nil {
		t.Fatal(err)
	}
	if p.total.Load() != 50 {
		t.Fatalf("warm run paid %d extra calls, want 0", p.total.Load()-50)
	}
	if res2.CacheHits != 50 || res2.Failed != 0 {
		t.Fatalf("warm run: %+v", res2)
	}
	for id, o := range res2.Outcomes {
		if !o.Cached || o.Err != nil {
			t.Fatalf("outcome %s not served from cache: %+v", id, o)
		}
		want := res1.Outcomes[id].Response
		if o.Response != want {
			t.Fatalf("outcome %s changed across runs: %+v vs %+v", id, o.Response, want)
		}
	}
}

// TestDiskTierSurvivesReopen: the warm run happens after the cache is
// closed and reopened, i.e. across a process restart.
func TestDiskTierSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	p := newScripted()
	disk, err := promptcache.Open(dir, promptcache.Config{})
	if err != nil {
		t.Fatal(err)
	}
	e1, err := New(p, Config{Disk: disk})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e1.Execute(context.Background(), reqs(10)); err != nil {
		t.Fatal(err)
	}
	if err := disk.Close(); err != nil {
		t.Fatal(err)
	}

	disk2, err := promptcache.Open(dir, promptcache.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer disk2.Close()
	e2, err := New(p, Config{Disk: disk2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e2.Execute(context.Background(), reqs(10))
	if err != nil {
		t.Fatal(err)
	}
	if p.total.Load() != 10 {
		t.Fatalf("restart re-paid %d calls", p.total.Load()-10)
	}
	if res.CacheHits != 10 {
		t.Fatalf("restart run: %+v", res)
	}
}

// TestDiskNamespaceSeparates: two executors over the same disk cache
// but different namespaces must not share answers.
func TestDiskNamespaceSeparates(t *testing.T) {
	disk := openCache(t, promptcache.Config{})
	p := newScripted()
	e1, _ := New(p, Config{Disk: disk, CacheNamespace: "model-a"})
	if _, err := e1.Execute(context.Background(), reqs(5)); err != nil {
		t.Fatal(err)
	}
	e2, _ := New(p, Config{Disk: disk, CacheNamespace: "model-b"})
	res, err := e2.Execute(context.Background(), reqs(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHits != 0 {
		t.Fatalf("namespace b hit namespace a's entries: %+v", res)
	}
	if p.total.Load() != 10 {
		t.Fatalf("total calls %d, want 10 (no cross-namespace sharing)", p.total.Load())
	}
}

// TestReconcileCacheNewerWins covers one half of satellite order: the
// audit log recorded a garbage-fault answer, a later retry wrote the
// corrected answer to the disk cache. The cache entry is newer and must
// win.
func TestReconcileCacheNewerWins(t *testing.T) {
	disk := openCache(t, promptcache.Config{})
	const ns = "ns"
	promptText := "who goes there"
	key := promptcache.KeyOf(ns, promptText)
	if err := disk.Put(key, llm.Response{Text: "Category: ['Good']", Category: "Good", InputTokens: 9, OutputTokens: 1}); err != nil {
		t.Fatal(err)
	}

	// The log line predates the cache write by decades.
	log := `{"time":"2001-01-01T00:00:00Z","id":"q1","prompt_sha256":"x","input_tokens":9,"output_tokens":1,"category":"Garbage","attempts":1}`
	recs, err := ReplayLogRecords(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	out := ReconcileWithCache(recs, map[string]string{"q1": promptText}, disk, ns)
	if out["q1"].Category != "Good" {
		t.Fatalf("stale log record won over newer cache: %+v", out["q1"])
	}
}

// TestReconcileLogNewerWinsAndRepairsCache covers the mirror order: the
// cache holds a stale answer (written before the log line), so the
// resume record wins and the cache is repaired in place.
func TestReconcileLogNewerWinsAndRepairsCache(t *testing.T) {
	disk := openCache(t, promptcache.Config{})
	const ns = "ns"
	promptText := "who goes there"
	key := promptcache.KeyOf(ns, promptText)
	if err := disk.Put(key, llm.Response{Text: "Category: ['Stale']", Category: "Stale", InputTokens: 9, OutputTokens: 1}); err != nil {
		t.Fatal(err)
	}

	// The log line postdates the cache write by decades.
	log := `{"time":"2101-01-01T00:00:00Z","id":"q1","prompt_sha256":"x","input_tokens":9,"output_tokens":1,"category":"Fresh","attempts":2}`
	recs, err := ReplayLogRecords(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	out := ReconcileWithCache(recs, map[string]string{"q1": promptText}, disk, ns)
	if out["q1"].Category != "Fresh" {
		t.Fatalf("newer log record lost to stale cache: %+v", out["q1"])
	}
	if repaired, ok := disk.Get(key); !ok || repaired.Category != "Fresh" {
		t.Fatalf("stale cache entry not repaired: %+v ok=%v", repaired, ok)
	}
}

// TestReconcileBackfillsAndPassesThrough: a cache miss is backfilled
// from the resume record; IDs without a prompt mapping (or a nil cache)
// pass through untouched.
func TestReconcileBackfillsAndPassesThrough(t *testing.T) {
	disk := openCache(t, promptcache.Config{})
	const ns = "ns"
	log := strings.Join([]string{
		`{"time":"2026-01-01T00:00:00Z","id":"q1","prompt_sha256":"x","input_tokens":5,"category":"K","attempts":1}`,
		`{"time":"2026-01-01T00:00:00Z","id":"q2","prompt_sha256":"y","input_tokens":5,"category":"L","attempts":1}`,
	}, "\n")
	recs, err := ReplayLogRecords(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	out := ReconcileWithCache(recs, map[string]string{"q1": "prompt one"}, disk, ns)
	if out["q1"].Category != "K" || out["q2"].Category != "L" {
		t.Fatalf("reconcile corrupted agreeing records: %+v", out)
	}
	if got, ok := disk.Get(promptcache.KeyOf(ns, "prompt one")); !ok || got.Category != "K" {
		t.Fatalf("cache not backfilled from resume record: %+v ok=%v", got, ok)
	}
	if disk.Len() != 1 {
		t.Fatalf("unmapped ID written to cache: %d entries", disk.Len())
	}

	nilOut := ReconcileWithCache(recs, map[string]string{"q1": "prompt one"}, nil, ns)
	if nilOut["q1"].Category != "K" || nilOut["q2"].Category != "L" {
		t.Fatalf("nil cache changed records: %+v", nilOut)
	}
}

// TestResumeAgainstCacheEndToEnd drives the full crash story with a
// disk tier: run one, crash (log kept, new process), reconcile, resume.
// The resume run must bill only the unfinished queries, and queries
// recovered from the log must also now be in the cache.
func TestResumeAgainstCacheEndToEnd(t *testing.T) {
	disk := openCache(t, promptcache.Config{})
	const ns = "scripted|tmpl=test"
	p := newScripted()
	p.tokens = 100

	var logBuf bytes.Buffer
	all := reqs(10)
	prompts := make(map[string]string, len(all))
	for _, r := range all {
		prompts[r.ID] = r.Prompt
	}

	e1, err := New(p, Config{Workers: 1, BudgetTokens: 400, Log: &logBuf, Disk: disk, CacheNamespace: ns})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e1.Execute(context.Background(), all); err != nil {
		t.Fatal(err)
	}

	recs, err := ReplayLogRecords(bytes.NewReader(logBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	done := ReconcileWithCache(recs, prompts, disk, ns)
	todo, recovered := FilterDone(all, done)
	if len(todo)+len(recovered) != 10 || len(recovered) != 4 {
		t.Fatalf("FilterDone: %d todo / %d recovered", len(todo), len(recovered))
	}

	callsBefore := p.total.Load()
	e2, err := New(p, Config{Workers: 2, Disk: disk, CacheNamespace: ns})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := e2.Execute(context.Background(), todo)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Failed != 0 {
		t.Fatalf("resume run failed queries: %+v", res2)
	}
	if got := p.total.Load() - callsBefore; got != int64(len(todo)) {
		t.Errorf("resume billed %d queries, want %d", got, len(todo))
	}
	// Every completed query — recovered or resumed — is now cached, so
	// a third run costs nothing.
	e3, err := New(p, Config{Disk: disk, CacheNamespace: ns})
	if err != nil {
		t.Fatal(err)
	}
	calls := p.total.Load()
	res3, err := e3.Execute(context.Background(), all)
	if err != nil {
		t.Fatal(err)
	}
	if p.total.Load() != calls {
		t.Errorf("third run paid %d calls, want 0", p.total.Load()-calls)
	}
	if res3.CacheHits != 10 {
		t.Errorf("third run: %+v", res3)
	}
}

// TestEvictionUnderConcurrentExecute is the satellite -race test: many
// Execute calls hammer one 1-shard cache with a byte budget a fraction
// of the working set. No update may be lost (every outcome correct),
// and the cache's Stats must reconcile exactly with its mqo_cache_*
// metrics when the dust settles.
func TestEvictionUnderConcurrentExecute(t *testing.T) {
	reg := obs.NewRegistry()
	disk, err := promptcache.Open(t.TempDir(), promptcache.Config{Shards: 1, MaxBytes: 512, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()

	const execs = 6
	var wg sync.WaitGroup
	errs := make(chan error, execs)
	for g := 0; g < execs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p := newScripted()
			e, err := New(p, Config{Workers: 4, Disk: disk, CacheNamespace: "race"})
			if err != nil {
				errs <- err
				return
			}
			// Overlapping but distinct working sets, far over the 512-byte
			// budget, so puts constantly evict while other executors read.
			rs := make([]Request, 30)
			for i := range rs {
				rs[i] = Request{ID: fmt.Sprintf("g%d-q%d", g, i), Prompt: fmt.Sprintf("prompt %d", (g*7+i)%40)}
			}
			res, err := e.Execute(context.Background(), rs)
			if err != nil {
				errs <- err
				return
			}
			for id, o := range res.Outcomes {
				if o.Err != nil {
					errs <- fmt.Errorf("outcome %s: %w", id, o.Err)
					return
				}
				if o.Response.Category != "A" {
					errs <- fmt.Errorf("outcome %s lost its update: %+v", id, o.Response)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := disk.Stats()
	if st.Bytes > 512 {
		t.Fatalf("live bytes %d exceed the 512-byte budget", st.Bytes)
	}
	if st.Evictions == 0 {
		t.Fatal("a working set 10x the budget produced no evictions")
	}
	if got := reg.CounterValue("mqo_cache_hits_total"); got != float64(st.Hits) {
		t.Fatalf("hits counter %v != stats %d", got, st.Hits)
	}
	if got := reg.CounterValue("mqo_cache_misses_total"); got != float64(st.Misses) {
		t.Fatalf("misses counter %v != stats %d", got, st.Misses)
	}
	evicted := reg.CounterValue("mqo_cache_evictions_total", "reason", "lru") +
		reg.CounterValue("mqo_cache_evictions_total", "reason", "expired")
	if evicted != float64(st.Evictions) {
		t.Fatalf("eviction counters %v != stats %d", evicted, st.Evictions)
	}
	if got := reg.GaugeValue("mqo_cache_bytes"); got != float64(st.Bytes) {
		t.Fatalf("bytes gauge %v != stats %d", got, st.Bytes)
	}
}
