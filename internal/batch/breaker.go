package batch

import (
	"errors"
	"sync"
	"time"

	"repro/internal/obs"
)

// Metric names emitted by the circuit breaker; the full catalog lives
// in README.md ("Observability").
const (
	metricBreakerState       = "mqo_breaker_state"
	metricBreakerTransitions = "mqo_breaker_transitions_total"
	metricBreakerRejections  = "mqo_breaker_rejections_total"
)

// ErrCircuitOpen marks requests rejected because the circuit breaker
// was open: the backend is presumed down, so the executor fails fast
// instead of queuing more doomed calls behind it.
var ErrCircuitOpen = errors.New("batch: circuit breaker open")

// BreakerConfig configures the circuit breaker guarding the predictor.
// The zero value disables the breaker entirely.
type BreakerConfig struct {
	// Threshold is the number of consecutive transient failures
	// (timeouts, 5xx/429, transport errors) that opens the circuit;
	// 0 disables the breaker.
	Threshold int
	// Cooldown is how long the circuit stays open before a probe
	// request is let through (default 30s).
	Cooldown time.Duration
	// HalfOpenProbes is the number of consecutive probe successes
	// required to close an open circuit again (default 1).
	HalfOpenProbes int
}

// BreakerState is the circuit's position.
type BreakerState int

const (
	// BreakerClosed passes every request through (healthy backend).
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects every request until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits probe requests one at a time; their
	// outcomes decide between closing and re-opening.
	BreakerHalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half_open"
	default:
		return "unknown"
	}
}

// Breaker is the classic three-state circuit breaker. All transitions
// happen under the mutex; the clock is injectable for tests. It is
// exported so layers above the executor — notably the replica pool,
// which runs one Breaker per backend — reuse the exact state machine
// (and metrics) that guards the single-predictor path.
type Breaker struct {
	cfg    BreakerConfig
	rec    obs.Recorder
	now    func() time.Time
	labels []string // static metric labels (e.g. replica id)

	mu        sync.Mutex
	state     BreakerState
	failures  int // consecutive transient failures while closed
	successes int // consecutive probe successes while half-open
	probing   bool
	openedAt  time.Time
}

// NewBreaker returns nil when the config disables the breaker; callers
// keep the nil check (as the executor does). labels are static
// alternating key/value pairs appended to every metric the breaker
// emits, so several breakers (one per pool replica) stay
// distinguishable in one registry.
func NewBreaker(cfg BreakerConfig, rec obs.Recorder, labels ...string) *Breaker {
	if cfg.Threshold <= 0 {
		return nil
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 30 * time.Second
	}
	if cfg.HalfOpenProbes <= 0 {
		cfg.HalfOpenProbes = 1
	}
	return &Breaker{cfg: cfg, rec: obs.Active(rec), now: time.Now, labels: labels}
}

// transition moves the breaker to a new state and emits the metrics.
// Caller holds the mutex.
func (b *Breaker) transition(to BreakerState) {
	b.state = to
	b.rec.Set(metricBreakerState, float64(to), b.labels...)
	b.rec.Add(metricBreakerTransitions, 1, append([]string{"to", to.String()}, b.labels...)...)
}

// State reports the current position (resolving an elapsed cooldown
// lazily, as Allow would).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Allow decides whether a request may reach the predictor. It returns
// ErrCircuitOpen for requests rejected while the circuit is open (or
// while a half-open probe is already in flight).
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return nil
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cfg.Cooldown {
			b.rec.Add(metricBreakerRejections, 1, b.labels...)
			return ErrCircuitOpen
		}
		// Cooldown over: admit this request as the first probe.
		b.transition(BreakerHalfOpen)
		b.successes = 0
		b.probing = true
		return nil
	default: // half-open
		if b.probing {
			b.rec.Add(metricBreakerRejections, 1, b.labels...)
			return ErrCircuitOpen
		}
		b.probing = true
		return nil
	}
}

// Ready reports whether a request offered right now would plausibly be
// admitted, without admitting one: closed always, open only once the
// cooldown has elapsed (the next Allow would start a probe), half-open
// only while no probe is in flight. Unlike Allow it reserves no probe
// slot and emits no rejection metric, so routing layers can *rank*
// replicas by readiness cheaply and leave admission — with its side
// effects — to the one Allow call on the replica they actually chose.
func (b *Breaker) Ready() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		return b.now().Sub(b.openedAt) >= b.cfg.Cooldown
	default: // half-open
		return !b.probing
	}
}

// Cancel releases an admitted request without judging the backend:
// the call never completed for a reason unrelated to backend health
// (batch canceled, client-side 4xx). A half-open probe slot is freed
// so the next request can probe instead.
func (b *Breaker) Cancel() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.probing = false
	}
}

// Report feeds one predictor-call outcome back into the state machine.
// Only transient failures count toward opening: a 4xx client error is
// the request's fault, not the backend's, and must not trip the
// circuit (callers skip report for those).
func (b *Breaker) Report(success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		if success {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.cfg.Threshold {
			b.transition(BreakerOpen)
			b.openedAt = b.now()
			b.failures = 0
		}
	case BreakerHalfOpen:
		b.probing = false
		if !success {
			b.transition(BreakerOpen)
			b.openedAt = b.now()
			b.successes = 0
			return
		}
		b.successes++
		if b.successes >= b.cfg.HalfOpenProbes {
			b.transition(BreakerClosed)
			b.failures = 0
		}
	default:
		// A straggler reporting after the circuit re-opened; consecutive
		// bookkeeping restarts at the next transition.
	}
}
