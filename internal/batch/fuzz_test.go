package batch

import (
	"strings"
	"testing"
)

// FuzzReplayLog hardens checkpoint recovery against corrupted audit
// logs: never panic, never recover an outcome without an ID, and keep
// token counts non-negative... the log is the billing record.
func FuzzReplayLog(f *testing.F) {
	f.Add(`{"id":"a","prompt_sha256":"x","input_tokens":5,"output_tokens":1,"category":"K","attempts":1}`)
	f.Add(`{"id":"b","error":"boom"}` + "\n" + `{"id":"b","input_tokens":3,"category":"L"}`)
	f.Add("")
	f.Add("\n\n\n")
	f.Add(`{"id":""}`)
	f.Add("{")

	f.Fuzz(func(t *testing.T, log string) {
		done, err := ReplayLog(strings.NewReader(log))
		if err != nil {
			return
		}
		for id, resp := range done {
			if id == "" {
				t.Fatal("recovered an outcome with empty ID")
			}
			if resp.InputTokens < 0 || resp.OutputTokens < 0 {
				t.Fatalf("negative token counts recovered: %+v", resp)
			}
		}
	})
}
