package batch

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/llm"
)

// clockBreaker returns a breaker with a settable fake clock.
func clockBreaker(t *testing.T, cfg BreakerConfig) (*Breaker, *time.Time) {
	t.Helper()
	b := NewBreaker(cfg, nil)
	if b == nil {
		t.Fatalf("breaker disabled by config %+v", cfg)
	}
	now := time.Unix(1000, 0)
	b.now = func() time.Time { return now }
	return b, &now
}

func TestBreakerOpensAfterThreshold(t *testing.T) {
	b, _ := clockBreaker(t, BreakerConfig{Threshold: 3, Cooldown: time.Minute})
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed breaker rejected request %d: %v", i, err)
		}
		b.Report(false)
		if b.State() != BreakerClosed {
			t.Fatalf("opened after %d failures, threshold 3", i+1)
		}
	}
	// A success resets the consecutive count.
	b.Report(true)
	b.Report(false)
	b.Report(false)
	if b.State() != BreakerClosed {
		t.Fatal("opened although success reset the failure streak")
	}
	b.Report(false)
	if b.State() != BreakerOpen {
		t.Fatal("did not open at 3 consecutive failures")
	}
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open breaker admitted a request: %v", err)
	}
}

func TestBreakerHalfOpenProbes(t *testing.T) {
	b, now := clockBreaker(t, BreakerConfig{Threshold: 1, Cooldown: time.Minute, HalfOpenProbes: 2})
	b.Report(false)
	if b.State() != BreakerOpen {
		t.Fatal("threshold 1 did not open on first failure")
	}
	// Before the cooldown: still rejecting.
	*now = now.Add(30 * time.Second)
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("rejected during cooldown, got %v", err)
	}
	// After the cooldown: one probe admitted, concurrent requests still
	// rejected while it is in flight.
	*now = now.Add(31 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("post-cooldown probe rejected: %v", err)
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state %v, want half-open", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("second in-flight probe admitted: %v", err)
	}
	// First probe succeeds; needs one more before closing.
	b.Report(true)
	if b.State() != BreakerHalfOpen {
		t.Fatal("closed after 1 probe success, want 2")
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("second probe rejected: %v", err)
	}
	b.Report(true)
	if b.State() != BreakerClosed {
		t.Fatal("did not close after 2 probe successes")
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b, now := clockBreaker(t, BreakerConfig{Threshold: 1, Cooldown: time.Second})
	b.Report(false)
	*now = now.Add(2 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe rejected: %v", err)
	}
	b.Report(false)
	if b.State() != BreakerOpen {
		t.Fatal("failed probe did not reopen the circuit")
	}
	// The fresh open period starts at the probe failure, not the
	// original trip.
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("reopened breaker admitted a request: %v", err)
	}
}

func TestBreakerCancelFreesProbeSlot(t *testing.T) {
	b, now := clockBreaker(t, BreakerConfig{Threshold: 1, Cooldown: time.Second})
	b.Report(false)
	*now = now.Add(2 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe rejected: %v", err)
	}
	// The probe is aborted for reasons unrelated to backend health; the
	// slot must free up or the breaker deadlocks in half-open forever.
	b.Cancel()
	if err := b.Allow(); err != nil {
		t.Fatalf("slot not freed after cancel: %v", err)
	}
	b.Report(true)
	if b.State() != BreakerClosed {
		t.Fatalf("state %v after successful probe, want closed", b.State())
	}
}

func TestBreakerDisabled(t *testing.T) {
	if b := NewBreaker(BreakerConfig{}, nil); b != nil {
		t.Fatal("zero config built a live breaker")
	}
	e, err := New(newScripted(), Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if e.BreakerState() != BreakerClosed {
		t.Fatal("executor without breaker not reported closed")
	}
}

func TestExecutorBreakerFailsFast(t *testing.T) {
	p := newScripted()
	p.failFirst = 1000 // every call fails
	p.failErr = &llm.APIError{StatusCode: http.StatusServiceUnavailable, Message: "down"}
	e, err := New(p, Config{
		Workers: 1, MaxRetries: -1,
		Breaker: BreakerConfig{Threshold: 3, Cooldown: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Execute(context.Background(), reqs(20))
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 20 {
		t.Fatalf("failed=%d, want 20", res.Failed)
	}
	if e.BreakerState() != BreakerOpen {
		t.Fatalf("breaker %v after a dead backend, want open", e.BreakerState())
	}
	// Only the first Threshold calls reached the predictor; the rest
	// were rejected without a call.
	if got := p.total.Load(); got != 3 {
		t.Fatalf("predictor saw %d calls, want 3 (threshold)", got)
	}
	rejected := 0
	for _, o := range res.Outcomes {
		if errors.Is(o.Err, ErrCircuitOpen) {
			rejected++
		}
	}
	if rejected != 17 {
		t.Fatalf("rejected=%d, want 17", rejected)
	}
}

func TestExecutorBreakerRecovers(t *testing.T) {
	p := newScripted()
	p.failFirst = 1 // first call per prompt fails, then succeeds
	p.failErr = &llm.APIError{StatusCode: http.StatusServiceUnavailable, Message: "blip"}
	e, err := New(p, Config{
		Workers: 1, MaxRetries: 2, RetryDelay: time.Millisecond,
		Breaker: BreakerConfig{Threshold: 5, Cooldown: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Execute(context.Background(), reqs(10))
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Fatalf("failed=%d with retries available, want 0", res.Failed)
	}
	if e.BreakerState() != BreakerClosed {
		t.Fatalf("breaker %v, want closed (successes reset the streak)", e.BreakerState())
	}
}

// hang is a legacy (context-free) predictor whose marked prompts block
// until release is closed.
type hang struct {
	match   string
	release chan struct{}
	inner   llm.Predictor
}

func (h *hang) Name() string { return "hang" }

func (h *hang) Query(prompt string) (llm.Response, error) {
	if h.match == "" || len(prompt) >= len(h.match) && containsStr(prompt, h.match) {
		<-h.release
		return llm.Response{}, errors.New("hang released")
	}
	return h.inner.Query(prompt)
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestQueryTimeoutWatchdog(t *testing.T) {
	// One hung prompt must not stall the batch: the watchdog abandons
	// the call at the deadline and the batch completes.
	h := &hang{match: "prompt 3", release: make(chan struct{}), inner: newScripted()}
	defer close(h.release)
	e, err := New(h, Config{Workers: 2, MaxRetries: -1, QueryTimeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := e.Execute(context.Background(), reqs(10))
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("batch took %v; hung call stalled it", elapsed)
	}
	if res.Failed != 1 {
		t.Fatalf("failed=%d, want exactly the hung prompt", res.Failed)
	}
	o := res.Outcomes["q003"]
	if !errors.Is(o.Err, ErrQueryTimeout) {
		t.Fatalf("hung prompt outcome %v, want ErrQueryTimeout", o.Err)
	}
	for id, o := range res.Outcomes {
		if id != "q003" && o.Err != nil {
			t.Fatalf("%s failed: %v", id, o.Err)
		}
	}
}

// ctxHang is a context-aware predictor whose marked prompts block until
// the context ends.
type ctxHang struct {
	match string
	inner llm.Predictor
}

func (h *ctxHang) Name() string { return "ctx-hang" }

func (h *ctxHang) Query(prompt string) (llm.Response, error) {
	return h.QueryContext(context.Background(), prompt)
}

func (h *ctxHang) QueryContext(ctx context.Context, prompt string) (llm.Response, error) {
	if containsStr(prompt, h.match) {
		<-ctx.Done()
		return llm.Response{}, ctx.Err()
	}
	return h.inner.Query(prompt)
}

func TestQueryTimeoutContextPath(t *testing.T) {
	h := &ctxHang{match: "prompt 5", inner: newScripted()}
	e, err := New(h, Config{Workers: 4, MaxRetries: -1, QueryTimeout: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Execute(context.Background(), reqs(12))
	if err != nil {
		t.Fatal(err)
	}
	o := res.Outcomes["q005"]
	if !errors.Is(o.Err, ErrQueryTimeout) {
		t.Fatalf("hung prompt outcome %v, want ErrQueryTimeout", o.Err)
	}
	if res.Failed != 1 {
		t.Fatalf("failed=%d, want 1", res.Failed)
	}
}

func TestQueryTimeoutTripsBreaker(t *testing.T) {
	// Every prompt hangs; timeouts count as transient failures, so the
	// breaker opens and the tail of the batch fails fast.
	h := &ctxHang{match: "prompt", inner: newScripted()}
	e, err := New(h, Config{
		Workers: 1, MaxRetries: -1, QueryTimeout: 10 * time.Millisecond,
		Breaker: BreakerConfig{Threshold: 2, Cooldown: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Execute(context.Background(), reqs(8))
	if err != nil {
		t.Fatal(err)
	}
	if e.BreakerState() != BreakerOpen {
		t.Fatalf("breaker %v, want open after repeated timeouts", e.BreakerState())
	}
	timeouts, rejections := 0, 0
	for _, o := range res.Outcomes {
		switch {
		case errors.Is(o.Err, ErrQueryTimeout):
			timeouts++
		case errors.Is(o.Err, ErrCircuitOpen):
			rejections++
		}
	}
	if timeouts != 2 || rejections != 6 {
		t.Fatalf("timeouts=%d rejections=%d, want 2 and 6", timeouts, rejections)
	}
}

func TestBreakerConcurrentRace(t *testing.T) {
	// Hammer one breaker from many goroutines; run with -race.
	b := NewBreaker(BreakerConfig{Threshold: 3, Cooldown: time.Microsecond}, nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				if err := b.Allow(); err == nil {
					switch j % 3 {
					case 0:
						b.Report(true)
					case 1:
						b.Report(false)
					default:
						b.Cancel()
					}
				}
				_ = b.State()
			}
		}(i)
	}
	wg.Wait()
	if s := b.State(); s != BreakerClosed && s != BreakerOpen && s != BreakerHalfOpen {
		t.Fatalf("invalid final state %v", s)
	}
}

func TestSerializeForwardsQueryContext(t *testing.T) {
	// Serializing a context-aware predictor must keep the cancellation
	// path, or timeouts degrade to goroutine-parking watchdogs.
	inner := &ctxHang{match: "x", inner: newScripted()}
	if _, ok := Serialize(inner).(llm.ContextPredictor); !ok {
		t.Fatal("Serialize dropped the ContextPredictor implementation")
	}
	// A plain predictor stays plain: claiming QueryContext without a
	// real cancellation path would defeat the executor's watchdog.
	if _, ok := Serialize(newScripted()).(llm.ContextPredictor); ok {
		t.Fatal("Serialize invented a ContextPredictor implementation")
	}
	// The serialized context path still answers.
	s := Serialize(&ctxHang{match: "never-matches", inner: newScripted()}).(llm.ContextPredictor)
	resp, err := s.QueryContext(context.Background(), "prompt 1")
	if err != nil || resp.Category != "A" {
		t.Fatalf("serialized QueryContext: %v %+v", err, resp)
	}
}

var _ = fmt.Sprintf // keep fmt imported for debugging edits
