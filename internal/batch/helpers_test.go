package batch

import (
	"fmt"
	"testing"

	"repro/internal/prompt"
	"repro/internal/tag"
)

// simPrompts generates n valid Table III zero-shot prompts over a small
// Cora graph.
func simPrompts(t testing.TB, n int) (*tag.Graph, []Request) {
	t.Helper()
	spec, err := tag.SpecByName("cora")
	if err != nil {
		t.Fatal(err)
	}
	g := tag.Generate(spec, 4, tag.Options{Scale: 0.1})
	if g.NumNodes() < n {
		t.Fatalf("graph too small: %d nodes", g.NumNodes())
	}
	out := make([]Request, n)
	for i := 0; i < n; i++ {
		node := g.Nodes[i]
		out[i] = Request{
			ID: fmt.Sprintf("node-%d", i),
			Prompt: prompt.Build(prompt.Request{
				TargetTitle:    node.Title,
				TargetAbstract: node.Abstract,
				Categories:     g.Classes,
			}),
		}
	}
	return g, out
}
