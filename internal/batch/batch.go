// Package batch executes large sets of LLM queries against real-world
// API constraints: bounded concurrency, rate limits, transient
// failures, a hard token budget, response caching and a JSONL audit
// log. It is the operational layer under the paper's multi-query
// optimization: Algorithm 1/2 decide *what* to ask; this package gets
// the batch asked reliably and within budget.
//
// The executor preserves the black-box Predictor contract — it only
// sees prompt strings — so it works identically over the simulator and
// the HTTP client.
package batch

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/llm"
	"repro/internal/obs"
	"repro/internal/promptcache"
)

// Metric names emitted by the executor; the full catalog lives in
// README.md ("Observability").
const (
	metricBatchRequests  = "mqo_batch_requests_total"
	metricBatchRetries   = "mqo_batch_retries_total"
	metricBatchThrottled = "mqo_batch_throttle_waits_total"
	metricBatchAborts    = "mqo_batch_aborts_total"
	metricBatchInflight  = "mqo_batch_inflight"
	metricBatchTokens    = "mqo_batch_tokens_total"
	metricBatchAttempt   = "mqo_batch_attempt_duration_seconds"
	metricBatchTimeouts  = "mqo_batch_timeouts_total"
)

// Request is one query to execute: an opaque caller ID plus the final
// prompt text.
type Request struct {
	ID     string
	Prompt string
	// Ctx optionally carries the query's trace span and ledger
	// (obs.ContextWithSpan / obs.ContextWithLedger), so the executor's
	// spans nest under the caller's query span and its stage charges
	// land on the right books. Only values are taken from it —
	// cancellation always comes from the context passed to Execute.
	Ctx context.Context
}

// Config tunes an Executor.
type Config struct {
	// Workers is the number of concurrent in-flight queries
	// (default 4).
	Workers int
	// QPS caps the dispatch rate across all workers; 0 means unlimited.
	QPS float64
	// MaxRetries bounds per-query retries on transient failures
	// (default 2; -1 disables retries entirely). Non-retryable API
	// errors (4xx) fail immediately.
	MaxRetries int
	// RetryDelay is the initial backoff, doubled per retry
	// (default 100ms).
	RetryDelay time.Duration
	// MaxRetryDelay caps the exponential backoff (default 30s), so long
	// retry schedules neither overflow time.Duration nor grow into
	// hour-long sleeps.
	MaxRetryDelay time.Duration
	// BudgetTokens, when > 0, is a hard cap on total tokens
	// (input + output) across the batch. Queries that would start after
	// the cap is reached fail with ErrBudgetExhausted instead of
	// spending money.
	BudgetTokens int
	// QueryTimeout, when > 0, bounds each predictor attempt. A call
	// that outlives the deadline fails with ErrQueryTimeout (retryable)
	// instead of stalling its worker: predictors implementing
	// llm.ContextPredictor are canceled mid-flight, legacy predictors
	// are abandoned to a watchdog (their goroutine finishes — or parks —
	// in the background).
	QueryTimeout time.Duration
	// Breaker guards the predictor with a circuit breaker; the zero
	// value (Threshold 0) disables it. While the circuit is open,
	// requests fail fast with ErrCircuitOpen rather than queue behind a
	// backend that is presumed down.
	Breaker BreakerConfig
	// Cache serves repeated prompts from memory instead of re-querying.
	Cache bool
	// Disk, when non-nil, adds a persistent tier behind the memory
	// cache: misses consult the disk cache before paying for a
	// predictor call, and fresh answers are written through to it.
	// Setting Disk implies Cache — the memory tier fronts the disk tier
	// so a hot prompt is served without touching shard locks. Lookups
	// run inside the single-flight critical section, so concurrent
	// identical prompts cost at most one disk read.
	Disk *promptcache.Cache
	// CacheNamespace partitions the disk cache by answer function;
	// empty derives it from the predictor (promptcache.Namespace), which
	// folds in the model identity, its seed and the prompt-template
	// version. Set it explicitly only to share or isolate cache entries
	// in a non-standard way.
	CacheNamespace string
	// Log, when non-nil, receives one JSON line per query outcome.
	// Prompts are logged as SHA-256 digests, never as raw text.
	Log io.Writer
	// OnOutcome, when non-nil, is invoked once per request the moment
	// its outcome settles — from the worker goroutine that finished it
	// (or from Execute itself, for requests never dispatched because the
	// context ended) — with no executor locks held. Online callers use
	// it to answer per-request waiters before the whole batch returns.
	// The callback runs on the worker's critical path, so it must not
	// block for long.
	OnOutcome func(Request, Outcome)
	// Obs receives executor metrics (request outcomes, retries,
	// throttle waits, in-flight gauge, per-attempt latency); nil routes
	// to the process-default recorder.
	Obs obs.Recorder
}

// ErrBudgetExhausted marks queries skipped because the token budget was
// already spent.
var ErrBudgetExhausted = errors.New("batch: token budget exhausted")

// ErrQueryTimeout marks predictor attempts that outlived
// Config.QueryTimeout. It is transient: retries (if configured) get a
// fresh deadline, and it counts toward opening the circuit breaker.
var ErrQueryTimeout = errors.New("batch: query timed out")

// Outcome is the result of one request.
type Outcome struct {
	Response llm.Response
	Err      error
	// Cached reports that the response was served from the cache.
	Cached bool
	// Attempts counts predictor calls made for this request (0 when
	// cached or skipped).
	Attempts int
	// Finished is when the worker completed the request (zero for
	// requests never dispatched). Callers that opened a span per
	// request close it with Span.EndAt(Finished), so recorded query
	// durations exclude batch result-collection overhead.
	Finished time.Time
}

// Result aggregates a batch execution.
type Result struct {
	// Outcomes maps request IDs to their outcomes.
	Outcomes map[string]Outcome
	// TokensUsed is the total input+output tokens actually spent.
	TokensUsed int
	// CacheHits counts requests served from the cache.
	CacheHits int
	// Failed counts requests whose final outcome is an error.
	Failed int
	// Skipped counts requests refused under ErrBudgetExhausted.
	Skipped int
}

// Executor runs batches against one predictor.
type Executor struct {
	p   llm.Predictor
	cfg Config
	brk *Breaker // nil when the breaker is disabled

	mu     sync.Mutex
	cache  map[string]llm.Response
	flight map[string]*flightCall
	logErr error

	inflight atomic.Int64
}

// flightCall is an in-progress predictor call that concurrent requests
// for the same prompt wait on instead of re-querying (single-flight).
type flightCall struct {
	done chan struct{} // closed once resp/err are set
	resp llm.Response
	err  error
}

// New builds an executor. The predictor may be used concurrently from
// Config.Workers goroutines; wrap non-thread-safe predictors (like
// *llm.Sim) with Serialize.
func New(p llm.Predictor, cfg Config) (*Executor, error) {
	if p == nil {
		return nil, errors.New("batch: nil predictor")
	}
	if cfg.Workers < 0 || cfg.QPS < 0 || cfg.MaxRetries < -1 || cfg.BudgetTokens < 0 ||
		cfg.QueryTimeout < 0 || cfg.Breaker.Threshold < 0 {
		return nil, fmt.Errorf("batch: negative config value: %+v", cfg)
	}
	if cfg.Workers == 0 {
		cfg.Workers = 4
	}
	switch cfg.MaxRetries {
	case 0:
		cfg.MaxRetries = 2
	case -1:
		cfg.MaxRetries = 0
	}
	if cfg.RetryDelay <= 0 {
		cfg.RetryDelay = 100 * time.Millisecond
	}
	if cfg.MaxRetryDelay <= 0 {
		cfg.MaxRetryDelay = llm.DefaultMaxRetryDelay
	}
	if cfg.Disk != nil && cfg.CacheNamespace == "" {
		cfg.CacheNamespace = promptcache.Namespace(p)
	}
	e := &Executor{p: p, cfg: cfg, brk: NewBreaker(cfg.Breaker, cfg.Obs)}
	if cfg.Cache || cfg.Disk != nil {
		e.cache = make(map[string]llm.Response)
		e.flight = make(map[string]*flightCall)
	}
	return e, nil
}

// logLine is the JSONL audit record for one query.
type logLine struct {
	Time         string `json:"time"`
	ID           string `json:"id"`
	PromptSHA256 string `json:"prompt_sha256"`
	InputTokens  int    `json:"input_tokens,omitempty"`
	OutputTokens int    `json:"output_tokens,omitempty"`
	Category     string `json:"category,omitempty"`
	Cached       bool   `json:"cached,omitempty"`
	Attempts     int    `json:"attempts,omitempty"`
	Error        string `json:"error,omitempty"`
}

// log writes one audit line; write errors are remembered and surfaced
// by Execute rather than dropped.
func (e *Executor) log(l logLine) {
	if e.cfg.Log == nil {
		return
	}
	l.Time = time.Now().UTC().Format(time.RFC3339Nano)
	data, err := json.Marshal(l)
	if err == nil {
		data = append(data, '\n')
		_, err = e.cfg.Log.Write(data)
	}
	if err != nil {
		e.mu.Lock()
		if e.logErr == nil {
			e.logErr = err
		}
		e.mu.Unlock()
	}
}

// promptDigest fingerprints a prompt for the audit log.
func promptDigest(p string) string {
	sum := sha256.Sum256([]byte(p))
	return hex.EncodeToString(sum[:8])
}

// budget tracks remaining tokens across workers.
type budget struct {
	mu        sync.Mutex
	remaining int
	unlimited bool
	spent     int
}

// tryReserve reports whether the batch may start another query, i.e.
// the budget is not yet exhausted. Token costs are only known after the
// response, so the guard admits a query while any budget remains and
// charges the actual usage afterwards (the overshoot is at most one
// query per worker, matching how per-request billing behaves).
func (b *budget) tryReserve() bool {
	if b.unlimited {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.remaining > 0
}

// charge records actual usage.
func (b *budget) charge(tokens int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.spent += tokens
	if !b.unlimited {
		b.remaining -= tokens
	}
}

// Execute runs all requests and returns per-request outcomes. It only
// returns a top-level error for setup problems (nil context) or a
// failing audit log; per-query failures are reported in Outcomes so one
// bad query cannot void a 10,000-query batch.
func (e *Executor) Execute(ctx context.Context, reqs []Request) (*Result, error) {
	if ctx == nil {
		return nil, errors.New("batch: nil context")
	}
	res := &Result{Outcomes: make(map[string]Outcome, len(reqs))}
	seen := make(map[string]bool, len(reqs))
	for _, r := range reqs {
		if seen[r.ID] {
			return nil, fmt.Errorf("batch: duplicate request ID %q", r.ID)
		}
		seen[r.ID] = true
	}

	bud := &budget{remaining: e.cfg.BudgetTokens, unlimited: e.cfg.BudgetTokens == 0}

	// Rate limiter: a shared ticker paces dispatches across workers.
	// The interval is clamped to ≥1ns: above ~1e9 QPS the division
	// rounds to zero, which time.NewTicker panics on.
	var tick <-chan time.Time
	if e.cfg.QPS > 0 {
		interval := time.Duration(float64(time.Second) / e.cfg.QPS)
		if interval < time.Nanosecond {
			interval = time.Nanosecond
		}
		t := time.NewTicker(interval)
		defer t.Stop()
		tick = t.C
	}

	work := make(chan Request)
	var wg sync.WaitGroup
	var outMu sync.Mutex
	record := func(r Request, o Outcome) {
		outMu.Lock()
		res.Outcomes[r.ID] = o
		switch {
		case errors.Is(o.Err, ErrBudgetExhausted):
			res.Skipped++
		case o.Err != nil:
			res.Failed++
		case o.Cached:
			res.CacheHits++
		}
		outMu.Unlock()
		if e.cfg.OnOutcome != nil {
			e.cfg.OnOutcome(r, o)
		}
	}

	rec := obs.Active(e.cfg.Obs)
	for i := 0; i < e.cfg.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := range work {
				rec.Set(metricBatchInflight, float64(e.inflight.Add(1)))
				o := e.one(ctx, r, bud, tick, rec)
				o.Finished = time.Now()
				rec.Set(metricBatchInflight, float64(e.inflight.Add(-1)))
				record(r, o)
			}
		}()
	}

feed:
	for _, r := range reqs {
		select {
		case work <- r:
		case <-ctx.Done():
			break feed
		}
	}
	close(work)
	wg.Wait()
	// Workers race their gauge updates; settle it now that none run.
	rec.Set(metricBatchInflight, 0)

	// Requests never dispatched because the context ended.
	for _, r := range reqs {
		if _, ok := res.Outcomes[r.ID]; !ok {
			record(r, Outcome{Err: ctx.Err()})
			rec.Add(metricBatchRequests, 1, "outcome", "undispatched")
		}
	}
	res.TokensUsed = bud.spent

	e.mu.Lock()
	logErr := e.logErr
	e.mu.Unlock()
	if logErr != nil {
		return res, fmt.Errorf("batch: audit log failed: %w", logErr)
	}
	return res, nil
}

// abortReason labels context-ended outcomes for the abort counter.
func abortReason(err error) string {
	if errors.Is(err, context.DeadlineExceeded) {
		return "deadline"
	}
	return "canceled"
}

// charger accumulates a request's billed wall-clock so one() can
// charge the residual (executor overhead no stage claims) at the end,
// making billed stages tile the whole request. A nil charger is a
// no-op, so uninstrumented runs skip all of it.
type charger struct {
	ctx    context.Context
	billed time.Duration
}

func (c *charger) charge(stage string, wall time.Duration, tokens int, billed bool) {
	if c == nil {
		return
	}
	if billed && wall > 0 {
		c.billed += wall
	}
	obs.Charge(c.ctx, stage, wall, tokens, billed)
}

// one executes a single request: cache check, single-flight
// deduplication, budget guard, rate-paced predictor calls with retry.
func (e *Executor) one(ctx context.Context, r Request, bud *budget, tick <-chan time.Time, rec obs.Recorder) Outcome {
	digest := promptDigest(r.Prompt)
	live := obs.Enabled(rec)
	var span *obs.Span
	var ch *charger
	var pickup time.Time
	qctx := ctx
	if live {
		pickup = time.Now()
		if r.Ctx != nil {
			// Graft the query's trace values onto the batch context:
			// span/ledger from the per-request context, cancellation
			// from Execute's.
			if led := obs.LedgerFromContext(r.Ctx); led != nil {
				qctx = obs.ContextWithLedger(qctx, led)
			}
			if root := obs.SpanFromContext(r.Ctx); root != nil {
				qctx = obs.ContextWithSpan(qctx, root)
				// Queue wait: the request existed since its root span
				// opened, but no worker saw it until now.
				if wait := pickup.Sub(root.StartTime()); wait > 0 {
					_, qsp := obs.StartSpanCtxAt(qctx, rec, "batch.queue", root.StartTime())
					qsp.EndAt(pickup)
					obs.Charge(qctx, obs.StageQueue, wait, 0, true)
				}
			}
		}
		qctx, span = obs.StartSpanCtx(qctx, rec, "batch.request", "id", r.ID)
		ch = &charger{ctx: qctx}
	}
	done := func(o Outcome, outcome string) Outcome {
		rec.Add(metricBatchRequests, 1, "outcome", outcome)
		if live {
			end := time.Now()
			if resid := end.Sub(pickup) - ch.billed; resid > 0 {
				ch.charge(obs.StageExec, resid, 0, true)
			}
			span.SetAttr("outcome", outcome)
			span.SetAttr("attempts", fmt.Sprint(o.Attempts))
			span.EndAt(end)
		}
		return o
	}
	// cacheResolved notes a request answered without a fresh predictor
	// call: a child span for the tier that answered, and a billed cache
	// charge carrying the response's token count — the caller's meter
	// counts cached answers, so the ledger must bill them to a stage.
	cacheResolved := func(tier string, resp llm.Response) {
		if !live {
			return
		}
		_, csp := obs.StartSpanCtxAt(qctx, rec, "batch.cache", pickup, "tier", tier)
		csp.End()
		ch.charge(obs.StageCache, time.Since(pickup), resp.InputTokens+resp.OutputTokens, true)
	}

	if e.cache != nil {
		e.mu.Lock()
		if cached, ok := e.cache[r.Prompt]; ok {
			e.mu.Unlock()
			e.log(logLine{ID: r.ID, PromptSHA256: digest, Category: cached.Category, Cached: true})
			cacheResolved("memory", cached)
			return done(Outcome{Response: cached, Cached: true}, "cached")
		}
		// Single-flight: if another worker is already querying this
		// exact prompt, wait for its answer instead of paying for a
		// duplicate call (the classic cache-stampede fix).
		if fc, ok := e.flight[r.Prompt]; ok {
			e.mu.Unlock()
			select {
			case <-fc.done:
			case <-ctx.Done():
				rec.Add(metricBatchAborts, 1, "reason", abortReason(ctx.Err()))
				return done(Outcome{Err: ctx.Err()}, "aborted")
			}
			if fc.err != nil {
				e.log(logLine{ID: r.ID, PromptSHA256: digest, Error: fc.err.Error()})
				cacheResolved("coalesced", llm.Response{})
				switch {
				case errors.Is(fc.err, ErrBudgetExhausted):
					return done(Outcome{Err: fc.err}, "skipped")
				case errors.Is(fc.err, ErrCircuitOpen):
					return done(Outcome{Err: fc.err}, "rejected")
				}
				return done(Outcome{Err: fc.err}, "error")
			}
			e.log(logLine{ID: r.ID, PromptSHA256: digest, Category: fc.resp.Category, Cached: true})
			cacheResolved("coalesced", fc.resp)
			return done(Outcome{Response: fc.resp, Cached: true}, "coalesced")
		}
		fc := &flightCall{done: make(chan struct{})}
		e.flight[r.Prompt] = fc
		e.mu.Unlock()
		var o Outcome
		var label string
		if resp, ok := e.diskGet(r.Prompt); ok {
			// Persistent tier: an earlier run (or an earlier stage of
			// this one) already paid for this prompt. Promote it to the
			// memory tier so repeats skip the shard lock.
			o, label = Outcome{Response: resp, Cached: true}, "disk"
			e.mu.Lock()
			e.cache[r.Prompt] = resp
			e.mu.Unlock()
			e.log(logLine{ID: r.ID, PromptSHA256: digest, Category: resp.Category, Cached: true})
			cacheResolved("disk", resp)
		} else {
			o, label = e.attempt(qctx, r, bud, tick, rec, digest, live, ch)
		}
		fc.resp, fc.err = o.Response, o.Err
		e.mu.Lock()
		delete(e.flight, r.Prompt)
		e.mu.Unlock()
		close(fc.done)
		return done(o, label)
	}
	o, label := e.attempt(qctx, r, bud, tick, rec, digest, live, ch)
	return done(o, label)
}

// attempt runs the budget guard and the rate-paced retry loop for one
// request, returning the outcome and its metric label. ctx carries the
// query's span/ledger values (one() grafted them), so spans opened
// here — backoff, breaker verdict, attempt N — nest under the
// batch.request span and charges land on the query's ledger.
func (e *Executor) attempt(ctx context.Context, r Request, bud *budget, tick <-chan time.Time, rec obs.Recorder, digest string, live bool, ch *charger) (Outcome, string) {
	if !bud.tryReserve() {
		e.log(logLine{ID: r.ID, PromptSHA256: digest, Error: ErrBudgetExhausted.Error()})
		return Outcome{Err: ErrBudgetExhausted}, "skipped"
	}

	var lastErr error
	for attempt := 1; attempt <= e.cfg.MaxRetries+1; attempt++ {
		if attempt > 1 {
			rec.Add(metricBatchRetries, 1)
			delay := llm.RetryBackoff(e.cfg.RetryDelay, e.cfg.MaxRetryDelay, attempt-1)
			var bsp *obs.Span
			if live {
				_, bsp = obs.StartSpanCtx(ctx, rec, "batch.backoff", "attempt", fmt.Sprint(attempt))
			}
			select {
			case <-time.After(delay):
				bsp.End()
				ch.charge(obs.StageBackoff, delay, 0, true)
			case <-ctx.Done():
				bsp.End()
				rec.Add(metricBatchAborts, 1, "reason", abortReason(ctx.Err()))
				return Outcome{Err: ctx.Err(), Attempts: attempt - 1}, "aborted"
			}
		}
		// Breaker guard: while the circuit is open the request fails
		// fast, leaving graceful degradation (surrogate fallback) to the
		// caller instead of queuing behind a backend presumed down.
		if e.brk != nil {
			if err := e.brk.Allow(); err != nil {
				if live {
					_, vsp := obs.StartSpanCtx(ctx, rec, "batch.breaker", "verdict", "open")
					vsp.End()
					ch.charge(obs.StageBreaker, 0, 0, true)
				}
				e.log(logLine{ID: r.ID, PromptSHA256: digest, Attempts: attempt - 1, Error: err.Error()})
				return Outcome{Err: err, Attempts: attempt - 1}, "rejected"
			}
		}
		if tick != nil {
			var tstart time.Time
			if live {
				tstart = time.Now()
			}
			select {
			case <-tick:
				rec.Add(metricBatchThrottled, 1)
				if live {
					ch.charge(obs.StageThrottle, time.Since(tstart), 0, true)
				}
			case <-ctx.Done():
				e.cancelBreaker() // pacing abort says nothing about the backend
				rec.Add(metricBatchAborts, 1, "reason", abortReason(ctx.Err()))
				return Outcome{Err: ctx.Err(), Attempts: attempt - 1}, "aborted"
			}
		}
		var start time.Time
		actx := ctx
		var asp *obs.Span
		if live {
			start = time.Now()
			actx, asp = obs.StartSpanCtx(ctx, rec, "batch.attempt", "n", fmt.Sprint(attempt))
		}
		resp, err := e.query(actx, r.Prompt)
		if live {
			wall := time.Since(start)
			rec.Observe(metricBatchAttempt, wall.Seconds())
			if err == nil {
				asp.SetAttr("outcome", "ok")
				ch.charge(obs.StagePredict, wall, resp.InputTokens+resp.OutputTokens, true)
			} else {
				asp.SetAttr("outcome", "error")
				// Failed attempts are serial wall-clock on this query's
				// path, but they bought nothing: billed time, zero
				// tokens, under the retry stage.
				ch.charge(obs.StageRetry, wall, 0, true)
			}
			asp.End()
		}
		if err == nil {
			e.reportBreaker(true)
			bud.charge(resp.InputTokens + resp.OutputTokens)
			rec.Add(metricBatchTokens, float64(resp.InputTokens+resp.OutputTokens))
			if e.cache != nil {
				e.mu.Lock()
				e.cache[r.Prompt] = resp
				e.mu.Unlock()
			}
			if e.cfg.Disk != nil {
				// Write-through is best-effort: a full or failing disk
				// loses persistence, not the (already correct) answer.
				_ = e.cfg.Disk.Put(promptcache.KeyOf(e.cfg.CacheNamespace, r.Prompt), resp)
			}
			e.log(logLine{
				ID: r.ID, PromptSHA256: digest,
				InputTokens: resp.InputTokens, OutputTokens: resp.OutputTokens,
				Category: resp.Category, Attempts: attempt,
			})
			return Outcome{Response: resp, Attempts: attempt}, "ok"
		}
		lastErr = err
		if ctx.Err() != nil {
			// The batch was canceled mid-call; not the backend's fault.
			e.cancelBreaker()
			rec.Add(metricBatchAborts, 1, "reason", abortReason(ctx.Err()))
			return Outcome{Err: ctx.Err(), Attempts: attempt}, "aborted"
		}
		if errors.Is(err, ErrQueryTimeout) {
			rec.Add(metricBatchTimeouts, 1)
			e.reportBreaker(false)
			continue
		}
		var apiErr *llm.APIError
		if errors.As(err, &apiErr) && apiErr.StatusCode < 500 && apiErr.StatusCode != 429 {
			// Client error: the request's fault, not the backend's —
			// neither retried nor counted toward the breaker.
			e.cancelBreaker()
			e.log(logLine{ID: r.ID, PromptSHA256: digest, Attempts: attempt, Error: err.Error()})
			return Outcome{Err: err, Attempts: attempt}, "error"
		}
		e.reportBreaker(false)
	}
	e.log(logLine{ID: r.ID, PromptSHA256: digest, Attempts: e.cfg.MaxRetries + 1, Error: lastErr.Error()})
	return Outcome{
		Err:      fmt.Errorf("batch: request %q failed after %d attempts: %w", r.ID, e.cfg.MaxRetries+1, lastErr),
		Attempts: e.cfg.MaxRetries + 1,
	}, "error"
}

// diskGet consults the persistent tier, when configured.
func (e *Executor) diskGet(prompt string) (llm.Response, bool) {
	if e.cfg.Disk == nil {
		return llm.Response{}, false
	}
	return e.cfg.Disk.Get(promptcache.KeyOf(e.cfg.CacheNamespace, prompt))
}

// reportBreaker feeds a call outcome to the breaker when one exists.
func (e *Executor) reportBreaker(success bool) {
	if e.brk != nil {
		e.brk.Report(success)
	}
}

// cancelBreaker releases an admitted request without a health verdict.
func (e *Executor) cancelBreaker() {
	if e.brk != nil {
		e.brk.Cancel()
	}
}

// BreakerState reports the circuit breaker's current position;
// BreakerClosed when no breaker is configured.
func (e *Executor) BreakerState() BreakerState {
	if e.brk == nil {
		return BreakerClosed
	}
	return e.brk.State()
}

// query runs one predictor attempt under the per-query deadline.
// Context-aware predictors are canceled mid-flight; legacy predictors
// run under a watchdog that abandons the call at the deadline (a truly
// hung call parks its goroutine — the price of the context-free
// Predictor contract, and why ContextPredictor is preferred).
func (e *Executor) query(ctx context.Context, promptText string) (llm.Response, error) {
	cp, hasCtx := e.p.(llm.ContextPredictor)
	if e.cfg.QueryTimeout <= 0 {
		if hasCtx {
			return cp.QueryContext(ctx, promptText)
		}
		return e.p.Query(promptText)
	}
	qctx, cancel := context.WithTimeout(ctx, e.cfg.QueryTimeout)
	defer cancel()
	if hasCtx {
		resp, err := cp.QueryContext(qctx, promptText)
		if err != nil && qctx.Err() != nil && ctx.Err() == nil {
			return llm.Response{}, fmt.Errorf("%w after %v: %v", ErrQueryTimeout, e.cfg.QueryTimeout, err)
		}
		return resp, err
	}
	type qresult struct {
		resp llm.Response
		err  error
	}
	ch := make(chan qresult, 1)
	go func() {
		resp, err := e.p.Query(promptText)
		ch <- qresult{resp, err}
	}()
	select {
	case r := <-ch:
		return r.resp, r.err
	case <-qctx.Done():
		if ctx.Err() != nil {
			return llm.Response{}, ctx.Err()
		}
		return llm.Response{}, fmt.Errorf("%w after %v", ErrQueryTimeout, e.cfg.QueryTimeout)
	}
}

// Serialize wraps a predictor with a mutex so single-threaded
// implementations (like *llm.Sim) can serve a concurrent Executor.
// When the inner predictor is context-aware, the wrapper is too, so
// per-query deadlines keep their cancellation path through the lock.
func Serialize(p llm.Predictor) llm.Predictor {
	s := &serialized{p: p}
	if cp, ok := p.(llm.ContextPredictor); ok {
		return &serializedCtx{serialized: s, cp: cp}
	}
	return s
}

type serialized struct {
	mu sync.Mutex
	p  llm.Predictor
}

// Name implements llm.Predictor.
func (s *serialized) Name() string { return s.p.Name() }

// Identity forwards the inner identity: serialization does not change
// the answer function, so cache namespaces must not change either.
func (s *serialized) Identity() string { return llm.IdentityOf(s.p) }

// Query implements llm.Predictor under a lock.
func (s *serialized) Query(prompt string) (llm.Response, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.p.Query(prompt)
}

// serializedCtx adds the context-aware path for inner predictors that
// support it. The lock is still held across the call: cancellation
// unblocks the inner predictor, which releases the lock.
type serializedCtx struct {
	*serialized
	cp llm.ContextPredictor
}

// QueryContext implements llm.ContextPredictor under the lock.
func (s *serializedCtx) QueryContext(ctx context.Context, prompt string) (llm.Response, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cp.QueryContext(ctx, prompt)
}
