package batch

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/llm"
	"repro/internal/prompt"
	"repro/internal/promptcache"
)

// Checkpoint/resume: the JSONL audit log doubles as a durable record of
// which queries were already paid for. After a crash (or a budget
// exhaustion) mid-batch, ReplayLog recovers the completed outcomes and
// FilterDone trims the request list so the re-run only bills the
// remainder.

// ResumeRecord is one recovered outcome plus the time it was logged,
// which reconciliation against the persistent cache uses to decide
// which of two conflicting records is newer.
type ResumeRecord struct {
	Response llm.Response
	Time     time.Time
}

// ReplayLog parses a JSONL audit log produced by Executor and returns
// the successful outcomes keyed by request ID. Lines recording errors
// or budget skips are ignored (those queries must re-run); later lines
// for an ID supersede earlier ones. Malformed lines abort with an
// error rather than silently dropping paid work.
func ReplayLog(r io.Reader) (map[string]llm.Response, error) {
	recs, err := ReplayLogRecords(r)
	if err != nil {
		return nil, err
	}
	out := make(map[string]llm.Response, len(recs))
	for id, rec := range recs {
		out[id] = rec.Response
	}
	return out, nil
}

// ReplayLogRecords is ReplayLog keeping each outcome's log timestamp.
// A line with a missing or unparseable time gets the zero time, which
// reconciliation treats as older than any cache entry.
func ReplayLogRecords(r io.Reader) (map[string]ResumeRecord, error) {
	out := make(map[string]ResumeRecord)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var l logLine
		if err := json.Unmarshal(raw, &l); err != nil {
			return nil, fmt.Errorf("batch: log line %d unparseable: %w", lineNo, err)
		}
		if l.ID == "" {
			return nil, fmt.Errorf("batch: log line %d has no request ID", lineNo)
		}
		if l.Error != "" {
			delete(out, l.ID) // a later failure supersedes nothing, but be safe
			continue
		}
		if l.InputTokens < 0 || l.OutputTokens < 0 {
			return nil, fmt.Errorf("batch: log line %d has negative token counts", lineNo)
		}
		when, _ := time.Parse(time.RFC3339Nano, l.Time) // zero time when absent/invalid
		out[l.ID] = ResumeRecord{
			Response: llm.Response{
				Text:         prompt.FormatResponse(l.Category),
				Category:     l.Category,
				InputTokens:  l.InputTokens,
				OutputTokens: l.OutputTokens,
			},
			Time: when,
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("batch: reading log: %w", err)
	}
	return out, nil
}

// ReconcileWithCache validates recovered resume records against the
// persistent prompt cache and returns the agreed outcomes for
// FilterDone. The two records for one prompt can disagree: a
// garbage-fault answer logged before a retry succeeded, a cache filled
// by a later corrected run, or the mirror image. The rule is
// last-writer-wins — whichever side is newer supplies the response —
// and the loser is repaired in place (the cache is overwritten with
// the newer answer) so the two stores agree afterwards.
//
// prompts maps request IDs to the exact prompt text that produced
// them; IDs without a prompt entry pass through unvalidated. A nil
// cache returns the records unchanged.
func ReconcileWithCache(records map[string]ResumeRecord, prompts map[string]string, c *promptcache.Cache, namespace string) map[string]llm.Response {
	out := make(map[string]llm.Response, len(records))
	for id, rec := range records {
		out[id] = rec.Response
		promptText, ok := prompts[id]
		if !ok || c == nil {
			continue
		}
		key := promptcache.KeyOf(namespace, promptText)
		cached, cachedAt, ok := c.GetEntry(key)
		switch {
		case !ok:
			// The cache never saw this prompt (it predates the disk
			// tier, or was evicted): backfill so future runs hit.
			_ = c.Put(key, rec.Response)
		case cached.Category == rec.Response.Category:
			// Agreement; nothing to repair.
		case cachedAt.After(rec.Time):
			// The cache is newer — e.g. the audit log recorded a garbage
			// answer and a later retry wrote the corrected one to disk.
			out[id] = cached
		default:
			// The resume record is newer: the log captured a corrected
			// retry the cache missed. Overwrite the stale cache entry.
			_ = c.Put(key, rec.Response)
		}
	}
	return out
}

// FilterDone splits requests into the ones still to run and the
// already-completed outcomes recovered from a log replay.
func FilterDone(reqs []Request, done map[string]llm.Response) (todo []Request, recovered map[string]Outcome) {
	recovered = make(map[string]Outcome)
	for _, r := range reqs {
		if resp, ok := done[r.ID]; ok {
			recovered[r.ID] = Outcome{Response: resp, Cached: true}
			continue
		}
		todo = append(todo, r)
	}
	return todo, recovered
}
