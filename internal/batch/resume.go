package batch

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/llm"
	"repro/internal/prompt"
)

// Checkpoint/resume: the JSONL audit log doubles as a durable record of
// which queries were already paid for. After a crash (or a budget
// exhaustion) mid-batch, ReplayLog recovers the completed outcomes and
// FilterDone trims the request list so the re-run only bills the
// remainder.

// ReplayLog parses a JSONL audit log produced by Executor and returns
// the successful outcomes keyed by request ID. Lines recording errors
// or budget skips are ignored (those queries must re-run); later lines
// for an ID supersede earlier ones. Malformed lines abort with an
// error rather than silently dropping paid work.
func ReplayLog(r io.Reader) (map[string]llm.Response, error) {
	out := make(map[string]llm.Response)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var l logLine
		if err := json.Unmarshal(raw, &l); err != nil {
			return nil, fmt.Errorf("batch: log line %d unparseable: %w", lineNo, err)
		}
		if l.ID == "" {
			return nil, fmt.Errorf("batch: log line %d has no request ID", lineNo)
		}
		if l.Error != "" {
			delete(out, l.ID) // a later failure supersedes nothing, but be safe
			continue
		}
		if l.InputTokens < 0 || l.OutputTokens < 0 {
			return nil, fmt.Errorf("batch: log line %d has negative token counts", lineNo)
		}
		out[l.ID] = llm.Response{
			Text:         prompt.FormatResponse(l.Category),
			Category:     l.Category,
			InputTokens:  l.InputTokens,
			OutputTokens: l.OutputTokens,
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("batch: reading log: %w", err)
	}
	return out, nil
}

// FilterDone splits requests into the ones still to run and the
// already-completed outcomes recovered from a log replay.
func FilterDone(reqs []Request, done map[string]llm.Response) (todo []Request, recovered map[string]Outcome) {
	recovered = make(map[string]Outcome)
	for _, r := range reqs {
		if resp, ok := done[r.ID]; ok {
			recovered[r.ID] = Outcome{Response: resp, Cached: true}
			continue
		}
		todo = append(todo, r)
	}
	return todo, recovered
}
