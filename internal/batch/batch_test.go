package batch

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/llm"
	"repro/internal/token"
)

// scripted is a test predictor with injectable failures.
type scripted struct {
	mu sync.Mutex
	// failFirst fails the first N calls per prompt with failErr.
	failFirst int
	failErr   error
	calls     map[string]int
	total     atomic.Int64
	tokens    int // tokens billed per call (default 10+2)
}

func newScripted() *scripted { return &scripted{calls: map[string]int{}} }

func (s *scripted) Name() string { return "scripted" }

func (s *scripted) Query(prompt string) (llm.Response, error) {
	s.total.Add(1)
	s.mu.Lock()
	s.calls[prompt]++
	n := s.calls[prompt]
	s.mu.Unlock()
	if n <= s.failFirst {
		return llm.Response{}, s.failErr
	}
	in, out := 10, 2
	if s.tokens > 0 {
		in, out = s.tokens, 0
	}
	return llm.Response{
		Text:        "Category: ['A']",
		Category:    "A",
		InputTokens: in, OutputTokens: out,
	}, nil
}

func reqs(n int) []Request {
	out := make([]Request, n)
	for i := range out {
		out[i] = Request{ID: fmt.Sprintf("q%03d", i), Prompt: fmt.Sprintf("prompt %d", i)}
	}
	return out
}

func TestExecuteAllSucceed(t *testing.T) {
	p := newScripted()
	e, err := New(p, Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Execute(context.Background(), reqs(50))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 50 || res.Failed != 0 || res.Skipped != 0 {
		t.Fatalf("outcomes=%d failed=%d skipped=%d, want 50/0/0",
			len(res.Outcomes), res.Failed, res.Skipped)
	}
	if res.TokensUsed != 50*12 {
		t.Errorf("TokensUsed = %d, want %d", res.TokensUsed, 50*12)
	}
	for id, o := range res.Outcomes {
		if o.Err != nil || o.Response.Category != "A" || o.Attempts != 1 {
			t.Fatalf("%s: unexpected outcome %+v", id, o)
		}
	}
}

func TestExecuteRetriesTransientFailures(t *testing.T) {
	p := newScripted()
	p.failFirst = 2
	p.failErr = &llm.APIError{StatusCode: http.StatusServiceUnavailable, Message: "down"}
	e, err := New(p, Config{Workers: 2, MaxRetries: 2, RetryDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Execute(context.Background(), reqs(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Fatalf("failed=%d after retries, want 0", res.Failed)
	}
	for id, o := range res.Outcomes {
		if o.Attempts != 3 {
			t.Errorf("%s: attempts=%d, want 3", id, o.Attempts)
		}
	}
}

func TestExecuteDoesNotRetryClientErrors(t *testing.T) {
	p := newScripted()
	p.failFirst = 1000
	p.failErr = &llm.APIError{StatusCode: http.StatusBadRequest, Message: "bad"}
	e, err := New(p, Config{Workers: 1, MaxRetries: 5, RetryDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Execute(context.Background(), reqs(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 3 {
		t.Fatalf("failed=%d, want 3", res.Failed)
	}
	if got := p.total.Load(); got != 3 {
		t.Errorf("predictor called %d times, want 3 (no retries on 400)", got)
	}
}

func TestExecuteRetryExhaustion(t *testing.T) {
	p := newScripted()
	p.failFirst = 1000
	p.failErr = errors.New("network down")
	e, err := New(p, Config{Workers: 1, MaxRetries: 2, RetryDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Execute(context.Background(), reqs(1))
	if err != nil {
		t.Fatal(err)
	}
	o := res.Outcomes["q000"]
	if o.Err == nil || o.Attempts != 3 {
		t.Fatalf("outcome %+v, want error after 3 attempts", o)
	}
	if !strings.Contains(o.Err.Error(), "network down") {
		t.Errorf("error %q lost the cause", o.Err)
	}
}

func TestExecuteBudgetGuard(t *testing.T) {
	p := newScripted()
	p.tokens = 100
	// Budget for ~3 queries; workers=1 so overshoot is bounded at one.
	e, err := New(p, Config{Workers: 1, BudgetTokens: 300})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Execute(context.Background(), reqs(10))
	if err != nil {
		t.Fatal(err)
	}
	done := len(res.Outcomes) - res.Skipped
	if done != 3 {
		t.Errorf("executed %d queries on a 300-token budget, want 3", done)
	}
	if res.Skipped != 7 {
		t.Errorf("skipped=%d, want 7", res.Skipped)
	}
	for _, o := range res.Outcomes {
		if o.Err != nil && !errors.Is(o.Err, ErrBudgetExhausted) {
			t.Fatalf("unexpected error kind: %v", o.Err)
		}
	}
	if res.TokensUsed != 300 {
		t.Errorf("TokensUsed=%d, want 300", res.TokensUsed)
	}
}

func TestExecuteCache(t *testing.T) {
	p := newScripted()
	e, err := New(p, Config{Workers: 1, Cache: true})
	if err != nil {
		t.Fatal(err)
	}
	same := []Request{
		{ID: "a", Prompt: "dup"},
		{ID: "b", Prompt: "dup"},
		{ID: "c", Prompt: "dup"},
		{ID: "d", Prompt: "other"},
	}
	res, err := e.Execute(context.Background(), same)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHits != 2 {
		t.Errorf("cache hits=%d, want 2", res.CacheHits)
	}
	if got := p.total.Load(); got != 2 {
		t.Errorf("predictor called %d times, want 2", got)
	}
	// Cache persists across Execute calls on the same executor.
	res2, err := e.Execute(context.Background(), []Request{{ID: "e", Prompt: "dup"}})
	if err != nil {
		t.Fatal(err)
	}
	if res2.CacheHits != 1 {
		t.Errorf("second batch cache hits=%d, want 1", res2.CacheHits)
	}
}

func TestExecuteJSONLLog(t *testing.T) {
	var buf bytes.Buffer
	p := newScripted()
	e, err := New(p, Config{Workers: 1, Log: &buf, Cache: true})
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.Execute(context.Background(), []Request{
		{ID: "x", Prompt: "p1"}, {ID: "y", Prompt: "p1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("unparseable log line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 2 {
		t.Fatalf("log has %d lines, want 2", len(lines))
	}
	for _, m := range lines {
		if m["prompt_sha256"] == "" || m["id"] == "" {
			t.Errorf("log line missing fields: %v", m)
		}
		if s, ok := m["prompt_sha256"].(string); !ok || strings.Contains(s, "p1") {
			t.Errorf("raw prompt leaked into log: %v", m)
		}
	}
	cachedLines := 0
	for _, m := range lines {
		if m["cached"] == true {
			cachedLines++
		}
	}
	if cachedLines != 1 {
		t.Errorf("cached log lines=%d, want 1", cachedLines)
	}
}

func TestExecuteContextCancel(t *testing.T) {
	p := newScripted()
	p.failFirst = 1000
	p.failErr = errors.New("always failing") // forces retry waits
	ctx, cancel := context.WithCancel(context.Background())
	e, err := New(p, Config{Workers: 1, MaxRetries: 5, RetryDelay: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	res, err := e.Execute(ctx, reqs(20))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 20 {
		t.Fatalf("outcomes=%d, want every request accounted for", len(res.Outcomes))
	}
	cancelled := 0
	for _, o := range res.Outcomes {
		if errors.Is(o.Err, context.Canceled) {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Error("no request reported context cancellation")
	}
}

func TestExecuteQPSPacing(t *testing.T) {
	p := newScripted()
	e, err := New(p, Config{Workers: 4, QPS: 200})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := e.Execute(context.Background(), reqs(20)); err != nil {
		t.Fatal(err)
	}
	// 20 queries at 200 QPS need ≥ ~95ms regardless of worker count.
	if elapsed := time.Since(start); elapsed < 90*time.Millisecond {
		t.Errorf("20 queries at 200 QPS finished in %v, rate limit not applied", elapsed)
	}
}

func TestExecuteInputValidation(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Error("nil predictor accepted")
	}
	if _, err := New(newScripted(), Config{Workers: -1}); err == nil {
		t.Error("negative workers accepted")
	}
	e, err := New(newScripted(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(context.Background(), []Request{{ID: "a"}, {ID: "a"}}); err == nil {
		t.Error("duplicate IDs accepted")
	}
	if _, err := e.Execute(nil, reqs(1)); err == nil { //nolint:staticcheck // testing nil ctx
		t.Error("nil context accepted")
	}
}

// TestSerializeAllowsConcurrentSim drives a real simulated LLM through
// a concurrent executor and checks token accounting stays consistent.
func TestSerializeAllowsConcurrentSim(t *testing.T) {
	g, prompts := simPrompts(t, 40)
	sim := llm.NewSim(llm.GPT35(), g.Vocab, g.Classes, 4)
	e, err := New(Serialize(sim), Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Execute(context.Background(), prompts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Fatalf("failed=%d", res.Failed)
	}
	var want token.Meter = *sim.Meter()
	if res.TokensUsed != want.Total() {
		t.Errorf("executor counted %d tokens, sim metered %d", res.TokensUsed, want.Total())
	}
}

func TestExecuteExtremeQPSDoesNotPanic(t *testing.T) {
	// Regression: QPS above 1e9 used to compute a 0ns ticker interval,
	// which panics inside time.NewTicker. The interval is now clamped.
	p := newScripted()
	e, err := New(p, Config{Workers: 4, QPS: 5e9})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Execute(context.Background(), reqs(20))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 20 || res.Failed != 0 {
		t.Fatalf("outcomes=%d failed=%d, want 20/0", len(res.Outcomes), res.Failed)
	}
}

// slowScripted delays each underlying call so that concurrent duplicate
// prompts genuinely overlap in flight.
type slowScripted struct {
	scripted
	delay time.Duration
}

func (s *slowScripted) Query(prompt string) (llm.Response, error) {
	time.Sleep(s.delay)
	return s.scripted.Query(prompt)
}

func TestExecuteSingleFlightDeduplicatesConcurrentPrompts(t *testing.T) {
	p := &slowScripted{scripted: scripted{calls: map[string]int{}}, delay: 50 * time.Millisecond}
	e, err := New(p, Config{Workers: 8, Cache: true})
	if err != nil {
		t.Fatal(err)
	}
	rs := make([]Request, 8)
	for i := range rs {
		rs[i] = Request{ID: fmt.Sprintf("q%d", i), Prompt: "same prompt"}
	}
	res, err := e.Execute(context.Background(), rs)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.total.Load(); got != 1 {
		t.Fatalf("predictor called %d times for 8 identical in-flight prompts, want 1", got)
	}
	cached := 0
	for _, o := range res.Outcomes {
		if o.Err != nil {
			t.Fatalf("unexpected outcome error: %v", o.Err)
		}
		if o.Cached {
			cached++
		}
	}
	if cached != 7 {
		t.Fatalf("cached outcomes = %d, want 7 (one leader call, seven coalesced)", cached)
	}
	// Only the leader's call is billed.
	if res.TokensUsed != 12 {
		t.Fatalf("TokensUsed = %d, want 12", res.TokensUsed)
	}
}

func TestExecuteSingleFlightLeaderErrorPropagates(t *testing.T) {
	p := &slowScripted{
		scripted: scripted{calls: map[string]int{}, failFirst: 1000, failErr: errors.New("bad request")},
		delay:    30 * time.Millisecond,
	}
	e, err := New(p, Config{Workers: 4, Cache: true, MaxRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	rs := make([]Request, 4)
	for i := range rs {
		rs[i] = Request{ID: fmt.Sprintf("q%d", i), Prompt: "same prompt"}
	}
	res, err := e.Execute(context.Background(), rs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 4 {
		t.Fatalf("Failed = %d, want 4 (leader error reaches every waiter)", res.Failed)
	}
	if got := p.total.Load(); got != 1 {
		t.Fatalf("predictor called %d times, want 1", got)
	}
}

func TestExecuteDisableRetriesSentinel(t *testing.T) {
	p := newScripted()
	p.failFirst = 1
	p.failErr = errors.New("transient: 503")
	e, err := New(p, Config{Workers: 1, MaxRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Execute(context.Background(), reqs(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 3 {
		t.Fatalf("Failed = %d, want 3 (MaxRetries: -1 must disable retries)", res.Failed)
	}
	if got := p.total.Load(); got != 3 {
		t.Fatalf("predictor called %d times, want 3 (no retry attempts)", got)
	}
}
