package prefix

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/prompt"
	"repro/internal/tag"
	"repro/internal/token"
)

func TestAnalyzeIdenticalPrompts(t *testing.T) {
	p := "the same prompt every time"
	st := Analyze([]string{p, p, p, p})
	if st.Prompts != 4 {
		t.Fatalf("Prompts = %d", st.Prompts)
	}
	want := token.Count(p)
	if st.UniqueTokens != want {
		t.Errorf("UniqueTokens = %d, want %d (one copy)", st.UniqueTokens, want)
	}
	if st.SharedTokens != 3*want {
		t.Errorf("SharedTokens = %d, want %d", st.SharedTokens, 3*want)
	}
	if st.SavedFraction() != 0.75 {
		t.Errorf("SavedFraction = %v, want 0.75", st.SavedFraction())
	}
}

func TestAnalyzeDisjointPrompts(t *testing.T) {
	st := Analyze([]string{"alpha beta gamma", "delta epsilon zeta"})
	if st.SharedTokens != 0 {
		t.Errorf("disjoint prompts shared %d tokens", st.SharedTokens)
	}
}

func TestAnalyzeCommonPrefix(t *testing.T) {
	st := Analyze([]string{
		"instructions: classify this document one",
		"instructions: classify this document two",
	})
	// Everything up to the divergence point is shared once.
	if st.SharedTokens < 4 {
		t.Errorf("common prefix not detected: %+v", st)
	}
	if st.SavedFraction() <= 0.3 {
		t.Errorf("SavedFraction = %v, want > 0.3", st.SavedFraction())
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	st := Analyze(nil)
	if st.TotalTokens != 0 || st.SavedFraction() != 0 {
		t.Errorf("empty batch: %+v", st)
	}
	if !strings.Contains(st.String(), "0 prompts") {
		t.Errorf("String() = %q", st.String())
	}
}

// buildBatch renders Table III prompts for n distinct targets.
func buildBatch(n int) []string {
	spec, err := tag.SpecByName("cora")
	if err != nil {
		panic(err)
	}
	g := tag.Generate(spec, 31, tag.Options{Scale: 0.1})
	out := make([]string, n)
	for i := range out {
		node := g.Nodes[i%g.NumNodes()]
		out[i] = prompt.Build(prompt.Request{
			TargetTitle:    node.Title,
			TargetAbstract: node.Abstract,
			Categories:     g.Classes,
		})
	}
	return out
}

// TestPaperTemplateSharesAlmostNothing: under the Table III layout the
// query text leads, so prefix caching recovers only the tiny "Target
// paper: Title:" boilerplate — the quantitative version of the paper's
// argument that serving-level MQO does not fit this workload.
func TestPaperTemplateSharesAlmostNothing(t *testing.T) {
	st := Analyze(buildBatch(40))
	if st.SavedFraction() > 0.15 {
		t.Errorf("paper template shared %.1f%%, expected almost nothing",
			100*st.SavedFraction())
	}
}

// TestReorderSharedFirstRecoversBoilerplate: moving the shared Task
// block to the front makes it cacheable across the batch.
func TestReorderSharedFirstRecoversBoilerplate(t *testing.T) {
	batch := buildBatch(40)
	before := Analyze(batch)
	after := Analyze(ReorderSharedFirst(batch))
	if after.SharedTokens <= before.SharedTokens {
		t.Fatalf("reordering did not increase sharing: %d -> %d",
			before.SharedTokens, after.SharedTokens)
	}
	// The newline separator carries no tokens: content is preserved.
	if after.TotalTokens != before.TotalTokens {
		t.Fatalf("reordering changed content: %d -> %d tokens",
			before.TotalTokens, after.TotalTokens)
	}
}

func TestSplitTemplate(t *testing.T) {
	p := prompt.Build(prompt.Request{
		TargetTitle: "t", TargetAbstract: "a", Categories: []string{"A"},
	})
	q, s := SplitTemplate(p)
	if s == "" || !strings.HasPrefix(s, "Task: ") {
		t.Fatalf("shared part = %q", s)
	}
	if q+s != p {
		t.Fatal("split lost content")
	}
	q2, s2 := SplitTemplate("no task block here")
	if s2 != "" || q2 != "no task block here" {
		t.Fatalf("templateless prompt mangled: %q / %q", q2, s2)
	}
}

// TestAnalyzeProperties: shared tokens never negative, never exceed
// total, and adding a duplicate prompt only increases sharing.
func TestAnalyzeProperties(t *testing.T) {
	f := func(a, b string, dup bool) bool {
		batch := []string{a, b}
		if dup {
			batch = append(batch, a)
		}
		st := Analyze(batch)
		if st.SharedTokens < 0 || st.SharedTokens > st.TotalTokens {
			return false
		}
		if dup {
			base := Analyze([]string{a, b})
			if st.SharedTokens < base.SharedTokens {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
