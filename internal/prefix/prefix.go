// Package prefix implements the serving-level multi-query optimization
// the paper's related work contrasts with (Section II-C): shared-prefix
// reuse across a batch of LLM prompts, as in PagedAttention/Hydragen-
// style systems [31–33] and the column-reordering optimizations of
// [49]. A batch's prompts are inserted into a token trie; every token
// that lies on an already-materialized path is a cache hit whose
// KV-computation (and, on some pricing models, cost) is shared.
//
// Two findings this package makes quantitative:
//
//   - Under the paper's Table III template the *query-specific* target
//     text comes first, so prompts diverge at token one and prefix
//     sharing recovers almost nothing — which is exactly why the paper
//     argues graph-aware MQO is needed for this workload.
//   - Reordering the template to lead with the shared task description
//     (the [49] trick) recovers the boilerplate, but still cannot
//     touch the dominant per-query neighbor text; the two families of
//     optimization compose rather than compete.
package prefix

import (
	"fmt"

	"repro/internal/token"
)

// trieNode is one token position shared by one or more prompts.
type trieNode struct {
	children map[string]*trieNode
}

// Stats summarizes prefix sharing over one batch.
type Stats struct {
	// Prompts is the batch size.
	Prompts int
	// TotalTokens is the sum of all prompt lengths (what a cacheless
	// system processes).
	TotalTokens int
	// UniqueTokens counts trie nodes: tokens that must actually be
	// computed once each under perfect prefix caching.
	UniqueTokens int
	// SharedTokens = TotalTokens − UniqueTokens: work served from
	// cache.
	SharedTokens int
}

// SavedFraction is the share of batch tokens served from the cache.
func (s Stats) SavedFraction() float64 {
	if s.TotalTokens == 0 {
		return 0
	}
	return float64(s.SharedTokens) / float64(s.TotalTokens)
}

// String renders the stats for humans.
func (s Stats) String() string {
	return fmt.Sprintf("%d prompts, %d tokens, %d shared (%.1f%%)",
		s.Prompts, s.TotalTokens, s.SharedTokens, 100*s.SavedFraction())
}

// Analyze inserts every prompt into a token trie and reports how much
// of the batch is shared prefix. Tokenization uses the repository's
// deterministic subword tokenizer, the same unit as every budget.
func Analyze(prompts []string) Stats {
	root := &trieNode{children: map[string]*trieNode{}}
	st := Stats{Prompts: len(prompts)}
	for _, p := range prompts {
		toks := token.Tokenize(p)
		st.TotalTokens += len(toks)
		node := root
		for _, tk := range toks {
			child, ok := node.children[tk]
			if !ok {
				child = &trieNode{children: map[string]*trieNode{}}
				node.children[tk] = child
				st.UniqueTokens++
			}
			node = child
		}
	}
	st.SharedTokens = st.TotalTokens - st.UniqueTokens
	return st
}

// SharedFirst rewrites a Table III prompt so its batch-invariant parts
// (task description, category list, output instruction) come first and
// the query-specific text last — the row/column-reordering optimization
// of [49] applied to this template. The semantic content is unchanged;
// only the order of the blocks moves.
func SharedFirst(taskDescription, querySpecific string) string {
	return taskDescription + "\n" + querySpecific
}

// SplitTemplate separates a Table III prompt into its query-specific
// prefix and its shared task-description suffix (the "Task:" block).
// Prompts without a Task block are returned unchanged with an empty
// shared part.
func SplitTemplate(prompt string) (querySpecific, shared string) {
	const marker = "Task: \n"
	for i := 0; i+len(marker) <= len(prompt); i++ {
		if prompt[i:i+len(marker)] == marker {
			return prompt[:i], prompt[i:]
		}
	}
	return prompt, ""
}

// ReorderSharedFirst converts a batch of Table III prompts to the
// shared-prefix-first layout.
func ReorderSharedFirst(prompts []string) []string {
	out := make([]string, len(prompts))
	for i, p := range prompts {
		q, s := SplitTemplate(p)
		if s == "" {
			out[i] = p
			continue
		}
		out[i] = SharedFirst(s, q)
	}
	return out
}
