package nn

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

// blobs generates a linearly separable 2-D dataset with `classes`
// Gaussian clusters.
func blobs(seed uint64, n, classes int, spread float64) ([][]float64, []int) {
	rng := xrand.New(seed)
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		k := i % classes
		angle := 2 * math.Pi * float64(k) / float64(classes)
		cx, cy := 3*math.Cos(angle), 3*math.Sin(angle)
		X[i] = []float64{cx + spread*rng.NormFloat64(), cy + spread*rng.NormFloat64()}
		y[i] = k
	}
	return X, y
}

func TestSoftmaxSumsToOne(t *testing.T) {
	p := Softmax([]float64{1, 2, 3, 4})
	var sum float64
	for _, v := range p {
		sum += v
		if v <= 0 || v >= 1 {
			t.Fatalf("softmax component %v out of (0,1)", v)
		}
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("softmax sums to %v", sum)
	}
}

func TestSoftmaxStableForLargeLogits(t *testing.T) {
	p := Softmax([]float64{1000, 1001, 999})
	for _, v := range p {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("softmax unstable: %v", p)
		}
	}
	if Argmax(p) != 1 {
		t.Fatalf("argmax of %v should be 1", p)
	}
}

func TestSoftmaxOrderPreserving(t *testing.T) {
	f := func(a, b float64) bool {
		a, b = math.Tanh(a)*10, math.Tanh(b)*10
		p := Softmax([]float64{a, b})
		return (a >= b) == (p[0] >= p[1])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestArgmax(t *testing.T) {
	if Argmax([]float64{0.1, 0.7, 0.2}) != 1 {
		t.Fatal("argmax wrong")
	}
	if Argmax([]float64{5}) != 0 {
		t.Fatal("single-element argmax wrong")
	}
	if Argmax([]float64{2, 2, 1}) != 0 {
		t.Fatal("tie should pick first")
	}
}

func TestEntropyBounds(t *testing.T) {
	if got := Entropy([]float64{1, 0, 0}); got != 0 {
		t.Fatalf("entropy of point mass = %v, want 0", got)
	}
	k := 5
	uni := make([]float64, k)
	for i := range uni {
		uni[i] = 1 / float64(k)
	}
	want := math.Log(float64(k))
	if got := Entropy(uni); math.Abs(got-want) > 1e-12 {
		t.Fatalf("uniform entropy = %v, want %v", got, want)
	}
}

func TestQuickEntropyNonNegative(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		p := make([]float64, len(raw))
		var sum float64
		for i, v := range raw {
			p[i] = math.Abs(math.Tanh(v))
			sum += p[i]
		}
		if sum == 0 {
			return true
		}
		for i := range p {
			p[i] /= sum
		}
		h := Entropy(p)
		return h >= 0 && h <= math.Log(float64(len(p)))+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLinearModelLearnsBlobs(t *testing.T) {
	X, y := blobs(1, 300, 3, 0.5)
	cfg := DefaultMLPConfig()
	m := TrainMLP(X, y, 3, cfg)
	acc := Accuracy(m.Probs, X, y)
	if acc < 0.95 {
		t.Fatalf("linear model train accuracy %.3f, want >= 0.95", acc)
	}
}

func TestHiddenLayerLearnsXOR(t *testing.T) {
	// XOR is not linearly separable; a hidden layer must solve it.
	var X [][]float64
	var y []int
	rng := xrand.New(2)
	for i := 0; i < 400; i++ {
		a, b := rng.Intn(2), rng.Intn(2)
		X = append(X, []float64{
			float64(a) + 0.1*rng.NormFloat64(),
			float64(b) + 0.1*rng.NormFloat64(),
		})
		y = append(y, a^b)
	}
	cfg := MLPConfig{Hidden: []int{16}, LR: 0.01, Epochs: 300, Batch: 32, Seed: 3}
	m := TrainMLP(X, y, 2, cfg)
	if acc := Accuracy(m.Probs, X, y); acc < 0.95 {
		t.Fatalf("MLP XOR accuracy %.3f, want >= 0.95", acc)
	}
}

func TestGeneralizationToHeldOut(t *testing.T) {
	X, y := blobs(4, 400, 4, 0.6)
	Xtr, ytr := X[:300], y[:300]
	Xte, yte := X[300:], y[300:]
	m := TrainMLP(Xtr, ytr, 4, DefaultMLPConfig())
	if acc := Accuracy(m.Probs, Xte, yte); acc < 0.9 {
		t.Fatalf("held-out accuracy %.3f, want >= 0.9", acc)
	}
}

func TestTrainDeterministic(t *testing.T) {
	X, y := blobs(5, 120, 3, 0.5)
	cfg := DefaultMLPConfig()
	m1 := TrainMLP(X, y, 3, cfg)
	m2 := TrainMLP(X, y, 3, cfg)
	p1, p2 := m1.Probs(X[0]), m2.Probs(X[0])
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("identical configs produced different models")
		}
	}
}

func TestProbsAreDistribution(t *testing.T) {
	X, y := blobs(6, 90, 3, 0.5)
	m := TrainMLP(X, y, 3, DefaultMLPConfig())
	for _, x := range X[:20] {
		p := m.Probs(x)
		var sum float64
		for _, v := range p {
			if v < 0 {
				t.Fatalf("negative probability %v", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("probabilities sum to %v", sum)
		}
	}
}

func TestEntropyLowerOnEasyPoints(t *testing.T) {
	// Points near a cluster center must get lower predictive entropy
	// than points between clusters — the property the inadequacy
	// measure's entropy channel relies on.
	X, y := blobs(7, 300, 2, 0.4)
	m := TrainMLP(X, y, 2, DefaultMLPConfig())
	easy := m.Probs([]float64{3, 0}) // center of class 0
	hard := m.Probs([]float64{0, 0}) // midpoint between clusters
	if Entropy(easy) >= Entropy(hard) {
		t.Fatalf("easy entropy %v not below hard entropy %v", Entropy(easy), Entropy(hard))
	}
}

func TestTrainPanicsOnBadInput(t *testing.T) {
	cases := []func(){
		func() { TrainMLP(nil, nil, 2, DefaultMLPConfig()) },
		func() { TrainMLP([][]float64{{1}}, []int{0, 1}, 2, DefaultMLPConfig()) },
		func() { TrainMLP([][]float64{{1}, {2, 3}}, []int{0, 1}, 2, DefaultMLPConfig()) },
		func() { TrainMLP([][]float64{{1}, {2}}, []int{0, 5}, 2, DefaultMLPConfig()) },
		func() { TrainMLP([][]float64{{1}, {2}}, []int{0, 1}, 1, DefaultMLPConfig()) },
		func() { TrainMLP([][]float64{{1}, {2}}, []int{0, 1}, 2, MLPConfig{}) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestKFoldEnsembleSize(t *testing.T) {
	X, y := blobs(8, 200, 3, 0.5)
	e := TrainKFold(X, y, 3, 3, DefaultMLPConfig())
	if e.Models() != 3 {
		t.Fatalf("ensemble has %d models, want 3", e.Models())
	}
	// Degenerate k falls back to a single model.
	e1 := TrainKFold(X[:4], y[:4], 3, 3, DefaultMLPConfig())
	if e1.Models() != 1 {
		t.Fatalf("tiny dataset ensemble has %d models, want 1", e1.Models())
	}
}

func TestKFoldEnsembleAccuracy(t *testing.T) {
	X, y := blobs(9, 400, 3, 0.6)
	e := TrainKFold(X[:300], y[:300], 3, 3, DefaultMLPConfig())
	if acc := Accuracy(e.Probs, X[300:], y[300:]); acc < 0.9 {
		t.Fatalf("k-fold held-out accuracy %.3f", acc)
	}
}

func TestEnsembleProbsAreDistribution(t *testing.T) {
	X, y := blobs(10, 150, 3, 0.5)
	e := TrainKFold(X, y, 3, 3, DefaultMLPConfig())
	p := e.Probs(X[0])
	var sum float64
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("ensemble probs sum to %v", sum)
	}
}

func TestLinRegRecoversCoefficients(t *testing.T) {
	rng := xrand.New(11)
	var X [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		a, b := rng.Float64(), rng.Float64()
		X = append(X, []float64{a, b})
		y = append(y, 2*a-3*b+0.5)
	}
	m, err := FitLinReg(X, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	w := m.Weights()
	for i, want := range []float64{2, -3, 0.5} {
		if math.Abs(w[i]-want) > 1e-6 {
			t.Fatalf("weight %d = %v, want %v", i, w[i], want)
		}
	}
}

func TestLinRegPredict(t *testing.T) {
	m, err := FitLinReg([][]float64{{0}, {1}, {2}, {3}}, []float64{1, 3, 5, 7}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{10}); math.Abs(got-21) > 1e-6 {
		t.Fatalf("Predict(10) = %v, want 21", got)
	}
}

func TestLinRegRidgeShrinks(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{2, 4, 6, 8}
	m0, err := FitLinReg(X, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	mR, err := FitLinReg(X, y, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mR.Weights()[0]) >= math.Abs(m0.Weights()[0]) {
		t.Fatal("ridge penalty did not shrink the slope")
	}
}

func TestLinRegErrors(t *testing.T) {
	if _, err := FitLinReg(nil, nil, 0); err == nil {
		t.Fatal("expected error on empty input")
	}
	if _, err := FitLinReg([][]float64{{1}, {2, 3}}, []float64{1, 2}, 0); err == nil {
		t.Fatal("expected error on ragged input")
	}
	// Singular: duplicated feature columns with no ridge.
	X := [][]float64{{1, 1}, {2, 2}, {3, 3}}
	if _, err := FitLinReg(X, []float64{1, 2, 3}, 0); err == nil {
		t.Fatal("expected error on singular system")
	}
	// Ridge rescues it.
	if _, err := FitLinReg(X, []float64{1, 2, 3}, 1e-3); err != nil {
		t.Fatalf("ridge should handle collinearity: %v", err)
	}
}

func TestLinRegPredictDimensionPanic(t *testing.T) {
	m, err := FitLinReg([][]float64{{1, 2}, {2, 1}, {0, 1}}, []float64{1, 2, 3}, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	m.Predict([]float64{1})
}

// Property: fitted linear regression reproduces exact linear data for
// random coefficient choices.
func TestQuickLinRegExact(t *testing.T) {
	f := func(seed uint64, wRaw, bRaw float64) bool {
		w := math.Tanh(wRaw) * 5
		b := math.Tanh(bRaw) * 5
		rng := xrand.New(seed)
		var X [][]float64
		var y []float64
		for i := 0; i < 30; i++ {
			x := rng.Float64() * 10
			X = append(X, []float64{x})
			y = append(y, w*x+b)
		}
		m, err := FitLinReg(X, y, 0)
		if err != nil {
			// Degenerate draws (all-identical x) may be singular.
			return true
		}
		got := m.Predict([]float64{5})
		return math.Abs(got-(w*5+b)) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAccuracyEmpty(t *testing.T) {
	if got := Accuracy(func([]float64) []float64 { return nil }, nil, nil); got != 0 {
		t.Fatalf("Accuracy on empty = %v, want 0", got)
	}
}
