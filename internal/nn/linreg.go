package nn

import "fmt"

// LinReg is a ridge linear regression model fitted in closed form via
// the normal equations. The paper's g_θ2 (Eq. 10) is exactly this: a
// linear map from the concatenated inadequacy channels to a scalar
// inadequacy score, fit by least squares on the calibration subset.
type LinReg struct {
	weights []float64 // last entry is the intercept
}

// FitLinReg solves min_w Σ (y - w·[x,1])² + lambda‖w‖² and returns the
// model. All rows of X must share one dimensionality. lambda adds ridge
// regularization (use a small positive value for numerical stability
// when channels are nearly collinear).
func FitLinReg(X [][]float64, y []float64, lambda float64) (*LinReg, error) {
	if len(X) == 0 || len(X) != len(y) {
		return nil, fmt.Errorf("nn: linreg needs matching non-empty X (%d) and y (%d)", len(X), len(y))
	}
	d := len(X[0]) + 1 // + intercept
	for _, r := range X {
		if len(r)+1 != d {
			return nil, fmt.Errorf("nn: linreg ragged feature matrix")
		}
	}
	// Build A = XᵀX + λI and b = Xᵀy with the intercept column folded in.
	A := make([][]float64, d)
	for i := range A {
		A[i] = make([]float64, d)
	}
	b := make([]float64, d)
	row := make([]float64, d)
	for n, x := range X {
		copy(row, x)
		row[d-1] = 1
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				A[i][j] += row[i] * row[j]
			}
			b[i] += row[i] * y[n]
		}
	}
	for i := 0; i < d-1; i++ { // do not regularize the intercept
		A[i][i] += lambda
	}
	w, err := solve(A, b)
	if err != nil {
		return nil, err
	}
	return &LinReg{weights: w}, nil
}

// Predict returns w·[x,1].
func (m *LinReg) Predict(x []float64) float64 {
	if len(x)+1 != len(m.weights) {
		panic("nn: linreg input dimension mismatch")
	}
	s := m.weights[len(m.weights)-1]
	for i, xi := range x {
		s += m.weights[i] * xi
	}
	return s
}

// Weights returns a copy of the fitted coefficients; the final entry is
// the intercept.
func (m *LinReg) Weights() []float64 {
	out := make([]float64, len(m.weights))
	copy(out, m.weights)
	return out
}

// solve performs Gaussian elimination with partial pivoting on a copy
// of (A, b).
func solve(A [][]float64, b []float64) ([]float64, error) {
	n := len(A)
	// Work on copies.
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n+1)
		copy(m[i], A[i])
		m[i][n] = b[i]
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if abs(m[r][col]) > abs(m[pivot][col]) {
				pivot = r
			}
		}
		if abs(m[pivot][col]) < 1e-12 {
			return nil, fmt.Errorf("nn: singular system (column %d)", col)
		}
		m[col], m[pivot] = m[pivot], m[col]
		inv := 1 / m[col][col]
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := m[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = m[i][n] / m[i][i]
	}
	return out, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
