// Package nn implements the small neural-network toolkit the paper's
// token pruning strategy depends on, from scratch over the standard
// library.
//
// Section V-A trains an MLP surrogate classifier f_θ1 on the labeled
// set to obtain per-query class probabilities (whose entropy is one
// inadequacy channel), uses 3-fold cross-validation to average those
// probabilities, and fits a linear regression g_θ2 to merge the two
// inadequacy channels into the final text-inadequacy measure D(t_i).
// This package supplies exactly those pieces: a feed-forward MLP with
// ReLU activations and softmax cross-entropy loss trained by Adam, a
// k-fold ensemble wrapper, and ridge linear regression solved in closed
// form.
package nn

import (
	"fmt"
	"math"

	"repro/internal/xrand"
)

// MLPConfig configures TrainMLP. The zero value is not valid; use
// DefaultMLPConfig as a starting point.
type MLPConfig struct {
	Hidden      []int   // hidden layer sizes; empty trains a linear softmax model
	LR          float64 // Adam learning rate
	WeightDecay float64 // L2 penalty coefficient
	Epochs      int
	Batch       int
	Seed        uint64
}

// DefaultMLPConfig mirrors the paper's small-dataset setting: a linear
// model (no hidden layers), learning rate 0.01, no weight decay.
func DefaultMLPConfig() MLPConfig {
	return MLPConfig{LR: 0.01, WeightDecay: 0, Epochs: 120, Batch: 32, Seed: 1}
}

// layer is one dense layer with weights [out][in] and biases [out].
type layer struct {
	w [][]float64
	b []float64
}

func newLayer(rng *xrand.RNG, in, out int) *layer {
	l := &layer{w: make([][]float64, out), b: make([]float64, out)}
	scale := math.Sqrt(2 / float64(in)) // He initialization
	for o := range l.w {
		row := make([]float64, in)
		for i := range row {
			row[i] = rng.NormFloat64() * scale
		}
		l.w[o] = row
	}
	return l
}

// MLP is a trained feed-forward classifier. Obtain one via TrainMLP.
type MLP struct {
	layers  []*layer
	classes int
}

// Classes returns the number of output classes.
func (m *MLP) Classes() int { return m.classes }

// forward runs the network, returning every layer's post-activation
// output (acts[0] is the input). The last entry is pre-softmax logits.
func (m *MLP) forward(x []float64) [][]float64 {
	acts := make([][]float64, 0, len(m.layers)+1)
	acts = append(acts, x)
	cur := x
	for li, l := range m.layers {
		out := make([]float64, len(l.w))
		for o, row := range l.w {
			s := l.b[o]
			for i, wi := range row {
				s += wi * cur[i]
			}
			out[o] = s
		}
		if li < len(m.layers)-1 { // ReLU on hidden layers
			for o := range out {
				if out[o] < 0 {
					out[o] = 0
				}
			}
		}
		acts = append(acts, out)
		cur = out
	}
	return acts
}

// Softmax converts logits to a probability distribution, numerically
// stabilized by max subtraction.
func Softmax(logits []float64) []float64 {
	maxv := math.Inf(-1)
	for _, v := range logits {
		if v > maxv {
			maxv = v
		}
	}
	out := make([]float64, len(logits))
	var sum float64
	for i, v := range logits {
		e := math.Exp(v - maxv)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// Probs returns the class probability distribution for input x.
func (m *MLP) Probs(x []float64) []float64 {
	acts := m.forward(x)
	return Softmax(acts[len(acts)-1])
}

// Predict returns the argmax class for input x.
func (m *MLP) Predict(x []float64) int {
	return Argmax(m.Probs(x))
}

// Argmax returns the index of the largest value (first on ties).
func Argmax(v []float64) int {
	best, bi := math.Inf(-1), 0
	for i, x := range v {
		if x > best {
			best, bi = x, i
		}
	}
	return bi
}

// Entropy returns the Shannon entropy (nats) of a probability vector.
// Zero entries contribute zero.
func Entropy(p []float64) float64 {
	var h float64
	for _, x := range p {
		if x > 0 {
			h -= x * math.Log(x)
		}
	}
	return h
}

// adamState holds per-parameter first/second moment estimates.
type adamState struct {
	mw, vw [][][]float64 // per layer, per out, per in
	mb, vb [][]float64
	t      int
}

func newAdamState(layers []*layer) *adamState {
	s := &adamState{}
	for _, l := range layers {
		mw := make([][]float64, len(l.w))
		vw := make([][]float64, len(l.w))
		for o := range l.w {
			mw[o] = make([]float64, len(l.w[o]))
			vw[o] = make([]float64, len(l.w[o]))
		}
		s.mw = append(s.mw, mw)
		s.vw = append(s.vw, vw)
		s.mb = append(s.mb, make([]float64, len(l.b)))
		s.vb = append(s.vb, make([]float64, len(l.b)))
	}
	return s
}

// TrainMLP fits an MLP on (X, y) with softmax cross-entropy and Adam.
// X rows must share one dimensionality; y values must lie in
// [0, classes). It panics on malformed input (programmer error).
func TrainMLP(X [][]float64, y []int, classes int, cfg MLPConfig) *MLP {
	if len(X) == 0 || len(X) != len(y) {
		panic(fmt.Sprintf("nn: bad training set: %d rows, %d labels", len(X), len(y)))
	}
	if classes < 2 {
		panic("nn: need at least two classes")
	}
	dim := len(X[0])
	for _, r := range X {
		if len(r) != dim {
			panic("nn: ragged feature matrix")
		}
	}
	for _, label := range y {
		if label < 0 || label >= classes {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", label, classes))
		}
	}
	if cfg.Epochs <= 0 || cfg.Batch <= 0 || cfg.LR <= 0 {
		panic("nn: config needs positive epochs, batch and learning rate")
	}

	rng := xrand.New(cfg.Seed).SplitString("nn/mlp")
	sizes := append([]int{dim}, cfg.Hidden...)
	sizes = append(sizes, classes)
	m := &MLP{classes: classes}
	for i := 0; i+1 < len(sizes); i++ {
		m.layers = append(m.layers, newLayer(rng, sizes[i], sizes[i+1]))
	}

	adam := newAdamState(m.layers)
	const beta1, beta2, eps = 0.9, 0.999, 1e-8

	// Gradient accumulators reused across batches.
	gw := make([][][]float64, len(m.layers))
	gb := make([][]float64, len(m.layers))
	for li, l := range m.layers {
		gw[li] = make([][]float64, len(l.w))
		for o := range l.w {
			gw[li][o] = make([]float64, len(l.w[o]))
		}
		gb[li] = make([]float64, len(l.b))
	}
	zeroGrads := func() {
		for li := range gw {
			for o := range gw[li] {
				row := gw[li][o]
				for i := range row {
					row[i] = 0
				}
			}
			for o := range gb[li] {
				gb[li][o] = 0
			}
		}
	}

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		order := rng.Perm(len(X))
		for start := 0; start < len(order); start += cfg.Batch {
			end := start + cfg.Batch
			if end > len(order) {
				end = len(order)
			}
			batch := order[start:end]
			zeroGrads()
			for _, idx := range batch {
				x, label := X[idx], y[idx]
				acts := m.forward(x)
				probs := Softmax(acts[len(acts)-1])
				// delta at output: p - onehot(y)
				delta := make([]float64, classes)
				copy(delta, probs)
				delta[label]--
				// Backpropagate.
				for li := len(m.layers) - 1; li >= 0; li-- {
					l := m.layers[li]
					in := acts[li]
					for o := range l.w {
						d := delta[o]
						gb[li][o] += d
						row := gw[li][o]
						for i, xi := range in {
							row[i] += d * xi
						}
					}
					if li > 0 {
						prev := make([]float64, len(in))
						for o, row := range l.w {
							d := delta[o]
							for i, wi := range row {
								prev[i] += d * wi
							}
						}
						// ReLU derivative on the hidden activation.
						for i := range prev {
							if in[i] <= 0 {
								prev[i] = 0
							}
						}
						delta = prev
					}
				}
			}
			// Adam update with batch-mean gradients.
			adam.t++
			invN := 1 / float64(len(batch))
			bc1 := 1 - math.Pow(beta1, float64(adam.t))
			bc2 := 1 - math.Pow(beta2, float64(adam.t))
			for li, l := range m.layers {
				for o := range l.w {
					row := l.w[o]
					for i := range row {
						g := gw[li][o][i]*invN + cfg.WeightDecay*row[i]
						adam.mw[li][o][i] = beta1*adam.mw[li][o][i] + (1-beta1)*g
						adam.vw[li][o][i] = beta2*adam.vw[li][o][i] + (1-beta2)*g*g
						row[i] -= cfg.LR * (adam.mw[li][o][i] / bc1) / (math.Sqrt(adam.vw[li][o][i]/bc2) + eps)
					}
					g := gb[li][o] * invN
					adam.mb[li][o] = beta1*adam.mb[li][o] + (1-beta1)*g
					adam.vb[li][o] = beta2*adam.vb[li][o] + (1-beta2)*g*g
					l.b[o] -= cfg.LR * (adam.mb[li][o] / bc1) / (math.Sqrt(adam.vb[li][o]/bc2) + eps)
				}
			}
		}
	}
	return m
}

// Ensemble averages the probability outputs of several classifiers, as
// the paper does across cross-validation folds.
type Ensemble struct {
	models []*MLP
}

// Models returns the number of member models.
func (e *Ensemble) Models() int { return len(e.models) }

// Probs returns the average probability distribution across members.
func (e *Ensemble) Probs(x []float64) []float64 {
	if len(e.models) == 0 {
		panic("nn: empty ensemble")
	}
	out := make([]float64, e.models[0].classes)
	for _, m := range e.models {
		p := m.Probs(x)
		for i, v := range p {
			out[i] += v
		}
	}
	inv := 1 / float64(len(e.models))
	for i := range out {
		out[i] *= inv
	}
	return out
}

// Predict returns the argmax class of the averaged distribution.
func (e *Ensemble) Predict(x []float64) int { return Argmax(e.Probs(x)) }

// TrainKFold trains k models, each on k-1 folds of (X, y), and returns
// their ensemble. With k <= 1 it trains a single model on all data.
// This mirrors the paper's "3-fold cross-validation to obtain the
// average category probability distribution".
func TrainKFold(X [][]float64, y []int, classes, k int, cfg MLPConfig) *Ensemble {
	if k <= 1 || len(X) < 2*k {
		return &Ensemble{models: []*MLP{TrainMLP(X, y, classes, cfg)}}
	}
	rng := xrand.New(cfg.Seed).SplitString("nn/kfold")
	perm := rng.Perm(len(X))
	e := &Ensemble{}
	for fold := 0; fold < k; fold++ {
		var tx [][]float64
		var ty []int
		for i, idx := range perm {
			if i%k == fold {
				continue // held out
			}
			tx = append(tx, X[idx])
			ty = append(ty, y[idx])
		}
		foldCfg := cfg
		foldCfg.Seed = cfg.Seed + uint64(fold)*7919
		e.models = append(e.models, TrainMLP(tx, ty, classes, foldCfg))
	}
	return e
}

// Accuracy computes the fraction of rows a probabilistic classifier
// assigns to the true class.
func Accuracy(probs func([]float64) []float64, X [][]float64, y []int) float64 {
	if len(X) == 0 {
		return 0
	}
	correct := 0
	for i, x := range X {
		if Argmax(probs(x)) == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(X))
}
