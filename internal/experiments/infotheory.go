package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/infotheory"
	"repro/internal/predictors"
	"repro/internal/tablefmt"
)

// runFig2 regenerates the Section IV analysis behind Fig. 2: an
// empirical Partial Information Decomposition of I(t, N; y) on each
// dataset. The node-text variable t is the LLM's zero-shot prediction
// (what the node's own text tells the model), the neighbor variable N
// is the majority label among the query's selected 1-hop neighbors,
// and y is the ground truth. The decomposition shows where the
// information gain IG^N = U(N\t;y) + S(t,N;y) actually comes from, and
// H(y|t) — the saturation criterion — explains how much of it each
// dataset can absorb.
func runFig2(cfg Config) (string, error) {
	var b strings.Builder
	b.WriteString("Empirical PID of I(t, N; y) per dataset (bits); Eq. 3-6 of Section IV.\n")
	b.WriteString("t = zero-shot prediction from node text, N = majority neighbor label.\n\n")

	tbl := tablefmt.New("", "dataset", "I(t;y)", "I(N;y)", "I(t,N;y)", "R", "U(t\\N)", "U(N\\t)", "S", "IG^N", "H(y|t)")
	for _, name := range datasetNames(cfg, false) {
		d, err := load(name, cfg)
		if err != nil {
			return "", errf("fig2", err)
		}
		sim := d.sim(gpt35(), cfg)
		ctx := d.ctx(cfg)
		m := predictors.KHopRandom{K: 1}

		classIndex := make(map[string]int, len(d.g.Classes))
		for i, c := range d.g.Classes {
			classIndex[c] = i
		}
		noNeighbor := len(d.g.Classes) // extra code for "no labeled neighbor"

		var ts, ns, ys []int
		for _, v := range d.split.Query {
			resp, err := core.ExecuteQueryVanilla(ctx, sim, v)
			if err != nil {
				return "", errf("fig2", err)
			}
			tcode, ok := classIndex[resp.Category]
			if !ok {
				tcode = noNeighbor // unparsable answer: its own code
			}
			// Majority true label among the node's 1-hop selection.
			counts := map[int]int{}
			for _, s := range m.Select(ctx, v) {
				counts[d.g.Nodes[s.ID].Label]++
			}
			ncode, best := noNeighbor, 0
			for label, c := range counts {
				if c > best || (c == best && ncode != noNeighbor && label < ncode) {
					ncode, best = label, c
				}
			}
			ts = append(ts, tcode)
			ns = append(ns, ncode)
			ys = append(ys, d.g.Nodes[v].Label)
		}

		joint, err := infotheory.FromSamples(ts, ns, ys)
		if err != nil {
			return "", errf("fig2", err)
		}
		pid, err := joint.Decompose()
		if err != nil {
			return "", errf("fig2", err)
		}
		tbl.AddRow(
			d.spec.Display,
			fmt.Sprintf("%.3f", pid.MIT),
			fmt.Sprintf("%.3f", pid.MIN),
			fmt.Sprintf("%.3f", pid.MITotal),
			fmt.Sprintf("%.3f", pid.Redundant),
			fmt.Sprintf("%.3f", pid.UniqueT),
			fmt.Sprintf("%.3f", pid.UniqueN),
			fmt.Sprintf("%.3f", pid.Synergy),
			fmt.Sprintf("%.3f", pid.InformationGain()),
			fmt.Sprintf("%.3f", pid.HYGivenT),
		)
	}
	b.WriteString(tbl.String())
	b.WriteString("\nReading: IG^N = U(N\\t;y) + S(t,N;y) exactly (Eq. 5) and never\n")
	b.WriteString("exceeds H(y|t) (Eq. 6). Datasets with small H(y|t) — many saturated\n")
	b.WriteString("nodes — have little room for neighbor text to help, which is what\n")
	b.WriteString("token pruning exploits.\n")
	return b.String(), nil
}
