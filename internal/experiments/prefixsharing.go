package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/predictors"
	"repro/internal/prefix"
	"repro/internal/tablefmt"
)

// runPrefixSharing quantifies the related-work comparison of Section
// II-C: serving-level shared-prefix MQO ([31–33], [49]) against the
// paper's graph-aware token pruning on the same batches. Under the
// Table III template prompts lead with query-specific text, so prefix
// caching recovers almost nothing; reordering the template (the [49]
// trick) recovers the boilerplate; pruning removes neighbor text
// entirely — and the two compose.
func runPrefixSharing(cfg Config) (string, error) {
	tbl := tablefmt.New("Serving-level prefix sharing vs graph-aware pruning (1-hop random)",
		"dataset", "batch tokens", "prefix-shared", "reordered, shared", "20% pruning saves", "prune+reorder")
	for _, name := range smallNames {
		d, err := load(name, cfg)
		if err != nil {
			return "", errf("prefix-sharing", err)
		}
		ctx := d.ctx(cfg)
		m := predictors.KHopRandom{K: 1}

		buildBatch := func(plan core.Plan) []string {
			prompts := make([]string, 0, len(plan.Queries))
			for _, v := range plan.Queries {
				var sel []predictors.Selected
				if !plan.Prune[v] {
					sel = m.Select(ctx, v)
				}
				prompts = append(prompts, predictors.BuildPrompt(ctx, v, sel, false))
			}
			return prompts
		}

		full := buildBatch(core.Plan{Queries: d.split.Query})
		base := prefix.Analyze(full)
		reordered := prefix.Analyze(prefix.ReorderSharedFirst(full))

		sim := d.sim(gpt35(), cfg)
		iq, err := d.fitInadequacy(sim, cfg)
		if err != nil {
			return "", errf("prefix-sharing", err)
		}
		prunedBatch := buildBatch(core.PrunePlan(iq, d.g, d.split.Query, 0.2))
		pruned := prefix.Analyze(prunedBatch)
		both := prefix.Analyze(prefix.ReorderSharedFirst(prunedBatch))

		pruneSaves := base.TotalTokens - pruned.TotalTokens
		bothSaves := base.TotalTokens - (both.TotalTokens - both.SharedTokens)
		tbl.AddRow(d.spec.Display,
			tablefmt.Int(int64(base.TotalTokens)),
			tablefmt.Pct(base.SavedFraction()),
			tablefmt.Pct(reordered.SavedFraction()),
			fmt.Sprintf("%s (%.1f%%)", tablefmt.Int(int64(pruneSaves)),
				100*float64(pruneSaves)/float64(base.TotalTokens)),
			fmt.Sprintf("%.1f%%", 100*float64(bothSaves)/float64(base.TotalTokens)))
	}

	var b strings.Builder
	b.WriteString(tbl.String())
	b.WriteString("\nPrefix caching needs white-box serving access and only touches the\n")
	b.WriteString("shared boilerplate; token pruning works on any black-box API and\n")
	b.WriteString("removes the dominant per-query neighbor text. They compose.\n")
	return b.String(), nil
}
