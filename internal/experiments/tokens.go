package experiments

import (
	"fmt"
	"strings"

	"repro/internal/predictors"
	"repro/internal/prompt"
	"repro/internal/tablefmt"
	"repro/internal/tag"
	"repro/internal/token"
)

// runTable2 regenerates Table II: per-dataset statistics, reporting
// both the paper-scale numbers (used verbatim by Table V) and the
// statistics of the generated instance.
func runTable2(cfg Config) (string, error) {
	t := tablefmt.New(
		"Table II: statistics of datasets (paper scale | generated instance)",
		"Dataset", "#Nodes", "#Edges", "#Feat", "#Classes", "NodeType", "TextType", "EdgeType",
		"GenNodes", "GenEdges", "GenHomophily", "GenMeanDeg",
	)
	for _, name := range tag.SortedNames() {
		d, err := load(name, cfg)
		if err != nil {
			return "", errf("table2", err)
		}
		st := tag.Summarize(d.g, d.spec)
		t.AddRow(
			st.Name,
			tablefmt.Int(int64(st.FullNodes)),
			tablefmt.Int(int64(st.FullEdges)),
			tablefmt.Int(int64(st.FullFeatures)),
			fmt.Sprint(st.Classes),
			st.NodeType, st.TextType, st.EdgeType,
			tablefmt.Int(int64(st.Nodes)),
			tablefmt.Int(int64(st.Edges)),
			tablefmt.F(st.Homophily, 3),
			tablefmt.F(st.MeanDegree, 2),
		)
	}
	return t.String(), nil
}

// neighborTextConfigs are Table V's four neighbor-text configurations.
var neighborTextConfigs = []struct {
	label     string
	neighbors int
	abstracts bool
}{
	{"4 Neighbors, Title Only", 4, false},
	{"10 Neighbors, Title Only", 10, false},
	{"4 Neighbors, Title & Abstract", 4, true},
	{"10 Neighbors, Title & Abstract", 10, true},
}

// runTable5 regenerates Table V: tokens reducible via pruning. The
// proportion of saturated nodes τ is proxied by vanilla zero-shot
// accuracy on the query sample (as in the paper), the neighbor-text
// token average is measured from built prompts, and the reducible
// count is FullNodes × τ × avgNeighborTokens.
func runTable5(cfg Config) (string, error) {
	type col struct {
		display   string
		total     int
		tau       float64
		nbTokens  [4]float64
		reducible [4]int64
	}
	var cols []col
	for _, name := range tag.SortedNames() {
		d, err := load(name, cfg)
		if err != nil {
			return "", errf("table5", err)
		}
		sim := d.sim(gpt35(), cfg)

		// Zero-shot accuracy over the query set = saturation proxy.
		correct := 0
		for _, v := range d.split.Query {
			resp, err := sim.Query(prompt.Build(prompt.Request{
				TargetTitle:    d.g.Nodes[v].Title,
				TargetAbstract: d.g.Nodes[v].Abstract,
				Categories:     d.g.Classes,
				NodeType:       nodeTypeOf(d.spec),
			}))
			if err != nil {
				return "", errf("table5", err)
			}
			if resp.Category == d.g.Classes[d.g.Nodes[v].Label] {
				correct++
			}
		}
		c := col{
			display: d.spec.Display,
			total:   d.spec.FullNodes,
			tau:     float64(correct) / float64(len(d.split.Query)),
		}

		// Neighbor-text token averages per configuration, measured on a
		// sample of built prompts.
		sample := d.split.Query
		if len(sample) > 200 {
			sample = sample[:200]
		}
		for ci, ntc := range neighborTextConfigs {
			ctx := d.ctx(cfg)
			ctx.M = ntc.neighbors
			ctx.IncludeAbstracts = ntc.abstracts
			var sum float64
			m := khop1()
			for _, v := range sample {
				sel := m.Select(ctx, v)
				withNb := predictors.BuildPrompt(ctx, v, sel, false)
				bare := predictors.BuildPrompt(ctx, v, nil, false)
				sum += float64(token.Count(withNb) - token.Count(bare))
			}
			c.nbTokens[ci] = sum / float64(len(sample))
			c.reducible[ci] = int64(float64(c.total) * c.tau * c.nbTokens[ci])
		}
		cols = append(cols, c)
	}

	var b strings.Builder
	t := tablefmt.New("Table V: tokens potentially reducible via token pruning",
		append([]string{"Row"}, displayNames(cols, func(c col) string { return c.display })...)...)
	t.AddRow(prependStr("# Total queries", mapCols(cols, func(c col) string { return tablefmt.Int(int64(c.total)) }))...)
	t.AddRow(prependStr("Proportion of saturated nodes", mapCols(cols, func(c col) string { return tablefmt.Pct(c.tau) + "%" }))...)
	for ci, ntc := range neighborTextConfigs {
		t.AddRow(prependStr(ntc.label+": # Neighbor Text Tokens", mapCols(cols, func(c col) string { return tablefmt.F(c.nbTokens[ci], 3) }))...)
		t.AddRow(prependStr(ntc.label+": # Potentially Reducible Tokens", mapCols(cols, func(c col) string { return tablefmt.Int(c.reducible[ci]) }))...)
	}
	b.WriteString(t.String())
	return b.String(), nil
}

// Small generic helpers for column-major tables.

func displayNames[T any](cols []T, f func(T) string) []string {
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = f(c)
	}
	return out
}

func mapCols[T any](cols []T, f func(T) string) []string {
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = f(c)
	}
	return out
}

func prependStr(head string, rest []string) []string {
	return append([]string{head}, rest...)
}
