package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/tablefmt"
	"repro/internal/tag"
)

// LatencyPredictor injects a fixed per-query latency in front of an
// inner predictor, emulating the round-trip of a remote LLM endpoint.
// It is safe for concurrent use whenever the inner predictor is.
type LatencyPredictor struct {
	Inner llm.Predictor
	Delay time.Duration
}

// Query sleeps for Delay, then forwards to the inner predictor.
func (p LatencyPredictor) Query(prompt string) (llm.Response, error) {
	time.Sleep(p.Delay)
	return p.Inner.Query(prompt)
}

// Name identifies the wrapped predictor.
func (p LatencyPredictor) Name() string { return p.Inner.Name() + "+latency" }

// RunConcurrencySweep executes one plan under each worker count against
// a latency-injecting simulator and reports per-run wall clock plus the
// speedup over the serial run. It fails if any worker count changes a
// prediction or a token total — the determinism guarantee the sweep
// exists to demonstrate.
func RunConcurrencySweep(cfg Config, delay time.Duration, workers []int) (string, error) {
	d, err := load("cora", cfg)
	if err != nil {
		return "", err
	}
	m := khop1()

	type run struct {
		workers int
		elapsed time.Duration
		res     *core.Results
		acc     float64
	}
	var runs []run
	for _, w := range workers {
		sim := d.sim(gpt35(), cfg)
		p := LatencyPredictor{Inner: sim, Delay: delay}
		start := time.Now()
		res, err := core.ExecuteWith(d.ctx(cfg), m, p, core.Plan{Queries: d.split.Query},
			core.ExecConfig{Workers: w})
		if err != nil {
			return "", fmt.Errorf("workers=%d: %w", w, err)
		}
		runs = append(runs, run{
			workers: w,
			elapsed: time.Since(start),
			res:     res,
			acc:     core.Accuracy(d.g, res.Pred),
		})
	}

	base := runs[0]
	for _, r := range runs[1:] {
		if err := samePredictions(base.res, r.res); err != nil {
			return "", fmt.Errorf("workers=%d diverged from workers=%d: %w",
				r.workers, base.workers, err)
		}
	}

	tbl := tablefmt.New(
		fmt.Sprintf("concurrent execution on Cora, %d queries, %s simulated latency",
			len(d.split.Query), delay),
		"workers", "wall clock", "speedup", "accuracy", "total tokens")
	for _, r := range runs {
		tbl.AddRow(fmt.Sprint(r.workers),
			r.elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1fx", base.elapsed.Seconds()/r.elapsed.Seconds()),
			tablefmt.Pct(r.acc),
			tablefmt.Int(int64(r.res.Meter.Total())))
	}
	out := tbl.String()
	out += "\npredictions and token totals are bit-identical across all worker counts\n"
	return out, nil
}

// samePredictions verifies two results agree on every prediction and on
// the metered token totals.
func samePredictions(a, b *core.Results) error {
	if len(a.Pred) != len(b.Pred) {
		return fmt.Errorf("prediction counts differ: %d vs %d", len(a.Pred), len(b.Pred))
	}
	for v, cat := range a.Pred {
		if got := b.Pred[v]; got != cat {
			return fmt.Errorf("node %d predicted %q vs %q", tag.NodeID(v), cat, got)
		}
	}
	if a.Meter.Total() != b.Meter.Total() || a.Meter.Queries() != b.Meter.Queries() {
		return fmt.Errorf("token totals differ: %d/%d queries, %d/%d tokens",
			a.Meter.Queries(), b.Meter.Queries(), a.Meter.Total(), b.Meter.Total())
	}
	return nil
}

// runConcurrency is the registered experiment entry point: a 5ms
// simulated round-trip swept over 1..8 workers.
func runConcurrency(cfg Config) (string, error) {
	out, err := RunConcurrencySweep(cfg, 5*time.Millisecond, []int{1, 2, 4, 8})
	if err != nil {
		return "", errf("concurrency", err)
	}
	return out, nil
}
