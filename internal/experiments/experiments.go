// Package experiments regenerates every table and figure of the
// paper's evaluation section (Section VI) against the simulated
// substrate. Each experiment is addressable by the paper artifact id
// (table2..table10, fig3, fig7, fig8) plus two ablations called out in
// DESIGN.md, and renders its result as text with the same rows/series
// the paper reports.
package experiments

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/batch"
	"repro/internal/llm"
	"repro/internal/predictors"
	"repro/internal/prompt"
	"repro/internal/promptcache"
	"repro/internal/tag"
	"repro/internal/xrand"

	"repro/internal/core"
)

// Config tunes an experiment run.
type Config struct {
	// Seed makes the whole experiment deterministic.
	Seed uint64
	// Fast shrinks datasets and query counts so the experiment finishes
	// in benchmark/test time; the full setting mirrors the paper.
	Fast bool
	// Workers bounds concurrent LLM queries during plan execution; 0 or
	// 1 is serial. Experiment outputs are identical for any value.
	Workers int
	// QPS rate-limits query dispatch; 0 disables rate limiting.
	QPS float64
	// QueryTimeout bounds each LLM call; hung calls are abandoned. 0
	// means no deadline (the faults experiment applies its own default).
	QueryTimeout time.Duration
	// Disk, when non-nil, backs every experiment's plan execution with
	// the persistent prompt cache. The cache namespace is derived per
	// predictor (model identity + seed + template version), so distinct
	// experiments sharing one directory cannot cross-contaminate, and a
	// repeated run answers its repeated prompts from disk.
	Disk *promptcache.Cache
	// Breaker configures a circuit breaker around plan execution; the
	// zero value disables it. With Replicas > 1 it configures the
	// per-replica breakers instead of a global one.
	Breaker batch.BreakerConfig
	// Replicas, when > 1, fans queries across that many replica slots of
	// the predictor through the health-aware pool. Experiment outputs
	// are identical for any value (the simulator answers by prompt, not
	// by replica).
	Replicas int
	// Hedge races a second replica when the first outlives HedgeAfter;
	// effective only with Replicas > 1.
	Hedge bool
	// HedgeAfter is the hedge trigger delay; 0 means the pool default.
	HedgeAfter time.Duration
	// Affinity routes each prompt to its cache-affine replica
	// (rendezvous over prompt-cache keys) instead of pure P2C;
	// effective only with Replicas > 1.
	Affinity bool
	// Compress (level 1..3) and TargetTokens configure the prompt-
	// compression stage for every experiment's plan execution; zero
	// disables it. The compress experiment sweeps its own settings
	// regardless.
	Compress     int
	TargetTokens int
}

// exec lowers the config's concurrency knobs for core.ExecuteWith and
// core.BoostWith.
func (cfg Config) exec() core.ExecConfig {
	return core.ExecConfig{
		Workers: cfg.Workers, QPS: cfg.QPS, QueryTimeout: cfg.QueryTimeout, Disk: cfg.Disk,
		Breaker:      cfg.Breaker,
		ReplicaCount: cfg.Replicas,
		Hedge:        cfg.Hedge,
		HedgeAfter:   cfg.HedgeAfter,
		Affinity:     cfg.Affinity,
		Compress:     prompt.Compressor{Level: cfg.Compress, TargetTokens: cfg.TargetTokens},
	}
}

// Experiment is one regenerable paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config) (string, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{ID: "table2", Title: "Table II: dataset statistics", Run: runTable2},
		{ID: "fig2", Title: "Fig. 2 / Section IV: empirical PID of I(t,N;y)", Run: runFig2},
		{ID: "fig3", Title: "Fig. 3: information gain of neighbor labels", Run: runFig3},
		{ID: "table4", Title: "Table IV: token pruning across methods (Q1)", Run: runTable4},
		{ID: "fig7", Title: "Fig. 7: pruning vs random under token budgets (Q2)", Run: runFig7},
		{ID: "table5", Title: "Table V: token reduction potential (Q3)", Run: runTable5},
		{ID: "table6", Title: "Table VI: text-inadequacy of saturated vs non-saturated nodes (Q4)", Run: runTable6},
		{ID: "fig8", Title: "Fig. 8: pseudo-label utilization with/without scheduling (Q5)", Run: runFig8},
		{ID: "table7", Title: "Table VII: query boosting across methods (Q6)", Run: runTable7},
		{ID: "table8", Title: "Table VIII: joint pruning + boosting (Q7)", Run: runTable8},
		{ID: "table9", Title: "Table IX: strategies on instruction-tuned backbones (Q8)", Run: runTable9},
		{ID: "table10", Title: "Table X: link prediction (Q9)", Run: runTable10},
		{ID: "gnn-baseline", Title: "Paradigm comparison: trained GNNs vs LLMs as predictors", Run: runGNNBaseline},
		{ID: "ablation-channels", Title: "Ablation: inadequacy channels (entropy / bias / merged)", Run: runAblationChannels},
		{ID: "ablation-scheduling", Title: "Ablation: scheduling policies", Run: runAblationScheduling},
		{ID: "ablation-gamma", Title: "Ablation: boosting thresholds γ1/γ2", Run: runAblationGamma},
		{ID: "ablation-m", Title: "Ablation: neighbor cap M (accuracy vs tokens)", Run: runAblationM},
		{ID: "ablation-encoder", Title: "Ablation: SNS similarity backend (TF-IDF / SGNS / BoW)", Run: runAblationEncoder},
		{ID: "cost-projection", Title: "Section I: full-graph classification priced in dollars", Run: runCostProjection},
		{ID: "prefix-sharing", Title: "Section II-C: serving-level prefix sharing vs graph-aware pruning", Run: runPrefixSharing},
		{ID: "concurrency", Title: "Concurrent plan execution: wall-clock speedup at identical results", Run: runConcurrency},
		{ID: "faults", Title: "Fault tolerance: injected failures, timeouts, breaker, surrogate fallback", Run: runFaults},
		{ID: "load", Title: "Load harness: open-loop scenarios, latency tail, SLO cross-check", Run: runLoad},
		{ID: "compress", Title: "Prompt compression: accuracy vs input tokens across levels and budgets", Run: runCompress},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs lists all experiment ids.
func IDs() []string {
	var out []string
	for _, e := range All() {
		out = append(out, e.ID)
	}
	sort.Strings(out)
	return out
}

// dataset is a loaded benchmark instance.
type dataset struct {
	spec  tag.Spec
	g     *tag.Graph
	split tag.Split
}

// smallNames are the datasets the paper uses for boosting and link
// prediction (Sections VI-G, VI-J).
var smallNames = []string{"cora", "citeseer", "pubmed"}

// load generates the named dataset under the config's size regime and
// applies the paper's split protocol.
func load(name string, cfg Config) (*dataset, error) {
	spec, err := tag.SpecByName(name)
	if err != nil {
		return nil, err
	}
	opts := tag.Options{}
	queries := spec.QueryCount
	if cfg.Fast {
		// Keep class structure; shrink to bench scale.
		target := 900
		if spec.Nodes < target {
			target = spec.Nodes
		}
		opts.Scale = float64(target) / float64(spec.Nodes)
		queries = 200
	}
	g := tag.Generate(spec, cfg.Seed, opts)
	srng := xrand.New(cfg.Seed).SplitString("experiments/split/" + name)
	var split tag.Split
	if spec.LabeledPerClass > 0 {
		split = g.SplitPerClass(srng, spec.LabeledPerClass, queries)
	} else {
		split = g.SplitFraction(srng, spec.LabeledFrac, queries)
	}
	return &dataset{spec: spec, g: g, split: split}, nil
}

// ctx builds a fresh prediction context for the dataset. M follows the
// paper: 10 for Ogbn-Products, 4 elsewhere.
func (d *dataset) ctx(cfg Config) *predictors.Context {
	m := 4
	if d.spec.Name == "ogbn-products" {
		m = 10
	}
	return &predictors.Context{
		Graph:        d.g,
		Known:        predictors.KnownFromSplit(d.g, d.split),
		M:            m,
		Seed:         cfg.Seed,
		NodeType:     nodeTypeOf(d.spec),
		EdgeRelation: edgeRelationOf(d.spec),
	}
}

func nodeTypeOf(spec tag.Spec) string {
	if spec.NodeType == "Product" {
		return "product"
	}
	return "paper"
}

func edgeRelationOf(spec tag.Spec) string {
	if spec.EdgeType == "Co-purchase" {
		return "co-purchase"
	}
	return "citation"
}

// sim instantiates a simulated LLM for the dataset.
func (d *dataset) sim(p llm.Profile, cfg Config) *llm.Sim {
	return llm.NewSim(p, d.g.Vocab, d.g.Classes, cfg.Seed+7)
}

// inadequacyConfig returns the fit configuration under the config's
// size regime, mirroring the paper: linear surrogate for the small
// datasets, a deeper tuned MLP for the OGB datasets.
func (d *dataset) inadequacyConfig(cfg Config) core.InadequacyConfig {
	ic := core.DefaultInadequacyConfig()
	ic.Seed = cfg.Seed + 13
	ic.Exec = cfg.exec()
	if cfg.Fast {
		ic.MLP.Epochs = 40
		ic.MaxFeatures = 256
	}
	switch d.spec.Name {
	case "ogbn-arxiv", "ogbn-products":
		// The paper hyperparameter-searches a deeper MLP when labels
		// are plentiful; we use the middle of its search ranges.
		ic.MLP.Hidden = []int{128}
		ic.MLP.LR = 0.01
		ic.MLP.WeightDecay = 1e-4
		if cfg.Fast {
			ic.MLP.Hidden = []int{64}
		}
	}
	return ic
}

// fitInadequacy fits the measure once per (dataset, predictor).
func (d *dataset) fitInadequacy(p llm.Predictor, cfg Config) (*core.Inadequacy, error) {
	return core.FitInadequacy(d.g, d.split.Labeled, p, nodeTypeOf(d.spec), d.inadequacyConfig(cfg))
}

// datasetNames returns the evaluation datasets under the config's size
// regime. Fast mode drops the two OGB graphs from the heaviest sweeps.
func datasetNames(cfg Config, includeOGB bool) []string {
	if includeOGB && !cfg.Fast {
		return tag.SortedNames()
	}
	if includeOGB && cfg.Fast {
		return []string{"cora", "citeseer", "pubmed", "ogbn-arxiv", "ogbn-products"}
	}
	return smallNames
}

// gpt35 and gpt4oMini are the paper's two LLM profiles.
func gpt35() llm.Profile     { return llm.GPT35() }
func gpt4oMini() llm.Profile { return llm.GPT4oMini() }

// khop1 is the 1-hop random method used by several sweeps.
func khop1() predictors.Method { return predictors.KHopRandom{K: 1} }

// errf wraps an experiment error with its artifact id.
func errf(id string, err error) error {
	return fmt.Errorf("experiments: %s: %w", id, err)
}
