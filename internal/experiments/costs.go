package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/tablefmt"
)

// runCostProjection prices the paper's motivation (Section I): measure
// the average prompt tokens per query on each dataset, project to a
// full-graph classification job at the paper-scale node counts, and
// show what the 20% token-pruning saves in dollars at the GPT-3.5 and
// GPT-4 price points.
func runCostProjection(cfg Config) (string, error) {
	gpt35, err := cost.Lookup("gpt-3.5-turbo")
	if err != nil {
		return "", errf("cost-projection", err)
	}
	gpt4, err := cost.Lookup("gpt-4")
	if err != nil {
		return "", errf("cost-projection", err)
	}

	tbl := tablefmt.New("Classifying every node, priced (1-hop random, M per paper)",
		"dataset", "nodes", "tokens/query", "GPT-3.5", "GPT-4", "saved by 20% pruning (GPT-4)")
	for _, name := range datasetNames(cfg, true) {
		d, err := load(name, cfg)
		if err != nil {
			return "", errf("cost-projection", err)
		}
		ctx := d.ctx(cfg)
		perQuery, perNeighbor := core.EstimateQueryTokens(ctx, khop1(), d.split.Query, 0)

		nodes := int64(d.spec.FullNodes)
		all35, err := cost.Project(gpt35, nodes, perQuery)
		if err != nil {
			return "", errf("cost-projection", err)
		}
		all4, err := cost.Project(gpt4, nodes, perQuery)
		if err != nil {
			return "", errf("cost-projection", err)
		}
		// 20% of queries drop their neighbor text.
		prunedPerQuery := perQuery - 0.2*perNeighbor
		pruned4, err := cost.Project(gpt4, nodes, prunedPerQuery)
		if err != nil {
			return "", errf("cost-projection", err)
		}

		tbl.AddRow(d.spec.Display,
			tablefmt.Int(nodes),
			fmt.Sprintf("%.0f", perQuery),
			fmt.Sprintf("$%.0f", all35.TotalUSD),
			fmt.Sprintf("$%.0f", all4.TotalUSD),
			fmt.Sprintf("$%.0f", all4.TotalUSD-pruned4.TotalUSD))
	}

	var b strings.Builder
	b.WriteString(tbl.String())

	// The introduction's worked example, verified by the cost model.
	single := gpt35.Cost(1200, 0)
	tenM35, err := cost.Project(gpt35, 10_000_000, 1200)
	if err != nil {
		return "", errf("cost-projection", err)
	}
	tenM4, err := cost.Project(gpt4, 10_000_000, 1200)
	if err != nil {
		return "", errf("cost-projection", err)
	}
	fmt.Fprintf(&b, "\nIntro arithmetic check: a 1,200-token query costs $%.4f on GPT-3.5;\n", single)
	fmt.Fprintf(&b, "10M queries cost $%.0f (GPT-3.5) / $%.0f (GPT-4) — the paper's $6,000 / $360,000.\n",
		tenM35.TotalUSD, tenM4.TotalUSD)
	return b.String(), nil
}
