package experiments

import (
	"strings"

	"repro/internal/core"
	"repro/internal/encode"
	"repro/internal/predictors"
	"repro/internal/tablefmt"
	"repro/internal/tag"
)

// runAblationEncoder swaps the text encoder behind SNS's similarity
// ranking: TF-IDF (the repository's SimCSE substitute), skip-gram with
// negative sampling + SIF averaging, and raw bag-of-words. The paper
// uses SimCSE embeddings [55]; this ablation shows how sensitive SNS
// is to the similarity backend — the neighbor ranking matters more
// than the embedding family.
func runAblationEncoder(cfg Config) (string, error) {
	tbl := tablefmt.New("SNS similarity backend ablation",
		"dataset", "TF-IDF", "skip-gram (SGNS+SIF)", "bag-of-words")

	for _, name := range smallNames {
		d, err := load(name, cfg)
		if err != nil {
			return "", errf("ablation-encoder", err)
		}
		corpus := make([]string, d.g.NumNodes())
		for i := range corpus {
			corpus[i] = d.g.Text(tag.NodeID(i))
		}

		sgnsEpochs := 3
		if cfg.Fast {
			sgnsEpochs = 1
		}
		backends := []struct {
			name string
			sim  *predictors.Similarity
		}{
			{"tfidf", nil}, // nil: SNS builds its TF-IDF default lazily
			{"sgns", sgnsSimilarity(corpus, sgnsEpochs, cfg.Seed)},
			{"bow", bowSimilarity(corpus)},
		}

		row := []string{d.spec.Display}
		for _, backend := range backends {
			ctx := d.ctx(cfg)
			if backend.sim != nil {
				ctx.SetSimilarity(backend.sim)
			}
			sim := d.sim(gpt35(), cfg)
			res, err := core.ExecuteWith(ctx, predictors.SNS{}, sim, core.Plan{Queries: d.split.Query}, cfg.exec())
			if err != nil {
				return "", errf("ablation-encoder", err)
			}
			row = append(row, tablefmt.Pct(core.Accuracy(d.g, res.Pred)))
		}
		tbl.AddRow(row...)
	}

	var b strings.Builder
	b.WriteString(tbl.String())
	b.WriteString("\nSNS accuracy is driven by finding *labeled, same-class* neighbors;\n")
	b.WriteString("any encoder whose similarity correlates with class works, which is\n")
	b.WriteString("why TF-IDF substitutes for SimCSE without changing the conclusions.\n")
	return b.String(), nil
}

// sgnsSimilarity trains skip-gram embeddings over the corpus and
// builds a similarity index from them.
func sgnsSimilarity(corpus []string, epochs int, seed uint64) *predictors.Similarity {
	m := encode.NewSGNS(corpus, encode.SGNSConfig{Dim: 64, Epochs: epochs, Seed: seed + 31})
	vecs := make([][]float64, len(corpus))
	for i, doc := range corpus {
		vecs[i] = m.Encode(doc)
	}
	return predictors.NewSimilarityDense(vecs)
}

// bowSimilarity indexes raw bag-of-words vectors.
func bowSimilarity(corpus []string) *predictors.Similarity {
	enc := encode.NewBoW(corpus, 0)
	vecs := make([][]float64, len(corpus))
	for i, doc := range corpus {
		vecs[i] = enc.Encode(doc)
	}
	return predictors.NewSimilarityDense(vecs)
}
