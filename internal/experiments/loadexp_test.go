package experiments

import (
	"strings"
	"testing"
)

// TestLoadExperiment runs the fast load sweep end to end: both fast
// scenarios drive the real in-process serving tier, and the table must
// carry a verdict column that agrees between client and server.
func TestLoadExperiment(t *testing.T) {
	out, err := runLoad(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"smoke", "flood", "p99 ms", "tok/q", "slo", "agree"} {
		if !strings.Contains(out, want) {
			t.Fatalf("load table missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "FAIL") {
		t.Fatalf("fast load sweep violated its SLO:\n%s", out)
	}
}
