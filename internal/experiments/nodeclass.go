package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/predictors"
	"repro/internal/tablefmt"
	"repro/internal/tag"
)

// runFig3 regenerates the motivation figure: on Cora and Citeseer,
// split queries by whether their 1-hop neighbor text contains labels
// (N_i^L ≠ ∅), and report the accuracy gain of 1-hop random over
// vanilla zero-shot for each group (the IG proxy), plus the group
// proportions (the pie charts).
func runFig3(cfg Config) (string, error) {
	var b strings.Builder
	for _, name := range []string{"cora", "citeseer"} {
		d, err := load(name, cfg)
		if err != nil {
			return "", errf("fig3", err)
		}
		sim := d.sim(gpt35(), cfg)
		m := predictors.KHopRandom{K: 1}
		ctx := d.ctx(cfg)

		type group struct{ vanillaOK, khopOK, n int }
		var withL, withoutL group
		for _, v := range d.split.Query {
			sel := m.Select(ctx, v)
			grp := &withoutL
			if predictors.CountLabeled(sel) > 0 {
				grp = &withL
			}
			grp.n++
			// Vanilla query.
			respV, err := core.ExecuteQueryVanilla(ctx, sim, v)
			if err != nil {
				return "", errf("fig3", err)
			}
			// 1-hop query with the same selection.
			respK, _, err := core.ExecuteQuery(ctx, m, sim, v, false)
			if err != nil {
				return "", errf("fig3", err)
			}
			truth := d.g.Classes[d.g.Nodes[v].Label]
			if respV.Category == truth {
				grp.vanillaOK++
			}
			if respK.Category == truth {
				grp.khopOK++
			}
		}
		gain := func(g group) float64 {
			if g.n == 0 {
				return 0
			}
			return float64(g.khopOK-g.vanillaOK) / float64(g.n)
		}
		frac := func(g group) float64 {
			return float64(g.n) / float64(len(d.split.Query))
		}
		fmt.Fprintf(&b, "Fig. 3 (%s): IG proxy = acc(1-hop random) - acc(vanilla zero-shot)\n", d.spec.Display)
		b.WriteString(tablefmt.Bar("", []string{"N_i^L != {} (IG)", "N_i^L == {} (IG)"},
			[]float64{gain(withL), gain(withoutL)}, 40))
		fmt.Fprintf(&b, "query share: N_i^L != {} %.1f%%, N_i^L == {} %.1f%%\n\n",
			100*frac(withL), 100*frac(withoutL))
	}
	return b.String(), nil
}

// runTable4 regenerates Table IV: for every dataset and method, the
// original accuracy, the accuracy with the top 20% of queries (by
// ascending D(t_i)) pruned, and the relative change Δ%.
func runTable4(cfg Config) (string, error) {
	names := datasetNames(cfg, true)
	type cell struct{ base, pruned float64 }
	results := map[string]map[string]cell{} // method -> dataset -> cell
	var methods []predictors.Method = predictors.Standard()

	for _, name := range names {
		d, err := load(name, cfg)
		if err != nil {
			return "", errf("table4", err)
		}
		sim := d.sim(gpt35(), cfg)
		iq, err := d.fitInadequacy(sim, cfg)
		if err != nil {
			return "", errf("table4", err)
		}
		plan := core.PrunePlan(iq, d.g, d.split.Query, 0.20)
		shared := predictors.NewSimilarity(d.g)
		for _, m := range methods {
			ctxBase := d.ctx(cfg)
			ctxBase.SetSimilarity(shared)
			base, err := core.ExecuteWith(ctxBase, m, sim, core.Plan{Queries: d.split.Query}, cfg.exec())
			if err != nil {
				return "", errf("table4", err)
			}
			ctxPruned := d.ctx(cfg)
			ctxPruned.SetSimilarity(shared)
			pruned, err := core.ExecuteWith(ctxPruned, m, sim, plan, cfg.exec())
			if err != nil {
				return "", errf("table4", err)
			}
			if results[m.Name()] == nil {
				results[m.Name()] = map[string]cell{}
			}
			results[m.Name()][name] = cell{
				base:   core.Accuracy(d.g, base.Pred),
				pruned: core.Accuracy(d.g, pruned.Pred),
			}
		}
	}

	headers := append([]string{"Method"}, displayOf(names)...)
	t := tablefmt.New("Table IV: classification accuracy (%) with 20% of queries pruned", headers...)
	for _, m := range methods {
		baseRow := []string{m.Name()}
		prunedRow := []string{"w/ token prune"}
		deltaRow := []string{"Δ%"}
		for _, name := range names {
			c := results[m.Name()][name]
			baseRow = append(baseRow, tablefmt.Pct(c.base))
			prunedRow = append(prunedRow, tablefmt.Pct(c.pruned))
			delta := 0.0
			if c.base > 0 {
				delta = (c.pruned - c.base) / c.base
			}
			deltaRow = append(deltaRow, tablefmt.PctDelta(delta))
		}
		t.AddRow(baseRow...)
		t.AddRow(prunedRow...)
		t.AddRow(deltaRow...)
	}
	return t.String(), nil
}

// runFig7 regenerates Fig. 7: accuracy of the 1-hop random method when
// token budgets allow neighbor text for only 100..0% of queries,
// comparing inadequacy-guided pruning against random pruning.
func runFig7(cfg Config) (string, error) {
	names := datasetNames(cfg, true)
	inclusion := []float64{1.0, 0.8, 0.6, 0.4, 0.2, 0.0}
	xs := make([]string, len(inclusion))
	for i, inc := range inclusion {
		xs[i] = fmt.Sprintf("%d%%", int(inc*100))
	}

	var b strings.Builder
	for _, name := range names {
		d, err := load(name, cfg)
		if err != nil {
			return "", errf("fig7", err)
		}
		sim := d.sim(gpt35(), cfg)
		iq, err := d.fitInadequacy(sim, cfg)
		if err != nil {
			return "", errf("fig7", err)
		}
		m := khop1()
		ours := make([]float64, len(inclusion))
		random := make([]float64, len(inclusion))
		oracle := make([]float64, len(inclusion))
		for i, inc := range inclusion {
			tau := 1 - inc
			resO, err := core.ExecuteWith(d.ctx(cfg), m, sim, core.PrunePlan(iq, d.g, d.split.Query, tau), cfg.exec())
			if err != nil {
				return "", errf("fig7", err)
			}
			ours[i] = core.Accuracy(d.g, resO.Pred)
			resR, err := core.ExecuteWith(d.ctx(cfg), m, sim, core.RandomPrunePlan(d.split.Query, tau, cfg.Seed+uint64(i)*31), cfg.exec())
			if err != nil {
				return "", errf("fig7", err)
			}
			random[i] = core.Accuracy(d.g, resR.Pred)
			// Upper bound: prune exactly the zero-shot-correct queries.
			oraclePlan, err := core.OraclePrunePlan(d.ctx(cfg), sim, d.split.Query, tau)
			if err != nil {
				return "", errf("fig7", err)
			}
			resU, err := core.ExecuteWith(d.ctx(cfg), m, sim, oraclePlan, cfg.exec())
			if err != nil {
				return "", errf("fig7", err)
			}
			oracle[i] = core.Accuracy(d.g, resU.Pred)
		}
		b.WriteString(tablefmt.RenderSeries(
			fmt.Sprintf("Fig. 7 (%s): accuracy vs %% of queries allowed neighbor text (1-hop random)", d.spec.Display),
			xs,
			[]tablefmt.Series{
				{Name: "token pruning (ours)", Y: ours},
				{Name: "random", Y: random},
				{Name: "oracle (upper bound)", Y: oracle},
			},
			3,
		))
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// runTable6 regenerates Table VI: average text-inadequacy D(t_i) of
// saturated versus non-saturated query nodes, where saturation is
// decided by vanilla zero-shot correctness.
func runTable6(cfg Config) (string, error) {
	names := datasetNames(cfg, true)
	t := tablefmt.New("Table VI: average text-inadequacy, saturated vs non-saturated nodes",
		append([]string{"Node Type"}, displayOf(names)...)...)
	satRow := []string{"Saturated"}
	nonRow := []string{"Non-saturated"}
	for _, name := range names {
		d, err := load(name, cfg)
		if err != nil {
			return "", errf("table6", err)
		}
		sim := d.sim(gpt35(), cfg)
		iq, err := d.fitInadequacy(sim, cfg)
		if err != nil {
			return "", errf("table6", err)
		}
		var satSum, nonSum float64
		var satN, nonN int
		ctx := d.ctx(cfg)
		for _, v := range d.split.Query {
			resp, err := core.ExecuteQueryVanilla(ctx, sim, v)
			if err != nil {
				return "", errf("table6", err)
			}
			dScore := iq.ScoreNode(d.g, v)
			if resp.Category == d.g.Classes[d.g.Nodes[v].Label] {
				satSum += dScore
				satN++
			} else {
				nonSum += dScore
				nonN++
			}
		}
		satRow = append(satRow, tablefmt.F(safeDiv(satSum, satN), 3))
		nonRow = append(nonRow, tablefmt.F(safeDiv(nonSum, nonN), 3))
	}
	t.AddRow(satRow...)
	t.AddRow(nonRow...)
	return t.String(), nil
}

// runTable7 regenerates Table VII: query boosting across methods on
// the small datasets with both LLM profiles.
func runTable7(cfg Config) (string, error) {
	profiles := []llm.Profile{gpt4oMini(), gpt35()}
	var b strings.Builder
	for _, prof := range profiles {
		t := tablefmt.New(
			fmt.Sprintf("Table VII (%s): classification accuracy (%%) with query boosting", prof.Name),
			append([]string{"Method"}, displayOf(smallNames)...)...)
		for _, m := range predictors.Standard() {
			baseRow := []string{m.Name()}
			boostRow := []string{"w/ query boost"}
			for _, name := range smallNames {
				d, err := load(name, cfg)
				if err != nil {
					return "", errf("table7", err)
				}
				sim := d.sim(prof, cfg)
				shared := predictors.NewSimilarity(d.g)
				ctxB := d.ctx(cfg)
				ctxB.SetSimilarity(shared)
				base, err := core.ExecuteWith(ctxB, m, sim, core.Plan{Queries: d.split.Query}, cfg.exec())
				if err != nil {
					return "", errf("table7", err)
				}
				ctxQ := d.ctx(cfg)
				ctxQ.SetSimilarity(shared)
				boosted, _, err := core.BoostWith(ctxQ, m, sim, core.Plan{Queries: d.split.Query}, core.DefaultBoostConfig(), cfg.exec())
				if err != nil {
					return "", errf("table7", err)
				}
				accB := core.Accuracy(d.g, base.Pred)
				accQ := core.Accuracy(d.g, boosted.Pred)
				baseRow = append(baseRow, tablefmt.Pct(accB))
				arrow := ""
				if accQ > accB {
					arrow = "^"
				}
				boostRow = append(boostRow, tablefmt.Pct(accQ)+arrow)
			}
			t.AddRow(baseRow...)
			t.AddRow(boostRow...)
		}
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// runTable8 regenerates Table VIII: the joint strategy (prune 20% then
// boost) against the unoptimized methods, reporting accuracy and the
// number of queries that keep neighbor text.
func runTable8(cfg Config) (string, error) {
	profiles := []llm.Profile{gpt4oMini(), gpt35()}
	var b strings.Builder
	for _, prof := range profiles {
		t := tablefmt.New(
			fmt.Sprintf("Table VIII (%s): joint token pruning + query boosting", prof.Name),
			append([]string{"Method", "# Queries Equip N_i"}, displayOf(smallNames)...)...)
		for _, m := range predictors.Standard() {
			baseRow := []string{m.Name(), ""}
			jointRow := []string{"w/ prune & boost", ""}
			for ni, name := range smallNames {
				d, err := load(name, cfg)
				if err != nil {
					return "", errf("table8", err)
				}
				sim := d.sim(prof, cfg)
				shared := predictors.NewSimilarity(d.g)

				ctxB := d.ctx(cfg)
				ctxB.SetSimilarity(shared)
				base, err := core.ExecuteWith(ctxB, m, sim, core.Plan{Queries: d.split.Query}, cfg.exec())
				if err != nil {
					return "", errf("table8", err)
				}

				iq, err := d.fitInadequacy(sim, cfg)
				if err != nil {
					return "", errf("table8", err)
				}
				plan := core.PrunePlan(iq, d.g, d.split.Query, 0.20)
				ctxJ := d.ctx(cfg)
				ctxJ.SetSimilarity(shared)
				joint, _, err := core.BoostWith(ctxJ, m, sim, plan, core.DefaultBoostConfig(), cfg.exec())
				if err != nil {
					return "", errf("table8", err)
				}
				if ni == 0 {
					baseRow[1] = fmt.Sprint(len(d.split.Query))
					jointRow[1] = fmt.Sprint(len(d.split.Query) - len(plan.Prune))
				}
				accB := core.Accuracy(d.g, base.Pred)
				accJ := core.Accuracy(d.g, joint.Pred)
				baseRow = append(baseRow, tablefmt.Pct(accB))
				arrow := ""
				if accJ > accB {
					arrow = "^"
				}
				jointRow = append(jointRow, tablefmt.Pct(accJ)+arrow)
			}
			t.AddRow(baseRow...)
			t.AddRow(jointRow...)
		}
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// displayOf maps dataset short names to display names.
func displayOf(names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		spec, err := tag.SpecByName(n)
		if err != nil {
			out[i] = n
			continue
		}
		out[i] = spec.Display
	}
	return out
}

func safeDiv(sum float64, n int) float64 {
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
