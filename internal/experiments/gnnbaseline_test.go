package experiments

import (
	"strings"
	"testing"
)

func TestGNNBaseline(t *testing.T) {
	out, err := runGNNBaseline(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Cora", "Citeseer", "Pubmed", "GCN", "LabelProp", "SNS", "tokens/query"} {
		if !strings.Contains(out, want) {
			t.Fatalf("gnn-baseline missing %q:\n%s", want, out)
		}
	}
	// Three dataset rows plus header/commentary.
	if rows := strings.Count(out, "\n"); rows < 8 {
		t.Errorf("output suspiciously short:\n%s", out)
	}
}
