package experiments

import (
	"strings"
	"testing"
)

func TestFaultSweepRuns(t *testing.T) {
	// A reduced sweep: one clean row, one chaotic row, determinism
	// checked across 1 and 4 workers (RunFaultSweep fails internally if
	// the chaos run diverges between worker counts).
	out, err := RunFaultSweep(fastCfg(), []float64{0, 0.4}, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "surrogate") || !strings.Contains(out, "dead backend") {
		t.Fatalf("unexpected sweep output:\n%s", out)
	}
	if !strings.Contains(out, "chaos: surrogate fallback answered") {
		t.Fatalf("missing chaos summary line:\n%s", out)
	}
	// The clean row must keep full LLM coverage; the chaotic row must
	// actually exercise the fallback.
	if strings.Contains(out, "answered 0 queries") {
		t.Fatalf("fallback never used at 40%% failures:\n%s", out)
	}
}

func TestFaultSweepDeterministic(t *testing.T) {
	a, err := RunFaultSweep(fastCfg(), []float64{0.3}, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFaultSweep(fastCfg(), []float64{0.3}, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("fault sweep not reproducible:\n--- first\n%s\n--- second\n%s", a, b)
	}
}
