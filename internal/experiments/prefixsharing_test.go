package experiments

import (
	"strings"
	"testing"
)

func TestPrefixSharing(t *testing.T) {
	out, err := runPrefixSharing(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Cora", "Citeseer", "Pubmed", "prefix-shared", "prune+reorder"} {
		if !strings.Contains(out, want) {
			t.Fatalf("prefix-sharing missing %q:\n%s", want, out)
		}
	}
}
