package experiments

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func TestFig2(t *testing.T) {
	out, err := runFig2(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Cora", "Citeseer", "Pubmed", "IG^N", "H(y|t)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig2 missing %q:\n%s", want, out)
		}
	}
	// Every dataset row must satisfy the bound IG^N <= H(y|t) (Eq. 6):
	// the last two numeric columns of each row.
	rowRe := regexp.MustCompile(`(?m)^(Cora|Citeseer|Pubmed)\s.*?(\d+\.\d+)\s+(\d+\.\d+)\s*$`)
	matches := rowRe.FindAllStringSubmatch(out, -1)
	if len(matches) != 3 {
		t.Fatalf("expected 3 dataset rows, found %d:\n%s", len(matches), out)
	}
	for _, mrow := range matches {
		ig, _ := strconv.ParseFloat(mrow[2], 64)
		hyt, _ := strconv.ParseFloat(mrow[3], 64)
		if ig > hyt+1e-6 {
			t.Errorf("%s: IG^N %.3f exceeds H(y|t) %.3f", mrow[1], ig, hyt)
		}
		if ig < 0 {
			t.Errorf("%s: negative information gain %.3f", mrow[1], ig)
		}
	}
}
