package experiments

import (
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/predictors"
)

// neighborGain runs vanilla zero-shot and 1-hop random over one
// dataset's query set and returns both accuracies.
func neighborGain(t testing.TB, name string, cfg Config) (zeroShot, oneHop float64) {
	t.Helper()
	d, err := load(name, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := d.ctx(cfg)
	sim := d.sim(gpt35(), cfg)
	m := predictors.KHopRandom{K: 1}
	var vOK, kOK int
	for _, v := range d.split.Query {
		truth := d.g.Classes[d.g.Nodes[v].Label]
		respV, err := core.ExecuteQueryVanilla(ctx, sim, v)
		if err != nil {
			t.Fatal(err)
		}
		if respV.Category == truth {
			vOK++
		}
		respK, _, err := core.ExecuteQuery(ctx, m, sim, v, false)
		if err != nil {
			t.Fatal(err)
		}
		if respK.Category == truth {
			kOK++
		}
	}
	n := float64(len(d.split.Query))
	return float64(vOK) / n, float64(kOK) / n
}

// TestCalibrationShape locks in the paper's sign structure for the
// information gain of neighbor text (Table IV/V cross-read): positive
// on Cora, Citeseer and Ogbn-Products; approximately zero or negative
// on Pubmed and Ogbn-Arxiv, where the paper found neighbor text can be
// noise. Run with CALIBRATE=full for a paper-scale printout.
func TestCalibrationShape(t *testing.T) {
	cfg := fastCfg()
	full := os.Getenv("CALIBRATE") == "full"
	if full {
		cfg = Config{Seed: 1}
	}
	type row struct {
		name             string
		minGain, maxGain float64
	}
	rows := []row{
		{"cora", 0.005, 0.15},
		{"citeseer", 0.005, 0.15},
		{"pubmed", -0.08, 0.02},
		{"ogbn-arxiv", -0.08, 0.03},
		{"ogbn-products", 0.005, 0.15},
	}
	if !full {
		// Fast mode shrinks the OGB graphs to ~900 nodes over 40-47
		// classes (≈20 nodes/class): neighborhood structure is too
		// sparse there for the gain sign to be stable, so only bound
		// the magnitude. The strict sign check runs at paper scale
		// (CALIBRATE=full).
		rows[3] = row{"ogbn-arxiv", -0.12, 0.06}
		rows[4] = row{"ogbn-products", -0.12, 0.15}
	}
	for _, r := range rows {
		zs, oh := neighborGain(t, r.name, cfg)
		gain := oh - zs
		t.Logf("%-14s zero-shot %.3f  1-hop %.3f  gain %+.3f", r.name, zs, oh, gain)
		if gain < r.minGain || gain > r.maxGain {
			t.Errorf("%s: neighbor gain %+.3f outside paper shape [%+.3f, %+.3f]",
				r.name, gain, r.minGain, r.maxGain)
		}
	}
}
