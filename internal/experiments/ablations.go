package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/predictors"
	"repro/internal/tablefmt"
)

// runAblationGamma sweeps the query-boosting thresholds the paper
// fixes at γ1=3, γ2=2 "for all datasets and benchmark methods"
// without a sensitivity study. For each (γ1, γ2) we boost Cora with
// 2-hop random and report accuracy, rounds and pseudo-label uses —
// showing how strict candidate criteria trade scheduling depth for
// pseudo-label quality.
func runAblationGamma(cfg Config) (string, error) {
	d, err := load("cora", cfg)
	if err != nil {
		return "", errf("ablation-gamma", err)
	}
	m := predictors.KHopRandom{K: 2}

	tbl := tablefmt.New("γ sensitivity on Cora, 2-hop random",
		"γ1", "γ2", "accuracy", "rounds", "pseudo-label uses")
	for _, g1 := range []int{1, 2, 3, 4, 5} {
		for _, g2 := range []int{1, 2, 3} {
			ctx := d.ctx(cfg)
			sim := d.sim(gpt35(), cfg)
			res, trace, err := core.BoostWith(ctx, m, sim,
				core.Plan{Queries: d.split.Query},
				core.BoostConfig{Gamma1: g1, Gamma2: g2}, cfg.exec())
			if err != nil {
				return "", errf("ablation-gamma", err)
			}
			tbl.AddRow(fmt.Sprint(g1), fmt.Sprint(g2),
				tablefmt.Pct(core.Accuracy(d.g, res.Pred)),
				fmt.Sprint(len(trace)),
				fmt.Sprint(res.PseudoLabelUses))
		}
	}
	var b strings.Builder
	b.WriteString(tbl.String())
	b.WriteString("\nThe paper's γ1=3, γ2=2 sits on the plateau: stricter thresholds add\n")
	b.WriteString("rounds without accuracy; looser ones admit conflicted queries early.\n")
	return b.String(), nil
}

// runAblationM sweeps the neighbor cap M (the paper uses 4, and 10
// for Ogbn-Products). More neighbors mean more tokens and, past the
// model's attention span, no more signal — the curve that justifies
// token pruning's premise that neighbor text is the cost lever.
func runAblationM(cfg Config) (string, error) {
	var b strings.Builder
	tbl := tablefmt.New("neighbor cap sensitivity, 1-hop random",
		"dataset", "M", "accuracy", "input tokens/query")
	for _, name := range []string{"cora", "pubmed"} {
		d, err := load(name, cfg)
		if err != nil {
			return "", errf("ablation-m", err)
		}
		for _, m := range []int{0, 2, 4, 8, 12} {
			ctx := d.ctx(cfg)
			ctx.M = m
			sim := d.sim(gpt35(), cfg)
			var method predictors.Method = predictors.KHopRandom{K: 1}
			if m == 0 {
				method = predictors.Vanilla{}
			}
			res, err := core.ExecuteWith(ctx, method, sim, core.Plan{Queries: d.split.Query}, cfg.exec())
			if err != nil {
				return "", errf("ablation-m", err)
			}
			tbl.AddRow(d.spec.Display, fmt.Sprint(m),
				tablefmt.Pct(core.Accuracy(d.g, res.Pred)),
				fmt.Sprintf("%.0f", float64(res.Meter.InputTokens())/float64(len(d.split.Query))))
		}
	}
	b.WriteString(tbl.String())
	b.WriteString("\nTokens grow linearly with M while accuracy saturates (or dips where\n")
	b.WriteString("neighbor text is noise) — the asymmetry token pruning exploits.\n")
	return b.String(), nil
}
