package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/encode"
	"repro/internal/gnn"
	"repro/internal/predictors"
	"repro/internal/tablefmt"
	"repro/internal/tag"
)

// runGNNBaseline regenerates the paradigm comparison behind Fig. 1 and
// Section II: trained GNN baselines (2-layer GCN on TF-IDF features,
// label propagation) versus training-free "LLMs as predictors" methods
// on the same splits — accuracy side by side with what each paradigm
// costs (training + full-graph access vs tokens per query).
func runGNNBaseline(cfg Config) (string, error) {
	var b strings.Builder
	b.WriteString("Paradigm comparison (Fig. 1): trained GNNs vs training-free LLM queries.\n\n")

	tbl := tablefmt.New("", "dataset", "LabelProp", "GCN", "GraphSAGE", "zero-shot", "1-hop random", "SNS", "LLM tokens/query")
	for _, name := range datasetNames(cfg, false) {
		d, err := load(name, cfg)
		if err != nil {
			return "", errf("gnn-baseline", err)
		}

		// GNN side: encode texts, train on the labeled split.
		corpus := make([]string, d.g.NumNodes())
		for i := range corpus {
			corpus[i] = d.g.Text(tag.NodeID(i))
		}
		dim := 256
		if cfg.Fast {
			dim = 128
		}
		enc := encode.NewTFIDF(corpus, dim)
		x := make([][]float64, len(corpus))
		for i := range x {
			x[i] = enc.Encode(corpus[i])
		}
		epochs := 100
		if cfg.Fast {
			epochs = 40
		}
		gcn, err := gnn.TrainGCN(d.g, x, d.split.Labeled, gnn.GCNConfig{Epochs: epochs, Seed: cfg.Seed})
		if err != nil {
			return "", errf("gnn-baseline", err)
		}
		sage, err := gnn.TrainSAGE(d.g, x, d.split.Labeled, gnn.GCNConfig{Epochs: epochs, Seed: cfg.Seed})
		if err != nil {
			return "", errf("gnn-baseline", err)
		}
		lpPred, err := gnn.LabelProp(d.g, d.split.Labeled, 30, 0.9)
		if err != nil {
			return "", errf("gnn-baseline", err)
		}
		lpOK := 0
		for _, v := range d.split.Query {
			if lpPred[v] == d.g.Nodes[v].Label {
				lpOK++
			}
		}
		lpAcc := float64(lpOK) / float64(len(d.split.Query))

		// LLM side: the paper's methods on the same queries.
		accs := make([]float64, 0, 3)
		var tokensPerQuery float64
		for _, m := range []predictors.Method{predictors.Vanilla{}, predictors.KHopRandom{K: 1}, predictors.SNS{}} {
			ctx := d.ctx(cfg)
			sim := d.sim(gpt35(), cfg)
			res, err := core.ExecuteWith(ctx, m, sim, core.Plan{Queries: d.split.Query}, cfg.exec())
			if err != nil {
				return "", errf("gnn-baseline", err)
			}
			accs = append(accs, core.Accuracy(d.g, res.Pred))
			if m.Name() == "SNS" {
				tokensPerQuery = float64(res.Meter.InputTokens()) / float64(len(d.split.Query))
			}
		}

		tbl.AddRow(d.spec.Display,
			tablefmt.Pct(lpAcc), tablefmt.Pct(gcn.Accuracy(d.g, d.split.Query)),
			tablefmt.Pct(sage.Accuracy(d.g, d.split.Query)),
			tablefmt.Pct(accs[0]), tablefmt.Pct(accs[1]), tablefmt.Pct(accs[2]),
			fmt.Sprintf("%.0f", tokensPerQuery))
	}
	b.WriteString(tbl.String())
	b.WriteString("\nGNNs pay no tokens but need per-graph training, the full graph in\n")
	b.WriteString("memory, and a fixed label space; the LLM methods are training-free\n")
	b.WriteString("and per-node — the cost asymmetry the paper's MQO strategies attack.\n")
	return b.String(), nil
}
