package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

func TestConcurrencySweepDeterministicWithSpeedup(t *testing.T) {
	cfg := fastCfg()
	d, err := load("cora", cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := khop1()
	delay := 5 * time.Millisecond
	plan := core.Plan{Queries: d.split.Query}

	run := func(workers int) (*core.Results, time.Duration) {
		t.Helper()
		p := LatencyPredictor{Inner: d.sim(gpt35(), cfg), Delay: delay}
		start := time.Now()
		res, err := core.ExecuteWith(d.ctx(cfg), m, p, plan, core.ExecConfig{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res, time.Since(start)
	}

	serial, serialElapsed := run(1)
	parallel, parallelElapsed := run(8)

	if err := samePredictions(serial, parallel); err != nil {
		t.Fatalf("workers=8 diverged from serial: %v", err)
	}
	// The issue's acceptance bar is >=4x at 8 workers; assert a 3x floor
	// so the test tolerates a loaded CI machine.
	speedup := serialElapsed.Seconds() / parallelElapsed.Seconds()
	if speedup < 3 {
		t.Fatalf("speedup %.2fx at 8 workers (serial %v, parallel %v), want >= 3x",
			speedup, serialElapsed, parallelElapsed)
	}
}

func TestConcurrencyExperimentRuns(t *testing.T) {
	out, err := RunConcurrencySweep(fastCfg(), 2*time.Millisecond, []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "workers") || !strings.Contains(out, "bit-identical") {
		t.Fatalf("unexpected sweep output:\n%s", out)
	}
}
