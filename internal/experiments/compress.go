package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/prompt"
	"repro/internal/tablefmt"
)

// compressSweep is the standard compression sweep: the uncompressed
// baseline, the three level caps, and two per-query token budgets. The
// benchcompress guard reruns the same sweep and fails CI when the
// default level (c1) stops saving at least 10% of input tokens.
func compressSweep() []struct {
	Name string
	Comp prompt.Compressor
} {
	return []struct {
		Name string
		Comp prompt.Compressor
	}{
		{"baseline", prompt.Compressor{}},
		{"c1", prompt.Compressor{Level: 1}},
		{"c2", prompt.Compressor{Level: 2}},
		{"c3", prompt.Compressor{Level: 3}},
		{"budget300", prompt.Compressor{Level: 1, TargetTokens: 300}},
		{"budget200", prompt.Compressor{Level: 1, TargetTokens: 200}},
	}
}

// compressCell is one (dataset, compressor) outcome.
type compressCell struct {
	acc    float64
	tokens int
}

// runCompressSweep executes the full sweep on one dataset and returns
// a cell per sweep entry, in sweep order. Abstracts are included on
// neighbor entries — the compression stage's whole target is abstract
// text, so the sweep exercises both the target's and the neighbors'.
func runCompressSweep(name string, cfg Config) ([]compressCell, error) {
	d, err := load(name, cfg)
	if err != nil {
		return nil, err
	}
	sweep := compressSweep()
	out := make([]compressCell, 0, len(sweep))
	for _, s := range sweep {
		ctx := d.ctx(cfg)
		ctx.IncludeAbstracts = true
		sim := d.sim(gpt35(), cfg)
		ecfg := cfg.exec()
		ecfg.Compress = s.Comp
		res, err := core.ExecuteWith(ctx, khop1(), sim, core.Plan{Queries: d.split.Query}, ecfg)
		if err != nil {
			return nil, err
		}
		out = append(out, compressCell{
			acc:    core.Accuracy(d.g, res.Pred),
			tokens: res.Meter.InputTokens(),
		})
	}
	return out, nil
}

// runCompress regenerates the prompt-compression evaluation: accuracy
// and metered input tokens for the standard sweep on the calibration
// datasets. The headline claim is the acceptance criterion of ROADMAP
// item 3 — same-shape accuracy at measurably fewer input tokens, a
// second token-saving axis multiplicative with the paper's τ-pruning.
func runCompress(cfg Config) (string, error) {
	sweep := compressSweep()
	var b strings.Builder
	for _, name := range smallNames {
		cells, err := runCompressSweep(name, cfg)
		if err != nil {
			return "", errf("compress", err)
		}
		d, err := load(name, cfg)
		if err != nil {
			return "", errf("compress", err)
		}
		t := tablefmt.New(
			fmt.Sprintf("Prompt compression (%s, 1-hop random with abstracts): accuracy vs input tokens", d.spec.Display),
			"Config", "Accuracy", "Input tokens", "Saved")
		base := cells[0]
		for i, s := range sweep {
			c := cells[i]
			saved := "—"
			if i > 0 && base.tokens > 0 {
				saved = tablefmt.Pct(float64(base.tokens-c.tokens) / float64(base.tokens))
			}
			t.AddRow(s.Name, tablefmt.Pct(c.acc), fmt.Sprintf("%d", c.tokens), saved)
		}
		b.WriteString(t.String())
		b.WriteString("\n")
	}
	return b.String(), nil
}
