package experiments

import (
	"strings"
	"testing"
)

func fastCfg() Config { return Config{Seed: 5, Fast: true} }

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table2", "fig2", "fig3", "table4", "fig7", "table5", "table6", "fig8",
		"table7", "table8", "table9", "table10",
		"gnn-baseline", "ablation-channels", "ablation-scheduling",
		"ablation-gamma", "ablation-m", "ablation-encoder",
		"cost-projection", "prefix-sharing", "concurrency", "faults",
		"load", "compress",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Fatalf("experiment %d id %q, want %q", i, e.ID, want[i])
		}
		if e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %s missing title or runner", e.ID)
		}
	}
	if _, ok := ByID("table4"); !ok {
		t.Fatal("ByID failed for table4")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID accepted unknown id")
	}
	if len(IDs()) != len(want) {
		t.Fatal("IDs() incomplete")
	}
}

func TestTable2(t *testing.T) {
	out, err := runTable2(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Cora", "Citeseer", "Pubmed", "Ogbn-Arxiv", "Ogbn-Products", "2,449,029", "61,859,140"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table2 missing %q:\n%s", want, out)
		}
	}
}

func TestFig3(t *testing.T) {
	out, err := runFig3(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Cora", "Citeseer", "N_i^L != {}", "query share"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig3 missing %q:\n%s", want, out)
		}
	}
}

func TestTable4(t *testing.T) {
	out, err := runTable4(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"1-hop random", "2-hop random", "SNS", "w/ token prune", "Δ%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table4 missing %q:\n%s", want, out)
		}
	}
}

func TestFig7(t *testing.T) {
	out, err := runFig7(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"token pruning (ours)", "random", "100%", "0%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig7 missing %q:\n%s", want, out)
		}
	}
}

func TestTable5(t *testing.T) {
	out, err := runTable5(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Proportion of saturated nodes", "Reducible", "Title & Abstract", "2,449,029"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table5 missing %q:\n%s", want, out)
		}
	}
}

func TestTable6(t *testing.T) {
	out, err := runTable6(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Saturated") || !strings.Contains(out, "Non-saturated") {
		t.Fatalf("table6 output wrong:\n%s", out)
	}
}

func TestFig8(t *testing.T) {
	out, err := runFig8(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"1-hop, M=4", "2-hop, M=10", "w/ scheduling", "w/o scheduling"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig8 missing %q:\n%s", want, out)
		}
	}
}

func TestTable7(t *testing.T) {
	out, err := runTable7(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"gpt-3.5", "gpt-4o-mini", "w/ query boost", "SNS"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table7 missing %q:\n%s", want, out)
		}
	}
}

func TestTable8(t *testing.T) {
	out, err := runTable8(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"w/ prune & boost", "# Queries Equip N_i"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table8 missing %q:\n%s", want, out)
		}
	}
}

func TestTable9(t *testing.T) {
	out, err := runTable9(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"1-hop, w/ raw, no path", "2-hop, no raw, w/ path", "w/ random", "w/ both"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table9 missing %q:\n%s", want, out)
		}
	}
}

func TestTable10(t *testing.T) {
	out, err := runTable10(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Vanilla", "w/ boost", "Pubmed"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table10 missing %q:\n%s", want, out)
		}
	}
}

func TestAblations(t *testing.T) {
	out, err := runAblationChannels(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "merged regression") {
		t.Fatalf("ablation-channels output wrong:\n%s", out)
	}
	out, err = runAblationScheduling(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "greedy (paper)") {
		t.Fatalf("ablation-scheduling output wrong:\n%s", out)
	}
}

func TestDeterministicOutput(t *testing.T) {
	a, err := runTable6(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := runTable6(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("identical configs produced different table6 output")
	}
}

func TestLoadRespectsProtocols(t *testing.T) {
	cfg := fastCfg()
	d, err := load("cora", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.split.Labeled) != 20*len(d.g.Classes) {
		t.Fatalf("cora labeled %d, want %d", len(d.split.Labeled), 20*len(d.g.Classes))
	}
	d, err = load("ogbn-arxiv", cfg)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(len(d.split.Labeled)) / float64(d.g.NumNodes())
	if frac < 0.4 || frac > 0.7 {
		t.Fatalf("arxiv labeled fraction %.2f, want ~0.54", frac)
	}
}

func TestCtxM(t *testing.T) {
	cfg := fastCfg()
	d, err := load("ogbn-products", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.ctx(cfg).M; got != 10 {
		t.Fatalf("products M = %d, want 10", got)
	}
	if d.ctx(cfg).NodeType != "product" {
		t.Fatal("products node type wrong")
	}
	d2, err := load("cora", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := d2.ctx(cfg).M; got != 4 {
		t.Fatalf("cora M = %d, want 4", got)
	}
}
