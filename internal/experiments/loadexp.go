package experiments

import (
	"fmt"

	loadpkg "repro/internal/load"
	"repro/internal/tablefmt"
)

// runLoad replays the built-in load scenarios against the in-process
// serving tier and tabulates what the open-loop driver observed: the
// latency tail, the token cost per answered query, how much coalescing
// bought, and whether the SLO verdict the server published agrees with
// the client's stopwatch. It is the EXPERIMENTS.md anchor for the load
// harness (cmd/mqoload drives the same runner with more knobs).
//
// Latency columns are hardware-dependent; the accounting columns
// (requests classified, decode errors, verdict agreement) are the
// reproducible part, and the run fails if any request decodes wrong.
func runLoad(cfg Config) (string, error) {
	scenarios := loadpkg.Presets()
	if cfg.Fast {
		// The two cheapest, most deterministic shapes: the CI gate and
		// the backpressure flood.
		scenarios = scenarios[:0:0]
		for _, name := range []string{"smoke", "flood"} {
			sc, ok := loadpkg.PresetByName(name)
			if !ok {
				return "", fmt.Errorf("load: preset %q missing", name)
			}
			sc.Requests /= 4
			scenarios = append(scenarios, sc)
		}
	}
	t := tablefmt.New("Load harness: open-loop scenarios vs the serving tier",
		"scenario", "arrivals", "req", "ok", "429", "err", "p50 ms", "p99 ms",
		"tok/q", "coalesce", "queue peak", "slo", "agree")
	for _, sc := range scenarios {
		if cfg.Seed != 0 {
			sc.Seed = cfg.Seed
		}
		rep, err := loadpkg.Run(sc, loadpkg.Options{})
		if err != nil {
			return "", err
		}
		if rep.DecodeErrors > 0 {
			return "", fmt.Errorf("load: scenario %q: %d responses violated the wire contract",
				sc.Name, rep.DecodeErrors)
		}
		verdict := "-"
		if rep.SLO.Configured {
			verdict = "pass"
			if !rep.SLO.Pass {
				verdict = "FAIL"
			}
		}
		t.AddRow(sc.Name,
			fmt.Sprintf("%s@%.0f/s", sc.Arrival.Process, sc.Arrival.RatePerSec),
			fmt.Sprintf("%d", rep.Requests),
			fmt.Sprintf("%d", rep.OK),
			fmt.Sprintf("%d", rep.Rejected),
			fmt.Sprintf("%d", rep.Errors),
			fmt.Sprintf("%.1f", rep.P50MS),
			fmt.Sprintf("%.1f", rep.P99MS),
			fmt.Sprintf("%.1f", rep.TokensPerQuery),
			fmt.Sprintf("%.0f%%", 100*rep.CoalesceRate),
			fmt.Sprintf("%d", rep.QueuePeak),
			verdict,
			fmt.Sprintf("%v", rep.SLOAgree),
		)
	}
	return t.String(), nil
}
