package experiments

import (
	"encoding/json"
	"math"
	"os"
	"testing"
)

// BenchmarkCompressSweep runs the standard compression sweep on the
// calibration datasets and guards the headline claim: level-1
// compression must save at least 10% of metered input tokens on every
// dataset while staying within sameShapePts accuracy points of the
// uncompressed baseline. A regression in the span splitter, the
// density scoring or the threading (e.g. compression silently not
// applied) fails the benchmark, not just drifts a number. With
// MQO_BENCH_JSON set (the Makefile benchcompress target), one JSON
// line per dataset is appended to the committed BENCH_compress.json.
func BenchmarkCompressSweep(b *testing.B) {
	const (
		minSaving    = 0.10 // the ROADMAP item 3 acceptance floor
		sameShapePts = 10.0 // max accuracy drop, percentage points
	)
	cfg := Config{Seed: 5, Fast: true}
	sweep := compressSweep()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, name := range smallNames {
			cells, err := runCompressSweep(name, cfg)
			if err != nil {
				b.Fatal(err)
			}
			base := cells[0]
			if base.tokens <= 0 {
				b.Fatalf("%s: baseline metered zero input tokens", name)
			}
			row := map[string]any{
				"bench":           "BenchmarkCompressSweep",
				"dataset":         name,
				"baseline_tokens": base.tokens,
				"baseline_acc":    base.acc,
			}
			for j, s := range sweep[1:] {
				c := cells[j+1]
				saving := float64(base.tokens-c.tokens) / float64(base.tokens)
				row[s.Name+"_tokens"] = c.tokens
				row[s.Name+"_acc"] = c.acc
				row[s.Name+"_saving"] = math.Round(saving*1000) / 1000
				if s.Name != "c1" {
					continue
				}
				if saving < minSaving {
					b.Fatalf("%s: level-1 compression saves %.1f%% input tokens, guard is %.0f%%",
						name, saving*100, minSaving*100)
				}
				if drop := (base.acc - c.acc) * 100; drop > sameShapePts {
					b.Fatalf("%s: level-1 compression drops accuracy %.1f points, guard is %.0f",
						name, drop, sameShapePts)
				}
			}
			if path := os.Getenv("MQO_BENCH_JSON"); path != "" && i == 0 {
				appendBenchJSON(b, path, row)
			}
		}
	}
}

// appendBenchJSON appends one JSON line to the benchmark results file
// (the Makefile benchcompress target points MQO_BENCH_JSON at
// BENCH_compress.json).
func appendBenchJSON(b *testing.B, path string, fields map[string]any) {
	b.Helper()
	line, err := json.Marshal(fields)
	if err != nil {
		b.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write(append(line, '\n')); err != nil {
		b.Fatal(err)
	}
}
