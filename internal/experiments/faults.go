package experiments

import (
	"fmt"
	"time"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/tablefmt"
)

// RunFaultSweep executes one plan under increasing injected-failure
// rates with the full fault-tolerance stack engaged: per-query
// timeouts abandon hung calls, and the surrogate classifier answers
// every query whose LLM path failed permanently. Faults are a pure
// function of hash(seed, prompt), so each row — and the whole sweep —
// reproduces bit-for-bit; the sweep re-runs its worst row at several
// worker counts and fails if any prediction or token total changes.
func RunFaultSweep(cfg Config, rates []float64, workers []int) (string, error) {
	d, err := load("cora", cfg)
	if err != nil {
		return "", err
	}
	m := khop1()
	timeout := cfg.QueryTimeout
	if timeout <= 0 {
		timeout = 50 * time.Millisecond
	}
	// The fallback answer machine: the paper's surrogate f_θ1, trained
	// once on the labeled set with zero LLM queries.
	sur, err := core.FitSurrogate(d.g, d.split.Labeled, core.SurrogateConfig{Seed: cfg.Seed})
	if err != nil {
		return "", err
	}

	execute := func(rate float64, workerCount int) (*core.Results, *llm.FaultInjector, error) {
		inj, err := llm.NewFaultInjector(d.sim(gpt35(), cfg), llm.FaultConfig{
			Seed: cfg.Seed + 31,
			// Split the failure budget: most prompts error fast, a few
			// hang until the per-query timeout fires.
			ErrorRate: 0.8 * rate,
			HangRate:  0.2 * rate,
		})
		if err != nil {
			return nil, nil, err
		}
		ecfg := cfg.exec()
		ecfg.Workers = workerCount
		ecfg.QueryTimeout = timeout
		ecfg.Fallback = sur
		res, err := core.ExecuteWith(d.ctx(cfg), m, inj, core.Plan{Queries: d.split.Query}, ecfg)
		if err != nil {
			return nil, nil, err
		}
		return res, inj, nil
	}

	baseWorkers := cfg.Workers
	if baseWorkers < 1 {
		baseWorkers = 1
	}
	tbl := tablefmt.New(
		fmt.Sprintf("fault tolerance on Cora, %d queries, %v per-query timeout",
			len(d.split.Query), timeout),
		"fail rate", "errors", "hangs", "LLM answered", "surrogate", "coverage (%)", "plan acc (%)")
	var worstSurrogate int
	for _, rate := range rates {
		res, inj, err := execute(rate, baseWorkers)
		if err != nil {
			return "", fmt.Errorf("rate %.2f: %w", rate, err)
		}
		acc, cov := core.PlanAccuracy(d.g, d.split.Query, res.Pred)
		st := inj.Stats()
		tbl.AddRow(fmt.Sprintf("%.0f%%", 100*rate),
			fmt.Sprint(st.Errors), fmt.Sprint(st.Hangs),
			fmt.Sprint(res.LLMAnswered()), fmt.Sprint(res.SurrogateAnswered()),
			tablefmt.Pct(cov), tablefmt.Pct(acc))
		worstSurrogate = res.SurrogateAnswered()
	}
	out := tbl.String()

	// Determinism under chaos: the worst row must reproduce exactly at
	// every worker count, because fault fates are keyed on the prompt,
	// not on dispatch order.
	worst := rates[len(rates)-1]
	base, _, err := execute(worst, workers[0])
	if err != nil {
		return "", err
	}
	for _, w := range workers[1:] {
		r, _, err := execute(worst, w)
		if err != nil {
			return "", fmt.Errorf("workers=%d: %w", w, err)
		}
		if err := samePredictions(base, r); err != nil {
			return "", fmt.Errorf("chaos run diverged between %d and %d workers: %w", workers[0], w, err)
		}
	}

	// A dead backend: every prompt errors, a small breaker threshold
	// trips after the first failures, and the rest of the batch is
	// answered by the surrogate at fail-fast speed.
	deadInj, err := llm.NewFaultInjector(d.sim(gpt35(), cfg), llm.FaultConfig{
		Seed: cfg.Seed + 31, ErrorRate: 1,
	})
	if err != nil {
		return "", err
	}
	deadCfg := cfg.exec()
	deadCfg.QueryTimeout = timeout
	deadCfg.Fallback = sur
	deadCfg.Breaker = batch.BreakerConfig{Threshold: 5, Cooldown: time.Hour}
	deadRes, err := core.ExecuteWith(d.ctx(cfg), m, deadInj, core.Plan{Queries: d.split.Query}, deadCfg)
	if err != nil {
		return "", fmt.Errorf("dead backend: %w", err)
	}
	deadAcc, deadCov := core.PlanAccuracy(d.g, d.split.Query, deadRes.Pred)
	out += fmt.Sprintf("\ndead backend (100%% errors, breaker threshold 5): surrogate answered %d/%d, coverage %s, plan acc %s\n",
		deadRes.SurrogateAnswered(), len(d.split.Query), tablefmt.Pct(deadCov), tablefmt.Pct(deadAcc))
	out += fmt.Sprintf("chaos: surrogate fallback answered %d queries at the worst sweep rate; outputs identical across workers %v\n",
		worstSurrogate, workers)
	return out, nil
}

// runFaults is the registered experiment entry point: failure rates
// 0%, 10%, 25% and 50%, with the worst rate replayed at 1, 4 and 8
// workers.
func runFaults(cfg Config) (string, error) {
	out, err := RunFaultSweep(cfg, []float64{0, 0.10, 0.25, 0.50}, []int{1, 4, 8})
	if err != nil {
		return "", errf("faults", err)
	}
	return out, nil
}
