package experiments

import (
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/instructglm"
	"repro/internal/linkpred"
	"repro/internal/nn"
	"repro/internal/tablefmt"
	"repro/internal/tag"
)

// runTable9 regenerates Table IX: the five optimization variants
// applied to the six InstructGLM-style backbones on Cora, with 30% of
// queries pruned.
func runTable9(cfg Config) (string, error) {
	d, err := load("cora", cfg)
	if err != nil {
		return "", errf("table9", err)
	}
	ecfg := instructglm.DefaultEvaluateConfig(cfg.Seed)
	ecfg.Inadequacy = d.inadequacyConfig(cfg)
	t := tablefmt.New("Table IX (Cora): accuracy (%) of optimization variants on instruction-tuned backbones",
		"Backbone", "Base", "w/ boost", "w/ random", "w/ prune", "w/ both")
	for _, b := range instructglm.All() {
		res, err := instructglm.Evaluate(d.g, d.split, b, ecfg)
		if err != nil {
			return "", errf("table9", err)
		}
		t.AddRow(b.String(),
			tablefmt.Pct(res.Base),
			tablefmt.Pct(res.Boost),
			tablefmt.Pct(res.Random),
			tablefmt.Pct(res.Prune),
			tablefmt.Pct(res.Both),
		)
	}
	return t.String(), nil
}

// runTable10 regenerates Table X: link prediction accuracy of the five
// prompt variants on the small datasets, pruning 20% of pairs.
func runTable10(cfg Config) (string, error) {
	t := tablefmt.New("Table X: link prediction accuracy (%)",
		"Dataset", "Vanilla", "Base", "w/ boost", "w/ prune", "w/ both")
	for _, name := range smallNames {
		d, err := load(name, cfg)
		if err != nil {
			return "", errf("table10", err)
		}
		nTest := 1000
		if cfg.Fast {
			nTest = 200
		}
		if maxTest := d.g.NumEdges(); nTest/2 > maxTest/2 {
			nTest = maxTest / 2
		}
		ds, err := linkpred.MakeDataset(d.g, nTest, cfg.Seed+11)
		if err != nil {
			return "", errf("table10", err)
		}
		sim := linkpred.NewSimLink(d.g, cfg.Seed+17)
		mlpCfg := nn.DefaultMLPConfig()
		if cfg.Fast {
			mlpCfg.Epochs = 30
		}
		pruner, err := linkpred.FitPairInadequacy(ds, 300, cfg.Seed+19, mlpCfg)
		if err != nil {
			return "", errf("table10", err)
		}
		out, err := linkpred.Variants(ds, sim, 4, 0.20, 3, pruner)
		if err != nil {
			return "", errf("table10", err)
		}
		row := []string{d.spec.Display}
		for _, key := range []string{"vanilla", "base", "boost", "prune", "both"} {
			row = append(row, tablefmt.Pct(out[key].Accuracy))
		}
		t.AddRow(row...)
	}
	return t.String(), nil
}

// runAblationChannels compares the inadequacy measure's two channels in
// isolation against the paper's merged regression, pruning 50% of
// queries on Cora with the 1-hop random method — the channel ablation
// called out in DESIGN.md.
func runAblationChannels(cfg Config) (string, error) {
	d, err := load("cora", cfg)
	if err != nil {
		return "", errf("ablation-channels", err)
	}
	sim := d.sim(gpt35(), cfg)
	iq, err := d.fitInadequacy(sim, cfg)
	if err != nil {
		return "", errf("ablation-channels", err)
	}
	m := khop1()
	const tau = 0.5

	score := func(kind string, v tag.NodeID) float64 {
		h, b := iq.ChannelsNode(d.g, v)
		switch kind {
		case "entropy":
			return h
		case "bias":
			return b
		default:
			return iq.ScoreNode(d.g, v)
		}
	}
	run := func(kind string) (float64, error) {
		type sv struct {
			v tag.NodeID
			s float64
		}
		ss := make([]sv, len(d.split.Query))
		for i, v := range d.split.Query {
			ss[i] = sv{v: v, s: score(kind, v)}
		}
		// Ascending: prune the most saturated-looking first.
		sort.SliceStable(ss, func(i, j int) bool { return ss[i].s < ss[j].s })
		p := core.Plan{Queries: d.split.Query, Prune: map[tag.NodeID]bool{}}
		for _, s := range ss[:int(tau*float64(len(ss)))] {
			p.Prune[s.v] = true
		}
		res, err := core.ExecuteWith(d.ctx(cfg), m, sim, p, cfg.exec())
		if err != nil {
			return 0, err
		}
		return core.Accuracy(d.g, res.Pred), nil
	}

	var b strings.Builder
	t := tablefmt.New("Ablation (Cora, 1-hop random, 50% pruned): inadequacy channel variants",
		"Variant", "Accuracy (%)")
	for _, kind := range []string{"entropy", "bias", "merged"} {
		acc, err := run(kind)
		if err != nil {
			return "", errf("ablation-channels", err)
		}
		label := map[string]string{
			"entropy": "entropy channel only (Eq. 8)",
			"bias":    "bias channel only (Eq. 9)",
			"merged":  "merged regression (Eq. 10, paper)",
		}[kind]
		t.AddRow(label, tablefmt.Pct(acc))
	}
	b.WriteString(t.String())
	return b.String(), nil
}
