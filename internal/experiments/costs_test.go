package experiments

import (
	"strings"
	"testing"
)

func TestCostProjection(t *testing.T) {
	out, err := runCostProjection(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"GPT-3.5", "GPT-4", "2,449,029", "$6000", "$360000", "tokens/query"} {
		if !strings.Contains(out, want) {
			t.Fatalf("cost-projection missing %q:\n%s", want, out)
		}
	}
}
