package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/predictors"
	"repro/internal/tablefmt"
)

// fig8Configs are the four neighbor-text configurations of Fig. 8.
var fig8Configs = []struct {
	label string
	hops  int
	m     int
}{
	{"1-hop, M=4", 1, 4},
	{"1-hop, M=10", 1, 10},
	{"2-hop, M=4", 2, 4},
	{"2-hop, M=10", 2, 10},
}

// fig8Rounds matches the paper's 50-round protocol.
const fig8Rounds = 50

// runFig8 regenerates Fig. 8: pseudo-label utilization with and
// without the query scheduling algorithm, on the small datasets under
// the four neighbor-text configurations. No LLM is involved —
// pseudo-labels are simulated, as in the paper.
func runFig8(cfg Config) (string, error) {
	var b strings.Builder
	for _, name := range smallNames {
		d, err := load(name, cfg)
		if err != nil {
			return "", errf("fig8", err)
		}
		labels := make([]string, 0, len(fig8Configs)*2)
		values := make([]float64, 0, len(fig8Configs)*2)
		for _, fc := range fig8Configs {
			ctx := d.ctx(cfg)
			ctx.M = fc.m
			m := predictors.KHopRandom{K: fc.hops}
			with := core.SimulateScheduling(ctx, m, d.split.Query, fig8Rounds, core.ScheduleGreedy, cfg.Seed+3)
			without := core.SimulateScheduling(ctx, m, d.split.Query, fig8Rounds, core.ScheduleRandom, cfg.Seed+3)
			labels = append(labels,
				fc.label+" w/ scheduling",
				fc.label+" w/o scheduling")
			values = append(values, float64(with), float64(without))
		}
		fmt.Fprintf(&b, "Fig. 8 (%s): pseudo-label utilization over %d rounds\n", d.spec.Display, fig8Rounds)
		b.WriteString(tablefmt.Bar("", labels, values, 40))
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// runAblationScheduling compares the paper's greedy label-count
// scheduling against random rounds across round budgets — the
// scheduling-policy ablation called out in DESIGN.md.
func runAblationScheduling(cfg Config) (string, error) {
	d, err := load("cora", cfg)
	if err != nil {
		return "", errf("ablation-scheduling", err)
	}
	roundCounts := []int{10, 25, 50, 100}
	xs := make([]string, len(roundCounts))
	greedy := make([]float64, len(roundCounts))
	random := make([]float64, len(roundCounts))
	m := predictors.KHopRandom{K: 2}
	for i, rounds := range roundCounts {
		xs[i] = fmt.Sprint(rounds)
		ctx := d.ctx(cfg)
		greedy[i] = float64(core.SimulateScheduling(ctx, m, d.split.Query, rounds, core.ScheduleGreedy, cfg.Seed))
		random[i] = float64(core.SimulateScheduling(ctx, m, d.split.Query, rounds, core.ScheduleRandom, cfg.Seed))
	}
	return tablefmt.RenderSeries(
		"Ablation (Cora, 2-hop, M=4): pseudo-label utilization vs round budget",
		xs,
		[]tablefmt.Series{{Name: "greedy (paper)", Y: greedy}, {Name: "random rounds", Y: random}},
		0,
	), nil
}
