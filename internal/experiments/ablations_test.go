package experiments

import (
	"strings"
	"testing"
)

func TestAblationGamma(t *testing.T) {
	out, err := runAblationGamma(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"γ1", "γ2", "pseudo-label uses", "Cora"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ablation-gamma missing %q:\n%s", want, out)
		}
	}
	// 5 × 3 sweep rows.
	if rows := strings.Count(out, "\n"); rows < 17 {
		t.Errorf("expected 15 sweep rows, output:\n%s", out)
	}
}

func TestAblationEncoder(t *testing.T) {
	out, err := runAblationEncoder(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"TF-IDF", "skip-gram", "bag-of-words", "Cora", "Pubmed"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ablation-encoder missing %q:\n%s", want, out)
		}
	}
}

func TestAblationM(t *testing.T) {
	out, err := runAblationM(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Cora", "Pubmed", "tokens/query"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ablation-m missing %q:\n%s", want, out)
		}
	}
}
