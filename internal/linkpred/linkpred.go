// Package linkpred extends the two MQO strategies to link prediction
// (Section VI-J of the paper): predicting whether an edge exists
// between a node pair.
//
// The task setup holds out a balanced set of positive edges and
// negative pairs; the remaining edges are the visible graph. Prompt
// variants mirror Table X: Vanilla sends the pair's text alone, Base
// adds the visible neighbor links of both endpoints, "w/ prune" omits
// those links for the pairs whose text alone suffices (scored by a
// binary surrogate's confidence, D(t_i,t_j) = 1 − max f(x_i‖x_j)), and
// "w/ boost" feeds predicted links back into the visible graph so later
// pairs see them as neighbor evidence (candidate criterion
// C = {v_i : |N_i| ≥ γ1}; no conflict threshold, since link prediction
// has no categories).
package linkpred

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/encode"
	"repro/internal/nn"
	"repro/internal/tag"
	"repro/internal/token"
	"repro/internal/xrand"
)

// Pair is one link-prediction query.
type Pair struct {
	A, B tag.NodeID
	// Positive is the ground truth (hidden from methods).
	Positive bool
}

// Key canonicalizes the unordered pair.
func (p Pair) Key() [2]tag.NodeID {
	if p.A > p.B {
		return [2]tag.NodeID{p.B, p.A}
	}
	return [2]tag.NodeID{p.A, p.B}
}

// Dataset is a link-prediction instance over one graph.
type Dataset struct {
	Graph *tag.Graph
	// adj is the visible adjacency (original edges minus held-out
	// positives, plus pseudo-links added by boosting).
	adj map[tag.NodeID][]tag.NodeID
	// Test is the balanced query set.
	Test []Pair
}

// MakeDataset holds out nTest/2 positive edges and samples nTest/2
// negative pairs (half of them same-class "hard" negatives). The
// visible graph excludes held-out positives.
func MakeDataset(g *tag.Graph, nTest int, seed uint64) (*Dataset, error) {
	if nTest < 2 {
		return nil, fmt.Errorf("linkpred: need at least 2 test pairs")
	}
	rng := xrand.New(seed).SplitString("linkpred/dataset")

	// Collect all edges once.
	var edges [][2]tag.NodeID
	for u := 0; u < g.NumNodes(); u++ {
		for _, v := range g.Neighbors(tag.NodeID(u)) {
			if tag.NodeID(u) < v {
				edges = append(edges, [2]tag.NodeID{tag.NodeID(u), v})
			}
		}
	}
	nPos := nTest / 2
	if nPos > len(edges)/2 {
		return nil, fmt.Errorf("linkpred: %d positives requested, graph has only %d edges", nPos, len(edges))
	}
	d := &Dataset{Graph: g, adj: make(map[tag.NodeID][]tag.NodeID, g.NumNodes())}

	heldOut := map[[2]tag.NodeID]bool{}
	for _, i := range rng.Sample(len(edges), nPos) {
		e := edges[i]
		heldOut[e] = true
		d.Test = append(d.Test, Pair{A: e[0], B: e[1], Positive: true})
	}
	// Visible adjacency = all edges minus held-out.
	for _, e := range edges {
		if heldOut[e] {
			continue
		}
		d.adj[e[0]] = append(d.adj[e[0]], e[1])
		d.adj[e[1]] = append(d.adj[e[1]], e[0])
	}

	// Negative pairs: non-edges, half same-class.
	byClass := make([][]tag.NodeID, len(g.Classes))
	for _, n := range g.Nodes {
		byClass[n.Label] = append(byClass[n.Label], n.ID)
	}
	nNeg := nTest - nPos
	seen := map[[2]tag.NodeID]bool{}
	attempts := 0
	for len(seen) < nNeg && attempts < 200*nNeg {
		attempts++
		var a, b tag.NodeID
		if len(seen)%2 == 0 {
			// Hard negative: same class.
			cls := byClass[rng.Intn(len(byClass))]
			if len(cls) < 2 {
				continue
			}
			a, b = cls[rng.Intn(len(cls))], cls[rng.Intn(len(cls))]
		} else {
			a, b = tag.NodeID(rng.Intn(g.NumNodes())), tag.NodeID(rng.Intn(g.NumNodes()))
		}
		if a == b || g.HasEdge(a, b) {
			continue
		}
		p := Pair{A: a, B: b}
		if seen[p.Key()] {
			continue
		}
		seen[p.Key()] = true
		d.Test = append(d.Test, p)
	}
	if len(seen) < nNeg {
		return nil, fmt.Errorf("linkpred: could not sample %d negative pairs", nNeg)
	}
	rng.Shuffle(len(d.Test), func(i, j int) { d.Test[i], d.Test[j] = d.Test[j], d.Test[i] })
	return d, nil
}

// VisibleNeighbors returns the current visible neighbors of v.
func (d *Dataset) VisibleNeighbors(v tag.NodeID) []tag.NodeID { return d.adj[v] }

// AddLink records a (pseudo-)link, used by boosting.
func (d *Dataset) AddLink(a, b tag.NodeID) {
	for _, u := range d.adj[a] {
		if u == b {
			return
		}
	}
	d.adj[a] = append(d.adj[a], b)
	d.adj[b] = append(d.adj[b], a)
}

// BuildLinkPrompt renders the pair query. When withLinks is true, up to
// m visible neighbors of each endpoint are listed by title; shared
// titles across the two lists are the structural cue the predictor can
// read. Neighbor lists are sorted by node ID for determinism.
func (d *Dataset) BuildLinkPrompt(p Pair, withLinks bool, m int) string {
	g := d.Graph
	var b strings.Builder
	fmt.Fprintf(&b, "Target pair:\nPaper A: Title: %s \nAbstract: %s \n", g.Nodes[p.A].Title, g.Nodes[p.A].Abstract)
	fmt.Fprintf(&b, "Paper B: Title: %s \nAbstract: %s \n", g.Nodes[p.B].Title, g.Nodes[p.B].Abstract)
	if withLinks {
		writeSide := func(label string, v tag.NodeID) {
			ns := append([]tag.NodeID(nil), d.adj[v]...)
			sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
			if len(ns) > m {
				ns = ns[:m]
			}
			fmt.Fprintf(&b, "Known citation links of paper %s:\n", label)
			for _, u := range ns {
				fmt.Fprintf(&b, "Link: %s \n", g.Nodes[u].Title)
			}
		}
		writeSide("A", p.A)
		writeSide("B", p.B)
	}
	b.WriteString("Task: \nDoes paper A have a citation relationship with paper B?\n")
	b.WriteString("Please output the answer as a Python list: Answer: ['Yes' or 'No'].")
	return b.String()
}

// parsedLink is the structured view of a link prompt.
type parsedLink struct {
	textA, textB string
	linksA       []string
	linksB       []string
}

// parseLinkPrompt recovers the pair query from a prompt built by
// BuildLinkPrompt.
func parseLinkPrompt(p string) (parsedLink, error) {
	var out parsedLink
	lines := strings.Split(p, "\n")
	i := 0
	next := func(prefix string) (string, bool) {
		if i < len(lines) && strings.HasPrefix(lines[i], prefix) {
			s := strings.TrimSpace(strings.TrimPrefix(lines[i], prefix))
			i++
			return s, true
		}
		return "", false
	}
	if _, ok := next("Target pair:"); !ok {
		return out, fmt.Errorf("linkpred: missing target header")
	}
	ta, ok := next("Paper A: Title: ")
	if !ok {
		return out, fmt.Errorf("linkpred: missing paper A")
	}
	aa, ok := next("Abstract: ")
	if !ok {
		return out, fmt.Errorf("linkpred: missing abstract A")
	}
	tb, ok := next("Paper B: Title: ")
	if !ok {
		return out, fmt.Errorf("linkpred: missing paper B")
	}
	ab, ok := next("Abstract: ")
	if !ok {
		return out, fmt.Errorf("linkpred: missing abstract B")
	}
	out.textA = ta + " " + aa
	out.textB = tb + " " + ab
	for i < len(lines) {
		if _, ok := next("Known citation links of paper A:"); ok {
			for {
				l, ok := next("Link: ")
				if !ok {
					break
				}
				out.linksA = append(out.linksA, l)
			}
			continue
		}
		if _, ok := next("Known citation links of paper B:"); ok {
			for {
				l, ok := next("Link: ")
				if !ok {
					break
				}
				out.linksB = append(out.linksB, l)
			}
			continue
		}
		if strings.HasPrefix(lines[i], "Task:") {
			return out, nil
		}
		return out, fmt.Errorf("linkpred: unexpected line %q", lines[i])
	}
	return out, fmt.Errorf("linkpred: missing task section")
}

// LinkResponse is the outcome of one link query.
type LinkResponse struct {
	Yes          bool
	InputTokens  int
	OutputTokens int
}

// LinkPredictor is the black-box interface for link queries.
type LinkPredictor interface {
	Query(promptText string) (LinkResponse, error)
}

// SimLink is the simulated black-box link predictor. Its decision
// combines textual affinity of the pair (via its noisy class-signal
// knowledge: papers whose evidence points to the same class are more
// likely to cite each other) with structural cues read from the prompt
// (shared neighbor titles, and co-occurrence of each paper's title in
// the other's link list). Decision noise is keyed by the prompt hash,
// so identical prompts give identical answers.
type SimLink struct {
	wordClass map[string]int
	seed      uint64
	meter     token.Meter

	// weights
	wAffinity float64
	wBigram   float64
	wShared   float64
	wDirect   float64
	threshold float64
	noise     float64
}

// NewSimLink builds the simulated link predictor from the dataset's
// generating vocabulary with mild knowledge corruption.
func NewSimLink(g *tag.Graph, seed uint64) *SimLink {
	rng := xrand.New(seed).SplitString("linkpred/sim")
	s := &SimLink{
		wordClass: make(map[string]int),
		seed:      seed,
		wAffinity: 1.4,
		wBigram:   1.5,
		wShared:   1.3,
		wDirect:   2.2,
		threshold: 2.3,
		noise:     0.8,
	}
	for k, words := range g.Vocab.Signal {
		for _, w := range words {
			if rng.Float64() < 0.10 {
				continue // forgotten
			}
			s.wordClass[w] = k
		}
	}
	return s
}

// Meter exposes cumulative token usage.
func (s *SimLink) Meter() *token.Meter { return &s.meter }

// classEvidence returns the normalized class-evidence vector of text.
func (s *SimLink) classEvidence(text string) map[int]float64 {
	out := map[int]float64{}
	var total float64
	for _, w := range strings.Fields(text) {
		if k, ok := s.wordClass[w]; ok {
			out[k]++
			total++
		}
	}
	for k := range out {
		out[k] /= total
	}
	return out
}

func cosineMap(a, b map[int]float64) float64 {
	var dot, na, nb float64
	for k, x := range a {
		na += x * x
		if y, ok := b[k]; ok {
			dot += x * y
		}
	}
	for _, y := range b {
		nb += y * y
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// Query implements LinkPredictor.
func (s *SimLink) Query(promptText string) (LinkResponse, error) {
	parsed, err := parseLinkPrompt(promptText)
	if err != nil {
		return LinkResponse{}, err
	}
	affinity := cosineMap(s.classEvidence(parsed.textA), s.classEvidence(parsed.textB))

	// Shared bigrams capture quoted-phrase affinity between the texts —
	// the strongest lexical cue for a real citation/co-purchase pair.
	bigrams := sharedBigrams(parsed.textA, parsed.textB)
	if bigrams > 4 {
		bigrams = 4
	}

	shared := 0
	if len(parsed.linksA) > 0 && len(parsed.linksB) > 0 {
		inA := map[string]bool{}
		for _, t := range parsed.linksA {
			inA[t] = true
		}
		for _, t := range parsed.linksB {
			if inA[t] {
				shared++
			}
		}
	}
	direct := 0.0
	// Does B's title appear among A's links (or vice versa)? That is a
	// pseudo-link from boosting or a residual visible edge.
	titleB := firstWords(parsed.textB, 6)
	titleA := firstWords(parsed.textA, 6)
	for _, t := range parsed.linksA {
		if strings.HasPrefix(t+" ", titleB) || strings.HasPrefix(titleB, firstWords(t, 6)) {
			direct = 1
		}
	}
	for _, t := range parsed.linksB {
		if strings.HasPrefix(t+" ", titleA) || strings.HasPrefix(titleA, firstWords(t, 6)) {
			direct = 1
		}
	}

	score := s.wAffinity*affinity + s.wBigram*float64(bigrams) + s.wShared*float64(shared) + s.wDirect*direct
	nrng := xrand.New(s.seed ^ hash(promptText)).SplitString("decision")
	score += s.noise * nrng.NormFloat64()

	yes := score > s.threshold
	outText := "Answer: ['No']"
	if yes {
		outText = "Answer: ['Yes']"
	}
	resp := LinkResponse{
		Yes:          yes,
		InputTokens:  token.Count(promptText),
		OutputTokens: token.Count(outText),
	}
	s.meter.AddQuery(resp.InputTokens, resp.OutputTokens)
	return resp, nil
}

// sharedBigrams counts distinct ordered word pairs appearing in both
// texts.
func sharedBigrams(a, b string) int {
	fa, fb := strings.Fields(a), strings.Fields(b)
	if len(fa) < 2 || len(fb) < 2 {
		return 0
	}
	inA := make(map[string]bool, len(fa))
	for i := 0; i+1 < len(fa); i++ {
		inA[fa[i]+" "+fa[i+1]] = true
	}
	seen := map[string]bool{}
	count := 0
	for i := 0; i+1 < len(fb); i++ {
		bg := fb[i] + " " + fb[i+1]
		if inA[bg] && !seen[bg] {
			seen[bg] = true
			count++
		}
	}
	return count
}

func firstWords(s string, n int) string {
	fs := strings.Fields(s)
	if len(fs) > n {
		fs = fs[:n]
	}
	return strings.Join(fs, " ")
}

func hash(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// PairInadequacy scores node pairs by the confidence of a binary
// surrogate classifier: D(t_i, t_j) = 1 − max f(x_i ‖ x_j). The
// surrogate trains on visible edges (positives) versus sampled
// non-edges (negatives).
type PairInadequacy struct {
	enc *encode.Encoder
	mlp *nn.MLP
}

// FitPairInadequacy trains the binary surrogate on nTrain visible
// edges and as many sampled non-edges.
func FitPairInadequacy(d *Dataset, nTrain int, seed uint64, cfg nn.MLPConfig) (*PairInadequacy, error) {
	g := d.Graph
	rng := xrand.New(seed).SplitString("linkpred/surrogate")
	corpus := make([]string, g.NumNodes())
	for i := range corpus {
		corpus[i] = g.Text(tag.NodeID(i))
	}
	enc := encode.NewTFIDF(corpus, 192)

	var edges [][2]tag.NodeID
	for u, ns := range d.adj {
		for _, v := range ns {
			if u < v {
				edges = append(edges, [2]tag.NodeID{u, v})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	if len(edges) == 0 {
		return nil, fmt.Errorf("linkpred: no visible edges to train on")
	}
	if nTrain > len(edges) {
		nTrain = len(edges)
	}

	pairFeat := func(a, b tag.NodeID) []float64 {
		fa, fb := enc.Encode(corpus[a]), enc.Encode(corpus[b])
		out := make([]float64, 0, len(fa)+len(fb))
		out = append(out, fa...)
		out = append(out, fb...)
		return out
	}

	var X [][]float64
	var y []int
	for _, i := range rng.Sample(len(edges), nTrain) {
		X = append(X, pairFeat(edges[i][0], edges[i][1]))
		y = append(y, 1)
	}
	negs := 0
	for attempts := 0; negs < nTrain && attempts < 100*nTrain; attempts++ {
		a := tag.NodeID(rng.Intn(g.NumNodes()))
		b := tag.NodeID(rng.Intn(g.NumNodes()))
		if a == b || g.HasEdge(a, b) {
			continue
		}
		X = append(X, pairFeat(a, b))
		y = append(y, 0)
		negs++
	}
	cfg.Seed = seed
	mlp := nn.TrainMLP(X, y, 2, cfg)
	return &PairInadequacy{enc: enc, mlp: mlp}, nil
}

// Score returns D(t_i, t_j) = 1 − max f(x_i ‖ x_j); lower means the
// pair's own text already decides the link confidently.
func (pi *PairInadequacy) Score(d *Dataset, p Pair) float64 {
	g := d.Graph
	fa := pi.enc.Encode(g.Text(p.A))
	fb := pi.enc.Encode(g.Text(p.B))
	x := append(append(make([]float64, 0, len(fa)+len(fb)), fa...), fb...)
	probs := pi.mlp.Probs(x)
	max := probs[0]
	if probs[1] > max {
		max = probs[1]
	}
	return 1 - max
}
