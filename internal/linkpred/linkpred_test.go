package linkpred

import (
	"strings"
	"testing"

	"repro/internal/nn"
	"repro/internal/tag"
)

func testDataset(t testing.TB, nodes, nTest int, seed uint64) *Dataset {
	t.Helper()
	spec, err := tag.SmallSpec("cora", nodes)
	if err != nil {
		t.Fatal(err)
	}
	g := tag.Generate(spec, seed, tag.Options{})
	d, err := MakeDataset(g, nTest, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestMakeDatasetBalanced(t *testing.T) {
	d := testDataset(t, 800, 200, 1)
	pos, neg := 0, 0
	for _, p := range d.Test {
		if p.Positive {
			pos++
		} else {
			neg++
		}
	}
	if pos != 100 || neg != 100 {
		t.Fatalf("pos=%d neg=%d, want 100/100", pos, neg)
	}
}

func TestMakeDatasetHoldsOutPositives(t *testing.T) {
	d := testDataset(t, 800, 200, 2)
	for _, p := range d.Test {
		if !p.Positive {
			continue
		}
		for _, u := range d.VisibleNeighbors(p.A) {
			if u == p.B {
				t.Fatalf("held-out edge {%d,%d} still visible", p.A, p.B)
			}
		}
	}
}

func TestMakeDatasetNegativesAreNonEdges(t *testing.T) {
	d := testDataset(t, 800, 200, 3)
	for _, p := range d.Test {
		if p.Positive {
			continue
		}
		if d.Graph.HasEdge(p.A, p.B) {
			t.Fatalf("negative pair {%d,%d} is an actual edge", p.A, p.B)
		}
		if p.A == p.B {
			t.Fatal("self pair sampled")
		}
	}
}

func TestMakeDatasetErrors(t *testing.T) {
	spec, _ := tag.SmallSpec("cora", 100)
	g := tag.Generate(spec, 5, tag.Options{})
	if _, err := MakeDataset(g, 1, 1); err == nil {
		t.Fatal("tiny nTest accepted")
	}
	if _, err := MakeDataset(g, 100000, 1); err == nil {
		t.Fatal("oversized nTest accepted")
	}
}

func TestAddLinkIdempotent(t *testing.T) {
	d := testDataset(t, 300, 40, 7)
	a, b := d.Test[0].A, d.Test[0].B
	before := len(d.VisibleNeighbors(a))
	d.AddLink(a, b)
	d.AddLink(a, b)
	if got := len(d.VisibleNeighbors(a)); got != before+1 {
		t.Fatalf("AddLink not idempotent: %d -> %d", before, got)
	}
}

func TestLinkPromptRoundTrip(t *testing.T) {
	d := testDataset(t, 300, 40, 11)
	p := d.Test[0]
	parsed, err := parseLinkPrompt(d.BuildLinkPrompt(p, true, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(parsed.textA, d.Graph.Nodes[p.A].Title) {
		t.Fatalf("text A = %q", parsed.textA)
	}
	if !strings.HasPrefix(parsed.textB, d.Graph.Nodes[p.B].Title) {
		t.Fatalf("text B = %q", parsed.textB)
	}
	if len(parsed.linksA) > 4 || len(parsed.linksB) > 4 {
		t.Fatalf("link cap violated: %d/%d", len(parsed.linksA), len(parsed.linksB))
	}
}

func TestLinkPromptVanillaHasNoLinks(t *testing.T) {
	d := testDataset(t, 300, 40, 13)
	parsed, err := parseLinkPrompt(d.BuildLinkPrompt(d.Test[0], false, 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.linksA)+len(parsed.linksB) != 0 {
		t.Fatal("vanilla link prompt contains links")
	}
}

func TestParseLinkPromptRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"", "hi", "Target pair:\nnope"} {
		if _, err := parseLinkPrompt(bad); err == nil {
			t.Fatalf("parseLinkPrompt(%q) accepted", bad)
		}
	}
}

func TestSimLinkDeterministic(t *testing.T) {
	d := testDataset(t, 500, 60, 17)
	s := NewSimLink(d.Graph, 3)
	p := d.BuildLinkPrompt(d.Test[0], true, 4)
	r1, err := s.Query(p)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Query(p)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Yes != r2.Yes {
		t.Fatal("identical link prompts answered differently")
	}
	if s.Meter().Queries() != 2 {
		t.Fatal("meter not counting")
	}
}

func TestSimLinkBetterThanChance(t *testing.T) {
	d := testDataset(t, 1000, 300, 19)
	s := NewSimLink(d.Graph, 5)
	res, err := Run(d, s, RunConfig{WithLinks: false})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy < 0.6 {
		t.Fatalf("vanilla link accuracy %.3f barely above chance", res.Accuracy)
	}
}

func TestBaseBeatsOrMatchesVanilla(t *testing.T) {
	d := testDataset(t, 1000, 300, 23)
	s := NewSimLink(d.Graph, 5)
	v, err := Run(d, s, RunConfig{WithLinks: false})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(d, s, RunConfig{WithLinks: true, M: 4})
	if err != nil {
		t.Fatal(err)
	}
	if b.Accuracy < v.Accuracy-0.05 {
		t.Fatalf("base %.3f well below vanilla %.3f", b.Accuracy, v.Accuracy)
	}
	if b.Meter.InputTokens() <= v.Meter.InputTokens() {
		t.Fatal("links did not increase token cost")
	}
}

func TestBoostAddsPseudoLinksAndHelps(t *testing.T) {
	d := testDataset(t, 1000, 300, 29)
	s := NewSimLink(d.Graph, 7)
	base, err := Run(d, s, RunConfig{WithLinks: true, M: 4})
	if err != nil {
		t.Fatal(err)
	}
	boost, err := Run(d, s, RunConfig{WithLinks: true, M: 4, Boost: true, Gamma1: 3})
	if err != nil {
		t.Fatal(err)
	}
	if boost.Rounds < 2 {
		t.Fatalf("boosting ran in %d rounds", boost.Rounds)
	}
	if boost.Accuracy < base.Accuracy-0.03 {
		t.Fatalf("boost %.3f well below base %.3f", boost.Accuracy, base.Accuracy)
	}
}

func TestRunDoesNotMutateDataset(t *testing.T) {
	d := testDataset(t, 500, 100, 31)
	s := NewSimLink(d.Graph, 9)
	before := map[tag.NodeID]int{}
	for v := range d.adj {
		before[v] = len(d.adj[v])
	}
	if _, err := Run(d, s, RunConfig{WithLinks: true, M: 4, Boost: true, Gamma1: 2}); err != nil {
		t.Fatal(err)
	}
	for v, n := range before {
		if len(d.adj[v]) != n {
			t.Fatalf("Run mutated adjacency of %d", v)
		}
	}
}

func TestPairInadequacy(t *testing.T) {
	d := testDataset(t, 800, 150, 37)
	cfg := nn.DefaultMLPConfig()
	cfg.Epochs = 30
	pi, err := FitPairInadequacy(d, 150, 37, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range d.Test[:20] {
		s := pi.Score(d, p)
		if s < 0 || s > 0.5+1e-9 {
			t.Fatalf("pair inadequacy %v out of [0, 0.5]", s)
		}
	}
}

func TestPruneKeepsAccuracyAndCutsTokens(t *testing.T) {
	d := testDataset(t, 1000, 250, 41)
	s := NewSimLink(d.Graph, 11)
	cfg := nn.DefaultMLPConfig()
	cfg.Epochs = 30
	pi, err := FitPairInadequacy(d, 200, 41, cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(d, s, RunConfig{WithLinks: true, M: 4})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := Run(d, s, RunConfig{WithLinks: true, M: 4, PruneTau: 0.2, Pruner: pi})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Pruned != 50 {
		t.Fatalf("pruned %d pairs, want 50", pruned.Pruned)
	}
	if pruned.Meter.InputTokens() >= base.Meter.InputTokens() {
		t.Fatal("pruning did not cut tokens")
	}
	if pruned.Accuracy < base.Accuracy-0.06 {
		t.Fatalf("pruning cost too much accuracy: %.3f vs %.3f", pruned.Accuracy, base.Accuracy)
	}
}

func TestRunConfigValidation(t *testing.T) {
	d := testDataset(t, 300, 40, 43)
	s := NewSimLink(d.Graph, 13)
	if _, err := Run(d, s, RunConfig{WithLinks: true}); err == nil {
		t.Fatal("WithLinks without M accepted")
	}
	if _, err := Run(d, s, RunConfig{WithLinks: true, M: 4, PruneTau: 0.2}); err == nil {
		t.Fatal("PruneTau without Pruner accepted")
	}
}

func TestVariantsComplete(t *testing.T) {
	d := testDataset(t, 800, 120, 47)
	s := NewSimLink(d.Graph, 15)
	cfg := nn.DefaultMLPConfig()
	cfg.Epochs = 25
	pi, err := FitPairInadequacy(d, 100, 47, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Variants(d, s, 4, 0.2, 3, pi)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"vanilla", "base", "boost", "prune", "both"} {
		r, ok := out[name]
		if !ok {
			t.Fatalf("variant %s missing", name)
		}
		if r.Accuracy <= 0.4 || r.Accuracy > 1 {
			t.Fatalf("variant %s accuracy %.3f implausible", name, r.Accuracy)
		}
	}
}
