package linkpred

import (
	"fmt"
	"sort"

	"repro/internal/tag"
	"repro/internal/token"
)

// RunConfig selects a Table X variant.
type RunConfig struct {
	// WithLinks includes neighbor links in prompts (false = Vanilla).
	WithLinks bool
	// M caps the neighbor links listed per endpoint.
	M int
	// PruneTau, when > 0, omits neighbor links for the top fraction of
	// pairs ranked by ascending D(t_i, t_j) using Pruner.
	PruneTau float64
	// Pruner scores pairs; required when PruneTau > 0.
	Pruner *PairInadequacy
	// Boost enables pseudo-link feedback with round scheduling.
	Boost bool
	// Gamma1 is the boosting candidate threshold |N_i| >= γ1.
	Gamma1 int
}

// RunResult reports one variant's outcome.
type RunResult struct {
	Accuracy float64
	Meter    token.Meter
	Pruned   int
	Rounds   int
}

// clone duplicates the dataset with an independent visible adjacency so
// boosting's pseudo-links do not leak across variants.
func (d *Dataset) clone() *Dataset {
	c := &Dataset{Graph: d.Graph, Test: d.Test, adj: make(map[tag.NodeID][]tag.NodeID, len(d.adj))}
	for v, ns := range d.adj {
		c.adj[v] = append([]tag.NodeID(nil), ns...)
	}
	return c
}

// linkCount returns how many neighbor links the pair's prompt would
// list under cap m.
func (d *Dataset) linkCount(p Pair, m int) int {
	ca, cb := len(d.adj[p.A]), len(d.adj[p.B])
	if ca > m {
		ca = m
	}
	if cb > m {
		cb = m
	}
	return ca + cb
}

// Run executes the test pairs under the configured variant and returns
// accuracy and token usage. The input dataset is not mutated.
func Run(d *Dataset, p LinkPredictor, cfg RunConfig) (RunResult, error) {
	if cfg.WithLinks && cfg.M <= 0 {
		return RunResult{}, fmt.Errorf("linkpred: WithLinks requires M > 0")
	}
	if cfg.PruneTau > 0 && cfg.Pruner == nil {
		return RunResult{}, fmt.Errorf("linkpred: PruneTau set without a Pruner")
	}
	work := d.clone()

	// Pruned pairs lose their neighbor links (Vanilla-style prompts).
	pruned := map[[2]tag.NodeID]bool{}
	if cfg.PruneTau > 0 && cfg.WithLinks {
		type scored struct {
			p Pair
			s float64
		}
		ss := make([]scored, len(work.Test))
		for i, pair := range work.Test {
			ss[i] = scored{p: pair, s: cfg.Pruner.Score(work, pair)}
		}
		sort.SliceStable(ss, func(i, j int) bool { return ss[i].s < ss[j].s })
		n := int(cfg.PruneTau*float64(len(ss)) + 0.5)
		for _, sc := range ss[:n] {
			pruned[sc.p.Key()] = true
		}
	}

	var res RunResult
	res.Pruned = len(pruned)
	correct := 0
	ask := func(pair Pair) (bool, error) {
		withLinks := cfg.WithLinks && !pruned[pair.Key()]
		resp, err := p.Query(work.BuildLinkPrompt(pair, withLinks, cfg.M))
		if err != nil {
			return false, err
		}
		res.Meter.AddQuery(resp.InputTokens, resp.OutputTokens)
		if resp.Yes == pair.Positive {
			correct++
		}
		return resp.Yes, nil
	}

	if !cfg.Boost {
		res.Rounds = 1
		for _, pair := range work.Test {
			if _, err := ask(pair); err != nil {
				return RunResult{}, err
			}
		}
	} else {
		gamma1 := cfg.Gamma1
		pending := append([]Pair(nil), work.Test...)
		for len(pending) > 0 {
			var batch, rest []Pair
			for _, pair := range pending {
				if work.linkCount(pair, cfg.M) >= gamma1 {
					batch = append(batch, pair)
				} else {
					rest = append(rest, pair)
				}
			}
			if len(batch) == 0 {
				if gamma1 == 0 {
					batch, rest = pending, nil
				} else {
					gamma1--
					continue
				}
			}
			res.Rounds++
			type pseudo struct{ a, b tag.NodeID }
			var newLinks []pseudo
			for _, pair := range batch {
				yes, err := ask(pair)
				if err != nil {
					return RunResult{}, err
				}
				if yes {
					newLinks = append(newLinks, pseudo{a: pair.A, b: pair.B})
				}
			}
			// Pseudo-links land after the round, as in Algorithm 2.
			for _, l := range newLinks {
				work.AddLink(l.a, l.b)
			}
			pending = rest
		}
	}
	if len(work.Test) > 0 {
		res.Accuracy = float64(correct) / float64(len(work.Test))
	}
	return res, nil
}

// Variants runs the paper's five Table X configurations in order:
// Vanilla, Base, w/ boost, w/ prune, w/ both.
func Variants(d *Dataset, p LinkPredictor, m int, pruneTau float64, gamma1 int, pruner *PairInadequacy) (map[string]RunResult, error) {
	out := map[string]RunResult{}
	runs := []struct {
		name string
		cfg  RunConfig
	}{
		{"vanilla", RunConfig{WithLinks: false}},
		{"base", RunConfig{WithLinks: true, M: m}},
		{"boost", RunConfig{WithLinks: true, M: m, Boost: true, Gamma1: gamma1}},
		{"prune", RunConfig{WithLinks: true, M: m, PruneTau: pruneTau, Pruner: pruner}},
		{"both", RunConfig{WithLinks: true, M: m, PruneTau: pruneTau, Pruner: pruner, Boost: true, Gamma1: gamma1}},
	}
	for _, r := range runs {
		res, err := Run(d, p, r.cfg)
		if err != nil {
			return nil, fmt.Errorf("linkpred: variant %s: %w", r.name, err)
		}
		out[r.name] = res
	}
	return out, nil
}
