package linkpred

import (
	"testing"
	"testing/quick"

	"repro/internal/nn"
	"repro/internal/tag"
)

// TestMakeDatasetProperties: for any admissible test size, the dataset
// is balanced, positives are hidden from the visible adjacency, and
// negatives are true non-edges — checked across seeds with quick.
func TestMakeDatasetProperties(t *testing.T) {
	spec, err := tag.SpecByName("cora")
	if err != nil {
		t.Fatal(err)
	}
	g := tag.Generate(spec, 2, tag.Options{Scale: 0.3})

	f := func(seed uint64, rawN uint8) bool {
		nTest := 2 * (int(rawN)%60 + 10) // even, 20..138
		d, err := MakeDataset(g, nTest, seed)
		if err != nil {
			return false
		}
		pos, neg := 0, 0
		for _, p := range d.Test {
			if p.Positive {
				pos++
				// Hidden positive: the edge exists in the graph but not
				// in the visible adjacency.
				if !g.HasEdge(p.A, p.B) {
					return false
				}
				for _, u := range d.VisibleNeighbors(p.A) {
					if u == p.B {
						return false
					}
				}
			} else {
				neg++
				if g.HasEdge(p.A, p.B) {
					return false
				}
			}
			if p.A == p.B {
				return false
			}
		}
		return pos == neg && pos+neg == nTest
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPairInadequacyScoresInRange: D(t_i, t_j) = 1 − max prob must lie
// in [0, 0.5] for a binary surrogate.
func TestPairInadequacyScoresInRange(t *testing.T) {
	spec, err := tag.SpecByName("citeseer")
	if err != nil {
		t.Fatal(err)
	}
	g := tag.Generate(spec, 3, tag.Options{Scale: 0.25})
	d, err := MakeDataset(g, 80, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := nn.DefaultMLPConfig()
	cfg.Epochs = 40
	pi, err := FitPairInadequacy(d, 60, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range d.Test {
		s := pi.Score(d, p)
		if s < 0 || s > 0.5+1e-9 {
			t.Fatalf("pair (%d,%d): score %v outside [0, 0.5]", p.A, p.B, s)
		}
	}
}
