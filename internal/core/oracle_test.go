package core

import (
	"testing"

	"repro/internal/predictors"
)

// TestOraclePrunePlanPrunesSaturatedFirst: the oracle plan's pruned set
// must consist of zero-shot-correct queries whenever enough of them
// exist, and pruning them must not reduce accuracy relative to keeping
// all neighbor text.
func TestOraclePrunePlanPrunesSaturatedFirst(t *testing.T) {
	f := newFixture(t, 600, 150, 53)
	plan, err := OraclePrunePlan(f.ctx, f.sim, f.split.Query, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(plan.Prune), 150/5; got != want {
		t.Fatalf("pruned %d, want %d", got, want)
	}
	// Every pruned node must be zero-shot-correct (the query set's
	// saturated share exceeds 20% on this fixture).
	for v := range plan.Prune {
		resp, err := ExecuteQueryVanilla(f.ctx, f.sim, v)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Category != f.g.Classes[f.g.Nodes[v].Label] {
			t.Fatalf("oracle pruned node %d which zero-shot gets wrong", v)
		}
	}

	m := predictors.KHopRandom{K: 1}
	resOracle, err := Execute(f.ctx, m, f.sim, plan)
	if err != nil {
		t.Fatal(err)
	}
	resFull, err := Execute(f.ctx, m, f.sim, Plan{Queries: f.split.Query})
	if err != nil {
		t.Fatal(err)
	}
	if Accuracy(f.g, resOracle.Pred) < Accuracy(f.g, resFull.Pred)-0.03 {
		t.Errorf("oracle pruning lost accuracy: %.3f vs full %.3f",
			Accuracy(f.g, resOracle.Pred), Accuracy(f.g, resFull.Pred))
	}
}

func TestOraclePrunePlanClampsTau(t *testing.T) {
	f := newFixture(t, 400, 60, 59)
	plan, err := OraclePrunePlan(f.ctx, f.sim, f.split.Query, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Prune) != len(f.split.Query) {
		t.Errorf("τ=2 pruned %d of %d", len(plan.Prune), len(f.split.Query))
	}
	plan, err = OraclePrunePlan(f.ctx, f.sim, f.split.Query, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Prune) != 0 {
		t.Errorf("τ=-1 pruned %d, want 0", len(plan.Prune))
	}
}
