package core

import (
	"context"
	"fmt"
	"sort"
	"strconv"

	"repro/internal/llm"
	"repro/internal/obs"
	"repro/internal/predictors"
	"repro/internal/tag"
)

// BoostConfig configures the query boosting strategy (Algorithm 2).
type BoostConfig struct {
	// Gamma1 is the neighbor-label threshold |N_i^L| >= γ1; the paper
	// uses 3 for all datasets.
	Gamma1 int
	// Gamma2 is the conflicting-label threshold LC_i <= γ2; the paper
	// uses 2.
	Gamma2 int
	// RelaxGamma2First flips the relaxation order from the default
	// (γ1 first, then γ2, alternating) — an ablation knob.
	RelaxGamma2First bool
	// MaxRounds caps the outer loop as a safety net; 0 means |V_Q|+K
	// rounds, enough for full relaxation plus one round per node.
	MaxRounds int
}

// DefaultBoostConfig returns the paper's setting γ1 = 3, γ2 = 2.
func DefaultBoostConfig() BoostConfig {
	return BoostConfig{Gamma1: 3, Gamma2: 2}
}

// RoundTrace records one boosting round for analysis and examples.
type RoundTrace struct {
	Round        int
	Gamma1       int
	Gamma2       int
	Executed     int
	PseudoUses   int // pseudo-labels appearing in this round's prompts
	KnownEntries int // size of the visible-label set after the round
}

// Boost executes the query set with Algorithm 2: each round selects the
// candidate queries whose refreshed neighbor selections carry at least
// γ1 labels with at most γ2 distinct values, executes them, feeds their
// pseudo-labels back into the visible-label set, and relaxes (γ1, γ2)
// whenever no query qualifies. Queries in plan.Prune run without
// neighbor text (the joint strategy of Section VI-H) but still emit
// pseudo-labels and still obey the scheduling order.
//
// ctx.Known is mutated: executed queries are added with their predicted
// labels, exactly as the paper expands V_L and Y_L. Callers who need
// the original map must copy it first.
func Boost(ctx *predictors.Context, m predictors.Method, p llm.Predictor, plan Plan, cfg BoostConfig) (*Results, []RoundTrace, error) {
	return BoostWith(ctx, m, p, plan, cfg, ExecConfig{})
}

// BoostWith is Boost with bounded concurrency inside each round. Rounds
// are already barriers — neighbor selections and prompts are fixed
// before a round executes and pseudo-labels are applied only after it —
// so running a round's queries in parallel is semantics-preserving:
// with an order-independent predictor, any worker count produces
// bit-identical rounds, predictions and token totals.
//
// A query whose dispatch fails permanently is dropped from the pending
// set (its pseudo-label never appears) and reported in the aggregated
// *QueryErrors returned alongside the partial results.
func BoostWith(ctx *predictors.Context, m predictors.Method, p llm.Predictor, plan Plan, cfg BoostConfig, ecfg ExecConfig) (*Results, []RoundTrace, error) {
	if err := validatePlan(plan); err != nil {
		return nil, nil, err
	}
	if cfg.Gamma1 < 0 || cfg.Gamma2 < 0 {
		return nil, nil, fmt.Errorf("core: negative boosting thresholds")
	}
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = len(plan.Queries) + len(ctx.Graph.Classes) + cfg.Gamma1 + 8
	}

	rec := obs.Active(ctx.Obs)
	// One executor serves every round, so its response cache (when
	// enabled) persists across rounds. The OnResult stream (if any) is
	// rebound to each round's planned queries before that round
	// dispatches; rounds are barriers, so the rebind is race-free.
	var rs *resultStream
	if ecfg.OnResult != nil {
		rs = &resultStream{g: ctx.Graph, fb: ecfg.Fallback, hook: ecfg.OnResult}
		ecfg.onOutcome = rs.onOutcome
	}
	ex, err := newPlanExecutor(p, ecfg, rec, "boost")
	if err != nil {
		return nil, nil, err
	}
	// The boost plan and its rounds share one trace (rounds are children
	// of the plan span); each query roots its own trace linked back via
	// plan_trace/round attributes on its root span.
	planSpan := rec.StartSpan("core.plan", "mode", "boost", "queries", strconv.Itoa(len(plan.Queries)))
	defer planSpan.End()
	var qerrs QueryErrors

	// isPseudo marks labels added during boosting, to count utilization.
	isPseudo := map[tag.NodeID]bool{}

	pending := append([]tag.NodeID(nil), plan.Queries...)
	res := &Results{Pred: make(map[tag.NodeID]string, len(pending))}
	var trace []RoundTrace

	g1, g2 := cfg.Gamma1, cfg.Gamma2
	relaxG1Next := !cfg.RelaxGamma2First
	for round := 1; len(pending) > 0; round++ {
		if round > maxRounds {
			return nil, nil, fmt.Errorf("core: boosting exceeded %d rounds with %d queries pending", maxRounds, len(pending))
		}

		// Step 1: candidate selection with refreshed neighbor text,
		// relaxing thresholds until candidates exist.
		type cand struct {
			v   tag.NodeID
			sel []predictors.Selected
		}
		var cands []cand
		for len(cands) == 0 {
			for _, v := range pending {
				var sel []predictors.Selected
				if !plan.Prune[v] {
					sel = m.Select(ctx, v)
				}
				if predictors.CountLabeled(sel) >= g1 && predictors.LabelConflicts(sel) <= g2 {
					cands = append(cands, cand{v: v, sel: sel})
				}
			}
			if len(cands) > 0 {
				break
			}
			// Relax alternately; when γ1 hits zero every query
			// qualifies, so progress is guaranteed.
			if relaxG1Next && g1 > 0 {
				g1--
			} else {
				g2++
			}
			relaxG1Next = !relaxG1Next
		}

		// Step 2: execute this round's candidates. Their prompts are
		// fixed here — before any of them runs — so the round can fan
		// out across workers without changing what is asked.
		_, roundSpan := obs.StartSpanCtx(obs.ContextWithSpan(context.Background(), planSpan), rec,
			"core.round", "round", strconv.Itoa(round),
			"gamma1", strconv.Itoa(g1), "gamma2", strconv.Itoa(g2))
		roundPseudo := 0
		planned := make([]plannedQuery, 0, len(cands))
		for _, c := range cands {
			for _, s := range c.sel {
				if s.Label != "" && isPseudo[s.ID] {
					roundPseudo++
				}
			}
			planned = append(planned, plannedQuery{
				v:        c.v,
				pruned:   plan.Prune[c.v],
				equipped: len(c.sel) > 0,
				prompt:   predictors.BuildPrompt(ctx, c.v, c.sel, m.Ranked() && len(c.sel) > 0),
			})
			if ecfg.Compress.Enabled() {
				planned[len(planned)-1].compress(ecfg.Compress, rec, "boost")
			}
		}
		if rs != nil {
			rs.bind(planned)
		}
		link := append(planLink(planSpan), "round", strconv.Itoa(round))
		batchOut, err := dispatch(ex, planned, rec, "boost", link...)
		if err != nil {
			roundSpan.End()
			return nil, nil, err
		}
		executedSet := make(map[tag.NodeID]bool, len(planned))
		type outcome struct {
			v        tag.NodeID
			category string
		}
		outcomes := make([]outcome, 0, len(planned))
		// Apply results in candidate order, regardless of completion
		// order across workers.
		for _, q := range planned {
			executedSet[q.v] = true
			o := batchOut[q.v]
			if o.Err != nil {
				rec.Add(metricQueryErrors, 1, "mode", "boost")
				if ecfg.Fallback != nil {
					// Degrade instead of dropping: the surrogate's answer
					// stands in for the LLM's, and — like any answer — it
					// becomes a pseudo-label for later rounds, so one dead
					// query does not starve its neighbors of label signal.
					c := ecfg.Fallback.PredictNode(ctx.Graph, q.v)
					res.Pred[q.v] = c
					res.markFallback(q.v)
					rec.Add(metricFallback, 1, "mode", "boost")
					outcomes = append(outcomes, outcome{v: q.v, category: c})
					continue
				}
				qerrs.add(q.v, fmt.Errorf("core: boosting query for node %d: %w", q.v, o.Err))
				continue
			}
			recordQuery(rec, "boost", o.Response, q.pruned, q.equipped)
			if q.equipped {
				res.Equipped++
			}
			res.Meter.AddQuery(o.Response.InputTokens, o.Response.OutputTokens)
			res.Pred[q.v] = o.Response.Category
			outcomes = append(outcomes, outcome{v: q.v, category: o.Response.Category})
		}

		// Step 3: add pseudo-labels after the whole round, so queries
		// within one round do not see each other's answers (the rounds
		// of Algorithm 2 are the units of label propagation).
		for _, o := range outcomes {
			ctx.Known[o.v] = o.category
			isPseudo[o.v] = true
		}
		next := pending[:0]
		for _, v := range pending {
			if !executedSet[v] {
				next = append(next, v)
			}
		}
		pending = next

		res.PseudoLabelUses += roundPseudo
		res.Rounds = round
		rec.Add(metricBoostRounds, 1)
		rec.Add(metricPseudoUses, float64(roundPseudo))
		rec.Set(metricBoostRound, float64(round))
		rec.Set(metricBoostPending, float64(len(pending)))
		trace = append(trace, RoundTrace{
			Round: round, Gamma1: g1, Gamma2: g2,
			Executed: len(outcomes), PseudoUses: roundPseudo,
			KnownEntries: len(ctx.Known),
		})
		roundSpan.SetAttr("executed", strconv.Itoa(len(outcomes)))
		roundSpan.End()
	}
	if len(qerrs.Errs) > 0 {
		return res, trace, &qerrs
	}
	return res, trace, nil
}

// SchedulePolicy selects the execution-order policy for the Fig. 8
// pseudo-label-utilization simulation.
type SchedulePolicy int

const (
	// ScheduleRandom splits queries into fixed rounds at random — the
	// paper's "w/o query scheduling" baseline.
	ScheduleRandom SchedulePolicy = iota
	// ScheduleGreedy orders each round by descending neighbor-label
	// count among all unexecuted queries — the paper's "w/ query
	// scheduling" variant for this experiment (footnote 3: the conflict
	// threshold is omitted under simulated pseudo-labels).
	ScheduleGreedy
)

// String implements fmt.Stringer.
func (p SchedulePolicy) String() string {
	switch p {
	case ScheduleRandom:
		return "w/o scheduling"
	case ScheduleGreedy:
		return "w/ scheduling"
	default:
		return fmt.Sprintf("SchedulePolicy(%d)", int(p))
	}
}

// SimulateScheduling reproduces the Fig. 8 protocol: execute the
// queries in `rounds` rounds without any LLM (pseudo-labels are
// simulated), and count how many times pseudo-labels generated by
// earlier rounds appear in the neighbor selections of later rounds.
// ctx.Known is restored before returning.
func SimulateScheduling(ctx *predictors.Context, m predictors.Method, queries []tag.NodeID, rounds int, policy SchedulePolicy, seed uint64) (utilization int) {
	if rounds <= 0 {
		rounds = 1
	}
	// Preserve and restore the caller's label map.
	saved := make(map[tag.NodeID]string, len(ctx.Known))
	for k, v := range ctx.Known {
		saved[k] = v
	}
	defer func() { ctx.Known = saved }()
	working := make(map[tag.NodeID]string, len(saved))
	for k, v := range saved {
		working[k] = v
	}
	ctx.Known = working

	isPseudo := map[tag.NodeID]bool{}
	pending := append([]tag.NodeID(nil), queries...)
	perRound := (len(pending) + rounds - 1) / rounds
	if perRound == 0 {
		perRound = 1
	}

	rng := newSeeded(seed, "core/schedule")
	if policy == ScheduleRandom {
		rng.Shuffle(len(pending), func(i, j int) { pending[i], pending[j] = pending[j], pending[i] })
	}

	for len(pending) > 0 {
		// Refresh selections for all unexecuted queries.
		sels := make(map[tag.NodeID][]predictors.Selected, len(pending))
		for _, v := range pending {
			sels[v] = m.Select(ctx, v)
		}
		if policy == ScheduleGreedy {
			sort.SliceStable(pending, func(i, j int) bool {
				li := predictors.CountLabeled(sels[pending[i]])
				lj := predictors.CountLabeled(sels[pending[j]])
				if li != lj {
					return li > lj
				}
				return pending[i] < pending[j]
			})
		}
		n := perRound
		if n > len(pending) {
			n = len(pending)
		}
		batch := pending[:n]
		for _, v := range batch {
			for _, s := range sels[v] {
				if s.Label != "" && isPseudo[s.ID] {
					utilization++
				}
			}
		}
		// Simulated pseudo-labels: ground truth stands in for the LLM
		// answer; only label presence matters for utilization counting.
		for _, v := range batch {
			ctx.Known[v] = ctx.Graph.Classes[ctx.Graph.Nodes[v].Label]
			isPseudo[v] = true
		}
		pending = pending[n:]
	}
	return utilization
}
