package core

import (
	"errors"
	"sort"
	"strings"
	"testing"

	"repro/internal/llm"
	"repro/internal/predictors"
	"repro/internal/tag"
	"repro/internal/token"
)

// failing wraps a predictor and permanently fails every prompt that
// contains the match string.
type failing struct {
	inner llm.Predictor
	match string
}

func (p failing) Name() string { return "failing" }

func (p failing) Query(prompt string) (llm.Response, error) {
	if strings.Contains(prompt, p.match) {
		return llm.Response{}, errors.New("injected permanent failure")
	}
	return p.inner.Query(prompt)
}

func assertSameResults(t *testing.T, label string, a, b *Results) {
	t.Helper()
	if len(a.Pred) != len(b.Pred) {
		t.Fatalf("%s: prediction counts differ: %d vs %d", label, len(a.Pred), len(b.Pred))
	}
	for v, cat := range a.Pred {
		if b.Pred[v] != cat {
			t.Fatalf("%s: node %d predicted %q vs %q", label, v, cat, b.Pred[v])
		}
	}
	if a.Meter.Queries() != b.Meter.Queries() ||
		a.Meter.InputTokens() != b.Meter.InputTokens() ||
		a.Meter.OutputTokens() != b.Meter.OutputTokens() {
		t.Fatalf("%s: meters differ: (%d,%d,%d) vs (%d,%d,%d)", label,
			a.Meter.Queries(), a.Meter.InputTokens(), a.Meter.OutputTokens(),
			b.Meter.Queries(), b.Meter.InputTokens(), b.Meter.OutputTokens())
	}
	if a.Equipped != b.Equipped {
		t.Fatalf("%s: equipped %d vs %d", label, a.Equipped, b.Equipped)
	}
}

func TestExecuteWithWorkersDeterministic(t *testing.T) {
	f := newFixture(t, 400, 120, 11)
	m := predictors.KHopRandom{K: 2}
	plan := RandomPrunePlan(f.split.Query, 0.3, 11)

	serialSim := llm.NewSim(llm.GPT35(), f.g.Vocab, f.g.Classes, 13)
	serial, err := ExecuteWith(f.freshCtx(), m, serialSim, plan, ExecConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{2, 8} {
		sim := llm.NewSim(llm.GPT35(), f.g.Vocab, f.g.Classes, 13)
		res, err := ExecuteWith(f.freshCtx(), m, sim, plan, ExecConfig{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		assertSameResults(t, "execute", serial, res)
	}
}

func TestBoostWithWorkersDeterministic(t *testing.T) {
	f := newFixture(t, 400, 80, 17)
	m := predictors.KHopRandom{K: 1}
	plan := Plan{Queries: f.split.Query}

	serialSim := llm.NewSim(llm.GPT35(), f.g.Vocab, f.g.Classes, 19)
	serial, serialTrace, err := BoostWith(f.freshCtx(), m, serialSim, plan, DefaultBoostConfig(), ExecConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	sim := llm.NewSim(llm.GPT35(), f.g.Vocab, f.g.Classes, 19)
	res, trace, err := BoostWith(f.freshCtx(), m, sim, plan, DefaultBoostConfig(), ExecConfig{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "boost", serial, res)
	if len(trace) != len(serialTrace) {
		t.Fatalf("round counts differ: %d vs %d", len(trace), len(serialTrace))
	}
	for i := range trace {
		if trace[i] != serialTrace[i] {
			t.Fatalf("round %d trace differs: %+v vs %+v", i, trace[i], serialTrace[i])
		}
	}
	if res.PseudoLabelUses != serial.PseudoLabelUses {
		t.Fatalf("pseudo-label uses %d vs %d", res.PseudoLabelUses, serial.PseudoLabelUses)
	}
}

func TestExecuteWithAggregatesPerQueryErrors(t *testing.T) {
	f := newFixture(t, 400, 60, 23)
	m := predictors.KHopRandom{K: 1}
	bad := f.split.Query[7]
	p := failing{inner: f.sim, match: f.g.Nodes[bad].Title}

	res, err := ExecuteWith(f.freshCtx(), m, p, Plan{Queries: f.split.Query}, ExecConfig{Workers: 4})
	if err == nil {
		t.Fatal("expected aggregated error, got nil")
	}
	var qe *QueryErrors
	if !errors.As(err, &qe) {
		t.Fatalf("error is %T, want *QueryErrors: %v", err, err)
	}
	if _, ok := qe.Errs[bad]; !ok {
		t.Fatalf("node %d missing from aggregated errors: %v", bad, err)
	}
	if res == nil {
		t.Fatal("partial results must be returned alongside the error")
	}
	if len(res.Pred)+len(qe.Errs) != len(f.split.Query) {
		t.Fatalf("partial results incomplete: %d predictions + %d failures != %d queries",
			len(res.Pred), len(qe.Errs), len(f.split.Query))
	}
	if _, ok := res.Pred[bad]; ok {
		t.Fatalf("failed node %d must not appear in predictions", bad)
	}
}

func TestBoostWithDropsFailedQueries(t *testing.T) {
	f := newFixture(t, 400, 60, 29)
	m := predictors.KHopRandom{K: 1}
	bad := f.split.Query[3]
	p := failing{inner: f.sim, match: f.g.Nodes[bad].Title}

	ctx := f.freshCtx()
	res, _, err := BoostWith(ctx, m, p, Plan{Queries: f.split.Query}, DefaultBoostConfig(), ExecConfig{Workers: 4})
	if err == nil {
		t.Fatal("expected aggregated error, got nil")
	}
	var qe *QueryErrors
	if !errors.As(err, &qe) {
		t.Fatalf("error is %T, want *QueryErrors: %v", err, err)
	}
	if _, ok := qe.Errs[bad]; !ok {
		t.Fatalf("node %d missing from aggregated errors: %v", bad, err)
	}
	if res == nil {
		t.Fatal("partial results must be returned alongside the error")
	}
	if _, ok := res.Pred[bad]; ok {
		t.Fatal("failed query must not be predicted")
	}
	if _, ok := ctx.Known[bad]; ok {
		t.Fatal("failed query must not contribute a pseudo-label")
	}
	if len(res.Pred)+len(qe.Errs) != len(f.split.Query) {
		t.Fatalf("partial results incomplete: %d predictions + %d failures != %d queries",
			len(res.Pred), len(qe.Errs), len(f.split.Query))
	}
}

func TestEstimateQueryTokensSeededSample(t *testing.T) {
	f := newFixture(t, 500, 200, 31)
	m := predictors.KHopRandom{K: 1}

	// Order queries by ascending text length so a prefix sample is
	// maximally biased toward cheap prompts.
	queries := append([]tag.NodeID(nil), f.split.Query...)
	sort.Slice(queries, func(i, j int) bool {
		ti := token.Count(f.g.Text(queries[i]))
		tj := token.Count(f.g.Text(queries[j]))
		if ti != tj {
			return ti < tj
		}
		return queries[i] < queries[j]
	})
	sample := len(queries) / 4

	full, _ := EstimateQueryTokens(f.freshCtx(), m, queries, 0)
	prefix, _ := EstimateQueryTokens(f.freshCtx(), m, queries[:sample], 0)
	sampled, _ := EstimateQueryTokens(f.freshCtx(), m, queries, sample)
	again, _ := EstimateQueryTokens(f.freshCtx(), m, queries, sample)

	if sampled != again {
		t.Fatalf("sampled estimate not deterministic: %f vs %f", sampled, again)
	}
	if d1, d2 := abs(sampled-full), abs(prefix-full); d1 >= d2 {
		t.Fatalf("seeded sample (%.1f) no closer to the full estimate (%.1f) than the length-sorted prefix (%.1f)",
			sampled, full, prefix)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
