package core

import (
	"fmt"
	"sort"

	"repro/internal/llm"
	"repro/internal/predictors"
	"repro/internal/tag"
	"repro/internal/xrand"
)

// newSeeded derives a named deterministic stream.
func newSeeded(seed uint64, name string) *xrand.RNG {
	return xrand.New(seed).SplitString(name)
}

// PrunePlan builds Algorithm 1's execution plan: rank queries by
// ascending text inadequacy and mark the top fraction tau for neighbor-
// text omission. tau is clamped to [0, 1].
func PrunePlan(iq *Inadequacy, g *tag.Graph, queries []tag.NodeID, tau float64) Plan {
	if tau < 0 {
		tau = 0
	}
	if tau > 1 {
		tau = 1
	}
	order, _ := iq.Rank(g, queries)
	nPrune := int(tau*float64(len(order)) + 0.5)
	plan := Plan{Queries: order, Prune: make(map[tag.NodeID]bool, nPrune)}
	for _, v := range order[:nPrune] {
		plan.Prune[v] = true
	}
	return plan
}

// RandomPrunePlan marks a uniformly random tau-fraction of queries for
// pruning — the baseline strategy of Fig. 7 and Table IX ("w/ random").
// The choice is keyed by seed for reproducibility.
func RandomPrunePlan(queries []tag.NodeID, tau float64, seed uint64) Plan {
	if tau < 0 {
		tau = 0
	}
	if tau > 1 {
		tau = 1
	}
	plan := Plan{Queries: append([]tag.NodeID(nil), queries...), Prune: map[tag.NodeID]bool{}}
	nPrune := int(tau*float64(len(queries)) + 0.5)
	rng := newSeeded(seed, "core/randomprune")
	for _, i := range rng.Sample(len(queries), nPrune) {
		plan.Prune[queries[i]] = true
	}
	return plan
}

// OraclePrunePlan prunes, with priority, exactly the queries the
// predictor already answers correctly zero-shot — the information-
// theoretic upper bound of Algorithm 1. It reads ground-truth labels
// and spends one vanilla query per node, so it is an analysis tool
// (the headroom line in Fig. 7 ablations), never a deployable strategy.
func OraclePrunePlan(ctx *predictors.Context, p llm.Predictor, queries []tag.NodeID, tau float64) (Plan, error) {
	if tau < 0 {
		tau = 0
	}
	if tau > 1 {
		tau = 1
	}
	var saturated, rest []tag.NodeID
	for _, v := range queries {
		resp, err := ExecuteQueryVanilla(ctx, p, v)
		if err != nil {
			return Plan{}, fmt.Errorf("core: oracle probe for node %d: %w", v, err)
		}
		if resp.Category == ctx.Graph.Classes[ctx.Graph.Nodes[v].Label] {
			saturated = append(saturated, v)
		} else {
			rest = append(rest, v)
		}
	}
	order := append(saturated, rest...)
	nPrune := int(tau*float64(len(order)) + 0.5)
	plan := Plan{Queries: order, Prune: make(map[tag.NodeID]bool, nPrune)}
	for _, v := range order[:nPrune] {
		plan.Prune[v] = true
	}
	return plan, nil
}

// TokenPruning is the end-to-end Algorithm 1: fit the inadequacy
// measure, derive τ from the token budget (or use PruneFraction when
// set), build the plan and execute it.
type TokenPruning struct {
	// Budget is the total input-token budget B; ignored when
	// PruneFraction >= 0.
	Budget float64
	// PruneFraction, when in [0, 1], fixes τ directly (the paper's
	// Table IV uses τ = 0.20).
	PruneFraction float64
	// Inadequacy configuration.
	Config InadequacyConfig
	// TokenSample caps how many queries are used to estimate per-query
	// token averages for the budget→τ conversion (0 = all).
	TokenSample int
}

// Run executes the strategy and returns the results plus the plan used.
func (tp TokenPruning) Run(ctx *predictors.Context, m predictors.Method, p llm.Predictor, queries []tag.NodeID) (*Results, Plan, error) {
	iq, err := FitInadequacy(ctx.Graph, labeledIDs(ctx), p, ctx.NodeType, tp.Config)
	if err != nil {
		return nil, Plan{}, err
	}
	tau := tp.PruneFraction
	if tau < 0 || tau > 1 {
		perQuery, perNeighbor := EstimateQueryTokens(ctx, m, queries, tp.TokenSample)
		var ok bool
		tau, ok = TauForBudget(tp.Budget, len(queries), perQuery, perNeighbor)
		if !ok {
			return nil, Plan{}, fmt.Errorf("core: budget %.0f tokens infeasible for %d queries even at full pruning (τ=%.2f)", tp.Budget, len(queries), tau)
		}
	}
	plan := PrunePlan(iq, ctx.Graph, queries, tau)
	res, err := Execute(ctx, m, p, plan)
	if err != nil {
		return nil, Plan{}, err
	}
	return res, plan, nil
}

// labeledIDs lists the nodes with visible labels in the context.
func labeledIDs(ctx *predictors.Context) []tag.NodeID {
	out := make([]tag.NodeID, 0, len(ctx.Known))
	for v := range ctx.Known {
		out = append(out, v)
	}
	// Deterministic order: map iteration is randomized.
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// validatePlan checks a plan only prunes its own queries; used in tests
// and by Boost.
func validatePlan(plan Plan) error {
	in := make(map[tag.NodeID]bool, len(plan.Queries))
	for _, v := range plan.Queries {
		if in[v] {
			return fmt.Errorf("core: duplicate query %d in plan", v)
		}
		in[v] = true
	}
	for v := range plan.Prune {
		if !in[v] {
			return fmt.Errorf("core: plan prunes non-query node %d", v)
		}
	}
	return nil
}
