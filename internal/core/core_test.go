package core

import (
	"math"
	"testing"

	"repro/internal/llm"
	"repro/internal/predictors"
	"repro/internal/tag"
	"repro/internal/xrand"
)

// fixture bundles one generated dataset with a context and simulated
// LLM, shared across core tests.
type fixture struct {
	g     *tag.Graph
	spec  tag.Spec
	split tag.Split
	ctx   *predictors.Context
	sim   *llm.Sim
}

func newFixture(t testing.TB, nodes, queries int, seed uint64) *fixture {
	t.Helper()
	spec, err := tag.SmallSpec("cora", nodes)
	if err != nil {
		t.Fatal(err)
	}
	g := tag.Generate(spec, seed, tag.Options{})
	split := g.SplitPerClass(xrand.New(seed+1), 20, queries)
	ctx := &predictors.Context{
		Graph: g,
		Known: predictors.KnownFromSplit(g, split),
		M:     4,
		Seed:  seed,
	}
	sim := llm.NewSim(llm.GPT35(), g.Vocab, g.Classes, seed+2)
	return &fixture{g: g, spec: spec, split: split, ctx: ctx, sim: sim}
}

func (f *fixture) freshCtx() *predictors.Context {
	known := make(map[tag.NodeID]string, len(f.ctx.Known))
	for _, v := range f.split.Labeled {
		known[v] = f.g.Classes[f.g.Nodes[v].Label]
	}
	return &predictors.Context{Graph: f.g, Known: known, M: f.ctx.M, Seed: f.ctx.Seed}
}

func fastInadequacy(seed uint64) InadequacyConfig {
	cfg := DefaultInadequacyConfig()
	cfg.MLP.Epochs = 40
	cfg.MaxFeatures = 256
	cfg.Seed = seed
	return cfg
}

func TestAccuracyHelper(t *testing.T) {
	f := newFixture(t, 300, 50, 1)
	pred := map[tag.NodeID]string{}
	for _, v := range f.split.Query[:10] {
		pred[v] = f.g.Classes[f.g.Nodes[v].Label]
	}
	if got := Accuracy(f.g, pred); got != 1 {
		t.Fatalf("all-correct accuracy = %v", got)
	}
	pred[f.split.Query[0]] = "definitely-wrong"
	if got := Accuracy(f.g, pred); math.Abs(got-0.9) > 1e-9 {
		t.Fatalf("accuracy = %v, want 0.9", got)
	}
	if got := Accuracy(f.g, nil); got != 0 {
		t.Fatalf("empty accuracy = %v", got)
	}
}

func TestTauForBudget(t *testing.T) {
	// 100 queries, 1000 tokens each of which 600 are neighbor text.
	if got, ok := TauForBudget(100_000, 100, 1000, 600); got != 0 || !ok {
		t.Fatalf("full budget tau = %v ok = %v, want 0 true", got, ok)
	}
	// All-pruned cost is 40,000: exactly attainable at τ=1.
	if got, ok := TauForBudget(40_000, 100, 1000, 600); got != 1 || !ok {
		t.Fatalf("starvation tau = %v ok = %v, want 1 true", got, ok)
	}
	// Below the all-pruned cost: τ=1 still, but flagged infeasible.
	if got, ok := TauForBudget(39_999, 100, 1000, 600); got != 1 || ok {
		t.Fatalf("infeasible tau = %v ok = %v, want 1 false", got, ok)
	}
	// Budget exactly halfway: B = 100*1000 - tau*100*600 => tau = 0.5
	// at B = 70,000.
	if got, _ := TauForBudget(70_000, 100, 1000, 600); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("midpoint tau = %v, want 0.5", got)
	}
	if got, ok := TauForBudget(1000, 0, 1000, 600); got != 0 || !ok {
		t.Fatalf("zero queries tau = %v ok = %v", got, ok)
	}
}

func TestTauBudgetConsistency(t *testing.T) {
	// Executing a plan pruned at TauForBudget's τ must land at or under
	// the budget (up to per-query variance around the means).
	f := newFixture(t, 600, 120, 3)
	m := predictors.KHopRandom{K: 1}
	perQ, perN := EstimateQueryTokens(f.ctx, m, f.split.Query, 0)
	if perQ <= 0 || perN <= 0 || perN >= perQ {
		t.Fatalf("token estimates implausible: perQ=%v perN=%v", perQ, perN)
	}
	budget := 0.8 * perQ * float64(len(f.split.Query))
	tau, ok := TauForBudget(budget, len(f.split.Query), perQ, perN)
	if tau <= 0 || tau >= 1 || !ok {
		t.Fatalf("tau = %v ok = %v for a 20%% cut", tau, ok)
	}
	plan := RandomPrunePlan(f.split.Query, tau, 9)
	res, err := Execute(f.ctx, m, f.sim, plan)
	if err != nil {
		t.Fatal(err)
	}
	if got := float64(res.Meter.InputTokens()); got > budget*1.05 {
		t.Fatalf("spent %v input tokens, budget %v", got, budget)
	}
}

func TestExecuteCompletes(t *testing.T) {
	f := newFixture(t, 500, 100, 5)
	m := predictors.KHopRandom{K: 1}
	plan := Plan{Queries: f.split.Query}
	res, err := Execute(f.ctx, m, f.sim, plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pred) != len(f.split.Query) {
		t.Fatalf("predicted %d of %d queries", len(res.Pred), len(f.split.Query))
	}
	if res.Meter.Queries() != len(f.split.Query) {
		t.Fatalf("meter queries %d", res.Meter.Queries())
	}
	if acc := Accuracy(f.g, res.Pred); acc < 0.5 {
		t.Fatalf("baseline accuracy %v implausibly low", acc)
	}
}

func TestExecutePruneReducesTokens(t *testing.T) {
	f := newFixture(t, 500, 100, 7)
	m := predictors.KHopRandom{K: 1}
	full, err := Execute(f.ctx, m, f.sim, Plan{Queries: f.split.Query})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := Execute(f.ctx, m, f.sim, RandomPrunePlan(f.split.Query, 0.5, 1))
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Meter.InputTokens() >= full.Meter.InputTokens() {
		t.Fatal("pruning did not reduce input tokens")
	}
	if pruned.Equipped >= full.Equipped {
		t.Fatalf("equipped counts: pruned %d, full %d", pruned.Equipped, full.Equipped)
	}
}

func TestFitInadequacy(t *testing.T) {
	f := newFixture(t, 800, 150, 11)
	iq, err := FitInadequacy(f.g, f.split.Labeled, f.sim, "paper", fastInadequacy(11))
	if err != nil {
		t.Fatal(err)
	}
	if iq.CalibrationQueries != 10*len(f.g.Classes) {
		t.Fatalf("calibration used %d queries, want %d", iq.CalibrationQueries, 10*len(f.g.Classes))
	}
	w := iq.Weights()
	if len(w) != len(f.g.Classes) {
		t.Fatalf("weights len %d", len(w))
	}
	for k, wk := range w {
		if wk < 0 || wk > 1 {
			t.Fatalf("w[%d] = %v", k, wk)
		}
	}
	// Scores must be finite for all queries.
	for _, v := range f.split.Query[:30] {
		d := iq.ScoreNode(f.g, v)
		if math.IsNaN(d) || math.IsInf(d, 0) {
			t.Fatalf("D(t) not finite for node %d", v)
		}
	}
}

func TestFitInadequacyErrors(t *testing.T) {
	f := newFixture(t, 200, 30, 13)
	if _, err := FitInadequacy(f.g, nil, f.sim, "paper", fastInadequacy(1)); err == nil {
		t.Fatal("expected error on empty labeled set")
	}
	bad := fastInadequacy(1)
	bad.Folds = 0
	if _, err := FitInadequacy(f.g, f.split.Labeled, f.sim, "paper", bad); err == nil {
		t.Fatal("expected error on zero folds")
	}
}

// Table VI property: mean D(t) of saturated nodes (zero-shot correct)
// must be below mean D(t) of non-saturated nodes.
func TestInadequacySeparatesSaturation(t *testing.T) {
	f := newFixture(t, 1000, 250, 17)
	iq, err := FitInadequacy(f.g, f.split.Labeled, f.sim, "paper", fastInadequacy(17))
	if err != nil {
		t.Fatal(err)
	}
	var satSum, nonSum float64
	var satN, nonN int
	for _, v := range f.split.Query {
		resp, err := zeroShot(f.sim, f.g, v, "paper")
		if err != nil {
			t.Fatal(err)
		}
		d := iq.ScoreNode(f.g, v)
		if resp.Category == f.g.Classes[f.g.Nodes[v].Label] {
			satSum += d
			satN++
		} else {
			nonSum += d
			nonN++
		}
	}
	if satN == 0 || nonN == 0 {
		t.Skip("degenerate split")
	}
	satMean, nonMean := satSum/float64(satN), nonSum/float64(nonN)
	if satMean >= nonMean {
		t.Fatalf("saturated mean D %.4f not below non-saturated %.4f", satMean, nonMean)
	}
}

func TestRankAscending(t *testing.T) {
	f := newFixture(t, 600, 120, 19)
	iq, err := FitInadequacy(f.g, f.split.Labeled, f.sim, "paper", fastInadequacy(19))
	if err != nil {
		t.Fatal(err)
	}
	order, scores := iq.Rank(f.g, f.split.Query)
	if len(order) != len(f.split.Query) {
		t.Fatalf("rank returned %d ids", len(order))
	}
	for i := 1; i < len(order); i++ {
		if scores[order[i-1]] > scores[order[i]]+1e-12 {
			t.Fatalf("rank not ascending at %d", i)
		}
	}
}

func TestPrunePlanCounts(t *testing.T) {
	f := newFixture(t, 600, 120, 23)
	iq, err := FitInadequacy(f.g, f.split.Labeled, f.sim, "paper", fastInadequacy(23))
	if err != nil {
		t.Fatal(err)
	}
	for _, tau := range []float64{0, 0.2, 0.5, 1} {
		plan := PrunePlan(iq, f.g, f.split.Query, tau)
		want := int(tau*float64(len(f.split.Query)) + 0.5)
		if len(plan.Prune) != want {
			t.Fatalf("tau %v pruned %d, want %d", tau, len(plan.Prune), want)
		}
		if err := validatePlan(plan); err != nil {
			t.Fatal(err)
		}
	}
	// Clamping.
	if got := len(PrunePlan(iq, f.g, f.split.Query, -1).Prune); got != 0 {
		t.Fatalf("tau<0 pruned %d", got)
	}
	if got := len(PrunePlan(iq, f.g, f.split.Query, 2).Prune); got != len(f.split.Query) {
		t.Fatalf("tau>1 pruned %d", got)
	}
}

func TestPrunePlanPrunesLowestScores(t *testing.T) {
	f := newFixture(t, 600, 120, 29)
	iq, err := FitInadequacy(f.g, f.split.Labeled, f.sim, "paper", fastInadequacy(29))
	if err != nil {
		t.Fatal(err)
	}
	plan := PrunePlan(iq, f.g, f.split.Query, 0.25)
	_, scores := iq.Rank(f.g, f.split.Query)
	maxPruned, minKept := math.Inf(-1), math.Inf(1)
	for _, v := range plan.Queries {
		if plan.Prune[v] {
			if scores[v] > maxPruned {
				maxPruned = scores[v]
			}
		} else if scores[v] < minKept {
			minKept = scores[v]
		}
	}
	if maxPruned > minKept+1e-12 {
		t.Fatalf("pruned max %v exceeds kept min %v", maxPruned, minKept)
	}
}

func TestRandomPrunePlanDeterministic(t *testing.T) {
	f := newFixture(t, 300, 60, 31)
	a := RandomPrunePlan(f.split.Query, 0.3, 5)
	b := RandomPrunePlan(f.split.Query, 0.3, 5)
	if len(a.Prune) != len(b.Prune) {
		t.Fatal("sizes differ")
	}
	for v := range a.Prune {
		if !b.Prune[v] {
			t.Fatal("random prune plan not deterministic by seed")
		}
	}
	c := RandomPrunePlan(f.split.Query, 0.3, 6)
	diff := false
	for v := range a.Prune {
		if !c.Prune[v] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical random plans")
	}
}

// Table IV property: pruning 20% by inadequacy keeps accuracy within a
// small band of the unpruned method.
func TestPrune20PreservesAccuracy(t *testing.T) {
	f := newFixture(t, 1200, 300, 37)
	m := predictors.KHopRandom{K: 1}
	base, err := Execute(f.freshCtx(), m, f.sim, Plan{Queries: f.split.Query})
	if err != nil {
		t.Fatal(err)
	}
	iq, err := FitInadequacy(f.g, f.split.Labeled, f.sim, "paper", fastInadequacy(37))
	if err != nil {
		t.Fatal(err)
	}
	plan := PrunePlan(iq, f.g, f.split.Query, 0.2)
	pruned, err := Execute(f.freshCtx(), m, f.sim, plan)
	if err != nil {
		t.Fatal(err)
	}
	baseAcc, prunedAcc := Accuracy(f.g, base.Pred), Accuracy(f.g, pruned.Pred)
	if prunedAcc < baseAcc-0.04 {
		t.Fatalf("pruning 20%% dropped accuracy %.3f -> %.3f", baseAcc, prunedAcc)
	}
	if pruned.Meter.InputTokens() >= base.Meter.InputTokens() {
		t.Fatal("pruning did not save tokens")
	}
}

// Fig 7 property: across constrained budgets, inadequacy-guided
// pruning beats random pruning on aggregate. (Per-tau margins are a
// couple of points in the paper too, so a single tau on a 300-query
// fixture would be noise-dominated; the sum over taus is the stable
// signal.)
func TestPruneBeatsRandomAcrossBudgets(t *testing.T) {
	f := newFixture(t, 1200, 300, 41)
	m := predictors.KHopRandom{K: 1}
	iq, err := FitInadequacy(f.g, f.split.Labeled, f.sim, "paper", fastInadequacy(41))
	if err != nil {
		t.Fatal(err)
	}
	var smartSum, randSum float64
	for _, tau := range []float64{0.4, 0.6, 0.8} {
		smart, err := Execute(f.freshCtx(), m, f.sim, PrunePlan(iq, f.g, f.split.Query, tau))
		if err != nil {
			t.Fatal(err)
		}
		smartSum += Accuracy(f.g, smart.Pred)
		// Average several random baselines to reduce variance.
		const reps = 3
		var randAcc float64
		for r := uint64(0); r < reps; r++ {
			res, err := Execute(f.freshCtx(), m, f.sim, RandomPrunePlan(f.split.Query, tau, 100+r))
			if err != nil {
				t.Fatal(err)
			}
			randAcc += Accuracy(f.g, res.Pred)
		}
		randSum += randAcc / reps
	}
	if smartSum <= randSum-0.005 {
		t.Fatalf("inadequacy pruning (Σacc %.3f) fell below random (Σacc %.3f) across budgets",
			smartSum, randSum)
	}
}

func TestTokenPruningRunWithBudget(t *testing.T) {
	f := newFixture(t, 600, 120, 43)
	m := predictors.KHopRandom{K: 1}
	perQ, _ := EstimateQueryTokens(f.ctx, m, f.split.Query, 0)
	tp := TokenPruning{
		Budget:        0.85 * perQ * float64(len(f.split.Query)),
		PruneFraction: -1,
		Config:        fastInadequacy(43),
	}
	res, plan, err := tp.Run(f.freshCtx(), m, f.sim, f.split.Query)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Prune) == 0 {
		t.Fatal("budget below full cost but nothing pruned")
	}
	if len(res.Pred) != len(f.split.Query) {
		t.Fatal("not all queries executed")
	}
}

func TestTokenPruningRunWithFraction(t *testing.T) {
	f := newFixture(t, 600, 100, 47)
	m := predictors.KHopRandom{K: 2}
	tp := TokenPruning{PruneFraction: 0.2, Config: fastInadequacy(47)}
	res, plan, err := tp.Run(f.freshCtx(), m, f.sim, f.split.Query)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(f.split.Query) / 5; len(plan.Prune) != want {
		t.Fatalf("pruned %d, want %d", len(plan.Prune), want)
	}
	if res.Equipped > len(f.split.Query)-len(plan.Prune) {
		t.Fatalf("equipped %d with %d pruned", res.Equipped, len(plan.Prune))
	}
}

func TestValidatePlan(t *testing.T) {
	good := Plan{Queries: []tag.NodeID{1, 2, 3}, Prune: map[tag.NodeID]bool{2: true}}
	if err := validatePlan(good); err != nil {
		t.Fatal(err)
	}
	dup := Plan{Queries: []tag.NodeID{1, 1}}
	if err := validatePlan(dup); err == nil {
		t.Fatal("duplicate queries accepted")
	}
	stray := Plan{Queries: []tag.NodeID{1}, Prune: map[tag.NodeID]bool{9: true}}
	if err := validatePlan(stray); err == nil {
		t.Fatal("stray prune accepted")
	}
}
