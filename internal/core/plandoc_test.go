package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/predictors"
	"repro/internal/tag"
)

func TestPlanRoundTrip(t *testing.T) {
	plan := Plan{
		Queries: []tag.NodeID{9, 3, 7, 1, 5},
		Prune:   map[tag.NodeID]bool{3: true, 5: true},
	}
	var buf bytes.Buffer
	if err := SavePlan(&buf, plan); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPlan(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Queries) != len(plan.Queries) {
		t.Fatalf("queries %d -> %d", len(plan.Queries), len(loaded.Queries))
	}
	for i := range plan.Queries {
		if loaded.Queries[i] != plan.Queries[i] {
			t.Fatal("query order changed — boosting depends on it")
		}
	}
	if len(loaded.Prune) != 2 || !loaded.Prune[3] || !loaded.Prune[5] {
		t.Fatalf("pruned set changed: %v", loaded.Prune)
	}
}

func TestPlanRoundTripStable(t *testing.T) {
	plan := Plan{
		Queries: []tag.NodeID{4, 2, 8, 6},
		Prune:   map[tag.NodeID]bool{8: true, 2: true},
	}
	var a, b bytes.Buffer
	if err := SavePlan(&a, plan); err != nil {
		t.Fatal(err)
	}
	if err := SavePlan(&b, plan); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("plan serialization not deterministic (map order leaked)")
	}
}

func TestLoadPlanRejectsBadDocs(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"not json", "garbage"},
		{"wrong format", `{"format":9,"queries":[1]}`},
		{"duplicate query", `{"format":1,"queries":[1,1]}`},
		{"prune outside queries", `{"format":1,"queries":[1,2],"pruned":[3]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := LoadPlan(strings.NewReader(tc.doc)); err == nil {
				t.Errorf("accepted %s", tc.name)
			}
		})
	}
	// SavePlan refuses invalid plans too.
	bad := Plan{Queries: []tag.NodeID{1, 1}}
	if err := SavePlan(&bytes.Buffer{}, bad); err == nil {
		t.Error("SavePlan accepted a duplicate query")
	}
}

// TestPlanExecutesIdenticallyAfterRoundTrip: saving and loading a plan
// must not change what executes.
func TestPlanExecutesIdenticallyAfterRoundTrip(t *testing.T) {
	f := newFixture(t, 400, 80, 61)
	iq, err := FitInadequacy(f.g, f.split.Labeled, f.sim, "paper", fastInadequacy(61))
	if err != nil {
		t.Fatal(err)
	}
	plan := PrunePlan(iq, f.g, f.split.Query, 0.25)

	var buf bytes.Buffer
	if err := SavePlan(&buf, plan); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPlan(&buf)
	if err != nil {
		t.Fatal(err)
	}

	m := predictors.KHopRandom{K: 1}
	a, err := Execute(f.freshCtx(), m, f.sim, plan)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Execute(f.freshCtx(), m, f.sim, loaded)
	if err != nil {
		t.Fatal(err)
	}
	for v, c := range a.Pred {
		if b.Pred[v] != c {
			t.Fatalf("node %d predicted %q from original plan, %q from loaded", v, c, b.Pred[v])
		}
	}
	if a.Meter.Total() != b.Meter.Total() {
		t.Errorf("token totals differ: %d vs %d", a.Meter.Total(), b.Meter.Total())
	}
}
