package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/llm"
	"repro/internal/predictors"
	"repro/internal/tag"
)

// faultedSim wraps a fresh simulator in a fresh fault injector so each
// run replays the identical (prompt-keyed) fault schedule.
func (f *fixture) faultedSim(t *testing.T, fcfg llm.FaultConfig) *llm.FaultInjector {
	t.Helper()
	sim := llm.NewSim(llm.GPT35(), f.g.Vocab, f.g.Classes, 13)
	inj, err := llm.NewFaultInjector(sim, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

func fitTestSurrogate(t *testing.T, f *fixture) *Surrogate {
	t.Helper()
	cfg := DefaultSurrogateConfig()
	cfg.Folds = 2
	cfg.MaxFeatures = 256
	cfg.Seed = 5
	cfg.MLP.Epochs = 40
	sur, err := FitSurrogate(f.g, f.split.Labeled, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sur
}

func TestExecuteWithFallbackAccounting(t *testing.T) {
	f := newFixture(t, 400, 80, 3)
	m := predictors.KHopRandom{K: 1}
	plan := Plan{Queries: f.split.Query}
	sur := fitTestSurrogate(t, f)
	fcfg := llm.FaultConfig{Seed: 21, ErrorRate: 0.3}

	// Without a fallback, injected permanent errors surface as
	// QueryErrors and the failed queries are missing from Pred.
	bare, err := ExecuteWith(f.freshCtx(), m, f.faultedSim(t, fcfg), plan, ExecConfig{})
	var qerrs *QueryErrors
	if !errors.As(err, &qerrs) {
		t.Fatalf("expected *QueryErrors without fallback, got %v", err)
	}
	failed := len(qerrs.Errs)
	if failed == 0 {
		t.Fatal("fault injector produced no failures; raise ErrorRate")
	}
	if len(bare.Pred)+failed != len(plan.Queries) {
		t.Fatalf("answered %d + failed %d != planned %d", len(bare.Pred), failed, len(plan.Queries))
	}
	if _, cov := PlanAccuracy(f.g, plan.Queries, bare.Pred); cov >= 1 {
		t.Fatalf("coverage %v after failures, want < 1", cov)
	}

	// With a fallback, the same failures degrade to surrogate answers:
	// full coverage, no error, and the split is accounted explicitly.
	res, err := ExecuteWith(f.freshCtx(), m, f.faultedSim(t, fcfg), plan, ExecConfig{Fallback: sur})
	if err != nil {
		t.Fatalf("fallback run failed: %v", err)
	}
	if res.SurrogateAnswered() != failed {
		t.Fatalf("surrogate answered %d, want the %d failed queries", res.SurrogateAnswered(), failed)
	}
	if res.LLMAnswered()+res.SurrogateAnswered() != len(plan.Queries) {
		t.Fatalf("LLM %d + surrogate %d != planned %d",
			res.LLMAnswered(), res.SurrogateAnswered(), len(plan.Queries))
	}
	if _, cov := PlanAccuracy(f.g, plan.Queries, res.Pred); cov != 1 {
		t.Fatalf("coverage %v with fallback, want 1", cov)
	}
	// Fallback answers are real classes, and the LLM-answered queries
	// are untouched by the degradation.
	valid := map[string]bool{}
	for _, c := range f.g.Classes {
		valid[c] = true
	}
	for v := range res.Fallback {
		if !valid[res.Pred[v]] {
			t.Fatalf("fallback answer %q for node %d is not a class", res.Pred[v], v)
		}
		if _, ok := bare.Pred[v]; ok {
			t.Fatalf("node %d fell back although the LLM answered it in the bare run", v)
		}
	}
	for v, c := range bare.Pred {
		if res.Pred[v] != c {
			t.Fatalf("node %d: LLM answer changed %q -> %q under fallback", v, c, res.Pred[v])
		}
	}
	// Surrogate answers cost no LLM tokens: the meter only counts the
	// queries the LLM actually served.
	if res.Meter.Queries() != res.LLMAnswered() {
		t.Fatalf("meter counted %d queries, want %d LLM-answered", res.Meter.Queries(), res.LLMAnswered())
	}
}

func TestExecuteWithFaultsDeterministicAcrossWorkers(t *testing.T) {
	// The acceptance scenario: errors, hangs cut short by the per-query
	// timeout, and surrogate fallback — identical outputs at any worker
	// count because fault fates are keyed on the prompt, not on
	// scheduling.
	f := newFixture(t, 400, 100, 7)
	m := predictors.KHopRandom{K: 1}
	plan := Plan{Queries: f.split.Query}
	sur := fitTestSurrogate(t, f)
	fcfg := llm.FaultConfig{Seed: 9, ErrorRate: 0.2, HangRate: 0.1}

	run := func(workers int) *Results {
		res, err := ExecuteWith(f.freshCtx(), m, f.faultedSim(t, fcfg), plan, ExecConfig{
			Workers:      workers,
			QueryTimeout: 30 * time.Millisecond,
			Fallback:     sur,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}
	serial := run(1)
	if serial.SurrogateAnswered() == 0 {
		t.Fatal("no query degraded to the surrogate; the scenario is vacuous")
	}
	for _, w := range []int{2, 8} {
		res := run(w)
		assertSameResults(t, "faulted execute", serial, res)
		if len(res.Fallback) != len(serial.Fallback) {
			t.Fatalf("workers=%d: %d fallbacks vs %d serial", w, len(res.Fallback), len(serial.Fallback))
		}
		for v := range serial.Fallback {
			if !res.Fallback[v] {
				t.Fatalf("workers=%d: node %d fell back serially but not concurrently", w, v)
			}
		}
	}
}

func TestExecuteWithHungPredictorDoesNotStall(t *testing.T) {
	// One hanging prompt without a fallback: the batch still finishes
	// (watchdog abandons the call) and only that query fails.
	f := newFixture(t, 300, 40, 5)
	m := predictors.KHopRandom{K: 1}
	plan := Plan{Queries: f.split.Query}
	inj := f.faultedSim(t, llm.FaultConfig{Seed: 2, HangRate: 0.05})

	done := make(chan struct{})
	var res *Results
	var err error
	go func() {
		defer close(done)
		res, err = ExecuteWith(f.freshCtx(), m, inj, plan, ExecConfig{
			Workers: 4, QueryTimeout: 25 * time.Millisecond,
		})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("hung predictor stalled ExecuteWith")
	}
	hangs := int(inj.Stats().Hangs)
	if hangs == 0 {
		t.Skip("no hang drawn at this seed/rate; adjust the config")
	}
	var qerrs *QueryErrors
	if !errors.As(err, &qerrs) {
		t.Fatalf("expected *QueryErrors, got %v", err)
	}
	if len(qerrs.Errs) != hangs {
		t.Fatalf("%d queries failed, want exactly the %d hung ones", len(qerrs.Errs), hangs)
	}
	if len(res.Pred)+hangs != len(plan.Queries) {
		t.Fatalf("answered %d + hung %d != planned %d", len(res.Pred), hangs, len(plan.Queries))
	}
}

func TestBoostWithFallbackPseudoLabels(t *testing.T) {
	f := newFixture(t, 400, 60, 17)
	m := predictors.KHopRandom{K: 1}
	plan := Plan{Queries: f.split.Query}
	sur := fitTestSurrogate(t, f)
	fcfg := llm.FaultConfig{Seed: 41, ErrorRate: 0.3}

	ctx := f.freshCtx()
	res, trace, err := BoostWith(ctx, m, f.faultedSim(t, fcfg), plan,
		DefaultBoostConfig(), ExecConfig{Fallback: sur})
	if err != nil {
		t.Fatalf("boost with fallback: %v", err)
	}
	if len(trace) == 0 {
		t.Fatal("no boosting rounds traced")
	}
	if res.SurrogateAnswered() == 0 {
		t.Fatal("no query degraded to the surrogate; raise ErrorRate")
	}
	if len(res.Pred) != len(plan.Queries) {
		t.Fatalf("answered %d of %d planned", len(res.Pred), len(plan.Queries))
	}
	// Surrogate answers participate in label propagation exactly like
	// LLM answers: every fallback-answered query is now a known
	// (pseudo-)label in the context.
	for v := range res.Fallback {
		if ctx.Known[v] != res.Pred[v] {
			t.Fatalf("fallback answer for node %d not propagated as pseudo-label", v)
		}
	}
	// Determinism holds for boosting too (serial vs serial replay).
	again, _, err := BoostWith(f.freshCtx(), m, f.faultedSim(t, fcfg), plan,
		DefaultBoostConfig(), ExecConfig{Fallback: sur})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "boost replay", res, again)
}

func TestFitInadequacyToleratesCalibrationFailures(t *testing.T) {
	// A permanently-failing calibration prompt must not void the whole
	// fit: failed queries are dropped from the bias tallies and the
	// channel regression. Only an all-failed calibration is fatal.
	f := newFixture(t, 400, 40, 23)
	cfg := fastInadequacy(29)
	cfg.Exec = ExecConfig{QueryTimeout: 30 * time.Millisecond}

	iq, err := FitInadequacy(f.g, f.split.Labeled, f.faultedSim(t, llm.FaultConfig{
		Seed: 51, ErrorRate: 0.2, HangRate: 0.1,
	}), "paper", cfg)
	if err != nil {
		t.Fatalf("fit under 30%% calibration faults: %v", err)
	}
	if iq.CalibrationQueries == 0 {
		t.Fatal("no calibration queries attempted")
	}
	// The degraded measure still scores nodes.
	if s := iq.ScoreNode(f.g, f.split.Query[0]); s < 0 || s > 1 {
		t.Fatalf("score %v out of range", s)
	}

	// All calibration queries failing is fatal, with a diagnosable error.
	_, err = FitInadequacy(f.g, f.split.Labeled, f.faultedSim(t, llm.FaultConfig{
		Seed: 51, ErrorRate: 1,
	}), "paper", cfg)
	if err == nil {
		t.Fatal("all-failed calibration fitted anyway")
	}
}

func TestPlanAccuracyCoverage(t *testing.T) {
	f := newFixture(t, 300, 20, 1)
	queries := f.split.Query
	pred := map[tag.NodeID]string{}
	// Answer half the plan, all correctly.
	for _, v := range queries[:10] {
		pred[v] = f.g.Classes[f.g.Nodes[v].Label]
	}
	acc, cov := PlanAccuracy(f.g, queries, pred)
	if acc != 0.5 || cov != 0.5 {
		t.Fatalf("acc=%v cov=%v, want 0.5 0.5", acc, cov)
	}
	// Accuracy-over-survivors reports 1.0 here — the inflation the
	// plan-level metric exists to correct.
	if got := Accuracy(f.g, pred); got != 1 {
		t.Fatalf("survivor accuracy = %v, want 1", got)
	}
	// One wrong answer among the ten.
	pred[queries[0]] = "definitely-wrong"
	acc, cov = PlanAccuracy(f.g, queries, pred)
	if acc != 0.45 || cov != 0.5 {
		t.Fatalf("acc=%v cov=%v, want 0.45 0.5", acc, cov)
	}
	if acc, cov := PlanAccuracy(f.g, nil, pred); acc != 0 || cov != 0 {
		t.Fatalf("empty plan gave acc=%v cov=%v", acc, cov)
	}
}
