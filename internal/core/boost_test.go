package core

import (
	"testing"

	"repro/internal/predictors"
	"repro/internal/tag"
)

func TestBoostCompletesAllQueries(t *testing.T) {
	f := newFixture(t, 800, 200, 51)
	m := predictors.KHopRandom{K: 2}
	ctx := f.freshCtx()
	res, trace, err := Boost(ctx, m, f.sim, Plan{Queries: f.split.Query}, DefaultBoostConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pred) != len(f.split.Query) {
		t.Fatalf("predicted %d of %d", len(res.Pred), len(f.split.Query))
	}
	if res.Rounds < 2 {
		t.Fatalf("boosting ran in %d rounds; scheduling had no effect", res.Rounds)
	}
	if len(trace) != res.Rounds {
		t.Fatalf("trace has %d rounds, results say %d", len(trace), res.Rounds)
	}
	total := 0
	for _, tr := range trace {
		total += tr.Executed
	}
	if total != len(f.split.Query) {
		t.Fatalf("trace executed %d total", total)
	}
}

func TestBoostAddsPseudoLabels(t *testing.T) {
	f := newFixture(t, 800, 200, 53)
	ctx := f.freshCtx()
	before := len(ctx.Known)
	res, _, err := Boost(ctx, predictors.KHopRandom{K: 2}, f.sim, Plan{Queries: f.split.Query}, DefaultBoostConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(ctx.Known) != before+len(f.split.Query) {
		t.Fatalf("known grew %d -> %d, want +%d", before, len(ctx.Known), len(f.split.Query))
	}
	for v, c := range res.Pred {
		if ctx.Known[v] != c {
			t.Fatalf("pseudo-label for %d is %q, predicted %q", v, ctx.Known[v], c)
		}
	}
}

func TestBoostUsesPseudoLabels(t *testing.T) {
	f := newFixture(t, 800, 250, 57)
	res, _, err := Boost(f.freshCtx(), predictors.KHopRandom{K: 2}, f.sim, Plan{Queries: f.split.Query}, DefaultBoostConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.PseudoLabelUses == 0 {
		t.Fatal("boosting never used a pseudo-label")
	}
}

// Table VII property: boosting should not hurt — and usually helps —
// versus plain execution of the same method.
func TestBoostImprovesAccuracy(t *testing.T) {
	f := newFixture(t, 1500, 400, 59)
	m := predictors.KHopRandom{K: 2}
	base, err := Execute(f.freshCtx(), m, f.sim, Plan{Queries: f.split.Query})
	if err != nil {
		t.Fatal(err)
	}
	boosted, _, err := Boost(f.freshCtx(), m, f.sim, Plan{Queries: f.split.Query}, DefaultBoostConfig())
	if err != nil {
		t.Fatal(err)
	}
	baseAcc, boostAcc := Accuracy(f.g, base.Pred), Accuracy(f.g, boosted.Pred)
	if boostAcc < baseAcc-0.02 {
		t.Fatalf("boosting hurt: base %.3f, boosted %.3f", baseAcc, boostAcc)
	}
}

func TestBoostWithPruneOmitsNeighborText(t *testing.T) {
	f := newFixture(t, 800, 200, 61)
	iq, err := FitInadequacy(f.g, f.split.Labeled, f.sim, "paper", fastInadequacy(61))
	if err != nil {
		t.Fatal(err)
	}
	plan := PrunePlan(iq, f.g, f.split.Query, 0.2)
	res, _, err := Boost(f.freshCtx(), predictors.KHopRandom{K: 2}, f.sim, plan, DefaultBoostConfig())
	if err != nil {
		t.Fatal(err)
	}
	maxEquipped := len(f.split.Query) - len(plan.Prune)
	if res.Equipped > maxEquipped {
		t.Fatalf("equipped %d exceeds unpruned count %d", res.Equipped, maxEquipped)
	}
	if len(res.Pred) != len(f.split.Query) {
		t.Fatal("pruned queries not executed")
	}
}

func TestBoostRelaxationTerminatesWithImpossibleGammas(t *testing.T) {
	f := newFixture(t, 500, 120, 67)
	cfg := BoostConfig{Gamma1: 50, Gamma2: 0} // impossible: must relax
	res, trace, err := Boost(f.freshCtx(), predictors.KHopRandom{K: 1}, f.sim, Plan{Queries: f.split.Query}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pred) != len(f.split.Query) {
		t.Fatal("relaxation did not complete all queries")
	}
	if trace[0].Gamma1 >= 50 {
		t.Fatalf("thresholds never relaxed: %+v", trace[0])
	}
}

func TestBoostRelaxationOrderAblation(t *testing.T) {
	f := newFixture(t, 500, 120, 71)
	a, _, err := Boost(f.freshCtx(), predictors.KHopRandom{K: 1}, f.sim, Plan{Queries: f.split.Query},
		BoostConfig{Gamma1: 3, Gamma2: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Boost(f.freshCtx(), predictors.KHopRandom{K: 1}, f.sim, Plan{Queries: f.split.Query},
		BoostConfig{Gamma1: 3, Gamma2: 2, RelaxGamma2First: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Pred) != len(b.Pred) {
		t.Fatal("relaxation order changed completion")
	}
}

func TestBoostRejectsNegativeGammas(t *testing.T) {
	f := newFixture(t, 200, 40, 73)
	if _, _, err := Boost(f.freshCtx(), predictors.KHopRandom{K: 1}, f.sim, Plan{Queries: f.split.Query},
		BoostConfig{Gamma1: -1, Gamma2: 2}); err == nil {
		t.Fatal("negative gamma accepted")
	}
}

func TestBoostRejectsBadPlan(t *testing.T) {
	f := newFixture(t, 200, 40, 79)
	bad := Plan{Queries: []tag.NodeID{f.split.Query[0], f.split.Query[0]}}
	if _, _, err := Boost(f.freshCtx(), predictors.KHopRandom{K: 1}, f.sim, bad, DefaultBoostConfig()); err == nil {
		t.Fatal("duplicate plan accepted")
	}
}

// Early rounds should carry queries with many reliable neighbor labels;
// the first round must execute at the initial thresholds when any query
// qualifies.
func TestBoostFirstRoundAtInitialThresholds(t *testing.T) {
	f := newFixture(t, 1500, 300, 83)
	cfg := BoostConfig{Gamma1: 2, Gamma2: 2}
	_, trace, err := Boost(f.freshCtx(), predictors.KHopRandom{K: 2}, f.sim, Plan{Queries: f.split.Query}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if trace[0].Gamma1 > cfg.Gamma1 || trace[0].Executed == 0 {
		t.Fatalf("first round odd: %+v", trace[0])
	}
	// Gammas never tighten over rounds.
	for i := 1; i < len(trace); i++ {
		if trace[i].Gamma1 > trace[i-1].Gamma1 {
			t.Fatal("gamma1 tightened mid-run")
		}
		if trace[i].Gamma2 < trace[i-1].Gamma2 {
			t.Fatal("gamma2 tightened mid-run")
		}
	}
}

// Fig 8 property: greedy scheduling increases pseudo-label utilization
// versus random rounds. The gap is widest where the M cap binds
// (2-hop, M = 4); with 1-hop M = 4 the paper itself reports only a
// modest improvement.
func TestSchedulingIncreasesUtilization(t *testing.T) {
	f := newFixture(t, 1500, 600, 89)
	m := predictors.KHopRandom{K: 2}
	ctx := f.freshCtx()
	ctx.M = 4
	randomU := SimulateScheduling(ctx, m, f.split.Query, 50, ScheduleRandom, 1)
	greedyU := SimulateScheduling(ctx, m, f.split.Query, 50, ScheduleGreedy, 1)
	if randomU == 0 {
		t.Fatal("random scheduling found no pseudo-label uses; graph too sparse for the test")
	}
	if float64(greedyU) < 1.15*float64(randomU) {
		t.Fatalf("greedy %d not clearly above random %d", greedyU, randomU)
	}
}

func TestSimulateSchedulingRestoresKnown(t *testing.T) {
	f := newFixture(t, 500, 100, 97)
	ctx := f.freshCtx()
	before := len(ctx.Known)
	SimulateScheduling(ctx, predictors.KHopRandom{K: 1}, f.split.Query, 10, ScheduleGreedy, 2)
	if len(ctx.Known) != before {
		t.Fatalf("Known leaked: %d -> %d", before, len(ctx.Known))
	}
}

func TestSimulateSchedulingDeterministic(t *testing.T) {
	f := newFixture(t, 500, 100, 101)
	ctx := f.freshCtx()
	a := SimulateScheduling(ctx, predictors.KHopRandom{K: 2}, f.split.Query, 20, ScheduleRandom, 3)
	b := SimulateScheduling(ctx, predictors.KHopRandom{K: 2}, f.split.Query, 20, ScheduleRandom, 3)
	if a != b {
		t.Fatalf("utilization not deterministic: %d vs %d", a, b)
	}
}

func TestSchedulePolicyString(t *testing.T) {
	if ScheduleRandom.String() != "w/o scheduling" || ScheduleGreedy.String() != "w/ scheduling" {
		t.Fatal("policy names wrong")
	}
	if SchedulePolicy(9).String() == "" {
		t.Fatal("unknown policy name empty")
	}
}
