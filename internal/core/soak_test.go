//go:build soak

package core

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/batch"
	"repro/internal/llm"
	"repro/internal/obs"
	"repro/internal/predictors"
	"repro/internal/promptcache"
)

// The soak layer (built with -tags soak) runs the whole degraded-mode
// stack at once — replica pool, hedging, per-replica breakers, memory +
// disk cache, per-query timeouts, surrogate fallback — under a
// deterministic fault schedule, and checks the global invariants that
// the unit layers each assert in isolation:
//
//	every planned query is answered exactly once (LLM or surrogate);
//	the cache's own Stats() agree with the mqo_cache_* metrics;
//	nothing leaks a goroutine, even with hangs, hedges and ejections.
//
// In -short mode (CI) the soak shrinks from 10k to 2k total query
// executions; the invariants are identical.

// soakQueries returns the per-pass plan size: 2000 x 5 passes = 10k
// query executions normally, 500 x 4 = 2k under -short.
func soakQueries() int {
	if testing.Short() {
		return 500
	}
	return 2000
}

func soakPasses() int {
	if testing.Short() {
		return 4
	}
	return 5
}

func TestSoakChaosPoolCacheFallback(t *testing.T) {
	queries := soakQueries()
	f := newFixture(t, 2600, queries, 31)
	m := predictors.KHopRandom{K: 1}
	plan := Plan{Queries: f.split.Query}
	if len(plan.Queries) != queries {
		t.Fatalf("split produced %d queries, want %d", len(plan.Queries), queries)
	}
	sur := fitTestSurrogate(t, f)
	fcfg := llm.FaultConfig{Seed: 77, ErrorRate: 0.1, HangRate: 0.05}

	reg := obs.NewRegistry()
	pcache, err := promptcache.Open(t.TempDir(), promptcache.Config{
		// One full pass stores ~178KB; this budget keeps most of the
		// working set warm across passes while still forcing LRU
		// evictions mid-soak (so the eviction accounting is exercised).
		MaxBytes: 160 << 10,
		Obs:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Baseline after the surrogate fit and cache open, before any
	// execution machinery spins up.
	runtime.GC()
	baseline := runtime.NumGoroutine()

	cfg := ExecConfig{
		Workers:      8,
		QueryTimeout: 50 * time.Millisecond,
		Cache:        true,
		Disk:         pcache,
		ReplicaCount: 3,
		Hedge:        true,
		HedgeAfter:   5 * time.Millisecond,
		Breaker:      batch.BreakerConfig{Threshold: 5, Cooldown: 20 * time.Millisecond},
		Fallback:     sur,
	}
	for pass := 0; pass < soakPasses(); pass++ {
		ctx := f.freshCtx()
		ctx.Obs = reg
		// One fresh injector per pass: fates are prompt-keyed, so every
		// pass replays the identical fault schedule against the cache.
		res, err := ExecuteWith(ctx, m, f.faultedSim(t, fcfg), plan, cfg)
		if err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		// The load-bearing invariant: chaos degrades answers, it never
		// loses them. Every planned query is answered exactly once.
		if res.LLMAnswered()+res.SurrogateAnswered() != len(plan.Queries) {
			t.Fatalf("pass %d: LLM %d + surrogate %d != planned %d",
				pass, res.LLMAnswered(), res.SurrogateAnswered(), len(plan.Queries))
		}
		if res.SurrogateAnswered() == 0 {
			t.Fatalf("pass %d: no query degraded to the surrogate; the chaos is vacuous", pass)
		}
		if _, cov := PlanAccuracy(f.g, plan.Queries, res.Pred); cov != 1 {
			t.Fatalf("pass %d: coverage %v with fallback, want 1", pass, cov)
		}
	}

	// The cache's internal ledger and its emitted metrics are two
	// independent accountings of the same events; they must agree.
	st := pcache.Stats()
	if got := reg.CounterValue("mqo_cache_hits_total"); got != float64(st.Hits) {
		t.Fatalf("hits: counter %v != stats %d", got, st.Hits)
	}
	if got := reg.CounterValue("mqo_cache_misses_total"); got != float64(st.Misses) {
		t.Fatalf("misses: counter %v != stats %d", got, st.Misses)
	}
	// Evictions carry a "reason" label (lru vs ttl); sum the series.
	var evictions float64
	for _, s := range reg.Snapshot() {
		if s.Name == "mqo_cache_evictions_total" {
			evictions += s.Value
		}
	}
	if evictions != float64(st.Evictions) {
		t.Fatalf("evictions: counters %v != stats %d", evictions, st.Evictions)
	}
	if got := reg.GaugeValue("mqo_cache_bytes"); got != float64(st.Bytes) {
		t.Fatalf("bytes: gauge %v != stats %d", got, st.Bytes)
	}
	if st.Hits == 0 {
		t.Fatal("no cache hits across passes; the disk tier did nothing")
	}

	// The pool routed and hedged under the chaos.
	var picks, hedges, hedgeWins float64
	for _, s := range reg.Snapshot() {
		switch s.Name {
		case "mqo_pool_picks_total":
			picks += s.Value
		case "mqo_pool_hedges_total":
			hedges += s.Value
		case "mqo_pool_hedge_wins_total":
			hedgeWins += s.Value
		}
	}
	if picks == 0 {
		t.Fatal("pool recorded no picks")
	}
	if hedgeWins > hedges {
		t.Fatalf("hedge wins %v > hedges %v", hedgeWins, hedges)
	}

	if err := pcache.Close(); err != nil {
		t.Fatal(err)
	}

	// No goroutine leak: hangs were abandoned by timeout, hedge losers
	// canceled, workers drained. Poll — canceled calls unwind briefly
	// after ExecuteWith returns.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+3 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d live, baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestSoakDeterministicAcrossReplicaCounts pins the pool's determinism
// contract at soak scale: with Sim-backed replicas sharing one seed,
// predictions, token totals and the fallback set are bit-identical for
// any replica count, hedging on or off. Breakers stay off here — trips
// are timing-dependent by design, so they are exercised in the chaos
// soak above, not in the determinism comparison.
func TestSoakDeterministicAcrossReplicaCounts(t *testing.T) {
	queries := soakQueries() / 2
	f := newFixture(t, 2600, queries, 37)
	m := predictors.KHopRandom{K: 1}
	plan := Plan{Queries: f.split.Query}
	sur := fitTestSurrogate(t, f)
	fcfg := llm.FaultConfig{Seed: 83, ErrorRate: 0.15, HangRate: 0.05}

	run := func(replicas int, hedge bool) *Results {
		res, err := ExecuteWith(f.freshCtx(), m, f.faultedSim(t, fcfg), plan, ExecConfig{
			Workers:      8,
			QueryTimeout: 50 * time.Millisecond,
			ReplicaCount: replicas,
			Hedge:        hedge,
			HedgeAfter:   5 * time.Millisecond,
			Fallback:     sur,
		})
		if err != nil {
			t.Fatalf("replicas=%d hedge=%v: %v", replicas, hedge, err)
		}
		return res
	}

	base := run(1, false)
	if base.SurrogateAnswered() == 0 {
		t.Fatal("no query degraded to the surrogate; the scenario is vacuous")
	}
	for _, tc := range []struct {
		replicas int
		hedge    bool
	}{{3, false}, {3, true}} {
		res := run(tc.replicas, tc.hedge)
		label := "replicas=3"
		if tc.hedge {
			label = "replicas=3 hedged"
		}
		assertSameResults(t, label, base, res)
		if len(res.Fallback) != len(base.Fallback) {
			t.Fatalf("%s: %d fallbacks vs %d baseline", label, len(res.Fallback), len(base.Fallback))
		}
		for v := range base.Fallback {
			if !res.Fallback[v] {
				t.Fatalf("%s: node %d fell back at baseline but not here", label, v)
			}
		}
	}
}
