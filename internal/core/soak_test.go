//go:build soak

package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/batch"
	"repro/internal/llm"
	"repro/internal/obs"
	"repro/internal/predictors"
	"repro/internal/promptcache"
)

// The soak layer (built with -tags soak) runs the whole degraded-mode
// stack at once — replica pool, hedging, per-replica breakers, memory +
// disk cache, per-query timeouts, surrogate fallback — under a
// deterministic fault schedule, and checks the global invariants that
// the unit layers each assert in isolation:
//
//	every planned query is answered exactly once (LLM or surrogate);
//	the cache's own Stats() agree with the mqo_cache_* metrics;
//	nothing leaks a goroutine, even with hangs, hedges and ejections.
//
// In -short mode (CI) the soak shrinks from 10k to 2k total query
// executions; the invariants are identical.

// soakQueries returns the per-pass plan size: 2000 x 5 passes = 10k
// query executions normally, 500 x 4 = 2k under -short.
func soakQueries() int {
	if testing.Short() {
		return 500
	}
	return 2000
}

func soakPasses() int {
	if testing.Short() {
		return 4
	}
	return 5
}

func TestSoakChaosPoolCacheFallback(t *testing.T) {
	queries := soakQueries()
	f := newFixture(t, 2600, queries, 31)
	m := predictors.KHopRandom{K: 1}
	plan := Plan{Queries: f.split.Query}
	if len(plan.Queries) != queries {
		t.Fatalf("split produced %d queries, want %d", len(plan.Queries), queries)
	}
	sur := fitTestSurrogate(t, f)
	fcfg := llm.FaultConfig{Seed: 77, ErrorRate: 0.1, HangRate: 0.05}

	reg := obs.NewRegistry()
	pcache, err := promptcache.Open(t.TempDir(), promptcache.Config{
		// One full pass stores ~178KB; this budget keeps most of the
		// working set warm across passes while still forcing LRU
		// evictions mid-soak (so the eviction accounting is exercised).
		MaxBytes: 160 << 10,
		Obs:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Baseline after the surrogate fit and cache open, before any
	// execution machinery spins up.
	runtime.GC()
	baseline := runtime.NumGoroutine()

	cfg := ExecConfig{
		Workers:      8,
		QueryTimeout: 50 * time.Millisecond,
		Cache:        true,
		Disk:         pcache,
		ReplicaCount: 3,
		Hedge:        true,
		HedgeAfter:   5 * time.Millisecond,
		Breaker:      batch.BreakerConfig{Threshold: 5, Cooldown: 20 * time.Millisecond},
		Fallback:     sur,
	}
	for pass := 0; pass < soakPasses(); pass++ {
		ctx := f.freshCtx()
		ctx.Obs = reg
		// One fresh injector per pass: fates are prompt-keyed, so every
		// pass replays the identical fault schedule against the cache.
		res, err := ExecuteWith(ctx, m, f.faultedSim(t, fcfg), plan, cfg)
		if err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		// The load-bearing invariant: chaos degrades answers, it never
		// loses them. Every planned query is answered exactly once.
		if res.LLMAnswered()+res.SurrogateAnswered() != len(plan.Queries) {
			t.Fatalf("pass %d: LLM %d + surrogate %d != planned %d",
				pass, res.LLMAnswered(), res.SurrogateAnswered(), len(plan.Queries))
		}
		if res.SurrogateAnswered() == 0 {
			t.Fatalf("pass %d: no query degraded to the surrogate; the chaos is vacuous", pass)
		}
		if _, cov := PlanAccuracy(f.g, plan.Queries, res.Pred); cov != 1 {
			t.Fatalf("pass %d: coverage %v with fallback, want 1", pass, cov)
		}
	}

	// The cache's internal ledger and its emitted metrics are two
	// independent accountings of the same events; they must agree.
	st := pcache.Stats()
	if got := reg.CounterValue("mqo_cache_hits_total"); got != float64(st.Hits) {
		t.Fatalf("hits: counter %v != stats %d", got, st.Hits)
	}
	if got := reg.CounterValue("mqo_cache_misses_total"); got != float64(st.Misses) {
		t.Fatalf("misses: counter %v != stats %d", got, st.Misses)
	}
	// Evictions carry a "reason" label (lru vs ttl); sum the series.
	var evictions float64
	for _, s := range reg.Snapshot() {
		if s.Name == "mqo_cache_evictions_total" {
			evictions += s.Value
		}
	}
	if evictions != float64(st.Evictions) {
		t.Fatalf("evictions: counters %v != stats %d", evictions, st.Evictions)
	}
	if got := reg.GaugeValue("mqo_cache_bytes"); got != float64(st.Bytes) {
		t.Fatalf("bytes: gauge %v != stats %d", got, st.Bytes)
	}
	if st.Hits == 0 {
		t.Fatal("no cache hits across passes; the disk tier did nothing")
	}

	// The pool routed and hedged under the chaos.
	var picks, hedges, hedgeWins float64
	for _, s := range reg.Snapshot() {
		switch s.Name {
		case "mqo_pool_picks_total":
			picks += s.Value
		case "mqo_pool_hedges_total":
			hedges += s.Value
		case "mqo_pool_hedge_wins_total":
			hedgeWins += s.Value
		}
	}
	if picks == 0 {
		t.Fatal("pool recorded no picks")
	}
	if hedgeWins > hedges {
		t.Fatalf("hedge wins %v > hedges %v", hedgeWins, hedges)
	}

	if err := pcache.Close(); err != nil {
		t.Fatal(err)
	}

	// No goroutine leak: hangs were abandoned by timeout, hedge losers
	// canceled, workers drained. Poll — canceled calls unwind briefly
	// after ExecuteWith returns.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+3 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d live, baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestSoakDeterministicAcrossReplicaCounts pins the pool's determinism
// contract at soak scale: with Sim-backed replicas sharing one seed,
// predictions, token totals and the fallback set are bit-identical for
// any replica count, hedging on or off. Breakers stay off here — trips
// are timing-dependent by design, so they are exercised in the chaos
// soak above, not in the determinism comparison.
func TestSoakDeterministicAcrossReplicaCounts(t *testing.T) {
	queries := soakQueries() / 2
	f := newFixture(t, 2600, queries, 37)
	m := predictors.KHopRandom{K: 1}
	plan := Plan{Queries: f.split.Query}
	sur := fitTestSurrogate(t, f)
	fcfg := llm.FaultConfig{Seed: 83, ErrorRate: 0.15, HangRate: 0.05}

	run := func(replicas int, hedge bool) *Results {
		res, err := ExecuteWith(f.freshCtx(), m, f.faultedSim(t, fcfg), plan, ExecConfig{
			Workers:      8,
			QueryTimeout: 50 * time.Millisecond,
			ReplicaCount: replicas,
			Hedge:        hedge,
			HedgeAfter:   5 * time.Millisecond,
			Fallback:     sur,
		})
		if err != nil {
			t.Fatalf("replicas=%d hedge=%v: %v", replicas, hedge, err)
		}
		return res
	}

	base := run(1, false)
	if base.SurrogateAnswered() == 0 {
		t.Fatal("no query degraded to the surrogate; the scenario is vacuous")
	}
	for _, tc := range []struct {
		replicas int
		hedge    bool
	}{{3, false}, {3, true}} {
		res := run(tc.replicas, tc.hedge)
		label := "replicas=3"
		if tc.hedge {
			label = "replicas=3 hedged"
		}
		assertSameResults(t, label, base, res)
		if len(res.Fallback) != len(base.Fallback) {
			t.Fatalf("%s: %d fallbacks vs %d baseline", label, len(res.Fallback), len(base.Fallback))
		}
		for v := range base.Fallback {
			if !res.Fallback[v] {
				t.Fatalf("%s: node %d fell back at baseline but not here", label, v)
			}
		}
	}
}

// countingPredictor counts the calls and tokens that actually reach
// the inner predictor — the spend a per-replica cache failed to
// absorb.
type countingPredictor struct {
	inner  llm.Predictor
	calls  atomic.Int64
	tokens atomic.Int64
}

func (c *countingPredictor) Name() string     { return c.inner.Name() }
func (c *countingPredictor) Identity() string { return llm.IdentityOf(c.inner) }

func (c *countingPredictor) Query(promptText string) (llm.Response, error) {
	c.calls.Add(1)
	resp, err := c.inner.Query(promptText)
	if err == nil {
		c.tokens.Add(int64(resp.InputTokens + resp.OutputTokens))
	}
	return resp, err
}

// poolAffinityCounters sums the pool's pick and affinity-hit families
// across replica labels.
func poolAffinityCounters(reg *obs.Registry) (picks, hits float64) {
	for _, s := range reg.Snapshot() {
		switch s.Name {
		case "mqo_pool_picks_total":
			picks += s.Value
		case "mqo_pool_affinity_hits_total":
			hits += s.Value
		}
	}
	return picks, hits
}

// TestSoakAffinityWarmPath pins the routing invariant the affinity
// scorer converts from accident to guarantee: with one disk cache per
// replica, a full-plan re-run pays ~zero predictor calls and tokens at
// ANY replica count, hedging on or off, because every warm prompt is
// routed back to the replica whose cache owns it. (Without affinity,
// P2C re-scatters the second pass and each replica's cache misses
// ~(n-1)/n of the prompts it never saw.) ≥99% of warm picks must be
// affinity hits, and the warm results must be bit-identical to cold.
func TestSoakAffinityWarmPath(t *testing.T) {
	queries := soakQueries() / 2
	f := newFixture(t, 2600, queries, 41)
	m := predictors.KHopRandom{K: 1}
	plan := Plan{Queries: f.split.Query}

	for _, reps := range []int{1, 3, 5} {
		for _, hedge := range []bool{false, true} {
			t.Run(fmt.Sprintf("replicas=%d,hedge=%v", reps, hedge), func(t *testing.T) {
				reg := obs.NewRegistry()
				counter := &countingPredictor{inner: llm.NewSim(llm.GPT35(), f.g.Vocab, f.g.Classes, 13)}
				replicas := make([]llm.Predictor, reps)
				for i := range replicas {
					pc, err := promptcache.Open(t.TempDir(), promptcache.Config{Obs: reg})
					if err != nil {
						t.Fatal(err)
					}
					defer pc.Close()
					replicas[i] = promptcache.Wrap(counter, pc)
				}
				cfg := ExecConfig{
					Workers:    8,
					Replicas:   replicas,
					Affinity:   true,
					Hedge:      hedge,
					HedgeAfter: 50 * time.Millisecond,
				}

				ctx := f.freshCtx()
				ctx.Obs = reg
				cold, err := ExecuteWith(ctx, m, replicas[0], plan, cfg)
				if err != nil {
					t.Fatalf("cold pass: %v", err)
				}
				coldCalls, coldTokens := counter.calls.Load(), counter.tokens.Load()
				if coldCalls == 0 {
					t.Fatal("cold pass reached the predictor zero times; the scenario is vacuous")
				}
				coldPicks, coldHits := poolAffinityCounters(reg)

				wctx := f.freshCtx()
				wctx.Obs = reg
				warm, err := ExecuteWith(wctx, m, replicas[0], plan, cfg)
				if err != nil {
					t.Fatalf("warm pass: %v", err)
				}
				// "~0": the shards were populated by the cold pass, so a
				// re-run routed by affinity pays nothing. Allow 1% slack
				// for overload-guard trips under worker concurrency.
				slack := int64(len(plan.Queries) / 100)
				if got := counter.calls.Load() - coldCalls; got > slack {
					t.Errorf("warm pass paid %d predictor calls (> %d) across %d replicas; warm prompts hit cold replicas",
						got, slack, reps)
				}
				if got := counter.tokens.Load() - coldTokens; got > coldTokens/100 {
					t.Errorf("warm pass paid %d predictor tokens (cold paid %d); want ~0", got, coldTokens)
				}
				warmPicks, warmHits := poolAffinityCounters(reg)
				dPicks, dHits := warmPicks-coldPicks, warmHits-coldHits
				if dPicks == 0 {
					t.Fatal("warm pass recorded no picks")
				}
				if dHits < 0.99*dPicks {
					t.Errorf("warm pass affinity hits %v / picks %v < 99%%", dHits, dPicks)
				}
				assertSameResults(t, "warm vs cold", cold, warm)
			})
		}
	}
}

// deadPredictor fails every call — a permanently down backend.
type deadPredictor struct{}

func (deadPredictor) Name() string     { return "dead" }
func (deadPredictor) Identity() string { return "dead" }
func (deadPredictor) Query(string) (llm.Response, error) {
	return llm.Response{}, errors.New("backend down")
}
func (deadPredictor) QueryContext(context.Context, string) (llm.Response, error) {
	return llm.Response{}, errors.New("backend down")
}

// TestSoakAffinityEjectedOwnerDegrades is the acceptance criterion's
// degraded half at plan scale: one replica — the rendezvous owner of
// ~1/3 of the key space — is dead. Its breaker must eject it, its
// shard must degrade to P2C over the healthy replicas (surfacing as
// affinity misses), and no batch.ErrCircuitOpen may ever reach the
// executor's error path: every query is answered by the LLM, no
// fallback, no query errors.
func TestSoakAffinityEjectedOwnerDegrades(t *testing.T) {
	queries := soakQueries() / 2
	f := newFixture(t, 2600, queries, 43)
	m := predictors.KHopRandom{K: 1}
	plan := Plan{Queries: f.split.Query}

	reg := obs.NewRegistry()
	counter := &countingPredictor{inner: llm.NewSim(llm.GPT35(), f.g.Vocab, f.g.Classes, 13)}
	replicas := []llm.Predictor{deadPredictor{}, counter, counter}
	cfg := ExecConfig{
		Workers:  8,
		Replicas: replicas,
		Affinity: true,
		// Retries re-enter the pool: the shard query that eats the
		// ejection (two failures open the breaker) succeeds on its next
		// attempt via the P2C fallback.
		MaxRetries: 2,
		RetryDelay: time.Millisecond,
		Breaker:    batch.BreakerConfig{Threshold: 2, Cooldown: time.Hour},
	}

	ctx := f.freshCtx()
	ctx.Obs = reg
	res, err := ExecuteWith(ctx, m, counter, plan, cfg)
	if err != nil {
		t.Fatalf("execution with one dead shard owner: %v", err)
	}
	if _, cov := PlanAccuracy(f.g, plan.Queries, res.Pred); cov != 1 {
		t.Fatalf("coverage %v with a dead shard owner, want 1", cov)
	}
	if res.SurrogateAnswered() != 0 {
		t.Fatalf("%d queries fell back; degradation should stay inside the pool", res.SurrogateAnswered())
	}
	var misses float64
	for _, s := range reg.Snapshot() {
		if s.Name == "mqo_pool_affinity_misses_total" {
			misses += s.Value
		}
	}
	if misses == 0 {
		t.Fatal("no affinity misses recorded; the dead owner's shard never degraded through the scorer")
	}
	if got := reg.CounterValue("mqo_pool_ejected_total", "replica", "0"); got != 1 {
		t.Errorf("dead owner ejections = %v, want 1", got)
	}
}
