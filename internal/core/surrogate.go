package core

import (
	"fmt"

	"repro/internal/encode"
	"repro/internal/nn"
	"repro/internal/tag"
)

// This file implements graceful degradation's answer machine. The
// paper already trains a surrogate classifier f_θ1 on the labeled set
// (Section V-A) to *estimate* which nodes the LLM can classify from
// text alone; the same model can *answer* for nodes the LLM cannot
// reach — a timed-out query, an open circuit breaker, an exhausted
// token budget. Surrogate answers are cheaper and weaker than LLM
// answers, so the executor tracks them separately (Results.Fallback)
// and reports coverage alongside accuracy.

// SurrogateConfig tunes FitSurrogate. The zero value is replaced by
// DefaultSurrogateConfig.
type SurrogateConfig struct {
	// MLP configures the classifier (the paper's small-dataset default
	// is a linear softmax model).
	MLP nn.MLPConfig
	// Folds is the cross-validation fold count whose per-fold models
	// are averaged at prediction time (the paper uses 3).
	Folds int
	// MaxFeatures caps the TF-IDF feature dimension.
	MaxFeatures int
	// Seed drives fold assignment and weight initialization.
	Seed uint64
}

// DefaultSurrogateConfig mirrors the inadequacy measure's surrogate
// settings, so a fallback-only fit matches what pruning would train.
func DefaultSurrogateConfig() SurrogateConfig {
	return SurrogateConfig{
		MLP:         nn.DefaultMLPConfig(),
		Folds:       3,
		MaxFeatures: 512,
		Seed:        1,
	}
}

// Surrogate is a trained text-only classifier used to answer queries
// the LLM path could not. It is immutable after fitting and safe for
// concurrent use.
type Surrogate struct {
	enc      *encode.Encoder
	ensemble *nn.Ensemble
	classes  []string
}

// FitSurrogate trains the paper's surrogate classifier f_θ1 on the
// labeled set: TF-IDF features over the whole corpus, k-fold ensemble
// over the labeled nodes. No LLM queries are spent.
func FitSurrogate(g *tag.Graph, labeled []tag.NodeID, cfg SurrogateConfig) (*Surrogate, error) {
	if len(labeled) == 0 {
		return nil, fmt.Errorf("core: surrogate needs a labeled set")
	}
	def := DefaultSurrogateConfig()
	if cfg.Folds <= 0 {
		cfg.Folds = def.Folds
	}
	if cfg.MaxFeatures <= 0 {
		cfg.MaxFeatures = def.MaxFeatures
	}
	if cfg.MLP.Epochs == 0 {
		cfg.MLP = def.MLP
	}
	corpus := make([]string, g.NumNodes())
	for i := range corpus {
		corpus[i] = g.Text(tag.NodeID(i))
	}
	enc := encode.NewTFIDF(corpus, cfg.MaxFeatures)
	X := make([][]float64, len(labeled))
	y := make([]int, len(labeled))
	for i, v := range labeled {
		X[i] = enc.Encode(corpus[v])
		y[i] = g.Nodes[v].Label
	}
	mlpCfg := cfg.MLP
	mlpCfg.Seed = cfg.Seed
	ensemble := nn.TrainKFold(X, y, len(g.Classes), cfg.Folds, mlpCfg)
	return &Surrogate{enc: enc, ensemble: ensemble, classes: append([]string(nil), g.Classes...)}, nil
}

// Surrogate exposes the classifier already trained while fitting the
// inadequacy measure, so pipelines that prune do not train f_θ1 twice.
func (iq *Inadequacy) Surrogate(g *tag.Graph) *Surrogate {
	return &Surrogate{enc: iq.enc, ensemble: iq.ensemble, classes: append([]string(nil), g.Classes...)}
}

// Predict returns the class name the surrogate assigns to a text.
func (s *Surrogate) Predict(text string) string {
	return s.classes[s.ensemble.Predict(s.enc.Encode(text))]
}

// PredictNode returns the surrogate's class for node v of g.
func (s *Surrogate) PredictNode(g *tag.Graph, v tag.NodeID) string {
	return s.Predict(g.Text(v))
}

// Classes returns the class names the surrogate predicts over.
func (s *Surrogate) Classes() []string { return append([]string(nil), s.classes...) }
