// Package core implements the paper's two multi-query optimization
// strategies — token pruning (Section V-A, Algorithm 1) and query
// boosting (Section V-B, Algorithm 2) — together with the execution
// plans, budget arithmetic and pseudo-label scheduling that tie them to
// the benchmark methods.
//
// Both strategies operate strictly on query prompts: pruning decides
// which queries omit neighbor text, boosting decides execution order
// and enriches prompts with pseudo-labels from earlier rounds. Neither
// touches the predictor itself, so they compose with any Method and any
// black-box Predictor ("plug-and-play integration", Section V-C).
package core

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"time"

	"repro/internal/batch"
	"repro/internal/llm"
	"repro/internal/obs"
	"repro/internal/pool"
	"repro/internal/predictors"
	"repro/internal/prompt"
	"repro/internal/promptcache"
	"repro/internal/tag"
	"repro/internal/token"
	"repro/internal/xrand"
)

// Metric names emitted by plan execution; the full catalog lives in
// README.md ("Observability").
const (
	metricQueries          = "mqo_queries_total"
	metricQueryErrors      = "mqo_query_errors_total"
	metricPruned           = "mqo_queries_pruned_total"
	metricEquipped         = "mqo_queries_equipped_total"
	metricInputTokens      = "mqo_input_tokens_total"
	metricOutputTokens     = "mqo_output_tokens_total"
	metricQuerySeconds     = "mqo_query_duration_seconds"
	metricPseudoUses       = "mqo_pseudo_label_uses_total"
	metricBoostRounds      = "mqo_boost_rounds_total"
	metricBoostRound       = "mqo_boost_round"
	metricBoostPending     = "mqo_boost_pending_queries"
	metricFallback         = "mqo_fallback_predictions_total"
	metricCompressedTokens = "mqo_prompt_compressed_tokens_total"
	metricCompressionRatio = "mqo_prompt_compression_ratio"
)

// recordQuery emits the per-query metrics shared by Execute and Boost.
func recordQuery(rec obs.Recorder, mode string, resp llm.Response, pruned, equipped bool) {
	rec.Add(metricQueries, 1, "mode", mode)
	if pruned {
		rec.Add(metricPruned, 1, "mode", mode)
	}
	if equipped {
		rec.Add(metricEquipped, 1, "mode", mode)
	}
	rec.Add(metricInputTokens, float64(resp.InputTokens), "mode", mode)
	rec.Add(metricOutputTokens, float64(resp.OutputTokens), "mode", mode)
}

// Plan is an executable multi-query plan: which queries run, and which
// of them omit neighbor text.
type Plan struct {
	Queries []tag.NodeID
	// Prune marks queries whose prompt omits neighbor text entirely.
	Prune map[tag.NodeID]bool
}

// Results collects the outcome of executing a plan.
type Results struct {
	// Pred maps each executed query to the predicted category name.
	// Queries answered by the fallback surrogate appear here too; the
	// Fallback set distinguishes them.
	Pred map[tag.NodeID]string
	// Meter totals the token usage of the executed queries.
	Meter token.Meter
	// Equipped counts queries whose prompt carried neighbor text (the
	// "# Queries Equip N_i" column of Table VIII).
	Equipped int
	// Rounds reports boosting rounds (1 for plain execution).
	Rounds int
	// PseudoLabelUses counts selected neighbors whose label was a
	// pseudo-label from an earlier query (boosting only).
	PseudoLabelUses int
	// Fallback marks queries answered by the surrogate classifier
	// because the LLM path failed permanently (timeout, open circuit
	// breaker, exhausted budget or retries). Nil when no query fell
	// back.
	Fallback map[tag.NodeID]bool
}

// markFallback records one surrogate-answered query.
func (r *Results) markFallback(v tag.NodeID) {
	if r.Fallback == nil {
		r.Fallback = make(map[tag.NodeID]bool)
	}
	r.Fallback[v] = true
}

// LLMAnswered counts queries answered by the LLM itself.
func (r *Results) LLMAnswered() int { return len(r.Pred) - len(r.Fallback) }

// SurrogateAnswered counts queries answered by the fallback surrogate.
func (r *Results) SurrogateAnswered() int { return len(r.Fallback) }

// Accuracy returns the fraction of predictions matching ground truth
// — over the *answered* queries only. After a degraded run this
// overstates quality; pair it with PlanAccuracy, which also reports
// coverage.
func Accuracy(g *tag.Graph, pred map[tag.NodeID]string) float64 {
	if len(pred) == 0 {
		return 0
	}
	correct := 0
	for v, c := range pred {
		if c == g.Classes[g.Nodes[v].Label] {
			correct++
		}
	}
	return float64(correct) / float64(len(pred))
}

// PlanAccuracy scores predictions against the *full* plan: accuracy
// counts an unanswered query as wrong, and coverage reports the
// answered fraction. This is the honest pair of numbers after a
// degraded run — Accuracy over the survivors alone silently inflates
// when failed queries drop out of pred.
func PlanAccuracy(g *tag.Graph, queries []tag.NodeID, pred map[tag.NodeID]string) (acc, coverage float64) {
	if len(queries) == 0 {
		return 0, 0
	}
	correct, answered := 0, 0
	for _, v := range queries {
		c, ok := pred[v]
		if !ok {
			continue
		}
		answered++
		if c == g.Classes[g.Nodes[v].Label] {
			correct++
		}
	}
	n := float64(len(queries))
	return float64(correct) / n, float64(answered) / n
}

// ExecuteQuery runs one node query: neighbor selection (skipped when
// pruned), prompt construction and the LLM call.
func ExecuteQuery(ctx *predictors.Context, m predictors.Method, p llm.Predictor, v tag.NodeID, pruned bool) (llm.Response, []predictors.Selected, error) {
	var sel []predictors.Selected
	if !pruned {
		sel = m.Select(ctx, v)
	}
	promptText := predictors.BuildPrompt(ctx, v, sel, m.Ranked() && len(sel) > 0)
	resp, err := p.Query(promptText)
	if err != nil {
		return llm.Response{}, nil, fmt.Errorf("core: query for node %d: %w", v, err)
	}
	return resp, sel, nil
}

// ExecuteQueryVanilla issues a vanilla zero-shot query (no neighbor
// text) for node v.
func ExecuteQueryVanilla(ctx *predictors.Context, p llm.Predictor, v tag.NodeID) (llm.Response, error) {
	resp, err := p.Query(predictors.BuildPrompt(ctx, v, nil, false))
	if err != nil {
		return llm.Response{}, fmt.Errorf("core: vanilla query for node %d: %w", v, err)
	}
	return resp, nil
}

// ExecConfig tunes how a plan's queries are dispatched to the
// predictor. The zero value reproduces the historical serial behaviour:
// one in-flight query, no retries, no rate limit, no budget cap.
//
// With Workers > 1 the queries of a plan (or of one boosting round,
// whose prompts are fixed before the round executes) run concurrently
// through the batch executor. Neighbor selection and prompt
// construction stay on the calling goroutine and results are applied in
// stable plan order, so — given an order-independent predictor such as
// *llm.Sim or an HTTP endpoint at temperature 0 — predictions, token
// totals and accuracy are bit-identical for any worker count. The one
// exception is BudgetTokens: which queries are refused once a hard
// token cap trips depends on completion order.
type ExecConfig struct {
	// Workers is the number of concurrent in-flight queries; values
	// below 1 mean serial execution.
	Workers int
	// QPS caps the dispatch rate across workers; 0 means unlimited.
	QPS float64
	// MaxRetries bounds per-query retries on transient failures; 0
	// keeps the serial path's fail-without-retry semantics.
	MaxRetries int
	// RetryDelay is the initial backoff between retries (default 100ms).
	RetryDelay time.Duration
	// MaxRetryDelay caps the exponential backoff (default 30s).
	MaxRetryDelay time.Duration
	// BudgetTokens, when > 0, hard-caps total tokens spent by this
	// execution; queries starting past the cap fail with
	// batch.ErrBudgetExhausted.
	BudgetTokens int
	// Cache serves repeated prompts from memory and single-flights
	// concurrent duplicates.
	Cache bool
	// Disk adds a persistent cache tier behind the memory cache:
	// answers survive the process, so a repeated plan (or a boosting
	// round re-asking round-N prompts) pays zero predictor calls for
	// prompts any earlier run already bought. Implies Cache.
	Disk *promptcache.Cache
	// CacheNamespace partitions the disk cache by answer function;
	// empty derives it from the predictor identity and prompt-template
	// version (promptcache.Namespace — versioned by Compress when
	// compression is enabled).
	CacheNamespace string
	// Compress, when enabled, runs every planned prompt through the
	// deterministic compression stage (prompt.Compressor) after
	// construction and before dispatch: abstract spans are ranked by
	// signal density and the sparsest dropped to meet the level caps
	// and TargetTokens budget. Compression changes prompt bytes, so it
	// feeds the default cache namespace via its TemplateVersion — a
	// cached answer never crosses compression configurations.
	Compress prompt.Compressor
	// QueryTimeout bounds each predictor call (per attempt); 0 means no
	// deadline. A hung call is abandoned with batch.ErrQueryTimeout, so
	// one stuck prompt cannot stall the whole plan.
	QueryTimeout time.Duration
	// Breaker configures a circuit breaker in front of the predictor;
	// the zero value disables it. Like BudgetTokens, a tripped breaker
	// makes results depend on completion order under concurrency.
	Breaker batch.BreakerConfig
	// Fallback, when non-nil, answers queries whose LLM path failed
	// permanently with the surrogate classifier instead of reporting
	// them in QueryErrors. Fallback answers are marked in
	// Results.Fallback.
	Fallback *Surrogate
	// Replicas, when non-empty, fans the plan's queries across these
	// backends through the replica pool (health-aware routing,
	// per-replica breakers) instead of querying the primary predictor
	// directly. Breaker then configures the per-replica breakers; no
	// global breaker runs.
	Replicas []llm.Predictor
	// ReplicaCount, when > 1 and Replicas is empty, pools the primary
	// predictor itself as that many replica slots — useful for
	// concurrency-safe predictors like *llm.Sim, where N slots model N
	// interchangeable endpoints with independent health state.
	ReplicaCount int
	// Hedge enables hedged requests on the pool: a second replica is
	// tried when the first has not answered within HedgeAfter, first
	// answer wins. Requires pooling (Replicas or ReplicaCount).
	Hedge bool
	// HedgeAfter is the hedge trigger delay (default pool.DefaultHedgeAfter).
	HedgeAfter time.Duration
	// Affinity routes each prompt to its cache-affine replica
	// (rendezvous hashing of the prompt-cache key over the replica
	// set) instead of pure latency×load P2C, falling back to P2C when
	// the affine replica is ejected or overloaded. With per-replica
	// disk caches (e.g. distinct llmserve upstreams) a warm prompt
	// then never pays cold-replica tokens. Requires pooling (Replicas
	// or ReplicaCount).
	Affinity bool
	// OnResult, when non-nil, receives each plan entry's final outcome
	// the moment the executor settles it — from worker goroutines,
	// concurrently and in completion order — instead of only after the
	// whole plan (or boosting round) returns. When Fallback is
	// configured, a permanently failed entry is streamed with the
	// surrogate's answer and Fallback set, exactly matching what the
	// returned Results will record. The hook exists for online callers
	// (the serve tier) that must answer each query's client without
	// waiting for the rest of the coalesced batch; it runs on the
	// worker's critical path and must not block for long.
	OnResult func(QueryOutcome)

	// onOutcome is the batch-level adapter derived from OnResult; set
	// internally by ExecuteWith/BoostWith, never by callers.
	onOutcome func(batch.Request, batch.Outcome)
}

// QueryOutcome is one settled plan entry as streamed to
// ExecConfig.OnResult. Category is the answer recorded in
// Results.Pred: the LLM's parsed category, or the surrogate's
// prediction when Fallback answered (Err is then nil, mirroring how
// ExecuteWith keeps fallback-answered queries out of QueryErrors).
type QueryOutcome struct {
	Node     tag.NodeID
	Category string
	Response llm.Response
	// Pruned/Equipped mirror the plan entry's prompt shape.
	Pruned   bool
	Equipped bool
	// Cached reports the answer came from a cache tier (memory,
	// single-flight coalescing, or disk) instead of a fresh call.
	Cached bool
	// Fallback reports the surrogate answered after the LLM path failed
	// permanently.
	Fallback bool
	// Err is the permanent failure when no fallback is configured.
	Err error
}

// resultStream adapts batch outcomes into OnResult callbacks. The
// planned-query index is rebound per dispatch (boosting rounds reuse
// one executor across rounds); dispatch boundaries are barriers —
// Execute returns only after every worker finished — so rebinding
// needs no lock.
type resultStream struct {
	g    *tag.Graph
	fb   *Surrogate
	hook func(QueryOutcome)
	byID map[string]plannedQuery
}

// bind indexes the next dispatch's planned queries by request ID.
func (rs *resultStream) bind(planned []plannedQuery) {
	m := make(map[string]plannedQuery, len(planned))
	for _, q := range planned {
		m[strconv.Itoa(int(q.v))] = q
	}
	rs.byID = m
}

// onOutcome implements batch.Config.OnOutcome.
func (rs *resultStream) onOutcome(r batch.Request, o batch.Outcome) {
	q, ok := rs.byID[r.ID]
	if !ok {
		return
	}
	out := QueryOutcome{
		Node: q.v, Pruned: q.pruned, Equipped: q.equipped,
		Response: o.Response, Cached: o.Cached, Err: o.Err,
	}
	switch {
	case o.Err == nil:
		out.Category = o.Response.Category
	case rs.fb != nil:
		out.Category = rs.fb.PredictNode(rs.g, q.v)
		out.Fallback = true
		out.Err = nil
	}
	rs.hook(out)
}

// IsZero reports whether cfg is the zero configuration. ExecConfig
// stopped being comparable when Replicas (a slice) was added, so the
// idiomatic cfg == ExecConfig{} no longer compiles; keep this method in
// sync with the field list.
func (cfg ExecConfig) IsZero() bool {
	return cfg.Workers == 0 && cfg.QPS == 0 && cfg.MaxRetries == 0 &&
		cfg.RetryDelay == 0 && cfg.MaxRetryDelay == 0 && cfg.BudgetTokens == 0 &&
		!cfg.Cache && cfg.Disk == nil && cfg.CacheNamespace == "" &&
		cfg.QueryTimeout == 0 && cfg.Breaker == (batch.BreakerConfig{}) &&
		cfg.Fallback == nil && len(cfg.Replicas) == 0 && cfg.ReplicaCount == 0 &&
		!cfg.Hedge && cfg.HedgeAfter == 0 && !cfg.Affinity && cfg.OnResult == nil &&
		cfg.Compress == (prompt.Compressor{})
}

// replicaSet resolves the pool's backend list: the explicit Replicas
// when given, ReplicaCount copies of the primary otherwise, nil when
// pooling is off.
func (cfg ExecConfig) replicaSet(p llm.Predictor) []llm.Predictor {
	if len(cfg.Replicas) > 0 {
		return cfg.Replicas
	}
	if cfg.ReplicaCount > 1 {
		reps := make([]llm.Predictor, cfg.ReplicaCount)
		for i := range reps {
			reps[i] = p
		}
		return reps
	}
	return nil
}

// batchConfig translates an ExecConfig into the executor's config.
func (cfg ExecConfig) batchConfig(rec obs.Recorder) batch.Config {
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	retries := cfg.MaxRetries
	if retries == 0 {
		retries = -1 // core's default is no retries; -1 expresses that to batch
	}
	return batch.Config{
		Workers:        workers,
		QPS:            cfg.QPS,
		MaxRetries:     retries,
		RetryDelay:     cfg.RetryDelay,
		MaxRetryDelay:  cfg.MaxRetryDelay,
		BudgetTokens:   cfg.BudgetTokens,
		Cache:          cfg.Cache,
		Disk:           cfg.Disk,
		CacheNamespace: cfg.CacheNamespace,
		QueryTimeout:   cfg.QueryTimeout,
		Breaker:        cfg.Breaker,
		OnOutcome:      cfg.onOutcome,
		Obs:            rec,
	}
}

// QueryErrors aggregates per-query failures from a plan execution.
// Execution no longer aborts on the first failing query: the successful
// queries' predictions are returned alongside this error, so one bad
// query cannot void a large batch.
type QueryErrors struct {
	Errs map[tag.NodeID]error
}

// add records one failure, allocating lazily.
func (e *QueryErrors) add(v tag.NodeID, err error) {
	if e.Errs == nil {
		e.Errs = make(map[tag.NodeID]error)
	}
	e.Errs[v] = err
}

// Error implements error with a deterministic summary (lowest node ID
// first).
func (e *QueryErrors) Error() string {
	ids := make([]tag.NodeID, 0, len(e.Errs))
	for v := range e.Errs {
		ids = append(ids, v)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	if len(ids) == 0 {
		return "core: no query errors"
	}
	return fmt.Sprintf("core: %d queries failed; first: %v", len(ids), e.Errs[ids[0]])
}

// timedPredictor decorates predictor calls issued by the batch executor
// with the per-query latency histogram the serial path used to emit
// inline, so observability is identical on both paths. (The per-query
// "core.query" span is no longer opened here: since tracing went
// hierarchical it is the query's root span, opened by dispatch before
// the request enters the executor — this layer sits *inside* the
// executor's attempt span and only times the winning call.)
type timedPredictor struct {
	inner llm.Predictor
	rec   obs.Recorder
	mode  string
}

// Name implements llm.Predictor.
func (t *timedPredictor) Name() string { return t.inner.Name() }

// Identity forwards the inner identity so the batch executor's default
// disk-cache namespace is unchanged by instrumentation.
func (t *timedPredictor) Identity() string { return llm.IdentityOf(t.inner) }

// Query implements llm.Predictor with histogram instrumentation.
func (t *timedPredictor) Query(promptText string) (llm.Response, error) {
	start := time.Now()
	resp, err := t.inner.Query(promptText)
	t.rec.Observe(metricQuerySeconds, time.Since(start).Seconds(), "mode", t.mode)
	return resp, err
}

// timedCtxPredictor additionally forwards QueryContext, so wrapping a
// cancelable predictor does not demote it to the executor's watchdog
// path. instrument picks between the two.
type timedCtxPredictor struct {
	*timedPredictor
	cp llm.ContextPredictor
}

// QueryContext implements llm.ContextPredictor with the same
// instrumentation as Query.
func (t *timedCtxPredictor) QueryContext(ctx context.Context, promptText string) (llm.Response, error) {
	start := time.Now()
	resp, err := t.cp.QueryContext(ctx, promptText)
	t.rec.Observe(metricQuerySeconds, time.Since(start).Seconds(), "mode", t.mode)
	return resp, err
}

// plannedQuery is one query with its prompt fixed ahead of dispatch.
type plannedQuery struct {
	v        tag.NodeID
	pruned   bool
	equipped bool
	prompt   string
	// compressWall/compressSaved record the compression stage's cost
	// and payoff for this prompt; zero when compression is disabled or
	// saved nothing. dispatch charges them into the query's ledger.
	compressWall  time.Duration
	compressSaved int
}

// compressQuery runs one planned prompt through the compression stage,
// recording wall time, token savings and the per-mode metrics.
func (q *plannedQuery) compress(comp prompt.Compressor, rec obs.Recorder, mode string) {
	start := time.Now()
	out, st := comp.CompressStats(q.prompt)
	q.prompt = out
	q.compressWall = time.Since(start)
	q.compressSaved = st.Saved()
	rec.Add(metricCompressedTokens, float64(st.Saved()), "mode", mode)
	rec.Observe(metricCompressionRatio, st.Ratio(), "mode", mode)
}

// buildQueries materializes selections and prompts for the given nodes
// on the calling goroutine, keeping Method and Context single-threaded.
// With compression enabled each prompt is compressed in place, so
// everything downstream — dispatch, caching, token metering — sees only
// the compressed bytes.
func buildQueries(ctx *predictors.Context, m predictors.Method, queries []tag.NodeID, prune map[tag.NodeID]bool, comp prompt.Compressor, rec obs.Recorder, mode string) []plannedQuery {
	out := make([]plannedQuery, 0, len(queries))
	for _, v := range queries {
		var sel []predictors.Selected
		if !prune[v] {
			sel = m.Select(ctx, v)
		}
		out = append(out, plannedQuery{
			v:        v,
			pruned:   prune[v],
			equipped: len(sel) > 0,
			prompt:   predictors.BuildPrompt(ctx, v, sel, m.Ranked() && len(sel) > 0),
		})
		if comp.Enabled() {
			out[len(out)-1].compress(comp, rec, mode)
		}
	}
	return out
}

// newPlanExecutor wraps p for one plan execution: instrumented when a
// recorder is live, and fronted by a bounded-concurrency batch
// executor.
func newPlanExecutor(p llm.Predictor, cfg ExecConfig, rec obs.Recorder, mode string) (*batch.Executor, error) {
	if reps := cfg.replicaSet(p); reps != nil {
		pcfg := pool.Config{
			Hedge:      cfg.Hedge,
			HedgeAfter: cfg.HedgeAfter,
			Breaker:    cfg.Breaker,
			Obs:        rec,
		}
		if cfg.Affinity {
			pcfg.Scorer = &pool.Affinity{}
		}
		pl, err := pool.New(reps, pcfg)
		if err != nil {
			return nil, fmt.Errorf("core: building replica pool: %w", err)
		}
		p = pl
		// The per-replica breakers replace the executor's global one: a
		// single dead replica must be ejected from rotation, not allowed
		// to trip a breaker spanning the healthy ones.
		cfg.Breaker = batch.BreakerConfig{}
	}
	// Compression rewrites prompt bytes, so a compressed run must not
	// share the executor's default disk-cache namespace with the
	// uncompressed template. Derive the versioned namespace here (after
	// pool wrapping, so the identity folds replicas exactly like the
	// executor's own default would).
	if cfg.Disk != nil && cfg.CacheNamespace == "" && cfg.Compress.Enabled() {
		cfg.CacheNamespace = promptcache.NamespaceVersion(p, cfg.Compress.TemplateVersion())
	}
	qp := p
	if obs.Enabled(rec) {
		tp := &timedPredictor{inner: p, rec: rec, mode: mode}
		if cp, ok := p.(llm.ContextPredictor); ok {
			qp = &timedCtxPredictor{timedPredictor: tp, cp: cp}
		} else {
			qp = tp
		}
	}
	return batch.New(qp, cfg.batchConfig(rec))
}

// queryTrace pairs one query's root span with its ledger, both closed
// by dispatch when the outcome is in.
type queryTrace struct {
	root *obs.Span
	led  *obs.Ledger
}

// close settles one query's books: the root span ends at the instant
// the worker finished the request (falling back to now for requests the
// executor never picked up) and the ledger closes with the span's exact
// duration. Core charges no stages of its own — the executor tiles the
// span with queue/cache/predict/… charges — so billed tokens stay
// exactly the metered spend.
func (qt queryTrace) close(o batch.Outcome) {
	if qt.root == nil {
		return
	}
	end := o.Finished
	if end.IsZero() {
		end = time.Now()
	}
	if o.Err != nil {
		qt.root.SetAttr("outcome", "error")
	} else if o.Cached {
		qt.root.SetAttr("outcome", "cached")
	}
	qt.root.EndAt(end)
	qt.led.Close(end.Sub(qt.root.StartTime()))
}

// planLink renders a plan-level (or round-level) span's trace identity
// as labels for the query roots under it. Query traces are separate
// traces — each ledger is keyed by its trace ID — so the linkage is by
// attribute, not by parentage. Empty when the plan span is untraced.
func planLink(sp *obs.Span) []string {
	if !sp.Sampled() {
		return nil
	}
	return []string{"plan_trace", sp.TraceID()}
}

// dispatch runs the planned queries through the executor and returns
// outcomes keyed by node. Prompts are already fixed, so concurrent
// dispatch cannot change what is asked — only how fast.
//
// When tracing is live each query gets its own trace: a "core.query"
// root span plus a ledger, both carried into the executor via
// Request.Ctx so every layer underneath (queue, cache, pool, predictor
// — and llmserve across the HTTP hop) nests spans and charges stages
// into them. extra labels (plan/round linkage) are attached to each
// root.
func dispatch(ex *batch.Executor, planned []plannedQuery, rec obs.Recorder, mode string, extra ...string) (map[tag.NodeID]batch.Outcome, error) {
	reqs := make([]batch.Request, len(planned))
	traces := make([]queryTrace, len(planned))
	for i, q := range planned {
		reqs[i] = batch.Request{ID: strconv.Itoa(int(q.v)), Prompt: q.prompt}
		labels := append([]string{"mode", mode, "node", reqs[i].ID}, extra...)
		qctx, root := obs.StartSpanCtx(context.Background(), rec, "core.query", labels...)
		if root.Sampled() {
			led := obs.NewLedger(rec, root.TraceID(), mode+"/node:"+reqs[i].ID)
			if q.compressWall > 0 || q.compressSaved > 0 {
				// Unbilled: compression ran during planning, before this
				// query's span opened, so its wall must not count against
				// the billed tiling and its tokens were never metered.
				led.Charge(obs.StageCompress, q.compressWall, q.compressSaved, false)
			}
			qctx = obs.ContextWithLedger(qctx, led)
			traces[i] = queryTrace{root: root, led: led}
		}
		reqs[i].Ctx = qctx
	}
	res, err := ex.Execute(context.Background(), reqs)
	if err != nil {
		for i := range traces {
			traces[i].close(batch.Outcome{Err: err})
		}
		return nil, err
	}
	out := make(map[tag.NodeID]batch.Outcome, len(planned))
	for i, q := range planned {
		o := res.Outcomes[reqs[i].ID]
		out[q.v] = o
		traces[i].close(o)
	}
	return out, nil
}

// Execute runs a plan with no boosting: every query sees only the
// labels present in ctx.Known at the start (the paper's baseline
// execution mode). It is ExecuteWith at the zero (serial) ExecConfig.
func Execute(ctx *predictors.Context, m predictors.Method, p llm.Predictor, plan Plan) (*Results, error) {
	return ExecuteWith(ctx, m, p, plan, ExecConfig{})
}

// ExecuteWith is Execute with bounded concurrency: prompts for the
// whole plan are constructed up front, dispatched through the batch
// executor under cfg, and the results applied in stable plan order.
// Per-query failures are aggregated into a *QueryErrors returned
// alongside the successful queries' Results.
func ExecuteWith(ctx *predictors.Context, m predictors.Method, p llm.Predictor, plan Plan, cfg ExecConfig) (*Results, error) {
	rec := obs.Active(ctx.Obs)
	res := &Results{Pred: make(map[tag.NodeID]string, len(plan.Queries)), Rounds: 1}
	var rs *resultStream
	if cfg.OnResult != nil {
		rs = &resultStream{g: ctx.Graph, fb: cfg.Fallback, hook: cfg.OnResult}
		cfg.onOutcome = rs.onOutcome
	}
	ex, err := newPlanExecutor(p, cfg, rec, "plain")
	if err != nil {
		return nil, err
	}
	planned := buildQueries(ctx, m, plan.Queries, plan.Prune, cfg.Compress, rec, "plain")
	if rs != nil {
		rs.bind(planned)
	}
	// The plan span is its own trace; each query roots a separate trace
	// (its ledger is keyed by trace ID) and links back via the
	// plan_trace attribute.
	planSpan := rec.StartSpan("core.plan", "mode", "plain", "queries", strconv.Itoa(len(planned)))
	defer planSpan.End()
	outcomes, err := dispatch(ex, planned, rec, "plain", planLink(planSpan)...)
	if err != nil {
		return nil, err
	}
	var qerrs QueryErrors
	for _, q := range planned {
		o := outcomes[q.v]
		if o.Err != nil {
			rec.Add(metricQueryErrors, 1, "mode", "plain")
			if cfg.Fallback != nil {
				res.Pred[q.v] = cfg.Fallback.PredictNode(ctx.Graph, q.v)
				res.markFallback(q.v)
				rec.Add(metricFallback, 1, "mode", "plain")
				continue
			}
			qerrs.add(q.v, fmt.Errorf("core: query for node %d: %w", q.v, o.Err))
			continue
		}
		if q.equipped {
			res.Equipped++
		}
		recordQuery(rec, "plain", o.Response, q.pruned, q.equipped)
		res.Pred[q.v] = o.Response.Category
		res.Meter.AddQuery(o.Response.InputTokens, o.Response.OutputTokens)
	}
	if len(qerrs.Errs) > 0 {
		return res, &qerrs
	}
	return res, nil
}

// TauForBudget computes the pruning fraction τ ∈ [0, 1] implied by a
// token budget B (Section V-C1): B = τ·|V_Q|·(T_v − T_N) + (1−τ)·|V_Q|·T_v,
// where T_v is the mean tokens of a full query and T_N the mean tokens
// of its neighbor text. The result is clamped to [0, 1].
//
// ok reports whether the budget is actually attainable at the returned
// τ: budgets below the all-pruned cost n·(T_v − T_N) still return τ = 1
// but ok = false, and a non-positive T_N (pruning saves nothing) yields
// ok only when the budget covers n·T_v outright. Earlier versions
// silently returned τ = 0 in that second case, reporting an infeasible
// budget as "no pruning needed".
func TauForBudget(budget float64, numQueries int, tokensPerQuery, tokensNeighbor float64) (tau float64, ok bool) {
	if numQueries <= 0 {
		return 0, true
	}
	n := float64(numQueries)
	if tokensNeighbor <= 0 {
		return 0, budget >= n*tokensPerQuery
	}
	tau = (n*tokensPerQuery - budget) / (n * tokensNeighbor)
	if tau < 0 {
		return 0, true
	}
	if tau > 1 {
		return 1, false
	}
	return tau, true
}

// EstimateQueryTokens estimates the mean total prompt tokens and mean
// neighbor-text tokens per query for the given context/method by
// building (but not executing) the prompts of a sample of queries. It
// implements the paper's footnote that both averages "can be estimated
// through statistical analysis or approximation".
//
// When sample is smaller than the query set, the sampled queries are
// drawn uniformly with a deterministic stream keyed by ctx.Seed —
// sampling the prefix instead would bias τ-for-budget whenever the
// query set arrives ordered (by degree, score, or node ID).
func EstimateQueryTokens(ctx *predictors.Context, m predictors.Method, queries []tag.NodeID, sample int) (perQuery, perNeighborText float64) {
	return EstimateQueryTokensCached(ctx, m, queries, sample, nil)
}

// EstimateQueryTokensCached is EstimateQueryTokens made cache-aware:
// queries whose full prompt `cached` reports as already answered
// contribute zero marginal tokens to both averages, because executing
// them re-pays nothing — the answer is served from the persistent
// cache. Budgeting with these averages lets TauForBudget admit more
// un-pruned queries under the same budget on warm runs, which is the
// planner-level payoff of the disk cache: the budget buys *new*
// tokens, not tokens already bought.
//
// The lookup sees the fully-equipped prompt (the one a cache hit would
// serve). nil behaves exactly like EstimateQueryTokens.
func EstimateQueryTokensCached(ctx *predictors.Context, m predictors.Method, queries []tag.NodeID, sample int, cached func(promptText string) bool) (perQuery, perNeighborText float64) {
	return EstimateQueryTokensCompressed(ctx, m, queries, sample, prompt.Compressor{}, cached)
}

// EstimateQueryTokensCompressed is the full-fidelity estimator: it
// sees both the disk cache (cached, may be nil) and the compression
// stage (comp, zero value disables). With compression enabled every
// sampled prompt — equipped and vanilla alike — is compressed before
// counting, so TauForBudget's budget math prices queries at what
// dispatch will actually pay and the two token-saving axes (τ-pruning
// and compression) compose instead of double-counting. The cache
// lookup sees the compressed equipped prompt: those are the bytes a
// compressed run keys its cache with, so a warm entry contributes zero
// marginal tokens exactly once — compression never discounts a prompt
// the cache already discounted.
func EstimateQueryTokensCompressed(ctx *predictors.Context, m predictors.Method, queries []tag.NodeID, sample int, comp prompt.Compressor, cached func(promptText string) bool) (perQuery, perNeighborText float64) {
	if len(queries) == 0 {
		return 0, 0
	}
	if sample <= 0 || sample > len(queries) {
		sample = len(queries)
	}
	sampled := queries
	if sample < len(queries) {
		rng := xrand.New(ctx.Seed).SplitString("core/estimate-tokens")
		idx := rng.Sample(len(queries), sample)
		sort.Ints(idx)
		sampled = make([]tag.NodeID, sample)
		for i, j := range idx {
			sampled[i] = queries[j]
		}
	}
	var full, bare float64
	for _, v := range sampled {
		sel := m.Select(ctx, v)
		withNb := comp.Compress(predictors.BuildPrompt(ctx, v, sel, m.Ranked() && len(sel) > 0))
		if cached != nil && cached(withNb) {
			continue // zero marginal tokens: the answer is already on disk
		}
		vanilla := comp.Compress(predictors.BuildPrompt(ctx, v, nil, false))
		full += float64(token.Count(withNb))
		bare += float64(token.Count(vanilla))
	}
	n := float64(sample)
	return full / n, (full - bare) / n
}
