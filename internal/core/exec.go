// Package core implements the paper's two multi-query optimization
// strategies — token pruning (Section V-A, Algorithm 1) and query
// boosting (Section V-B, Algorithm 2) — together with the execution
// plans, budget arithmetic and pseudo-label scheduling that tie them to
// the benchmark methods.
//
// Both strategies operate strictly on query prompts: pruning decides
// which queries omit neighbor text, boosting decides execution order
// and enriches prompts with pseudo-labels from earlier rounds. Neither
// touches the predictor itself, so they compose with any Method and any
// black-box Predictor ("plug-and-play integration", Section V-C).
package core

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/llm"
	"repro/internal/obs"
	"repro/internal/predictors"
	"repro/internal/tag"
	"repro/internal/token"
)

// Metric names emitted by plan execution; the full catalog lives in
// README.md ("Observability").
const (
	metricQueries      = "mqo_queries_total"
	metricQueryErrors  = "mqo_query_errors_total"
	metricPruned       = "mqo_queries_pruned_total"
	metricEquipped     = "mqo_queries_equipped_total"
	metricInputTokens  = "mqo_input_tokens_total"
	metricOutputTokens = "mqo_output_tokens_total"
	metricQuerySeconds = "mqo_query_duration_seconds"
	metricPseudoUses   = "mqo_pseudo_label_uses_total"
	metricBoostRounds  = "mqo_boost_rounds_total"
	metricBoostRound   = "mqo_boost_round"
	metricBoostPending = "mqo_boost_pending_queries"
)

// recordQuery emits the per-query metrics shared by Execute and Boost.
func recordQuery(rec obs.Recorder, mode string, resp llm.Response, pruned, equipped bool) {
	rec.Add(metricQueries, 1, "mode", mode)
	if pruned {
		rec.Add(metricPruned, 1, "mode", mode)
	}
	if equipped {
		rec.Add(metricEquipped, 1, "mode", mode)
	}
	rec.Add(metricInputTokens, float64(resp.InputTokens), "mode", mode)
	rec.Add(metricOutputTokens, float64(resp.OutputTokens), "mode", mode)
}

// Plan is an executable multi-query plan: which queries run, and which
// of them omit neighbor text.
type Plan struct {
	Queries []tag.NodeID
	// Prune marks queries whose prompt omits neighbor text entirely.
	Prune map[tag.NodeID]bool
}

// Results collects the outcome of executing a plan.
type Results struct {
	// Pred maps each executed query to the predicted category name.
	Pred map[tag.NodeID]string
	// Meter totals the token usage of the executed queries.
	Meter token.Meter
	// Equipped counts queries whose prompt carried neighbor text (the
	// "# Queries Equip N_i" column of Table VIII).
	Equipped int
	// Rounds reports boosting rounds (1 for plain execution).
	Rounds int
	// PseudoLabelUses counts selected neighbors whose label was a
	// pseudo-label from an earlier query (boosting only).
	PseudoLabelUses int
}

// Accuracy returns the fraction of predictions matching ground truth.
func Accuracy(g *tag.Graph, pred map[tag.NodeID]string) float64 {
	if len(pred) == 0 {
		return 0
	}
	correct := 0
	for v, c := range pred {
		if c == g.Classes[g.Nodes[v].Label] {
			correct++
		}
	}
	return float64(correct) / float64(len(pred))
}

// ExecuteQuery runs one node query: neighbor selection (skipped when
// pruned), prompt construction and the LLM call.
func ExecuteQuery(ctx *predictors.Context, m predictors.Method, p llm.Predictor, v tag.NodeID, pruned bool) (llm.Response, []predictors.Selected, error) {
	var sel []predictors.Selected
	if !pruned {
		sel = m.Select(ctx, v)
	}
	promptText := predictors.BuildPrompt(ctx, v, sel, m.Ranked() && len(sel) > 0)
	resp, err := p.Query(promptText)
	if err != nil {
		return llm.Response{}, nil, fmt.Errorf("core: query for node %d: %w", v, err)
	}
	return resp, sel, nil
}

// ExecuteQueryVanilla issues a vanilla zero-shot query (no neighbor
// text) for node v.
func ExecuteQueryVanilla(ctx *predictors.Context, p llm.Predictor, v tag.NodeID) (llm.Response, error) {
	resp, err := p.Query(predictors.BuildPrompt(ctx, v, nil, false))
	if err != nil {
		return llm.Response{}, fmt.Errorf("core: vanilla query for node %d: %w", v, err)
	}
	return resp, nil
}

// Execute runs a plan in order with no boosting: every query sees only
// the labels present in ctx.Known at the start (the paper's baseline
// execution mode).
func Execute(ctx *predictors.Context, m predictors.Method, p llm.Predictor, plan Plan) (*Results, error) {
	rec := obs.Active(ctx.Obs)
	live := obs.Enabled(rec)
	res := &Results{Pred: make(map[tag.NodeID]string, len(plan.Queries)), Rounds: 1}
	for _, v := range plan.Queries {
		pruned := plan.Prune[v]
		var span *obs.Span
		var start time.Time
		if live {
			span = rec.StartSpan("core.query", "mode", "plain", "node", strconv.Itoa(int(v)))
			start = time.Now()
		}
		resp, sel, err := ExecuteQuery(ctx, m, p, v, pruned)
		if live {
			rec.Observe(metricQuerySeconds, time.Since(start).Seconds(), "mode", "plain")
			span.End()
		}
		if err != nil {
			rec.Add(metricQueryErrors, 1, "mode", "plain")
			return nil, err
		}
		if len(sel) > 0 {
			res.Equipped++
		}
		recordQuery(rec, "plain", resp, pruned, len(sel) > 0)
		res.Pred[v] = resp.Category
		res.Meter.AddQuery(resp.InputTokens, resp.OutputTokens)
	}
	return res, nil
}

// TauForBudget computes the pruning fraction τ ∈ [0, 1] implied by a
// token budget B (Section V-C1): B = τ·|V_Q|·(T_v − T_N) + (1−τ)·|V_Q|·T_v,
// where T_v is the mean tokens of a full query and T_N the mean tokens
// of its neighbor text. The result is clamped to [0, 1]: budgets above
// full cost need no pruning, budgets below the all-pruned cost cannot
// be met and yield τ = 1.
func TauForBudget(budget float64, numQueries int, tokensPerQuery, tokensNeighbor float64) float64 {
	if numQueries <= 0 || tokensNeighbor <= 0 {
		return 0
	}
	n := float64(numQueries)
	tau := (n*tokensPerQuery - budget) / (n * tokensNeighbor)
	if tau < 0 {
		return 0
	}
	if tau > 1 {
		return 1
	}
	return tau
}

// EstimateQueryTokens estimates the mean total prompt tokens and mean
// neighbor-text tokens per query for the given context/method by
// building (but not executing) the prompts of a sample of queries. It
// implements the paper's footnote that both averages "can be estimated
// through statistical analysis or approximation".
func EstimateQueryTokens(ctx *predictors.Context, m predictors.Method, queries []tag.NodeID, sample int) (perQuery, perNeighborText float64) {
	if len(queries) == 0 {
		return 0, 0
	}
	if sample <= 0 || sample > len(queries) {
		sample = len(queries)
	}
	var full, bare float64
	for _, v := range queries[:sample] {
		sel := m.Select(ctx, v)
		withNb := predictors.BuildPrompt(ctx, v, sel, m.Ranked() && len(sel) > 0)
		vanilla := predictors.BuildPrompt(ctx, v, nil, false)
		full += float64(token.Count(withNb))
		bare += float64(token.Count(vanilla))
	}
	n := float64(sample)
	return full / n, (full - bare) / n
}
