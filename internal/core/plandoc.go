package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/tag"
)

// Plan persistence: an execution plan serializes to a versioned JSON
// document so a planning phase (possibly expensive — it fits the
// inadequacy measure) can run once and its plan be audited, diffed and
// executed later or elsewhere.

// planDocFormat is bumped on breaking schema changes.
const planDocFormat = 1

// planDoc is the on-disk representation of a Plan.
type planDoc struct {
	Format  int          `json:"format"`
	Queries []tag.NodeID `json:"queries"`
	Pruned  []tag.NodeID `json:"pruned,omitempty"`
}

// SavePlan writes the plan as one JSON document. The pruned set is
// stored sorted for stable diffs.
func SavePlan(w io.Writer, plan Plan) error {
	if err := validatePlan(plan); err != nil {
		return err
	}
	doc := planDoc{Format: planDocFormat, Queries: plan.Queries}
	for v := range plan.Prune {
		if plan.Prune[v] {
			doc.Pruned = append(doc.Pruned, v)
		}
	}
	sort.Slice(doc.Pruned, func(i, j int) bool { return doc.Pruned[i] < doc.Pruned[j] })
	return json.NewEncoder(w).Encode(&doc)
}

// LoadPlan reads a plan written by SavePlan and validates it: known
// format, no duplicate queries, pruned ⊆ queries.
func LoadPlan(r io.Reader) (Plan, error) {
	var doc planDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return Plan{}, fmt.Errorf("core: decoding plan: %w", err)
	}
	if doc.Format != planDocFormat {
		return Plan{}, fmt.Errorf("core: plan format %d not supported (want %d)", doc.Format, planDocFormat)
	}
	plan := Plan{Queries: doc.Queries, Prune: make(map[tag.NodeID]bool, len(doc.Pruned))}
	inQueries := make(map[tag.NodeID]bool, len(doc.Queries))
	for _, v := range doc.Queries {
		if inQueries[v] {
			return Plan{}, fmt.Errorf("core: plan has duplicate query %d", v)
		}
		inQueries[v] = true
	}
	for _, v := range doc.Pruned {
		if !inQueries[v] {
			return Plan{}, fmt.Errorf("core: plan prunes node %d which it does not query", v)
		}
		plan.Prune[v] = true
	}
	if err := validatePlan(plan); err != nil {
		return Plan{}, err
	}
	return plan, nil
}
