package core

import (
	"testing"

	"repro/internal/predictors"
	"repro/internal/prompt"
	"repro/internal/token"
)

// The compression/estimator contract, as properties:
//
//  1. compression never inflates an estimate (per-prompt token counts
//     only shrink, so the means shrink too), and the per-level means are
//     monotone non-increasing (higher level keeps a subset of spans);
//  2. any budget feasible for TauForBudget on uncompressed estimates
//     stays feasible on compressed ones (the all-pruned floor is the
//     mean vanilla cost, which compression only lowers);
//  3. the cache and the compressor never double-discount: the cache
//     lookup sees the *compressed* prompt, an all-warm cache zeroes
//     both estimates, and warming one prompt removes exactly that
//     prompt's contribution.

func compressFixture(t testing.TB) (*fixture, predictors.Method) {
	fx := newFixture(t, 300, 60, 53)
	fx.ctx.IncludeAbstracts = true // compression's whole target is abstract text
	return fx, predictors.KHopRandom{K: 1}
}

func TestEstimateCompressedMonotoneInLevel(t *testing.T) {
	fx, m := compressFixture(t)
	prev := -1.0
	prevNb := -1.0
	for level := 0; level <= prompt.MaxCompressLevel; level++ {
		comp := prompt.Compressor{Level: level}
		perQuery, perNb := EstimateQueryTokensCompressed(fx.ctx, m, fx.split.Query, 0, comp, nil)
		if perQuery <= 0 {
			t.Fatalf("level %d: perQuery=%v, want > 0", level, perQuery)
		}
		if prev >= 0 && perQuery > prev {
			t.Errorf("level %d inflates perQuery: %v > %v at level %d", level, perQuery, prev, level-1)
		}
		if level > 0 && prevNb >= 0 && perNb > prevNb {
			// Higher level keeps a subset of each abstract's spans in
			// both the equipped and the vanilla prompt, so the mean
			// neighbor-text tokens shrink too.
			t.Errorf("level %d inflates perNeighbor: %v > %v", level, perNb, prevNb)
		}
		prev, prevNb = perQuery, perNb
	}

	// A token budget can only cut further below its level's estimate.
	base, _ := EstimateQueryTokensCompressed(fx.ctx, m, fx.split.Query, 0, prompt.Compressor{Level: 1}, nil)
	tight, _ := EstimateQueryTokensCompressed(fx.ctx, m, fx.split.Query, 0, prompt.Compressor{Level: 1, TargetTokens: 120}, nil)
	if tight > base {
		t.Errorf("TargetTokens inflated the estimate: %v > %v", tight, base)
	}
}

func TestTauForBudgetFeasibilityComposesWithCompression(t *testing.T) {
	fx, m := compressFixture(t)
	n := len(fx.split.Query)
	perQuery, perNb := EstimateQueryTokensCompressed(fx.ctx, m, fx.split.Query, 0, prompt.Compressor{}, nil)
	cQuery, cNb := EstimateQueryTokensCompressed(fx.ctx, m, fx.split.Query, 0, prompt.Compressor{Level: 2}, nil)
	if perNb <= 0 || cNb <= 0 {
		t.Fatalf("fixture has no neighbor text to prune (perNb=%v, cNb=%v)", perNb, cNb)
	}
	// Sweep budgets from infeasible-for-both through feasible-for-both.
	for _, frac := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 1.0, 1.2} {
		budget := frac * float64(n) * perQuery
		tau, ok := TauForBudget(budget, n, perQuery, perNb)
		cTau, cOK := TauForBudget(budget, n, cQuery, cNb)
		if ok && !cOK {
			// The all-pruned floor is n·(perQuery−perNb) = the mean
			// vanilla prompt cost, which compression only lowers — a
			// budget the uncompressed plan can meet, the compressed one
			// can too.
			t.Errorf("budget %.0f: feasible uncompressed (τ=%.3f) but infeasible compressed (τ=%.3f)",
				budget, tau, cTau)
		}
		// At the same τ the compressed plan costs no more than the
		// uncompressed plan.
		cost := func(tau, q, nb float64) float64 {
			return tau*float64(n)*(q-nb) + (1-tau)*float64(n)*q
		}
		if c, u := cost(tau, cQuery, cNb), cost(tau, perQuery, perNb); c > u+1e-6 {
			t.Errorf("budget %.0f: compressed plan costs more at τ=%.3f: %.1f > %.1f", budget, tau, c, u)
		}
	}
}

func TestEstimateCompressedCacheNoDoubleDiscount(t *testing.T) {
	fx, m := compressFixture(t)
	comp := prompt.Compressor{Level: 2}
	queries := fx.split.Query
	n := float64(len(queries))

	// An all-warm cache zeroes both estimates: every answer is already
	// on disk, so neither compression nor anything else has tokens left
	// to discount.
	if q, nb := EstimateQueryTokensCompressed(fx.ctx, m, queries, 0, comp, func(string) bool { return true }); q != 0 || nb != 0 {
		t.Fatalf("all-warm cache: estimates (%v, %v), want (0, 0)", q, nb)
	}

	// The lookup must see the compressed equipped prompt — the bytes a
	// compressed run keys its cache with. Build the first query's prompt
	// both ways.
	v := queries[0]
	sel := m.Select(fx.ctx, v)
	rawWithNb := predictors.BuildPrompt(fx.ctx, v, sel, m.Ranked() && len(sel) > 0)
	withNb := comp.Compress(rawWithNb)
	if withNb == rawWithNb {
		t.Fatal("fixture prompt unchanged by compression; properties below would be vacuous")
	}
	vanilla := comp.Compress(predictors.BuildPrompt(fx.ctx, v, nil, false))

	allQ, allNb := EstimateQueryTokensCompressed(fx.ctx, m, queries, 0, comp, nil)

	// Warming the *uncompressed* bytes must not trigger the discount:
	// a compressed run never stores that key.
	if q, nb := EstimateQueryTokensCompressed(fx.ctx, m, queries, 0, comp, func(p string) bool { return p == rawWithNb }); q != allQ || nb != allNb {
		t.Errorf("uncompressed cache key discounted a compressed run: (%v, %v) != (%v, %v)", q, nb, allQ, allNb)
	}

	// Warming the compressed bytes removes exactly that query's
	// contribution from both means — once, not once per stage.
	gotQ, gotNb := EstimateQueryTokensCompressed(fx.ctx, m, queries, 0, comp, func(p string) bool { return p == withNb })
	wantQ := allQ - float64(token.Count(withNb))/n
	wantNb := allNb - float64(token.Count(withNb)-token.Count(vanilla))/n
	const eps = 1e-9
	if diff := gotQ - wantQ; diff > eps || diff < -eps {
		t.Errorf("one-warm perQuery %v, want %v", gotQ, wantQ)
	}
	if diff := gotNb - wantNb; diff > eps || diff < -eps {
		t.Errorf("one-warm perNeighbor %v, want %v", gotNb, wantNb)
	}
}
