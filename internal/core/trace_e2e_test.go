package core

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/llm"
	"repro/internal/obs"
	"repro/internal/predictors"
	"repro/internal/promptcache"
)

// tracedConfig is the chaos execution shape of the acceptance run: a
// 3-slot replica pool with hedging, a persistent disk cache and
// retries, all feeding one batch executor.
func tracedConfig(pc *promptcache.Cache) ExecConfig {
	return ExecConfig{
		Workers:      4,
		MaxRetries:   2,
		RetryDelay:   time.Millisecond,
		ReplicaCount: 3,
		Hedge:        true,
		HedgeAfter:   5 * time.Millisecond,
		Disk:         pc,
	}
}

// newTraceRegistry returns a registry sized so a whole plan's spans
// and ledgers fit without the rings evicting.
func newTraceRegistry() *obs.Registry {
	reg := obs.NewRegistry()
	reg.SetTraceCapacity(16384)
	reg.SetLedgerCapacity(4096)
	return reg
}

// TestChaosRunProducesStitchedTraces executes a plan through the full
// stack — executor, replica pool with hedging, disk cache, fault
// injector — twice (cold then warm) and checks, for every query of
// both runs, that one stitched trace exists (every span parents back
// to the query's "core.query" root), that the ledger's billed stages
// cover the query's wall-clock, and that billed tokens across all
// ledgers sum exactly to the run's metered token spend.
func TestChaosRunProducesStitchedTraces(t *testing.T) {
	f := newFixture(t, 400, 40, 7)
	m := predictors.KHopRandom{K: 1}
	plan := Plan{Queries: f.split.Query}
	pc, err := promptcache.Open(t.TempDir(), promptcache.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()

	injected := func() llm.Predictor {
		return f.faultedSim(t, llm.FaultConfig{Seed: 11, ErrorRate: 0.15})
	}

	for _, phase := range []string{"cold", "warm"} {
		reg := newTraceRegistry()
		ctx := f.freshCtx()
		ctx.Obs = reg
		res, err := ExecuteWith(ctx, m, injected(), plan, tracedConfig(pc))
		if err != nil {
			if _, ok := err.(*QueryErrors); !ok {
				t.Fatalf("%s run: %v", phase, err)
			}
		}
		verifyStitchedTraces(t, phase, reg, res, len(plan.Queries))
	}
}

// verifyStitchedTraces checks the per-query trace/ledger invariants on
// one finished run.
func verifyStitchedTraces(t *testing.T, phase string, reg *obs.Registry, res *Results, queries int) {
	t.Helper()
	ledgers := reg.Ledgers()
	if len(ledgers) != queries {
		t.Fatalf("%s: %d ledgers for %d queries", phase, len(ledgers), queries)
	}

	billedTokens := 0
	sawPool, sawCache := false, false
	for _, led := range ledgers {
		billedTokens += led.BilledTokens
		if a := led.Attribution(); a < 0.9 {
			t.Errorf("%s: query %s attribution %.2f < 0.9 (total %v, billed %v)",
				phase, led.Name, a, led.Total, led.BilledWall)
		}

		spans := reg.TraceByID(led.TraceID)
		if len(spans) == 0 {
			t.Fatalf("%s: no spans for trace %s", phase, led.TraceID)
		}
		byID := make(map[string]obs.Trace, len(spans))
		names := make(map[string]int, len(spans))
		var root obs.Trace
		for _, sp := range spans {
			byID[sp.SpanID] = sp
			names[sp.Name]++
			if sp.Name == "core.query" {
				root = sp
			}
		}
		if root.SpanID == "" {
			t.Fatalf("%s: trace %s has no core.query root (spans: %v)", phase, led.TraceID, names)
		}
		if root.ParentID != "" {
			t.Errorf("%s: core.query root has parent %s", phase, root.ParentID)
		}
		// Every span must chain to the root through in-trace parents —
		// one stitched tree, no orphans.
		for _, sp := range spans {
			cur, hops := sp, 0
			for cur.ParentID != "" {
				parent, ok := byID[cur.ParentID]
				if !ok {
					t.Fatalf("%s: span %s (%s) has parent %s outside trace %s",
						phase, sp.Name, sp.SpanID, cur.ParentID, led.TraceID)
				}
				cur = parent
				if hops++; hops > len(spans) {
					t.Fatalf("%s: parent cycle in trace %s", phase, led.TraceID)
				}
			}
			if cur.SpanID != root.SpanID {
				t.Errorf("%s: span %s roots at %s, not core.query", phase, sp.Name, cur.Name)
			}
		}
		if names["batch.request"] == 0 {
			t.Errorf("%s: trace %s has no batch.request span (names: %v)", phase, led.TraceID, names)
		}
		if names["pool.attempt"] > 0 {
			sawPool = true
		}
		if names["batch.cache"] > 0 {
			sawCache = true
		}
	}

	if want := res.Meter.InputTokens() + res.Meter.OutputTokens(); billedTokens != want {
		t.Errorf("%s: billed tokens %d != metered spend %d", phase, billedTokens, want)
	}
	switch phase {
	case "cold":
		if !sawPool {
			t.Errorf("cold run executed no query through the pool")
		}
	case "warm":
		if !sawCache {
			t.Errorf("warm run served no query from the cache tier")
		}
	}
}

// TestSLOVerdictEndToEnd drives real plan executions into the SLO
// engine and asserts /debug/slo is deterministic: a generous objective
// passes with HTTP 200, an unmeetable one fails with HTTP 503 and a
// burn rate that accounts for every query.
func TestSLOVerdictEndToEnd(t *testing.T) {
	f := newFixture(t, 300, 25, 9)
	m := predictors.KHopRandom{K: 1}
	plan := Plan{Queries: f.split.Query}

	runWith := func(objective time.Duration) *obs.Registry {
		reg := newTraceRegistry()
		reg.SetSLO(obs.SLO{Name: "query_latency", Objective: objective, Percentile: 0.99})
		ctx := f.freshCtx()
		ctx.Obs = reg
		if _, err := ExecuteWith(ctx, m, f.sim, plan, ExecConfig{Workers: 2}); err != nil {
			t.Fatalf("objective %v: %v", objective, err)
		}
		return reg
	}

	// Generous objective: no query takes an hour.
	pass := runWith(time.Hour)
	rw := httptest.NewRecorder()
	obs.SLOHandler(pass).ServeHTTP(rw, httptest.NewRequest("GET", "/debug/slo", nil))
	if rw.Code != 200 {
		t.Fatalf("generous SLO: status %d, body %s", rw.Code, rw.Body.String())
	}
	rep := pass.SLOReport()
	if !rep.Pass || rep.Violations != 0 || rep.Samples != len(plan.Queries) {
		t.Fatalf("generous SLO report: %+v", rep)
	}

	// Unmeetable objective: every query outlives a nanosecond.
	fail := runWith(time.Nanosecond)
	rw = httptest.NewRecorder()
	obs.SLOHandler(fail).ServeHTTP(rw, httptest.NewRequest("GET", "/debug/slo", nil))
	if rw.Code != 503 {
		t.Fatalf("unmeetable SLO: status %d, body %s", rw.Code, rw.Body.String())
	}
	if !strings.Contains(rw.Body.String(), `"pass": false`) {
		t.Fatalf("unmeetable SLO body: %s", rw.Body.String())
	}
	rep = fail.SLOReport()
	if rep.Pass || rep.Violations != uint64(len(plan.Queries)) {
		t.Fatalf("unmeetable SLO report: %+v", rep)
	}
}

// TestBoostRunLinksQueryTracesToRounds checks the boost path's trace
// shape: a core.plan trace containing one core.round span per round,
// and every query root carrying plan_trace/round attributes that link
// it back.
func TestBoostRunLinksQueryTracesToRounds(t *testing.T) {
	f := newFixture(t, 300, 20, 5)
	m := predictors.KHopRandom{K: 1}
	reg := newTraceRegistry()
	ctx := f.freshCtx()
	ctx.Obs = reg
	res, traces, err := BoostWith(ctx, m, f.sim, Plan{Queries: f.split.Query},
		DefaultBoostConfig(), ExecConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	var planTrace string
	rounds := 0
	queryRoots := 0
	for _, sp := range reg.Traces() {
		switch sp.Name {
		case "core.plan":
			if sp.Attrs["mode"] == "boost" {
				planTrace = sp.TraceID
			}
		case "core.round":
			rounds++
		case "core.query":
			if sp.ParentID != "" {
				t.Errorf("core.query is not a root (parent %s)", sp.ParentID)
			}
			queryRoots++
			if sp.Attrs["round"] == "" {
				t.Errorf("core.query missing round attribute: %v", sp.Attrs)
			}
		}
	}
	if planTrace == "" {
		t.Fatal("no boost core.plan span recorded")
	}
	if rounds != res.Rounds || len(traces) != res.Rounds {
		t.Errorf("core.round spans = %d, want %d rounds", rounds, res.Rounds)
	}
	if queryRoots != len(f.split.Query) {
		t.Errorf("core.query roots = %d, want %d", queryRoots, len(f.split.Query))
	}
	// Round spans live in the plan's trace (rounds are children).
	for _, sp := range reg.TraceByID(planTrace) {
		if sp.Name == "core.round" && sp.ParentID == "" {
			t.Errorf("core.round is unparented inside the plan trace")
		}
	}
	for _, sp := range reg.Traces() {
		if sp.Name == "core.query" && sp.Attrs["plan_trace"] != planTrace {
			t.Errorf("core.query plan_trace = %q, want %q", sp.Attrs["plan_trace"], planTrace)
		}
	}
}
