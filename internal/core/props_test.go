package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/llm"
	"repro/internal/predictors"
	"repro/internal/tag"
)

// --- TauForBudget properties -----------------------------------------

// TestTauForBudgetProperties: τ is always in [0,1], monotonically
// non-increasing in the budget, and inverts the Section V-C cost
// equation inside the feasible band.
func TestTauForBudgetProperties(t *testing.T) {
	f := func(rawBudget, rawNeighbor uint16, rawQueries uint8) bool {
		n := int(rawQueries%200) + 1
		perNeighbor := float64(rawNeighbor%400) + 1
		perQuery := perNeighbor + 100 // full query always costs more
		budget := float64(rawBudget)

		tau, ok := TauForBudget(budget, n, perQuery, perNeighbor)
		if tau < 0 || tau > 1 || math.IsNaN(tau) {
			return false
		}
		// ok iff the budget covers the cost at the returned τ.
		cost := tau*float64(n)*(perQuery-perNeighbor) + (1-tau)*float64(n)*perQuery
		if ok != (budget >= cost-1e-6*budget-1e-6) {
			return false
		}
		// Monotonic: more budget never prunes more.
		if tau2, _ := TauForBudget(budget+500, n, perQuery, perNeighbor); tau2 > tau {
			return false
		}
		// Inside the feasible band the equation holds exactly.
		if tau > 0 && tau < 1 {
			if math.Abs(cost-budget) > 1e-6*budget+1e-6 {
				return false
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTauForBudgetEndpoints(t *testing.T) {
	// Budget >= full cost: nothing pruned.
	if tau, ok := TauForBudget(1e12, 100, 500, 100); tau != 0 || !ok {
		t.Errorf("huge budget: τ=%v ok=%v, want 0 true", tau, ok)
	}
	// Budget of zero: everything pruned, and explicitly infeasible.
	if tau, ok := TauForBudget(0, 100, 500, 100); tau != 1 || ok {
		t.Errorf("zero budget: τ=%v ok=%v, want 1 false", tau, ok)
	}
	// Budget exactly the all-pruned cost: τ=1 and feasible.
	if tau, ok := TauForBudget(40_000, 100, 500, 100); tau != 1 || !ok {
		t.Errorf("all-pruned budget: τ=%v ok=%v, want 1 true", tau, ok)
	}
	// Degenerate inputs never panic and return 0.
	if tau, ok := TauForBudget(100, 0, 500, 100); tau != 0 || !ok {
		t.Errorf("no queries: τ=%v ok=%v, want 0 true", tau, ok)
	}
	// Zero neighbor tokens: pruning saves nothing, so feasibility is
	// decided by the budget outright (this used to return τ=0 silently).
	if tau, ok := TauForBudget(100, 10, 500, 0); tau != 0 || ok {
		t.Errorf("no neighbor tokens, tiny budget: τ=%v ok=%v, want 0 false", tau, ok)
	}
	if tau, ok := TauForBudget(5_000, 10, 500, 0); tau != 0 || !ok {
		t.Errorf("no neighbor tokens, full budget: τ=%v ok=%v, want 0 true", tau, ok)
	}
}

// --- Plan construction properties ------------------------------------

// TestPrunePlanProperties: for any τ, the plan executes every query
// exactly once, prunes round(τ·|Q|) of them, and the pruned set is a
// prefix of the inadequacy ranking (the most saturated queries).
func TestPrunePlanProperties(t *testing.T) {
	fx := newFixture(t, 400, 120, 21)
	iq, err := FitInadequacy(fx.g, fx.split.Labeled, fx.sim, "paper", DefaultInadequacyConfig())
	if err != nil {
		t.Fatal(err)
	}
	order, scores := iq.Rank(fx.g, fx.split.Query)
	if len(order) != len(fx.split.Query) || len(scores) != len(order) {
		t.Fatalf("Rank sizes: order=%d scores=%d queries=%d", len(order), len(scores), len(fx.split.Query))
	}
	ordered := make([]float64, len(order))
	for i, v := range order {
		ordered[i] = scores[v]
	}
	if !sort.Float64sAreSorted(ordered) {
		t.Fatal("Rank scores not ascending along the returned order")
	}

	for _, tau := range []float64{-0.5, 0, 0.1, 0.25, 0.5, 0.99, 1, 2} {
		plan := PrunePlan(iq, fx.g, fx.split.Query, tau)
		clamped := math.Min(1, math.Max(0, tau))
		wantPruned := int(clamped*float64(len(order)) + 0.5)
		if len(plan.Prune) != wantPruned {
			t.Errorf("τ=%v: pruned %d, want %d", tau, len(plan.Prune), wantPruned)
		}
		// Same multiset of queries.
		if len(plan.Queries) != len(fx.split.Query) {
			t.Fatalf("τ=%v: plan has %d queries, want %d", tau, len(plan.Queries), len(fx.split.Query))
		}
		seen := map[tag.NodeID]bool{}
		for _, v := range plan.Queries {
			if seen[v] {
				t.Fatalf("τ=%v: duplicate query %d", tau, v)
			}
			seen[v] = true
		}
		// Pruned = the wantPruned lowest-score prefix.
		for i, v := range order {
			if (i < wantPruned) != plan.Prune[v] {
				t.Fatalf("τ=%v: rank %d (node %d) prune flag mismatch", tau, i, v)
			}
		}
	}
}

func TestRandomPrunePlanProperties(t *testing.T) {
	queries := make([]tag.NodeID, 173)
	for i := range queries {
		queries[i] = tag.NodeID(i * 3)
	}
	f := func(rawTau uint8, seed uint64) bool {
		tau := float64(rawTau) / 255
		plan := RandomPrunePlan(queries, tau, seed)
		want := int(tau*float64(len(queries)) + 0.5)
		if len(plan.Prune) != want {
			return false
		}
		// Determinism: same seed, same choice.
		again := RandomPrunePlan(queries, tau, seed)
		if len(again.Prune) != len(plan.Prune) {
			return false
		}
		for v := range plan.Prune {
			if !again.Prune[v] {
				return false
			}
		}
		// Pruned nodes must come from the query set.
		in := map[tag.NodeID]bool{}
		for _, v := range queries {
			in[v] = true
		}
		for v := range plan.Prune {
			if !in[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// --- Boosting invariants ----------------------------------------------

// TestBoostExecutionInvariants: every query executes exactly once, no
// labeled node is ever re-queried, pseudo-labels only ever grow the
// visible set, and round indices are dense.
func TestBoostExecutionInvariants(t *testing.T) {
	fx := newFixture(t, 500, 150, 31)
	originalKnown := len(fx.ctx.Known)
	plan := Plan{Queries: fx.split.Query}
	res, trace, err := Boost(fx.ctx, predictors.KHopRandom{K: 2}, fx.sim, plan, DefaultBoostConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pred) != len(fx.split.Query) {
		t.Fatalf("predicted %d of %d queries", len(res.Pred), len(fx.split.Query))
	}
	executed := 0
	for i, r := range trace {
		if r.Round != i+1 {
			t.Errorf("round indices not dense: trace[%d].Round=%d", i, r.Round)
		}
		if r.Executed <= 0 {
			t.Errorf("round %d executed nothing", r.Round)
		}
		executed += r.Executed
	}
	if executed != len(fx.split.Query) {
		t.Errorf("rounds executed %d total, want %d", executed, len(fx.split.Query))
	}
	if want := originalKnown + len(fx.split.Query); len(fx.ctx.Known) != want {
		t.Errorf("visible set = %d entries after boosting, want %d", len(fx.ctx.Known), want)
	}
	// Every query's pseudo-label landed in Known and matches Pred.
	for _, v := range fx.split.Query {
		if fx.ctx.Known[v] != res.Pred[v] {
			t.Fatalf("node %d: Known=%q Pred=%q", v, fx.ctx.Known[v], res.Pred[v])
		}
	}
	// γ thresholds never relax below their floor within the trace.
	for _, r := range trace {
		if r.Gamma1 < 0 || r.Gamma2 > len(fx.g.Classes)+1 {
			t.Errorf("round %d relaxed beyond sane bounds: γ1=%d γ2=%d", r.Round, r.Gamma1, r.Gamma2)
		}
	}
}

// --- Failure injection ------------------------------------------------

// flaky fails on the k-th query and afterwards.
type flaky struct {
	inner llm.Predictor
	after int
	n     int
}

func (f *flaky) Name() string { return "flaky" }

func (f *flaky) Query(p string) (llm.Response, error) {
	f.n++
	if f.n > f.after {
		return llm.Response{}, fmt.Errorf("injected outage on call %d", f.n)
	}
	return f.inner.Query(p)
}

func TestExecutePropagatesPredictorFailure(t *testing.T) {
	fx := newFixture(t, 300, 60, 41)
	p := &flaky{inner: fx.sim, after: 10}
	_, err := Execute(fx.ctx, predictors.KHopRandom{K: 1}, p, Plan{Queries: fx.split.Query})
	if err == nil {
		t.Fatal("mid-batch predictor failure not propagated")
	}
	if !strings.Contains(err.Error(), "injected outage") {
		t.Errorf("error %q lost the cause", err)
	}
}

func TestBoostPropagatesPredictorFailure(t *testing.T) {
	fx := newFixture(t, 300, 60, 43)
	p := &flaky{inner: fx.sim, after: 5}
	_, _, err := Boost(fx.ctx, predictors.KHopRandom{K: 1}, p, Plan{Queries: fx.split.Query}, DefaultBoostConfig())
	if err == nil {
		t.Fatal("mid-round predictor failure not propagated")
	}
	var wrapped error = err
	for wrapped != nil {
		if strings.Contains(wrapped.Error(), "injected outage") {
			return
		}
		wrapped = errors.Unwrap(wrapped)
	}
	t.Errorf("error %q lost the cause", err)
}

func TestFitInadequacyPropagatesPredictorFailure(t *testing.T) {
	fx := newFixture(t, 300, 60, 47)
	p := &flaky{inner: fx.sim, after: 0}
	if _, err := FitInadequacy(fx.g, fx.split.Labeled, p, "paper", DefaultInadequacyConfig()); err == nil {
		t.Fatal("calibration failure not propagated")
	}
}
