package core

import (
	"context"
	"fmt"
	"sort"
	"strconv"

	"repro/internal/batch"
	"repro/internal/encode"
	"repro/internal/llm"
	"repro/internal/nn"
	"repro/internal/prompt"
	"repro/internal/tag"
	"repro/internal/xrand"
)

// InadequacyConfig configures the text-inadequacy measure of Section
// V-A1. DefaultInadequacyConfig mirrors the paper's settings.
type InadequacyConfig struct {
	// MLP configures the surrogate classifier f_θ1.
	MLP nn.MLPConfig
	// Folds is the cross-validation fold count used to average the
	// surrogate's class probabilities (the paper uses 3).
	Folds int
	// CalibPerClass sizes the LLM-bias calibration subset V_L^c at
	// CalibPerClass × K nodes (the paper uses 10 × K).
	CalibPerClass int
	// MaxFeatures caps the BoW/TF-IDF feature dimension fed to the
	// surrogate.
	MaxFeatures int
	// Ridge regularizes the channel-merging linear regression g_θ2.
	Ridge float64
	// Seed drives fold assignment and calibration sampling.
	Seed uint64
	// Exec tunes how the calibration queries are dispatched (workers,
	// QPS, retries, budget); the zero value is serial. Calibration
	// prompts are independent zero-shot queries, so their statistics are
	// identical for any worker count.
	Exec ExecConfig
}

// DefaultInadequacyConfig returns the paper's small-dataset setting: a
// linear surrogate with learning rate 0.01 and no weight decay, 3-fold
// CV, and a 10×K calibration subset.
func DefaultInadequacyConfig() InadequacyConfig {
	return InadequacyConfig{
		MLP:           nn.DefaultMLPConfig(),
		Folds:         3,
		CalibPerClass: 10,
		MaxFeatures:   512,
		Ridge:         1e-4,
		Seed:          1,
	}
}

// Inadequacy scores how insufficient a node's own text is for
// classification: D(t_i) = g_θ2(H(p_i) ‖ b_i), a proxy for H(y_i|t_i).
// Smaller scores indicate saturated nodes. Obtain one via
// FitInadequacy.
type Inadequacy struct {
	enc      *encode.Encoder
	ensemble *nn.Ensemble
	w        []float64 // per-class LLM misclassification ratios
	reg      *nn.LinReg
	// CalibrationQueries counts the LLM queries spent estimating w —
	// the strategy's (small) fixed overhead.
	CalibrationQueries int
}

// FitInadequacy builds the measure for one dataset:
//
//  1. encode all node texts (TF-IDF, capped dimension) and train the
//     surrogate classifier on the labeled set with k-fold CV;
//  2. query the LLM zero-shot on the calibration subset V_L^c to
//     estimate per-class misclassification ratios w;
//  3. fit the linear regression g_θ2 mapping (H(p_i) ‖ b_i) to the
//     LLM's observed error indicator on V_L^c.
//
// nodeType labels calibration prompts ("paper"/"product").
func FitInadequacy(g *tag.Graph, labeled []tag.NodeID, p llm.Predictor, nodeType string, cfg InadequacyConfig) (*Inadequacy, error) {
	if len(labeled) == 0 {
		return nil, fmt.Errorf("core: inadequacy needs a labeled set")
	}
	if cfg.Folds <= 0 || cfg.CalibPerClass <= 0 {
		return nil, fmt.Errorf("core: inadequacy config needs positive folds and calibration size")
	}
	k := len(g.Classes)

	// Step 1: surrogate classifier on text features.
	corpus := make([]string, g.NumNodes())
	for i := range corpus {
		corpus[i] = g.Text(tag.NodeID(i))
	}
	enc := encode.NewTFIDF(corpus, cfg.MaxFeatures)
	X := make([][]float64, len(labeled))
	y := make([]int, len(labeled))
	for i, v := range labeled {
		X[i] = enc.Encode(corpus[v])
		y[i] = g.Nodes[v].Label
	}
	mlpCfg := cfg.MLP
	mlpCfg.Seed = cfg.Seed
	ensemble := nn.TrainKFold(X, y, k, cfg.Folds, mlpCfg)

	// Step 2: LLM category-bias calibration on V_L^c.
	rng := xrand.New(cfg.Seed).SplitString("core/calibration")
	calibSize := cfg.CalibPerClass * k
	if calibSize > len(labeled) {
		calibSize = len(labeled)
	}
	calib := make([]tag.NodeID, 0, calibSize)
	for _, i := range rng.Sample(len(labeled), calibSize) {
		calib = append(calib, labeled[i])
	}
	// One zero-shot query per calibration node provides both the
	// per-class misclassification ratios w (step 2) and the per-node
	// error indicators that supervise g_θ2 (step 3) — V_L^c is paid for
	// exactly once, as in the paper. The queries are independent, so
	// they dispatch through the batch executor under cfg.Exec and the
	// tallies are applied in calibration order.
	ex, err := batch.New(p, cfg.Exec.batchConfig(nil))
	if err != nil {
		return nil, fmt.Errorf("core: bias calibration: %w", err)
	}
	reqs := make([]batch.Request, len(calib))
	for i, v := range calib {
		reqs[i] = batch.Request{ID: strconv.Itoa(int(v)), Prompt: prompt.Build(prompt.Request{
			TargetTitle:    g.Nodes[v].Title,
			TargetAbstract: g.Nodes[v].Abstract,
			Categories:     g.Classes,
			NodeType:       nodeType,
		})}
	}
	bres, err := ex.Execute(context.Background(), reqs)
	if err != nil {
		return nil, fmt.Errorf("core: bias calibration: %w", err)
	}
	// Failed calibration queries are dropped rather than voiding the
	// whole fit: the bias ratios and the channel regression are sample
	// estimates either way, and a permanently-failing backend prompt
	// must not take the measure down with it. Only an all-failed
	// calibration is fatal.
	wrong := make([]float64, k)
	count := make([]float64, k)
	okCalib := make([]tag.NodeID, 0, len(calib))
	errIndicator := make([]float64, 0, len(calib))
	var firstErr error
	for i, v := range calib {
		o := bres.Outcomes[reqs[i].ID]
		if o.Err != nil {
			if firstErr == nil {
				firstErr = o.Err
			}
			continue
		}
		y := g.Nodes[v].Label
		count[y]++
		indicator := 0.0
		if o.Response.Category != g.Classes[y] {
			wrong[y]++
			indicator = 1
		}
		okCalib = append(okCalib, v)
		errIndicator = append(errIndicator, indicator)
	}
	if len(okCalib) == 0 {
		return nil, fmt.Errorf("core: bias calibration: all %d queries failed; first: %w", len(calib), firstErr)
	}
	w := make([]float64, k)
	for c := range w {
		if count[c] > 0 {
			w[c] = wrong[c] / count[c]
		}
	}

	iq := &Inadequacy{enc: enc, ensemble: ensemble, w: w, CalibrationQueries: len(calib)}

	// Step 3: fit the channel-merging regression on the calibration
	// nodes that actually got an answer.
	feats := make([][]float64, len(okCalib))
	for i, v := range okCalib {
		h, b := iq.channels(corpus[v])
		feats[i] = []float64{h, b}
	}
	targets := errIndicator
	reg, err := nn.FitLinReg(feats, targets, cfg.Ridge)
	if err != nil {
		return nil, fmt.Errorf("core: channel regression: %w", err)
	}
	iq.reg = reg
	return iq, nil
}

// zeroShot issues a vanilla zero-shot query for node v.
func zeroShot(p llm.Predictor, g *tag.Graph, v tag.NodeID, nodeType string) (llm.Response, error) {
	pr := prompt.Build(prompt.Request{
		TargetTitle:    g.Nodes[v].Title,
		TargetAbstract: g.Nodes[v].Abstract,
		Categories:     g.Classes,
		NodeType:       nodeType,
	})
	return p.Query(pr)
}

// channels computes the two inadequacy channels for a text: the
// surrogate's predictive entropy H(p_i) (Eq. 8) and the bias channel
// b_i = p_i · wᵀ (Eq. 9).
func (iq *Inadequacy) channels(text string) (entropy, bias float64) {
	probs := iq.ensemble.Probs(iq.enc.Encode(text))
	h := nn.Entropy(probs)
	var b float64
	for c, pc := range probs {
		b += pc * iq.w[c]
	}
	return h, b
}

// Score returns D(t) for one text (Eq. 10). Lower means more saturated.
func (iq *Inadequacy) Score(text string) float64 {
	h, b := iq.channels(text)
	return iq.reg.Predict([]float64{h, b})
}

// ScoreNode returns D(t_i) for node v of g.
func (iq *Inadequacy) ScoreNode(g *tag.Graph, v tag.NodeID) float64 {
	return iq.Score(g.Text(v))
}

// ChannelsNode exposes the raw (entropy, bias) channels of node v, used
// by the ablation benchmarks.
func (iq *Inadequacy) ChannelsNode(g *tag.Graph, v tag.NodeID) (entropy, bias float64) {
	return iq.channels(g.Text(v))
}

// Weights returns the misclassification-ratio vector w.
func (iq *Inadequacy) Weights() []float64 {
	out := make([]float64, len(iq.w))
	copy(out, iq.w)
	return out
}

// Rank orders the queries by ascending D(t_i) — saturated nodes first —
// returning the ordered IDs and a score lookup (step 6 of Algorithm 1).
func (iq *Inadequacy) Rank(g *tag.Graph, queries []tag.NodeID) ([]tag.NodeID, map[tag.NodeID]float64) {
	scores := make(map[tag.NodeID]float64, len(queries))
	order := make([]tag.NodeID, len(queries))
	copy(order, queries)
	for _, v := range queries {
		scores[v] = iq.ScoreNode(g, v)
	}
	sort.SliceStable(order, func(i, j int) bool {
		if scores[order[i]] != scores[order[j]] {
			return scores[order[i]] < scores[order[j]]
		}
		return order[i] < order[j]
	})
	return order, scores
}
