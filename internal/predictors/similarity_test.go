package predictors

import (
	"testing"

	"repro/internal/tag"
	"repro/internal/xrand"
)

func TestNewSimilarityDense(t *testing.T) {
	vecs := [][]float64{
		{1, 0, 0},
		{0.9, 0.1, 0},
		{0, 0, 1},
	}
	s := NewSimilarityDense(vecs)
	if same := s.Score(0, 1); same <= s.Score(0, 2) {
		t.Errorf("aligned pair scored %.3f, orthogonal pair %.3f", same, s.Score(0, 2))
	}
	if self := s.Score(2, 2); self < 0.999 {
		t.Errorf("self-similarity %.3f, want 1", self)
	}
	// Zero rows are allowed and score zero.
	z := NewSimilarityDense([][]float64{{0, 0}, {1, 0}})
	if got := z.Score(0, 1); got != 0 {
		t.Errorf("zero-vector similarity %.3f, want 0", got)
	}
}

// TestSetSimilarityChangesSNSSelection verifies an injected backend
// actually drives SNS: an adversarial index that inverts similarity
// must change which neighbors rank first.
func TestSetSimilarityChangesSNSSelection(t *testing.T) {
	spec, err := tag.SpecByName("cora")
	if err != nil {
		t.Fatal(err)
	}
	g := tag.Generate(spec, 23, tag.Options{Scale: 0.2})
	split := g.SplitPerClass(xrand.New(24), 20, 100)
	newCtx := func() *Context {
		return &Context{Graph: g, Known: KnownFromSplit(g, split), M: 2, Seed: 7}
	}

	base := NewSimilarity(g)
	ctxA := newCtx()
	ctxA.SetSimilarity(base)
	ctxB := newCtx()
	anti := make([][]float64, g.NumNodes())
	for i := range anti {
		// A one-hot on node id modulo 2 dimensions: unrelated to text,
		// so rankings must differ from the TF-IDF backend's.
		v := make([]float64, 2)
		v[i%2] = 1
		anti[i] = v
	}
	ctxB.SetSimilarity(NewSimilarityDense(anti))

	diffs := 0
	for _, v := range split.Query {
		a := SNS{}.Select(ctxA, v)
		b := SNS{}.Select(ctxB, v)
		if len(a) != len(b) {
			diffs++
			continue
		}
		for i := range a {
			if a[i].ID != b[i].ID {
				diffs++
				break
			}
		}
	}
	if diffs == 0 {
		t.Error("injected similarity backend did not change any SNS selection")
	}
}
