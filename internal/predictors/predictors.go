// Package predictors implements the "LLMs as predictors" benchmark
// methods the paper optimizes (Table I and Section VI-A2): vanilla
// zero-shot, k-hop random neighbor selection, and SNS similarity-based
// neighbor selection.
//
// Methods differ only in how they select up to M neighbors for the
// prompt; prompt construction, LLM querying and token accounting are
// shared. Neighbor labels come from a Known map holding the true labels
// of V_L plus any pseudo-labels added by query boosting, which is
// exactly how the paper's strategies plug into the methods without
// modifying them.
package predictors

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/encode"
	"repro/internal/obs"
	"repro/internal/prompt"
	"repro/internal/tag"
	"repro/internal/xrand"
)

// Selected is one chosen neighbor: its node and the label the method
// may include in the prompt ("" when unknown).
type Selected struct {
	ID    tag.NodeID
	Label string
}

// CountLabeled returns |N_i^L|: how many selected neighbors carry labels.
func CountLabeled(sel []Selected) int {
	n := 0
	for _, s := range sel {
		if s.Label != "" {
			n++
		}
	}
	return n
}

// LabelConflicts returns LC_i: the number of distinct label values
// among the labeled selected neighbors (Eq. 11).
func LabelConflicts(sel []Selected) int {
	seen := map[string]bool{}
	for _, s := range sel {
		if s.Label != "" {
			seen[s.Label] = true
		}
	}
	return len(seen)
}

// Context carries everything a method needs to select neighbors and
// build prompts for one dataset.
type Context struct {
	Graph *tag.Graph
	// Known maps nodes to their visible labels: the true labels of the
	// labeled set plus pseudo-labels appended by query boosting.
	Known map[tag.NodeID]string
	// M caps the neighbors per prompt.
	M int
	// Seed drives per-node neighbor sampling. Sampling is keyed by
	// (Seed, node), so the same node draws the same neighbors regardless
	// of execution order — strategies stay comparable pair-by-pair.
	Seed uint64
	// IncludeAbstracts switches neighbor entries from title-only (the
	// paper's token-saving default) to title+abstract.
	IncludeAbstracts bool
	// NodeType / EdgeRelation label the prompt ("paper"/"citation" by
	// default).
	NodeType     string
	EdgeRelation string

	// Obs receives metrics and spans from plan execution over this
	// context; nil routes to the process-default recorder (a no-op
	// unless obs.SetDefault installed a registry).
	Obs obs.Recorder

	sim *Similarity // lazily built by SNS
}

// nodeRNG returns the deterministic stream for sampling around node v.
func (ctx *Context) nodeRNG(v tag.NodeID) *xrand.RNG {
	return xrand.New(ctx.Seed).SplitString("select").Split(uint64(v))
}

// Method selects prompt neighbors for a query node.
type Method interface {
	Name() string
	// Ranked reports whether the method orders neighbors most-related
	// first (SNS), which changes the prompt phrasing.
	Ranked() bool
	Select(ctx *Context, v tag.NodeID) []Selected
}

// label returns the visible label of u, or "".
func (ctx *Context) label(u tag.NodeID) string { return ctx.Known[u] }

// Vanilla is the zero-shot method: no neighbor text at all.
type Vanilla struct{}

// Name implements Method.
func (Vanilla) Name() string { return "vanilla zero-shot" }

// Ranked implements Method.
func (Vanilla) Ranked() bool { return false }

// Select implements Method; it always returns nil.
func (Vanilla) Select(*Context, tag.NodeID) []Selected { return nil }

// KHopRandom selects up to M neighbors within K hops, preferring
// labeled neighbors and filling the remainder uniformly from unlabeled
// ones, as in the paper's "k-hop random" baseline.
type KHopRandom struct {
	K int
}

// Name implements Method.
func (m KHopRandom) Name() string { return fmt.Sprintf("%d-hop random", m.K) }

// Ranked implements Method.
func (KHopRandom) Ranked() bool { return false }

// Select implements Method.
func (m KHopRandom) Select(ctx *Context, v tag.NodeID) []Selected {
	if m.K <= 0 {
		panic("predictors: KHopRandom needs K >= 1")
	}
	hood, _ := ctx.Graph.KHop(v, m.K)
	var labeled, unlabeled []tag.NodeID
	for _, u := range hood {
		if ctx.label(u) != "" {
			labeled = append(labeled, u)
		} else {
			unlabeled = append(unlabeled, u)
		}
	}
	rng := ctx.nodeRNG(v)
	out := make([]Selected, 0, ctx.M)
	for _, i := range rng.Sample(len(labeled), ctx.M) {
		out = append(out, Selected{ID: labeled[i], Label: ctx.label(labeled[i])})
	}
	if remaining := ctx.M - len(out); remaining > 0 {
		for _, i := range rng.Sample(len(unlabeled), remaining) {
			out = append(out, Selected{ID: unlabeled[i]})
		}
	}
	return out
}

// SNS is the similarity-based neighbor selection method [27]: it
// explores outward hop by hop (up to five hops) until it has gathered
// at least M labeled neighbors, ranks them by text similarity to the
// query node, and keeps the top M, most related first.
type SNS struct{}

// Name implements Method.
func (SNS) Name() string { return "SNS" }

// Ranked implements Method.
func (SNS) Ranked() bool { return true }

// maxSNSHops is the exploration cap from the SNS paper.
const maxSNSHops = 5

// Select implements Method.
func (SNS) Select(ctx *Context, v tag.NodeID) []Selected {
	var labeled []tag.NodeID
	for k := 1; k <= maxSNSHops; k++ {
		hood, _ := ctx.Graph.KHop(v, k)
		labeled = labeled[:0]
		for _, u := range hood {
			if ctx.label(u) != "" {
				labeled = append(labeled, u)
			}
		}
		if len(labeled) >= ctx.M {
			break
		}
	}
	if len(labeled) == 0 {
		return nil
	}
	sim := ctx.similarity()
	type scored struct {
		id tag.NodeID
		s  float64
	}
	ss := make([]scored, len(labeled))
	for i, u := range labeled {
		ss[i] = scored{id: u, s: sim.Score(v, u)}
	}
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].s != ss[j].s {
			return ss[i].s > ss[j].s
		}
		return ss[i].id < ss[j].id
	})
	n := ctx.M
	if n > len(ss) {
		n = len(ss)
	}
	out := make([]Selected, 0, n)
	for _, sc := range ss[:n] {
		out = append(out, Selected{ID: sc.id, Label: ctx.label(sc.id)})
	}
	return out
}

// Similarity caches TF-IDF sparse embeddings of all node texts and
// scores node pairs by cosine — the offline SimCSE substitute.
type Similarity struct {
	vecs []map[int]float64
}

// NewSimilarity precomputes embeddings for every node of g.
func NewSimilarity(g *tag.Graph) *Similarity {
	corpus := make([]string, g.NumNodes())
	for i := range corpus {
		corpus[i] = g.Text(tag.NodeID(i))
	}
	enc := encode.NewTFIDF(corpus, 0)
	s := &Similarity{vecs: make([]map[int]float64, len(corpus))}
	for i, text := range corpus {
		s.vecs[i] = enc.EncodeSparse(text)
	}
	return s
}

// NewSimilarityDense builds an index from precomputed dense embeddings,
// one per node — the hook for alternative text encoders (skip-gram,
// hashing) to back SNS instead of the TF-IDF default.
func NewSimilarityDense(vecs [][]float64) *Similarity {
	s := &Similarity{vecs: make([]map[int]float64, len(vecs))}
	for i, v := range vecs {
		sparse := make(map[int]float64)
		for d, x := range v {
			if x != 0 {
				sparse[d] = x
			}
		}
		s.vecs[i] = sparse
	}
	return s
}

// Score returns the similarity of nodes a and b.
func (s *Similarity) Score(a, b tag.NodeID) float64 {
	return encode.CosineSparse(s.vecs[a], s.vecs[b])
}

// similarity lazily builds (and caches) the dataset's similarity index.
func (ctx *Context) similarity() *Similarity {
	if ctx.sim == nil {
		ctx.sim = NewSimilarity(ctx.Graph)
	}
	return ctx.sim
}

// SetSimilarity installs a prebuilt similarity index (useful when
// several contexts share one dataset).
func (ctx *Context) SetSimilarity(s *Similarity) { ctx.sim = s }

// BuildPrompt renders the query prompt for node v with the selected
// neighbors, following the method's ranking convention.
func BuildPrompt(ctx *Context, v tag.NodeID, sel []Selected, ranked bool) string {
	g := ctx.Graph
	req := prompt.Request{
		TargetTitle:    g.Nodes[v].Title,
		TargetAbstract: g.Nodes[v].Abstract,
		Categories:     g.Classes,
		Ranked:         ranked,
		NodeType:       ctx.NodeType,
		EdgeRelation:   ctx.EdgeRelation,
	}
	for _, s := range sel {
		nb := prompt.Neighbor{Title: g.Nodes[s.ID].Title, Label: s.Label}
		if ctx.IncludeAbstracts {
			nb.Abstract = g.Nodes[s.ID].Abstract
		}
		req.Neighbors = append(req.Neighbors, nb)
	}
	return prompt.Build(req)
}

// KnownFromSplit builds the initial Known map from a split's labeled
// set using ground-truth class names.
func KnownFromSplit(g *tag.Graph, split tag.Split) map[tag.NodeID]string {
	known := make(map[tag.NodeID]string, len(split.Labeled))
	for _, v := range split.Labeled {
		known[v] = g.Classes[g.Nodes[v].Label]
	}
	return known
}

// Standard returns the paper's benchmark method set in its canonical
// order: 1-hop random, 2-hop random, SNS.
func Standard() []Method {
	return []Method{KHopRandom{K: 1}, KHopRandom{K: 2}, SNS{}}
}

// ByName resolves a method from its CLI spelling, the single source of
// truth shared by mqorun, mqobench and llmserve's serving tier.
func ByName(name string) (Method, error) {
	switch strings.ToLower(name) {
	case "vanilla":
		return Vanilla{}, nil
	case "1-hop", "1hop":
		return KHopRandom{K: 1}, nil
	case "2-hop", "2hop":
		return KHopRandom{K: 2}, nil
	case "sns":
		return SNS{}, nil
	default:
		return nil, fmt.Errorf("unknown method %q (vanilla, 1-hop, 2-hop, sns)", name)
	}
}
