package predictors

import (
	"strings"
	"testing"

	"repro/internal/prompt"
	"repro/internal/tag"
	"repro/internal/xrand"
)

func testContext(t testing.TB, nodes int, seed uint64) (*Context, tag.Split) {
	t.Helper()
	spec, err := tag.SmallSpec("cora", nodes)
	if err != nil {
		t.Fatal(err)
	}
	g := tag.Generate(spec, seed, tag.Options{})
	split := g.SplitPerClass(xrand.New(seed+1), 10, nodes/4)
	ctx := &Context{
		Graph: g,
		Known: KnownFromSplit(g, split),
		M:     4,
		Seed:  seed,
	}
	return ctx, split
}

func TestVanillaSelectsNothing(t *testing.T) {
	ctx, split := testContext(t, 400, 1)
	if sel := (Vanilla{}).Select(ctx, split.Query[0]); sel != nil {
		t.Fatalf("vanilla selected %v", sel)
	}
	if (Vanilla{}).Name() != "vanilla zero-shot" {
		t.Fatal("vanilla name wrong")
	}
}

func TestKHopRespectsM(t *testing.T) {
	ctx, split := testContext(t, 400, 2)
	m := KHopRandom{K: 2}
	for _, v := range split.Query[:50] {
		sel := m.Select(ctx, v)
		if len(sel) > ctx.M {
			t.Fatalf("selected %d neighbors, cap %d", len(sel), ctx.M)
		}
	}
}

func TestKHopSelectsFromNeighborhood(t *testing.T) {
	ctx, split := testContext(t, 400, 3)
	m := KHopRandom{K: 1}
	for _, v := range split.Query[:50] {
		hood, _ := ctx.Graph.KHop(v, 1)
		inHood := map[tag.NodeID]bool{}
		for _, u := range hood {
			inHood[u] = true
		}
		for _, s := range m.Select(ctx, v) {
			if !inHood[s.ID] {
				t.Fatalf("node %d selected non-neighbor %d", v, s.ID)
			}
		}
	}
}

func TestKHopPrefersLabeled(t *testing.T) {
	ctx, split := testContext(t, 600, 4)
	m := KHopRandom{K: 2}
	for _, v := range split.Query[:80] {
		hood, _ := ctx.Graph.KHop(v, 2)
		availLabeled := 0
		for _, u := range hood {
			if ctx.Known[u] != "" {
				availLabeled++
			}
		}
		sel := m.Select(ctx, v)
		gotLabeled := CountLabeled(sel)
		wantLabeled := availLabeled
		if wantLabeled > ctx.M {
			wantLabeled = ctx.M
		}
		if gotLabeled != wantLabeled {
			t.Fatalf("node %d: selected %d labeled, want %d (available %d)",
				v, gotLabeled, wantLabeled, availLabeled)
		}
	}
}

func TestKHopDeterministicPerNode(t *testing.T) {
	ctx, split := testContext(t, 400, 5)
	m := KHopRandom{K: 2}
	v := split.Query[0]
	a := m.Select(ctx, v)
	// Selecting other nodes in between must not change v's draw.
	for _, u := range split.Query[1:10] {
		m.Select(ctx, u)
	}
	b := m.Select(ctx, v)
	if len(a) != len(b) {
		t.Fatal("selection changed across calls")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("selection order-dependent")
		}
	}
}

func TestKHopLabelsMatchKnown(t *testing.T) {
	ctx, split := testContext(t, 400, 6)
	m := KHopRandom{K: 1}
	for _, v := range split.Query[:50] {
		for _, s := range m.Select(ctx, v) {
			if s.Label != ctx.Known[s.ID] {
				t.Fatalf("selected label %q != known %q", s.Label, ctx.Known[s.ID])
			}
		}
	}
}

func TestKHopPanicsOnBadK(t *testing.T) {
	ctx, split := testContext(t, 100, 7)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for K=0")
		}
	}()
	KHopRandom{K: 0}.Select(ctx, split.Query[0])
}

func TestSNSOnlyLabeledRankedBySimilarity(t *testing.T) {
	ctx, split := testContext(t, 600, 8)
	m := SNS{}
	sim := ctx.similarity()
	for _, v := range split.Query[:40] {
		sel := m.Select(ctx, v)
		if len(sel) > ctx.M {
			t.Fatalf("SNS selected %d > M", len(sel))
		}
		for i, s := range sel {
			if s.Label == "" {
				t.Fatal("SNS selected unlabeled neighbor")
			}
			if i > 0 {
				prev := sim.Score(v, sel[i-1].ID)
				cur := sim.Score(v, s.ID)
				if cur > prev+1e-12 {
					t.Fatalf("SNS ranking violated: %v then %v", prev, cur)
				}
			}
		}
	}
}

func TestSNSExpandsHopsWhenSparse(t *testing.T) {
	// With very few labeled nodes, 1-hop rarely contains them; SNS must
	// still find labeled nodes by exploring farther.
	spec, err := tag.SmallSpec("cora", 600)
	if err != nil {
		t.Fatal(err)
	}
	g := tag.Generate(spec, 9, tag.Options{})
	split := g.SplitPerClass(xrand.New(10), 2, 150)
	ctx := &Context{Graph: g, Known: KnownFromSplit(g, split), M: 4, Seed: 9}
	found := 0
	for _, v := range split.Query[:60] {
		direct := 0
		for _, u := range g.Neighbors(v) {
			if ctx.Known[u] != "" {
				direct++
			}
		}
		sel := SNS{}.Select(ctx, v)
		if len(sel) > direct {
			found++
		}
	}
	if found == 0 {
		t.Fatal("SNS never expanded beyond direct labeled neighbors")
	}
}

func TestSNSNoLabeledAnywhere(t *testing.T) {
	ctx, split := testContext(t, 300, 11)
	ctx.Known = map[tag.NodeID]string{}
	if sel := (SNS{}).Select(ctx, split.Query[0]); len(sel) != 0 {
		t.Fatalf("SNS with no labels selected %v", sel)
	}
}

func TestCountLabeledAndConflicts(t *testing.T) {
	sel := []Selected{
		{ID: 1, Label: "A"}, {ID: 2, Label: "B"}, {ID: 3, Label: "A"}, {ID: 4},
	}
	if got := CountLabeled(sel); got != 3 {
		t.Fatalf("CountLabeled = %d, want 3", got)
	}
	if got := LabelConflicts(sel); got != 2 {
		t.Fatalf("LabelConflicts = %d, want 2", got)
	}
	if got := LabelConflicts(nil); got != 0 {
		t.Fatalf("LabelConflicts(nil) = %d, want 0", got)
	}
}

func TestBuildPromptParses(t *testing.T) {
	ctx, split := testContext(t, 400, 12)
	v := split.Query[0]
	sel := KHopRandom{K: 2}.Select(ctx, v)
	p := BuildPrompt(ctx, v, sel, false)
	parsed, err := prompt.Parse(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.NeighborTexts) != len(sel) {
		t.Fatalf("prompt has %d neighbors, selected %d", len(parsed.NeighborTexts), len(sel))
	}
	if len(parsed.Categories) != len(ctx.Graph.Classes) {
		t.Fatal("prompt category list wrong")
	}
}

func TestBuildPromptAbstracts(t *testing.T) {
	ctx, split := testContext(t, 400, 13)
	v := split.Query[0]
	sel := KHopRandom{K: 1}.Select(ctx, v)
	if len(sel) == 0 {
		t.Skip("isolated query node")
	}
	short := BuildPrompt(ctx, v, sel, false)
	ctx.IncludeAbstracts = true
	long := BuildPrompt(ctx, v, sel, false)
	if len(long) <= len(short) {
		t.Fatal("IncludeAbstracts did not lengthen prompt")
	}
}

func TestBuildPromptRanked(t *testing.T) {
	ctx, split := testContext(t, 400, 14)
	v := split.Query[0]
	sel := []Selected{{ID: split.Labeled[0], Label: "Theory"}}
	p := BuildPrompt(ctx, v, sel, true)
	if !strings.Contains(p, "from most related to least related") {
		t.Fatal("ranked prompt missing phrase")
	}
}

func TestKnownFromSplit(t *testing.T) {
	ctx, split := testContext(t, 400, 15)
	g := ctx.Graph
	known := KnownFromSplit(g, split)
	if len(known) != len(split.Labeled) {
		t.Fatalf("known size %d, want %d", len(known), len(split.Labeled))
	}
	for _, v := range split.Labeled {
		if known[v] != g.Classes[g.Nodes[v].Label] {
			t.Fatalf("known[%d] = %q, want true class", v, known[v])
		}
	}
}

func TestStandardMethodNames(t *testing.T) {
	ms := Standard()
	want := []string{"1-hop random", "2-hop random", "SNS"}
	if len(ms) != len(want) {
		t.Fatalf("Standard() returned %d methods", len(ms))
	}
	for i, m := range ms {
		if m.Name() != want[i] {
			t.Fatalf("method %d name %q, want %q", i, m.Name(), want[i])
		}
	}
	if ms[0].Ranked() || ms[1].Ranked() || !ms[2].Ranked() {
		t.Fatal("Ranked flags wrong")
	}
}

func TestPseudoLabelVisibleToSelection(t *testing.T) {
	// Adding a pseudo-label to Known must make k-hop prefer that node —
	// the mechanism query boosting relies on.
	ctx, split := testContext(t, 400, 16)
	m := KHopRandom{K: 1}
	var v tag.NodeID
	var target tag.NodeID = -1
	for _, q := range split.Query {
		for _, u := range ctx.Graph.Neighbors(q) {
			if ctx.Known[u] == "" && ctx.Graph.Degree(q) > ctx.M {
				v, target = q, u
				break
			}
		}
		if target >= 0 {
			break
		}
	}
	if target < 0 {
		t.Skip("no suitable query node")
	}
	ctx.Known[target] = ctx.Graph.Classes[0]
	sel := m.Select(ctx, v)
	found := false
	for _, s := range sel {
		if s.ID == target && s.Label == ctx.Graph.Classes[0] {
			found = true
		}
	}
	labeledAvail := 0
	for _, u := range ctx.Graph.Neighbors(v) {
		if ctx.Known[u] != "" {
			labeledAvail++
		}
	}
	if labeledAvail <= ctx.M && !found {
		t.Fatal("pseudo-labeled neighbor not preferred by selection")
	}
}
