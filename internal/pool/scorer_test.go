package pool

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/batch"
	"repro/internal/llm"
	"repro/internal/obs"
	"repro/internal/promptcache"
	"repro/internal/xrand"
)

// affinityCounters sums the pool's pick/affinity counter families
// across replica labels.
func affinityCounters(reg *obs.Registry) (picks, hits, misses float64) {
	for _, s := range reg.Snapshot() {
		switch s.Name {
		case "mqo_pool_picks_total":
			picks += s.Value
		case "mqo_pool_affinity_hits_total":
			hits += s.Value
		case "mqo_pool_affinity_misses_total":
			misses += s.Value
		}
	}
	return picks, hits, misses
}

// TestAffinityDeterministicPlacement: under the Affinity scorer each
// prompt is owned by exactly one replica — re-asking routes to the
// same replica every time — while distinct prompts spread across the
// set. Serial and healthy, so every pick is an affinity hit.
func TestAffinityDeterministicPlacement(t *testing.T) {
	reg := obs.NewRegistry()
	a := &fakePred{name: "a", id: "x"}
	b := &fakePred{name: "b", id: "x"}
	c := &fakePred{name: "c", id: "x"}
	pl := mustPool(t, Config{Scorer: &Affinity{}, Seed: 21, Obs: reg}, a, b, c)

	const n = 60
	owner := make(map[string]string, n)
	for i := 0; i < n; i++ {
		pr := fmt.Sprintf("prompt-%d", i)
		resp, err := pl.Query(pr)
		if err != nil {
			t.Fatal(err)
		}
		owner[pr] = strings.SplitN(resp.Text, ":", 2)[0]
	}
	for i := 0; i < n; i++ {
		pr := fmt.Sprintf("prompt-%d", i)
		resp, err := pl.Query(pr)
		if err != nil {
			t.Fatal(err)
		}
		if got := strings.SplitN(resp.Text, ":", 2)[0]; got != owner[pr] {
			t.Errorf("prompt %q moved from replica %s to %s between asks", pr, owner[pr], got)
		}
	}
	used := map[string]bool{}
	for _, o := range owner {
		used[o] = true
	}
	if len(used) < 2 {
		t.Errorf("all %d prompts placed on one replica; rendezvous is not spreading", n)
	}
	picks, hits, misses := affinityCounters(reg)
	if picks != 2*n || hits != 2*n || misses != 0 {
		t.Errorf("picks=%v hits=%v misses=%v, want %d/%d/0 (healthy serial run must be all hits)",
			picks, hits, misses, 2*n, 2*n)
	}
}

// TestAffinityStableUnderReplicaGrowth pins the rendezvous property
// the scorer exists for: growing the pool from 3 to 5 slots moves only
// ~2/5 of the key space — never the wholesale reshuffle a modulo
// placement would cause.
func TestAffinityStableUnderReplicaGrowth(t *testing.T) {
	shared := &fakePred{name: "m", id: "m/seed=1"}
	p3 := mustPool(t, Config{Scorer: &Affinity{}}, shared, shared, shared)
	p5 := mustPool(t, Config{Scorer: &Affinity{}}, shared, shared, shared, shared, shared)
	if p3.ns != p5.ns {
		t.Fatalf("namespace changed with replica count: %q vs %q", p3.ns, p5.ns)
	}

	const n = 200
	moved := 0
	for i := 0; i < n; i++ {
		key := promptcache.KeyOf(p3.ns, fmt.Sprintf("prompt-%d", i))
		o3 := rendezvousOrder(key, p3, -1)[0]
		o5 := rendezvousOrder(key, p5, -1)[0]
		// The first three slots keep their identities (#0..#2), so an
		// unmoved key has the same owner index in both pools.
		if o3 != o5 {
			moved++
			if o5 < 3 {
				t.Errorf("prompt-%d moved between surviving replicas (%d -> %d); only moves to new slots are allowed", i, o3, o5)
			}
		}
	}
	// Expectation is 2/5 of keys moving to the two new slots; allow
	// generous sampling noise but reject both a reshuffle and a
	// placement that ignores the new slots.
	if moved > n*3/5 {
		t.Errorf("%d/%d keys moved on 3->5 growth; rendezvous should move ~2/5", moved, n)
	}
	if moved < n/10 {
		t.Errorf("only %d/%d keys moved on 3->5 growth; new replicas own no key space", moved, n)
	}
}

// TestAffinityFallsBackWhenAffineEjected is the acceptance criterion's
// degraded half: with the shard owner dead and ejected, its prompts
// degrade to P2C over the healthy replicas — queries keep succeeding,
// no batch.ErrCircuitOpen surfaces, and the misses counter shows which
// shard is paying cold tokens.
func TestAffinityFallsBackWhenAffineEjected(t *testing.T) {
	reg := obs.NewRegistry()
	dead := &fakePred{name: "dead", id: "x", err: errors.New("boom")}
	ok1 := &fakePred{name: "ok1", id: "x", delay: time.Millisecond}
	ok2 := &fakePred{name: "ok2", id: "x", delay: time.Millisecond}
	pl := mustPool(t, Config{
		Scorer:  &Affinity{},
		Breaker: batch.BreakerConfig{Threshold: 2, Cooldown: time.Hour},
		Seed:    23, Obs: reg,
	}, dead, ok1, ok2)

	// Drive the dead owner's shard until its breaker opens; errors are
	// expected while it is in rotation (retries are the executor's job).
	for i := 0; i < 200 && pl.States()[0] != batch.BreakerOpen; i++ {
		_, _ = pl.QueryContext(context.Background(), fmt.Sprintf("warm-%d", i))
	}
	if got := pl.States()[0]; got != batch.BreakerOpen {
		t.Fatalf("dead owner never ejected: state %v", got)
	}

	// Ejected owner: every query — including its shard — must succeed.
	for i := 0; i < 100; i++ {
		resp, err := pl.QueryContext(context.Background(), fmt.Sprintf("after-%d", i))
		if err != nil {
			t.Fatalf("query %d after ejection: %v", i, err)
		}
		if strings.HasPrefix(resp.Text, "dead:") {
			t.Fatalf("query %d answered by the ejected replica", i)
		}
	}
	_, _, misses := affinityCounters(reg)
	if misses == 0 {
		t.Error("no affinity misses recorded while the shard owner was ejected")
	}
	if got := reg.CounterValue("mqo_pool_affinity_misses_total", "replica", "0"); got == 0 {
		t.Error("misses not attributed to the ejected owner's label")
	}
}

// TestAffinityOverloadGuard: the owner is abandoned only when it is
// worse than the best alternative on BOTH score and queue depth. A
// score gap alone (e.g. against a never-observed replica scoring the
// near-zero sentinel) must not exile warm traffic.
func TestAffinityOverloadGuard(t *testing.T) {
	a := &fakePred{name: "a", id: "x"}
	b := &fakePred{name: "b", id: "x"}
	pl := mustPool(t, Config{Scorer: &Affinity{}}, a, b)

	att := pl.attempt("guard-probe", xrand.New(1))
	affine := rendezvousOrder(att.Key, pl, -1)[0]
	other := 1 - affine
	sc := &Affinity{}

	// Never-observed other replica: its sentinel score is ~1e-9, so the
	// score ratio is astronomical — but the owner's queue is idle, so
	// the guard must hold.
	pl.replicas[affine].observe(0.5)
	if rk := sc.Rank(att, pl); rk.Order[0] != affine || rk.Affine != affine {
		t.Fatalf("idle owner abandoned on score gap alone: order %v, affine %d", rk.Order, rk.Affine)
	}

	// Deep queue AND bad score: now the guard must trip, and the pick
	// becomes a miss (Affine still names the owner).
	pl.replicas[affine].inflight.Add(10)
	pl.replicas[other].observe(0.01)
	rk := sc.Rank(att, pl)
	if rk.Order[0] != other {
		t.Fatalf("drowning owner not abandoned: order %v", rk.Order)
	}
	if rk.Affine != affine {
		t.Fatalf("Affine = %d after overload fallback, want owner %d", rk.Affine, affine)
	}
	if rk.Order[len(rk.Order)-1] != affine {
		t.Fatalf("owner not kept last in degraded order %v", rk.Order)
	}
	pl.replicas[affine].inflight.Add(-10)
	if rk := sc.Rank(att, pl); rk.Order[0] != affine {
		t.Fatalf("owner with drained queue still abandoned: order %v", rk.Order)
	}
}

// TestAffinityHedgeSecondHashChoice: a hedge excludes the primary, so
// under the Affinity scorer it lands on the key's *second* rendezvous
// choice — the deterministic spill target whose cache may be warm —
// not on a random cold replica.
func TestAffinityHedgeSecondHashChoice(t *testing.T) {
	preds := []*fakePred{
		{name: "r0", id: "x"},
		{name: "r1", id: "x"},
		{name: "r2", id: "x"},
	}
	reg := obs.NewRegistry()
	pl := mustPool(t, Config{Scorer: &Affinity{}, Hedge: true, HedgeAfter: 2 * time.Millisecond, Obs: reg},
		preds[0], preds[1], preds[2])

	const prompt = "hedge-me"
	ord := rendezvousOrder(pl.attempt(prompt, xrand.New(1)).Key, pl, -1)
	preds[ord[0]].delay = 30 * time.Second // owner hangs; hedge must rescue

	resp, err := pl.QueryContext(context.Background(), prompt)
	if err != nil {
		t.Fatal(err)
	}
	wantPrefix := preds[ord[1]].name + ":"
	if !strings.HasPrefix(resp.Text, wantPrefix) {
		t.Errorf("hedge answered from %q, want second hash choice %q (order %v)", resp.Text, wantPrefix, ord)
	}
	if got := reg.CounterValue("mqo_pool_hedge_wins_total"); got != 1 {
		t.Errorf("hedge wins = %v, want 1", got)
	}
	// Both picks are affinity hits: the primary landed on the key's
	// owner, the hedge on the owner of the primary-excluded ranking.
	_, hits, misses := affinityCounters(reg)
	if hits != 2 || misses != 0 {
		t.Errorf("hits=%v misses=%v, want 2/0", hits, misses)
	}
}

// TestP2CFallbackSpreadsByScore is the regression test for the
// index-order fallback bug: with most of the pool ejected, spill load
// must spread across the healthy replicas by score instead of piling
// onto the lowest-index one.
func TestP2CFallbackSpreadsByScore(t *testing.T) {
	boom := errors.New("boom")
	preds := make([]*fakePred, 8)
	replicas := make([]llm.Predictor, 8)
	for i := range preds {
		preds[i] = &fakePred{name: fmt.Sprintf("r%d", i), id: "x"}
		if i < 6 {
			preds[i].err = boom // dead replicas fail instantly (score stays tiny)
		} else {
			preds[i].delay = 2 * time.Millisecond
		}
		replicas[i] = preds[i]
	}
	pl := mustPool(t, Config{
		Breaker: batch.BreakerConfig{Threshold: 1, Cooldown: time.Hour},
		Seed:    17,
	}, replicas...)

	allDeadOpen := func() bool {
		for i, s := range pl.States() {
			if i < 6 && s != batch.BreakerOpen {
				return false
			}
		}
		return true
	}
	for i := 0; i < 500 && !allDeadOpen(); i++ {
		_, _ = pl.QueryContext(context.Background(), fmt.Sprintf("warm-%d", i))
	}
	if !allDeadOpen() {
		t.Fatal("dead replicas never all ejected")
	}

	base6, base7 := preds[6].calls.Load(), preds[7].calls.Load()
	const n = 300
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := pl.QueryContext(context.Background(), fmt.Sprintf("spill-%d", i)); err != nil {
				t.Errorf("spill query %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	got6, got7 := preds[6].calls.Load()-base6, preds[7].calls.Load()-base7
	total := got6 + got7
	if total < n {
		t.Fatalf("healthy replicas served %d calls, want >= %d", total, n)
	}
	// Index-order fallback sent ~98% of spill to replica 6; score-aware
	// fallback balances via the inflight term. Require each healthy
	// replica to carry a real share.
	for name, got := range map[string]int64{"r6": got6, "r7": got7} {
		if got*5 < total {
			t.Errorf("replica %s served %d of %d spill calls (<20%%); fallback is concentrating load", name, got, total)
		}
	}
}

// TestCanceledAttemptDoesNotPoisonEWMA: a canceled attempt measures
// the cancellation moment, not the backend, and must not teach the
// routing EWMA.
func TestCanceledAttemptDoesNotPoisonEWMA(t *testing.T) {
	slow := &fakePred{name: "slow", id: "x", delay: time.Hour}
	pl := mustPool(t, Config{}, slow)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	if _, err := pl.do(ctx, pl.replicas[0], "p", false); err == nil {
		t.Fatal("canceled attempt returned no error")
	}
	if got := pl.replicas[0].ewma.Load(); got != 0 {
		t.Errorf("canceled attempt taught the EWMA (bits %#x); a 5ms cancel would masquerade as backend speed", got)
	}

	// Control: a completed attempt does teach it.
	fast := &fakePred{name: "fast", id: "x", delay: time.Millisecond}
	pl2 := mustPool(t, Config{}, fast)
	if _, err := pl2.do(context.Background(), pl2.replicas[0], "p", false); err != nil {
		t.Fatal(err)
	}
	if pl2.replicas[0].ewma.Load() == 0 {
		t.Error("completed attempt did not teach the EWMA")
	}
}

// TestHedgeLossChargedWhenErrorPrecedesWin: an attempt that errors
// while the race is still open must be ledgered as StageHedgeLoss once
// the other attempt wins — its duplicate work existed whether or not
// it outlived the winner.
func TestHedgeLossChargedWhenErrorPrecedesWin(t *testing.T) {
	reg := obs.NewRegistry()
	bad := &fakePred{name: "bad", id: "x", delay: 3 * time.Millisecond, err: errors.New("boom")}
	good := &fakePred{name: "good", id: "x", delay: 40 * time.Millisecond}
	pl := mustPool(t, Config{Hedge: true, HedgeAfter: time.Millisecond, Seed: 1, Obs: reg}, bad, good)

	led := obs.NewLedger(reg, "trace-hedge-loss", "q")
	ctx := obs.ContextWithLedger(context.Background(), led)
	// Whichever replica is picked first, the failing attempt resolves
	// (~4ms) long before the good one answers (~40ms), while the race
	// is still open. The win must then post the parked loss.
	if _, err := pl.QueryContext(ctx, "p"); err != nil {
		t.Fatal(err)
	}
	snap := led.Close(100 * time.Millisecond)
	var lossWall time.Duration
	found := false
	for _, e := range snap.Entries {
		if e.Stage == obs.StageHedgeLoss {
			found = true
			if e.Billed {
				t.Error("hedge loss charged as billed; duplicate work is never billed")
			}
			lossWall += e.Wall
		}
	}
	if !found {
		t.Fatal("no StageHedgeLoss entry; the early-erroring attempt's work vanished from the books")
	}
	if lossWall <= 0 {
		t.Errorf("hedge loss wall = %v, want > 0", lossWall)
	}
}

// TestHedgeBothFailChargesNoLoss: when no attempt wins there is no
// winning path to duplicate — the failed attempts surface as the
// query's error, not as hedge waste.
func TestHedgeBothFailChargesNoLoss(t *testing.T) {
	reg := obs.NewRegistry()
	bad1 := &fakePred{name: "b1", id: "x", delay: 2 * time.Millisecond, err: errors.New("boom")}
	bad2 := &fakePred{name: "b2", id: "x", delay: 2 * time.Millisecond, err: errors.New("boom")}
	pl := mustPool(t, Config{Hedge: true, HedgeAfter: time.Millisecond, Seed: 1, Obs: reg}, bad1, bad2)

	led := obs.NewLedger(reg, "trace-both-fail", "q")
	ctx := obs.ContextWithLedger(context.Background(), led)
	if _, err := pl.QueryContext(ctx, "p"); err == nil {
		t.Fatal("both-fail query succeeded")
	}
	snap := led.Close(100 * time.Millisecond)
	for _, e := range snap.Entries {
		if e.Stage == obs.StageHedgeLoss {
			t.Fatalf("hedge loss charged %v with no winner", e.Wall)
		}
	}
}

// TestAffinityWarmReRunPaysZero is the acceptance criterion's warm
// half at pool scope: three replicas each fronting their own disk
// cache, a cold pass to populate the shards, then a full re-run that
// pays zero inner predictor calls with every pick an affinity hit.
func TestAffinityWarmReRunPaysZero(t *testing.T) {
	inner := &fakePred{name: "m", id: "m/seed=1"}
	reg := obs.NewRegistry()
	replicas := make([]llm.Predictor, 3)
	for i := range replicas {
		pc, err := promptcache.Open(t.TempDir(), promptcache.Config{})
		if err != nil {
			t.Fatal(err)
		}
		defer pc.Close()
		replicas[i] = promptcache.Wrap(inner, pc)
	}
	pl := mustPool(t, Config{Scorer: &Affinity{}, Seed: 5, Obs: reg}, replicas...)

	const n = 90
	for i := 0; i < n; i++ {
		if _, err := pl.Query(fmt.Sprintf("prompt-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := inner.calls.Load(); got != n {
		t.Fatalf("cold pass made %d inner calls, want %d", got, n)
	}
	coldPicks, coldHits, _ := affinityCounters(reg)

	for i := 0; i < n; i++ {
		if _, err := pl.Query(fmt.Sprintf("prompt-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := inner.calls.Load() - n; got != 0 {
		t.Errorf("warm re-run paid %d inner predictor calls, want 0", got)
	}
	warmPicks, warmHits, warmMisses := affinityCounters(reg)
	if warmPicks-coldPicks != n || warmHits-coldHits != n || warmMisses != 0 {
		t.Errorf("warm pass picks=%v hits=%v misses=%v, want %d/%d/0",
			warmPicks-coldPicks, warmHits-coldHits, warmMisses, n, n)
	}
}
