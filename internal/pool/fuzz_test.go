package pool

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/batch"
	"repro/internal/llm"
	"repro/internal/xrand"
)

// FuzzPoolPick drives the routing state machine with an arbitrary
// sequence of outcomes — success, transient failure, client error,
// cancellation — against a 3-replica pool with tight breakers, and
// checks the structural invariants:
//
//   - pick never panics and never hands out a replica whose breaker
//     is (still) open — an admitted replica is Closed or HalfOpen;
//   - when pick refuses, the error is batch.ErrCircuitOpen and every
//     replica really is ejected;
//   - once the cooldown elapses and probes succeed, the pool always
//     recovers: every replica closes again and picks flow.
//
// The seed's low bit selects the scorer — even seeds run the default
// P2C policy, odd seeds the rendezvous Affinity scorer — so both
// routing brains face the same adversarial outcome sequences.
func FuzzPoolPick(f *testing.F) {
	f.Add(uint64(1), []byte{0, 1, 2, 3, 0, 1, 1, 1, 0})
	f.Add(uint64(42), []byte{1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1})
	f.Add(uint64(7), []byte{2, 2, 2, 0, 3, 3, 1, 0, 2})
	f.Add(uint64(99), []byte{})

	f.Fuzz(func(t *testing.T, seed uint64, ops []byte) {
		const cooldown = time.Millisecond
		replicas := []llm.Predictor{
			&fakePred{name: "r0", id: "x"},
			&fakePred{name: "r1", id: "x"},
			&fakePred{name: "r2", id: "x"},
		}
		cfg := Config{
			Breaker: batch.BreakerConfig{Threshold: 2, Cooldown: cooldown, HalfOpenProbes: 1},
			Seed:    seed,
		}
		if seed%2 == 1 {
			cfg.Scorer = &Affinity{}
		}
		pl, err := New(replicas, cfg)
		if err != nil {
			t.Fatal(err)
		}

		rng := xrand.New(seed ^ 0x9e3779b97f4a7c15)
		canceledCtx, cancel := context.WithCancel(context.Background())
		cancel()
		transient := errors.New("backend down")

		for i, op := range ops {
			r, idx, _, err := pl.pick(pl.attempt(fmt.Sprintf("op-%d", i), rng))
			if err != nil {
				if !errors.Is(err, batch.ErrCircuitOpen) {
					t.Fatalf("op %d: pick error = %v, want ErrCircuitOpen", i, err)
				}
				// Refusal must mean every replica is ejected right now.
				for j, s := range pl.States() {
					if s != batch.BreakerOpen {
						t.Fatalf("op %d: pick refused but replica %d is %v", i, j, s)
					}
				}
				// Let cooldowns elapse so later ops can probe.
				time.Sleep(2 * cooldown)
				continue
			}
			if idx < 0 || idx >= len(replicas) {
				t.Fatalf("op %d: pick returned index %d", i, idx)
			}
			if s := r.brk.State(); s == batch.BreakerOpen {
				t.Fatalf("op %d: pick admitted replica %d while its breaker is open", i, idx)
			}
			judge := func(ctx context.Context, outcome error) {
				defer func() {
					if rec := recover(); rec != nil {
						t.Fatalf("op %d: judge panicked: %v", i, rec)
					}
				}()
				pl.judge(ctx, r, outcome)
			}
			switch op % 4 {
			case 0: // healthy answer
				judge(context.Background(), nil)
			case 1: // transient failure (5xx/transport): counts toward ejection
				judge(context.Background(), transient)
			case 2: // client-side 4xx: never trips the breaker
				judge(context.Background(), &llm.APIError{StatusCode: 404, Message: "no"})
			case 3: // canceled mid-flight: not the backend's fault
				judge(canceledCtx, context.Canceled)
			}
		}

		// Recovery: after the cooldown, successful probes must close
		// every breaker and picks must flow again.
		time.Sleep(2 * cooldown)
		for i := 0; i < 200; i++ {
			r, _, _, err := pl.pick(pl.attempt(fmt.Sprintf("probe-%d", i), rng))
			if err != nil {
				time.Sleep(cooldown)
				continue
			}
			r.brk.Report(true)
			allClosed := true
			for _, s := range pl.States() {
				if s != batch.BreakerClosed {
					allClosed = false
				}
			}
			if allClosed {
				break
			}
		}
		for j, s := range pl.States() {
			if s != batch.BreakerClosed {
				t.Fatalf("replica %d never recovered: state %v after healthy probes", j, s)
			}
		}
		if _, _, _, err := pl.pick(pl.attempt("final", rng)); err != nil {
			t.Fatalf("pick still refusing after full recovery: %v", err)
		}
	})
}
