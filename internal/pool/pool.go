// Package pool fans queries across N interchangeable predictor
// backends ("replicas") so that one slow or dead replica is no longer
// the whole system's ceiling.
//
// Routing is pluggable (Config.Scorer): a Scorer ranks the replica set
// for every attempt and the pool takes the first admitted candidate.
// The default P2C scorer is health-aware — each replica carries an
// EWMA of its observed latency and an in-flight counter, and every
// query picks between two random candidates, taking the one with the
// lower latency×load score (power-of-two-choices — near-optimal load
// spread without global coordination). The Affinity scorer instead
// places each prompt's cache key on its rendezvous owner, so warm
// prompt-cache shards never pay cold-replica tokens; see scorer.go.
// Each replica is guarded by its own circuit breaker
// (the exact state machine the batch executor uses), so a dead backend
// is ejected from rotation without tripping a global breaker; when
// every replica is ejected the pool fails fast with
// batch.ErrCircuitOpen, which the executor's retry/fallback machinery
// already understands.
//
// Optionally the pool hedges: if the first replica has not answered
// within HedgeAfter, the same prompt is sent to a second replica and
// the first answer wins; the loser's context is canceled. Hedging
// trades a bounded amount of duplicate work for a much shorter tail.
//
// Determinism contract: the pool routes, it never rewrites. With
// llm.Sim-backed replicas sharing a seed, answers are keyed on
// hash(seed, prompt), so plan outputs are bit-identical for any
// replica count, hedging on or off — routing changes who answers,
// never what is answered. DESIGN.md ("Hedging and determinism")
// discusses why this holds.
package pool

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/batch"
	"repro/internal/llm"
	"repro/internal/obs"
	"repro/internal/promptcache"
	"repro/internal/xrand"
)

// Metric names emitted by the pool; the full catalog lives in README.md
// ("Observability").
const (
	metricPicks          = "mqo_pool_picks_total"
	metricHedges         = "mqo_pool_hedges_total"
	metricHedgeWins      = "mqo_pool_hedge_wins_total"
	metricEjected        = "mqo_pool_ejected_total"
	metricAffinityHits   = "mqo_pool_affinity_hits_total"
	metricAffinityMisses = "mqo_pool_affinity_misses_total"
)

// DefaultHedgeAfter is the hedge trigger delay when hedging is enabled
// without an explicit HedgeAfter.
const DefaultHedgeAfter = 50 * time.Millisecond

// ewmaAlpha weights the newest latency sample in the per-replica EWMA.
const ewmaAlpha = 0.3

// Config tunes the pool. The zero value routes without breakers or
// hedging.
type Config struct {
	// Hedge enables hedged requests: a second replica is tried when the
	// first has not answered within HedgeAfter, and the first answer
	// wins. Requires at least two replicas to have any effect.
	Hedge bool
	// HedgeAfter is how long the first attempt may run before the hedge
	// fires (default DefaultHedgeAfter when Hedge is set).
	HedgeAfter time.Duration
	// Breaker configures the per-replica circuit breakers; the zero
	// value disables them (every replica stays in rotation forever).
	Breaker batch.BreakerConfig
	// Scorer ranks the replica set for each attempt; nil means the
	// default P2C policy. Set &Affinity{} for cache-affine routing
	// (rendezvous placement of prompt-cache keys) — warm shards then
	// stay pinned to their owner and hedges go to the key's second
	// hash choice.
	Scorer Scorer
	// Seed drives the scorer's candidate picks deterministically
	// (given a serial caller).
	Seed uint64
	// Obs receives the pool's metrics; nil routes to the process
	// default.
	Obs obs.Recorder
}

// replica is one backend plus its routing health state.
type replica struct {
	p     llm.Predictor
	cp    llm.ContextPredictor // non-nil when p supports cancellation
	brk   *batch.Breaker       // nil when breakers are disabled
	label string
	// rid is the replica's rendezvous identity: the backend's
	// answer-function identity, disambiguated with a stable #slot
	// suffix when several slots share one backend. Keyed on identity —
	// not on slot index alone — so the key→owner placement survives
	// pool reconstruction, and growing an N-slot pool of one backend
	// keeps the first N identities unchanged (only ~1/(n+1) of the key
	// space moves to the new slot).
	rid string

	inflight atomic.Int64
	ewma     atomic.Uint64 // float64 bits of the EWMA latency (seconds)
}

// observe folds one latency sample into the EWMA (lock-free CAS loop).
func (r *replica) observe(seconds float64) {
	for {
		old := r.ewma.Load()
		next := seconds
		if old != 0 {
			next = (1-ewmaAlpha)*math.Float64frombits(old) + ewmaAlpha*seconds
		}
		if r.ewma.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// score is the routing load estimate: EWMA latency scaled by queue
// depth. Unobserved replicas score near zero, so fresh backends attract
// their first queries immediately.
func (r *replica) score() float64 {
	lat := math.Float64frombits(r.ewma.Load())
	if lat <= 0 {
		lat = 1e-9
	}
	return lat * float64(r.inflight.Load()+1)
}

// Pool is an llm.ContextPredictor that routes every query to one of N
// replica backends. It is safe for concurrent use.
type Pool struct {
	replicas []*replica
	cfg      Config
	rec      obs.Recorder
	seq      atomic.Uint64
	name     string
	identity string
	scorer   Scorer
	// keyed marks that the configured scorer wants prompt-cache keys;
	// ns is the pool's promptcache namespace those keys are derived in
	// (identical to the namespace the disk-cache layers derive, so the
	// scorer places exactly the keys the caches store).
	keyed bool
	ns    string
}

// New builds a pool over the given replicas. The same predictor value
// may appear several times (e.g. one concurrency-safe *llm.Sim as N
// replicas); each slot still gets its own breaker and health state.
func New(replicas []llm.Predictor, cfg Config) (*Pool, error) {
	if len(replicas) == 0 {
		return nil, errors.New("pool: no replicas")
	}
	if cfg.Hedge && cfg.HedgeAfter <= 0 {
		cfg.HedgeAfter = DefaultHedgeAfter
	}
	rec := obs.Active(cfg.Obs)
	p := &Pool{cfg: cfg, rec: rec, name: replicas[0].Name()}
	for i, r := range replicas {
		if r == nil {
			return nil, fmt.Errorf("pool: replica %d is nil", i)
		}
		rep := &replica{p: r, label: fmt.Sprintf("%d", i)}
		if cp, ok := r.(llm.ContextPredictor); ok {
			rep.cp = cp
		}
		rep.brk = batch.NewBreaker(cfg.Breaker, rec, "replica", rep.label)
		p.replicas = append(p.replicas, rep)
	}
	p.identity = foldIdentity(replicas)
	p.scorer = cfg.Scorer
	p.keyed = cfg.Scorer != nil
	if p.scorer == nil {
		p.scorer = P2C{}
	}
	p.ns = promptcache.Namespace(p)
	seen := make(map[string]int, len(p.replicas))
	for _, rep := range p.replicas {
		id := llm.IdentityOf(rep.p)
		if n := seen[id]; n > 0 {
			rep.rid = fmt.Sprintf("%s#%d", id, n)
		} else {
			rep.rid = id
		}
		seen[id]++
	}
	return p, nil
}

// foldIdentity derives the pool's answer-function identity from the
// replica set. Replicas sharing one identity answer identically, so the
// pool is transparent (same identity, same promptcache namespace — a
// warm cache stays warm across replica counts). Distinct identities
// mean the answer depends on routing, so the namespace must fold in the
// whole sorted set.
func foldIdentity(replicas []llm.Predictor) string {
	set := make(map[string]bool, len(replicas))
	ids := make([]string, 0, len(replicas))
	for _, r := range replicas {
		id := llm.IdentityOf(r)
		if !set[id] {
			set[id] = true
			ids = append(ids, id)
		}
	}
	if len(ids) == 1 {
		return ids[0]
	}
	sort.Strings(ids)
	return "pool(" + strings.Join(ids, "|") + ")"
}

// Name implements llm.Predictor.
func (p *Pool) Name() string { return p.name }

// Identity implements llm.Identifier; see foldIdentity.
func (p *Pool) Identity() string { return p.identity }

// Size reports the replica count.
func (p *Pool) Size() int { return len(p.replicas) }

// States reports each replica's breaker position (BreakerClosed for all
// when breakers are disabled). Index i is replica i.
func (p *Pool) States() []batch.BreakerState {
	out := make([]batch.BreakerState, len(p.replicas))
	for i, r := range p.replicas {
		if r.brk != nil {
			out[i] = r.brk.State()
		}
	}
	return out
}

// The pool is the View its scorer ranks against.

// Len implements View.
func (p *Pool) Len() int { return len(p.replicas) }

// Score implements View: the replica's latency×load estimate.
func (p *Pool) Score(i int) float64 { return p.replicas[i].score() }

// Inflight implements View.
func (p *Pool) Inflight(i int) int64 { return p.replicas[i].inflight.Load() }

// ID implements View: the replica's stable rendezvous identity.
func (p *Pool) ID(i int) string { return p.replicas[i].rid }

// Ready implements View: whether the replica's breaker would plausibly
// admit a request, without the side effects of Allow.
func (p *Pool) Ready(i int) bool {
	r := p.replicas[i]
	return r.brk == nil || r.brk.Ready()
}

// pick routes one attempt: the scorer ranks the candidates and the
// first replica whose breaker admits the request wins. Scorers express
// preference, breakers keep authority — a replica the scorer loves is
// still skipped while ejected — and when every candidate is refused,
// pick fails with batch.ErrCircuitOpen. The returned verdict labels
// the pick's affinity outcome ("hit" when it landed on the attempt's
// cache-affine replica, "miss" when it had to leave one, "none" for
// key-blind scorers) and is mirrored on the pool.pick span and the
// mqo_pool_affinity_* counters.
func (p *Pool) pick(a Attempt) (*replica, int, string, error) {
	rk := p.scorer.Rank(a, p)
	for _, i := range rk.Order {
		if i < 0 || i >= len(p.replicas) || i == a.Exclude {
			continue // a misbehaving scorer must not crash routing
		}
		r := p.replicas[i]
		if r.brk != nil && r.brk.Allow() != nil {
			continue
		}
		p.rec.Add(metricPicks, 1, "replica", r.label)
		verdict := "none"
		if rk.Affine >= 0 && rk.Affine < len(p.replicas) {
			if i == rk.Affine {
				verdict = "hit"
				p.rec.Add(metricAffinityHits, 1, "replica", r.label)
			} else {
				// Label the miss by the replica that *owns* the key, so
				// a dashboard shows which shard is bleeding tokens.
				verdict = "miss"
				p.rec.Add(metricAffinityMisses, 1, "replica", p.replicas[rk.Affine].label)
			}
		}
		return r, i, verdict, nil
	}
	return nil, -1, "", batch.ErrCircuitOpen
}

// attempt builds the routing Attempt for one query, deriving the
// prompt's cache key once when the scorer is key-aware (the hedge
// re-pick reuses it).
func (p *Pool) attempt(promptText string, rng *xrand.RNG) Attempt {
	a := Attempt{Prompt: promptText, Exclude: -1, RNG: rng}
	if p.keyed {
		a.Key = promptcache.KeyOf(p.ns, promptText)
	}
	return a
}

// do runs one attempt on r, updating health state and feeding the
// breaker. Cancellations (the caller gave up, or a hedge race was lost)
// and client-side API errors do not count against the backend. The
// attempt gets its own child span, and context-aware replicas receive
// it so a remote hop (llm.HTTPPredictor) can continue the trace.
func (p *Pool) do(ctx context.Context, r *replica, promptText string, hedge bool) (llm.Response, error) {
	actx, sp := obs.StartSpanCtx(ctx, p.rec, "pool.attempt", "replica", r.label, "hedge", fmt.Sprint(hedge))
	r.inflight.Add(1)
	start := time.Now()
	var resp llm.Response
	var err error
	if r.cp != nil {
		resp, err = r.cp.QueryContext(actx, promptText)
	} else {
		resp, err = r.p.Query(promptText)
	}
	r.inflight.Add(-1)
	if ctx.Err() == nil {
		// Only completed attempts teach the EWMA. A canceled attempt —
		// hedge loser, caller gave up — measures the cancellation
		// moment, not the backend: folding it in would score a
		// slow-but-healthy replica by how fast its races get called
		// off, poisoning routing against it.
		r.observe(time.Since(start).Seconds())
	}
	if err != nil {
		sp.SetAttr("outcome", "error")
	} else {
		sp.SetAttr("outcome", "ok")
	}
	sp.End()
	p.judge(ctx, r, err)
	return resp, err
}

// judge translates one attempt outcome into a breaker verdict,
// emitting the ejection metric when the verdict opens the circuit.
func (p *Pool) judge(ctx context.Context, r *replica, err error) {
	if r.brk == nil {
		return
	}
	switch {
	case err == nil:
		r.brk.Report(true)
	case ctx.Err() != nil:
		// Canceled or past its deadline: not the backend's fault.
		r.brk.Cancel()
	default:
		var apiErr *llm.APIError
		if errors.As(err, &apiErr) && apiErr.StatusCode < 500 && apiErr.StatusCode != 429 {
			// Client-side error: the request's fault, not the replica's.
			r.brk.Cancel()
			return
		}
		before := r.brk.State()
		r.brk.Report(false)
		if before != batch.BreakerOpen && r.brk.State() == batch.BreakerOpen {
			p.rec.Add(metricEjected, 1, "replica", r.label)
		}
	}
}

// Query implements llm.Predictor.
func (p *Pool) Query(promptText string) (llm.Response, error) {
	return p.QueryContext(context.Background(), promptText)
}

// result is one attempt's outcome in a hedge race.
type result struct {
	resp  llm.Response
	err   error
	hedge bool
}

// hedgeRace settles the hedge-loss books for one query. Exactly one
// attempt may win (the first success); every other attempt's work is
// duplicate and must be ledgered as an unbilled StageHedgeLoss — but
// only if the race actually produced a winner. The subtle case is an
// attempt that *errors while the race is still open*: whether its work
// was a hedge loss is unknowable until the other attempt finishes, so
// the charge is parked in pending and posted the moment a winner
// appears. When no attempt ever wins, pending is dropped — a query
// where every attempt failed has no "winning path" to duplicate, and
// its cost surfaces as the query's error path, not as hedge waste. All
// transitions run under one mutex so a loss is charged exactly once no
// matter how the goroutines interleave.
type hedgeRace struct {
	ctx context.Context // the query context carrying the ledger

	mu      sync.Mutex
	won     bool
	pending []pendingLoss
}

// pendingLoss is a failed attempt's cost, awaiting a winner.
type pendingLoss struct {
	wall   time.Duration
	tokens int
}

// settle records one attempt's outcome and returns whether it won the
// race.
func (rc *hedgeRace) settle(err error, wall time.Duration, tokens int) (won bool) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if err == nil {
		if !rc.won {
			rc.won = true
			// A winner exists: every earlier failed attempt's work is
			// now known to be duplicate. Post the parked charges.
			for _, pl := range rc.pending {
				obs.Charge(rc.ctx, obs.StageHedgeLoss, pl.wall, pl.tokens, false)
			}
			rc.pending = nil
			return true
		}
		obs.Charge(rc.ctx, obs.StageHedgeLoss, wall, tokens, false)
		return false
	}
	if rc.won {
		obs.Charge(rc.ctx, obs.StageHedgeLoss, wall, tokens, false)
		return false
	}
	rc.pending = append(rc.pending, pendingLoss{wall: wall, tokens: tokens})
	return false
}

// QueryContext implements llm.ContextPredictor: pick a replica, run the
// query, and — when hedging is on and the first attempt outlives
// HedgeAfter — race a second replica against it. The first success
// wins and the loser's context is canceled; the response is returned
// exactly once, so callers (token meters, caches) never see duplicate
// answers. When both attempts fail, the primary's error is returned.
func (p *Pool) QueryContext(ctx context.Context, promptText string) (llm.Response, error) {
	rng := xrand.New(p.cfg.Seed ^ p.seq.Add(1))
	att := p.attempt(promptText, rng)
	_, psp := obs.StartSpanCtx(ctx, p.rec, "pool.pick", "kind", "primary", "scorer", p.scorer.Name())
	first, firstIdx, verdict, err := p.pick(att)
	if err != nil {
		psp.SetAttr("verdict", "all_ejected")
		psp.End()
		return llm.Response{}, err
	}
	psp.SetAttr("replica", first.label)
	psp.SetAttr("affinity", verdict)
	psp.End()
	if !p.cfg.Hedge || len(p.replicas) < 2 {
		return p.do(ctx, first, promptText, false)
	}

	// Buffered to the maximum number of attempts: a losing goroutine
	// completes its send and exits even after the winner returned, so a
	// hedge race can never leak a goroutine. The hedgeRace settles loss
	// charges in the attempt goroutine, so a loser finishing after the
	// caller moved on still books against the query's ledger —
	// Ledger.Close drops charges that arrive after the books are
	// published.
	ch := make(chan result, 2)
	rc := &hedgeRace{ctx: ctx}
	launch := func(actx context.Context, rep *replica, hedge bool) {
		go func() {
			start := time.Now()
			resp, err := p.do(actx, rep, promptText, hedge)
			rc.settle(err, time.Since(start), resp.InputTokens+resp.OutputTokens)
			ch <- result{resp, err, hedge}
		}()
	}
	ctx1, cancel1 := context.WithCancel(ctx)
	defer cancel1()
	launch(ctx1, first, false)

	timer := time.NewTimer(p.cfg.HedgeAfter)
	defer timer.Stop()
	timerC := timer.C

	var cancel2 context.CancelFunc
	pending := 1
	var firstErr error
	for {
		select {
		case <-timerC:
			timerC = nil
			// The hedge excludes the primary's replica; under the
			// Affinity scorer the ranking then starts at the key's
			// second hash choice, so hedges stay on a replica that may
			// have the prompt warm instead of a random cold one.
			hatt := att
			hatt.Hedge = true
			hatt.Exclude = firstIdx
			_, hsp := obs.StartSpanCtx(ctx, p.rec, "pool.pick", "kind", "hedge", "scorer", p.scorer.Name())
			second, _, hverdict, perr := p.pick(hatt)
			if perr != nil {
				// No healthy second replica; keep waiting on the first.
				hsp.SetAttr("verdict", "all_ejected")
				hsp.End()
				continue
			}
			hsp.SetAttr("replica", second.label)
			hsp.SetAttr("affinity", hverdict)
			hsp.End()
			p.rec.Add(metricHedges, 1)
			var ctx2 context.Context
			ctx2, cancel2 = context.WithCancel(ctx)
			defer cancel2()
			pending++
			launch(ctx2, second, true)
		case r := <-ch:
			pending--
			if r.err == nil {
				if r.hedge {
					p.rec.Add(metricHedgeWins, 1)
					cancel1()
				} else if cancel2 != nil {
					cancel2()
				}
				return r.resp, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if pending == 0 {
				// Every launched attempt failed. Retries belong to the
				// batch executor above, not the pool.
				return llm.Response{}, firstErr
			}
		}
	}
}

var (
	_ llm.Predictor        = (*Pool)(nil)
	_ llm.ContextPredictor = (*Pool)(nil)
	_ llm.Identifier       = (*Pool)(nil)
)
