// Package pool fans queries across N interchangeable predictor
// backends ("replicas") so that one slow or dead replica is no longer
// the whole system's ceiling.
//
// Routing is health-aware: each replica carries an EWMA of its observed
// latency and an in-flight counter, and every query picks between two
// random candidates, taking the one with the lower latency×load score
// (power-of-two-choices — near-optimal load spread without global
// coordination). Each replica is guarded by its own circuit breaker
// (the exact state machine the batch executor uses), so a dead backend
// is ejected from rotation without tripping a global breaker; when
// every replica is ejected the pool fails fast with
// batch.ErrCircuitOpen, which the executor's retry/fallback machinery
// already understands.
//
// Optionally the pool hedges: if the first replica has not answered
// within HedgeAfter, the same prompt is sent to a second replica and
// the first answer wins; the loser's context is canceled. Hedging
// trades a bounded amount of duplicate work for a much shorter tail.
//
// Determinism contract: the pool routes, it never rewrites. With
// llm.Sim-backed replicas sharing a seed, answers are keyed on
// hash(seed, prompt), so plan outputs are bit-identical for any
// replica count, hedging on or off — routing changes who answers,
// never what is answered. DESIGN.md ("Hedging and determinism")
// discusses why this holds.
package pool

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/batch"
	"repro/internal/llm"
	"repro/internal/obs"
	"repro/internal/xrand"
)

// Metric names emitted by the pool; the full catalog lives in README.md
// ("Observability").
const (
	metricPicks     = "mqo_pool_picks_total"
	metricHedges    = "mqo_pool_hedges_total"
	metricHedgeWins = "mqo_pool_hedge_wins_total"
	metricEjected   = "mqo_pool_ejected_total"
)

// DefaultHedgeAfter is the hedge trigger delay when hedging is enabled
// without an explicit HedgeAfter.
const DefaultHedgeAfter = 50 * time.Millisecond

// ewmaAlpha weights the newest latency sample in the per-replica EWMA.
const ewmaAlpha = 0.3

// Config tunes the pool. The zero value routes without breakers or
// hedging.
type Config struct {
	// Hedge enables hedged requests: a second replica is tried when the
	// first has not answered within HedgeAfter, and the first answer
	// wins. Requires at least two replicas to have any effect.
	Hedge bool
	// HedgeAfter is how long the first attempt may run before the hedge
	// fires (default DefaultHedgeAfter when Hedge is set).
	HedgeAfter time.Duration
	// Breaker configures the per-replica circuit breakers; the zero
	// value disables them (every replica stays in rotation forever).
	Breaker batch.BreakerConfig
	// Seed drives the power-of-two-choices candidate picks
	// deterministically (given a serial caller).
	Seed uint64
	// Obs receives the pool's metrics; nil routes to the process
	// default.
	Obs obs.Recorder
}

// replica is one backend plus its routing health state.
type replica struct {
	p     llm.Predictor
	cp    llm.ContextPredictor // non-nil when p supports cancellation
	brk   *batch.Breaker       // nil when breakers are disabled
	label string

	inflight atomic.Int64
	ewma     atomic.Uint64 // float64 bits of the EWMA latency (seconds)
}

// observe folds one latency sample into the EWMA (lock-free CAS loop).
func (r *replica) observe(seconds float64) {
	for {
		old := r.ewma.Load()
		next := seconds
		if old != 0 {
			next = (1-ewmaAlpha)*math.Float64frombits(old) + ewmaAlpha*seconds
		}
		if r.ewma.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// score is the routing load estimate: EWMA latency scaled by queue
// depth. Unobserved replicas score near zero, so fresh backends attract
// their first queries immediately.
func (r *replica) score() float64 {
	lat := math.Float64frombits(r.ewma.Load())
	if lat <= 0 {
		lat = 1e-9
	}
	return lat * float64(r.inflight.Load()+1)
}

// Pool is an llm.ContextPredictor that routes every query to one of N
// replica backends. It is safe for concurrent use.
type Pool struct {
	replicas []*replica
	cfg      Config
	rec      obs.Recorder
	seq      atomic.Uint64
	name     string
	identity string
}

// New builds a pool over the given replicas. The same predictor value
// may appear several times (e.g. one concurrency-safe *llm.Sim as N
// replicas); each slot still gets its own breaker and health state.
func New(replicas []llm.Predictor, cfg Config) (*Pool, error) {
	if len(replicas) == 0 {
		return nil, errors.New("pool: no replicas")
	}
	if cfg.Hedge && cfg.HedgeAfter <= 0 {
		cfg.HedgeAfter = DefaultHedgeAfter
	}
	rec := obs.Active(cfg.Obs)
	p := &Pool{cfg: cfg, rec: rec, name: replicas[0].Name()}
	for i, r := range replicas {
		if r == nil {
			return nil, fmt.Errorf("pool: replica %d is nil", i)
		}
		rep := &replica{p: r, label: fmt.Sprintf("%d", i)}
		if cp, ok := r.(llm.ContextPredictor); ok {
			rep.cp = cp
		}
		rep.brk = batch.NewBreaker(cfg.Breaker, rec, "replica", rep.label)
		p.replicas = append(p.replicas, rep)
	}
	p.identity = foldIdentity(replicas)
	return p, nil
}

// foldIdentity derives the pool's answer-function identity from the
// replica set. Replicas sharing one identity answer identically, so the
// pool is transparent (same identity, same promptcache namespace — a
// warm cache stays warm across replica counts). Distinct identities
// mean the answer depends on routing, so the namespace must fold in the
// whole sorted set.
func foldIdentity(replicas []llm.Predictor) string {
	set := make(map[string]bool, len(replicas))
	ids := make([]string, 0, len(replicas))
	for _, r := range replicas {
		id := llm.IdentityOf(r)
		if !set[id] {
			set[id] = true
			ids = append(ids, id)
		}
	}
	if len(ids) == 1 {
		return ids[0]
	}
	sort.Strings(ids)
	return "pool(" + strings.Join(ids, "|") + ")"
}

// Name implements llm.Predictor.
func (p *Pool) Name() string { return p.name }

// Identity implements llm.Identifier; see foldIdentity.
func (p *Pool) Identity() string { return p.identity }

// Size reports the replica count.
func (p *Pool) Size() int { return len(p.replicas) }

// States reports each replica's breaker position (BreakerClosed for all
// when breakers are disabled). Index i is replica i.
func (p *Pool) States() []batch.BreakerState {
	out := make([]batch.BreakerState, len(p.replicas))
	for i, r := range p.replicas {
		if r.brk != nil {
			out[i] = r.brk.State()
		}
	}
	return out
}

// pick chooses a replica by power-of-two-choices over the candidates
// (every replica except exclude), then asks its breaker for admission.
// If the chosen replica's breaker rejects, the remaining candidates are
// scanned in index order; when every candidate is ejected, pick fails
// with batch.ErrCircuitOpen.
func (p *Pool) pick(rng *xrand.RNG, exclude int) (*replica, int, error) {
	n := len(p.replicas)
	m := n
	if exclude >= 0 && exclude < n {
		m = n - 1
	}
	if m <= 0 {
		return nil, -1, batch.ErrCircuitOpen
	}
	// idx maps a candidate position in [0, m) to a replica index,
	// skipping the excluded one.
	idx := func(k int) int {
		if exclude >= 0 && k >= exclude {
			return k + 1
		}
		return k
	}
	a := rng.Intn(m)
	chosen := idx(a)
	if m > 1 {
		b := rng.Intn(m - 1)
		if b >= a {
			b++ // shift past the first pick so the candidates differ
		}
		if cand := idx(b); p.replicas[cand].score() < p.replicas[chosen].score() {
			chosen = cand
		}
	}
	if r := p.replicas[chosen]; r.brk == nil || r.brk.Allow() == nil {
		p.rec.Add(metricPicks, 1, "replica", r.label)
		return r, chosen, nil
	}
	// The P2C winner is ejected: fall back to the first candidate whose
	// breaker admits the request.
	for k := 0; k < m; k++ {
		i := idx(k)
		if i == chosen {
			continue
		}
		if r := p.replicas[i]; r.brk == nil || r.brk.Allow() == nil {
			p.rec.Add(metricPicks, 1, "replica", r.label)
			return r, i, nil
		}
	}
	return nil, -1, batch.ErrCircuitOpen
}

// do runs one attempt on r, updating health state and feeding the
// breaker. Cancellations (the caller gave up, or a hedge race was lost)
// and client-side API errors do not count against the backend. The
// attempt gets its own child span, and context-aware replicas receive
// it so a remote hop (llm.HTTPPredictor) can continue the trace.
func (p *Pool) do(ctx context.Context, r *replica, promptText string, hedge bool) (llm.Response, error) {
	actx, sp := obs.StartSpanCtx(ctx, p.rec, "pool.attempt", "replica", r.label, "hedge", fmt.Sprint(hedge))
	r.inflight.Add(1)
	start := time.Now()
	var resp llm.Response
	var err error
	if r.cp != nil {
		resp, err = r.cp.QueryContext(actx, promptText)
	} else {
		resp, err = r.p.Query(promptText)
	}
	r.inflight.Add(-1)
	r.observe(time.Since(start).Seconds())
	if err != nil {
		sp.SetAttr("outcome", "error")
	} else {
		sp.SetAttr("outcome", "ok")
	}
	sp.End()
	p.judge(ctx, r, err)
	return resp, err
}

// judge translates one attempt outcome into a breaker verdict,
// emitting the ejection metric when the verdict opens the circuit.
func (p *Pool) judge(ctx context.Context, r *replica, err error) {
	if r.brk == nil {
		return
	}
	switch {
	case err == nil:
		r.brk.Report(true)
	case ctx.Err() != nil:
		// Canceled or past its deadline: not the backend's fault.
		r.brk.Cancel()
	default:
		var apiErr *llm.APIError
		if errors.As(err, &apiErr) && apiErr.StatusCode < 500 && apiErr.StatusCode != 429 {
			// Client-side error: the request's fault, not the replica's.
			r.brk.Cancel()
			return
		}
		before := r.brk.State()
		r.brk.Report(false)
		if before != batch.BreakerOpen && r.brk.State() == batch.BreakerOpen {
			p.rec.Add(metricEjected, 1, "replica", r.label)
		}
	}
}

// Query implements llm.Predictor.
func (p *Pool) Query(promptText string) (llm.Response, error) {
	return p.QueryContext(context.Background(), promptText)
}

// result is one attempt's outcome in a hedge race.
type result struct {
	resp  llm.Response
	err   error
	hedge bool
}

// QueryContext implements llm.ContextPredictor: pick a replica, run the
// query, and — when hedging is on and the first attempt outlives
// HedgeAfter — race a second replica against it. The first success
// wins and the loser's context is canceled; the response is returned
// exactly once, so callers (token meters, caches) never see duplicate
// answers. When both attempts fail, the primary's error is returned.
func (p *Pool) QueryContext(ctx context.Context, promptText string) (llm.Response, error) {
	rng := xrand.New(p.cfg.Seed ^ p.seq.Add(1))
	_, psp := obs.StartSpanCtx(ctx, p.rec, "pool.pick", "kind", "primary")
	first, firstIdx, err := p.pick(rng, -1)
	if err != nil {
		psp.SetAttr("verdict", "all_ejected")
		psp.End()
		return llm.Response{}, err
	}
	psp.SetAttr("replica", first.label)
	psp.End()
	if !p.cfg.Hedge || len(p.replicas) < 2 {
		return p.do(ctx, first, promptText, false)
	}

	// Buffered to the maximum number of attempts: a losing goroutine
	// completes its send and exits even after the winner returned, so a
	// hedge race can never leak a goroutine.
	ch := make(chan result, 2)
	// won marks the race decided: the first successful attempt takes it
	// and is billed as the winning path by the caller; every attempt
	// completing after that (or failing while another won) ledgers its
	// duplicate work as an unbilled hedge loss. The CAS runs in the
	// attempt goroutine so a loser finishing after the caller moved on
	// still books its loss against the query's ledger — Ledger.Close
	// drops charges that arrive after the books are published.
	var won atomic.Bool
	launch := func(actx context.Context, rep *replica, hedge bool) {
		go func() {
			start := time.Now()
			resp, err := p.do(actx, rep, promptText, hedge)
			lost := false
			if err == nil {
				lost = !won.CompareAndSwap(false, true)
			} else {
				lost = won.Load()
			}
			if lost {
				obs.Charge(ctx, obs.StageHedgeLoss, time.Since(start),
					resp.InputTokens+resp.OutputTokens, false)
			}
			ch <- result{resp, err, hedge}
		}()
	}
	ctx1, cancel1 := context.WithCancel(ctx)
	defer cancel1()
	launch(ctx1, first, false)

	timer := time.NewTimer(p.cfg.HedgeAfter)
	defer timer.Stop()
	timerC := timer.C

	var cancel2 context.CancelFunc
	pending := 1
	var firstErr error
	for {
		select {
		case <-timerC:
			timerC = nil
			_, hsp := obs.StartSpanCtx(ctx, p.rec, "pool.pick", "kind", "hedge")
			second, _, perr := p.pick(rng, firstIdx)
			if perr != nil {
				// No healthy second replica; keep waiting on the first.
				hsp.SetAttr("verdict", "all_ejected")
				hsp.End()
				continue
			}
			hsp.SetAttr("replica", second.label)
			hsp.End()
			p.rec.Add(metricHedges, 1)
			var ctx2 context.Context
			ctx2, cancel2 = context.WithCancel(ctx)
			defer cancel2()
			pending++
			launch(ctx2, second, true)
		case r := <-ch:
			pending--
			if r.err == nil {
				if r.hedge {
					p.rec.Add(metricHedgeWins, 1)
					cancel1()
				} else if cancel2 != nil {
					cancel2()
				}
				return r.resp, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if pending == 0 {
				// Every launched attempt failed. Retries belong to the
				// batch executor above, not the pool.
				return llm.Response{}, firstErr
			}
		}
	}
}

var (
	_ llm.Predictor        = (*Pool)(nil)
	_ llm.ContextPredictor = (*Pool)(nil)
	_ llm.Identifier       = (*Pool)(nil)
)
