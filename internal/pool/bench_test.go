package pool

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/llm"
)

// tailPred answers fast except for every slowEvery-th call on this
// replica, which stalls for slow. Slowness is a property of the
// replica-moment, not the prompt, so a hedge sent to a different
// replica escapes the stall — exactly the failure mode hedging buys
// back. The stall honors ctx, so a canceled loser releases promptly.
type tailPred struct {
	calls     atomic.Int64
	slowEvery int64
	fast      time.Duration
	slow      time.Duration
}

func (p *tailPred) Name() string     { return "tail" }
func (p *tailPred) Identity() string { return "tail/bench" }

func (p *tailPred) Query(prompt string) (llm.Response, error) {
	return p.QueryContext(context.Background(), prompt)
}

func (p *tailPred) QueryContext(ctx context.Context, prompt string) (llm.Response, error) {
	d := p.fast
	if n := p.calls.Add(1); p.slowEvery > 0 && n%p.slowEvery == 0 {
		d = p.slow
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return llm.Response{Text: "ok", InputTokens: len(prompt), OutputTokens: 1}, nil
	case <-ctx.Done():
		return llm.Response{}, ctx.Err()
	}
}

func percentile(lats []time.Duration, q float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	k := int(q * float64(len(s)-1))
	return s[k]
}

// BenchmarkPoolHedgedTail measures the tail-latency win from hedging:
// a single occasionally-stalling backend versus a 3-replica hedged
// pool of the same backends. Every pass runs a fixed query count per
// arm so the p99 is comparable across iterations; the final pass is
// guarded (the hedged p99 must beat half the single-backend p99) and,
// when MQO_BENCH_JSON names a file, appended to it as one JSON line
// (the Makefile benchpool target points it at BENCH_pool.json).
func BenchmarkPoolHedgedTail(b *testing.B) {
	const (
		queries    = 600
		slowEvery  = 50 // ~2% of calls stall
		fastLat    = 200 * time.Microsecond
		slowLat    = 20 * time.Millisecond
		hedgeAfter = 2 * time.Millisecond
	)
	mk := func() llm.Predictor {
		return &tailPred{slowEvery: slowEvery, fast: fastLat, slow: slowLat}
	}
	measure := func(p llm.ContextPredictor) []time.Duration {
		lats := make([]time.Duration, queries)
		for i := range lats {
			start := time.Now()
			if _, err := p.QueryContext(context.Background(), fmt.Sprintf("q-%d", i)); err != nil {
				b.Fatal(err)
			}
			lats[i] = time.Since(start)
		}
		return lats
	}

	var p99Single, p99Hedged time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		single, err := New([]llm.Predictor{mk()}, Config{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		hedged, err := New([]llm.Predictor{mk(), mk(), mk()}, Config{
			Hedge: true, HedgeAfter: hedgeAfter, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		p99Single = percentile(measure(single), 0.99)
		p99Hedged = percentile(measure(hedged), 0.99)
	}
	b.StopTimer()

	b.ReportMetric(float64(p99Single.Microseconds())/1e3, "p99-single-ms")
	b.ReportMetric(float64(p99Hedged.Microseconds())/1e3, "p99-hedged-ms")
	// The stall is 100x the fast path and hedges fire at 1/10th of the
	// stall, so anything short of a 2x p99 win means hedging is broken.
	if p99Hedged*2 >= p99Single {
		b.Fatalf("hedging did not cut the tail: p99 single=%v hedged=%v", p99Single, p99Hedged)
	}

	if path := os.Getenv("MQO_BENCH_JSON"); path != "" {
		line, err := json.Marshal(map[string]any{
			"bench":          "BenchmarkPoolHedgedTail",
			"queries":        queries,
			"slow_every":     slowEvery,
			"hedge_after_ms": float64(hedgeAfter.Microseconds()) / 1e3,
			"p99_single_ms":  float64(p99Single.Microseconds()) / 1e3,
			"p99_hedged_ms":  float64(p99Hedged.Microseconds()) / 1e3,
		})
		if err != nil {
			b.Fatal(err)
		}
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			b.Fatal(err)
		}
		defer f.Close()
		if _, err := f.Write(append(line, '\n')); err != nil {
			b.Fatal(err)
		}
	}
}
