package pool

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/llm"
	"repro/internal/promptcache"
)

// tailPred answers fast except for every slowEvery-th call on this
// replica, which stalls for slow. Slowness is a property of the
// replica-moment, not the prompt, so a hedge sent to a different
// replica escapes the stall — exactly the failure mode hedging buys
// back. The stall honors ctx, so a canceled loser releases promptly.
type tailPred struct {
	calls     atomic.Int64
	slowEvery int64
	fast      time.Duration
	slow      time.Duration
}

func (p *tailPred) Name() string     { return "tail" }
func (p *tailPred) Identity() string { return "tail/bench" }

func (p *tailPred) Query(prompt string) (llm.Response, error) {
	return p.QueryContext(context.Background(), prompt)
}

func (p *tailPred) QueryContext(ctx context.Context, prompt string) (llm.Response, error) {
	d := p.fast
	if n := p.calls.Add(1); p.slowEvery > 0 && n%p.slowEvery == 0 {
		d = p.slow
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return llm.Response{Text: "ok", InputTokens: len(prompt), OutputTokens: 1}, nil
	case <-ctx.Done():
		return llm.Response{}, ctx.Err()
	}
}

func percentile(lats []time.Duration, q float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	k := int(q * float64(len(s)-1))
	return s[k]
}

// BenchmarkPoolHedgedTail measures the tail-latency win from hedging:
// a single occasionally-stalling backend versus a 3-replica hedged
// pool of the same backends. Every pass runs a fixed query count per
// arm so the p99 is comparable across iterations; the final pass is
// guarded (the hedged p99 must beat half the single-backend p99) and,
// when MQO_BENCH_JSON names a file, appended to it as one JSON line
// (the Makefile benchpool target points it at BENCH_pool.json).
func BenchmarkPoolHedgedTail(b *testing.B) {
	const (
		queries    = 600
		slowEvery  = 50 // ~2% of calls stall
		fastLat    = 200 * time.Microsecond
		slowLat    = 20 * time.Millisecond
		hedgeAfter = 2 * time.Millisecond
	)
	mk := func() llm.Predictor {
		return &tailPred{slowEvery: slowEvery, fast: fastLat, slow: slowLat}
	}
	measure := func(p llm.ContextPredictor) []time.Duration {
		lats := make([]time.Duration, queries)
		for i := range lats {
			start := time.Now()
			if _, err := p.QueryContext(context.Background(), fmt.Sprintf("q-%d", i)); err != nil {
				b.Fatal(err)
			}
			lats[i] = time.Since(start)
		}
		return lats
	}

	var p99Single, p99Hedged time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		single, err := New([]llm.Predictor{mk()}, Config{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		hedged, err := New([]llm.Predictor{mk(), mk(), mk()}, Config{
			Hedge: true, HedgeAfter: hedgeAfter, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		p99Single = percentile(measure(single), 0.99)
		p99Hedged = percentile(measure(hedged), 0.99)
	}
	b.StopTimer()

	b.ReportMetric(float64(p99Single.Microseconds())/1e3, "p99-single-ms")
	b.ReportMetric(float64(p99Hedged.Microseconds())/1e3, "p99-hedged-ms")
	// The stall is 100x the fast path and hedges fire at 1/10th of the
	// stall, so anything short of a 2x p99 win means hedging is broken.
	if p99Hedged*2 >= p99Single {
		b.Fatalf("hedging did not cut the tail: p99 single=%v hedged=%v", p99Single, p99Hedged)
	}

	if path := os.Getenv("MQO_BENCH_JSON"); path != "" {
		appendBenchJSON(b, path, map[string]any{
			"bench":          "BenchmarkPoolHedgedTail",
			"queries":        queries,
			"slow_every":     slowEvery,
			"hedge_after_ms": float64(hedgeAfter.Microseconds()) / 1e3,
			"p99_single_ms":  float64(p99Single.Microseconds()) / 1e3,
			"p99_hedged_ms":  float64(p99Hedged.Microseconds()) / 1e3,
		})
	}
}

// appendBenchJSON appends one JSON line to the benchmark results file
// (the Makefile benchpool target points MQO_BENCH_JSON at
// BENCH_pool.json).
func appendBenchJSON(b *testing.B, path string, fields map[string]any) {
	b.Helper()
	line, err := json.Marshal(fields)
	if err != nil {
		b.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write(append(line, '\n')); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkPoolAffinityColdWarm measures the warm-path token win from
// cache-affine routing: 3 replicas, each fronting its own disk cache
// over a backend whose calls cost real latency. A cold sweep populates
// the per-replica shards, then a warm re-run of the same prompts
// measures *misroutes* — prompts sent to a replica whose cache never
// saw them, each paying a full backend call. The affinity scorer is
// guarded at zero warm misroutes (serial driver, healthy replicas:
// the owner is always ready, so a single miss is a placement bug);
// the P2C arm shows the cost of cache-blind routing on the same
// workload, and must misroute — if it stops doing so, the baseline is
// broken and the comparison meaningless.
func BenchmarkPoolAffinityColdWarm(b *testing.B) {
	const (
		queries    = 400
		replicas   = 3
		backendLat = 500 * time.Microsecond
	)
	build := func(scorer Scorer) (*Pool, []*tailPred) {
		inners := make([]*tailPred, replicas)
		wrapped := make([]llm.Predictor, replicas)
		for i := range wrapped {
			inners[i] = &tailPred{fast: backendLat}
			pc, err := promptcache.Open(b.TempDir(), promptcache.Config{})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { pc.Close() })
			wrapped[i] = promptcache.Wrap(inners[i], pc)
		}
		pl, err := New(wrapped, Config{Scorer: scorer, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		return pl, inners
	}
	backendCalls := func(inners []*tailPred) int64 {
		var n int64
		for _, p := range inners {
			n += p.calls.Load()
		}
		return n
	}
	sweep := func(pl *Pool) time.Duration {
		start := time.Now()
		for i := 0; i < queries; i++ {
			if _, err := pl.QueryContext(context.Background(), fmt.Sprintf("q-%d", i)); err != nil {
				b.Fatal(err)
			}
		}
		return time.Since(start)
	}

	var affinityMisroutes, p2cMisroutes int64
	var coldWall, warmWall time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		affPool, affInners := build(&Affinity{})
		coldWall = sweep(affPool)
		cold := backendCalls(affInners)
		warmWall = sweep(affPool)
		affinityMisroutes = backendCalls(affInners) - cold

		p2cPool, p2cInners := build(nil)
		sweep(p2cPool)
		p2cCold := backendCalls(p2cInners)
		sweep(p2cPool)
		p2cMisroutes = backendCalls(p2cInners) - p2cCold
	}
	b.StopTimer()

	affRate := float64(affinityMisroutes) / float64(queries)
	p2cRate := float64(p2cMisroutes) / float64(queries)
	b.ReportMetric(affRate, "warm-misroute-rate")
	b.ReportMetric(p2cRate, "warm-misroute-rate-p2c")
	b.ReportMetric(float64(coldWall.Microseconds())/1e3, "cold-ms")
	b.ReportMetric(float64(warmWall.Microseconds())/1e3, "warm-ms")
	if affinityMisroutes != 0 {
		b.Fatalf("affinity warm pass misrouted %d/%d prompts; warm shards must stay pinned to their owner", affinityMisroutes, queries)
	}
	if p2cRate < 0.2 {
		b.Fatalf("p2c baseline misrouted only %.2f of warm prompts; the comparison arm is broken", p2cRate)
	}

	if path := os.Getenv("MQO_BENCH_JSON"); path != "" {
		appendBenchJSON(b, path, map[string]any{
			"bench":                  "BenchmarkPoolAffinityColdWarm",
			"queries":                queries,
			"replicas":               replicas,
			"backend_ms":             float64(backendLat.Microseconds()) / 1e3,
			"warm_misroute_rate":     affRate,
			"warm_misroute_rate_p2c": p2cRate,
			"cold_ms":                float64(coldWall.Microseconds()) / 1e3,
			"warm_ms":                float64(warmWall.Microseconds()) / 1e3,
		})
	}
}
