package pool

import (
	"hash/fnv"
	"sort"

	"repro/internal/promptcache"
	"repro/internal/xrand"
)

// This file is the pool's routing brain, split out from the mechanics
// of running attempts. A Scorer turns one routing decision into a
// ranked preference list over the replica set; the pool walks that
// list and the per-replica breakers keep the final say on admission.
// Two scorers ship: P2C (the historical latency×load power-of-two-
// choices policy) and Affinity (rendezvous placement of prompt-cache
// keys, so a warm cache shard is owned by exactly one replica and a
// repeated prompt never pays cold-replica tokens).

// Attempt describes one routing decision: which prompt is being
// placed, whether this is the hedge leg of a race, and which replica
// index (if any) must be avoided because it is already running the
// same prompt.
type Attempt struct {
	// Prompt is the full prompt text being routed.
	Prompt string
	// Key is the prompt's cache key (promptcache.KeyOf over the pool's
	// namespace), precomputed once per query so a hedge re-pick does
	// not re-hash. Zero when the configured scorer is key-blind.
	Key promptcache.Key
	// Hedge marks the second leg of a hedge race.
	Hedge bool
	// Exclude is a replica index that must not be returned (the primary
	// attempt's replica, during a hedge pick); -1 excludes nothing.
	Exclude int
	// RNG is the per-query deterministic stream scorers draw candidate
	// picks from. Scorers must consume it identically for identical
	// (Attempt, View) inputs or routing stops being replayable.
	RNG *xrand.RNG
}

// View is the read-only replica state a Scorer ranks against. The pool
// implements it; tests may substitute fixtures.
type View interface {
	// Len is the replica count; valid indices are [0, Len).
	Len() int
	// Score is the load estimate (EWMA latency × queue depth) — lower
	// is better.
	Score(i int) float64
	// Inflight is the replica's current in-flight request count.
	Inflight(i int) int64
	// ID is the replica's stable rendezvous identity: derived from the
	// backend's answer-function identity, so the key→replica placement
	// survives pool reconstruction and (for distinct backends) replica
	// reordering.
	ID(i int) string
	// Ready reports whether the replica's breaker would plausibly admit
	// a request right now, without the side effects of asking it to.
	Ready(i int) bool
}

// Ranking is a Scorer's verdict: Order lists candidate replica indices
// most-preferred first (the excluded index never appears), and Affine
// names the replica that structurally *owns* the attempt's cache key,
// or -1 for scorers with no affinity notion. Affine may legitimately
// be absent from Order (ejected or overloaded owner) — the pool still
// uses it to account the pick as an affinity hit or miss.
type Ranking struct {
	Order  []int
	Affine int
}

// Scorer ranks the replica set for one attempt. Implementations must
// be safe for concurrent use and must not mutate the View. Scorers
// express preference only: the pool walks Order and the per-replica
// breakers keep authority over admission, so a scorer can never force
// traffic into an open circuit.
type Scorer interface {
	// Name labels the scorer on pool.pick spans.
	Name() string
	Rank(a Attempt, v View) Ranking
}

// P2C is the default scorer: power-of-two-choices between two random
// candidates by latency×load score, near-optimal spread with no
// coordination. The remaining candidates are ordered ready-first by
// ascending score, so when the winner's breaker refuses, spill load
// spreads across the healthy replicas instead of piling onto the
// lowest index.
type P2C struct{}

// Name implements Scorer.
func (P2C) Name() string { return "p2c" }

// Rank implements Scorer.
func (P2C) Rank(a Attempt, v View) Ranking {
	return Ranking{Order: p2cOrder(a, v, -1), Affine: -1}
}

// p2cOrder is the shared power-of-two-choices ordering: draw two
// distinct candidates from the RNG, put the lower-scored one first,
// then append every other candidate ready-first by ascending score.
// Both a.Exclude and skip are left out entirely. The two RNG draws are
// made exactly as the pre-scorer pool made them, so routing traces
// replay bit-for-bit across the refactor.
func p2cOrder(a Attempt, v View, skip int) []int {
	n := v.Len()
	excluded := func(i int) bool { return i == a.Exclude || i == skip }
	m := 0
	for i := 0; i < n; i++ {
		if !excluded(i) {
			m++
		}
	}
	if m == 0 {
		return nil
	}
	// idx maps a candidate position in [0, m) to a replica index,
	// skipping the excluded ones.
	idx := func(k int) int {
		for i := 0; i < n; i++ {
			if excluded(i) {
				continue
			}
			if k == 0 {
				return i
			}
			k--
		}
		return -1
	}
	x := a.RNG.Intn(m)
	chosen := idx(x)
	if m > 1 {
		y := a.RNG.Intn(m - 1)
		if y >= x {
			y++ // shift past the first pick so the candidates differ
		}
		if cand := idx(y); v.Score(cand) < v.Score(chosen) {
			chosen = cand
		}
	}
	order := make([]int, 0, m)
	order = append(order, chosen)
	rest := make([]int, 0, m-1)
	for i := 0; i < n; i++ {
		if !excluded(i) && i != chosen {
			rest = append(rest, i)
		}
	}
	sort.SliceStable(rest, func(p, q int) bool {
		rp, rq := v.Ready(rest[p]), v.Ready(rest[q])
		if rp != rq {
			return rp // admitted-looking replicas before ejected ones
		}
		return v.Score(rest[p]) < v.Score(rest[q])
	})
	return append(order, rest...)
}

// DefaultAffinityRatio is the overload guard for the Affinity scorer:
// the affine replica is abandoned for this pick only when its score
// exceeds Ratio× the best alternative's AND its queue is Ratio× deeper.
// Both conditions are required because unobserved replicas score a
// near-zero sentinel — a score-only guard would exile warm traffic to
// any replica that simply hasn't served yet.
const DefaultAffinityRatio = 4.0

// Affinity routes each prompt to the replica that rendezvous hashing
// (highest random weight over the prompt-cache key) assigns as the
// owner of that key. Every replica whose disk cache saw the prompt
// once keeps answering it for free; adding or removing a replica moves
// only ~1/n of the key space (no modulo reshuffle). The full ranking
// is the rendezvous order, so:
//
//   - a hedge attempt, which excludes the primary, lands on the key's
//     *second* hash choice — the replica most likely to have the
//     prompt warm from a previous degraded pick — instead of a random
//     cold one;
//   - when the owner is ejected, traffic for its shard degrades to
//     P2C over the healthy remainder (the owner is kept last in the
//     order so a half-open probe can still reach it when everything
//     else is down too).
//
// The zero value is ready to use (Ratio defaults to
// DefaultAffinityRatio).
type Affinity struct {
	// Ratio tunes the overload guard; <= 0 means DefaultAffinityRatio.
	Ratio float64
}

// Name implements Scorer.
func (s *Affinity) Name() string { return "affinity" }

// Rank implements Scorer.
func (s *Affinity) Rank(a Attempt, v View) Ranking {
	ord := rendezvousOrder(a.Key, v, a.Exclude)
	if len(ord) == 0 {
		return Ranking{Affine: -1}
	}
	affine := ord[0]
	if v.Ready(affine) && !s.overloaded(affine, a.Exclude, v) {
		return Ranking{Order: ord, Affine: affine}
	}
	// Degraded path: the key's owner is ejected or drowning. Spread its
	// shard by P2C over the rest — concentrating a dead owner's load on
	// the second hash choice would just knock replicas over in
	// rendezvous order — but keep the owner last so a recovering
	// breaker still sees probes. Affine stays set: these picks are the
	// misses the mqo_pool_affinity_misses_total counter exists to show.
	rest := p2cOrder(a, v, affine)
	return Ranking{Order: append(rest, affine), Affine: affine}
}

// overloaded is the guard that lets a hot shard spill: true only when
// the owner is clearly worse than the best other ready replica on both
// the score and the queue-depth axis (see DefaultAffinityRatio for why
// both).
func (s *Affinity) overloaded(affine, exclude int, v View) bool {
	ratio := s.Ratio
	if ratio <= 0 {
		ratio = DefaultAffinityRatio
	}
	best := -1
	for i := 0; i < v.Len(); i++ {
		if i == affine || i == exclude || !v.Ready(i) {
			continue
		}
		if best < 0 || v.Score(i) < v.Score(best) {
			best = i
		}
	}
	if best < 0 {
		return false // nowhere better to go
	}
	return v.Score(affine) > ratio*v.Score(best) &&
		float64(v.Inflight(affine)+1) > ratio*float64(v.Inflight(best)+1)
}

// rendezvousOrder returns every non-excluded replica index by
// descending highest-random-weight for key: position 0 is the key's
// owner, position 1 the second hash choice a hedge should stay warm
// on, and so on. Ties (possible only with colliding hashes) break by
// index for determinism.
func rendezvousOrder(key promptcache.Key, v View, exclude int) []int {
	n := v.Len()
	ord := make([]int, 0, n)
	w := make([]uint64, n)
	for i := 0; i < n; i++ {
		if i == exclude {
			continue
		}
		ord = append(ord, i)
		w[i] = rendezvousWeight(key, v.ID(i))
	}
	sort.SliceStable(ord, func(p, q int) bool { return w[ord[p]] > w[ord[q]] })
	return ord
}

// rendezvousWeight hashes (key, replica identity) to the replica's
// weight for that key — FNV-1a 64, cheap and stable across processes.
func rendezvousWeight(key promptcache.Key, id string) uint64 {
	h := fnv.New64a()
	h.Write(key[:])
	h.Write([]byte(id))
	return h.Sum64()
}

var (
	_ Scorer = P2C{}
	_ Scorer = (*Affinity)(nil)
)
