package pool

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/llm"
	"repro/internal/obs"
	"repro/internal/prompt"
	"repro/internal/tag"
)

// TestProxyHopTracePropagation reproduces llmserve's multi-upstream
// proxy topology in-process — client → proxy Handler (pool of
// HTTPPredictors) → upstream Handler (simulator) — and checks one
// trace ID spans all three processes' rings with parent IDs intact at
// both HTTP hops: the proxy's request span parents on the client's
// outgoing llm.http span, the upstream's on the proxy's.
func TestProxyHopTracePropagation(t *testing.T) {
	spec, err := tag.SmallSpec("cora", 200)
	if err != nil {
		t.Fatal(err)
	}
	g := tag.Generate(spec, 101, tag.Options{})
	promptText := prompt.Build(prompt.Request{
		TargetTitle:    g.Nodes[0].Title,
		TargetAbstract: g.Nodes[0].Abstract,
		Categories:     g.Classes,
	})

	// Upstream: the simulator behind a chat-completions Handler.
	regUp := obs.NewRegistry()
	hUp := llm.NewHandler(llm.NewSim(llm.GPT35(), g.Vocab, g.Classes, 7))
	hUp.Obs = regUp
	upstream := httptest.NewServer(hUp)
	defer upstream.Close()

	// Proxy: a Handler whose predictor is a pool of HTTP clients on the
	// upstream (llmserve -upstreams mode).
	newUp := func() llm.Predictor {
		hp, err := llm.NewHTTPPredictor(llm.HTTPConfig{BaseURL: upstream.URL, Model: "sim"})
		if err != nil {
			t.Fatal(err)
		}
		return hp
	}
	regProxy := obs.NewRegistry()
	pl, err := New([]llm.Predictor{newUp(), newUp()}, Config{Obs: regProxy})
	if err != nil {
		t.Fatal(err)
	}
	hProxy := llm.NewHandler(pl)
	hProxy.Obs = regProxy
	proxy := httptest.NewServer(hProxy)
	defer proxy.Close()

	// Client: an HTTP predictor on the proxy, called under a root span.
	client, err := llm.NewHTTPPredictor(llm.HTTPConfig{BaseURL: proxy.URL, Model: "sim"})
	if err != nil {
		t.Fatal(err)
	}
	regClient := obs.NewRegistry()
	cctx, root := obs.StartSpanCtx(context.Background(), regClient, "client.query")
	resp, err := client.QueryContext(cctx, promptText)
	if err != nil {
		t.Fatal(err)
	}
	root.End()
	traceID := root.TraceID()

	// Hop 0: the client ring holds the outgoing llm.http span under the
	// root.
	clientHTTP := spanNamed(t, regClient, traceID, "llm.http")
	if clientHTTP.ParentID != root.SpanID() {
		t.Fatalf("client llm.http parent = %s, want root %s", clientHTTP.ParentID, root.SpanID())
	}

	// Hop 1: the proxy's request span joined the client's trace, with
	// the client's llm.http span as remote parent; underneath it the
	// pool routed and called out again.
	proxyReq := spanNamed(t, regProxy, traceID, "llm.request")
	if proxyReq.ParentID != clientHTTP.SpanID {
		t.Fatalf("proxy llm.request parent = %s, want client llm.http %s", proxyReq.ParentID, clientHTTP.SpanID)
	}
	spanNamed(t, regProxy, traceID, "pool.pick")
	spanNamed(t, regProxy, traceID, "pool.attempt")
	proxyHTTP := spanNamed(t, regProxy, traceID, "llm.http")

	// Hop 2: the upstream's request span parents on the proxy's
	// outgoing llm.http span — two process boundaries, one tree.
	upReq := spanNamed(t, regUp, traceID, "llm.request")
	if upReq.ParentID != proxyHTTP.SpanID {
		t.Fatalf("upstream llm.request parent = %s, want proxy llm.http %s", upReq.ParentID, proxyHTTP.SpanID)
	}

	// Both hops kept their books: each server billed the predict stage
	// with exactly the tokens it served.
	for _, tt := range []struct {
		name string
		reg  *obs.Registry
	}{{"proxy", regProxy}, {"upstream", regUp}} {
		led, ok := tt.reg.LedgerByTrace(traceID)
		if !ok {
			t.Fatalf("%s kept no ledger for trace %s", tt.name, traceID)
		}
		if want := resp.InputTokens + resp.OutputTokens; led.BilledTokens != want {
			t.Errorf("%s billed %d tokens, want %d", tt.name, led.BilledTokens, want)
		}
	}
}

// TestProxyErrorBodyCarriesTraceID checks the JSON error responses of
// a traced request quote the request's trace ID, so a client can jump
// from a 4xx straight to /debug/querytrace?id=….
func TestProxyErrorBodyCarriesTraceID(t *testing.T) {
	spec, err := tag.SmallSpec("cora", 50)
	if err != nil {
		t.Fatal(err)
	}
	g := tag.Generate(spec, 101, tag.Options{})
	reg := obs.NewRegistry()
	h := llm.NewHandler(llm.NewSim(llm.GPT35(), g.Vocab, g.Classes, 1))
	h.Obs = reg
	srv := httptest.NewServer(h)
	defer srv.Close()

	const remoteTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	req, err := http.NewRequest("POST", srv.URL+llm.ChatCompletionsPath,
		strings.NewReader(`{"model":"sim","messages":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.TraceParentHeader, "00-"+remoteTrace+"-00f067aa0ba902b7-01")
	httpResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", httpResp.StatusCode)
	}
	if got := httpResp.Header.Get(obs.HeaderTraceID); got != remoteTrace {
		t.Fatalf("X-Trace-Id = %q, want %q", got, remoteTrace)
	}
	var body struct {
		Error struct {
			Message string `json:"message"`
			TraceID string `json:"trace_id"`
		} `json:"error"`
	}
	if err := json.NewDecoder(httpResp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Error.TraceID != remoteTrace {
		t.Fatalf("error body trace_id = %q, want %q", body.Error.TraceID, remoteTrace)
	}
}

// spanNamed returns the one retained span with the given name inside a
// trace, failing the test when absent.
func spanNamed(t *testing.T, reg *obs.Registry, traceID, name string) obs.Trace {
	t.Helper()
	for _, sp := range reg.TraceByID(traceID) {
		if sp.Name == name {
			return sp
		}
	}
	var names []string
	for _, sp := range reg.TraceByID(traceID) {
		names = append(names, sp.Name)
	}
	t.Fatalf("trace %s has no %q span (has %v)", traceID, name, names)
	return obs.Trace{}
}
