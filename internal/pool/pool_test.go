package pool

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/batch"
	"repro/internal/llm"
	"repro/internal/obs"
)

// fakePred is a controllable ContextPredictor: per-call latency, a
// scripted error, and counters for calls, completions and observed
// cancellations.
type fakePred struct {
	name  string
	id    string
	delay time.Duration
	err   error
	// answer, when non-nil, overrides the default echo response.
	answer func(prompt string) llm.Response

	calls     atomic.Int64
	completed atomic.Int64
	canceled  atomic.Int64
}

func (f *fakePred) Name() string { return f.name }

func (f *fakePred) Identity() string {
	if f.id != "" {
		return f.id
	}
	return f.name
}

func (f *fakePred) Query(prompt string) (llm.Response, error) {
	return f.QueryContext(context.Background(), prompt)
}

func (f *fakePred) QueryContext(ctx context.Context, prompt string) (llm.Response, error) {
	f.calls.Add(1)
	if f.delay > 0 {
		t := time.NewTimer(f.delay)
		defer t.Stop()
		select {
		case <-ctx.Done():
			f.canceled.Add(1)
			return llm.Response{}, ctx.Err()
		case <-t.C:
		}
	}
	if f.err != nil {
		return llm.Response{}, f.err
	}
	f.completed.Add(1)
	if f.answer != nil {
		return f.answer(prompt), nil
	}
	return llm.Response{
		Text: f.name + ":" + prompt, Category: "C",
		InputTokens: len(prompt), OutputTokens: 3,
	}, nil
}

func mustPool(t *testing.T, cfg Config, replicas ...llm.Predictor) *Pool {
	t.Helper()
	p, err := New(replicas, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewRejectsEmpty(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("New(nil) succeeded, want error")
	}
}

// TestIdentityTransparent: replicas sharing one identity make the pool
// identity-transparent, so promptcache namespaces are unchanged by the
// replica count — the property the golden warm-cache rows rely on.
func TestIdentityTransparent(t *testing.T) {
	a := &fakePred{name: "m", id: "m/seed=1"}
	p1 := mustPool(t, Config{}, a)
	p3 := mustPool(t, Config{}, a, a, a)
	if got := p1.Identity(); got != "m/seed=1" {
		t.Errorf("1-replica identity = %q, want m/seed=1", got)
	}
	if got := p3.Identity(); got != "m/seed=1" {
		t.Errorf("3-replica identity = %q, want m/seed=1", got)
	}
}

// TestIdentityFoldsDistinctReplicas: distinct backends answer
// differently, so the identity must fold the sorted set — in either
// construction order.
func TestIdentityFoldsDistinctReplicas(t *testing.T) {
	a := &fakePred{name: "a", id: "m@hostA"}
	b := &fakePred{name: "b", id: "m@hostB"}
	pab := mustPool(t, Config{}, a, b)
	pba := mustPool(t, Config{}, b, a)
	want := "pool(m@hostA|m@hostB)"
	if got := pab.Identity(); got != want {
		t.Errorf("Identity() = %q, want %q", got, want)
	}
	if got := pba.Identity(); got != pab.Identity() {
		t.Errorf("identity depends on replica order: %q vs %q", got, pab.Identity())
	}
}

// TestRoutingPreservesAnswers: with replicas that answer as a pure
// function of the prompt, plan outputs are identical for any replica
// count and hedging setting — the determinism contract.
func TestRoutingPreservesAnswers(t *testing.T) {
	answer := func(prompt string) llm.Response {
		return llm.Response{Text: "ans:" + prompt, Category: strings.ToUpper(prompt)}
	}
	mk := func() *fakePred { return &fakePred{name: "m", id: "m/seed=1", answer: answer} }
	prompts := make([]string, 50)
	for i := range prompts {
		prompts[i] = fmt.Sprintf("prompt-%d", i)
	}
	want := map[string]string{}
	for _, pr := range prompts {
		want[pr] = answer(pr).Category
	}

	for name, pl := range map[string]*Pool{
		"1-replica":       mustPool(t, Config{Seed: 7}, mk()),
		"3-replica":       mustPool(t, Config{Seed: 7}, mk(), mk(), mk()),
		"3-replica-hedge": mustPool(t, Config{Seed: 7, Hedge: true, HedgeAfter: time.Nanosecond}, mk(), mk(), mk()),
	} {
		var wg sync.WaitGroup
		got := make([]string, len(prompts))
		for i, pr := range prompts {
			wg.Add(1)
			go func(i int, pr string) {
				defer wg.Done()
				resp, err := pl.QueryContext(context.Background(), pr)
				if err != nil {
					t.Errorf("%s: query %q: %v", name, pr, err)
					return
				}
				got[i] = resp.Category
			}(i, pr)
		}
		wg.Wait()
		for i, pr := range prompts {
			if got[i] != want[pr] {
				t.Errorf("%s: prompt %q answered %q, want %q", name, pr, got[i], want[pr])
			}
		}
	}
}

// TestHedging is the table-driven contract for hedged requests.
func TestHedging(t *testing.T) {
	hang := 30 * time.Second // far beyond any test deadline; canceled, not waited
	tests := []struct {
		name       string
		primary    *fakePred
		hedgeAfter time.Duration
		wantHedges float64
		wantWins   float64
	}{
		{
			name:       "no hedge before HedgeAfter",
			primary:    &fakePred{name: "fast", id: "x"},
			hedgeAfter: 5 * time.Second, // primary answers instantly; timer never fires
			wantHedges: 0,
			wantWins:   0,
		},
		{
			name:       "hedge fires and wins when primary hangs",
			primary:    &fakePred{name: "slow", id: "x", delay: hang},
			hedgeAfter: time.Millisecond,
			wantHedges: 1,
			wantWins:   1,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			reg := obs.NewRegistry()
			secondary := &fakePred{name: "second", id: "x"}
			// Seed chosen so the hung primary is picked first isn't
			// guaranteed; pin it by making the secondary busy-looking is
			// fragile — instead run until the slow replica was primary at
			// least once, or accept either pick for the fast case.
			pl := mustPool(t, Config{Hedge: true, HedgeAfter: tc.hedgeAfter, Seed: 1, Obs: reg},
				tc.primary, secondary)

			resp, err := pl.QueryContext(context.Background(), "p")
			if err != nil {
				t.Fatalf("QueryContext: %v", err)
			}
			if resp.Text == "" {
				t.Fatal("empty response")
			}
			if got := reg.CounterValue("mqo_pool_hedges_total"); got != tc.wantHedges {
				// The pick is pseudo-random: the "hang" case only hedges
				// when the slow replica was picked first. Retry across
				// fresh queries until it is (bounded).
				if tc.wantHedges > 0 {
					hedged := got > 0
					for i := 0; i < 50 && !hedged; i++ {
						if _, err := pl.QueryContext(context.Background(), fmt.Sprintf("p%d", i)); err != nil {
							t.Fatalf("QueryContext: %v", err)
						}
						hedged = reg.CounterValue("mqo_pool_hedges_total") > 0
					}
					if !hedged {
						t.Fatalf("hedge never fired across 50 queries")
					}
				} else {
					t.Fatalf("hedges = %v, want %v", got, tc.wantHedges)
				}
			}
			if tc.wantWins > 0 {
				if got := reg.CounterValue("mqo_pool_hedge_wins_total"); got < tc.wantWins {
					t.Errorf("hedge wins = %v, want >= %v", got, tc.wantWins)
				}
				// The hung primary must have been canceled: its context
				// was torn down when the hedge won (or when QueryContext
				// returned and ran its deferred cancel).
				deadline := time.Now().Add(2 * time.Second)
				for tc.primary.canceled.Load() == 0 && time.Now().Before(deadline) {
					time.Sleep(time.Millisecond)
				}
				if tc.primary.canceled.Load() == 0 {
					t.Error("hung primary was never canceled after losing the hedge race")
				}
			}
		})
	}
}

// TestHedgeBillsWinnerOnce: the pool returns exactly one response per
// query, and the losing attempt never completes — so a token meter fed
// by the pool's caller counts the winner exactly once.
func TestHedgeBillsWinnerOnce(t *testing.T) {
	slow := &fakePred{name: "slow", id: "x", delay: 30 * time.Second}
	fast := &fakePred{name: "fast", id: "x"}
	reg := obs.NewRegistry()
	pl := mustPool(t, Config{Hedge: true, HedgeAfter: time.Millisecond, Seed: 1, Obs: reg}, slow, fast)

	var inputTokens atomic.Int64
	const n = 40
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := pl.QueryContext(context.Background(), fmt.Sprintf("pp-%d", i))
			if err != nil {
				t.Errorf("query %d: %v", i, err)
				return
			}
			inputTokens.Add(int64(resp.InputTokens))
		}(i)
	}
	wg.Wait()
	// Every prompt is 5 bytes ("pp-N" is 4-5; compute exactly).
	var want int64
	for i := 0; i < n; i++ {
		want += int64(len(fmt.Sprintf("pp-%d", i)))
	}
	if got := inputTokens.Load(); got != want {
		t.Errorf("meter saw %d input tokens, want %d (double-billed hedges?)", got, want)
	}
	// The slow replica can only ever *complete* zero calls: every call
	// it received lost its race and was canceled.
	if got := slow.completed.Load(); got != 0 {
		t.Errorf("slow replica completed %d calls, want 0", got)
	}
}

// TestPerReplicaBreakerEjectsDeadReplica: a consistently failing
// replica is ejected (its breaker opens, the ejection counter ticks)
// while the healthy replica keeps answering.
func TestPerReplicaBreakerEjectsDeadReplica(t *testing.T) {
	reg := obs.NewRegistry()
	// The dead replica fails instantly while the healthy one takes real
	// time, so EWMA routing keeps steering traffic into the failures —
	// the classic fast-fail trap that per-replica breakers exist to
	// break. (Don't leave both replicas at zero latency: the scores then
	// differ only by scheduling noise and the test goes flaky.)
	dead := &fakePred{name: "dead", id: "x", err: errors.New("boom")}
	ok := &fakePred{name: "ok", id: "x", delay: 2 * time.Millisecond}
	pl := mustPool(t, Config{
		Breaker: batch.BreakerConfig{Threshold: 2, Cooldown: time.Hour},
		Seed:    3, Obs: reg,
	}, dead, ok)

	// Drive queries until the dead replica's breaker opens; individual
	// errors are expected while it is still in rotation (retries are the
	// batch executor's job, not the pool's).
	for i := 0; i < 100 && pl.States()[0] != batch.BreakerOpen; i++ {
		_, _ = pl.QueryContext(context.Background(), fmt.Sprintf("q%d", i))
	}
	if got := pl.States()[0]; got != batch.BreakerOpen {
		t.Fatalf("dead replica breaker state = %v, want open", got)
	}
	if got := reg.CounterValue("mqo_pool_ejected_total", "replica", "0"); got != 1 {
		t.Errorf("ejected counter = %v, want 1", got)
	}
	// With the dead replica ejected, every query now succeeds.
	for i := 0; i < 20; i++ {
		if _, err := pl.QueryContext(context.Background(), fmt.Sprintf("after%d", i)); err != nil {
			t.Fatalf("query after ejection failed: %v", err)
		}
	}
	if got := pl.States()[1]; got != batch.BreakerClosed {
		t.Errorf("healthy replica breaker state = %v, want closed", got)
	}
}

// TestAllEjectedFailsFast: when every replica is ejected the pool
// reports batch.ErrCircuitOpen — the sentinel the executor's fallback
// path already understands.
func TestAllEjectedFailsFast(t *testing.T) {
	dead1 := &fakePred{name: "d1", id: "x", err: errors.New("boom")}
	dead2 := &fakePred{name: "d2", id: "x", err: errors.New("boom")}
	pl := mustPool(t, Config{
		Breaker: batch.BreakerConfig{Threshold: 1, Cooldown: time.Hour},
		Seed:    5,
	}, dead1, dead2)

	for i := 0; i < 50; i++ {
		_, _ = pl.QueryContext(context.Background(), fmt.Sprintf("q%d", i))
	}
	if _, err := pl.QueryContext(context.Background(), "final"); !errors.Is(err, batch.ErrCircuitOpen) {
		t.Fatalf("all-ejected error = %v, want batch.ErrCircuitOpen", err)
	}
}

// TestEjectedReplicaRecovers: after the cooldown a probe succeeds and
// the replica rejoins rotation.
func TestEjectedReplicaRecovers(t *testing.T) {
	// As above: the flaky replica fails fast, the healthy one is slower,
	// so routing deterministically offers the flaky one first.
	flaky := &fakePred{name: "flaky", id: "x", err: errors.New("boom")}
	ok := &fakePred{name: "ok", id: "x", delay: time.Millisecond}
	pl := mustPool(t, Config{
		Breaker: batch.BreakerConfig{Threshold: 1, Cooldown: 5 * time.Millisecond},
		Seed:    9,
	}, flaky, ok)

	for i := 0; i < 50 && pl.States()[0] != batch.BreakerOpen; i++ {
		_, _ = pl.QueryContext(context.Background(), fmt.Sprintf("q%d", i))
	}
	if pl.States()[0] != batch.BreakerOpen {
		t.Fatal("flaky replica never ejected")
	}
	flaky.err = nil // backend healed
	time.Sleep(10 * time.Millisecond)
	// Probe until the breaker closes again.
	for i := 0; i < 200 && pl.States()[0] != batch.BreakerClosed; i++ {
		_, _ = pl.QueryContext(context.Background(), fmt.Sprintf("r%d", i))
		time.Sleep(time.Millisecond)
	}
	if got := pl.States()[0]; got != batch.BreakerClosed {
		t.Fatalf("healed replica state = %v, want closed", got)
	}
}

// TestClientErrorsDoNotTripBreaker: a 4xx is the request's fault; the
// replica must stay in rotation.
func TestClientErrorsDoNotTripBreaker(t *testing.T) {
	bad := &fakePred{name: "bad", id: "x", err: &llm.APIError{StatusCode: 400, Message: "bad prompt"}}
	pl := mustPool(t, Config{
		Breaker: batch.BreakerConfig{Threshold: 1, Cooldown: time.Hour},
		Seed:    11,
	}, bad)
	for i := 0; i < 10; i++ {
		_, _ = pl.QueryContext(context.Background(), fmt.Sprintf("q%d", i))
	}
	if got := pl.States()[0]; got != batch.BreakerClosed {
		t.Errorf("breaker state after 4xx storm = %v, want closed", got)
	}
}

// TestPicksSpreadAcrossReplicas: with equal health, P2C routing must
// actually use more than one replica.
func TestPicksSpreadAcrossReplicas(t *testing.T) {
	a := &fakePred{name: "a", id: "x"}
	b := &fakePred{name: "b", id: "x"}
	c := &fakePred{name: "c", id: "x"}
	pl := mustPool(t, Config{Seed: 13}, a, b, c)
	for i := 0; i < 300; i++ {
		if _, err := pl.QueryContext(context.Background(), fmt.Sprintf("q%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for _, f := range []*fakePred{a, b, c} {
		if f.calls.Load() == 0 {
			t.Errorf("replica %s never picked across 300 queries", f.name)
		}
	}
}
