// Package cost converts token counts into money. It encodes the
// public per-token prices the paper's introduction argues from ("a
// single query would cost at least $0.0006 … 10 million queries would
// cost at least $6,000, while using GPT-4 would increase the cost to
// $360,000") and produces cost reports for executed plans, so the token
// savings of the optimization strategies can be read in dollars.
package cost

import (
	"fmt"
	"sort"

	"repro/internal/token"
)

// Pricing is a model's price per 1,000 tokens, in USD.
type Pricing struct {
	Model       string
	InputPer1K  float64
	OutputPer1K float64
}

// The price points used by the paper's introduction (USD per 1K
// tokens; GPT-3.5 input at $0.0005 is the figure its arithmetic uses).
var builtin = []Pricing{
	{Model: "gpt-3.5-turbo", InputPer1K: 0.0005, OutputPer1K: 0.0015},
	{Model: "gpt-4", InputPer1K: 0.03, OutputPer1K: 0.06},
	{Model: "gpt-4o-mini", InputPer1K: 0.00015, OutputPer1K: 0.0006},
}

// Models lists the built-in pricing table's model names.
func Models() []string {
	out := make([]string, len(builtin))
	for i, p := range builtin {
		out[i] = p.Model
	}
	sort.Strings(out)
	return out
}

// Lookup finds a built-in pricing entry.
func Lookup(model string) (Pricing, error) {
	for _, p := range builtin {
		if p.Model == model {
			return p, nil
		}
	}
	return Pricing{}, fmt.Errorf("cost: unknown model %q (known: %v)", model, Models())
}

// Cost returns the USD cost of the given token counts.
func (p Pricing) Cost(inputTokens, outputTokens int) float64 {
	return float64(inputTokens)/1000*p.InputPer1K + float64(outputTokens)/1000*p.OutputPer1K
}

// MeterCost prices a token meter.
func (p Pricing) MeterCost(m token.Meter) float64 {
	return p.Cost(m.InputTokens(), m.OutputTokens())
}

// Report compares an optimized execution against its baseline in
// dollars.
type Report struct {
	Model           string
	BaselineUSD     float64
	OptimizedUSD    float64
	SavedUSD        float64
	SavedFraction   float64
	BaselineTokens  int
	OptimizedTokens int
}

// Compare builds a report from two meters.
func Compare(p Pricing, baseline, optimized token.Meter) Report {
	b := p.MeterCost(baseline)
	o := p.MeterCost(optimized)
	r := Report{
		Model:           p.Model,
		BaselineUSD:     b,
		OptimizedUSD:    o,
		SavedUSD:        b - o,
		BaselineTokens:  baseline.Total(),
		OptimizedTokens: optimized.Total(),
	}
	if b > 0 {
		r.SavedFraction = (b - o) / b
	}
	return r
}

// String renders the report for humans.
func (r Report) String() string {
	return fmt.Sprintf("%s: baseline $%.4f (%d tokens) -> optimized $%.4f (%d tokens), saved $%.4f (%.1f%%)",
		r.Model, r.BaselineUSD, r.BaselineTokens, r.OptimizedUSD, r.OptimizedTokens,
		r.SavedUSD, 100*r.SavedFraction)
}

// Projection scales a measured per-query cost to a deployment-sized
// workload — the paper's industrial-scale argument.
type Projection struct {
	Model        string
	Queries      int64
	TokensPerQry float64
	TotalTokens  float64
	TotalUSD     float64
}

// Project estimates the cost of running `queries` queries averaging
// tokensPerQuery input tokens (output tokens are a rounding error at
// the paper's scale and are ignored, matching its arithmetic).
func Project(p Pricing, queries int64, tokensPerQuery float64) (Projection, error) {
	if queries < 0 || tokensPerQuery < 0 {
		return Projection{}, fmt.Errorf("cost: negative projection input (%d queries, %.1f tokens)", queries, tokensPerQuery)
	}
	total := float64(queries) * tokensPerQuery
	return Projection{
		Model:        p.Model,
		Queries:      queries,
		TokensPerQry: tokensPerQuery,
		TotalTokens:  total,
		TotalUSD:     total / 1000 * p.InputPer1K,
	}, nil
}
