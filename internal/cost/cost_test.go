package cost

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/token"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// TestIntroArithmetic reproduces the paper's introduction numbers: a
// 1,200-token query costs at least $0.0006 on GPT-3.5; 10 million such
// queries cost at least $6,000; GPT-4 raises that to $360,000.
func TestIntroArithmetic(t *testing.T) {
	gpt35, err := Lookup("gpt-3.5-turbo")
	if err != nil {
		t.Fatal(err)
	}
	if got := gpt35.Cost(1200, 0); !almost(got, 0.0006, 1e-12) {
		t.Errorf("single query = $%v, want $0.0006", got)
	}
	proj, err := Project(gpt35, 10_000_000, 1200)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(proj.TotalUSD, 6000, 1e-6) {
		t.Errorf("10M GPT-3.5 queries = $%v, want $6,000", proj.TotalUSD)
	}
	gpt4, err := Lookup("gpt-4")
	if err != nil {
		t.Fatal(err)
	}
	proj4, err := Project(gpt4, 10_000_000, 1200)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(proj4.TotalUSD, 360000, 1e-6) {
		t.Errorf("10M GPT-4 queries = $%v, want $360,000", proj4.TotalUSD)
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("gpt-99"); err == nil {
		t.Error("unknown model accepted")
	}
	if len(Models()) != 3 {
		t.Errorf("Models() = %v, want 3 entries", Models())
	}
}

func TestCompare(t *testing.T) {
	p, _ := Lookup("gpt-3.5-turbo")
	var base, opt token.Meter
	base.AddQuery(100_000, 1000)
	opt.AddQuery(80_000, 1000)
	r := Compare(p, base, opt)
	if r.SavedUSD <= 0 {
		t.Errorf("saved $%v, want > 0", r.SavedUSD)
	}
	wantBase := 100.0*0.0005 + 1.0*0.0015
	if !almost(r.BaselineUSD, wantBase, 1e-9) {
		t.Errorf("baseline $%v, want $%v", r.BaselineUSD, wantBase)
	}
	if !strings.Contains(r.String(), "saved") {
		t.Errorf("report string %q unreadable", r.String())
	}
	// Zero baseline: no division by zero.
	var zero token.Meter
	if r := Compare(p, zero, zero); r.SavedFraction != 0 {
		t.Errorf("zero baseline produced fraction %v", r.SavedFraction)
	}
}

func TestProjectValidation(t *testing.T) {
	p, _ := Lookup("gpt-4")
	if _, err := Project(p, -1, 100); err == nil {
		t.Error("negative queries accepted")
	}
	if _, err := Project(p, 1, -100); err == nil {
		t.Error("negative tokens accepted")
	}
}

// TestCostProperties: cost is non-negative, monotone in tokens, and
// linear in query count.
func TestCostProperties(t *testing.T) {
	p, _ := Lookup("gpt-3.5-turbo")
	f := func(in, out uint16) bool {
		c := p.Cost(int(in), int(out))
		c2 := p.Cost(int(in)+100, int(out))
		return c >= 0 && c2 >= c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(q uint16) bool {
		a, err1 := Project(p, int64(q), 500)
		b, err2 := Project(p, 2*int64(q), 500)
		return err1 == nil && err2 == nil && almost(b.TotalUSD, 2*a.TotalUSD, 1e-9)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}
