package llm

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/prompt"
	"repro/internal/token"
)

// This file implements the production path of the "LLMs as predictors"
// contract: an OpenAI-compatible chat-completions client. The paper
// treats the LLM as a black box reachable over an API; everything else
// in this repository (methods, pruning, boosting, budget accounting)
// operates on prompt strings and Responses, so swapping Sim for
// HTTPPredictor deploys the same pipeline against a real endpoint.

// HTTPConfig configures an HTTPPredictor.
type HTTPConfig struct {
	// BaseURL is the API root, e.g. "https://api.openai.com" or a local
	// llmserve address. The client POSTs to BaseURL + ChatCompletionsPath.
	BaseURL string
	// Model is the model identifier sent in every request.
	Model string
	// APIKey, when non-empty, is sent as a Bearer token.
	APIKey string
	// MaxRetries bounds retry attempts on 429/5xx/network errors
	// (default 3; the first attempt is not a retry).
	MaxRetries int
	// RetryBaseDelay is the initial backoff, doubled per retry
	// (default 200ms).
	RetryBaseDelay time.Duration
	// MaxRetryDelay caps the exponential backoff (default 30s). Without
	// a cap, doubling overflows time.Duration after ~60 retries and the
	// negative delay makes time.After fire immediately, hammering an
	// already-struggling endpoint.
	MaxRetryDelay time.Duration
	// Timeout bounds each HTTP round trip (default 60s).
	Timeout time.Duration
	// Client overrides the transport; nil uses a client with Timeout.
	Client *http.Client
}

// ChatCompletionsPath is the OpenAI-compatible endpoint path.
const ChatCompletionsPath = "/v1/chat/completions"

// HTTPPredictor queries an OpenAI-compatible endpoint and implements
// Predictor. Token usage is taken from the server's usage block when
// present, otherwise estimated with the local tokenizer.
type HTTPPredictor struct {
	cfg    HTTPConfig
	client *http.Client
	meter  token.Meter
}

// NewHTTPPredictor validates the configuration and returns a client.
func NewHTTPPredictor(cfg HTTPConfig) (*HTTPPredictor, error) {
	if cfg.BaseURL == "" {
		return nil, errors.New("llm: HTTPConfig.BaseURL is required")
	}
	if cfg.Model == "" {
		return nil, errors.New("llm: HTTPConfig.Model is required")
	}
	if cfg.MaxRetries < 0 {
		return nil, fmt.Errorf("llm: negative MaxRetries %d", cfg.MaxRetries)
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 3
	}
	if cfg.RetryBaseDelay <= 0 {
		cfg.RetryBaseDelay = 200 * time.Millisecond
	}
	if cfg.MaxRetryDelay <= 0 {
		cfg.MaxRetryDelay = DefaultMaxRetryDelay
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 60 * time.Second
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: cfg.Timeout}
	}
	return &HTTPPredictor{cfg: cfg, client: client}, nil
}

// Name implements Predictor.
func (c *HTTPPredictor) Name() string { return c.cfg.Model }

// Identity implements Identifier: the model id plus the endpoint, so
// persistent caches distinguish the same model name served by two
// different backends (say, llmserve instances over different datasets).
func (c *HTTPPredictor) Identity() string { return c.cfg.Model + "@" + c.cfg.BaseURL }

// Meter returns the client-side token meter (cumulative usage of all
// queries, successful or not as reported by the server). The meter is
// synchronized, so it stays consistent when the predictor serves a
// multi-worker batch executor.
func (c *HTTPPredictor) Meter() *token.Meter { return &c.meter }

// chat-completions wire format (the subset this client uses).
type chatMessage struct {
	Role    string `json:"role"`
	Content string `json:"content"`
}

type chatRequest struct {
	Model       string        `json:"model"`
	Messages    []chatMessage `json:"messages"`
	Temperature float64       `json:"temperature"`
}

type chatChoice struct {
	Message chatMessage `json:"message"`
}

type chatUsage struct {
	PromptTokens     int `json:"prompt_tokens"`
	CompletionTokens int `json:"completion_tokens"`
}

type chatResponse struct {
	Choices []chatChoice `json:"choices"`
	Usage   chatUsage    `json:"usage"`
}

type chatErrorBody struct {
	Error struct {
		Message string `json:"message"`
		Type    string `json:"type"`
		// TraceID correlates an error with its /debug/querytrace entry
		// (set by llm.Handler on traced requests).
		TraceID string `json:"trace_id,omitempty"`
	} `json:"error"`
}

// APIError is a non-retryable (or retry-exhausted) HTTP failure.
type APIError struct {
	StatusCode int
	Message    string
	// RetryAfter is the server's Retry-After hint, when it sent one
	// (parsed from both delta-seconds and HTTP-date forms); zero
	// otherwise. Retry schedules prefer it over their own backoff —
	// ignoring it fights the server's backpressure.
	RetryAfter time.Duration
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("llm: API error %d: %s", e.StatusCode, e.Message)
}

// retryable reports whether a status code warrants another attempt:
// rate limits and server-side failures.
func retryable(status int) bool {
	return status == http.StatusTooManyRequests || status >= 500
}

// DefaultMaxRetryDelay is the default backoff ceiling shared by this
// client and the batch executor.
const DefaultMaxRetryDelay = 30 * time.Second

// parseRetryAfter reads a Retry-After header value in either RFC 9110
// form — delta-seconds ("120") or an HTTP-date — returning 0 for an
// absent, malformed or already-elapsed value.
func parseRetryAfter(v string, now time.Time) time.Duration {
	v = strings.TrimSpace(v)
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs <= 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(v); err == nil {
		if d := at.Sub(now); d > 0 {
			return d
		}
	}
	return 0
}

// RetryBackoff returns the exponential backoff before retry attempt
// (attempt ≥ 1 is the first retry): base doubled attempt−1 times,
// capped at max. The cap is what keeps very long retry schedules sane —
// unchecked doubling overflows time.Duration into a negative value,
// which time.After treats as "fire now".
func RetryBackoff(base, max time.Duration, attempt int) time.Duration {
	if base <= 0 {
		return 0
	}
	if max <= 0 {
		max = DefaultMaxRetryDelay
	}
	d := base
	for i := 1; i < attempt; i++ {
		if d >= max/2 {
			return max
		}
		d *= 2
	}
	if d > max {
		return max
	}
	return d
}

// Query implements Predictor: one chat-completions call with retries.
// The category is parsed from the model's answer with the Table III
// response format; an answer not in that format is used verbatim
// (trimmed) so a single loosely-formatted reply does not abort a batch.
func (c *HTTPPredictor) Query(promptText string) (Response, error) {
	return c.QueryContext(context.Background(), promptText)
}

// QueryContext is Query with caller-controlled cancellation.
func (c *HTTPPredictor) QueryContext(ctx context.Context, promptText string) (Response, error) {
	body, err := json.Marshal(chatRequest{
		Model:    c.cfg.Model,
		Messages: []chatMessage{{Role: "user", Content: promptText}},
	})
	if err != nil {
		return Response{}, fmt.Errorf("llm: encoding request: %w", err)
	}

	var lastErr error
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			delay := RetryBackoff(c.cfg.RetryBaseDelay, c.cfg.MaxRetryDelay, attempt)
			// The server's Retry-After (typically on 429) overrides the
			// local exponential schedule: it knows when capacity returns,
			// and retrying earlier just fights its backpressure. Still
			// capped at MaxRetryDelay so a hostile or buggy header cannot
			// stall a worker for minutes.
			var apiErr *APIError
			if errors.As(lastErr, &apiErr) && apiErr.RetryAfter > 0 {
				delay = apiErr.RetryAfter
				if delay > c.cfg.MaxRetryDelay {
					delay = c.cfg.MaxRetryDelay
				}
			}
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return Response{}, ctx.Err()
			}
		}
		resp, err := c.do(ctx, body)
		if err == nil {
			return c.finish(promptText, resp)
		}
		lastErr = err
		var apiErr *APIError
		if errors.As(err, &apiErr) && !retryable(apiErr.StatusCode) {
			return Response{}, err // client error: retrying cannot help
		}
		if ctx.Err() != nil {
			return Response{}, ctx.Err()
		}
	}
	return Response{}, fmt.Errorf("llm: giving up after %d attempts: %w", c.cfg.MaxRetries+1, lastErr)
}

// do performs one HTTP round trip. When the context carries a sampled
// trace span, the round trip gets a child span and the request carries
// the W3C traceparent header, so an llmserve on the other end (itself
// possibly proxying to further upstreams) stitches its spans into this
// query's trace.
func (c *HTTPPredictor) do(ctx context.Context, body []byte) (*chatResponse, error) {
	sctx, sp := obs.StartSpanCtx(ctx, nil, "llm.http", "model", c.cfg.Model)
	req, err := http.NewRequestWithContext(sctx, http.MethodPost,
		strings.TrimSuffix(c.cfg.BaseURL, "/")+ChatCompletionsPath, bytes.NewReader(body))
	if err != nil {
		sp.End()
		return nil, fmt.Errorf("llm: building request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if c.cfg.APIKey != "" {
		req.Header.Set("Authorization", "Bearer "+c.cfg.APIKey)
	}
	if tp := obs.TraceParent(sp); tp != "" {
		req.Header.Set(obs.TraceParentHeader, tp)
	}
	httpResp, err := c.client.Do(req)
	if err != nil {
		sp.SetAttr("outcome", "transport_error")
		sp.End()
		return nil, fmt.Errorf("llm: transport: %w", err)
	}
	defer httpResp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(httpResp.Body, 1<<20))
	sp.SetAttr("status", strconv.Itoa(httpResp.StatusCode))
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("llm: reading response: %w", err)
	}
	if httpResp.StatusCode != http.StatusOK {
		msg := strings.TrimSpace(string(raw))
		var eb chatErrorBody
		if json.Unmarshal(raw, &eb) == nil && eb.Error.Message != "" {
			msg = eb.Error.Message
		}
		return nil, &APIError{
			StatusCode: httpResp.StatusCode,
			Message:    msg,
			RetryAfter: parseRetryAfter(httpResp.Header.Get("Retry-After"), time.Now()),
		}
	}
	var out chatResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, fmt.Errorf("llm: decoding response: %w", err)
	}
	if len(out.Choices) == 0 {
		return nil, errors.New("llm: response has no choices")
	}
	return &out, nil
}

// finish converts a successful wire response into a Response and meters
// its tokens.
func (c *HTTPPredictor) finish(promptText string, wire *chatResponse) (Response, error) {
	content := wire.Choices[0].Message.Content
	category, err := prompt.ParseResponse(content)
	if err != nil {
		category = strings.TrimSpace(content)
	}
	in, out := wire.Usage.PromptTokens, wire.Usage.CompletionTokens
	if in == 0 {
		in = token.Count(promptText)
	}
	if out == 0 {
		out = token.Count(content)
	}
	resp := Response{Text: content, Category: category, InputTokens: in, OutputTokens: out}
	c.meter.AddQuery(in, out)
	return resp, nil
}
