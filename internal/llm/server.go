package llm

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// maxRequestBody caps a chat-completions request body (4 MiB is far
// beyond any Table III prompt); larger bodies get a JSON 413 instead of
// unbounded buffering.
const maxRequestBody = 4 << 20

// Handler serves a Predictor (usually a *Sim) behind the OpenAI-
// compatible chat-completions endpoint, so the HTTP client — and any
// other OpenAI-compatible tooling — can drive the simulated model over
// a real network boundary. One Handler serializes queries; the wrapped
// Sim need not be safe for concurrent use.
//
// Only the predictor invocation itself is serialized: request decoding,
// metrics, and the Requests counter live outside the critical section,
// so /metrics and /healthz reads never block behind a slow query.
type Handler struct {
	// qmu serializes predictor calls and nothing else.
	qmu       sync.Mutex
	predictor Predictor
	// RequireKey, when non-empty, rejects requests whose Bearer token
	// does not match.
	RequireKey string
	// Obs receives request metrics (count by status, errors, token
	// totals, latency histogram); nil routes to the process-default
	// recorder. Set before serving.
	Obs obs.Recorder
	// requests counts successfully served queries.
	requests atomic.Int64
}

// NewHandler wraps a predictor.
func NewHandler(p Predictor) *Handler { return &Handler{predictor: p} }

// Requests returns the number of successfully served queries. It is
// lock-free and never blocks behind an in-flight query.
func (h *Handler) Requests() int { return int(h.requests.Load()) }

// ServeHTTP implements http.Handler for POST /v1/chat/completions.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	rec := obs.Active(h.Obs)
	span := rec.StartSpan("llm.request", "method", r.Method)
	status, inTokens, outTokens := h.serve(w, r)

	code := strconv.Itoa(status)
	rec.Add("mqo_http_requests_total", 1, "code", code)
	if status >= 400 {
		rec.Add("mqo_http_errors_total", 1, "code", code)
	}
	if inTokens > 0 || outTokens > 0 {
		rec.Add("mqo_http_input_tokens_total", float64(inTokens))
		rec.Add("mqo_http_output_tokens_total", float64(outTokens))
	}
	rec.Observe("mqo_http_request_duration_seconds", time.Since(start).Seconds())
	span.SetAttr("code", code)
	if inTokens > 0 {
		span.SetAttr("input_tokens", strconv.Itoa(inTokens))
	}
	span.End()
}

// serve handles one request and reports the response status plus the
// token usage of a successful query (0, 0 otherwise).
func (h *Handler) serve(w http.ResponseWriter, r *http.Request) (status, inTokens, outTokens int) {
	if r.URL.Path != ChatCompletionsPath {
		writeAPIError(w, http.StatusNotFound, fmt.Sprintf("unknown path %q", r.URL.Path))
		return http.StatusNotFound, 0, 0
	}
	if r.Method != http.MethodPost {
		writeAPIError(w, http.StatusMethodNotAllowed, "use POST")
		return http.StatusMethodNotAllowed, 0, 0
	}
	if h.RequireKey != "" && r.Header.Get("Authorization") != "Bearer "+h.RequireKey {
		writeAPIError(w, http.StatusUnauthorized, "invalid API key")
		return http.StatusUnauthorized, 0, 0
	}
	// Read the whole (bounded) body up front so malformed or oversized
	// payloads produce a JSON error immediately rather than a decoder
	// blocked on a half-sent connection.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBody))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeAPIError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return http.StatusRequestEntityTooLarge, 0, 0
		}
		writeAPIError(w, http.StatusBadRequest, "reading body: "+err.Error())
		return http.StatusBadRequest, 0, 0
	}
	var req chatRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeAPIError(w, http.StatusBadRequest, "malformed JSON body: "+err.Error())
		return http.StatusBadRequest, 0, 0
	}
	if len(req.Messages) == 0 {
		writeAPIError(w, http.StatusBadRequest, "messages must be non-empty")
		return http.StatusBadRequest, 0, 0
	}
	promptText := req.Messages[len(req.Messages)-1].Content
	if promptText == "" {
		writeAPIError(w, http.StatusBadRequest, "empty prompt")
		return http.StatusBadRequest, 0, 0
	}

	h.qmu.Lock()
	resp, err := h.predictor.Query(promptText)
	h.qmu.Unlock()
	if err != nil {
		// An unreadable prompt is the caller's fault, not a server
		// failure: report 400 so clients do not retry it.
		writeAPIError(w, http.StatusBadRequest, err.Error())
		return http.StatusBadRequest, 0, 0
	}
	h.requests.Add(1)

	out := map[string]any{
		"id":      fmt.Sprintf("chatcmpl-sim-%d", time.Now().UnixNano()),
		"object":  "chat.completion",
		"created": time.Now().Unix(),
		"model":   h.predictor.Name(),
		"choices": []map[string]any{{
			"index":         0,
			"message":       chatMessage{Role: "assistant", Content: resp.Text},
			"finish_reason": "stop",
		}},
		"usage": chatUsage{
			PromptTokens:     resp.InputTokens,
			CompletionTokens: resp.OutputTokens,
		},
	}
	w.Header().Set("Content-Type", "application/json")
	// Usage headers let a generic access-log middleware report token
	// spend without parsing the body (see obs.AccessLog).
	w.Header().Set(obs.HeaderInputTokens, strconv.Itoa(resp.InputTokens))
	w.Header().Set(obs.HeaderOutputTokens, strconv.Itoa(resp.OutputTokens))
	if err := json.NewEncoder(w).Encode(out); err != nil {
		// Headers are already written; nothing more we can do.
		return http.StatusOK, resp.InputTokens, resp.OutputTokens
	}
	return http.StatusOK, resp.InputTokens, resp.OutputTokens
}

// writeAPIError emits an OpenAI-style error body.
func writeAPIError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	var body chatErrorBody
	body.Error.Message = msg
	body.Error.Type = "invalid_request_error"
	if status >= 500 || status == http.StatusTooManyRequests {
		body.Error.Type = "server_error"
	}
	_ = json.NewEncoder(w).Encode(body)
}
