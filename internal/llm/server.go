package llm

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// Handler serves a Predictor (usually a *Sim) behind the OpenAI-
// compatible chat-completions endpoint, so the HTTP client — and any
// other OpenAI-compatible tooling — can drive the simulated model over
// a real network boundary. One Handler serializes queries; the wrapped
// Sim need not be safe for concurrent use.
type Handler struct {
	mu        sync.Mutex
	predictor Predictor
	// RequireKey, when non-empty, rejects requests whose Bearer token
	// does not match.
	RequireKey string
	// requests counts completed queries (for tests and /stats).
	requests int
}

// NewHandler wraps a predictor.
func NewHandler(p Predictor) *Handler { return &Handler{predictor: p} }

// Requests returns the number of successfully served queries.
func (h *Handler) Requests() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.requests
}

// ServeHTTP implements http.Handler for POST /v1/chat/completions.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != ChatCompletionsPath {
		writeAPIError(w, http.StatusNotFound, fmt.Sprintf("unknown path %q", r.URL.Path))
		return
	}
	if r.Method != http.MethodPost {
		writeAPIError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if h.RequireKey != "" && r.Header.Get("Authorization") != "Bearer "+h.RequireKey {
		writeAPIError(w, http.StatusUnauthorized, "invalid API key")
		return
	}
	var req chatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeAPIError(w, http.StatusBadRequest, "malformed JSON body: "+err.Error())
		return
	}
	if len(req.Messages) == 0 {
		writeAPIError(w, http.StatusBadRequest, "messages must be non-empty")
		return
	}
	promptText := req.Messages[len(req.Messages)-1].Content
	if promptText == "" {
		writeAPIError(w, http.StatusBadRequest, "empty prompt")
		return
	}

	h.mu.Lock()
	resp, err := h.predictor.Query(promptText)
	if err == nil {
		h.requests++
	}
	h.mu.Unlock()
	if err != nil {
		// An unreadable prompt is the caller's fault, not a server
		// failure: report 400 so clients do not retry it.
		writeAPIError(w, http.StatusBadRequest, err.Error())
		return
	}

	out := map[string]any{
		"id":      fmt.Sprintf("chatcmpl-sim-%d", time.Now().UnixNano()),
		"object":  "chat.completion",
		"created": time.Now().Unix(),
		"model":   h.predictor.Name(),
		"choices": []map[string]any{{
			"index":         0,
			"message":       chatMessage{Role: "assistant", Content: resp.Text},
			"finish_reason": "stop",
		}},
		"usage": chatUsage{
			PromptTokens:     resp.InputTokens,
			CompletionTokens: resp.OutputTokens,
		},
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(out); err != nil {
		// Headers are already written; nothing more we can do.
		return
	}
}

// writeAPIError emits an OpenAI-style error body.
func writeAPIError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	var body chatErrorBody
	body.Error.Message = msg
	body.Error.Type = "invalid_request_error"
	if status >= 500 || status == http.StatusTooManyRequests {
		body.Error.Type = "server_error"
	}
	_ = json.NewEncoder(w).Encode(body)
}
