package llm

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// maxRequestBody caps a chat-completions request body (4 MiB is far
// beyond any Table III prompt); larger bodies get a JSON 413 instead of
// unbounded buffering.
const maxRequestBody = 4 << 20

// Handler serves a Predictor (usually a *Sim) behind the OpenAI-
// compatible chat-completions endpoint, so the HTTP client — and any
// other OpenAI-compatible tooling — can drive the simulated model over
// a real network boundary. One Handler serializes queries; the wrapped
// Sim need not be safe for concurrent use.
//
// Only the predictor invocation itself is serialized: request decoding,
// metrics, and the Requests counter live outside the critical section,
// so /metrics and /healthz reads never block behind a slow query.
type Handler struct {
	// qmu serializes predictor calls and nothing else.
	qmu       sync.Mutex
	predictor Predictor
	// RequireKey, when non-empty, rejects requests whose Bearer token
	// does not match.
	RequireKey string
	// Obs receives request metrics (count by status, errors, token
	// totals, latency histogram); nil routes to the process-default
	// recorder. Set before serving.
	Obs obs.Recorder
	// requests counts successfully served queries.
	requests atomic.Int64
}

// NewHandler wraps a predictor.
func NewHandler(p Predictor) *Handler { return &Handler{predictor: p} }

// Requests returns the number of successfully served queries. It is
// lock-free and never blocks behind an in-flight query.
func (h *Handler) Requests() int { return int(h.requests.Load()) }

// ServeHTTP implements http.Handler for POST /v1/chat/completions.
// Requests carrying a W3C traceparent header join the caller's trace
// (the request span's parent is the caller's span, across the process
// boundary); every traced request gets the X-Trace-Id response header
// and a per-request ledger billing the predictor call.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	rec := obs.Active(h.Obs)
	ctx := obs.WithRemoteParent(r.Context(), r.Header.Get(obs.TraceParentHeader))
	sctx, span := obs.StartSpanCtx(ctx, rec, "llm.request", "method", r.Method)
	var led *obs.Ledger
	if span.Sampled() {
		w.Header().Set(obs.HeaderTraceID, span.TraceID())
		led = obs.NewLedger(rec, span.TraceID(), "llm.request")
		sctx = obs.ContextWithLedger(sctx, led)
	}
	status, inTokens, outTokens := h.serve(sctx, w, r)

	code := strconv.Itoa(status)
	rec.Add("mqo_http_requests_total", 1, "code", code)
	if status >= 400 {
		rec.Add("mqo_http_errors_total", 1, "code", code)
	}
	if inTokens > 0 || outTokens > 0 {
		rec.Add("mqo_http_input_tokens_total", float64(inTokens))
		rec.Add("mqo_http_output_tokens_total", float64(outTokens))
	}
	total := time.Since(start)
	rec.Observe("mqo_http_request_duration_seconds", total.Seconds())
	span.SetAttr("code", code)
	if inTokens > 0 {
		span.SetAttr("input_tokens", strconv.Itoa(inTokens))
	}
	span.End()
	if led != nil {
		if resid := total - led.BilledWall(); resid > 0 {
			led.Charge(obs.StageExec, resid, 0, true)
		}
		led.Close(total)
	}
}

// serve handles one request and reports the response status plus the
// token usage of a successful query (0, 0 otherwise). ctx carries the
// request's span and ledger; context-aware predictors receive it so a
// proxy hop (a pool of HTTPPredictors) forwards the trace onward.
func (h *Handler) serve(ctx context.Context, w http.ResponseWriter, r *http.Request) (status, inTokens, outTokens int) {
	if r.URL.Path != ChatCompletionsPath {
		writeAPIError(w, http.StatusNotFound, fmt.Sprintf("unknown path %q", r.URL.Path))
		return http.StatusNotFound, 0, 0
	}
	if r.Method != http.MethodPost {
		writeAPIError(w, http.StatusMethodNotAllowed, "use POST")
		return http.StatusMethodNotAllowed, 0, 0
	}
	if h.RequireKey != "" && r.Header.Get("Authorization") != "Bearer "+h.RequireKey {
		writeAPIError(w, http.StatusUnauthorized, "invalid API key")
		return http.StatusUnauthorized, 0, 0
	}
	// Read the whole (bounded) body up front so malformed or oversized
	// payloads produce a JSON error immediately rather than a decoder
	// blocked on a half-sent connection.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBody))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeAPIError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return http.StatusRequestEntityTooLarge, 0, 0
		}
		writeAPIError(w, http.StatusBadRequest, "reading body: "+err.Error())
		return http.StatusBadRequest, 0, 0
	}
	var req chatRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeAPIError(w, http.StatusBadRequest, "malformed JSON body: "+err.Error())
		return http.StatusBadRequest, 0, 0
	}
	if len(req.Messages) == 0 {
		writeAPIError(w, http.StatusBadRequest, "messages must be non-empty")
		return http.StatusBadRequest, 0, 0
	}
	promptText := req.Messages[len(req.Messages)-1].Content
	if promptText == "" {
		writeAPIError(w, http.StatusBadRequest, "empty prompt")
		return http.StatusBadRequest, 0, 0
	}

	qstart := time.Now()
	var resp Response
	h.qmu.Lock()
	if cp, ok := h.predictor.(ContextPredictor); ok {
		resp, err = cp.QueryContext(ctx, promptText)
	} else {
		resp, err = h.predictor.Query(promptText)
	}
	h.qmu.Unlock()
	// The predictor call is this request's predict stage: its wall and
	// the response's tokens are the billed serving cost (cache layers
	// underneath charge themselves unbilled, see promptcache.Wrap).
	obs.Charge(ctx, obs.StagePredict, time.Since(qstart), resp.InputTokens+resp.OutputTokens, true)
	if err != nil {
		// An unreadable prompt is the caller's fault, not a server
		// failure: report 400 so clients do not retry it.
		writeAPIError(w, http.StatusBadRequest, err.Error())
		return http.StatusBadRequest, 0, 0
	}
	h.requests.Add(1)

	out := map[string]any{
		"id":      fmt.Sprintf("chatcmpl-sim-%d", time.Now().UnixNano()),
		"object":  "chat.completion",
		"created": time.Now().Unix(),
		"model":   h.predictor.Name(),
		"choices": []map[string]any{{
			"index":         0,
			"message":       chatMessage{Role: "assistant", Content: resp.Text},
			"finish_reason": "stop",
		}},
		"usage": chatUsage{
			PromptTokens:     resp.InputTokens,
			CompletionTokens: resp.OutputTokens,
		},
	}
	w.Header().Set("Content-Type", "application/json")
	// Usage headers let a generic access-log middleware report token
	// spend without parsing the body (see obs.AccessLog).
	w.Header().Set(obs.HeaderInputTokens, strconv.Itoa(resp.InputTokens))
	w.Header().Set(obs.HeaderOutputTokens, strconv.Itoa(resp.OutputTokens))
	if err := json.NewEncoder(w).Encode(out); err != nil {
		// Headers are already written; nothing more we can do.
		return http.StatusOK, resp.InputTokens, resp.OutputTokens
	}
	return http.StatusOK, resp.InputTokens, resp.OutputTokens
}

// writeAPIError emits an OpenAI-style error body. When the response
// already carries a trace ID header (set before the handler body ran),
// the error body repeats it so clients can quote the trace of a
// 4xx/5xx without keeping response headers around.
func writeAPIError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	var body chatErrorBody
	body.Error.Message = msg
	body.Error.Type = "invalid_request_error"
	if status >= 500 || status == http.StatusTooManyRequests {
		body.Error.Type = "server_error"
	}
	body.Error.TraceID = w.Header().Get(obs.HeaderTraceID)
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}
