package llm

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/prompt"
	"repro/internal/tag"
	"repro/internal/textgen"
	"repro/internal/xrand"
)

func testGraph(t testing.TB, nodes int) (*tag.Graph, tag.Spec) {
	t.Helper()
	spec, err := tag.SmallSpec("cora", nodes)
	if err != nil {
		t.Fatal(err)
	}
	return tag.Generate(spec, 101, tag.Options{}), spec
}

func buildVanilla(g *tag.Graph, v tag.NodeID) string {
	return prompt.Build(prompt.Request{
		TargetTitle:    g.Nodes[v].Title,
		TargetAbstract: g.Nodes[v].Abstract,
		Categories:     g.Classes,
	})
}

func TestQueryDeterministic(t *testing.T) {
	g, _ := testGraph(t, 300)
	sim := NewSim(GPT35(), g.Vocab, g.Classes, 7)
	p := buildVanilla(g, 0)
	r1, err := sim.Query(p)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sim.Query(p)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Category != r2.Category {
		t.Fatalf("identical prompts answered differently: %q vs %q", r1.Category, r2.Category)
	}
}

func TestQueryReturnsValidCategory(t *testing.T) {
	g, _ := testGraph(t, 300)
	sim := NewSim(GPT35(), g.Vocab, g.Classes, 7)
	valid := map[string]bool{}
	for _, c := range g.Classes {
		valid[c] = true
	}
	for v := tag.NodeID(0); v < 50; v++ {
		r, err := sim.Query(buildVanilla(g, v))
		if err != nil {
			t.Fatal(err)
		}
		if !valid[r.Category] {
			t.Fatalf("predicted unknown category %q", r.Category)
		}
		if got, err := prompt.ParseResponse(r.Text); err != nil || got != r.Category {
			t.Fatalf("response text %q does not parse back to %q", r.Text, r.Category)
		}
		if r.InputTokens <= 0 || r.OutputTokens <= 0 {
			t.Fatalf("token counts not positive: %+v", r)
		}
	}
}

func TestQueryRejectsGarbage(t *testing.T) {
	g, _ := testGraph(t, 50)
	sim := NewSim(GPT35(), g.Vocab, g.Classes, 7)
	if _, err := sim.Query("tell me a joke"); err == nil {
		t.Fatal("expected error on malformed prompt")
	}
}

func TestMeterAccumulates(t *testing.T) {
	g, _ := testGraph(t, 100)
	sim := NewSim(GPT35(), g.Vocab, g.Classes, 7)
	for v := tag.NodeID(0); v < 10; v++ {
		if _, err := sim.Query(buildVanilla(g, v)); err != nil {
			t.Fatal(err)
		}
	}
	if sim.Meter().Queries() != 10 {
		t.Fatalf("meter queries = %d, want 10", sim.Meter().Queries())
	}
	if sim.Meter().InputTokens() == 0 {
		t.Fatal("meter recorded no input tokens")
	}
}

// Zero-shot accuracy must track the dataset's saturated fraction: this
// is the calibration contract that makes Table V's τ estimate work.
func TestZeroShotAccuracyNearSaturatedFraction(t *testing.T) {
	spec, err := tag.SmallSpec("cora", 1200)
	if err != nil {
		t.Fatal(err)
	}
	g := tag.Generate(spec, 5, tag.Options{})
	sim := NewSim(GPT35(), g.Vocab, g.Classes, 11)
	correct := 0
	n := 400
	for v := tag.NodeID(0); v < tag.NodeID(n); v++ {
		r, err := sim.Query(buildVanilla(g, v))
		if err != nil {
			t.Fatal(err)
		}
		if r.Category == g.Classes[g.Nodes[v].Label] {
			correct++
		}
	}
	acc := float64(correct) / float64(n)
	if acc < spec.SaturatedFrac-0.15 || acc > spec.SaturatedFrac+0.15 {
		t.Fatalf("zero-shot accuracy %.3f too far from target %.3f", acc, spec.SaturatedFrac)
	}
}

// Saturated (low-ambiguity) nodes must be classified correctly far more
// often than ambiguous nodes, and label-noise nodes — whose text reads
// as another class — must be essentially unclassifiable. Definition 2
// made measurable, per population.
func TestSaturationSeparatesAccuracy(t *testing.T) {
	g, _ := testGraph(t, 1200)
	sim := NewSim(GPT35(), g.Vocab, g.Classes, 13)
	var satCorrect, satN, ambCorrect, ambN, noisyCorrect, noisyN int
	for v := tag.NodeID(0); v < 600; v++ {
		r, err := sim.Query(buildVanilla(g, v))
		if err != nil {
			t.Fatal(err)
		}
		ok := r.Category == g.Classes[g.Nodes[v].Label]
		switch {
		case g.Nodes[v].Noisy:
			noisyN++
			if ok {
				noisyCorrect++
			}
		case g.Nodes[v].Ambiguity < 0.3:
			satN++
			if ok {
				satCorrect++
			}
		default:
			ambN++
			if ok {
				ambCorrect++
			}
		}
	}
	satAcc := float64(satCorrect) / float64(satN)
	ambAcc := float64(ambCorrect) / float64(ambN)
	if satAcc < ambAcc+0.2 {
		t.Fatalf("saturated accuracy %.3f not well above ambiguous %.3f", satAcc, ambAcc)
	}
	if satAcc < 0.85 {
		t.Fatalf("saturated accuracy %.3f too low", satAcc)
	}
	// Ambiguous 50/50 pairs should be near a coin flip, not solvable.
	if ambAcc < 0.25 || ambAcc > 0.75 {
		t.Fatalf("ambiguous accuracy %.3f, want coin-flip-ish", ambAcc)
	}
	if noisyN > 0 {
		if noisyAcc := float64(noisyCorrect) / float64(noisyN); noisyAcc > 0.25 {
			t.Fatalf("label-noise accuracy %.3f, want near zero", noisyAcc)
		}
	}
}

// Correct neighbor labels must lift accuracy on ambiguous nodes — the
// homophily mechanism behind query boosting.
func TestNeighborLabelsBoostAmbiguousNodes(t *testing.T) {
	g, _ := testGraph(t, 1200)
	sim := NewSim(GPT35(), g.Vocab, g.Classes, 17)

	run := func(withLabels bool) float64 {
		correct, n := 0, 0
		for v := tag.NodeID(0); v < 900 && n < 250; v++ {
			if g.Nodes[v].Ambiguity < 0.5 {
				continue
			}
			n++
			// Two synthetic same-class neighbors (homophily).
			var nbs []prompt.Neighbor
			rng := xrand.New(uint64(v) + 99)
			for j := 0; j < 2; j++ {
				title, _ := g.Vocab.Generate(rng, g.Nodes[v].Label, 0.1, sampleTextCfg())
				nb := prompt.Neighbor{Title: title}
				if withLabels {
					nb.Label = g.Classes[g.Nodes[v].Label]
				}
				nbs = append(nbs, nb)
			}
			p := prompt.Build(prompt.Request{
				TargetTitle:    g.Nodes[v].Title,
				TargetAbstract: g.Nodes[v].Abstract,
				Neighbors:      nbs,
				Categories:     g.Classes,
			})
			r, err := sim.Query(p)
			if err != nil {
				t.Fatal(err)
			}
			if r.Category == g.Classes[g.Nodes[v].Label] {
				correct++
			}
		}
		return float64(correct) / float64(n)
	}

	withL := run(true)
	withoutL := run(false)
	if withL <= withoutL {
		t.Fatalf("labels did not help: with %.3f, without %.3f", withL, withoutL)
	}
}

func sampleTextCfg() textgen.TextConfig {
	return textgen.TextConfig{TitleWords: 10, AbstractWords: 1, TitleSignal: 0.55}
}

// Neighbor text from same-class neighbors must help ambiguous nodes
// even without labels (the unique/synergistic information of Eq. 5).
func TestNeighborTextBoostsAmbiguousNodes(t *testing.T) {
	g, _ := testGraph(t, 1200)
	sim := NewSim(GPT35(), g.Vocab, g.Classes, 19)

	run := func(withNeighbors bool) float64 {
		correct, n := 0, 0
		for v := tag.NodeID(0); v < 900 && n < 250; v++ {
			if g.Nodes[v].Ambiguity < 0.5 {
				continue
			}
			n++
			req := prompt.Request{
				TargetTitle:    g.Nodes[v].Title,
				TargetAbstract: g.Nodes[v].Abstract,
				Categories:     g.Classes,
			}
			if withNeighbors {
				rng := xrand.New(uint64(v) + 7)
				for j := 0; j < 4; j++ {
					title, abs := g.Vocab.Generate(rng, g.Nodes[v].Label, 0.15, sampleFullCfg())
					req.Neighbors = append(req.Neighbors, prompt.Neighbor{Title: title + " " + abs})
				}
			}
			r, err := sim.Query(prompt.Build(req))
			if err != nil {
				t.Fatal(err)
			}
			if r.Category == g.Classes[g.Nodes[v].Label] {
				correct++
			}
		}
		return float64(correct) / float64(n)
	}
	with := run(true)
	without := run(false)
	if with <= without+0.05 {
		t.Fatalf("neighbor text gain too small: with %.3f, without %.3f", with, without)
	}
}

func sampleFullCfg() textgen.TextConfig {
	return textgen.TextConfig{TitleWords: 10, AbstractWords: 30, TitleSignal: 0.55, AbstractSig: 0.4}
}

func TestCalibrateRatios(t *testing.T) {
	g, _ := testGraph(t, 600)
	sim := NewSim(GPT35(), g.Vocab, g.Classes, 23)
	var titles, abstracts []string
	var labels []int
	for v := tag.NodeID(0); v < 200; v++ {
		titles = append(titles, g.Nodes[v].Title)
		abstracts = append(abstracts, g.Nodes[v].Abstract)
		labels = append(labels, g.Nodes[v].Label)
	}
	cal, err := Calibrate(sim, titles, abstracts, labels, g.Classes, "paper")
	if err != nil {
		t.Fatal(err)
	}
	if len(cal.W) != len(g.Classes) {
		t.Fatalf("W has %d entries, want %d", len(cal.W), len(g.Classes))
	}
	for k, w := range cal.W {
		if w < 0 || w > 1 {
			t.Fatalf("W[%d] = %v out of [0,1]", k, w)
		}
	}
	if cal.Accuracy <= 0.3 || cal.Accuracy > 1 {
		t.Fatalf("calibration accuracy %v implausible", cal.Accuracy)
	}
	// Consistency: weighted misclassification ratios must match 1-acc.
	count := make([]float64, len(g.Classes))
	for _, y := range labels {
		count[y]++
	}
	var wrong float64
	for k := range cal.W {
		wrong += cal.W[k] * count[k]
	}
	gotAcc := 1 - wrong/float64(len(labels))
	if diff := gotAcc - cal.Accuracy; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("accuracy %v inconsistent with W-implied %v", cal.Accuracy, gotAcc)
	}
}

func TestCalibrateSizeMismatch(t *testing.T) {
	g, _ := testGraph(t, 50)
	sim := NewSim(GPT35(), g.Vocab, g.Classes, 29)
	if _, err := Calibrate(sim, []string{"a"}, []string{"b", "c"}, []int{0}, g.Classes, "paper"); err == nil {
		t.Fatal("expected size-mismatch error")
	}
}

func TestProfilesDiffer(t *testing.T) {
	g, _ := testGraph(t, 800)
	s35 := NewSim(GPT35(), g.Vocab, g.Classes, 31)
	s4o := NewSim(GPT4oMini(), g.Vocab, g.Classes, 31)
	agree, n := 0, 300
	for v := tag.NodeID(0); v < tag.NodeID(n); v++ {
		p := buildVanilla(g, v)
		r1, err := s35.Query(p)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := s4o.Query(p)
		if err != nil {
			t.Fatal(err)
		}
		if r1.Category == r2.Category {
			agree++
		}
	}
	if agree == n {
		t.Fatal("different profiles produced identical predictions on all prompts")
	}
}

// GPT-3.5 should outperform GPT-4o-mini zero-shot on this benchmark, as
// the paper reports (Table VII).
func TestProfileOrdering(t *testing.T) {
	g, _ := testGraph(t, 1500)
	s35 := NewSim(GPT35(), g.Vocab, g.Classes, 37)
	s4o := NewSim(GPT4oMini(), g.Vocab, g.Classes, 37)
	acc := func(s *Sim) float64 {
		correct, n := 0, 500
		for v := tag.NodeID(0); v < tag.NodeID(n); v++ {
			r, err := s.Query(buildVanilla(g, v))
			if err != nil {
				t.Fatal(err)
			}
			if r.Category == g.Classes[g.Nodes[v].Label] {
				correct++
			}
		}
		return float64(correct) / float64(n)
	}
	a35, a4o := acc(s35), acc(s4o)
	if a35 <= a4o-0.02 {
		t.Fatalf("gpt-3.5 (%.3f) should not trail gpt-4o-mini (%.3f)", a35, a4o)
	}
}

func TestBiasVectorStable(t *testing.T) {
	g, _ := testGraph(t, 100)
	a := NewSim(GPT35(), g.Vocab, g.Classes, 41)
	b := NewSim(GPT35(), g.Vocab, g.Classes, 41)
	for _, c := range g.Classes {
		if a.bias[c] != b.bias[c] {
			t.Fatal("bias vector not deterministic")
		}
	}
}

func TestPromptPerturbationCanChangeAnswer(t *testing.T) {
	// The decision noise is keyed by the prompt; at least one of many
	// single-word perturbations should flip some answer, showing the
	// noise is actually content-dependent.
	g, _ := testGraph(t, 600)
	sim := NewSim(GPT35(), g.Vocab, g.Classes, 43)
	flipped := false
	for v := tag.NodeID(0); v < 200 && !flipped; v++ {
		p := buildVanilla(g, v)
		r1, err := sim.Query(p)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := sim.Query(strings.Replace(p, "Title: ", "Title: the ", 1))
		if err != nil {
			t.Fatal(err)
		}
		if r1.Category != r2.Category {
			flipped = true
		}
	}
	if !flipped {
		t.Fatal("no perturbation changed any answer; noise appears prompt-independent")
	}
}

func TestSimOrderIndependentUnderConcurrency(t *testing.T) {
	// The concurrency tentpole relies on Sim keying every decision on
	// hash(seed, prompt), never on call order: a serial pass and a
	// scrambled concurrent pass over the same prompts must agree
	// prediction-for-prediction and token-for-token.
	g, _ := testGraph(t, 300)
	prompts := make([]string, 60)
	for i := range prompts {
		prompts[i] = buildVanilla(g, tag.NodeID(i))
	}

	serial := NewSim(GPT35(), g.Vocab, g.Classes, 7)
	want := make([]Response, len(prompts))
	for i, p := range prompts {
		r, err := serial.Query(p)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}

	concurrent := NewSim(GPT35(), g.Vocab, g.Classes, 7)
	got := make([]Response, len(prompts))
	var wg sync.WaitGroup
	errs := make(chan error, len(prompts))
	// Reverse order across 8 goroutines to scramble scheduling.
	sem := make(chan struct{}, 8)
	for i := len(prompts) - 1; i >= 0; i-- {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			r, err := concurrent.Query(prompts[i])
			if err != nil {
				errs <- err
				return
			}
			got[i] = r
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for i := range prompts {
		if got[i].Category != want[i].Category {
			t.Fatalf("prompt %d: concurrent category %q != serial %q", i, got[i].Category, want[i].Category)
		}
		if got[i].InputTokens != want[i].InputTokens || got[i].OutputTokens != want[i].OutputTokens {
			t.Fatalf("prompt %d: concurrent usage (%d,%d) != serial (%d,%d)", i,
				got[i].InputTokens, got[i].OutputTokens, want[i].InputTokens, want[i].OutputTokens)
		}
	}
	if concurrent.Meter().Total() != serial.Meter().Total() {
		t.Fatalf("meter totals differ: concurrent %d != serial %d",
			concurrent.Meter().Total(), serial.Meter().Total())
	}
}
