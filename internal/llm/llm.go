// Package llm provides the black-box LLM predictor the paper queries.
//
// The paper's pipeline is LLM(t_i, N_i; prompt) -> pseudo-label, with
// the LLM priced per input token and accessed strictly as a black box.
// Offline we replace the network call with a simulated predictor that
// keeps the same contract: it receives only the final prompt string,
// parses it the way a language model reads it (target text, neighbor
// texts, neighbor Category lines, the category list), and scores each
// candidate class by
//
//	score(k) = Wt·targetEvidence(k) + Wn·neighborEvidence(k)
//	         + Wl·labelVotes(k) + bias(k) + temperature·Gumbel
//
// where evidence comes from the model's *noisy* copy of the dataset's
// class-signal vocabulary (its "pretraining knowledge": a fraction of
// word-class associations are forgotten or confused per profile), bias
// is a fixed per-class miscalibration vector, and the Gumbel term makes
// decisions stochastic-but-deterministic — the noise is derived from a
// hash of the prompt itself, so identical prompts always produce
// identical answers (a temperature-0 API with caching) while any change
// to the prompt re-rolls the decision.
//
// Two profiles are calibrated so that vanilla zero-shot accuracy, the
// gain from neighbor text and the gain from neighbor labels land near
// the paper's GPT-3.5-0125 and GPT-4o-mini numbers.
package llm

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/prompt"
	"repro/internal/textgen"
	"repro/internal/token"
	"repro/internal/xrand"
)

// Response is the outcome of one LLM query.
type Response struct {
	Text         string // raw model output, e.g. "Category: ['Theory']"
	Category     string // parsed category
	InputTokens  int
	OutputTokens int
}

// Predictor is the black-box query interface (Eq. 1 of the paper).
// Implementations must derive everything from the prompt text alone.
type Predictor interface {
	Name() string
	Query(promptText string) (Response, error)
}

// Identifier is implemented by predictors that can state their full
// answer-function identity: everything that determines which response
// a given prompt receives. For the simulator that is the profile name
// plus the construction seed — two sims with different seeds answer
// the same prompt differently, so anything keyed on Name alone (such
// as a persistent prompt cache) would serve wrong answers across
// seeds. Predictors that do not implement it are identified by Name.
type Identifier interface {
	Identity() string
}

// IdentityOf returns p's full identity when it exposes one, and its
// Name otherwise.
func IdentityOf(p Predictor) string {
	if id, ok := p.(Identifier); ok {
		return id.Identity()
	}
	return p.Name()
}

// ContextPredictor is implemented by predictors whose queries can be
// canceled mid-flight. The batch executor prefers this path when
// enforcing per-query deadlines: a hung call is abandoned the moment
// its context expires instead of being parked behind a watchdog.
// HTTPPredictor implements it.
type ContextPredictor interface {
	Predictor
	QueryContext(ctx context.Context, promptText string) (Response, error)
}

// Profile parameterizes a simulated model's skill and failure modes.
type Profile struct {
	Name string
	// VocabNoise is the fraction of signal-word associations the model
	// gets wrong: half forgotten, half attributed to a random class.
	VocabNoise float64
	// TargetWeight scales evidence from the target node's own text.
	TargetWeight float64
	// NeighborWeight scales evidence from neighbor texts.
	NeighborWeight float64
	// LabelWeight scales votes from neighbor Category lines.
	LabelWeight float64
	// BiasStd scales the per-class miscalibration vector.
	BiasStd float64
	// Temperature scales the Gumbel decision noise.
	Temperature float64
	// AttentionSpan models attention saturation over neighbor context:
	// the first AttentionSpan neighbors contribute at full weight, and
	// the aggregate neighbor evidence (text and label votes) of longer
	// lists is scaled by AttentionSpan/n. This reproduces the empirical
	// finding that stacking ever more neighbors into a prompt stops
	// helping real LLMs. 0 disables the cap.
	AttentionSpan int
	// Distraction grows the decision noise with the number of neighbor
	// entries: temperature × (1 + Distraction·n). It reproduces the
	// paper's observation that neighbor text "might also introduce
	// noise that impairs the LLM's task performance" (Section VI-C).
	Distraction float64
	// ConflictNoise grows the decision noise with the number of
	// *distinct* neighbor labels beyond the first: conflicting label
	// cues confuse the model rather than being tallied as clean votes.
	// This is the failure mode Algorithm 2's LC_i ≤ γ2 candidate
	// criterion exists to avoid.
	ConflictNoise float64
}

// GPT35 returns the profile calibrated to the paper's default model,
// GPT-3.5-0125.
func GPT35() Profile {
	return Profile{
		Name:           "gpt-3.5",
		VocabNoise:     0.12,
		TargetWeight:   6.0,
		NeighborWeight: 1.1,
		LabelWeight:    1.4,
		BiasStd:        0.55,
		Temperature:    0.75,
		AttentionSpan:  4,
		Distraction:    0.10,
		ConflictNoise:  0.30,
	}
}

// GPT4oMini returns the profile calibrated to GPT-4o-mini, which the
// paper reports as slightly weaker than GPT-3.5 on these benchmarks
// (Table VII).
func GPT4oMini() Profile {
	return Profile{
		Name:           "gpt-4o-mini",
		VocabNoise:     0.18,
		TargetWeight:   6.0,
		NeighborWeight: 1.0,
		LabelWeight:    1.3,
		BiasStd:        0.70,
		Temperature:    0.95,
		AttentionSpan:  4,
		Distraction:    0.12,
		ConflictNoise:  0.35,
	}
}

// Sim is the simulated black-box LLM. It is safe for concurrent use:
// queries read immutable state built by NewSim and mutate only the
// synchronized usage meter. Decisions are keyed by hash(seed, prompt)
// rather than sequential RNG state, so a given prompt receives the same
// answer no matter how many workers issue the batch or in what order —
// the property the concurrent plan executor's determinism rests on.
type Sim struct {
	profile   Profile
	wordClass map[string]string // word -> class name (noisy knowledge)
	bias      map[string]float64
	seed      uint64
	meter     token.Meter
	rec       obs.Recorder
}

// NewSim builds a simulated model whose world knowledge derives from
// the dataset vocabulary with profile-dependent corruption. classes
// maps label index to class name (the names used in prompts).
func NewSim(p Profile, vocab *textgen.Vocabulary, classes []string, seed uint64) *Sim {
	if len(classes) != vocab.Classes() {
		panic(fmt.Sprintf("llm: %d class names for %d vocabulary classes", len(classes), vocab.Classes()))
	}
	root := xrand.New(seed).SplitString("llm/" + p.Name)
	krng := root.SplitString("knowledge")
	s := &Sim{
		profile:   p,
		wordClass: make(map[string]string),
		bias:      make(map[string]float64, len(classes)),
		seed:      seed,
	}
	for k, words := range vocab.Signal {
		for _, w := range words {
			switch {
			case krng.Float64() < p.VocabNoise/2:
				// Forgotten: the model treats the word as background.
			case krng.Float64() < p.VocabNoise/2:
				// Confused: attributed to a random other class.
				s.wordClass[w] = classes[krng.Intn(len(classes))]
			default:
				s.wordClass[w] = classes[k]
			}
		}
	}
	brng := root.SplitString("bias")
	for _, c := range classes {
		s.bias[c] = p.BiasStd * brng.NormFloat64()
	}
	return s
}

// Name returns the profile name.
func (s *Sim) Name() string { return s.profile.Name }

// Identity implements Identifier: the profile name plus the seed that
// shaped the simulator's noisy knowledge, bias vector and decision
// noise. Persistent caches key on this, so reseeding the sim can never
// replay another seed's answers.
func (s *Sim) Identity() string { return fmt.Sprintf("%s/seed=%d", s.profile.Name, s.seed) }

// Meter exposes cumulative token usage across all queries.
func (s *Sim) Meter() *token.Meter { return &s.meter }

// SetObserver routes this simulator's query metrics (count, errors,
// predict latency) to r instead of the process-default recorder. Call
// it before serving; it must not race with Query.
func (s *Sim) SetObserver(r obs.Recorder) { s.rec = r }

// evidence accumulates, per class name, the normalized fraction of
// known signal words in text, and reports the raw signal-word count.
// Normalizing by total signal hits keeps datasets with different text
// lengths on one evidence scale; callers use the hit count to weigh
// down sparse-signal snippets (a single keyword in a neighbor title is
// weak evidence, not total conviction).
func (s *Sim) evidence(text string) (map[string]float64, float64) {
	counts := make(map[string]float64)
	var total float64
	for _, w := range strings.Fields(text) {
		if c, ok := s.wordClass[w]; ok {
			counts[c]++
			total++
		}
	}
	if total == 0 {
		return counts, 0
	}
	out := make(map[string]float64, len(counts))
	for c, n := range counts {
		out[c] = n / total
	}
	return out, total
}

// Query implements Predictor. It fails only on prompts that do not
// follow the Table III templates.
func (s *Sim) Query(promptText string) (Response, error) {
	rec := obs.Active(s.rec)
	live := obs.Enabled(rec)
	var start time.Time
	if live {
		start = time.Now()
	}
	parsed, err := prompt.Parse(promptText)
	if err != nil {
		rec.Add("mqo_sim_errors_total", 1)
		return Response{}, fmt.Errorf("llm: unreadable prompt: %w", err)
	}
	scores := make(map[string]float64, len(parsed.Categories))
	for _, c := range parsed.Categories {
		scores[c] = s.bias[c]
	}

	// Target text evidence.
	targetEv, _ := s.evidence(parsed.TargetText)
	for c, v := range targetEv {
		if _, ok := scores[c]; ok {
			scores[c] += s.profile.TargetWeight * v
		}
	}
	// Attention saturation: long neighbor lists contribute at a scaled
	// aggregate weight rather than growing without bound.
	nNeighbors := len(parsed.NeighborTexts)
	neighborScale := 1.0
	if span := s.profile.AttentionSpan; span > 0 && nNeighbors > span {
		neighborScale = float64(span) / float64(nNeighbors)
	}
	// Neighbor text evidence, weighted by signal density: a snippet
	// with few recognizable keywords carries proportionally weaker
	// conviction.
	for _, nb := range parsed.NeighborTexts {
		ev, hits := s.evidence(nb)
		density := hits / (hits + 2)
		for c, v := range ev {
			if _, ok := scores[c]; ok {
				scores[c] += s.profile.NeighborWeight * neighborScale * density * v
			}
		}
	}
	// Neighbor label votes.
	for _, label := range parsed.NeighborLabels {
		if label == "" {
			continue
		}
		if _, ok := scores[label]; ok {
			scores[label] += s.profile.LabelWeight * neighborScale
		}
	}

	// Deterministic decision noise keyed by the prompt content. Longer
	// neighbor context distracts, and conflicting neighbor labels
	// confuse more than they inform.
	distinct := map[string]bool{}
	for _, label := range parsed.NeighborLabels {
		if label != "" {
			distinct[label] = true
		}
	}
	conflicts := 0
	if len(distinct) > 1 {
		conflicts = len(distinct) - 1
	}
	// Entries past the attention span are skimmed, not read: they
	// neither contribute evidence at full weight nor distract.
	attended := nNeighbors
	if span := s.profile.AttentionSpan; span > 0 && attended > span {
		attended = span
	}
	temperature := s.profile.Temperature *
		(1 + s.profile.Distraction*float64(attended) + s.profile.ConflictNoise*float64(conflicts))
	nrng := xrand.New(s.seed ^ hash(promptText)).SplitString("decision")
	best, bestScore := "", 0.0
	for _, c := range parsed.Categories { // iterate in prompt order: deterministic
		sc := scores[c] + temperature*nrng.Gumbel()
		if best == "" || sc > bestScore {
			best, bestScore = c, sc
		}
	}

	out := prompt.FormatResponse(best)
	resp := Response{
		Text:         out,
		Category:     best,
		InputTokens:  token.Count(promptText),
		OutputTokens: token.Count(out),
	}
	s.meter.AddQuery(resp.InputTokens, resp.OutputTokens)
	if live {
		rec.Add("mqo_sim_queries_total", 1)
		rec.Observe("mqo_sim_predict_duration_seconds", time.Since(start).Seconds())
	}
	return resp, nil
}

// hash is FNV-1a over the prompt text.
func hash(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// MisclassRatios runs the model zero-shot over the given calibration
// texts with known labels and returns, per class, the fraction of its
// nodes the model misclassifies — the paper's w vector (Section V-A).
// It is exposed here because both the core strategy and the harness
// need it. categories is the full class-name list used in prompts.
type Calibration struct {
	// W[k] is the misclassification ratio of class k.
	W []float64
	// Accuracy is overall zero-shot accuracy on the calibration set.
	Accuracy float64
}

// Calibrate executes |texts| vanilla zero-shot queries. texts[i] is the
// (title, abstract) of calibration node i with true label labels[i].
func Calibrate(p Predictor, titles, abstracts []string, labels []int, categories []string, nodeType string) (Calibration, error) {
	if len(titles) != len(labels) || len(abstracts) != len(labels) {
		return Calibration{}, fmt.Errorf("llm: calibration size mismatch")
	}
	k := len(categories)
	wrong := make([]float64, k)
	count := make([]float64, k)
	correct := 0
	for i := range titles {
		pr := prompt.Build(prompt.Request{
			TargetTitle:    titles[i],
			TargetAbstract: abstracts[i],
			Categories:     categories,
			NodeType:       nodeType,
		})
		resp, err := p.Query(pr)
		if err != nil {
			return Calibration{}, err
		}
		y := labels[i]
		count[y]++
		if resp.Category == categories[y] {
			correct++
		} else {
			wrong[y]++
		}
	}
	cal := Calibration{W: make([]float64, k)}
	for c := 0; c < k; c++ {
		if count[c] > 0 {
			cal.W[c] = wrong[c] / count[c]
		}
	}
	if len(titles) > 0 {
		cal.Accuracy = float64(correct) / float64(len(titles))
	}
	return cal, nil
}
