package llm

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// blockingPredictor parks Query until released, to prove the handler's
// bookkeeping does not wait behind an in-flight query.
type blockingPredictor struct {
	entered chan struct{}
	release chan struct{}
}

func (b *blockingPredictor) Name() string { return "blocking" }
func (b *blockingPredictor) Query(string) (Response, error) {
	close(b.entered)
	<-b.release
	return Response{Text: "Category: ['A']", Category: "A", InputTokens: 10, OutputTokens: 2}, nil
}

func chatBody(prompt string) *strings.Reader {
	data, _ := json.Marshal(map[string]any{
		"model":    "sim",
		"messages": []map[string]string{{"role": "user", "content": prompt}},
	})
	return strings.NewReader(string(data))
}

func TestHandlerDoesNotBlockBehindSlowQuery(t *testing.T) {
	bp := &blockingPredictor{entered: make(chan struct{}), release: make(chan struct{})}
	reg := obs.NewRegistry()
	h := NewHandler(bp)
	h.Obs = reg

	done := make(chan struct{})
	go func() {
		defer close(done)
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, httptest.NewRequest("POST", ChatCompletionsPath, chatBody("p")))
	}()
	<-bp.entered // predictor call is in flight and holding qmu

	// Requests() and the metrics registry must respond immediately.
	readDone := make(chan struct{})
	go func() {
		_ = h.Requests()
		var b strings.Builder
		_ = reg.WritePrometheus(&b)
		close(readDone)
	}()
	select {
	case <-readDone:
	case <-time.After(2 * time.Second):
		t.Fatal("Requests()/metrics blocked behind an in-flight query")
	}

	// A concurrent malformed request must also complete without waiting
	// for the predictor: validation happens outside the critical section.
	badDone := make(chan int, 1)
	go func() {
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, httptest.NewRequest("POST", ChatCompletionsPath, strings.NewReader("{not json")))
		badDone <- rw.Code
	}()
	select {
	case code := <-badDone:
		if code != http.StatusBadRequest {
			t.Fatalf("malformed request code = %d, want 400", code)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("malformed request blocked behind an in-flight query")
	}

	close(bp.release)
	<-done
	if h.Requests() != 1 {
		t.Fatalf("Requests = %d, want 1", h.Requests())
	}
}

func TestHandlerMalformedBodyJSONError(t *testing.T) {
	h := NewHandler(&blockingPredictor{}) // never reached
	for _, body := range []string{"{truncated", `"a string"`, ""} {
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, httptest.NewRequest("POST", ChatCompletionsPath, strings.NewReader(body)))
		if rw.Code != http.StatusBadRequest {
			t.Fatalf("body %q: code = %d, want 400", body, rw.Code)
		}
		if ct := rw.Header().Get("Content-Type"); ct != "application/json" {
			t.Fatalf("body %q: content-type = %q", body, ct)
		}
		var eb chatErrorBody
		if err := json.Unmarshal(rw.Body.Bytes(), &eb); err != nil || eb.Error.Message == "" {
			t.Fatalf("body %q: error body not JSON with message: %v / %s", body, err, rw.Body.String())
		}
	}
}

func TestHandlerOversizedBody413(t *testing.T) {
	h := NewHandler(&blockingPredictor{})
	big := strings.NewReader(strings.Repeat("x", maxRequestBody+1))
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("POST", ChatCompletionsPath, big))
	if rw.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("code = %d, want 413", rw.Code)
	}
	var eb chatErrorBody
	if err := json.Unmarshal(rw.Body.Bytes(), &eb); err != nil {
		t.Fatalf("413 body not JSON: %v", err)
	}
}

func TestHandlerRecordsMetricsAndUsageHeaders(t *testing.T) {
	g, _ := testGraph(t, 200)
	sim := NewSim(GPT35(), g.Vocab, g.Classes, 1)
	reg := obs.NewRegistry()
	sim.SetObserver(reg)
	h := NewHandler(sim)
	h.Obs = reg

	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("POST", ChatCompletionsPath, chatBody(buildVanilla(g, 0))))
	if rw.Code != http.StatusOK {
		t.Fatalf("code = %d: %s", rw.Code, rw.Body.String())
	}
	if rw.Header().Get(obs.HeaderInputTokens) == "" || rw.Header().Get(obs.HeaderOutputTokens) == "" {
		t.Fatal("usage headers not set on success")
	}

	// One more request that fails validation, then check the registry.
	rw2 := httptest.NewRecorder()
	h.ServeHTTP(rw2, httptest.NewRequest("GET", ChatCompletionsPath, nil))
	if rw2.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET code = %d", rw2.Code)
	}

	if got := reg.CounterValue("mqo_http_requests_total", "code", "200"); got != 1 {
		t.Fatalf("requests{200} = %v, want 1", got)
	}
	if got := reg.CounterValue("mqo_http_requests_total", "code", "405"); got != 1 {
		t.Fatalf("requests{405} = %v, want 1", got)
	}
	if got := reg.CounterValue("mqo_http_errors_total", "code", "405"); got != 1 {
		t.Fatalf("errors{405} = %v, want 1", got)
	}
	if reg.CounterValue("mqo_http_input_tokens_total") <= 0 {
		t.Fatal("input tokens not recorded")
	}
	if got := reg.HistogramCount("mqo_http_request_duration_seconds"); got != 2 {
		t.Fatalf("latency observations = %d, want 2", got)
	}
	if got := reg.CounterValue("mqo_sim_queries_total"); got != 1 {
		t.Fatalf("sim queries = %v, want 1", got)
	}
	if got := reg.HistogramCount("mqo_sim_predict_duration_seconds"); got != 1 {
		t.Fatalf("sim latency observations = %d, want 1", got)
	}
}
