package llm

import (
	"net/http"
	"testing"
	"time"
)

func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		name, header string
		want         time.Duration
	}{
		{"delta seconds", "2", 2 * time.Second},
		{"delta with spaces", "  120  ", 120 * time.Second},
		{"zero", "0", 0},
		{"negative", "-5", 0},
		{"http date future", now.Add(90 * time.Second).Format(http.TimeFormat), 90 * time.Second},
		{"http date past", now.Add(-time.Minute).Format(http.TimeFormat), 0},
		{"empty", "", 0},
		{"garbage", "soon", 0},
	}
	for _, c := range cases {
		if got := parseRetryAfter(c.header, now); got != c.want {
			t.Errorf("%s: parseRetryAfter(%q) = %v, want %v", c.name, c.header, got, c.want)
		}
	}
}
