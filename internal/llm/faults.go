package llm

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/xrand"
)

// newFaultRNG derives the per-prompt decision stream, keyed the same
// way as Sim's Gumbel noise: hash the prompt, fold in the seed.
func newFaultRNG(seed uint64, promptText string) *xrand.RNG {
	return xrand.New(seed ^ hash(promptText)).SplitString("fault")
}

// This file implements deterministic fault injection for chaos testing
// the execution pipeline. Real LLM backends fail in three ways the
// paper's algorithms never model: requests error out (rate limits,
// 5xx), requests hang (a stuck connection or an overloaded server), and
// requests return garbage (truncated or off-format completions). The
// FaultInjector reproduces all three as a pure function of
// hash(seed, prompt) — the same keying discipline as Sim's decision
// noise — so a chaos run is bit-for-bit reproducible: the same prompts
// fail the same way no matter how many workers dispatch the batch, in
// what order, or how often a prompt is retried.

// FaultConfig parameterizes a FaultInjector. The three rates partition
// the unit interval; their sum must not exceed 1. A prompt's fate is
// decided once from hash(Seed, prompt): every attempt at that prompt
// repeats the same fault, so retries against an injected error are
// futile by design (a permanently-failing prompt models a poisoned
// request, the case graceful degradation exists for).
type FaultConfig struct {
	// Seed keys the per-prompt fault schedule. Two injectors with the
	// same seed and config inject identical faults.
	Seed uint64
	// ErrorRate is the fraction of prompts that fail with a retryable
	// API error (status 503) instead of answering.
	ErrorRate float64
	// HangRate is the fraction of prompts that never answer: Query
	// blocks until the context is canceled (QueryContext) or until the
	// executor's watchdog abandons the call (plain Query).
	HangRate float64
	// GarbageRate is the fraction of prompts answered with an
	// off-template completion whose category matches no class — the
	// silent failure mode no error path catches.
	GarbageRate float64
	// MaxLatency, when > 0, adds a per-prompt deterministic delay drawn
	// uniformly from [0, MaxLatency) to every successful answer.
	MaxLatency time.Duration
}

// validate reports a configuration error, if any.
func (c FaultConfig) validate() error {
	for _, r := range []float64{c.ErrorRate, c.HangRate, c.GarbageRate} {
		if r < 0 || r > 1 {
			return fmt.Errorf("llm: fault rate %v outside [0,1]", r)
		}
	}
	if s := c.ErrorRate + c.HangRate + c.GarbageRate; s > 1 {
		return fmt.Errorf("llm: fault rates sum to %v > 1", s)
	}
	if c.MaxLatency < 0 {
		return fmt.Errorf("llm: negative MaxLatency %v", c.MaxLatency)
	}
	return nil
}

// FaultStats counts injected faults, readable while queries run.
type FaultStats struct {
	Errors  int64
	Hangs   int64
	Garbage int64
	Passed  int64
}

// FaultInjector wraps a predictor with a deterministic fault schedule.
// It is safe for concurrent use whenever the inner predictor is, and
// implements ContextPredictor so injected hangs respect per-query
// deadlines.
type FaultInjector struct {
	inner Predictor
	cfg   FaultConfig

	errors  atomic.Int64
	hangs   atomic.Int64
	garbage atomic.Int64
	passed  atomic.Int64
}

// NewFaultInjector validates cfg and wraps p.
func NewFaultInjector(p Predictor, cfg FaultConfig) (*FaultInjector, error) {
	if p == nil {
		return nil, fmt.Errorf("llm: nil predictor")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &FaultInjector{inner: p, cfg: cfg}, nil
}

// Name implements Predictor.
func (f *FaultInjector) Name() string { return f.inner.Name() + "+faults" }

// Identity implements Identifier. The fault schedule changes which
// answers come back (garbage fates replace real completions), so the
// injector's seed and rates are part of the answer-function identity —
// a cache filled during a chaos run can never leak into a clean one.
func (f *FaultInjector) Identity() string {
	return fmt.Sprintf("%s+faults(seed=%d,e=%g,h=%g,g=%g)",
		IdentityOf(f.inner), f.cfg.Seed, f.cfg.ErrorRate, f.cfg.HangRate, f.cfg.GarbageRate)
}

// Stats snapshots the injected-fault counters.
func (f *FaultInjector) Stats() FaultStats {
	return FaultStats{
		Errors:  f.errors.Load(),
		Hangs:   f.hangs.Load(),
		Garbage: f.garbage.Load(),
		Passed:  f.passed.Load(),
	}
}

// fault classifies one prompt's fate and its injected latency. The
// decision derives only from (Seed, prompt), never from call order or
// shared RNG state.
type faultKind int

const (
	faultNone faultKind = iota
	faultError
	faultHang
	faultGarbage
)

func (f *FaultInjector) fault(promptText string) (faultKind, time.Duration) {
	rng := newFaultRNG(f.cfg.Seed, promptText)
	u := rng.Float64()
	switch {
	case u < f.cfg.HangRate:
		return faultHang, 0
	case u < f.cfg.HangRate+f.cfg.ErrorRate:
		return faultError, 0
	case u < f.cfg.HangRate+f.cfg.ErrorRate+f.cfg.GarbageRate:
		return faultGarbage, 0
	}
	var latency time.Duration
	if f.cfg.MaxLatency > 0 {
		latency = time.Duration(rng.Float64() * float64(f.cfg.MaxLatency))
	}
	return faultNone, latency
}

// Query implements Predictor. An injected hang blocks forever; prefer
// QueryContext (the batch executor's timeout path uses it), which
// unblocks when the context ends.
func (f *FaultInjector) Query(promptText string) (Response, error) {
	return f.QueryContext(context.Background(), promptText)
}

// QueryContext implements ContextPredictor: it decides the prompt's
// fate from the seeded schedule, then either errors, hangs until the
// context ends, answers with garbage, or forwards to the inner
// predictor after the injected latency.
func (f *FaultInjector) QueryContext(ctx context.Context, promptText string) (Response, error) {
	kind, latency := f.fault(promptText)
	switch kind {
	case faultHang:
		f.hangs.Add(1)
		<-ctx.Done()
		return Response{}, ctx.Err()
	case faultError:
		f.errors.Add(1)
		return Response{}, &APIError{StatusCode: 503, Message: "injected fault"}
	case faultGarbage:
		f.garbage.Add(1)
		// A corrupted completion: parseable as text, matching no class.
		garbled := "I'm sorry, as an AI language model I cannot"
		return Response{
			Text:         garbled,
			Category:     garbled,
			InputTokens:  0,
			OutputTokens: 0,
		}, nil
	}
	if latency > 0 {
		t := time.NewTimer(latency)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return Response{}, ctx.Err()
		}
	}
	f.passed.Add(1)
	if cp, ok := f.inner.(ContextPredictor); ok {
		return cp.QueryContext(ctx, promptText)
	}
	return f.inner.Query(promptText)
}
