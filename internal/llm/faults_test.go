package llm

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/tag"
)

// faultKinds classifies every prompt's fate under one injector config
// without executing queries.
func faultKinds(inj *FaultInjector, prompts []string) []faultKind {
	out := make([]faultKind, len(prompts))
	for i, p := range prompts {
		out[i], _ = inj.fault(p)
	}
	return out
}

func testPrompts(t testing.TB, g *tag.Graph, n int) []string {
	t.Helper()
	if g.NumNodes() < n {
		t.Fatalf("graph too small: %d nodes", g.NumNodes())
	}
	out := make([]string, n)
	for i := range out {
		out[i] = buildVanilla(g, tag.NodeID(i))
	}
	return out
}

func TestFaultInjectorDeterministic(t *testing.T) {
	g, _ := testGraph(t, 300)
	sim := NewSim(GPT35(), g.Vocab, g.Classes, 7)
	prompts := testPrompts(t, g, 200)
	cfg := FaultConfig{Seed: 11, ErrorRate: 0.2, HangRate: 0.1, GarbageRate: 0.1}

	a, err := NewFaultInjector(sim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewFaultInjector(sim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ka, kb := faultKinds(a, prompts), faultKinds(b, prompts)
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("prompt %d: same seed decided %v vs %v", i, ka[i], kb[i])
		}
	}
	// Repeating a prompt repeats its fate: retries are futile by design.
	for i := 0; i < 10; i++ {
		if k, _ := a.fault(prompts[0]); k != ka[0] {
			t.Fatalf("attempt %d changed prompt 0's fate: %v vs %v", i, k, ka[0])
		}
	}
	// A different seed reshuffles fates.
	cfg.Seed = 12
	c, err := NewFaultInjector(sim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i, k := range faultKinds(c, prompts) {
		if k == ka[i] {
			same++
		}
	}
	if same == len(prompts) {
		t.Fatal("different seeds produced identical fault schedules")
	}
}

func TestFaultInjectorRates(t *testing.T) {
	g, _ := testGraph(t, 600)
	sim := NewSim(GPT35(), g.Vocab, g.Classes, 7)
	prompts := testPrompts(t, g, 500)
	inj, err := NewFaultInjector(sim, FaultConfig{Seed: 3, ErrorRate: 0.3, HangRate: 0.1, GarbageRate: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[faultKind]int{}
	for _, k := range faultKinds(inj, prompts) {
		counts[k]++
	}
	n := float64(len(prompts))
	for kind, want := range map[faultKind]float64{
		faultError:   0.3,
		faultHang:    0.1,
		faultGarbage: 0.2,
		faultNone:    0.4,
	} {
		got := float64(counts[kind]) / n
		if math.Abs(got-want) > 0.07 {
			t.Errorf("kind %v: observed rate %.3f, want ~%.2f", kind, got, want)
		}
	}
}

func TestFaultInjectorOutcomes(t *testing.T) {
	g, _ := testGraph(t, 300)
	sim := NewSim(GPT35(), g.Vocab, g.Classes, 7)
	prompts := testPrompts(t, g, 150)
	inj, err := NewFaultInjector(sim, FaultConfig{Seed: 5, ErrorRate: 0.25, GarbageRate: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	valid := map[string]bool{}
	for _, c := range g.Classes {
		valid[c] = true
	}
	var sawErr, sawGarbage, sawPass bool
	for _, p := range prompts {
		kind, _ := inj.fault(p)
		resp, err := inj.Query(p)
		switch kind {
		case faultError:
			sawErr = true
			var apiErr *APIError
			if !errors.As(err, &apiErr) || apiErr.StatusCode != 503 {
				t.Fatalf("injected error surfaced as %v, want 503 APIError", err)
			}
		case faultGarbage:
			sawGarbage = true
			if err != nil {
				t.Fatalf("garbage fault returned error %v", err)
			}
			if valid[resp.Category] {
				t.Fatalf("garbage response %q matches a real class", resp.Category)
			}
		case faultNone:
			sawPass = true
			if err != nil {
				t.Fatalf("clean prompt failed: %v", err)
			}
			if !valid[resp.Category] {
				t.Fatalf("clean response %q is not a class", resp.Category)
			}
		}
	}
	if !sawErr || !sawGarbage || !sawPass {
		t.Fatalf("fault mix not exercised: err=%v garbage=%v pass=%v", sawErr, sawGarbage, sawPass)
	}
	st := inj.Stats()
	if st.Errors == 0 || st.Garbage == 0 || st.Passed == 0 {
		t.Fatalf("stats not counted: %+v", st)
	}
}

func TestFaultInjectorHangRespectsContext(t *testing.T) {
	g, _ := testGraph(t, 300)
	sim := NewSim(GPT35(), g.Vocab, g.Classes, 7)
	inj, err := NewFaultInjector(sim, FaultConfig{Seed: 1, HangRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := inj.QueryContext(ctx, buildVanilla(g, 0))
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("hang unblocked with %v, want deadline exceeded", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("injected hang ignored context cancellation")
	}
	if inj.Stats().Hangs != 1 {
		t.Fatalf("hangs = %d, want 1", inj.Stats().Hangs)
	}
}

func TestFaultConfigValidate(t *testing.T) {
	g, _ := testGraph(t, 300)
	sim := NewSim(GPT35(), g.Vocab, g.Classes, 7)
	for _, cfg := range []FaultConfig{
		{ErrorRate: -0.1},
		{ErrorRate: 1.2},
		{ErrorRate: 0.5, HangRate: 0.4, GarbageRate: 0.2}, // sums to 1.1
		{MaxLatency: -time.Second},
	} {
		if _, err := NewFaultInjector(sim, cfg); err == nil {
			t.Errorf("config %+v accepted, want error", cfg)
		}
	}
	if _, err := NewFaultInjector(nil, FaultConfig{}); err == nil {
		t.Error("nil predictor accepted")
	}
}
