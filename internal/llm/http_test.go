package llm_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/llm"
	"repro/internal/prompt"
	"repro/internal/tag"
)

// testGraphAndPrompt builds a small dataset and one valid Table III
// prompt for it.
func testGraphAndPrompt(t testing.TB) (*tag.Graph, string, string) {
	t.Helper()
	spec, err := tag.SpecByName("cora")
	if err != nil {
		t.Fatal(err)
	}
	g := tag.Generate(spec, 3, tag.Options{Scale: 0.1})
	v := g.Nodes[0]
	p := prompt.Build(prompt.Request{
		TargetTitle:    v.Title,
		TargetAbstract: v.Abstract,
		Categories:     g.Classes,
	})
	return g, p, g.Classes[v.Label]
}

func newTestClient(t testing.TB, baseURL string, extra func(*llm.HTTPConfig)) *llm.HTTPPredictor {
	t.Helper()
	cfg := llm.HTTPConfig{
		BaseURL:        baseURL,
		Model:          "sim-gpt-3.5",
		MaxRetries:     3,
		RetryBaseDelay: time.Millisecond,
	}
	if extra != nil {
		extra(&cfg)
	}
	c, err := llm.NewHTTPPredictor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestHTTPRoundTripMatchesDirectSim(t *testing.T) {
	g, promptText, _ := testGraphAndPrompt(t)

	direct := llm.NewSim(llm.GPT35(), g.Vocab, g.Classes, 9)
	want, err := direct.Query(promptText)
	if err != nil {
		t.Fatal(err)
	}

	served := llm.NewSim(llm.GPT35(), g.Vocab, g.Classes, 9)
	h := llm.NewHandler(served)
	srv := httptest.NewServer(h)
	defer srv.Close()

	c := newTestClient(t, srv.URL, nil)
	got, err := c.Query(promptText)
	if err != nil {
		t.Fatal(err)
	}
	if got.Category != want.Category {
		t.Errorf("HTTP category %q != direct %q", got.Category, want.Category)
	}
	if got.InputTokens != want.InputTokens || got.OutputTokens != want.OutputTokens {
		t.Errorf("usage over HTTP (%d,%d) != direct (%d,%d)",
			got.InputTokens, got.OutputTokens, want.InputTokens, want.OutputTokens)
	}
	if c.Meter().Queries() != 1 || c.Meter().InputTokens() != want.InputTokens {
		t.Errorf("client meter = %d queries / %d input tokens, want 1 / %d",
			c.Meter().Queries(), c.Meter().InputTokens(), want.InputTokens)
	}
	if h.Requests() != 1 {
		t.Errorf("server served %d requests, want 1", h.Requests())
	}
}

func TestHTTPRetryOn503ThenSuccess(t *testing.T) {
	g, promptText, _ := testGraphAndPrompt(t)
	inner := llm.NewHandler(llm.NewSim(llm.GPT35(), g.Vocab, g.Classes, 9))

	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, `{"error":{"message":"overloaded","type":"server_error"}}`,
				http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	c := newTestClient(t, srv.URL, nil)
	resp, err := c.Query(promptText)
	if err != nil {
		t.Fatalf("expected retry success, got %v", err)
	}
	if resp.Category == "" {
		t.Error("empty category after retry")
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want 3 (2 failures + success)", got)
	}
}

func TestHTTPNoRetryOnClientError(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":{"message":"bad prompt","type":"invalid_request_error"}}`,
			http.StatusBadRequest)
	}))
	defer srv.Close()

	c := newTestClient(t, srv.URL, nil)
	_, err := c.Query("whatever")
	if err == nil {
		t.Fatal("400 response did not error")
	}
	var apiErr *llm.APIError
	if !asAPIError(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("error = %v, want APIError 400", err)
	}
	if !strings.Contains(apiErr.Message, "bad prompt") {
		t.Errorf("error message %q lost server detail", apiErr.Message)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("client retried a 400: %d calls", got)
	}
}

// asAPIError mirrors errors.As without importing errors in this test.
func asAPIError(err error, target **llm.APIError) bool {
	for err != nil {
		if e, ok := err.(*llm.APIError); ok {
			*target = e
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func TestHTTPRetryExhaustion(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":{"message":"slow down","type":"server_error"}}`,
			http.StatusTooManyRequests)
	}))
	defer srv.Close()

	c := newTestClient(t, srv.URL, func(cfg *llm.HTTPConfig) { cfg.MaxRetries = 2 })
	_, err := c.Query("x")
	if err == nil {
		t.Fatal("exhausted retries did not error")
	}
	if !strings.Contains(err.Error(), "3 attempts") {
		t.Errorf("error %q does not report attempts", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want 3", got)
	}
}

func TestHTTPAuth(t *testing.T) {
	g, promptText, _ := testGraphAndPrompt(t)
	h := llm.NewHandler(llm.NewSim(llm.GPT35(), g.Vocab, g.Classes, 9))
	h.RequireKey = "sk-test-123"
	srv := httptest.NewServer(h)
	defer srv.Close()

	bad := newTestClient(t, srv.URL, func(cfg *llm.HTTPConfig) { cfg.APIKey = "wrong" })
	if _, err := bad.Query(promptText); err == nil {
		t.Error("wrong API key accepted")
	}
	good := newTestClient(t, srv.URL, func(cfg *llm.HTTPConfig) { cfg.APIKey = "sk-test-123" })
	if _, err := good.Query(promptText); err != nil {
		t.Errorf("correct API key rejected: %v", err)
	}
}

func TestHTTPLenientCategoryFallback(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		out := map[string]any{
			"choices": []map[string]any{{
				"message": map[string]any{"role": "assistant", "content": "  Theory \n"},
			}},
			"usage": map[string]int{"prompt_tokens": 10, "completion_tokens": 2},
		}
		_ = json.NewEncoder(w).Encode(out)
	}))
	defer srv.Close()

	c := newTestClient(t, srv.URL, nil)
	resp, err := c.Query("x")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Category != "Theory" {
		t.Errorf("fallback category = %q, want %q", resp.Category, "Theory")
	}
	if resp.InputTokens != 10 || resp.OutputTokens != 2 {
		t.Errorf("usage = (%d,%d), want server-reported (10,2)", resp.InputTokens, resp.OutputTokens)
	}
}

func TestHTTPMalformedResponses(t *testing.T) {
	cases := []struct {
		name string
		body string
	}{
		{"not json", "garbage"},
		{"no choices", `{"choices":[]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				fmt.Fprint(w, tc.body)
			}))
			defer srv.Close()
			c := newTestClient(t, srv.URL, func(cfg *llm.HTTPConfig) { cfg.MaxRetries = 1 })
			if _, err := c.Query("x"); err == nil {
				t.Error("malformed response accepted")
			}
		})
	}
}

func TestHTTPConfigValidation(t *testing.T) {
	if _, err := llm.NewHTTPPredictor(llm.HTTPConfig{Model: "m"}); err == nil {
		t.Error("missing BaseURL accepted")
	}
	if _, err := llm.NewHTTPPredictor(llm.HTTPConfig{BaseURL: "http://x"}); err == nil {
		t.Error("missing Model accepted")
	}
	if _, err := llm.NewHTTPPredictor(llm.HTTPConfig{BaseURL: "http://x", Model: "m", MaxRetries: -1}); err == nil {
		t.Error("negative MaxRetries accepted")
	}
}

func TestHandlerRequestValidation(t *testing.T) {
	g, _, _ := testGraphAndPrompt(t)
	h := llm.NewHandler(llm.NewSim(llm.GPT35(), g.Vocab, g.Classes, 9))
	srv := httptest.NewServer(h)
	defer srv.Close()

	post := func(path, body string) int {
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	if got := post("/nope", "{}"); got != http.StatusNotFound {
		t.Errorf("unknown path -> %d, want 404", got)
	}
	if got := post(llm.ChatCompletionsPath, "not json"); got != http.StatusBadRequest {
		t.Errorf("bad json -> %d, want 400", got)
	}
	if got := post(llm.ChatCompletionsPath, `{"model":"m","messages":[]}`); got != http.StatusBadRequest {
		t.Errorf("no messages -> %d, want 400", got)
	}
	// An unreadable (non-Table III) prompt is a 400, not a 500.
	if got := post(llm.ChatCompletionsPath,
		`{"model":"m","messages":[{"role":"user","content":"hi"}]}`); got != http.StatusBadRequest {
		t.Errorf("unreadable prompt -> %d, want 400", got)
	}
	resp, err := http.Get(srv.URL + llm.ChatCompletionsPath)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET -> %d, want 405", resp.StatusCode)
	}
}

func TestRetryBackoffCapped(t *testing.T) {
	base := 100 * time.Millisecond
	max := 30 * time.Second
	cases := []struct {
		attempt int
		want    time.Duration
	}{
		{1, 100 * time.Millisecond},
		{2, 200 * time.Millisecond},
		{5, 1600 * time.Millisecond},
		{10, 30 * time.Second},
		// Regression: shifting/doubling by the raw attempt count used to
		// overflow int64 into negative delays past attempt ~64.
		{64, 30 * time.Second},
		{100, 30 * time.Second},
		{1 << 20, 30 * time.Second},
	}
	for _, c := range cases {
		got := llm.RetryBackoff(base, max, c.attempt)
		if got != c.want {
			t.Errorf("RetryBackoff(%v, %v, %d) = %v, want %v", base, max, c.attempt, got, c.want)
		}
		if got < 0 {
			t.Fatalf("RetryBackoff(%v, %v, %d) went negative: %v", base, max, c.attempt, got)
		}
	}
	if d := llm.RetryBackoff(0, max, 50); d != 0 {
		t.Errorf("zero base must yield zero delay, got %v", d)
	}
	if d := llm.RetryBackoff(time.Second, 0, 80); d != llm.DefaultMaxRetryDelay {
		t.Errorf("zero max must default to %v, got %v", llm.DefaultMaxRetryDelay, d)
	}
}

func TestHTTPConcurrentQueriesMeterRace(t *testing.T) {
	// Regression for a data race on HTTPPredictor.meter: one client
	// shared by many workers must meter all queries without racing (run
	// under -race) and without losing counts.
	g, promptText, _ := testGraphAndPrompt(t)
	h := llm.NewHandler(llm.NewSim(llm.GPT35(), g.Vocab, g.Classes, 9))
	srv := httptest.NewServer(h)
	defer srv.Close()

	c := newTestClient(t, srv.URL, nil)
	const workers = 8
	const perWorker = 5
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := c.Query(promptText); err != nil {
					errs <- err
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := c.Meter().Queries(); got != workers*perWorker {
		t.Fatalf("meter recorded %d queries, want %d", got, workers*perWorker)
	}
	if c.Meter().InputTokens() <= 0 || c.Meter().OutputTokens() <= 0 {
		t.Fatalf("meter token totals not recorded: in=%d out=%d",
			c.Meter().InputTokens(), c.Meter().OutputTokens())
	}
}

// retryAfterServer answers 429 with the given Retry-After header value
// until failures have been served, then proxies to a real sim handler.
func retryAfterServer(t *testing.T, failures int, header func() string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	g, _, _ := testGraphAndPrompt(t)
	inner := llm.NewHandler(llm.NewSim(llm.GPT35(), g.Vocab, g.Classes, 9))
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= int64(failures) {
			w.Header().Set("Retry-After", header())
			http.Error(w, `{"error":{"message":"slow down","type":"rate_limit_error"}}`,
				http.StatusTooManyRequests)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)
	return srv, &calls
}

// TestHTTPHonorsRetryAfterSeconds is the regression test for the
// ignored-Retry-After bug: the client used to retry a 429 on its own
// exponential schedule (1ms base here), fighting server backpressure.
// The server demands 2s; with MaxRetryDelay capping it at 250ms, the
// observed wait proves the header — not the exponential schedule —
// set the delay.
func TestHTTPHonorsRetryAfterSeconds(t *testing.T) {
	_, promptText, _ := testGraphAndPrompt(t)
	srv, calls := retryAfterServer(t, 1, func() string { return "2" })
	c := newTestClient(t, srv.URL, func(cfg *llm.HTTPConfig) {
		cfg.MaxRetryDelay = 250 * time.Millisecond
	})

	startAt := time.Now()
	if _, err := c.Query(promptText); err != nil {
		t.Fatalf("expected retry success, got %v", err)
	}
	elapsed := time.Since(startAt)
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d calls, want 2", got)
	}
	if elapsed < 250*time.Millisecond {
		t.Fatalf("waited %v before retrying, want >= 250ms (Retry-After capped at MaxRetryDelay); the exponential schedule alone would wait ~1ms", elapsed)
	}
	if elapsed > 1500*time.Millisecond {
		t.Fatalf("waited %v, want the 2s header capped at the 250ms MaxRetryDelay", elapsed)
	}
}

// TestHTTPHonorsRetryAfterHTTPDate covers the HTTP-date form of the
// header, which must be honored the same way as delta-seconds.
func TestHTTPHonorsRetryAfterHTTPDate(t *testing.T) {
	_, promptText, _ := testGraphAndPrompt(t)
	srv, calls := retryAfterServer(t, 1, func() string {
		return time.Now().Add(2 * time.Second).UTC().Format(http.TimeFormat)
	})
	c := newTestClient(t, srv.URL, func(cfg *llm.HTTPConfig) {
		cfg.MaxRetryDelay = 250 * time.Millisecond
	})

	startAt := time.Now()
	if _, err := c.Query(promptText); err != nil {
		t.Fatalf("expected retry success, got %v", err)
	}
	elapsed := time.Since(startAt)
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d calls, want 2", got)
	}
	if elapsed < 250*time.Millisecond {
		t.Fatalf("waited %v before retrying, want >= 250ms from the HTTP-date Retry-After", elapsed)
	}
}

// TestHTTPMalformedRetryAfterFallsBack keeps the exponential schedule
// when the header cannot be parsed.
func TestHTTPMalformedRetryAfterFallsBack(t *testing.T) {
	_, promptText, _ := testGraphAndPrompt(t)
	srv, _ := retryAfterServer(t, 1, func() string { return "soon" })
	c := newTestClient(t, srv.URL, nil)

	startAt := time.Now()
	if _, err := c.Query(promptText); err != nil {
		t.Fatalf("expected retry success, got %v", err)
	}
	if elapsed := time.Since(startAt); elapsed > time.Second {
		t.Fatalf("malformed header stalled the retry for %v", elapsed)
	}
}

// TestHTTPRetryAfterSurfacesInAPIError asserts the parsed hint rides
// the error so pools/executors can respect it too.
func TestHTTPRetryAfterSurfacesInAPIError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		http.Error(w, `{"error":{"message":"slow down","type":"rate_limit_error"}}`,
			http.StatusTooManyRequests)
	}))
	defer srv.Close()
	c := newTestClient(t, srv.URL, func(cfg *llm.HTTPConfig) {
		cfg.MaxRetries = 1
		cfg.MaxRetryDelay = time.Millisecond
	})

	_, err := c.Query("whatever")
	var apiErr *llm.APIError
	if !asAPIError(err, &apiErr) {
		t.Fatalf("error = %v, want wrapped APIError", err)
	}
	if apiErr.RetryAfter != 7*time.Second {
		t.Fatalf("APIError.RetryAfter = %v, want 7s", apiErr.RetryAfter)
	}
}
