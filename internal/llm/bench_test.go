package llm_test

import (
	"testing"

	"repro/internal/llm"
)

// BenchmarkSimQuery measures one simulated black-box query end to end
// (prompt parse, evidence scoring, decision, token metering) — the
// unit every experiment multiplies by thousands.
func BenchmarkSimQuery(b *testing.B) {
	g, promptText, _ := testGraphAndPrompt(b)
	sim := llm.NewSim(llm.GPT35(), g.Vocab, g.Classes, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Query(promptText); err != nil {
			b.Fatal(err)
		}
	}
}
