package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMetricsHandler(t *testing.T) {
	r := NewRegistry()
	r.Add("hits_total", 3, "code", "200")
	r.Observe("lat_seconds", 0.02)

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("content-type = %q", ct)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 1<<20)
	n, _ := resp.Body.Read(body)
	out := string(body[:n])
	if !strings.Contains(out, `hits_total{code="200"} 3`) {
		t.Fatalf("missing counter series:\n%s", out)
	}
	if !strings.Contains(out, `lat_seconds_bucket{le="+Inf"} 1`) {
		t.Fatalf("missing histogram +Inf bucket:\n%s", out)
	}
}

func TestTraceHandler(t *testing.T) {
	r := NewRegistry()
	sp := r.StartSpan("req", "path", "/x")
	sp.End()

	rw := httptest.NewRecorder()
	TraceHandler(r).ServeHTTP(rw, httptest.NewRequest("GET", "/debug/traces", nil))
	if ct := rw.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type = %q", ct)
	}
	var traces []Trace
	if err := json.Unmarshal(rw.Body.Bytes(), &traces); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, rw.Body.String())
	}
	if len(traces) != 1 || traces[0].Name != "req" || traces[0].Attrs["path"] != "/x" {
		t.Fatalf("traces = %+v", traces)
	}
}

func TestAccessLogLine(t *testing.T) {
	var buf strings.Builder
	inner := http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set(HeaderInputTokens, "120")
		w.Header().Set(HeaderOutputTokens, "4")
		w.WriteHeader(http.StatusTeapot)
		_, _ = w.Write([]byte("short and stout"))
	})
	h := AccessLog(NewLogger(&buf), inner)
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("POST", "/v1/chat/completions", nil))

	var line map[string]any
	if err := json.Unmarshal([]byte(buf.String()), &line); err != nil {
		t.Fatalf("log line not JSON: %v\n%s", err, buf.String())
	}
	want := map[string]any{
		"event":         "http_request",
		"method":        "POST",
		"path":          "/v1/chat/completions",
		"status":        float64(http.StatusTeapot),
		"bytes":         float64(len("short and stout")),
		"input_tokens":  "120",
		"output_tokens": "4",
	}
	for k, v := range want {
		if line[k] != v {
			t.Errorf("line[%q] = %v, want %v", k, line[k], v)
		}
	}
	if _, ok := line["time"]; !ok {
		t.Error("log line missing time")
	}
	if _, ok := line["latency_ms"]; !ok {
		t.Error("log line missing latency_ms")
	}
}

func TestAccessLogDefaultsTo200(t *testing.T) {
	var buf strings.Builder
	inner := http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		_, _ = w.Write([]byte("ok")) // implicit 200, no WriteHeader
	})
	AccessLog(NewLogger(&buf), inner).
		ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/healthz", nil))
	var line map[string]any
	if err := json.Unmarshal([]byte(buf.String()), &line); err != nil {
		t.Fatal(err)
	}
	if line["status"] != float64(200) {
		t.Fatalf("status = %v, want 200", line["status"])
	}
}

func TestNilLoggerNoop(t *testing.T) {
	// Both a nil *Logger and NewLogger(nil) must be safe.
	var l *Logger
	l.Log("x", nil)
	NewLogger(nil).Log("y", map[string]any{"k": 1})

	inner := http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {})
	AccessLog(nil, inner).
		ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
}
