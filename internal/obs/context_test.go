package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestStartSpanCtxBuildsHierarchy(t *testing.T) {
	r := NewRegistry()
	root := r.StartSpan("root")
	if root.TraceID() == "" || len(root.TraceID()) != 32 || len(root.SpanID()) != 16 {
		t.Fatalf("root ids = %q / %q", root.TraceID(), root.SpanID())
	}
	ctx := ContextWithSpan(context.Background(), root)
	ctx2, child := StartSpanCtx(ctx, r, "child")
	if child.TraceID() != root.TraceID() {
		t.Fatalf("child trace %q != root trace %q", child.TraceID(), root.TraceID())
	}
	if child.ParentID() != root.SpanID() {
		t.Fatalf("child parent %q != root span %q", child.ParentID(), root.SpanID())
	}
	_, grand := StartSpanCtx(ctx2, r, "grandchild")
	if grand.ParentID() != child.SpanID() || grand.TraceID() != root.TraceID() {
		t.Fatalf("grandchild ids wrong: %+v", grand)
	}
	grand.End()
	child.End()
	root.End()

	got := r.TraceByID(root.TraceID())
	if len(got) != 3 {
		t.Fatalf("TraceByID returned %d spans, want 3", len(got))
	}
}

func TestStartSpanCtxWithoutParentIsRoot(t *testing.T) {
	r := NewRegistry()
	_, sp := StartSpanCtx(context.Background(), r, "lonely")
	if sp.ParentID() != "" || sp.TraceID() == "" {
		t.Fatalf("expected fresh root, got %+v", sp)
	}
}

func TestStartSpanCtxNopRecorder(t *testing.T) {
	ctx, sp := StartSpanCtx(context.Background(), Nop, "x")
	if sp != nil {
		t.Fatal("nop recorder should return nil span")
	}
	if SpanFromContext(ctx) != nil {
		t.Fatal("nil span must not be installed in context")
	}
	sp.SetAttr("a", "b")
	sp.End()
}

func TestStartSpanCtxAtBackdatesStart(t *testing.T) {
	r := NewRegistry()
	start := time.Now().Add(-time.Hour)
	_, sp := StartSpanCtxAt(context.Background(), r, "queued", start)
	if !sp.StartTime().Equal(start) {
		t.Fatalf("start = %v, want %v", sp.StartTime(), start)
	}
	if d := sp.End(); d < time.Hour {
		t.Fatalf("duration %v should include backdated wait", d)
	}
}

func TestTraceParentRoundTrip(t *testing.T) {
	r := NewRegistry()
	sp := r.StartSpan("client")
	hdr := TraceParent(sp)
	if !strings.HasPrefix(hdr, "00-") || !strings.HasSuffix(hdr, "-01") {
		t.Fatalf("traceparent = %q", hdr)
	}
	traceID, spanID, ok := ParseTraceParent(hdr)
	if !ok || traceID != sp.TraceID() || spanID != sp.SpanID() {
		t.Fatalf("parse(%q) = %q/%q/%v", hdr, traceID, spanID, ok)
	}

	// The server side: spans under the remote parent join the trace.
	ctx := WithRemoteParent(context.Background(), hdr)
	_, srv := StartSpanCtx(ctx, r, "server")
	if srv.TraceID() != sp.TraceID() || srv.ParentID() != sp.SpanID() {
		t.Fatalf("server span not stitched: trace %q parent %q", srv.TraceID(), srv.ParentID())
	}
}

func TestParseTraceParentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"garbage",
		"00-zzzz-1111-01",
		"00-" + strings.Repeat("0", 32) + "-1234567812345678-01", // all-zero trace id
		"00-" + strings.Repeat("a", 32) + "-" + strings.Repeat("0", 16) + "-01",
		"00-" + strings.Repeat("A", 32) + "-1234567812345678-01", // uppercase hex
		"00-" + strings.Repeat("a", 31) + "-1234567812345678-01", // short
	}
	for _, v := range bad {
		if _, _, ok := ParseTraceParent(v); ok {
			t.Errorf("ParseTraceParent(%q) accepted", v)
		}
	}
	if got := WithRemoteParent(context.Background(), "junk"); SpanFromContext(got) != nil {
		t.Fatal("malformed traceparent installed a parent")
	}
}

func TestTraceParentNilAndUnsampled(t *testing.T) {
	if TraceParent(nil) != "" {
		t.Fatal("nil span produced a traceparent")
	}
	r := NewRegistry()
	r.SetTraceSample(0)
	sp := r.StartSpan("unsampled")
	if TraceParent(sp) != "" {
		t.Fatal("unsampled span produced a traceparent")
	}
}

func TestSampleRateInheritance(t *testing.T) {
	r := NewRegistry()
	r.SetTraceSample(0)
	root := r.StartSpan("root")
	if root.Sampled() {
		t.Fatal("root sampled at rate 0")
	}
	ctx := ContextWithSpan(context.Background(), root)
	_, child := StartSpanCtx(ctx, r, "child")
	if child.Sampled() {
		t.Fatal("child of unsampled root is sampled")
	}
	child.End()
	root.End()
	if n := len(r.Traces()); n != 0 {
		t.Fatalf("%d spans recorded at rate 0", n)
	}
}

func TestSampleRateFractionDeterministic(t *testing.T) {
	count := func() int {
		r := NewRegistry()
		r.SetTraceSample(0.5)
		n := 0
		for i := 0; i < 1000; i++ {
			if r.StartSpan("s").Sampled() {
				n++
			}
		}
		return n
	}
	a, b := count(), count()
	if a != b {
		t.Fatalf("sampling not deterministic: %d vs %d", a, b)
	}
	if a < 400 || a > 600 {
		t.Fatalf("rate 0.5 sampled %d/1000", a)
	}
}

func TestChargeViaContext(t *testing.T) {
	r := NewRegistry()
	l := NewLedger(r, "t", "q")
	ctx := ContextWithLedger(context.Background(), l)
	Charge(ctx, StageCache, time.Millisecond, 5, true)
	Charge(context.Background(), StageCache, time.Millisecond, 5, true) // no ledger: dropped
	Charge(nil, StageCache, time.Millisecond, 5, true)                  // nil ctx: dropped
	snap := l.Close(time.Millisecond)
	if snap.BilledTokens != 5 {
		t.Fatalf("billed tokens = %d, want 5", snap.BilledTokens)
	}
	if LedgerFromContext(ctx) != l {
		t.Fatal("LedgerFromContext lost the ledger")
	}
}
