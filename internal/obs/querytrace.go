package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"
)

// QueryTrace is the machine-readable form of one query's trace: the
// span tree (as retained spans) plus the closed ledger, if any.
type QueryTrace struct {
	TraceID string          `json:"trace_id"`
	Spans   []Trace         `json:"spans"`
	Ledger  *LedgerSnapshot `json:"ledger,omitempty"`
	// Rendered is the human-readable tree, same as the text endpoint.
	Rendered string `json:"rendered"`
}

// QueryTraceOf assembles the trace tree and ledger for one trace ID;
// ok is false when no span of that trace is retained.
func (r *Registry) QueryTraceOf(traceID string) (QueryTrace, bool) {
	spans := r.TraceByID(traceID)
	if len(spans) == 0 {
		return QueryTrace{}, false
	}
	qt := QueryTrace{TraceID: traceID, Spans: spans}
	if led, ok := r.LedgerByTrace(traceID); ok {
		qt.Ledger = &led
	}
	qt.Rendered = RenderSpanTree(spans, qt.Ledger)
	return qt, true
}

// RenderSpanTree renders spans of one trace as an indented tree with
// durations and attributes, followed by the ledger breakdown when one
// is given. Spans whose parent is not retained (remote parents, ring
// eviction) render as roots marked with their orphaned parent ID.
func RenderSpanTree(spans []Trace, ledger *LedgerSnapshot) string {
	byID := make(map[string]int, len(spans))
	for i, s := range spans {
		byID[s.SpanID] = i
	}
	children := make(map[string][]int)
	var roots []int
	for i, s := range spans {
		if s.ParentID != "" {
			if _, ok := byID[s.ParentID]; ok {
				children[s.ParentID] = append(children[s.ParentID], i)
				continue
			}
		}
		roots = append(roots, i)
	}
	byStart := func(idx []int) {
		sort.Slice(idx, func(a, b int) bool {
			if !spans[idx[a]].Start.Equal(spans[idx[b]].Start) {
				return spans[idx[a]].Start.Before(spans[idx[b]].Start)
			}
			return spans[idx[a]].SpanID < spans[idx[b]].SpanID
		})
	}
	byStart(roots)
	for _, c := range children {
		byStart(c)
	}

	var b strings.Builder
	var walk func(i, depth int)
	walk = func(i, depth int) {
		s := spans[i]
		b.WriteString(strings.Repeat("  ", depth))
		fmt.Fprintf(&b, "%s  %s", s.Name, fmtDur(s.Duration))
		if depth == 0 && s.ParentID != "" {
			fmt.Fprintf(&b, "  (remote parent %s)", s.ParentID)
		}
		if len(s.Attrs) > 0 {
			keys := make([]string, 0, len(s.Attrs))
			for k := range s.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			b.WriteString("  {")
			for i, k := range keys {
				if i > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, "%s=%s", k, s.Attrs[k])
			}
			b.WriteString("}")
		}
		b.WriteByte('\n')
		for _, c := range children[s.SpanID] {
			walk(c, depth+1)
		}
	}
	for _, rt := range roots {
		walk(rt, 0)
	}

	if ledger != nil {
		fmt.Fprintf(&b, "\nledger %s  total=%s  billed=%s (%.0f%% attributed)  tokens billed=%d unbilled=%d\n",
			ledger.Name, fmtDur(ledger.Total), fmtDur(ledger.BilledWall),
			ledger.Attribution()*100, ledger.BilledTokens, ledger.UnbilledTokens)
		for _, t := range ledger.StageTotals() {
			mark := " "
			if !t.Billed {
				mark = "~" // unbilled: off the critical path
			}
			fmt.Fprintf(&b, "  %s %-10s %10s  tokens=%d\n", mark, t.Stage, fmtDur(t.Wall), t.Tokens)
		}
	}
	return b.String()
}

// fmtDur renders durations compactly with microsecond precision below
// a second.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.3fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// QueryTraceHandler serves /debug/querytrace. Without an id parameter
// it lists the retained traces (root spans, newest first); with
// ?id=<trace-id> it renders that trace's span tree and ledger as text,
// or as JSON with &format=json.
func QueryTraceHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		id := req.URL.Query().Get("id")
		if id == "" {
			listQueryTraces(r, w)
			return
		}
		qt, ok := r.QueryTraceOf(id)
		if !ok {
			http.Error(w, "trace not found (evicted or never sampled): "+id, http.StatusNotFound)
			return
		}
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(qt)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "trace %s\n\n%s", qt.TraceID, qt.Rendered)
	})
}

// listQueryTraces writes the index: one line per retained trace, its
// root span name and duration, newest first.
func listQueryTraces(r *Registry, w http.ResponseWriter) {
	spans := r.Traces()
	type root struct {
		id   string
		name string
		dur  time.Duration
		n    int
	}
	byTrace := map[string]*root{}
	var order []string
	for _, s := range spans {
		if s.TraceID == "" {
			continue
		}
		rt := byTrace[s.TraceID]
		if rt == nil {
			rt = &root{id: s.TraceID}
			byTrace[s.TraceID] = rt
			order = append(order, s.TraceID)
		}
		rt.n++
		if s.ParentID == "" || rt.name == "" {
			rt.name, rt.dur = s.Name, s.Duration
		}
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "%d trace(s) retained; /debug/querytrace?id=<trace-id>\n\n", len(order))
	for i := len(order) - 1; i >= 0; i-- {
		rt := byTrace[order[i]]
		fmt.Fprintf(w, "%s  %-24s %s  (%d spans)\n", rt.id, rt.name, fmtDur(rt.dur), rt.n)
	}
}
