package obs

import (
	"encoding/json"
	"net/http"
	"time"
)

// Response headers an instrumented handler may set so the generic
// access-log middleware can report token usage without knowing the
// endpoint's wire format.
const (
	HeaderInputTokens  = "X-Usage-Input-Tokens"
	HeaderOutputTokens = "X-Usage-Output-Tokens"
	// HeaderTraceID carries the request's trace ID back to the client
	// (and into the access log), so a 429/500 can be correlated with
	// its /debug/querytrace entry.
	HeaderTraceID = "X-Trace-Id"
)

// Handler returns the /metrics endpoint: the registry in Prometheus
// text exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// TraceHandler returns a debug endpoint serving the trace ring as a
// JSON array, oldest span first.
func TraceHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		traces := r.Traces()
		if traces == nil {
			traces = []Trace{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(traces)
	})
}

// statusRecorder captures the status code and body size a handler
// writes, for access logging.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (s *statusRecorder) WriteHeader(code int) {
	if s.status == 0 {
		s.status = code
	}
	s.ResponseWriter.WriteHeader(code)
}

func (s *statusRecorder) Write(p []byte) (int, error) {
	if s.status == 0 {
		s.status = http.StatusOK
	}
	n, err := s.ResponseWriter.Write(p)
	s.bytes += n
	return n, err
}

// Flush forwards http.Flusher so streaming handlers keep working
// behind the access log. The method is always present (the interface
// assertion on statusRecorder succeeds); it no-ops when the underlying
// writer cannot flush.
func (s *statusRecorder) Flush() {
	if f, ok := s.ResponseWriter.(http.Flusher); ok {
		if s.status == 0 {
			s.status = http.StatusOK
		}
		f.Flush()
	}
}

// AccessLog wraps next so every request emits one structured JSON line
// on l: method, path, status, latency, response bytes, and token usage
// when the handler reported it via the HeaderInputTokens /
// HeaderOutputTokens response headers. A nil logger disables logging
// without unwrapping the handler.
func AccessLog(l *Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(rec, req)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		fields := map[string]any{
			"method":     req.Method,
			"path":       req.URL.Path,
			"status":     rec.status,
			"latency_ms": float64(time.Since(start).Microseconds()) / 1000,
			"bytes":      rec.bytes,
		}
		if v := rec.Header().Get(HeaderInputTokens); v != "" {
			fields["input_tokens"] = v
		}
		if v := rec.Header().Get(HeaderOutputTokens); v != "" {
			fields["output_tokens"] = v
		}
		if v := rec.Header().Get(HeaderTraceID); v != "" {
			fields["trace_id"] = v
		}
		l.Log("http_request", fields)
	})
}
