package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// kind discriminates metric families.
type kind int

const (
	counterKind kind = iota
	gaugeKind
	histogramKind
)

func (k kind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	case histogramKind:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// DefaultBuckets are the histogram upper bounds used when a histogram
// is created implicitly by Observe. They span sub-millisecond simulator
// predictions up to multi-second remote API calls (values in seconds).
var DefaultBuckets = []float64{
	0.000025, 0.0001, 0.00025, 0.001, 0.0025, 0.01,
	0.025, 0.1, 0.25, 1, 2.5, 10,
}

// family is one named metric with its series (one per label set).
type family struct {
	name    string
	help    string
	kind    kind
	buckets []float64 // histogram upper bounds, ascending; +Inf implicit

	mu     sync.Mutex
	series map[string]*series
}

// series is one (family, label set) time series.
type series struct {
	labels string // pre-rendered {k="v",...} or ""

	mu     sync.Mutex
	value  float64  // counter / gauge
	counts []uint64 // histogram: per-bucket counts, last is +Inf
	sum    float64
	count  uint64
}

// Registry is a concurrency-safe metrics registry plus a trace ring.
// The zero value is not usable; construct with NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family

	traces *traceRing

	// sampleRate holds the float64 bits of the root-span sampling rate
	// (1.0 on new registries); sampleSeq is the position in the
	// low-discrepancy sampling sequence.
	sampleRate atomic.Uint64
	sampleSeq  atomic.Uint64

	// ledgers retains recently closed query ledgers for
	// /debug/querytrace and carries the slow-query log wiring; slo is
	// the latency-objective engine they feed.
	ledgers ledgerStore
	slo     sloState

	// misuse counts dropped events: invalid names, odd label lists,
	// kind mismatches, negative counter deltas. Surfaced in both
	// exposition formats as obs_misuse_total so broken instrumentation
	// is visible instead of silent.
	misuse atomic.Uint64
}

// NewRegistry builds an empty registry with a trace ring of
// DefaultTraceCapacity spans.
func NewRegistry() *Registry {
	r := &Registry{
		families: make(map[string]*family),
		traces:   newTraceRing(DefaultTraceCapacity),
	}
	r.sampleRate.Store(math.Float64bits(1))
	r.ledgers.capacity = DefaultLedgerCapacity
	return r
}

// validName reports whether name matches the Prometheus metric/label
// name grammar [a-zA-Z_:][a-zA-Z0-9_:]* (labels additionally must not
// contain ':' but we accept the superset; exposition stays parseable).
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}

// renderLabels turns alternating key/value pairs into the canonical
// `{k1="v1",k2="v2"}` form, sorted by key, with label values escaped.
// ok is false on odd pair counts or invalid keys.
func renderLabels(labels []string) (string, bool) {
	if len(labels) == 0 {
		return "", true
	}
	if len(labels)%2 != 0 {
		return "", false
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		if !validName(labels[i]) || strings.Contains(labels[i], ":") {
			return "", false
		}
		pairs = append(pairs, pair{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String(), true
}

// escapeLabelValue applies the Prometheus text-format escapes for
// label values: backslash, double quote, newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp applies the HELP-line escapes: backslash and newline.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// getFamily returns the family for name, creating it with kind k when
// absent. It returns nil (and counts misuse) on name/kind conflicts.
func (r *Registry) getFamily(name string, k kind, buckets []float64) *family {
	if !validName(name) {
		r.misuse.Add(1)
		return nil
	}
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		f = r.families[name]
		if f == nil {
			f = &family{name: name, kind: k, series: make(map[string]*series)}
			if k == histogramKind {
				if len(buckets) == 0 {
					buckets = DefaultBuckets
				}
				f.buckets = normalizeBuckets(buckets)
			}
			r.families[name] = f
		}
		r.mu.Unlock()
	}
	if f.kind != k {
		r.misuse.Add(1)
		return nil
	}
	return f
}

// normalizeBuckets sorts, deduplicates and strips non-finite bounds
// (+Inf is always implicit).
func normalizeBuckets(in []float64) []float64 {
	out := make([]float64, 0, len(in))
	for _, b := range in {
		if !math.IsNaN(b) && !math.IsInf(b, 1) {
			out = append(out, b)
		}
	}
	sort.Float64s(out)
	dedup := out[:0]
	for i, b := range out {
		if i == 0 || b != out[i-1] {
			dedup = append(dedup, b)
		}
	}
	return dedup
}

// seriesFor returns the series of f identified by labels, creating it
// on first use. nil (plus misuse) on malformed labels.
func (r *Registry) seriesFor(f *family, labels []string) *series {
	key, ok := renderLabels(labels)
	if !ok {
		r.misuse.Add(1)
		return nil
	}
	f.mu.Lock()
	s := f.series[key]
	if s == nil {
		s = &series{labels: key}
		if f.kind == histogramKind {
			s.counts = make([]uint64, len(f.buckets)+1)
		}
		f.series[key] = s
	}
	f.mu.Unlock()
	return s
}

// DeclareCounter registers a counter family with help text ahead of
// use, so the exposition carries a HELP line.
func (r *Registry) DeclareCounter(name, help string) {
	if f := r.getFamily(name, counterKind, nil); f != nil {
		f.help = help
	}
}

// DeclareGauge registers a gauge family with help text.
func (r *Registry) DeclareGauge(name, help string) {
	if f := r.getFamily(name, gaugeKind, nil); f != nil {
		f.help = help
	}
}

// DeclareHistogram registers a histogram family with explicit upper
// bounds (+Inf implicit). Histograms created implicitly by Observe use
// DefaultBuckets; bounds are fixed at creation.
func (r *Registry) DeclareHistogram(name, help string, buckets []float64) {
	if f := r.getFamily(name, histogramKind, buckets); f != nil {
		f.help = help
	}
}

// Add implements Recorder: increment a counter.
func (r *Registry) Add(name string, delta float64, labels ...string) {
	if delta < 0 {
		r.misuse.Add(1)
		return
	}
	f := r.getFamily(name, counterKind, nil)
	if f == nil {
		return
	}
	if s := r.seriesFor(f, labels); s != nil {
		s.mu.Lock()
		s.value += delta
		s.mu.Unlock()
	}
}

// Set implements Recorder: set a gauge.
func (r *Registry) Set(name string, value float64, labels ...string) {
	f := r.getFamily(name, gaugeKind, nil)
	if f == nil {
		return
	}
	if s := r.seriesFor(f, labels); s != nil {
		s.mu.Lock()
		s.value = value
		s.mu.Unlock()
	}
}

// Observe implements Recorder: record a histogram sample.
func (r *Registry) Observe(name string, value float64, labels ...string) {
	f := r.getFamily(name, histogramKind, nil)
	if f == nil {
		return
	}
	s := r.seriesFor(f, labels)
	if s == nil {
		return
	}
	// Bucket i holds samples with value <= buckets[i]; the final slot
	// is +Inf. Exposition renders them cumulatively.
	idx := sort.SearchFloat64s(f.buckets, value)
	s.mu.Lock()
	s.counts[idx]++
	s.sum += value
	s.count++
	s.mu.Unlock()
}

// sortedFamilies snapshots the family list in name order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// sortedSeries snapshots a family's series in label order.
func (f *family) sortedSeries() []*series {
	f.mu.Lock()
	out := make([]*series, 0, len(f.series))
	for _, s := range f.series {
		out = append(out, s)
	}
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].labels < out[j].labels })
	return out
}

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes every family in the Prometheus text
// exposition format (version 0.0.4), deterministically ordered.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.sortedSeries() {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	if n := r.misuse.Load(); n > 0 {
		if _, err := fmt.Fprintf(w, "# TYPE obs_misuse_total counter\nobs_misuse_total %d\n", n); err != nil {
			return err
		}
	}
	return nil
}

// writeSeries renders one series; histograms expand to cumulative
// _bucket lines plus _sum and _count.
func writeSeries(w io.Writer, f *family, s *series) error {
	s.mu.Lock()
	value := s.value
	sum, count := s.sum, s.count
	counts := append([]uint64(nil), s.counts...)
	s.mu.Unlock()

	if f.kind != histogramKind {
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatValue(value))
		return err
	}
	var cum uint64
	for i, b := range f.buckets {
		cum += counts[i]
		if err := writeBucket(w, f.name, s.labels, strconv.FormatFloat(b, 'g', -1, 64), cum); err != nil {
			return err
		}
	}
	cum += counts[len(f.buckets)]
	if err := writeBucket(w, f.name, s.labels, "+Inf", cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, s.labels, formatValue(sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, s.labels, count)
	return err
}

// writeBucket renders one cumulative histogram bucket line, splicing
// the le label into any existing label set.
func writeBucket(w io.Writer, name, labels, le string, cum uint64) error {
	if labels == "" {
		_, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum)
		return err
	}
	spliced := strings.TrimSuffix(labels, "}") + `,le="` + le + `"}`
	_, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, spliced, cum)
	return err
}

// BucketCount is one cumulative histogram bucket in a snapshot.
type BucketCount struct {
	UpperBound float64 `json:"le"`
	Count      uint64  `json:"count"`
}

// MetricSnapshot is one series at a point in time, in a form that
// serializes cleanly to JSON for -metrics-dump style tooling.
type MetricSnapshot struct {
	Name   string            `json:"name"`
	Kind   string            `json:"kind"`
	Labels map[string]string `json:"labels,omitempty"`
	// Value is the counter or gauge value (histograms use Sum/Count).
	Value float64 `json:"value,omitempty"`
	// Sum, Count and Buckets are set for histograms only; Buckets are
	// cumulative, +Inf omitted (it equals Count).
	Sum     float64       `json:"sum,omitempty"`
	Count   uint64        `json:"count,omitempty"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Snapshot returns every series, deterministically ordered by name
// then labels.
func (r *Registry) Snapshot() []MetricSnapshot {
	var out []MetricSnapshot
	for _, f := range r.sortedFamilies() {
		for _, s := range f.sortedSeries() {
			m := MetricSnapshot{Name: f.name, Kind: f.kind.String(), Labels: parseLabelKey(s.labels)}
			s.mu.Lock()
			if f.kind == histogramKind {
				m.Sum, m.Count = s.sum, s.count
				var cum uint64
				for i, b := range f.buckets {
					cum += s.counts[i]
					m.Buckets = append(m.Buckets, BucketCount{UpperBound: b, Count: cum})
				}
			} else {
				m.Value = s.value
			}
			s.mu.Unlock()
			out = append(out, m)
		}
	}
	if n := r.misuse.Load(); n > 0 {
		out = append(out, MetricSnapshot{Name: "obs_misuse_total", Kind: "counter", Value: float64(n)})
	}
	return out
}

// CounterValue returns the current value of one counter series (0 when
// absent) — a convenience for tests and exit summaries.
func (r *Registry) CounterValue(name string, labels ...string) float64 {
	return r.scalarValue(name, counterKind, labels)
}

// GaugeValue returns the current value of one gauge series.
func (r *Registry) GaugeValue(name string, labels ...string) float64 {
	return r.scalarValue(name, gaugeKind, labels)
}

func (r *Registry) scalarValue(name string, k kind, labels []string) float64 {
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil || f.kind != k {
		return 0
	}
	key, ok := renderLabels(labels)
	if !ok {
		return 0
	}
	f.mu.Lock()
	s := f.series[key]
	f.mu.Unlock()
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.value
}

// HistogramCount returns the sample count of one histogram series.
func (r *Registry) HistogramCount(name string, labels ...string) uint64 {
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil || f.kind != histogramKind {
		return 0
	}
	key, ok := renderLabels(labels)
	if !ok {
		return 0
	}
	f.mu.Lock()
	s := f.series[key]
	f.mu.Unlock()
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// parseLabelKey inverts renderLabels for snapshots. The rendered form
// is canonical, so a simple scan suffices.
func parseLabelKey(key string) map[string]string {
	if key == "" {
		return nil
	}
	out := map[string]string{}
	body := strings.TrimSuffix(strings.TrimPrefix(key, "{"), "}")
	for len(body) > 0 {
		eq := strings.Index(body, `="`)
		if eq < 0 {
			break
		}
		k := body[:eq]
		rest := body[eq+2:]
		var b strings.Builder
		i := 0
		for i < len(rest) {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				switch rest[i+1] {
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteByte(rest[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				break
			}
			b.WriteByte(c)
			i++
		}
		out[k] = b.String()
		body = rest[i:]
		body = strings.TrimPrefix(body, `"`)
		body = strings.TrimPrefix(body, ",")
	}
	return out
}
