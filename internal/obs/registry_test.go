package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterAddAndValue(t *testing.T) {
	r := NewRegistry()
	r.Add("requests_total", 1)
	r.Add("requests_total", 2.5)
	if got := r.CounterValue("requests_total"); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	r.Add("requests_total", 1, "code", "200")
	r.Add("requests_total", 1, "code", "500")
	if got := r.CounterValue("requests_total", "code", "200"); got != 1 {
		t.Fatalf("labeled counter = %v, want 1", got)
	}
	// Negative deltas are misuse and must not move the counter.
	r.Add("requests_total", -5)
	if got := r.CounterValue("requests_total"); got != 3.5 {
		t.Fatalf("counter after negative delta = %v, want 3.5", got)
	}
}

func TestGaugeSet(t *testing.T) {
	r := NewRegistry()
	r.Set("inflight", 7)
	r.Set("inflight", 3)
	if got := r.GaugeValue("inflight"); got != 3 {
		t.Fatalf("gauge = %v, want 3", got)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	r.DeclareHistogram("latency", "test", []float64{1, 2, 5})

	// A sample exactly on an upper bound belongs to that bucket
	// (le is inclusive), one just above spills into the next.
	for _, v := range []float64{0.5, 1, 1.0000001, 2, 5, 100} {
		r.Observe("latency", v)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`latency_bucket{le="1"} 2`,    // 0.5, 1
		`latency_bucket{le="2"} 4`,    // + 1.0000001, 2
		`latency_bucket{le="5"} 5`,    // + 5
		`latency_bucket{le="+Inf"} 6`, // + 100
		`latency_count 6`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if r.HistogramCount("latency") != 6 {
		t.Fatalf("HistogramCount = %d, want 6", r.HistogramCount("latency"))
	}
}

func TestHistogramDefaultBuckets(t *testing.T) {
	r := NewRegistry()
	r.Observe("auto_seconds", 0.0005)
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Kind != "histogram" {
		t.Fatalf("snapshot = %+v, want one histogram", snap)
	}
	if len(snap[0].Buckets) != len(DefaultBuckets) {
		t.Fatalf("got %d buckets, want %d", len(snap[0].Buckets), len(DefaultBuckets))
	}
}

func TestPrometheusEscaping(t *testing.T) {
	r := NewRegistry()
	r.DeclareCounter("weird_total", "line one\nline two \\ backslash")
	r.Add("weird_total", 1, "msg", "say \"hi\"\nwith \\ escapes")

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `# HELP weird_total line one\nline two \\ backslash`) {
		t.Errorf("help not escaped:\n%s", out)
	}
	if !strings.Contains(out, `weird_total{msg="say \"hi\"\nwith \\ escapes"} 1`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
	// Every non-comment line must be single-line name value.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if len(strings.Fields(line)) < 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

func TestPrometheusTypeLinesAndOrder(t *testing.T) {
	r := NewRegistry()
	r.Add("b_total", 1)
	r.Set("a_gauge", 2)
	r.Observe("c_seconds", 0.1)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	ia := strings.Index(out, "# TYPE a_gauge gauge")
	ib := strings.Index(out, "# TYPE b_total counter")
	ic := strings.Index(out, "# TYPE c_seconds histogram")
	if ia < 0 || ib < 0 || ic < 0 || !(ia < ib && ib < ic) {
		t.Fatalf("families missing or unsorted (a=%d b=%d c=%d):\n%s", ia, ib, ic, out)
	}
}

func TestKindMismatchCountsMisuse(t *testing.T) {
	r := NewRegistry()
	r.Add("x_total", 1)
	r.Set("x_total", 5)     // gauge op on a counter: dropped
	r.Observe("x_total", 1) // histogram op on a counter: dropped
	if got := r.CounterValue("x_total"); got != 1 {
		t.Fatalf("counter corrupted by mismatched ops: %v", got)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "obs_misuse_total 2") {
		t.Fatalf("misuse not surfaced:\n%s", b.String())
	}
}

func TestInvalidNamesAndLabelsDropped(t *testing.T) {
	r := NewRegistry()
	r.Add("bad name", 1)                 // space in name
	r.Add("ok_total", 1, "odd")          // odd label list
	r.Add("ok_total", 1, "bad key", "v") // invalid label key
	if got := r.CounterValue("ok_total"); got != 0 {
		t.Fatalf("malformed calls created series: %v", got)
	}
	if got := r.misuse.Load(); got != 3 {
		t.Fatalf("misuse = %d, want 3", got)
	}
}

// TestConcurrentRegistry exercises creation, updates, and exposition
// from many goroutines; run with -race.
func TestConcurrentRegistry(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 16, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Add("ops_total", 1, "worker", "shared")
				r.Set("inflight", float64(i))
				r.Observe("latency_seconds", float64(i)/1000)
				if i%100 == 0 {
					var b strings.Builder
					_ = r.WritePrometheus(&b)
					_ = r.Snapshot()
				}
				sp := r.StartSpan("work")
				sp.SetAttr("i", "x")
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	if got := r.CounterValue("ops_total", "worker", "shared"); got != workers*perWorker {
		t.Fatalf("counter = %v, want %d", got, workers*perWorker)
	}
	if got := r.HistogramCount("latency_seconds"); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestSnapshotLabelsRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Add("t_total", 2, "b", "2", "a", "1")
	snap := r.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot len = %d", len(snap))
	}
	m := snap[0]
	if m.Labels["a"] != "1" || m.Labels["b"] != "2" || m.Value != 2 {
		t.Fatalf("snapshot = %+v", m)
	}
}

func TestDefaultRecorderRouting(t *testing.T) {
	if Enabled(nil) {
		t.Fatal("Enabled(nil) with no default registry")
	}
	r := NewRegistry()
	SetDefault(r)
	defer SetDefault(nil)
	if !Enabled(nil) {
		t.Fatal("default registry not active")
	}
	Active(nil).Add("via_default_total", 1)
	if got := r.CounterValue("via_default_total"); got != 1 {
		t.Fatalf("default routing lost the event: %v", got)
	}
	// Explicit recorder wins over the default.
	r2 := NewRegistry()
	Active(r2).Add("explicit_total", 1)
	if r.CounterValue("explicit_total") != 0 || r2.CounterValue("explicit_total") != 1 {
		t.Fatal("explicit recorder did not win over default")
	}
}
