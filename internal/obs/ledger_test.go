package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestLedgerChargeAndClose(t *testing.T) {
	r := NewRegistry()
	l := NewLedger(r, "feedface", "q1")
	if l == nil {
		t.Fatal("NewLedger returned nil for a live registry")
	}
	l.Charge(StageQueue, 10*time.Millisecond, 0, true)
	l.Charge(StagePredict, 80*time.Millisecond, 120, true)
	l.Charge(StageRetry, 5*time.Millisecond, 0, true)
	l.Charge(StageHedgeLoss, 70*time.Millisecond, 90, false)

	snap := l.Close(100 * time.Millisecond)
	if snap.TraceID != "feedface" || snap.Name != "q1" {
		t.Fatalf("snapshot identity = %q/%q", snap.TraceID, snap.Name)
	}
	if snap.BilledWall != 95*time.Millisecond {
		t.Fatalf("billed wall = %v, want 95ms", snap.BilledWall)
	}
	if snap.BilledTokens != 120 || snap.UnbilledTokens != 90 {
		t.Fatalf("tokens billed=%d unbilled=%d, want 120/90", snap.BilledTokens, snap.UnbilledTokens)
	}
	if got := snap.Attribution(); got < 0.94 || got > 0.96 {
		t.Fatalf("attribution = %v, want 0.95", got)
	}

	if got := r.CounterValue(metricTraceQueries); got != 1 {
		t.Fatalf("%s = %v, want 1", metricTraceQueries, got)
	}
	if got := r.CounterValue(metricTraceStageTokens, "stage", StagePredict, "billed", "true"); got != 120 {
		t.Fatalf("billed predict tokens = %v, want 120", got)
	}
	if got := r.CounterValue(metricTraceStageTokens, "stage", StageHedgeLoss, "billed", "false"); got != 90 {
		t.Fatalf("unbilled hedge_loss tokens = %v, want 90", got)
	}
	if got := r.HistogramCount(metricTraceQuerySeconds); got != 1 {
		t.Fatalf("%s count = %d, want 1", metricTraceQuerySeconds, got)
	}
	if got := r.HistogramCount(metricTraceStageSeconds, "stage", StagePredict, "billed", "true"); got != 1 {
		t.Fatalf("stage seconds count = %d, want 1", got)
	}

	// Retained and retrievable by trace.
	led, ok := r.LedgerByTrace("feedface")
	if !ok || led.BilledTokens != 120 {
		t.Fatalf("LedgerByTrace = %+v, %v", led, ok)
	}
}

func TestLedgerDoubleCloseAndLateCharge(t *testing.T) {
	r := NewRegistry()
	l := NewLedger(r, "aa", "q")
	l.Charge(StagePredict, time.Millisecond, 10, true)
	first := l.Close(time.Millisecond)
	l.Charge(StageHedgeLoss, time.Millisecond, 99, false) // hedge loser finishing late
	second := l.Close(time.Millisecond)
	if second.TraceID != "" {
		t.Fatalf("second close published: %+v", second)
	}
	if first.BilledTokens != 10 {
		t.Fatalf("first close billed %d", first.BilledTokens)
	}
	if got := r.CounterValue(metricTraceQueries); got != 1 {
		t.Fatalf("queries counter = %v after double close", got)
	}
	if got := r.CounterValue(metricTraceStageTokens, "stage", StageHedgeLoss, "billed", "false"); got != 0 {
		t.Fatalf("late charge leaked into metrics: %v", got)
	}
}

func TestNilLedgerIsSafe(t *testing.T) {
	var l *Ledger
	l.Charge(StagePredict, time.Second, 1, true)
	if snap := l.Close(time.Second); snap.TraceID != "" {
		t.Fatal("nil ledger published a snapshot")
	}
	if NewLedger(Nop, "id", "q") != nil {
		t.Fatal("NewLedger on Nop recorder should be nil")
	}
}

func TestLedgerConcurrentCharges(t *testing.T) {
	r := NewRegistry()
	l := NewLedger(r, "cc", "q")
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.Charge(StageRetry, time.Microsecond, 1, true)
		}()
	}
	wg.Wait()
	snap := l.Close(time.Millisecond)
	if snap.BilledTokens != 32 {
		t.Fatalf("billed tokens = %d, want 32", snap.BilledTokens)
	}
	totals := snap.StageTotals()
	if len(totals) != 1 || totals[0].Stage != StageRetry || totals[0].Wall != 32*time.Microsecond {
		t.Fatalf("stage totals = %+v", totals)
	}
}

func TestLedgerRingEvictsOldest(t *testing.T) {
	r := NewRegistry()
	r.SetLedgerCapacity(2)
	for _, id := range []string{"a", "b", "c"} {
		NewLedger(r, id, "q").Close(time.Millisecond)
	}
	if _, ok := r.LedgerByTrace("a"); ok {
		t.Fatal("oldest ledger not evicted")
	}
	got := r.Ledgers()
	if len(got) != 2 || got[0].TraceID != "b" || got[1].TraceID != "c" {
		t.Fatalf("ledgers = %+v", got)
	}
}

func TestSlowQueryLog(t *testing.T) {
	r := NewRegistry()
	var buf bytes.Buffer
	r.SetSlowQueryLog(10*time.Millisecond, NewLogger(&buf))

	fast := NewLedger(r, "fast", "q")
	fast.Close(time.Millisecond)
	if buf.Len() != 0 {
		t.Fatalf("fast query logged: %s", buf.String())
	}

	slow := NewLedger(r, "slowtrace", "q")
	slow.Charge(StagePredict, 15*time.Millisecond, 7, true)
	slow.Close(15 * time.Millisecond)
	line := buf.String()
	if line == "" {
		t.Fatal("slow query not logged")
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(strings.TrimSpace(line)), &rec); err != nil {
		t.Fatalf("slow-query line is not JSON: %v\n%s", err, line)
	}
	if rec["event"] != "slow_query" || rec["trace_id"] != "slowtrace" {
		t.Fatalf("unexpected slow-query record: %v", rec)
	}
	if rec["billed_tokens"].(float64) != 7 {
		t.Fatalf("billed_tokens = %v", rec["billed_tokens"])
	}
}

func TestQueryTraceHandlerRendersTreeAndLedger(t *testing.T) {
	r := NewRegistry()
	root := r.StartSpan("core.query", "vertex", "17")
	ctx := ContextWithSpan(nil, root)
	ctx2, child := StartSpanCtx(ctx, r, "batch.request")
	_, grand := StartSpanCtx(ctx2, r, "pool.attempt", "replica", "r1")
	grand.End()
	child.End()
	root.End()

	l := NewLedger(r, root.TraceID(), "q17")
	l.Charge(StagePredict, time.Millisecond, 42, true)
	l.Close(2 * time.Millisecond)

	h := QueryTraceHandler(r)
	// Index.
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/debug/querytrace", nil))
	if !strings.Contains(rw.Body.String(), root.TraceID()) {
		t.Fatalf("index missing trace id:\n%s", rw.Body.String())
	}
	// Tree.
	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/debug/querytrace?id="+root.TraceID(), nil))
	body := rw.Body.String()
	for _, want := range []string{"core.query", "  batch.request", "    pool.attempt", "ledger q17", "tokens billed=42"} {
		if !strings.Contains(body, want) {
			t.Fatalf("rendered tree missing %q:\n%s", want, body)
		}
	}
	// JSON form.
	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/debug/querytrace?id="+root.TraceID()+"&format=json", nil))
	var qt QueryTrace
	if err := json.Unmarshal(rw.Body.Bytes(), &qt); err != nil {
		t.Fatalf("json form: %v", err)
	}
	if len(qt.Spans) != 3 || qt.Ledger == nil || qt.Ledger.BilledTokens != 42 {
		t.Fatalf("json trace = %+v", qt)
	}
	// Miss.
	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/debug/querytrace?id=deadbeef", nil))
	if rw.Code != 404 {
		t.Fatalf("missing trace returned %d", rw.Code)
	}
}
