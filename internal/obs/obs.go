// Package obs is the observability layer of the pipeline: a
// concurrency-safe metrics registry (counters, gauges, fixed-bucket
// histograms) exposable in Prometheus text format, lightweight span
// tracing with a ring-buffer sink for the last N query traces, and a
// structured JSON line logger. It is stdlib-only and dependency-free so
// every package — core execution, batch, llm, the mqo facade and the
// commands — can record into it without pulling anything in.
//
// Instrumented code talks to the Recorder interface, never to a
// concrete registry. The default recorder is Nop, so an uninstrumented
// process pays only a nil check and an interface call per event;
// wiring a *Registry (explicitly or via SetDefault) turns the same
// call sites into live metrics. This inversion is what lets the hot
// paths stay instrumented permanently: observability is a deployment
// decision, not a compile-time one.
package obs

import "sync/atomic"

// Recorder receives metric events from instrumented code. Both
// *Registry and the package-level Nop implement it; implementations
// must be safe for concurrent use.
type Recorder interface {
	// Add increments the counter `name` by delta (counters only go up;
	// negative deltas are dropped as misuse). labels are alternating
	// key/value pairs identifying the series.
	Add(name string, delta float64, labels ...string)
	// Set sets the gauge `name` to value.
	Set(name string, value float64, labels ...string)
	// Observe records value into the histogram `name`.
	Observe(name string, value float64, labels ...string)
	// StartSpan opens a trace span; labels become span attributes. The
	// returned span may be nil (the no-op recorder); all *Span methods
	// are nil-safe so call sites need no guard.
	StartSpan(name string, labels ...string) *Span
}

// nop is the do-nothing recorder.
type nop struct{}

func (nop) Add(string, float64, ...string)     {}
func (nop) Set(string, float64, ...string)     {}
func (nop) Observe(string, float64, ...string) {}
func (nop) StartSpan(string, ...string) *Span  { return nil }

// Nop is the recorder that discards everything. It is the process
// default until SetDefault installs a registry.
var Nop Recorder = nop{}

// defaultRec holds the process-wide recorder behind an atomic box so
// SetDefault is safe under concurrent instrumentation.
var defaultRec atomic.Value

type recBox struct{ r Recorder }

func init() { defaultRec.Store(&recBox{Nop}) }

// SetDefault installs r as the process-wide recorder used by
// instrumented code that was not wired explicitly. nil restores Nop.
func SetDefault(r Recorder) {
	if r == nil {
		r = Nop
	}
	defaultRec.Store(&recBox{r})
}

// Default returns the process-wide recorder (Nop unless SetDefault ran).
func Default() Recorder { return defaultRec.Load().(*recBox).r }

// Active resolves the recorder an instrumented call site should use:
// r itself when wired explicitly, the process default otherwise.
func Active(r Recorder) Recorder {
	if r != nil {
		return r
	}
	return Default()
}

// Enabled reports whether Active(r) actually records, so hot paths can
// skip work that only feeds metrics (clock reads, label formatting).
func Enabled(r Recorder) bool {
	_, isNop := Active(r).(nop)
	return !isNop
}

// StartSpan opens a span on the process-default recorder.
func StartSpan(name string, labels ...string) *Span {
	return Default().StartSpan(name, labels...)
}
