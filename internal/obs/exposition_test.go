package obs

import (
	"bufio"
	"bytes"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// Satellite coverage: Prometheus text exposition edge cases.

func TestExpositionEscapesLabelValues(t *testing.T) {
	r := NewRegistry()
	r.Add("edge_total", 1, "path", `C:\dir`+"\n"+`"quoted"`)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	want := `edge_total{path="C:\\dir\n\"quoted\""} 1`
	if !strings.Contains(out, want) {
		t.Fatalf("exposition missing escaped series:\nwant %s\ngot:\n%s", want, out)
	}
	// Raw control characters must not leak into the output: every
	// physical line is one sample or one comment.
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasSuffix(line, " 1") {
			t.Fatalf("sample line broken by unescaped newline: %q", line)
		}
	}
}

func TestExpositionEscapesHelp(t *testing.T) {
	r := NewRegistry()
	r.DeclareCounter("helpful_total", "line one\nline \\two")
	r.Add("helpful_total", 1)
	var buf bytes.Buffer
	_ = r.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), `# HELP helpful_total line one\nline \\two`) {
		t.Fatalf("HELP not escaped:\n%s", buf.String())
	}
}

func TestSnapshotRoundTripsEscapedLabels(t *testing.T) {
	r := NewRegistry()
	val := "a\"b\\c\nd"
	r.Add("rt_total", 3, "k", val)
	snaps := r.Snapshot()
	if len(snaps) != 1 || snaps[0].Labels["k"] != val {
		t.Fatalf("snapshot labels = %+v, want k=%q", snaps, val)
	}
}

func TestHistogramInfBucketMatchesCount(t *testing.T) {
	r := NewRegistry()
	r.DeclareHistogram("h_seconds", "", []float64{0.1, 1})
	// One sample per region: under first bucket, between, over all.
	r.Observe("h_seconds", 0.05)
	r.Observe("h_seconds", 0.5)
	r.Observe("h_seconds", 99) // lands only in +Inf
	var buf bytes.Buffer
	_ = r.WritePrometheus(&buf)

	var infCum, count uint64
	var sum float64
	var buckets []uint64
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		line := sc.Text()
		fields := strings.Fields(line)
		switch {
		case strings.HasPrefix(line, `h_seconds_bucket{le="+Inf"}`):
			infCum, _ = strconv.ParseUint(fields[1], 10, 64)
		case strings.HasPrefix(line, "h_seconds_bucket"):
			v, _ := strconv.ParseUint(fields[1], 10, 64)
			buckets = append(buckets, v)
		case strings.HasPrefix(line, "h_seconds_sum"):
			sum, _ = strconv.ParseFloat(fields[1], 64)
		case strings.HasPrefix(line, "h_seconds_count"):
			count, _ = strconv.ParseUint(fields[1], 10, 64)
		}
	}
	if count != 3 || infCum != count {
		t.Fatalf("+Inf bucket %d vs count %d (want both 3)", infCum, count)
	}
	if len(buckets) != 2 || buckets[0] != 1 || buckets[1] != 2 {
		t.Fatalf("cumulative buckets = %v, want [1 2]", buckets)
	}
	if sum < 99.54 || sum > 99.56 {
		t.Fatalf("sum = %v, want 99.55", sum)
	}
}

func TestHistogramInfOnlySample(t *testing.T) {
	r := NewRegistry()
	r.DeclareHistogram("inf_seconds", "", []float64{0.001})
	r.Observe("inf_seconds", 1e9)
	var buf bytes.Buffer
	_ = r.WritePrometheus(&buf)
	out := buf.String()
	if !strings.Contains(out, `inf_seconds_bucket{le="0.001"} 0`) {
		t.Fatalf("finite bucket should be 0:\n%s", out)
	}
	if !strings.Contains(out, `inf_seconds_bucket{le="+Inf"} 1`) {
		t.Fatalf("+Inf bucket should be 1:\n%s", out)
	}
	if !strings.Contains(out, "inf_seconds_count 1") {
		t.Fatalf("count should be 1:\n%s", out)
	}
}

func TestHistogramBucketLabelSplicing(t *testing.T) {
	r := NewRegistry()
	r.Observe("lab_seconds", 0.5, "stage", "predict")
	var buf bytes.Buffer
	_ = r.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), `lab_seconds_bucket{stage="predict",le="+Inf"} 1`) {
		t.Fatalf("le not spliced into labeled histogram:\n%s", buf.String())
	}
}

// Satellite: statusRecorder must forward http.Flusher.

type flushCountingWriter struct {
	http.ResponseWriter
	flushes int
}

func (f *flushCountingWriter) Flush() { f.flushes++ }

func TestAccessLogForwardsFlusher(t *testing.T) {
	inner := &flushCountingWriter{ResponseWriter: httptest.NewRecorder()}
	var flushed bool
	h := AccessLog(nil, http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		f, ok := w.(http.Flusher)
		if !ok {
			t.Fatal("access-logged writer lost http.Flusher")
		}
		f.Flush()
		flushed = true
	}))
	h.ServeHTTP(inner, httptest.NewRequest("GET", "/", nil))
	if !flushed || inner.flushes != 1 {
		t.Fatalf("flush not forwarded to underlying writer (flushes=%d)", inner.flushes)
	}
}

func TestAccessLogIncludesTraceID(t *testing.T) {
	var buf bytes.Buffer
	h := AccessLog(NewLogger(&buf), http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set(HeaderTraceID, "abc123")
		w.WriteHeader(200)
	}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/v1/chat/completions", nil))
	if !strings.Contains(buf.String(), `"trace_id":"abc123"`) {
		t.Fatalf("access log missing trace_id: %s", buf.String())
	}
}
