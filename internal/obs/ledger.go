package obs

import (
	"sort"
	"sync"
	"time"
)

// DefaultLedgerCapacity is the number of closed query ledgers a new
// registry retains for /debug/querytrace.
const DefaultLedgerCapacity = 256

// Canonical ledger stage names. Stages are open-ended strings — a new
// layer can charge a stage no one declared — but the built-in
// instrumentation sticks to this vocabulary so dashboards and the
// traceguard can rely on it.
const (
	StageQueue     = "queue"           // executor queue wait (submit → worker pickup)
	StageCache     = "cache"           // memory/coalesced/disk cache resolution
	StagePredict   = "predict"         // winning predictor call
	StageRetry     = "retry"           // failed attempts that were retried
	StageBackoff   = "backoff"         // sleep between attempts
	StageBreaker   = "breaker"         // time lost to circuit-breaker rejections
	StageThrottle  = "throttle"        // QPS ticker wait
	StageExec      = "exec"            // executor overhead not in any stage above
	StageHedgeLoss = "hedge_loss"      // losing hedge attempts (never billed)
	StageCompress  = "prompt.compress" // prompt compression during planning (never billed)
)

// LedgerEntry is one charge against a query's ledger: wall-clock and
// tokens attributed to a stage. Billed marks the winning/serial path —
// the charges that tile the query's span and sum to its metered token
// spend. Retries and hedge losers are recorded with Billed=false: real
// work, visible in the ledger, but outside the query's critical path
// (retry wall-clock *is* serial, so retries bill wall but zero
// tokens; hedge losers bill neither).
type LedgerEntry struct {
	Stage  string        `json:"stage"`
	Wall   time.Duration `json:"wall_ns"`
	Tokens int           `json:"tokens,omitempty"`
	Billed bool          `json:"billed"`
}

// StageTotal is the per-(stage, billed) aggregate of a ledger.
type StageTotal struct {
	Stage  string        `json:"stage"`
	Billed bool          `json:"billed"`
	Wall   time.Duration `json:"wall_ns"`
	Tokens int           `json:"tokens,omitempty"`
}

// LedgerSnapshot is a closed ledger: the query's identity, its total
// wall-clock, and every charge.
type LedgerSnapshot struct {
	TraceID        string        `json:"trace_id"`
	Name           string        `json:"name"`
	Total          time.Duration `json:"total_ns"`
	BilledWall     time.Duration `json:"billed_wall_ns"`
	BilledTokens   int           `json:"billed_tokens"`
	UnbilledTokens int           `json:"unbilled_tokens"`
	Entries        []LedgerEntry `json:"entries"`
}

// Attribution is the fraction of the query's total wall-clock covered
// by billed stage charges (1 for zero-duration queries). The
// traceguard requires ≥0.9: anything lower means a layer is spending
// time no stage accounts for.
func (s LedgerSnapshot) Attribution() float64 {
	if s.Total <= 0 {
		return 1
	}
	f := float64(s.BilledWall) / float64(s.Total)
	if f > 1 {
		f = 1
	}
	return f
}

// StageTotals merges the entries per (stage, billed), deterministically
// ordered by stage then billed-first.
func (s LedgerSnapshot) StageTotals() []StageTotal {
	type k struct {
		stage  string
		billed bool
	}
	acc := map[k]*StageTotal{}
	for _, e := range s.Entries {
		key := k{e.Stage, e.Billed}
		t := acc[key]
		if t == nil {
			t = &StageTotal{Stage: e.Stage, Billed: e.Billed}
			acc[key] = t
		}
		t.Wall += e.Wall
		t.Tokens += e.Tokens
	}
	out := make([]StageTotal, 0, len(acc))
	for _, t := range acc {
		out = append(out, *t)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Stage != out[j].Stage {
			return out[i].Stage < out[j].Stage
		}
		return out[i].Billed && !out[j].Billed
	})
	return out
}

// Ledger accumulates per-stage charges for one query (one trace). It
// is created next to the query's root span, carried in the same
// context, charged by every layer the query passes through, and closed
// by the span's owner with the query's total duration. A nil *Ledger
// is a valid no-op, like a nil *Span.
//
// Charge is safe for concurrent use: hedge losers charge from their
// own goroutines, possibly after Close (their charge is then dropped —
// the books are already published).
type Ledger struct {
	rec     *Registry
	traceID string
	name    string

	mu      sync.Mutex
	entries []LedgerEntry
	closed  bool
}

// NewLedger opens a ledger on Active(rec) for the query named name in
// trace traceID. Returns nil (a no-op ledger) unless the active
// recorder is a *Registry.
func NewLedger(rec Recorder, traceID, name string) *Ledger {
	r, ok := Active(rec).(*Registry)
	if !ok {
		return nil
	}
	return &Ledger{rec: r, traceID: traceID, name: name}
}

// Charge adds one entry. Negative walls/tokens clamp to zero; charges
// after Close are dropped.
func (l *Ledger) Charge(stage string, wall time.Duration, tokens int, billed bool) {
	if l == nil || stage == "" {
		return
	}
	if wall < 0 {
		wall = 0
	}
	if tokens < 0 {
		tokens = 0
	}
	l.mu.Lock()
	if !l.closed {
		l.entries = append(l.entries, LedgerEntry{Stage: stage, Wall: wall, Tokens: tokens, Billed: billed})
	}
	l.mu.Unlock()
}

// BilledWall returns the billed wall-clock charged so far, letting a
// span owner compute the residual overhead charge (StageExec) that
// makes billed stages tile the whole span.
func (l *Ledger) BilledWall() time.Duration {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var sum time.Duration
	for _, e := range l.entries {
		if e.Billed {
			sum += e.Wall
		}
	}
	return sum
}

// Close publishes the ledger: aggregates into the mqo_trace_* metric
// families, feeds the SLO engine and slow-query log, and retains the
// snapshot for /debug/querytrace. total is the query's end-to-end
// duration (the root span's). Closing twice publishes once; the first
// close wins. Returns the published snapshot (zero for nil ledgers).
func (l *Ledger) Close(total time.Duration) LedgerSnapshot {
	if l == nil {
		return LedgerSnapshot{}
	}
	if total < 0 {
		total = 0
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return LedgerSnapshot{}
	}
	l.closed = true
	snap := LedgerSnapshot{
		TraceID: l.traceID,
		Name:    l.name,
		Total:   total,
		Entries: append([]LedgerEntry(nil), l.entries...),
	}
	l.mu.Unlock()

	for _, e := range snap.Entries {
		if e.Billed {
			snap.BilledWall += e.Wall
			snap.BilledTokens += e.Tokens
		} else {
			snap.UnbilledTokens += e.Tokens
		}
	}

	r := l.rec
	r.Add(metricTraceQueries, 1)
	r.Observe(metricTraceQuerySeconds, total.Seconds())
	for _, t := range snap.StageTotals() {
		billed := "false"
		if t.Billed {
			billed = "true"
		}
		r.Observe(metricTraceStageSeconds, t.Wall.Seconds(), "stage", t.Stage, "billed", billed)
		if t.Tokens > 0 {
			r.Add(metricTraceStageTokens, float64(t.Tokens), "stage", t.Stage, "billed", billed)
		}
	}
	r.recordSLOSample(total)
	r.ledgers.push(snap)
	return snap
}

// Metric families the ledger layer emits (catalog in README.md).
const (
	metricTraceQueries      = "mqo_trace_queries_total"
	metricTraceQuerySeconds = "mqo_trace_query_seconds"
	metricTraceStageSeconds = "mqo_trace_stage_seconds"
	metricTraceStageTokens  = "mqo_trace_stage_tokens_total"
)

// ledgerStore is a fixed-capacity overwrite-oldest ring of closed
// ledgers plus the slow-query log wiring.
type ledgerStore struct {
	mu       sync.Mutex
	capacity int
	buf      []LedgerSnapshot
	next     int
	full     bool

	slowThresh time.Duration
	slowLog    *Logger
}

func (ls *ledgerStore) push(snap LedgerSnapshot) {
	ls.mu.Lock()
	if ls.capacity <= 0 {
		ls.capacity = DefaultLedgerCapacity
	}
	if ls.buf == nil {
		ls.buf = make([]LedgerSnapshot, ls.capacity)
	}
	ls.buf[ls.next] = snap
	ls.next++
	if ls.next == len(ls.buf) {
		ls.next = 0
		ls.full = true
	}
	thresh, log := ls.slowThresh, ls.slowLog
	ls.mu.Unlock()

	if log != nil && thresh > 0 && snap.Total >= thresh {
		stages := make([]map[string]any, 0, len(snap.Entries))
		for _, t := range snap.StageTotals() {
			stages = append(stages, map[string]any{
				"stage": t.Stage, "billed": t.Billed,
				"wall_ms": float64(t.Wall.Microseconds()) / 1000,
				"tokens":  t.Tokens,
			})
		}
		log.Log("slow_query", map[string]any{
			"trace_id":      snap.TraceID,
			"name":          snap.Name,
			"total_ms":      float64(snap.Total.Microseconds()) / 1000,
			"billed_tokens": snap.BilledTokens,
			"attribution":   snap.Attribution(),
			"stages":        stages,
		})
	}
}

func (ls *ledgerStore) snapshot() []LedgerSnapshot {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if ls.buf == nil {
		return nil
	}
	if !ls.full {
		return append([]LedgerSnapshot(nil), ls.buf[:ls.next]...)
	}
	out := make([]LedgerSnapshot, 0, len(ls.buf))
	out = append(out, ls.buf[ls.next:]...)
	out = append(out, ls.buf[:ls.next]...)
	return out
}

// Ledgers returns the retained closed ledgers, oldest first.
func (r *Registry) Ledgers() []LedgerSnapshot { return r.ledgers.snapshot() }

// LedgerByTrace returns the retained ledger for one trace ID.
func (r *Registry) LedgerByTrace(traceID string) (LedgerSnapshot, bool) {
	if traceID == "" {
		return LedgerSnapshot{}, false
	}
	for _, s := range r.ledgers.snapshot() {
		if s.TraceID == traceID {
			return s, true
		}
	}
	return LedgerSnapshot{}, false
}

// SetLedgerCapacity resizes the ledger ring, discarding current
// contents.
func (r *Registry) SetLedgerCapacity(n int) {
	if n <= 0 {
		n = 1
	}
	r.ledgers.mu.Lock()
	r.ledgers.capacity = n
	r.ledgers.buf = nil
	r.ledgers.next = 0
	r.ledgers.full = false
	r.ledgers.mu.Unlock()
}

// SetSlowQueryLog arms the slow-query log: every ledger closing with a
// total at or above threshold emits one structured "slow_query" line
// with the full per-stage breakdown. A zero threshold or nil logger
// disarms it.
func (r *Registry) SetSlowQueryLog(threshold time.Duration, log *Logger) {
	r.ledgers.mu.Lock()
	r.ledgers.slowThresh = threshold
	r.ledgers.slowLog = log
	r.ledgers.mu.Unlock()
}
